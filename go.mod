module rex

go 1.22
