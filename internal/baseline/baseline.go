// Package baseline implements the centralized trainer every figure of the
// paper charts as "Centralized (baseline)": one process holding the whole
// training set, training the same model with the same step budget, whose
// test error is the floor decentralized runs converge toward.
package baseline

import (
	"math/rand"

	"rex/internal/dataset"
	"rex/internal/model"
)

// Result is the centralized run's learning curve.
type Result struct {
	// RMSE[e] is the test error after epoch e.
	RMSE []float64
	// FinalRMSE is the last entry of RMSE.
	FinalRMSE float64
}

// Run trains m for epochs x stepsPerEpoch SGD steps over the full training
// set, evaluating on test after every epoch.
func Run(m model.Model, train, test []dataset.Rating, epochs, stepsPerEpoch int, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed))
	res := &Result{RMSE: make([]float64, 0, epochs)}
	for e := 0; e < epochs; e++ {
		m.Train(train, stepsPerEpoch, rng)
		r := model.RMSE(m, test)
		res.RMSE = append(res.RMSE, r)
		res.FinalRMSE = r
	}
	return res
}

// Best returns the minimum test error reached during the run.
func (r *Result) Best() float64 {
	if len(r.RMSE) == 0 {
		return 0
	}
	best := r.RMSE[0]
	for _, v := range r.RMSE[1:] {
		if v < best {
			best = v
		}
	}
	return best
}
