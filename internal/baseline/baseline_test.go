package baseline

import (
	"math/rand"
	"testing"

	"rex/internal/mf"
	"rex/internal/movielens"
)

func TestCentralizedConverges(t *testing.T) {
	spec := movielens.Latest().Scaled(0.05)
	spec.Seed = 4
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(5))
	tr, te := ds.SplitPerUser(0.7, rng)
	res := Run(mf.New(mf.DefaultConfig()), tr.Ratings, te.Ratings, 10, len(tr.Ratings), 6)
	if len(res.RMSE) != 10 {
		t.Fatalf("epochs recorded: %d", len(res.RMSE))
	}
	if res.FinalRMSE >= res.RMSE[0] {
		t.Fatalf("no improvement: %.4f -> %.4f", res.RMSE[0], res.FinalRMSE)
	}
	if res.Best() > res.FinalRMSE {
		t.Fatal("Best exceeds final")
	}
}

func TestBestEmpty(t *testing.T) {
	if (&Result{}).Best() != 0 {
		t.Fatal("empty best")
	}
}
