package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	goruntime "runtime"
	"time"

	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/sim"
	"rex/internal/topology"
)

// This file measures the million-user scale path: users-vs-epoch-time and
// users-vs-heap curves for the REX simulator over the streamed small-world
// topology, sparse model tables and pooled epoch state. The workload is
// synthetic (one user per node, a fixed handful of ratings each) so node
// count is the only variable: the curves isolate the per-user cost of the
// engine itself, which is what bounds the single-machine maximum.

// ScalePoint is one row of the users-vs-cost curve.
type ScalePoint struct {
	Users  int `json:"users"`
	Epochs int `json:"epochs"`
	// EpochSec is mean wall-clock per epoch (setup excluded).
	EpochSec float64 `json:"epoch_sec"`
	// SetupSec is the one-time cost: data synthesis and engine construction.
	SetupSec float64 `json:"setup_sec"`
	// PeakHeapBytes is the highest Go heap (HeapAlloc) sampled during the
	// run; LiveHeapBytes is HeapAlloc after a forced GC at the end — the
	// resident state, free of sampling luck, that the gate divides by
	// Users to get BytesPerUser.
	PeakHeapBytes int64   `json:"peak_heap_bytes"`
	LiveHeapBytes int64   `json:"live_heap_bytes"`
	BytesPerUser  float64 `json:"bytes_per_user"`
	// SimHeapPerNode is the simulator's own modeled per-node trusted heap
	// (mean over nodes) — the paper-facing metric, distinct from the host
	// process costs above.
	SimHeapPerNode float64 `json:"sim_heap_per_node"`
	FinalRMSE      float64 `json:"final_rmse"`
}

// ScaleReport is the BENCH_scale.json schema. Tolerance is the gated
// headroom: cmd/benchgate -scale fails when a fresh measurement's
// BytesPerUser exceeds the recorded value by more than Tolerance
// (fractional), for any size present in both files.
type ScaleReport struct {
	Note      string       `json:"note"`
	Recorded  string       `json:"recorded"`
	Tolerance float64      `json:"tolerance"`
	MaxUsers  int          `json:"max_users_single_machine"`
	Points    []ScalePoint `json:"points"`
}

// ScaleConfig parameterizes a scale sweep.
type ScaleConfig struct {
	Sizes  []int // node counts, ascending
	Epochs int   // epochs per size (short: the engine reaches steady state fast)
	Seed   int64
	Out    io.Writer // human-readable table; nil = discard
}

// scaleRatings synthesizes node i's data: one user (id == node), train
// ratings over a bounded item space plus a held-out test slice, derived
// from (seed, i) with the splitmix64 generator so setup is O(n) with no
// shared dataset to build, sort or partition.
func scaleRatings(seed int64, i int) (train, test []dataset.Rating) {
	const perNode, testPer, itemSpace = 24, 8, 1 << 15
	mix := func(x uint64) uint64 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x
	}
	h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i)
	all := make([]dataset.Rating, 0, perNode+testPer)
	for k := 0; k < perNode+testPer; k++ {
		h = mix(h + uint64(k) + 1)
		item := uint32(h % itemSpace)
		// Half-star values in [0.5, 5.0], biased deterministic per (user,item).
		val := float32(h>>32%10+1) / 2
		all = append(all, dataset.Rating{User: uint32(i), Item: item, Value: val})
	}
	return all[:perNode], all[perNode:]
}

// heapSampler polls HeapAlloc in the background to catch the transient
// peak between GCs; ReadMemStats stops the world briefly, so the period is
// kept coarse.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak int64
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var ms goruntime.MemStats
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				goruntime.ReadMemStats(&ms)
				if h := int64(ms.HeapAlloc); h > s.peak {
					s.peak = h
				}
			}
		}
	}()
	return s
}

func (s *heapSampler) finish() int64 {
	close(s.stop)
	<-s.done
	return s.peak
}

// RunScale executes the sweep and returns one point per size. Each size is
// an independent deterministic simulation: REX data sharing under D-PSGD
// on the streamed small-world topology (k=6, pFar=3%, the paper's §IV-A2a
// parameters), matrix factorization models, short fixed-step epochs.
func RunScale(cfg ScaleConfig) (*ScaleReport, error) {
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 3
	}
	rep := &ScaleReport{
		Note: "users-vs-cost curve: REX DS/D-PSGD, streamed small-world (k=6, pFar=0.03), " +
			"synthetic 1-user nodes (24 train / 8 test ratings), MF models, " +
			fmt.Sprintf("%d epochs, 30 steps/epoch, 10 share points", cfg.Epochs),
		Recorded:  time.Now().UTC().Format("2006-01-02"),
		Tolerance: 0.5,
	}
	fmt.Fprintf(out, "%10s %10s %12s %14s %14s %12s %10s\n",
		"users", "epoch(s)", "setup(s)", "peakHeap", "liveHeap", "B/user", "RMSE")
	for _, n := range cfg.Sizes {
		p, err := runScalePoint(n, cfg.Epochs, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("scale %d users: %w", n, err)
		}
		rep.Points = append(rep.Points, *p)
		if n > rep.MaxUsers {
			rep.MaxUsers = n
		}
		fmt.Fprintf(out, "%10d %10.3f %12.3f %14d %14d %12.0f %10.4f\n",
			p.Users, p.EpochSec, p.SetupSec, p.PeakHeapBytes, p.LiveHeapBytes, p.BytesPerUser, p.FinalRMSE)
	}
	return rep, nil
}

func runScalePoint(n, epochs int, seed int64) (*ScalePoint, error) {
	goruntime.GC()
	sampler := startHeapSampler()
	setupStart := time.Now()
	train := make([][]dataset.Rating, n)
	test := make([][]dataset.Rating, n)
	for i := 0; i < n; i++ {
		train[i], test[i] = scaleRatings(seed, i)
	}
	// live is measured from inside the run (AfterEpoch on the final
	// epoch): a forced GC with the engine, nodes and buffers all still
	// resident gives the stable post-collection footprint of the whole
	// simulation — the quantity worth gating per user. Measuring after
	// sim.Run returns would see almost nothing: the engine is garbage by
	// then.
	var live int64
	mcfg := mf.DefaultConfig()
	simCfg := sim.Config{
		Graph: topology.NewSmallWorldStream(n, 6, 0.03, uint64(seed)+0xC0FFEE),
		Algo:  gossip.DPSGD, Mode: core.DataSharing,
		Epochs: epochs, StepsPerEpoch: 30, SharePoints: 10,
		NewModel: func(id int) model.Model { return mf.New(mcfg) },
		Train:    train, Test: test,
		Compute:   sim.MFCompute(mcfg.K),
		TestEvery: epochs, // one RMSE pass at the end
		AfterEpoch: func(e int) {
			if e == epochs-1 {
				var ms goruntime.MemStats
				goruntime.GC()
				goruntime.ReadMemStats(&ms)
				live = int64(ms.HeapAlloc)
			}
		},
		Seed: seed,
	}
	setup := time.Since(setupStart)
	runStart := time.Now()
	res, err := sim.Run(simCfg)
	if err != nil {
		sampler.finish()
		return nil, err
	}
	wall := time.Since(runStart)
	peak := sampler.finish()
	if live > peak {
		peak = live
	}
	return &ScalePoint{
		Users: n, Epochs: epochs,
		EpochSec:       wall.Seconds() / float64(epochs),
		SetupSec:       setup.Seconds(),
		PeakHeapBytes:  peak,
		LiveHeapBytes:  live,
		BytesPerUser:   float64(live) / float64(n),
		SimHeapPerNode: res.MeanHeapBytes,
		FinalRMSE:      res.FinalRMSE,
	}, nil
}

// WriteScaleReport writes the report as indented JSON to path.
func WriteScaleReport(rep *ScaleReport, path string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
