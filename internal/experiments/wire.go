package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"rex/internal/core"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/runtime"
	"rex/internal/topology"
)

// wireNodes matches the paper's live deployment size: 8 nodes, fully
// connected (§IV-C).
const wireNodes = 8

// wireRun executes the 8-node live in-process cluster under one wire mode
// and returns the per-node stats. Unlike the simulator artifacts this is
// a real runtime.RunCluster execution: the measured bytes are what the
// transport actually carried.
func wireRun(p Params, mode runtime.WireMode) ([]*runtime.Stats, error) {
	spec := movielens.Latest().Scaled(0.05)
	if p.Full {
		spec = latestSpec(true, p.Seed)
	}
	spec.Seed = p.Seed
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(p.Seed))
	tr, te := ds.SplitPerUser(0.7, rng)
	trainParts, err := tr.PartitionUsersAcross(wireNodes, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return nil, err
	}
	testParts, err := te.PartitionUsersAcross(wireNodes, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return nil, err
	}
	mcfg := mf.DefaultConfig()
	nodes := make([]*core.Node, wireNodes)
	for i := range nodes {
		nodes[i] = core.NewNode(core.Config{
			ID: i, Mode: core.DataSharing, Algo: gossip.DPSGD,
			StepsPerEpoch: 100, SharePoints: 60, Seed: p.Seed,
		}, mf.New(mcfg), trainParts[i], testParts[i])
	}
	epochs := 12
	if p.Full {
		epochs = 50
	}
	return runtime.RunCluster(runtime.ClusterConfig{
		Graph: topology.FullyConnected(wireNodes), Nodes: nodes,
		Epochs: epochs, Wire: mode,
		NewModel: func() model.Model { return mf.New(mcfg) },
	})
}

// wireTotals aggregates the cluster's wire accounting.
type wireTotals struct {
	onWire, raw, refs, explicit, resyncs int64
	epochs                               int
	finalRMSE                            float64
}

func wireTally(stats []*runtime.Stats) wireTotals {
	var t wireTotals
	for _, st := range stats {
		t.onWire += st.BytesOnWire
		t.raw += st.WireRawBytes
		t.refs += st.DeltaRefs
		t.explicit += st.DeltaExplicit
		t.resyncs += st.Resyncs
		if len(st.RMSE) > t.epochs {
			t.epochs = len(st.RMSE)
		}
		t.finalRMSE = st.FinalRMSE
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "wire",
		Title: "Wire efficiency: delta vs full gossip encoding on the live 8-node cluster",
		Run: func(p Params) error {
			p = p.defaults()
			full, err := wireRun(p, runtime.WireFull)
			if err != nil {
				return fmt.Errorf("full wire: %w", err)
			}
			delta, err := wireRun(p, runtime.WireDelta)
			if err != nil {
				return fmt.Errorf("delta wire: %w", err)
			}
			// The encodings must be learning-invisible: every node's final
			// RMSE matches bit for bit across modes.
			for i := range full {
				if math.Float64bits(full[i].FinalRMSE) != math.Float64bits(delta[i].FinalRMSE) {
					return fmt.Errorf("wire modes diverged at node %d: full %v delta %v",
						i, full[i].FinalRMSE, delta[i].FinalRMSE)
				}
			}
			tf, td := wireTally(full), wireTally(delta)
			fmt.Fprintf(p.Out, "== Wire efficiency: %d-node live cluster, %d epochs, DataSharing/D-PSGD ==\n",
				wireNodes, tf.epochs)
			fmt.Fprintf(p.Out, "%-8s %14s %14s %10s %10s %8s\n",
				"wire", "bytes total", "bytes/epoch", "vs full", "ref rate", "resyncs")
			fmt.Fprintf(p.Out, "%-8s %14d %14d %10s %10s %8d\n",
				"full", tf.onWire, tf.onWire/int64(tf.epochs), "1.00x", "-", tf.resyncs)
			ratio := float64(tf.onWire) / float64(td.onWire)
			hit := float64(td.refs) / float64(td.refs+td.explicit)
			fmt.Fprintf(p.Out, "%-8s %14d %14d %9.2fx %9.1f%% %8d\n",
				"delta", td.onWire, td.onWire/int64(td.epochs), ratio, 100*hit, td.resyncs)
			fmt.Fprintf(p.Out, "delta saved %d B (%.1f%% of full); trajectories bit-identical (final RMSE %.6f)\n",
				tf.onWire-td.onWire, 100*float64(tf.onWire-td.onWire)/float64(tf.onWire), td.finalRMSE)
			return nil
		},
	})
}
