package experiments

import (
	"bytes"
	"strings"
	"testing"

	"rex/internal/core"
	"rex/internal/gossip"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig1", "fig2", "table2", "fig3", "fig4", "table3", "fig5", "fig6", "fig7", "table4"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	ids := IDs()
	if len(ids) < len(want) {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("order: ids[%d] = %s want %s", i, ids[i], id)
		}
	}
	if _, ok := ByID("nonsense"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestTable1Output(t *testing.T) {
	e, _ := ByID("table1")
	var buf bytes.Buffer
	if err := e.Run(Params{Seed: 1, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "MovieLens Latest", "25M", "Ratings"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

// TestSGXExperimentShape runs the (memoized) Fig 6/Fig 7 cells once and
// checks the paper's Table IV invariants: REX overhead far below model
// sharing's, overhead growing with memory, and the large dataset pushing
// model sharing beyond the EPC.
func TestSGXExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	p := Params{Seed: 1}.defaults()
	type row struct{ rexOverhead, msOverhead float64 }
	get := func(big bool) row {
		rexNat, err := sgxRun(p, big, sgxCell{algoOf("dpsgd"), modeOf("rex"), false})
		if err != nil {
			t.Fatal(err)
		}
		rexSGX, err := sgxRun(p, big, sgxCell{algoOf("dpsgd"), modeOf("rex"), true})
		if err != nil {
			t.Fatal(err)
		}
		msNat, err := sgxRun(p, big, sgxCell{algoOf("dpsgd"), modeOf("ms"), false})
		if err != nil {
			t.Fatal(err)
		}
		msSGX, err := sgxRun(p, big, sgxCell{algoOf("dpsgd"), modeOf("ms"), true})
		if err != nil {
			t.Fatal(err)
		}
		return row{
			rexOverhead: (rexSGX.Stage.Total() - rexNat.Stage.Total()) / rexNat.Stage.Total(),
			msOverhead:  (msSGX.Stage.Total() - msNat.Stage.Total()) / msNat.Stage.Total(),
		}
	}
	small := get(false)
	large := get(true)
	if small.rexOverhead >= small.msOverhead {
		t.Fatalf("REX overhead %.2f should be far below MS %.2f", small.rexOverhead, small.msOverhead)
	}
	if small.rexOverhead > 0.35 {
		t.Fatalf("REX SGX overhead too high: %.2f (paper: <=0.17)", small.rexOverhead)
	}
	if large.msOverhead <= small.msOverhead {
		t.Fatalf("EPC overcommit should raise MS overhead: %.2f -> %.2f", small.msOverhead, large.msOverhead)
	}
}

// TestSpeedupShape runs the (memoized) multi-user scenario and checks the
// Table III invariant: REX reaches model sharing's final error faster in
// every setup.
func TestSpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	p := Params{Seed: 1}.defaults()
	pairs, err := multiUserRuns(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 4 {
		t.Fatalf("%d setups", len(pairs))
	}
	for _, pr := range pairs {
		target := pr.MS.FinalRMSE + 0.005
		msT, msOK := pr.MS.TimeToRMSE(target)
		rexT, rexOK := pr.REX.TimeToRMSE(target)
		if !msOK || !rexOK {
			t.Fatalf("%v: target %.3f not reached (ms %v rex %v)", pr.Setup, target, msOK, rexOK)
		}
		if rexT >= msT {
			t.Fatalf("%v: REX %.1fs not faster than MS %.1fs", pr.Setup, rexT, msT)
		}
		// Network volume: the paper's two-orders-of-magnitude claim holds
		// at full scale; at test scale the models are smaller, so require
		// one order.
		if pr.REX.BytesPerNode*10 > pr.MS.BytesPerNode {
			t.Fatalf("%v: volume gap too small: %.0f vs %.0f", pr.Setup, pr.REX.BytesPerNode, pr.MS.BytesPerNode)
		}
	}
}

func algoOf(s string) gossip.Algo {
	a, err := gossip.ParseAlgo(s)
	if err != nil {
		panic(err)
	}
	return a
}

func modeOf(s string) core.Mode {
	m, err := core.ParseMode(s)
	if err != nil {
		panic(err)
	}
	return m
}
