package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"rex/internal/compress"
	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/gossip"
	"rex/internal/metrics"
	"rex/internal/mf"
	"rex/internal/movielens"
	"rex/internal/sim"
)

// The ext-* experiments cover the paper's discussion section (§IV-E) and
// explicitly deferred future work: payload compression, pathological
// non-IID partitioning, crash failures, and data poisoning.

// partitionNonIID deals users to nodes in *sorted mean-rating order*, in
// contiguous blocks: every node sees a biased slice of the rating scale —
// the "pathological non-iid datasets" the paper plans to study (§IV-E-e).
func partitionNonIID(d *dataset.Dataset, n int) [][]dataset.Rating {
	sums := make(map[uint32]float64)
	counts := make(map[uint32]int)
	for _, r := range d.Ratings {
		sums[r.User] += float64(r.Value)
		counts[r.User]++
	}
	users := make([]uint32, 0, len(sums))
	for u := range sums {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool {
		mi := sums[users[i]] / float64(counts[users[i]])
		mj := sums[users[j]] / float64(counts[users[j]])
		if mi != mj {
			return mi < mj
		}
		return users[i] < users[j]
	})
	byUser := make(map[uint32][]dataset.Rating)
	for _, r := range d.Ratings {
		byUser[r.User] = append(byUser[r.User], r)
	}
	parts := make([][]dataset.Rating, n)
	per := (len(users) + n - 1) / n
	for i, u := range users {
		node := i / per
		if node >= n {
			node = n - 1
		}
		parts[node] = append(parts[node], byUser[u]...)
	}
	return parts
}

func init() {
	register(Experiment{
		ID:    "ext-noniid",
		Title: "Extension: pathological non-IID partitioning (paper §IV-E future work) — REX vs MS",
		Run: func(p Params) error {
			p = p.defaults()
			spec := latestSpec(p.Full, p.Seed)
			ds := movielens.Generate(spec)
			rng := rand.New(rand.NewSource(p.Seed))
			tr, te := ds.SplitPerUser(0.7, rng)
			n := multiUserNodes(p.Full)
			g, err := buildGraph("SW", n, p.Seed)
			if err != nil {
				return err
			}
			mcfg := mf.DefaultConfig()

			run := func(mode core.Mode, iid bool) (*sim.Result, error) {
				w := &workload{ds: ds, nodes: n}
				if iid {
					w.train, err = tr.PartitionUsersAcross(n, rand.New(rand.NewSource(p.Seed+1)))
					if err != nil {
						return nil, err
					}
					w.test, err = te.PartitionUsersAcross(n, rand.New(rand.NewSource(p.Seed+1)))
					if err != nil {
						return nil, err
					}
				} else {
					w.train = partitionNonIID(dataset.New(tr.Ratings), n)
					w.test = partitionNonIID(dataset.New(te.Ratings), n)
				}
				return sim.Run(simConfig(w, g, gossip.DPSGD, mode, p, mcfg))
			}

			t := metrics.NewTable("Partitioning", "Scheme", "Final RMSE", "Sim time")
			for _, iid := range []bool{true, false} {
				name := "IID (shuffled users)"
				if !iid {
					name = "non-IID (rating-sorted)"
				}
				for _, mode := range []core.Mode{core.ModelSharing, core.DataSharing} {
					res, err := run(mode, iid)
					if err != nil {
						return err
					}
					t.AddRow(name, mode.String(),
						fmt.Sprintf("%.4f", res.FinalRMSE),
						metrics.FormatSeconds(res.TotalTimeMean))
				}
			}
			fmt.Fprintln(p.Out, "== Extension: non-IID partitioning (D-PSGD, SW) ==")
			t.Fprint(p.Out)
			fmt.Fprintln(p.Out, "at this skew both schemes absorb the bias (user-mean skew is exactly what")
			fmt.Fprintln(p.Out, "the bias terms model); REX additionally re-mixes raw data across nodes, so")
			fmt.Fprintln(p.Out, "its store distribution converges back toward IID as training proceeds.")
			return nil
		},
	})

	register(Experiment{
		ID:    "ext-churn",
		Title: "Extension: crash failures mid-training (paper §III-D leaves fault tolerance to future work)",
		Run: func(p Params) error {
			p = p.defaults()
			n := multiUserNodes(p.Full)
			w, err := multiUser(latestSpec(p.Full, p.Seed), n, p.Seed)
			if err != nil {
				return err
			}
			g, err := buildGraph("SW", n, p.Seed)
			if err != nil {
				return err
			}
			mcfg := mf.DefaultConfig()
			t := metrics.NewTable("Failures", "Scheme", "Final RMSE", "Failed")
			for _, frac := range []float64{0, 0.2} {
				failAt := map[int]int{}
				rng := rand.New(rand.NewSource(p.Seed + 7))
				for i := 0; i < int(frac*float64(n)); i++ {
					failAt[rng.Intn(n)] = epochs(p.Full) / 3
				}
				for _, mode := range []core.Mode{core.ModelSharing, core.DataSharing} {
					cfg := simConfig(w, g, gossip.DPSGD, mode, p, mcfg)
					cfg.FailAt = failAt
					res, err := sim.Run(cfg)
					if err != nil {
						return err
					}
					t.AddRow(fmt.Sprintf("%.0f%%", frac*100), mode.String(),
						fmt.Sprintf("%.4f", res.FinalRMSE),
						fmt.Sprintf("%d", res.FailedNodes))
				}
			}
			fmt.Fprintln(p.Out, "== Extension: 20% of nodes crash one third into training ==")
			t.Fprint(p.Out)
			fmt.Fprintln(p.Out, "survivors keep converging in both schemes; under REX the crashed nodes'")
			fmt.Fprintln(p.Out, "raw data had already spread into survivors' stores, so nothing is lost.")
			return nil
		},
	})

	register(Experiment{
		ID:    "ext-poison",
		Title: "Extension: data poisoning by Byzantine enclaves (paper §IV-E-c: outside the SGX threat model)",
		Run: func(p Params) error {
			p = p.defaults()
			n := multiUserNodes(p.Full)
			w, err := multiUser(latestSpec(p.Full, p.Seed), n, p.Seed)
			if err != nil {
				return err
			}
			g, err := buildGraph("SW", n, p.Seed)
			if err != nil {
				return err
			}
			mcfg := mf.DefaultConfig()
			t := metrics.NewTable("Byzantine", "Scheme", "Final RMSE", "Degradation")
			base := map[core.Mode]float64{}
			for _, frac := range []float64{0, 0.1, 0.3} {
				byz := map[int]bool{}
				rng := rand.New(rand.NewSource(p.Seed + 13))
				for len(byz) < int(frac*float64(n)) {
					byz[rng.Intn(n)] = true
				}
				for _, mode := range []core.Mode{core.ModelSharing, core.DataSharing} {
					cfg := simConfig(w, g, gossip.DPSGD, mode, p, mcfg)
					cfg.Byzantine = byz
					res, err := sim.Run(cfg)
					if err != nil {
						return err
					}
					deg := ""
					if frac == 0 {
						base[mode] = res.FinalRMSE
					} else {
						deg = fmt.Sprintf("+%.1f%%", (res.FinalRMSE/base[mode]-1)*100)
					}
					t.AddRow(fmt.Sprintf("%.0f%%", frac*100), mode.String(),
						fmt.Sprintf("%.4f", res.FinalRMSE), deg)
				}
			}
			fmt.Fprintln(p.Out, "== Extension: rating-inversion poisoning (attested code, hostile inputs) ==")
			t.Fprint(p.Out)
			fmt.Fprintln(p.Out, "attestation nullifies rogue *code* but, exactly as §IV-E-c warns, cannot")
			fmt.Fprintln(p.Out, "stop poisoned *inputs*. Notably, raw data sharing is the more exposed")
			fmt.Fprintln(p.Out, "scheme: poisoned triplets persist verbatim in every receiving store, while")
			fmt.Fprintln(p.Out, "weighted model averaging dilutes a poisoned model at each merge.")
			return nil
		},
	})

	register(Experiment{
		ID:    "ext-compression",
		Title: "Extension: payload compression (paper §IV-E-e) — packed triplets vs DEFLATE-compressed models",
		Run: func(p Params) error {
			p = p.defaults()
			spec := latestSpec(p.Full, p.Seed)
			ds := movielens.Generate(spec)
			rng := rand.New(rand.NewSource(p.Seed))

			// Raw-data payload: the 300-point epoch sample of §IV-A3a.
			sample := dataset.NewStore(ds.Ratings).Sample(sharePoints(p.Full), rng)
			raw := len(dataset.EncodeRatings(sample))
			packed := len(compress.PackRatings(sample))
			packedFlate, err := compress.Deflate(compress.PackRatings(sample), 9)
			if err != nil {
				return err
			}

			// Model payload: an MF model trained over the full dataset.
			mcfg := mf.DefaultConfig()
			m := mf.New(mcfg)
			m.Train(ds.Ratings, 50_000, rng)
			mbytes, err := m.Marshal()
			if err != nil {
				return err
			}
			mflate, err := compress.Deflate(mbytes, 9)
			if err != nil {
				return err
			}

			t := metrics.NewTable("Payload", "Raw", "Compressed", "Ratio")
			t.AddRow("REX epoch sample (triplets)",
				metrics.FormatBytes(float64(raw)),
				metrics.FormatBytes(float64(packed)),
				fmt.Sprintf("%.1fx", float64(raw)/float64(packed)))
			t.AddRow("REX sample + DEFLATE",
				metrics.FormatBytes(float64(raw)),
				metrics.FormatBytes(float64(len(packedFlate))),
				fmt.Sprintf("%.1fx", float64(raw)/float64(len(packedFlate))))
			t.AddRow("MF model (MS payload) + DEFLATE",
				metrics.FormatBytes(float64(len(mbytes))),
				metrics.FormatBytes(float64(len(mflate))),
				fmt.Sprintf("%.1fx", float64(len(mbytes))/float64(len(mflate))))
			fmt.Fprintln(p.Out, "== Extension: compressibility of data vs model payloads ==")
			t.Fprint(p.Out)
			ratio := float64(len(mflate)) / float64(packed)
			fmt.Fprintf(p.Out, "even with both sides compressed, one model payload still outweighs a\n")
			fmt.Fprintf(p.Out, "REX epoch sample by %.0fx — compression does not close the gap (§IV-E-e).\n", ratio)
			return nil
		},
	})
}
