package experiments

import (
	"io"
	"testing"

	"rex/internal/faultnet"
	"rex/internal/loadgen"
)

// TestChaosLoadSimInvariants runs the full chaos-load composition in sim
// mode — workload replay under an injected fault schedule — and checks
// the report's invariants: the dispatched schedule matches the fault-free
// digest, every acked rating survives to the final snapshots, and the
// outcome accounting covers every event exactly once.
func TestChaosLoadSimInvariants(t *testing.T) {
	spec := &loadgen.Spec{
		Name: "chaos-tiny", Seed: 9,
		Users: 30, Items: 25, Ticks: 3,
		RatePerUserTick: 0.6, ZipfS: 0.8, QueryFraction: 0.4,
	}
	sc, err := faultnet.Resolve("lossy")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunChaosLoad(ChaosLoadConfig{
		Spec: spec, Scenario: sc, Nodes: 2, Workers: 2, Out: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ScheduleDigest != rep.FaultFreeDigest {
		t.Fatalf("digest %s != fault-free %s — faults perturbed the schedule",
			rep.ScheduleDigest, rep.FaultFreeDigest)
	}
	if rep.AckedRatings == 0 {
		t.Fatal("no acked ratings — the workload never reached the cluster")
	}
	if rep.AckedLost != 0 || rep.AckedSurvived != rep.AckedRatings {
		t.Fatalf("accept-then-lose: %d acked, %d survived, %d lost",
			rep.AckedRatings, rep.AckedSurvived, rep.AckedLost)
	}
	o := rep.Outcomes
	if sum := o.Accepted + o.RetriedOK + o.Shed + o.Rejected + o.Failed; sum != rep.Events {
		t.Fatalf("outcome sum %d != events %d", sum, rep.Events)
	}
	if o.Rejected != 0 {
		t.Fatalf("%d validation rejects — the preflight should make these impossible", o.Rejected)
	}
	if rep.Scenario != "lossy" {
		t.Fatalf("scenario %q, want lossy", rep.Scenario)
	}
}
