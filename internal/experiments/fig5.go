package experiments

import (
	"fmt"

	"rex/internal/core"
	"rex/internal/gossip"
	"rex/internal/metrics"
	"rex/internal/model"
	"rex/internal/nn"
	"rex/internal/sim"
)

// dnnNodes is the DNN scenario size: the paper uses 50 nodes each holding
// 12-13 users (§IV-A3b); the scaled run uses 10.
func dnnNodes(full bool) int {
	if full {
		return 50
	}
	return 10
}

// dnnConfig builds the §IV-A3b network for the workload's id space: at
// full scale the paper architecture (~218k params); scaled-down otherwise.
func dnnConfig(full bool, numUsers, numItems int) nn.Config {
	cfg := nn.DefaultConfig(numUsers, numItems)
	if !full {
		cfg.EmbDim = 8
		cfg.Hidden = []int{32, 16, 8, 8}
		cfg.BatchSize = 16
		// The tiny network tolerates a larger step; paper-scale runs keep
		// the paper's 1e-4.
		cfg.LearningRate = 1e-3
	}
	return cfg
}

// mlpParams counts the non-embedding parameters of a DNN config, needed by
// the cost model.
func mlpParams(cfg nn.Config) int {
	in := 2 * cfg.EmbDim
	total := 0
	for _, h := range cfg.Hidden {
		total += in*h + h
		in = h
	}
	total += in + 1
	return total
}

// dnnRun is one Fig 5 cell: algo fixed to D-PSGD (the paper's DNN uses
// D-PSGD only), topology SW or ER, mode MS or DS.
func dnnRun(p Params, topo string, mode core.Mode) (*sim.Result, error) {
	return memoized(memoKey("fig5", p.Full, p.Seed, topo, mode, p.scenarioTag()), func() (*sim.Result, error) {
		n := dnnNodes(p.Full)
		w, err := multiUser(latestSpec(p.Full, p.Seed), n, p.Seed)
		if err != nil {
			return nil, err
		}
		g, err := buildGraph(topo, n, p.Seed)
		if err != nil {
			return nil, err
		}
		ncfg := dnnConfig(p.Full, w.ds.NumUsers, w.ds.NumItems)
		ep := 80 // the paper's Fig 5(c) x-axis
		steps := 60
		points := 40 // §IV-A3b: nodes share 40 data points per epoch
		if !p.Full {
			ep, steps = 60, 25
		}
		return sim.Run(sim.Config{
			Graph: g, Algo: gossip.DPSGD, Mode: mode,
			Epochs: ep, StepsPerEpoch: steps, SharePoints: points,
			Workers:  p.Workers,
			NewModel: func(int) model.Model { return nn.NewNet(ncfg) },
			Train:    w.train, Test: w.test,
			Net:       sim.DefaultNet(),
			Compute:   sim.DNNCompute(mlpParams(ncfg), ncfg.EmbDim, ncfg.BatchSize),
			TestEvery: testCadence(p.Full),
			Scenario:  p.Scenario,
			Seed:      p.Seed,
		})
	})
}

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Fig 5: DNN, 50 nodes, D-PSGD — stage breakdown, data volume, RMSE vs epochs (SW & ER)",
		Run: func(p Params) error {
			p = p.defaults()
			type cell struct {
				name string
				topo string
				mode core.Mode
			}
			cells := []cell{
				{"SW, REX", "SW", core.DataSharing},
				{"SW, MS", "SW", core.ModelSharing},
				{"ER, REX", "ER", core.DataSharing},
				{"ER, MS", "ER", core.ModelSharing},
			}
			results := make(map[string]*sim.Result, len(cells))
			for _, c := range cells {
				r, err := dnnRun(p, c.topo, c.mode)
				if err != nil {
					return fmt.Errorf("fig5 %s: %w", c.name, err)
				}
				results[c.name] = r
			}

			fmt.Fprintln(p.Out, "== Fig 5(a): per-epoch stage breakdown [s] ==")
			ta := metrics.NewTable("Cell", "Merge", "Train", "Share", "Test", "Total")
			for _, c := range cells {
				st := results[c.name].Stage
				ta.AddRow(c.name,
					fmt.Sprintf("%.4f", st.Merge), fmt.Sprintf("%.4f", st.Train),
					fmt.Sprintf("%.4f", st.Share), fmt.Sprintf("%.4f", st.Test),
					fmt.Sprintf("%.4f", st.Total()))
			}
			ta.Fprint(p.Out)

			fmt.Fprintln(p.Out, "\n== Fig 5(b): data volume exchanged per node per epoch ==")
			tb := metrics.NewTable("Cell", "Data in+out / epoch")
			for _, c := range cells {
				r := results[c.name]
				tb.AddRow(c.name, metrics.FormatBytes(r.Series[len(r.Series)-1].EpochBytesPerNode))
			}
			tb.Fprint(p.Out)

			fmt.Fprintln(p.Out, "\n== Fig 5(c): test error vs epochs ==")
			for _, c := range cells {
				metrics.FprintSeries(p.Out, p.Points, rmseVsEpoch(results[c.name], c.name))
			}
			return nil
		},
	})
}
