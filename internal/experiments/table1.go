package experiments

import (
	"fmt"

	"rex/internal/metrics"
	"rex/internal/movielens"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table I: datasets (synthetic MovieLens-shaped generator output)",
		Run: func(p Params) error {
			p = p.defaults()
			t := metrics.NewTable("Dataset", "Ratings", "Items", "Users", "Mean", "Density")
			for _, row := range []struct {
				name string
				spec movielens.Spec
			}{
				{"MovieLens Latest (synthetic)", latestSpec(p.Full, p.Seed)},
				{"MovieLens 25M capped (synthetic)", bigSpec(p.Full, p.Seed)},
			} {
				st := movielens.Summarize(movielens.Generate(row.spec))
				t.AddRow(row.name,
					fmt.Sprintf("%d", st.Ratings),
					fmt.Sprintf("%d", st.Items),
					fmt.Sprintf("%d", st.Users),
					fmt.Sprintf("%.2f", st.MeanRating),
					fmt.Sprintf("%.4f", st.Density))
			}
			fmt.Fprintln(p.Out, "== Table I: datasets ==")
			t.Fprint(p.Out)
			if !p.Full {
				fmt.Fprintln(p.Out, "(scaled specs; pass -full for paper-scale 100k / 2.25M ratings)")
			}
			return nil
		},
	})
}
