package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"rex/internal/dataset"
	"rex/internal/faultnet"
	"rex/internal/loadgen"
)

// This file composes the chaos harness (internal/faultnet) with the
// workload generator (internal/loadgen): one run drives a declarative
// load spec into a cluster whose gossip links are degrading under a
// seeded fault schedule, and the report proves two invariants — every
// acked rating survives to the final snapshots (no accept-then-lose),
// and the schedule digest equals the fault-free replay (faults degrade
// delivery, never the workload).

// ChaosLoadConfig parameterizes one chaos-load run.
type ChaosLoadConfig struct {
	// Spec is the workload (already resolved).
	Spec *loadgen.Spec
	// Scenario is the fault schedule injected under the load; nil runs
	// fault-free (useful as the control arm).
	Scenario *faultnet.Scenario
	// TargetURLs switches to live mode: rexd base URLs, one per node.
	// The daemons must have been started with the same -scenario (the
	// runner injects faults only in sim mode, where it owns the engines).
	TargetURLs []string
	// Nodes is the sim-mode cluster size (default 2); ignored live.
	Nodes int
	// Workers is the dispatch concurrency (default 4).
	Workers int
	// Retries bounds per-event retries on 429/503/transport errors.
	Retries int
	// Timeout bounds each live request.
	Timeout time.Duration
	// SettleEpochs is how many epochs past the load's end the cluster
	// gets to flush ingestion mailboxes into published snapshots before
	// the accept-then-lose check reads them (default 2).
	SettleEpochs int
	// Out receives the human-readable summary; nil = discard.
	Out io.Writer
}

// ChaosFaults is the report's fault-counter block, summed across nodes.
type ChaosFaults struct {
	Dropped        int64 `json:"dropped"`
	Delayed        int64 `json:"delayed"`
	Duplicated     int64 `json:"duplicated"`
	Reordered      int64 `json:"reordered"`
	PartitionDrops int64 `json:"partition_drops"`
	Leaves         int64 `json:"leaves"`
	Rejoins        int64 `json:"rejoins"`
}

// ChaosLoadReport is the BENCH_chaosload.json schema: the loadgen report
// plus the chaos arm's invariant evidence.
type ChaosLoadReport struct {
	Note     string `json:"note,omitempty"`
	Recorded string `json:"recorded,omitempty"`
	// Scenario names the injected fault schedule ("" = fault-free).
	Scenario string `json:"scenario"`
	// FaultFreeDigest is the schedule digest the generator derives a
	// priori — by construction the digest of a fault-free replay. The
	// gate checks it equals the dispatched ScheduleDigest: faults must
	// not perturb the workload.
	FaultFreeDigest string `json:"fault_free_digest"`
	// AckedRatings is the number of distinct (user, item) pairs the
	// cluster acked 2xx on /rate; AckedLost counts those missing from
	// the final snapshots. The no-accept-then-lose invariant is
	// AckedLost == 0.
	AckedRatings  uint64 `json:"acked_ratings"`
	AckedSurvived uint64 `json:"acked_survived"`
	AckedLost     uint64 `json:"acked_lost"`
	// ShedFraction is shed events over all events (Outcomes.Shed/total).
	ShedFraction float64 `json:"shed_fraction"`
	// Faults counts injected gossip faults, summed across nodes.
	Faults ChaosFaults `json:"faults"`
	*loadgen.Report
}

// ackTracker decorates a Target and records the (user, item) pair of
// every write acked 2xx — including retried attempts — for the
// accept-then-lose check. The store dedups on (user, item), so pair
// presence in a final snapshot is exactly the durable fact an ack
// promised.
type ackTracker struct {
	inner loadgen.Target
	mu    sync.Mutex
	acked map[uint64]bool
}

func newAckTracker(inner loadgen.Target) *ackTracker {
	return &ackTracker{inner: inner, acked: make(map[uint64]bool)}
}

func ackKey(user, item uint32) uint64 { return uint64(user)<<32 | uint64(item) }

func (a *ackTracker) Do(ev loadgen.Event) (int, error) {
	status, err := a.inner.Do(ev)
	if err == nil && ev.Kind == loadgen.Write && status >= 200 && status < 300 {
		a.mu.Lock()
		a.acked[ackKey(ev.User, ev.Item)] = true
		a.mu.Unlock()
	}
	return status, err
}

func (a *ackTracker) EndTick(t int) error { return a.inner.EndTick(t) }

func (a *ackTracker) Finish() (*loadgen.ServerMetrics, error) { return a.inner.Finish() }

// NumItems forwards the preflight to the wrapped target.
func (a *ackTracker) NumItems() (int, error) {
	if cr, ok := a.inner.(loadgen.CatalogReporter); ok {
		return cr.NumItems()
	}
	return 0, nil
}

// RunChaosLoad executes the workload under the fault schedule and
// verifies the acked-rating survival invariant against the cluster's
// final snapshots.
func RunChaosLoad(cfg ChaosLoadConfig) (*ChaosLoadReport, error) {
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	if cfg.Spec == nil {
		return nil, fmt.Errorf("experiments: chaos-load spec is required")
	}
	settle := cfg.SettleEpochs
	if settle <= 0 {
		settle = 2
	}
	nodes := cfg.Nodes
	if nodes <= 0 {
		nodes = 2
	}
	scName := ""
	if cfg.Scenario != nil {
		scName = cfg.Scenario.Name
	}

	// The a-priori digest: what a fault-free replay of this spec yields.
	faultFree := fmt.Sprintf("%016x", loadgen.NewGen(cfg.Spec).ScheduleDigest())

	var rep *loadgen.Report
	var tracker *ackTracker
	var final map[uint64]bool
	var faults ChaosFaults
	mode := "sim"

	if len(cfg.TargetURLs) > 0 {
		mode = "live"
		nodes = len(cfg.TargetURLs)
		tgt, err := loadgen.NewHTTPTarget(cfg.TargetURLs, cfg.Spec.TickMillis, cfg.Timeout)
		if err != nil {
			return nil, err
		}
		tracker = newAckTracker(tgt)
		fmt.Fprintf(out, "chaos-load %q x scenario %q: live, %d nodes\n", cfg.Spec.Name, scName, nodes)
		rep, err = loadgen.Run(cfg.Spec, tracker, mode, nodes, loadgen.Options{
			Workers: cfg.Workers, Retries: cfg.Retries,
		})
		if err != nil {
			return nil, err
		}
		final, faults, err = scrapeLiveFinal(cfg.TargetURLs, settle, cfg.Timeout)
		if err != nil {
			return nil, err
		}
	} else {
		log := &faultnet.Log{}
		cluster, err := loadgen.NewEngineClusterOpts(cfg.Spec, nodes, loadgen.ClusterOptions{
			Scenario: cfg.Scenario, FaultLog: log, SettleEpochs: settle,
		})
		if err != nil {
			return nil, err
		}
		tracker = newAckTracker(cluster)
		fmt.Fprintf(out, "chaos-load %q x scenario %q: sim, %d nodes\n", cfg.Spec.Name, scName, nodes)
		rep, err = loadgen.Run(cfg.Spec, tracker, mode, nodes, loadgen.Options{
			Workers: cfg.Workers, Retries: cfg.Retries,
		})
		if err != nil {
			return nil, err
		}
		// Finish (inside Run) settled and stopped the engines; their
		// published snapshots persist past Stop.
		final = cluster.FinalRatings()
		c := log.Counts()
		faults = ChaosFaults{
			Dropped: c.Dropped, Delayed: c.Delayed, Duplicated: c.Duplicated,
			Reordered: c.Reordered, PartitionDrops: c.PartitionDrops,
			Leaves: c.Leaves, Rejoins: c.Rejoins,
		}
	}

	var survived, lost uint64
	tracker.mu.Lock()
	for key := range tracker.acked {
		if final[key] {
			survived++
		} else {
			lost++
		}
	}
	acked := uint64(len(tracker.acked))
	tracker.mu.Unlock()

	cl := &ChaosLoadReport{
		Scenario:        scName,
		FaultFreeDigest: faultFree,
		AckedRatings:    acked,
		AckedSurvived:   survived,
		AckedLost:       lost,
		ShedFraction:    rep.Outcomes.ShedFraction(),
		Faults:          faults,
		Report:          rep,
	}
	o := rep.Outcomes
	fmt.Fprintf(out, "%d events, digest %s (fault-free %s)\n", rep.Events, rep.ScheduleDigest, faultFree)
	fmt.Fprintf(out, "outcomes: %d accepted, %d retried-ok, %d shed (%.1f%%), %d rejected, %d failed, %d retries\n",
		o.Accepted, o.RetriedOK, o.Shed, 100*cl.ShedFraction, o.Rejected, o.Failed, o.Retries)
	fmt.Fprintf(out, "acked ratings: %d, survived %d, lost %d\n", acked, survived, lost)
	fmt.Fprintf(out, "faults: %d dropped (%d partition), %d delayed, %d dup, %d reordered, %d leaves, %d rejoins\n",
		faults.Dropped, faults.PartitionDrops, faults.Delayed, faults.Duplicated,
		faults.Reordered, faults.Leaves, faults.Rejoins)
	if lost > 0 {
		return cl, fmt.Errorf("experiments: accept-then-lose violation: %d acked ratings missing from final snapshots", lost)
	}
	return cl, nil
}

// scrapeLiveFinal waits for every live node's published snapshot to
// advance `settle` epochs past where the load left it (so mailbox-
// buffered ratings are snapshot-visible), then unions the clusters'
// /snapshot ratings and sums the /status fault counters.
func scrapeLiveFinal(urls []string, settle int, timeout time.Duration) (map[uint64]bool, ChaosFaults, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	client := &http.Client{Timeout: timeout}
	var faults ChaosFaults

	type statusView struct {
		SnapshotEpoch int `json:"snapshot_epoch"`
		Faults        *struct {
			Dropped        int64 `json:"dropped"`
			Delayed        int64 `json:"delayed"`
			Duplicated     int64 `json:"duplicated"`
			Reordered      int64 `json:"reordered"`
			PartitionDrops int64 `json:"partition_drops"`
			Leaves         int64 `json:"leaves"`
			Rejoins        int64 `json:"rejoins"`
		} `json:"faults"`
	}
	getStatus := func(base string) (statusView, error) {
		var st statusView
		resp, err := client.Get(base + "/status")
		if err != nil {
			return st, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return st, fmt.Errorf("%s/status: %d", base, resp.StatusCode)
		}
		return st, json.NewDecoder(resp.Body).Decode(&st)
	}

	// Baseline epochs, then poll until each node advances by settle. The
	// deadline is generous: lossy scenarios stretch rounds via timeouts.
	base := make([]int, len(urls))
	for i, u := range urls {
		st, err := getStatus(u)
		if err != nil {
			return nil, faults, fmt.Errorf("settling: %w", err)
		}
		base[i] = st.SnapshotEpoch
	}
	deadline := time.Now().Add(2 * time.Minute)
	for i, u := range urls {
		for {
			st, err := getStatus(u)
			if err != nil {
				return nil, faults, fmt.Errorf("settling: %w", err)
			}
			if st.SnapshotEpoch >= base[i]+settle {
				break
			}
			if time.Now().After(deadline) {
				return nil, faults, fmt.Errorf("settling: %s stuck at snapshot epoch %d (started %d, want +%d)",
					u, st.SnapshotEpoch, base[i], settle)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	final := make(map[uint64]bool)
	for _, u := range urls {
		st, err := getStatus(u)
		if err != nil {
			return nil, faults, err
		}
		if f := st.Faults; f != nil {
			faults.Dropped += f.Dropped
			faults.Delayed += f.Delayed
			faults.Duplicated += f.Duplicated
			faults.Reordered += f.Reordered
			faults.PartitionDrops += f.PartitionDrops
			faults.Leaves += f.Leaves
			faults.Rejoins += f.Rejoins
		}
		resp, err := client.Get(u + "/snapshot")
		if err != nil {
			return nil, faults, fmt.Errorf("scraping %s/snapshot: %w", u, err)
		}
		var snap struct {
			Ratings []byte `json:"ratings"`
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			return nil, faults, fmt.Errorf("decoding %s/snapshot: %w", u, err)
		}
		rs, _, err := dataset.DecodeRatings(snap.Ratings)
		if err != nil {
			return nil, faults, fmt.Errorf("decoding %s/snapshot ratings: %w", u, err)
		}
		for _, r := range rs {
			final[ackKey(r.User, r.Item)] = true
		}
	}
	return final, faults, nil
}

// WriteChaosLoadReport writes the report as indented JSON to path.
func WriteChaosLoadReport(rep *ChaosLoadReport, path string) error {
	rep.Note = "chaos-load replay: workload schedule and fault schedule are both pure hashes of their " +
		"seeds; acked ratings are checked for survival into final snapshots (no accept-then-lose); " +
		"shed events (429/503) left no WAL trace by construction"
	rep.Recorded = time.Now().UTC().Format("2006-01-02")
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
