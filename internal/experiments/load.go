package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"rex/internal/loadgen"
	"rex/internal/metrics"
)

// This file runs declarative load workloads (internal/loadgen) and
// renders/records the results: throughput plus p50/p95/p99 request
// latency per endpoint (client- and server-observed) and per pipeline
// stage. Sim mode drives an in-process engine cluster; live mode replays
// the identical schedule against rexd HTTP endpoints.

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// Spec is the workload (already resolved from a name or file).
	Spec *loadgen.Spec
	// TargetURLs switches to live mode: rexd base URLs, one per node.
	// Empty = sim mode over an in-process cluster of Nodes engines.
	TargetURLs []string
	// Nodes is the sim-mode cluster size (default 2); ignored live.
	Nodes int
	// Workers is the dispatch concurrency (default 4).
	Workers int
	// Retries bounds per-event retries on 429/503/transport errors.
	Retries int
	// Timeout bounds each live request (0 = the target's 30s default).
	Timeout time.Duration
	// Out receives the human-readable tables; nil = discard.
	Out io.Writer
}

// RunLoad executes the workload and prints the latency tables.
func RunLoad(cfg LoadConfig) (*loadgen.Report, error) {
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	if cfg.Spec == nil {
		return nil, fmt.Errorf("experiments: load spec is required")
	}
	nodes := cfg.Nodes
	if nodes <= 0 {
		nodes = 2
	}

	var tgt loadgen.Target
	mode := "sim"
	if len(cfg.TargetURLs) > 0 {
		mode = "live"
		nodes = len(cfg.TargetURLs)
		t, err := loadgen.NewHTTPTarget(cfg.TargetURLs, cfg.Spec.TickMillis, cfg.Timeout)
		if err != nil {
			return nil, err
		}
		tgt = t
	} else {
		t, err := loadgen.NewEngineCluster(cfg.Spec, nodes)
		if err != nil {
			return nil, err
		}
		tgt = t
	}

	fmt.Fprintf(out, "workload %q: %d users, %d items, %d ticks, %s mode, %d nodes\n",
		cfg.Spec.Name, cfg.Spec.Users, cfg.Spec.Items, cfg.Spec.Ticks, mode, nodes)
	rep, err := loadgen.Run(cfg.Spec, tgt, mode, nodes, loadgen.Options{
		Workers: cfg.Workers, Retries: cfg.Retries,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "%d events in %s (%.0f events/s), schedule digest %s\n",
		rep.Events, metrics.FormatSeconds(rep.WallSec), rep.EventsPerSec, rep.ScheduleDigest)
	o := rep.Outcomes
	fmt.Fprintf(out, "outcomes: %d accepted, %d retried-ok, %d shed (%.1f%%), %d rejected, %d failed, %d retries\n\n",
		o.Accepted, o.RetriedOK, o.Shed, 100*o.ShedFraction(), o.Rejected, o.Failed, o.Retries)

	lat := metrics.NewTable("Endpoint", "View", "Requests", "OK", "Rejected", "p50 / p95 / p99", "Mean")
	addRow := func(name, view string, er loadgen.EndpointReport) {
		var ok, rejected uint64
		for code, n := range er.Statuses {
			if code >= 200 && code < 300 {
				ok += n
			} else {
				rejected += n
			}
		}
		lat.AddRow(name, view, fmt.Sprint(er.Count), fmt.Sprint(ok), fmt.Sprint(rejected),
			fmt.Sprintf("%s / %s / %s",
				metrics.FormatSeconds(er.P50Ms/1e3),
				metrics.FormatSeconds(er.P95Ms/1e3),
				metrics.FormatSeconds(er.P99Ms/1e3)),
			metrics.FormatSeconds(er.MeanMs/1e3))
	}
	for _, name := range []string{"rate", "recommend"} {
		addRow(name, "client", rep.Client[name])
		if sv, ok := rep.Server[name]; ok {
			addRow(name, "server", sv)
		}
	}
	lat.Fprint(out)

	if len(rep.Stages) > 0 {
		fmt.Fprintln(out)
		st := metrics.NewTable("Stage", "Epochs", "p50 / p95 / p99", "Mean")
		names := make([]string, 0, len(rep.Stages))
		for name := range rep.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := rep.Stages[name]
			st.AddRow(name, fmt.Sprint(s.Count),
				fmt.Sprintf("%s / %s / %s",
					metrics.FormatSeconds(s.P50Ms/1e3),
					metrics.FormatSeconds(s.P95Ms/1e3),
					metrics.FormatSeconds(s.P99Ms/1e3)),
				metrics.FormatSeconds(s.MeanMs/1e3))
		}
		st.Fprint(out)
	}
	return rep, nil
}

// LoadReport is the BENCH_load.json schema: the loadgen report plus
// recording metadata.
type LoadReport struct {
	Note     string `json:"note"`
	Recorded string `json:"recorded"`
	*loadgen.Report
}

// WriteLoadReport writes the report as indented JSON to path.
func WriteLoadReport(rep *loadgen.Report, path string) error {
	full := LoadReport{
		Note: "declarative workload replay: schedule is a pure hash of (seed, user, tick); " +
			"client latencies include dispatch, server latencies are handler time from /metrics, " +
			"stages are per-epoch pipeline durations",
		Recorded: time.Now().UTC().Format("2006-01-02"),
		Report:   rep,
	}
	b, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
