package experiments

import (
	"fmt"

	"rex/internal/core"
	"rex/internal/enclave"
	"rex/internal/gossip"
	"rex/internal/metrics"
	"rex/internal/mf"
	"rex/internal/sim"
)

// sgxNodes is the paper's SGX deployment: 8 nodes (2 per machine on 4
// servers), fully connected — 28 pairwise links (§IV-C).
const sgxNodes = 8

// sgxCell identifies one run of Figs 6/7: algorithm, sharing mode, and
// whether the enclave cost model is active.
type sgxCell struct {
	algo gossip.Algo
	mode core.Mode
	sgx  bool
}

func (c sgxCell) String() string {
	env := "Native"
	if c.sgx {
		env = "SGX"
	}
	name := "DS"
	if c.mode == core.ModelSharing {
		name = "MS"
	}
	if c.sgx && c.mode == core.DataSharing {
		return fmt.Sprintf("%s, REX", c.algo) // SGX+DS is REX proper
	}
	return fmt.Sprintf("%s, %s, %s", c.algo, env, name)
}

// sgxCells enumerates the paper's comparison rows: Native DS, REX (SGX
// DS), Native MS, SGX MS — for each algorithm.
func sgxCells() []sgxCell {
	var out []sgxCell
	for _, a := range []gossip.Algo{gossip.DPSGD, gossip.RMW} {
		out = append(out,
			sgxCell{a, core.DataSharing, false},
			sgxCell{a, core.DataSharing, true},
			sgxCell{a, core.ModelSharing, false},
			sgxCell{a, core.ModelSharing, true},
		)
	}
	return out
}

// sgxEnclaveParams picks the EPC: at full scale the paper's 93.5 MiB; in
// scaled runs the EPC shrinks with the dataset so the Fig 7 overcommit
// regime still manifests (16 MiB keeps Fig 6 under the EPC, 13 MiB puts
// Fig 7's model sharing beyond it).
func sgxEnclaveParams(full, big bool) enclave.Params {
	p := enclave.DefaultParams()
	if !full {
		if big {
			p.EPCBytes = 13 * 1024 * 1024
		} else {
			p.EPCBytes = 16 * 1024 * 1024
		}
	}
	return p
}

// sgxRun executes one cell of the 8-node experiment on the chosen dataset
// (big=false: MovieLens-Latest-shaped, Fig 6; big=true: 25M-capped-shaped,
// Fig 7).
func sgxRun(p Params, big bool, cell sgxCell) (*sim.Result, error) {
	return memoized(memoKey("sgx", p.Full, p.Seed, big, cell.String(), p.scenarioTag()), func() (*sim.Result, error) {
		spec := latestSpec(p.Full, p.Seed)
		if big {
			spec = bigSpec(p.Full, p.Seed)
		}
		w, err := multiUser(spec, sgxNodes, p.Seed)
		if err != nil {
			return nil, err
		}
		g, err := buildGraph("full", sgxNodes, p.Seed)
		if err != nil {
			return nil, err
		}
		mcfg := mf.DefaultConfig()
		cfg := simConfig(w, g, cell.algo, cell.mode, p, mcfg)
		cfg.Epochs = sgxEpochs(p.Full)
		cfg.SGX = cell.sgx
		cfg.Enclave = sgxEnclaveParams(p.Full, big)
		cfg.Heap = sim.PaperHeapFactors()
		cfg.AttestSetupSec = 0.02 // quote generation + DCAP verification
		return sim.Run(cfg)
	})
}

// sgxEpochs bounds the 8-node runs (information spreads fast in a fully
// connected graph, so fewer epochs suffice than Figs 1-4).
func sgxEpochs(full bool) int {
	if full {
		return 200
	}
	return 80
}

// printSGXFigure renders one of Figs 6/7: stage breakdown (a), memory and
// network volume (b), and convergence for native (c) and SGX (d).
func printSGXFigure(p Params, big bool, title string) error {
	cells := sgxCells()
	results := make(map[string]*sim.Result, len(cells))
	for _, c := range cells {
		r, err := sgxRun(p, big, c)
		if err != nil {
			return fmt.Errorf("%s %s: %w", title, c, err)
		}
		results[c.String()] = r
	}

	fmt.Fprintf(p.Out, "== %s (a): per-epoch stage breakdown [s] ==\n", title)
	ta := metrics.NewTable("Cell", "Merge", "Train", "Share", "Test", "Total")
	for _, c := range cells {
		st := results[c.String()].Stage
		ta.AddRow(c.String(),
			fmt.Sprintf("%.4f", st.Merge), fmt.Sprintf("%.4f", st.Train),
			fmt.Sprintf("%.4f", st.Share), fmt.Sprintf("%.4f", st.Test),
			fmt.Sprintf("%.4f", st.Total()))
	}
	ta.Fprint(p.Out)

	fmt.Fprintf(p.Out, "\n== %s (b): RAM and network volume per epoch ==\n", title)
	tb := metrics.NewTable("Cell", "RAM (peak heap)", "Data in+out / epoch", "EPC residency")
	for _, c := range cells {
		r := results[c.String()]
		resid := float64(r.PeakHeapBytes) / float64(sgxEnclaveParams(p.Full, big).EPCBytes)
		tb.AddRow(c.String(),
			metrics.FormatBytes(r.MeanHeapBytes),
			metrics.FormatBytes(r.Series[len(r.Series)-1].EpochBytesPerNode),
			fmt.Sprintf("%.2f", resid))
	}
	tb.Fprint(p.Out)

	fmt.Fprintf(p.Out, "\n== %s (c)/(d): RMSE vs time ==\n", title)
	for _, c := range cells {
		metrics.FprintSeries(p.Out, p.Points, rmseVsTime(results[c.String()], c.String()))
	}
	return nil
}

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Fig 6: SGX vs native, 8 fully connected nodes, MovieLens-Latest-shaped (below EPC)",
		Run: func(p Params) error {
			p = p.defaults()
			return printSGXFigure(p, false, "Fig 6")
		},
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Fig 7: SGX vs native, 8 nodes, 25M-capped-shaped (beyond EPC limit)",
		Run: func(p Params) error {
			p = p.defaults()
			return printSGXFigure(p, true, "Fig 7")
		},
	})
	register(Experiment{
		ID:    "table4",
		Title: "Table IV: SGX overhead in execution time vs memory usage",
		Run: func(p Params) error {
			p = p.defaults()
			t := metrics.NewTable("Setup", "RAM small", "Overh. small", "RAM large", "Overh. large")
			for _, a := range []gossip.Algo{gossip.RMW, gossip.DPSGD} {
				for _, m := range []core.Mode{core.DataSharing, core.ModelSharing} {
					name := "REX"
					if m == core.ModelSharing {
						name = "MS"
					}
					row := []string{fmt.Sprintf("%s, %s", a, name)}
					for _, big := range []bool{false, true} {
						nat, err := sgxRun(p, big, sgxCell{a, m, false})
						if err != nil {
							return err
						}
						sgx, err := sgxRun(p, big, sgxCell{a, m, true})
						if err != nil {
							return err
						}
						overhead := (sgx.Stage.Total() - nat.Stage.Total()) / nat.Stage.Total() * 100
						row = append(row, metrics.FormatBytes(sgx.MeanHeapBytes), fmt.Sprintf("%.0f%%", overhead))
					}
					t.AddRow(row...)
				}
			}
			fmt.Fprintln(p.Out, "== Table IV: SGX overhead w.r.t. native, with memory usage ==")
			t.Fprint(p.Out)
			fmt.Fprintln(p.Out, "(small = MovieLens-Latest-shaped; large = 25M-capped-shaped, EPC overcommitted for MS)")
			return nil
		},
	})
}
