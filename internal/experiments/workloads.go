package experiments

import (
	"fmt"
	"math/rand"

	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/enclave"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/sim"
	"rex/internal/topology"
)

// scale factors for the non-Full runs.
// latestScale shrinks the MovieLens-Latest-shaped workload for non-Full
// runs: ~91 users, 1350 items, 15k ratings.
const latestScale = 0.15

// latestSpec returns the MovieLens-Latest-shaped generator spec.
func latestSpec(full bool, seed int64) movielens.Spec {
	s := movielens.Latest()
	if !full {
		s = s.Scaled(latestScale)
	}
	s.Seed = seed
	return s
}

// bigSpec returns the truncated-25M-shaped generator spec. The scaled
// variant keeps the 25M dataset's defining property relative to Latest —
// more users, more items, more ratings — rather than scaling uniformly.
func bigSpec(full bool, seed int64) movielens.Spec {
	s := movielens.TwentyFiveMCapped()
	if !full {
		s.Users, s.Items, s.Ratings = 300, 2400, 60_000
	}
	s.Seed = seed
	return s
}

// epochs returns the epoch budget: the paper's 400 at full scale.
func epochs(full bool) int {
	if full {
		return 400
	}
	return 240
}

// sharePoints is the raw-data budget per epoch (paper: 300 for MF).
func sharePoints(full bool) int {
	if full {
		return 300
	}
	return 150
}

// workload is a generated and partitioned dataset ready for sim.Run.
type workload struct {
	ds    *dataset.Dataset
	train [][]dataset.Rating
	test  [][]dataset.Rating
	nodes int
	// allTrain/allTest are the unpartitioned splits for the centralized
	// baseline curve.
	allTrain []dataset.Rating
	allTest  []dataset.Rating
}

// oneNodePerUser builds the §IV-B-a scenario: node i holds exactly user
// i's ratings (70/30 per-user split).
func oneNodePerUser(spec movielens.Spec, seed int64) (*workload, error) {
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(seed))
	tr, te := ds.SplitPerUser(0.7, rng)
	trainParts, err := tr.PartitionPerUser()
	if err != nil {
		return nil, fmt.Errorf("partitioning train: %w", err)
	}
	testParts, err := te.PartitionPerUser()
	if err != nil {
		return nil, fmt.Errorf("partitioning test: %w", err)
	}
	return &workload{
		ds: ds, train: trainParts, test: testParts, nodes: ds.NumUsers,
		allTrain: tr.Ratings, allTest: te.Ratings,
	}, nil
}

// multiUser builds the §IV-B-b scenario: users dealt whole across n nodes.
func multiUser(spec movielens.Spec, n int, seed int64) (*workload, error) {
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(seed))
	tr, te := ds.SplitPerUser(0.7, rng)
	// The same user order must govern both partitions so a node's test
	// ratings belong to its own users; reuse one shuffled assignment.
	assignRng := rand.New(rand.NewSource(seed + 1))
	trainParts, err := tr.PartitionUsersAcross(n, assignRng)
	if err != nil {
		return nil, fmt.Errorf("partitioning train: %w", err)
	}
	// Rebuild the same assignment for test by re-seeding.
	assignRng = rand.New(rand.NewSource(seed + 1))
	testParts, err := te.PartitionUsersAcross(n, assignRng)
	if err != nil {
		return nil, fmt.Errorf("partitioning test: %w", err)
	}
	return &workload{
		ds: ds, train: trainParts, test: testParts, nodes: n,
		allTrain: tr.Ratings, allTest: te.Ratings,
	}, nil
}

// setup identifies one panel of Figs 1/2/4: an algorithm and a topology.
type setup struct {
	algo gossip.Algo
	topo string // "SW" or "ER"
}

func (s setup) String() string { return fmt.Sprintf("%s, %s", s.algo, s.topo) }

// fourSetups are the paper's four panels, in its column order.
var fourSetups = []setup{
	{gossip.RMW, "SW"},
	{gossip.RMW, "ER"},
	{gossip.DPSGD, "SW"},
	{gossip.DPSGD, "ER"},
}

// buildGraph instantiates the §IV-A2 topologies: small world with 6 close
// connections and 3% far-fetched probability, or Erdős–Rényi with p=5%.
func buildGraph(topo string, n int, seed int64) (*topology.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch topo {
	case "SW":
		return topology.SmallWorld(n, 6, 0.03, rng), nil
	case "ER":
		return topology.ErdosRenyi(n, 0.05, rng), nil
	case "full":
		return topology.FullyConnected(n), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}

// mfModelFactory returns a constructor giving every node an identical MF
// model (same seed — attested enclaves share initial state).
func mfModelFactory(cfg mf.Config) func(int) model.Model {
	return func(int) model.Model { return mf.New(cfg) }
}

// scaledEnclaveParams shrinks the EPC in scaled runs so the Fig 7
// overcommit regime still occurs with the small dataset.
func scaledEnclaveParams(full bool) enclave.Params {
	p := enclave.DefaultParams()
	if !full {
		p.EPCBytes = 2 * 1024 * 1024
	}
	return p
}

// simConfig assembles the common parts of a simulated MF run.
func simConfig(w *workload, g *topology.Graph, algo gossip.Algo, mode core.Mode, p Params, mcfg mf.Config) sim.Config {
	return sim.Config{
		Graph:         g,
		Algo:          algo,
		Mode:          mode,
		Epochs:        epochs(p.Full),
		StepsPerEpoch: 300,
		SharePoints:   sharePoints(p.Full),
		Workers:       p.Workers,
		NewModel:      mfModelFactory(mcfg),
		Train:         w.train,
		Test:          w.test,
		Net:           sim.DefaultNet(),
		Compute:       sim.MFCompute(mcfg.K),
		TestEvery:     testCadence(p.Full),
		Scenario:      p.Scenario,
		Seed:          p.Seed,
	}
}

// testCadence evaluates RMSE every epoch in scaled runs and every 5 epochs
// at paper scale (610 nodes x 400 epochs x full test would dominate).
func testCadence(full bool) int {
	if full {
		return 5
	}
	return 1
}
