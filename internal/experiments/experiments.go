// Package experiments reproduces every table and figure of the paper's
// evaluation (§IV). Each experiment has an ID matching the paper artifact
// (table1, fig1, fig2, table2, fig3, fig4, table3, fig5, fig6, fig7,
// table4), a harness that prints the same rows/series the paper reports,
// and two scales: the default scaled-down workload keeps `go test -bench`
// fast, while Full reproduces paper-scale parameters (610/15,000 users,
// 400 epochs).
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"rex/internal/faultnet"
)

// Params configure a harness invocation.
type Params struct {
	// Full selects paper-scale workloads; default is a scaled-down run
	// with identical structure.
	Full bool
	// Seed makes every experiment deterministic.
	Seed int64
	// Out receives the printed tables and series.
	Out io.Writer
	// Points bounds series rows printed per curve.
	Points int
	// Workers bounds the simulator's per-epoch concurrency (sim.Config
	// Workers): 0 uses GOMAXPROCS, 1 forces sequential runs. Results are
	// bit-identical for every value, so it is excluded from memo keys.
	Workers int
	// Scenario, when set, injects the chaos schedule (rexbench -scenario)
	// into every simulated run: the paper artifacts re-run under message
	// loss, partitions and churn. Scenarios change results, so they are
	// part of the memo keys.
	Scenario *faultnet.Scenario
}

// scenarioTag is the memo-key component identifying the fault schedule —
// the full marshaled spec, so two scenarios sharing a name and seed but
// differing anywhere in the schedule never collide in the cache.
func (p Params) scenarioTag() string {
	if p.Scenario == nil {
		return ""
	}
	b, err := json.Marshal(p.Scenario)
	if err != nil {
		return fmt.Sprintf("|sc:%+v", *p.Scenario)
	}
	return "|sc:" + string(b)
}

func (p Params) defaults() Params {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Points == 0 {
		p.Points = 12
	}
	if p.Out == nil {
		p.Out = io.Discard
	}
	return p
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(p Params) error
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// ByID looks an experiment up by its artifact id.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment in artifact order.
func All() []Experiment {
	order := []string{"table1", "fig1", "fig2", "table2", "fig3", "fig4", "table3", "fig5", "fig6", "fig7", "table4"}
	out := make([]Experiment, 0, len(order))
	for _, id := range order {
		if e, ok := registry[id]; ok {
			out = append(out, e)
		}
	}
	// Any extras (ablations) appended alphabetically.
	var extra []string
	for id := range registry {
		found := false
		for _, o := range order {
			if o == id {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, id)
		}
	}
	sort.Strings(extra)
	for _, id := range extra {
		out = append(out, registry[id])
	}
	return out
}

// IDs returns all registered experiment ids, ordered as All.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// memo caches expensive shared scenario runs within a process so that
// fig1, fig2 and table2 (which share runs) don't recompute each other's
// work when `rexbench -exp all` executes.
var memo sync.Map

func memoKey(parts ...interface{}) string { return fmt.Sprint(parts...) }

func memoized[T any](key string, f func() (T, error)) (T, error) {
	if v, ok := memo.Load(key); ok {
		return v.(T), nil
	}
	v, err := f()
	if err != nil {
		var zero T
		return zero, err
	}
	memo.Store(key, v)
	return v, nil
}

// ResetCache drops memoized scenario results (used by tests).
func ResetCache() { memo = sync.Map{} }
