package experiments

import (
	"fmt"
	"math"

	"rex/internal/core"
	"rex/internal/gossip"
	"rex/internal/knn"
	"rex/internal/metrics"
	"rex/internal/mf"
	"rex/internal/rank"
	"rex/internal/sim"
)

func init() {
	register(Experiment{
		ID: "ext-knn",
		Title: "Extension: KNN collaborative filtering over REX stores " +
			"(§II-B: the recommender family raw data sharing enables)",
		Run: func(p Params) error {
			p = p.defaults()
			n := multiUserNodes(p.Full)
			w, err := multiUser(latestSpec(p.Full, p.Seed), n, p.Seed)
			if err != nil {
				return err
			}
			g, err := buildGraph("SW", n, p.Seed)
			if err != nil {
				return err
			}
			mcfg := mf.DefaultConfig()
			cfg := simConfig(w, g, gossip.DPSGD, core.DataSharing, p, mcfg)
			cfg.KeepState = true
			res, err := sim.Run(cfg)
			if err != nil {
				return err
			}

			// Node 0's perspective: its private test set, three predictors.
			node := 0
			test := w.test[node]
			kcfg := knn.DefaultConfig()
			localKNN := knn.New(kcfg, w.train[node])     // before any gossip
			gossipKNN := knn.New(kcfg, res.Stores[node]) // after REX raw-data gossip
			mfRMSE := 0.0
			if len(test) > 0 {
				var se float64
				for _, r := range test {
					pr := float64(res.Models[node].Predict(r.User, r.Item))
					if pr < 0.5 {
						pr = 0.5
					}
					if pr > 5 {
						pr = 5
					}
					se += (pr - float64(r.Value)) * (pr - float64(r.Value))
				}
				mfRMSE = se / float64(len(test))
			}

			t := metrics.NewTable("Predictor", "Profiles known", "RMSE on node-0 test set")
			t.AddRow("KNN, local data only", fmt.Sprintf("%d", localKNN.NumProfiles()),
				fmt.Sprintf("%.4f", localKNN.RMSE(test)))
			t.AddRow("KNN, post-REX store", fmt.Sprintf("%d", gossipKNN.NumProfiles()),
				fmt.Sprintf("%.4f", gossipKNN.RMSE(test)))
			t.AddRow("MF trained via REX", "-", fmt.Sprintf("%.4f", sqrtf(mfRMSE)))
			fmt.Fprintln(p.Out, "== Extension: user-based KNN over raw-data stores ==")
			t.Fprint(p.Out)
			fmt.Fprintf(p.Out, "store grew %d -> %d ratings through gossip; KNN needs those alien\n",
				len(w.train[node]), len(res.Stores[node]))
			fmt.Fprintln(p.Out, "profiles and is simply impossible under parameter sharing — a second")
			fmt.Fprintln(p.Out, "model family REX unlocks for free (§II-B's WHATSUP line of work).")

			// Ranking view: top-N quality of the REX-trained MF model.
			k := 10
			rk := rank.Evaluate(res.Models[node], res.Stores[node], test, w.ds.NumItems, k)
			fmt.Fprintf(p.Out, "\nranking quality of node 0's model: precision@%d %.3f, recall@%d %.3f, NDCG@%d %.3f (%d users)\n",
				k, rk.PrecisionAtK, k, rk.RecallAtK, k, rk.NDCGAtK, rk.Users)
			return nil
		},
	})
}

// sqrtf is a tiny helper keeping the table construction readable.
func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
