package experiments

import (
	"fmt"
	"math"

	"rex/internal/baseline"
	"rex/internal/core"
	"rex/internal/metrics"
	"rex/internal/mf"
	"rex/internal/sim"
)

// pairResult is one panel of Figs 1/2: the same setup run under model
// sharing and under REX.
type pairResult struct {
	Setup setup
	MS    *sim.Result
	REX   *sim.Result
}

// oneNodeRuns executes (or fetches memoized) the §IV-B-a scenario: one
// node per user, MF model, all four setups, MS vs REX, plus the
// centralized baseline.
func oneNodeRuns(p Params) ([]pairResult, *baseline.Result, error) {
	type bundle struct {
		pairs []pairResult
		base  *baseline.Result
	}
	b, err := memoized(memoKey("onenode", p.Full, p.Seed, p.scenarioTag()), func() (bundle, error) {
		w, err := oneNodePerUser(latestSpec(p.Full, p.Seed), p.Seed)
		if err != nil {
			return bundle{}, err
		}
		mcfg := mf.DefaultConfig()
		var pairs []pairResult
		for si, s := range fourSetups {
			g, err := buildGraph(s.topo, w.nodes, p.Seed+int64(si))
			if err != nil {
				return bundle{}, err
			}
			ms, err := sim.Run(simConfig(w, g, s.algo, core.ModelSharing, p, mcfg))
			if err != nil {
				return bundle{}, fmt.Errorf("%v MS: %w", s, err)
			}
			rex, err := sim.Run(simConfig(w, g, s.algo, core.DataSharing, p, mcfg))
			if err != nil {
				return bundle{}, fmt.Errorf("%v REX: %w", s, err)
			}
			pairs = append(pairs, pairResult{Setup: s, MS: ms, REX: rex})
		}
		base := baseline.Run(mf.New(mcfg), w.allTrain, w.allTest,
			epochs(p.Full)/4, len(w.allTrain)/2, p.Seed)
		return bundle{pairs: pairs, base: base}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return b.pairs, b.base, nil
}

// rmseVsTime extracts the (time, RMSE) series of a run.
func rmseVsTime(r *sim.Result, label string) metrics.Series {
	var x, y []float64
	for _, e := range r.Series {
		x = append(x, e.TimeMean)
		y = append(y, e.MeanRMSE)
	}
	x, y = metrics.CleanNaN(x, y)
	return metrics.Series{Label: label, X: x, Y: y}
}

// rmseVsEpoch extracts the (epoch, RMSE) series of a run.
func rmseVsEpoch(r *sim.Result, label string) metrics.Series {
	var x, y []float64
	for _, e := range r.Series {
		x = append(x, float64(e.Epoch))
		y = append(y, e.MeanRMSE)
	}
	x, y = metrics.CleanNaN(x, y)
	return metrics.Series{Label: label, X: x, Y: y}
}

// bytesVsEpoch extracts the cumulative (epoch, in+out bytes per node)
// series of a run.
func bytesVsEpoch(r *sim.Result, label string) metrics.Series {
	var x, y []float64
	for _, e := range r.Series {
		x = append(x, float64(e.Epoch))
		y = append(y, e.BytesPerNode)
	}
	return metrics.Series{Label: label, X: x, Y: y}
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Fig 1: one node per user, MF — test error vs simulated time (4 setups, MS vs REX vs centralized)",
		Run: func(p Params) error {
			p = p.defaults()
			pairs, base, err := oneNodeRuns(p)
			if err != nil {
				return err
			}
			fmt.Fprintf(p.Out, "== Fig 1: one node per user — MF, RMSE vs time ==\n")
			fmt.Fprintf(p.Out, "centralized baseline final RMSE: %.4f\n\n", base.FinalRMSE)
			for _, pr := range pairs {
				fmt.Fprintf(p.Out, "--- %v ---\n", pr.Setup)
				metrics.FprintSeries(p.Out, p.Points,
					rmseVsTime(pr.MS, "Test error, sharing model [s]"),
					rmseVsTime(pr.REX, "Test error, REX [s]"),
				)
				fmt.Fprintf(p.Out, "MS total %s, REX total %s (same %d epochs)\n\n",
					metrics.FormatSeconds(pr.MS.TotalTimeMean),
					metrics.FormatSeconds(pr.REX.TotalTimeMean),
					len(pr.MS.Series))
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig2",
		Title: "Fig 2: one node per user, MF — network volume and test error vs epochs",
		Run: func(p Params) error {
			p = p.defaults()
			pairs, base, err := oneNodeRuns(p)
			if err != nil {
				return err
			}
			fmt.Fprintf(p.Out, "== Fig 2 row 1: cumulative data in+out per node [bytes] vs epochs ==\n")
			for _, pr := range pairs {
				fmt.Fprintf(p.Out, "--- %v ---\n", pr.Setup)
				metrics.FprintSeries(p.Out, p.Points,
					bytesVsEpoch(pr.MS, "Data in+out, sharing model"),
					bytesVsEpoch(pr.REX, "Data in+out, REX"),
				)
				ratio := pr.MS.BytesPerNode / math.Max(pr.REX.BytesPerNode, 1)
				fmt.Fprintf(p.Out, "MS/REX volume ratio: %.0fx (MS %s, REX %s per node)\n\n",
					ratio, metrics.FormatBytes(pr.MS.BytesPerNode), metrics.FormatBytes(pr.REX.BytesPerNode))
			}
			fmt.Fprintf(p.Out, "== Fig 2 row 2: RMSE vs epochs (centralized final %.4f) ==\n", base.FinalRMSE)
			for _, pr := range pairs {
				fmt.Fprintf(p.Out, "--- %v ---\n", pr.Setup)
				metrics.FprintSeries(p.Out, p.Points,
					rmseVsEpoch(pr.MS, "Test error, sharing model"),
					rmseVsEpoch(pr.REX, "Test error, REX"),
				)
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "table2",
		Title: "Table II: one node per user — REX speed-up over MS at MS's final error target",
		Run: func(p Params) error {
			p = p.defaults()
			pairs, _, err := oneNodeRuns(p)
			if err != nil {
				return err
			}
			return printSpeedupTable(p, pairs, "Table II (one node per user)")
		},
	})
}

// printSpeedupTable renders Tables II/III: for each setup, the error
// target (MS's final error), time each scheme needed to reach it, and the
// REX speed-up.
func printSpeedupTable(p Params, pairs []pairResult, title string) error {
	t := metrics.NewTable("Setup", "Error target", "REX", "MS", "REX speed-up")
	for _, pr := range pairs {
		// The paper picks the final value achieved by the MS scheme as
		// the target; allow half a percent of RMSE slack so per-epoch
		// evaluation noise doesn't spuriously report "not reached".
		target := pr.MS.FinalRMSE + 0.005
		msT, msOK := pr.MS.TimeToRMSE(target)
		rexT, rexOK := pr.REX.TimeToRMSE(target)
		row := []string{pr.Setup.String(), fmt.Sprintf("%.3f", target)}
		switch {
		case msOK && rexOK && rexT > 0:
			row = append(row,
				metrics.FormatSeconds(rexT),
				metrics.FormatSeconds(msT),
				fmt.Sprintf("%.1fx", msT/rexT))
		case rexOK:
			row = append(row, metrics.FormatSeconds(rexT), "not reached", "inf")
		default:
			row = append(row, "not reached", metrics.FormatSeconds(msT), "-")
		}
		t.AddRow(row...)
	}
	fmt.Fprintf(p.Out, "== %s ==\n", title)
	t.Fprint(p.Out)
	return nil
}
