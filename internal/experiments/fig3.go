package experiments

import (
	"fmt"

	"rex/internal/core"
	"rex/internal/metrics"
	"rex/internal/mf"
	"rex/internal/sim"
)

// fig3Ks is the paper's embedding-dimension sweep (§IV-B, Fig 3).
var fig3Ks = []int{10, 20, 30, 40, 50}

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Fig 3: effect of feature-vector size k (D-PSGD, SW) — MS vs REX over fixed epochs",
		Run: func(p Params) error {
			p = p.defaults()
			w, err := oneNodePerUser(latestSpec(p.Full, p.Seed), p.Seed)
			if err != nil {
				return err
			}
			g, err := buildGraph("SW", w.nodes, p.Seed)
			if err != nil {
				return err
			}
			type row struct {
				k       int
				ms, rex *sim.Result
			}
			var rows []row
			for _, k := range fig3Ks {
				mcfg := mf.DefaultConfig()
				mcfg.K = k
				msCfg := simConfig(w, g, fourSetups[2].algo, core.ModelSharing, p, mcfg)
				msCfg.Compute = sim.MFCompute(k)
				ms, err := sim.Run(msCfg)
				if err != nil {
					return fmt.Errorf("fig3 k=%d MS: %w", k, err)
				}
				rexCfg := simConfig(w, g, fourSetups[2].algo, core.DataSharing, p, mcfg)
				rexCfg.Compute = sim.MFCompute(k)
				rex, err := sim.Run(rexCfg)
				if err != nil {
					return fmt.Errorf("fig3 k=%d REX: %w", k, err)
				}
				rows = append(rows, row{k: k, ms: ms, rex: rex})
			}

			fmt.Fprintf(p.Out, "== Fig 3: feature-vector size sweep, D-PSGD SW, fixed %d epochs ==\n", epochs(p.Full))
			for _, mode := range []string{"MS", "REX"} {
				fmt.Fprintf(p.Out, "--- %s: RMSE vs epoch ---\n", mode)
				for _, r := range rows {
					res := r.ms
					if mode == "REX" {
						res = r.rex
					}
					metrics.FprintSeries(p.Out, p.Points, rmseVsEpoch(res, fmt.Sprintf("k=%d", r.k)))
				}
			}

			t := metrics.NewTable("k", "MS final RMSE", "MS time", "MS data/round", "REX final RMSE", "REX time", "REX data/round")
			for _, r := range rows {
				t.AddRow(fmt.Sprintf("%d", r.k),
					fmt.Sprintf("%.4f", r.ms.FinalRMSE),
					metrics.FormatSeconds(r.ms.TotalTimeMean),
					metrics.FormatBytes(r.ms.Series[len(r.ms.Series)-1].EpochBytesPerNode),
					fmt.Sprintf("%.4f", r.rex.FinalRMSE),
					metrics.FormatSeconds(r.rex.TotalTimeMean),
					metrics.FormatBytes(r.rex.Series[len(r.rex.Series)-1].EpochBytesPerNode))
			}
			fmt.Fprintln(p.Out, "--- summary (MS network grows linearly with k; REX stays flat) ---")
			t.Fprint(p.Out)
			return nil
		},
	})
}
