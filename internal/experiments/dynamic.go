package experiments

import (
	"fmt"
	"math/rand"

	"rex/internal/core"
	"rex/internal/gossip"
	"rex/internal/metrics"
	"rex/internal/mf"
	"rex/internal/peersampling"
	"rex/internal/sim"
	"rex/internal/topology"
)

func init() {
	register(Experiment{
		ID: "ext-dynamic",
		Title: "Extension: REX over a dynamic peer-sampled overlay " +
			"(§II-B membership service) vs a static small world",
		Run: func(p Params) error {
			p = p.defaults()
			n := multiUserNodes(p.Full)
			w, err := multiUser(latestSpec(p.Full, p.Seed), n, p.Seed)
			if err != nil {
				return err
			}
			mcfg := mf.DefaultConfig()

			// Static baseline.
			gStatic, err := buildGraph("SW", n, p.Seed)
			if err != nil {
				return err
			}
			staticCfg := simConfig(w, gStatic, gossip.RMW, core.DataSharing, p, mcfg)
			static, err := sim.Run(staticCfg)
			if err != nil {
				return err
			}

			// Dynamic overlay: the peer-sampling service steps once per
			// epoch; the simulator consumes fresh snapshots. The view size
			// is chosen so average degree is comparable to the small world.
			psCfg := peersampling.Config{ViewSize: 4, SwapSize: 2, Healer: true}
			ps := peersampling.New(n, psCfg, rand.New(rand.NewSource(p.Seed)))
			for r := 0; r < 10; r++ {
				ps.Step() // warm-up mixing before training starts
			}
			lastEpoch := -1
			dynCfg := simConfig(w, gStatic, gossip.RMW, core.DataSharing, p, mcfg)
			dynCfg.Topology = func(epoch int) *topology.Graph {
				if epoch != lastEpoch {
					ps.Step()
					lastEpoch = epoch
				}
				return ps.Snapshot()
			}
			dynamic, err := sim.Run(dynCfg)
			if err != nil {
				return err
			}

			t := metrics.NewTable("Overlay", "Final RMSE", "Sim time", "Bytes/node")
			t.AddRow("static small world (deg ~6)",
				fmt.Sprintf("%.4f", static.FinalRMSE),
				metrics.FormatSeconds(static.TotalTimeMean),
				metrics.FormatBytes(static.BytesPerNode))
			t.AddRow(fmt.Sprintf("peer-sampled, resampled each epoch (deg ~%.0f)", gAvgDeg(ps)),
				fmt.Sprintf("%.4f", dynamic.FinalRMSE),
				metrics.FormatSeconds(dynamic.TotalTimeMean),
				metrics.FormatBytes(dynamic.BytesPerNode))
			fmt.Fprintln(p.Out, "== Extension: dynamic vs static overlays (RMW, REX) ==")
			t.Fprint(p.Out)
			fmt.Fprintln(p.Out, "a continuously re-sampled overlay spreads raw data at least as well as a")
			fmt.Fprintln(p.Out, "static graph — REX needs no fixed topology, only a membership service.")
			return nil
		},
	})
}

func gAvgDeg(ps *peersampling.Service) float64 { return ps.Snapshot().AvgDegree() }
