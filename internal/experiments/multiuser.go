package experiments

import (
	"fmt"

	"rex/internal/core"
	"rex/internal/metrics"
	"rex/internal/mf"
	"rex/internal/sim"
)

// multiUserNodes returns the node count of the §IV-B-b scenario: the paper
// partitions 610 users across 50 nodes; the scaled run uses 16.
func multiUserNodes(full bool) int {
	if full {
		return 50
	}
	return 16
}

// multiUserRuns executes (or fetches memoized) the multi-user MF scenario
// for all four setups.
func multiUserRuns(p Params) ([]pairResult, error) {
	return memoized(memoKey("multiuser", p.Full, p.Seed, p.scenarioTag()), func() ([]pairResult, error) {
		n := multiUserNodes(p.Full)
		w, err := multiUser(latestSpec(p.Full, p.Seed), n, p.Seed)
		if err != nil {
			return nil, err
		}
		mcfg := mf.DefaultConfig()
		var pairs []pairResult
		for si, s := range fourSetups {
			g, err := buildGraph(s.topo, n, p.Seed+int64(si))
			if err != nil {
				return nil, err
			}
			ms, err := sim.Run(simConfig(w, g, s.algo, core.ModelSharing, p, mcfg))
			if err != nil {
				return nil, fmt.Errorf("%v MS: %w", s, err)
			}
			rex, err := sim.Run(simConfig(w, g, s.algo, core.DataSharing, p, mcfg))
			if err != nil {
				return nil, fmt.Errorf("%v REX: %w", s, err)
			}
			pairs = append(pairs, pairResult{Setup: s, MS: ms, REX: rex})
		}
		return pairs, nil
	})
}

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Fig 4: multiple users per node, MF — test error vs simulated time (4 setups)",
		Run: func(p Params) error {
			p = p.defaults()
			pairs, err := multiUserRuns(p)
			if err != nil {
				return err
			}
			fmt.Fprintf(p.Out, "== Fig 4: %d users over %d nodes — MF, RMSE vs time ==\n",
				latestSpec(p.Full, p.Seed).Users, multiUserNodes(p.Full))
			for _, pr := range pairs {
				fmt.Fprintf(p.Out, "--- %v ---\n", pr.Setup)
				metrics.FprintSeries(p.Out, p.Points,
					rmseVsTime(pr.MS, "Test error, sharing model [s]"),
					rmseVsTime(pr.REX, "Test error, REX [s]"),
				)
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "table3",
		Title: "Table III: multiple users per node — REX speed-up over MS",
		Run: func(p Params) error {
			p = p.defaults()
			pairs, err := multiUserRuns(p)
			if err != nil {
				return err
			}
			return printSpeedupTable(p, pairs, "Table III (multiple users per node)")
		},
	})
}
