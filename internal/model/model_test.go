package model

import (
	"math"
	"math/rand"
	"testing"

	"rex/internal/dataset"
)

// constModel predicts a fixed value; enough to exercise RMSE mechanics.
type constModel float32

func (c constModel) Train([]dataset.Rating, int, *rand.Rand) {}
func (c constModel) Predict(uint32, uint32) float32          { return float32(c) }
func (c constModel) Marshal() ([]byte, error)                { return []byte{0}, nil }
func (c constModel) Unmarshal([]byte) error                  { return nil }
func (c constModel) MergeWeighted(float64, []Weighted)       {}
func (c constModel) ParamCount() int                         { return 1 }
func (c constModel) WireSize() int                           { return 1 }
func (c constModel) Clone() Model                            { return c }

func TestRMSEExact(t *testing.T) {
	data := []dataset.Rating{{Value: 3}, {Value: 5}}
	// Predicting 4: errors are 1 and 1 -> RMSE 1.
	if got := RMSE(constModel(4), data); math.Abs(got-1) > 1e-12 {
		t.Fatalf("rmse %v", got)
	}
}

func TestRMSEClampsPredictions(t *testing.T) {
	data := []dataset.Rating{{Value: 5}}
	// Model predicts 100, clamped to 5 -> zero error.
	if got := RMSE(constModel(100), data); got != 0 {
		t.Fatalf("clamped rmse %v", got)
	}
	// Model predicts -7, clamped to 0.5 against a 0.5 rating.
	if got := RMSE(constModel(-7), []dataset.Rating{{Value: 0.5}}); got != 0 {
		t.Fatalf("low clamp rmse %v", got)
	}
}

func TestRMSEEmpty(t *testing.T) {
	if got := RMSE(constModel(3), nil); got != 0 {
		t.Fatalf("empty rmse %v", got)
	}
}

func TestMarshaledSize(t *testing.T) {
	if got := MarshaledSize(constModel(1)); got != 1 {
		t.Fatalf("size %d", got)
	}
}
