// Package model defines the recommender-model contract shared by the two
// learners the paper evaluates (matrix factorization, §II-A-b, and the DNN
// recommender, §II-A-c), so the REX protocol (merge-train-share-test,
// Algorithm 2) is agnostic to which one is plugged in.
package model

import (
	"math"
	"math/rand"

	"rex/internal/dataset"
)

// Model is a trainable rating predictor.
//
// Train performs a fixed number of SGD steps on the provided data — the
// paper fixes the number of batches per epoch so epoch duration stays
// constant as the raw-data store grows (§III-E).
//
// Marshal serializes every parameter for model sharing; the byte length is
// exactly what a model-sharing node puts on the wire each epoch.
type Model interface {
	// Train runs `steps` SGD steps over the data, sampling with the rng.
	Train(data []dataset.Rating, steps int, rng *rand.Rand)
	// Predict returns the predicted rating for a (user, item) pair, using
	// whatever embeddings are known; unknown entities fall back to bias
	// terms or the global prior.
	Predict(user, item uint32) float32
	// Marshal serializes all parameters.
	Marshal() ([]byte, error)
	// Unmarshal replaces this model's parameters with the serialized ones.
	Unmarshal(b []byte) error
	// MergeWeighted folds alien models into this one: the receiver keeps
	// selfW of its own parameters and adds each alien model scaled by its
	// weight. Weights should sum to 1 with selfW. For parameters some
	// models lack (e.g. item embeddings never seen by a node), weights are
	// renormalized over the models that do have them (§III-C2: "when a
	// node has no embedding for a given user or item, we consider only
	// those of its neighbors").
	MergeWeighted(selfW float64, others []Weighted)
	// ParamCount returns the number of scalar parameters currently held.
	ParamCount() int
	// WireSize returns the exact byte length Marshal would produce, without
	// serializing — the quantity model-sharing pays per message, which the
	// simulator charges to the virtual network.
	WireSize() int
	// Clone returns an independent deep copy.
	Clone() Model
}

// Weighted pairs a model with its averaging weight (Metropolis–Hastings for
// D-PSGD, 1/2 for RMW pairwise averaging).
type Weighted struct {
	M Model
	W float64
}

// RMSE computes the root mean squared error of the model over the data,
// clamping predictions into the valid star range — the paper's test metric
// (§IV-A4).
func RMSE(m Model, data []dataset.Rating) float64 {
	if len(data) == 0 {
		return 0
	}
	var se float64
	for _, r := range data {
		p := float64(m.Predict(r.User, r.Item))
		if p < 0.5 {
			p = 0.5
		}
		if p > 5.0 {
			p = 5.0
		}
		d := p - float64(r.Value)
		se += d * d
	}
	return math.Sqrt(se / float64(len(data)))
}

// MarshaledSize returns the wire size of the model's serialization,
// tolerating errors by returning 0 (used only for metrics).
func MarshaledSize(m Model) int {
	b, err := m.Marshal()
	if err != nil {
		return 0
	}
	return len(b)
}
