// Package model defines the recommender-model contract shared by the two
// learners the paper evaluates (matrix factorization, §II-A-b, and the DNN
// recommender, §II-A-c), so the REX protocol (merge-train-share-test,
// Algorithm 2) is agnostic to which one is plugged in.
package model

import (
	"math"
	"math/rand"

	"rex/internal/dataset"
)

// Model is a trainable rating predictor.
//
// Train performs a fixed number of SGD steps on the provided data — the
// paper fixes the number of batches per epoch so epoch duration stays
// constant as the raw-data store grows (§III-E).
//
// Marshal serializes every parameter for model sharing; the byte length is
// exactly what a model-sharing node puts on the wire each epoch.
type Model interface {
	// Train runs `steps` SGD steps over the data, sampling with the rng.
	Train(data []dataset.Rating, steps int, rng *rand.Rand)
	// Predict returns the predicted rating for a (user, item) pair, using
	// whatever embeddings are known; unknown entities fall back to bias
	// terms or the global prior.
	Predict(user, item uint32) float32
	// Marshal serializes all parameters.
	Marshal() ([]byte, error)
	// Unmarshal replaces this model's parameters with the serialized ones.
	Unmarshal(b []byte) error
	// MergeWeighted folds alien models into this one: the receiver keeps
	// selfW of its own parameters and adds each alien model scaled by its
	// weight. Weights should sum to 1 with selfW. For parameters some
	// models lack (e.g. item embeddings never seen by a node), weights are
	// renormalized over the models that do have them (§III-C2: "when a
	// node has no embedding for a given user or item, we consider only
	// those of its neighbors").
	MergeWeighted(selfW float64, others []Weighted)
	// ParamCount returns the number of scalar parameters currently held.
	ParamCount() int
	// WireSize returns the exact byte length Marshal would produce, without
	// serializing — the quantity model-sharing pays per message, which the
	// simulator charges to the virtual network.
	WireSize() int
	// Clone returns an independent deep copy.
	Clone() Model
}

// Weighted pairs a model with its averaging weight (Metropolis–Hastings for
// D-PSGD, 1/2 for RMW pairwise averaging).
type Weighted struct {
	M Model
	W float64
}

// BatchPredictor is an optional Model extension: PredictBatch fills out[j]
// with exactly what Predict(users[j], items[j]) would return, amortizing
// per-call overhead (and, for the DNN, running one forward pass for the
// whole batch instead of one per example). The three slices must have
// equal length. RMSE uses it when available.
type BatchPredictor interface {
	PredictBatch(users, items []uint32, out []float32)
}

// AppendMarshaler is an optional Model extension: MarshalAppend appends
// the model's canonical serialization (identical bytes to Marshal) to dst
// and returns the extended slice, letting callers reuse buffers across
// epochs instead of allocating per share.
type AppendMarshaler interface {
	MarshalAppend(dst []byte) ([]byte, error)
}

// Canonicalizer is an optional Model extension for implementations whose
// order-sensitive read paths (Marshal, merging as a source) lazily build
// internal layout — e.g. a sparse table's ascending-id slot permutation.
// Canonicalize forces that layout fresh on the caller's goroutine, so a
// model about to be shared with several concurrent readers mutates
// nothing once published. It never changes observable state.
type Canonicalizer interface {
	Canonicalize()
}

// Copier is an optional Model extension for pooled snapshots: CopyFrom
// overwrites the receiver so it is indistinguishable from src.Clone(),
// reusing the receiver's backing storage. It returns false (receiver
// unspecified-but-safe to Clone over) when src's family or shape is
// incompatible; callers must fall back to src.Clone() in that case.
type Copier interface {
	CopyFrom(src Model) bool
}

// rmseBatch is the chunk size of the batched RMSE path: big enough to
// amortize batch dispatch, small enough to keep the id/pred scratch on the
// stack.
const rmseBatch = 512

// RMSE computes the root mean squared error of the model over the data,
// clamping predictions into the valid star range — the paper's test metric
// (§IV-A4). Models implementing BatchPredictor are evaluated in chunks of
// rmseBatch; the result is identical to the per-example path because
// predictions match Predict exactly and the error accumulation order is
// unchanged.
func RMSE(m Model, data []dataset.Rating) float64 {
	if len(data) == 0 {
		return 0
	}
	var se float64
	if bp, ok := m.(BatchPredictor); ok {
		var users, items [rmseBatch]uint32
		var preds [rmseBatch]float32
		for start := 0; start < len(data); start += rmseBatch {
			chunk := data[start:min(start+rmseBatch, len(data))]
			for i, r := range chunk {
				users[i], items[i] = r.User, r.Item
			}
			bp.PredictBatch(users[:len(chunk)], items[:len(chunk)], preds[:len(chunk)])
			for i, r := range chunk {
				se += clampedSqErr(preds[i], r.Value)
			}
		}
	} else {
		for _, r := range data {
			se += clampedSqErr(m.Predict(r.User, r.Item), r.Value)
		}
	}
	return math.Sqrt(se / float64(len(data)))
}

// clampedSqErr clamps a prediction into the valid star range [0.5, 5.0]
// and returns its squared error against the observed rating.
func clampedSqErr(pred, want float32) float64 {
	p := float64(pred)
	if p < 0.5 {
		p = 0.5
	}
	if p > 5.0 {
		p = 5.0
	}
	d := p - float64(want)
	// float64(...) bars FMA contraction of d*d into the caller's `se +=`
	// after inlining on arm64, keeping reported RMSE identical across
	// architectures (see internal/vec's package doc).
	return float64(d * d)
}

// MarshaledSize returns the wire size of the model's serialization,
// tolerating errors by returning 0 (used only for metrics).
func MarshaledSize(m Model) int {
	b, err := m.Marshal()
	if err != nil {
		return 0
	}
	return len(b)
}
