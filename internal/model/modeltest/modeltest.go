// Package modeltest is the conformance suite every model.Model
// implementation runs: one shared set of invariants over Predict /
// PredictBatch / Marshal / Unmarshal / MergeWeighted / Clone / WireSize,
// so the REX protocol can swap model families (§II-A) without re-deriving
// per-family tests. mf and nn both invoke Run from their own test
// packages; a new model family gets the whole battery with one call.
package modeltest

import (
	"math"
	"math/rand"
	"testing"

	"rex/internal/dataset"
	"rex/internal/model"
)

// Config describes the implementation under test.
type Config struct {
	// New constructs a fresh, untrained model. Every call must return an
	// identically-initialized instance (the attested-equal-start
	// property all REX nodes rely on).
	New func() model.Model
	// Data is a training sample whose user/item ids are all in
	// vocabulary for the implementation.
	Data []dataset.Rating
	// OOVUser/OOVItem are ids outside the model's vocabulary (for dense
	// id spaces) or simply unseen by training (for lazily-materialized
	// ones); Predict must fall back gracefully for them.
	OOVUser, OOVItem uint32
	// TrainSteps is how many SGD steps the suite trains where it needs a
	// non-trivial model.
	TrainSteps int
}

// Run executes the conformance suite.
func Run(t *testing.T, cfg Config) {
	if cfg.TrainSteps <= 0 {
		cfg.TrainSteps = 500
	}
	t.Run("EmptyPredictFallback", func(t *testing.T) { emptyPredictFallback(t, cfg) })
	t.Run("BatchMatchesScalar", func(t *testing.T) { batchMatchesScalar(t, cfg) })
	t.Run("MarshalRoundtrip", func(t *testing.T) { marshalRoundtrip(t, cfg) })
	t.Run("MarshalAppendCanonical", func(t *testing.T) { marshalAppendCanonical(t, cfg) })
	t.Run("CloneIndependent", func(t *testing.T) { cloneIndependent(t, cfg) })
	t.Run("CopierErasesLayout", func(t *testing.T) { copierErasesLayout(t, cfg) })
	t.Run("MergeSelfIdempotent", func(t *testing.T) { mergeSelfIdempotent(t, cfg) })
	t.Run("RMSEClampEdges", func(t *testing.T) { rmseClampEdges(t, cfg) })
}

func trained(t *testing.T, cfg Config) model.Model {
	t.Helper()
	m := cfg.New()
	m.Train(cfg.Data, cfg.TrainSteps, rand.New(rand.NewSource(17)))
	return m
}

// pairs returns probe (user, item) pairs: the training data's own pairs
// plus out-of-vocabulary combinations.
func pairs(cfg Config) (users, items []uint32) {
	n := min(len(cfg.Data), 256)
	for _, r := range cfg.Data[:n] {
		users = append(users, r.User)
		items = append(items, r.Item)
	}
	users = append(users, cfg.OOVUser, cfg.OOVUser, cfg.Data[0].User)
	items = append(items, cfg.OOVItem, cfg.Data[0].Item, cfg.OOVItem)
	return users, items
}

// emptyPredictFallback: a fresh model must answer any (user, item) —
// including out-of-vocabulary ids — with a finite prediction, and its
// batch path must agree with the scalar path bit for bit.
func emptyPredictFallback(t *testing.T, cfg Config) {
	m := cfg.New()
	users, items := pairs(cfg)
	for i := range users {
		p := m.Predict(users[i], items[i])
		if math.IsNaN(float64(p)) || math.IsInf(float64(p), 0) {
			t.Fatalf("empty model Predict(%d, %d) = %v", users[i], items[i], p)
		}
	}
	if bp, ok := m.(model.BatchPredictor); ok {
		out := make([]float32, len(users))
		bp.PredictBatch(users, items, out)
		for i := range users {
			if want := m.Predict(users[i], items[i]); math.Float32bits(out[i]) != math.Float32bits(want) {
				t.Fatalf("empty model batch[%d] = %v, scalar = %v", i, out[i], want)
			}
		}
	}
}

// batchMatchesScalar: after training, PredictBatch must reproduce Predict
// exactly for every element, in-vocabulary and out.
func batchMatchesScalar(t *testing.T, cfg Config) {
	m := trained(t, cfg)
	bp, ok := m.(model.BatchPredictor)
	if !ok {
		t.Skip("model does not implement BatchPredictor")
	}
	users, items := pairs(cfg)
	out := make([]float32, len(users))
	bp.PredictBatch(users, items, out)
	for i := range users {
		want := m.Predict(users[i], items[i])
		if math.Float32bits(out[i]) != math.Float32bits(want) {
			t.Fatalf("batch[%d] (user %d item %d) = %v, scalar = %v",
				i, users[i], items[i], out[i], want)
		}
	}
}

// marshalRoundtrip: WireSize must equal the marshaled length, a fresh
// model must adopt the bytes exactly (bitwise-equal predictions), and
// re-marshaling must be canonical.
func marshalRoundtrip(t *testing.T, cfg Config) {
	m := trained(t, cfg)
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != m.WireSize() {
		t.Fatalf("WireSize %d != marshaled %d", m.WireSize(), len(buf))
	}
	if m.ParamCount() <= 0 {
		t.Fatal("trained model reports no parameters")
	}
	m2 := cfg.New()
	if err := m2.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	users, items := pairs(cfg)
	for i := range users {
		a, b := m.Predict(users[i], items[i]), m2.Predict(users[i], items[i])
		if math.Float32bits(a) != math.Float32bits(b) {
			t.Fatalf("prediction differs after roundtrip: %v vs %v", a, b)
		}
	}
	buf2, err := m2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(buf2) {
		t.Fatal("serialization not canonical")
	}
}

// marshalAppendCanonical: the zero-copy path must produce exactly the
// Marshal bytes, both onto a nil buffer and appended after a prefix into
// reused capacity.
func marshalAppendCanonical(t *testing.T, cfg Config) {
	m := trained(t, cfg)
	am, ok := m.(model.AppendMarshaler)
	if !ok {
		t.Skip("model does not implement AppendMarshaler")
	}
	want, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := am.MarshalAppend(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("MarshalAppend(nil) differs from Marshal")
	}
	prefix := []byte{0xAA, 0xBB, 0xCC}
	reused := make([]byte, len(prefix), len(prefix)+len(want)+64)
	copy(reused, prefix)
	got2, err := am.MarshalAppend(reused)
	if err != nil {
		t.Fatal(err)
	}
	if &got2[0] != &reused[0] {
		t.Fatal("MarshalAppend reallocated despite sufficient capacity")
	}
	if string(got2[:len(prefix)]) != string(prefix) || string(got2[len(prefix):]) != string(want) {
		t.Fatal("MarshalAppend after prefix corrupted the buffer")
	}
}

// cloneIndependent: training a clone must not disturb the original.
func cloneIndependent(t *testing.T, cfg Config) {
	m := trained(t, cfg)
	users, items := pairs(cfg)
	before := make([]float32, len(users))
	for i := range users {
		before[i] = m.Predict(users[i], items[i])
	}
	c := m.Clone()
	c.Train(cfg.Data, cfg.TrainSteps, rand.New(rand.NewSource(18)))
	for i := range users {
		if got := m.Predict(users[i], items[i]); math.Float32bits(got) != math.Float32bits(before[i]) {
			t.Fatalf("training a clone mutated the original: %v vs %v", got, before[i])
		}
	}
}

// copierErasesLayout: for implementations with a pooled-buffer CopyFrom
// path, copying into a destination with its own history — different data,
// different internal materialization order, different backing-array
// capacities — must serialize byte-identically to the source. This is
// what lets sparse layouts keep entity rows in touch order internally:
// whatever layout the destination had before must be invisible on the
// wire afterwards.
func copierErasesLayout(t *testing.T, cfg Config) {
	src := trained(t, cfg)
	dst := cfg.New()
	cp, ok := dst.(model.Copier)
	if !ok {
		t.Skip("model does not implement model.Copier")
	}
	// Give dst a distinct history: reversed data order changes which
	// entities materialize first in a lazily-allocated implementation.
	rev := make([]dataset.Rating, len(cfg.Data))
	for i, r := range cfg.Data {
		rev[len(rev)-1-i] = r
	}
	dst.Train(rev, cfg.TrainSteps/2+1, rand.New(rand.NewSource(23)))
	if !cp.CopyFrom(src) {
		t.Fatal("CopyFrom rejected a same-config source")
	}
	want, err := src.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("CopyFrom destination serializes differently from source")
	}
	users, items := pairs(cfg)
	for i := range users {
		a, b := src.Predict(users[i], items[i]), dst.Predict(users[i], items[i])
		if math.Float32bits(a) != math.Float32bits(b) {
			t.Fatalf("prediction differs after CopyFrom: %v vs %v", a, b)
		}
	}
}

// mergeSelfIdempotent: averaging a model with its own clone must leave
// predictions essentially unchanged (float rounding only).
func mergeSelfIdempotent(t *testing.T, cfg Config) {
	m := trained(t, cfg)
	c := m.Clone()
	m.MergeWeighted(0.5, []model.Weighted{{M: c, W: 0.5}})
	users, items := pairs(cfg)
	for i := range users {
		a, b := m.Predict(users[i], items[i]), c.Predict(users[i], items[i])
		if d := float64(a - b); math.Abs(d) > 1e-4 {
			t.Fatalf("self-merge moved prediction %d: %v vs %v", i, a, b)
		}
	}
}

// offsetModel shifts a base model's predictions by a constant, driving
// them outside the valid star range so RMSE's clamping edges are
// exercised with the real implementation underneath (satisfying the
// clamp-coverage requirement per model family, not just with a stub).
type offsetModel struct {
	model.Model
	off float32
}

func (o offsetModel) Predict(u, i uint32) float32 { return o.Model.Predict(u, i) + o.off }

func (o offsetModel) PredictBatch(users, items []uint32, out []float32) {
	if bp, ok := o.Model.(model.BatchPredictor); ok {
		bp.PredictBatch(users, items, out)
		for i := range out {
			out[i] += o.off
		}
		return
	}
	for i := range out {
		out[i] = o.Predict(users[i], items[i])
	}
}

// rmseClampEdges: predictions pushed far above 5.0 clamp to 5.0 and far
// below 0.5 clamp to 0.5, for both the scalar and the batched RMSE path.
func rmseClampEdges(t *testing.T, cfg Config) {
	m := trained(t, cfg)
	data := []dataset.Rating{
		{User: cfg.Data[0].User, Item: cfg.Data[0].Item, Value: 5.0},
		{User: cfg.Data[min(1, len(cfg.Data)-1)].User, Item: cfg.Data[min(1, len(cfg.Data)-1)].Item, Value: 5.0},
	}
	// +1000 drives any sane prediction above the 5.0 clamp: zero error.
	if got := model.RMSE(offsetModel{m, 1000}, data); got != 0 {
		t.Fatalf("high-clamp RMSE = %v, want 0", got)
	}
	for i := range data {
		data[i].Value = 0.5
	}
	if got := model.RMSE(offsetModel{m, -1000}, data); got != 0 {
		t.Fatalf("low-clamp RMSE = %v, want 0", got)
	}
	// Mixed: clamped-to-5 predictions against 3-star ratings err by
	// exactly 2 each.
	for i := range data {
		data[i].Value = 3
	}
	if got := model.RMSE(offsetModel{m, 1000}, data); math.Abs(got-2) > 1e-12 {
		t.Fatalf("clamped RMSE = %v, want 2", got)
	}
}
