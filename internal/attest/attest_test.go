package attest

import (
	"bytes"
	"math/rand"
	"testing"
)

func detRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func infraWithPlatforms(t *testing.T, n int) (*Infrastructure, []*Platform) {
	t.Helper()
	inf := NewInfrastructure()
	ps := make([]*Platform, n)
	for i := range ps {
		p, err := inf.NewPlatform(detRand(int64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		ps[i] = p
	}
	return inf, ps
}

func TestLocalReportVerification(t *testing.T) {
	_, ps := infraWithPlatforms(t, 2)
	m := MeasureCode([]byte("enclave"))
	var ud [UserDataSize]byte
	ud[0] = 42
	r := ps[0].CreateReport(m, ud)
	if !ps[0].VerifyReportLocal(r) {
		t.Fatal("own platform rejected its report")
	}
	// Local attestation must fail across platforms (different report keys).
	if ps[1].VerifyReportLocal(r) {
		t.Fatal("foreign platform verified a local report")
	}
	r.UserData[0] ^= 1
	if ps[0].VerifyReportLocal(r) {
		t.Fatal("tampered report verified")
	}
}

func TestQuoteVerify(t *testing.T) {
	inf, ps := infraWithPlatforms(t, 1)
	m := MeasureCode([]byte("enclave"))
	var ud [UserDataSize]byte
	q, err := ps[0].QuoteReport(ps[0].CreateReport(m, ud))
	if err != nil {
		t.Fatal(err)
	}
	if err := inf.VerifyQuote(q); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
}

func TestQuoteTamperedSignature(t *testing.T) {
	inf, ps := infraWithPlatforms(t, 1)
	q, err := ps[0].QuoteReport(ps[0].CreateReport(MeasureCode([]byte("e")), [UserDataSize]byte{}))
	if err != nil {
		t.Fatal(err)
	}
	q.Report.UserData[0] ^= 1 // signed content changed
	if err := inf.VerifyQuote(q); err != ErrBadSignature {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestQuoteUnknownAndRevokedCert(t *testing.T) {
	inf, ps := infraWithPlatforms(t, 1)
	q, err := ps[0].QuoteReport(ps[0].CreateReport(MeasureCode([]byte("e")), [UserDataSize]byte{}))
	if err != nil {
		t.Fatal(err)
	}
	bad := *q
	bad.PCKCertID = 999
	if err := inf.VerifyQuote(&bad); err != ErrUnknownCert {
		t.Fatalf("want ErrUnknownCert, got %v", err)
	}
	inf.Revoke(q.PCKCertID)
	if err := inf.VerifyQuote(q); err != ErrRevokedCert {
		t.Fatalf("want ErrRevokedCert, got %v", err)
	}
}

func TestQERejectsForgedReport(t *testing.T) {
	_, ps := infraWithPlatforms(t, 2)
	r := ps[0].CreateReport(MeasureCode([]byte("e")), [UserDataSize]byte{})
	// Platform 1's QE must refuse to quote platform 0's report.
	if _, err := ps[1].QuoteReport(r); err == nil {
		t.Fatal("QE quoted a foreign report")
	}
}

func TestQuoteJSONRoundtrip(t *testing.T) {
	_, ps := infraWithPlatforms(t, 1)
	q, err := ps[0].QuoteReport(ps[0].CreateReport(MeasureCode([]byte("e")), [UserDataSize]byte{7}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := UnmarshalQuote(b)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Report.UserData != q.Report.UserData || !bytes.Equal(q2.Signature, q.Signature) {
		t.Fatal("quote JSON roundtrip lost data")
	}
	if _, err := UnmarshalQuote([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// runExchange drives two Exchange sides to completion, returning both keys.
func runExchange(t *testing.T, inf *Infrastructure, pa, pb *Platform, ma, mb Measurement) ([]byte, []byte, error) {
	t.Helper()
	ea, err := NewExchange(pa, inf, ma, detRand(100))
	if err != nil {
		t.Fatal(err)
	}
	eb, err := NewExchange(pb, inf, mb, detRand(200))
	if err != nil {
		t.Fatal(err)
	}
	helloA, err := ea.Hello()
	if err != nil {
		t.Fatal(err)
	}
	helloB, err := eb.Hello()
	if err != nil {
		t.Fatal(err)
	}
	quoteB, err := eb.HandleMessage(helloA) // B answers A's hello with its quote
	if err != nil {
		return nil, nil, err
	}
	quoteA, err := ea.HandleMessage(helloB)
	if err != nil {
		return nil, nil, err
	}
	if _, err := ea.HandleMessage(quoteB); err != nil {
		return nil, nil, err
	}
	if _, err := eb.HandleMessage(quoteA); err != nil {
		return nil, nil, err
	}
	if !ea.Complete() || !eb.Complete() {
		t.Fatal("exchange incomplete after all messages")
	}
	ka, err := ea.ChannelKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := eb.ChannelKey()
	if err != nil {
		t.Fatal(err)
	}
	return ka, kb, nil
}

func TestExchangeEndToEnd(t *testing.T) {
	inf, ps := infraWithPlatforms(t, 2)
	m := MeasureCode([]byte("rex-enclave"))
	ka, kb, err := runExchange(t, inf, ps[0], ps[1], m, m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ka, kb) {
		t.Fatal("peers derived different channel keys")
	}
	if len(ka) != 32 {
		t.Fatalf("key length %d", len(ka))
	}
}

func TestExchangeMeasurementMismatch(t *testing.T) {
	inf, ps := infraWithPlatforms(t, 2)
	ma := MeasureCode([]byte("honest code"))
	mb := MeasureCode([]byte("rogue code"))
	_, _, err := runExchange(t, inf, ps[0], ps[1], ma, mb)
	if err == nil {
		t.Fatal("different code bases attested successfully")
	}
}

func TestExchangeKeyBeforeComplete(t *testing.T) {
	inf, ps := infraWithPlatforms(t, 1)
	e, err := NewExchange(ps[0], inf, MeasureCode([]byte("e")), detRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ChannelKey(); err == nil {
		t.Fatal("key issued before attestation")
	}
}

func TestExchangeQuoteRequiresHello(t *testing.T) {
	inf, ps := infraWithPlatforms(t, 2)
	m := MeasureCode([]byte("e"))
	ea, _ := NewExchange(ps[0], inf, m, detRand(1))
	eb, _ := NewExchange(ps[1], inf, m, detRand(2))
	helloA, _ := ea.Hello()
	quoteB, err := eb.HandleMessage(helloA)
	if err != nil {
		t.Fatal(err)
	}
	// A handling B's quote without A's own nonce binding check: the quote
	// binds A's nonce (it answered A's hello), so this succeeds.
	if _, err := ea.HandleMessage(quoteB); err != nil {
		t.Fatalf("legit quote rejected: %v", err)
	}
	// But a REPLAYED quote bound to a different nonce must fail.
	ea2, _ := NewExchange(ps[0], inf, m, detRand(3))
	if _, err := ea2.HandleMessage(quoteB); err != ErrStaleQuote {
		t.Fatalf("want ErrStaleQuote, got %v", err)
	}
}

func TestExchangeUnknownMessage(t *testing.T) {
	inf, ps := infraWithPlatforms(t, 1)
	e, _ := NewExchange(ps[0], inf, MeasureCode([]byte("e")), detRand(1))
	if _, err := e.HandleMessage([]byte(`{"type":"bogus"}`)); err == nil {
		t.Fatal("unknown message type accepted")
	}
	if _, err := e.HandleMessage([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMeasurementString(t *testing.T) {
	m := MeasureCode([]byte("x"))
	if m.String() == "" {
		t.Fatal("empty measurement string")
	}
	if MeasureCode([]byte("x")) != m {
		t.Fatal("measurement not deterministic")
	}
	if MeasureCode([]byte("y")) == m {
		t.Fatal("different code, same measurement")
	}
}
