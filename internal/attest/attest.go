// Package attest simulates the SGX remote-attestation machinery REX relies
// on (paper §II-D, §III-A): enclave reports measured at initialization,
// local verification by a platform quoting enclave (QE), conversion into
// signed quotes, and verification against data-center attestation
// primitives (DCAP) collateral. All signatures are real ECDSA-P256 over
// SHA-256; only the hardware root of trust is software-simulated.
package attest

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Measurement is the SHA-256 hash of an enclave's initial code, data and
// attributes — MRENCLAVE in SGX terms. REX requires all nodes to run the
// exact same code, so every honest node's measurement is identical
// (§III-A).
type Measurement [32]byte

// MeasureCode produces a measurement from an enclave identity blob (in a
// real SGX deployment, hardware computes this over the loaded pages).
func MeasureCode(code []byte) Measurement { return sha256.Sum256(code) }

// String renders the measurement in hex.
func (m Measurement) String() string { return fmt.Sprintf("%x", m[:8]) }

// UserDataSize is the size of the quote's free-form user-data field. REX
// fills it with the enclave's ECDH public key (32 bytes) plus a 32-byte
// challenge binding (§III-A).
const UserDataSize = 64

// Report is what an enclave emits for attestation: its measurement plus
// caller-chosen user data, MACed with a key only the local platform knows,
// so it is only locally verifiable (§II-D).
type Report struct {
	Measurement Measurement        `json:"measurement"`
	UserData    [UserDataSize]byte `json:"user_data"`
	PlatformID  uint32             `json:"platform_id"`
	MAC         [32]byte           `json:"mac"`
}

func (r *Report) macInput() []byte {
	buf := make([]byte, 0, 32+UserDataSize+4)
	buf = append(buf, r.Measurement[:]...)
	buf = append(buf, r.UserData[:]...)
	buf = append(buf, byte(r.PlatformID), byte(r.PlatformID>>8), byte(r.PlatformID>>16), byte(r.PlatformID>>24))
	return buf
}

// Quote is a report countersigned by the platform's quoting enclave with
// its provisioning certification key (PCK); remotely verifiable through
// DCAP collateral.
type Quote struct {
	Report    Report `json:"report"`
	Signature []byte `json:"signature"` // ECDSA-P256 ASN.1 over SHA-256 of the report
	PCKCertID uint32 `json:"pck_cert_id"`
}

// Marshal encodes the quote as JSON — the paper's implementation likewise
// used a JSON library for attestation serialization (§III-E).
func (q *Quote) Marshal() ([]byte, error) { return json.Marshal(q) }

// UnmarshalQuote decodes a JSON quote.
func UnmarshalQuote(b []byte) (*Quote, error) {
	var q Quote
	if err := json.Unmarshal(b, &q); err != nil {
		return nil, fmt.Errorf("attest: decoding quote: %w", err)
	}
	return &q, nil
}

// Platform models one SGX machine: it owns the hardware report key (for
// local attestation) and hosts a quoting enclave holding a PCK private key
// certified by the infrastructure.
type Platform struct {
	ID        uint32
	reportKey []byte
	qeKey     *ecdsa.PrivateKey
	certID    uint32
}

// CreateReport builds a locally-verifiable report for an enclave with the
// given measurement and user data (hardware EREPORT analogue).
func (p *Platform) CreateReport(m Measurement, userData [UserDataSize]byte) Report {
	r := Report{Measurement: m, UserData: userData, PlatformID: p.ID}
	mac := hmac.New(sha256.New, p.reportKey)
	mac.Write(r.macInput())
	copy(r.MAC[:], mac.Sum(nil))
	return r
}

// VerifyReportLocal checks a report's MAC; only possible on the platform
// that produced it, exactly like SGX local attestation.
func (p *Platform) VerifyReportLocal(r Report) bool {
	if r.PlatformID != p.ID {
		return false
	}
	mac := hmac.New(sha256.New, p.reportKey)
	mac.Write(r.macInput())
	return hmac.Equal(mac.Sum(nil), r.MAC[:])
}

// QuoteReport is the quoting enclave's job: locally verify the target's
// report, then sign it for remote verification (§II-D).
func (p *Platform) QuoteReport(r Report) (*Quote, error) {
	if !p.VerifyReportLocal(r) {
		return nil, errors.New("attest: QE rejected report (bad MAC or foreign platform)")
	}
	digest := sha256.Sum256(r.macInput())
	sig, err := ecdsa.SignASN1(notRandom{}, p.qeKey, digest[:])
	if err != nil {
		return nil, fmt.Errorf("attest: QE signing: %w", err)
	}
	return &Quote{Report: r, Signature: sig, PCKCertID: p.certID}, nil
}

// notRandom makes ECDSA deterministic-ish for reproducible tests; SignASN1
// hashes this entropy with the private key and digest (Go's hedged
// signatures), so signatures remain secure for the simulation's purposes.
type notRandom struct{}

func (notRandom) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0x42
	}
	return len(p), nil
}

// Infrastructure is the simulated Intel provisioning + DCAP backend: it
// certifies platform PCK keys at manufacture and verifies quote signatures
// for remote verifiers, with revocation support.
type Infrastructure struct {
	nextPlatform uint32
	nextCert     uint32
	certs        map[uint32]*ecdsa.PublicKey
	revoked      map[uint32]bool
}

// NewInfrastructure creates an empty provisioning/DCAP backend.
func NewInfrastructure() *Infrastructure {
	return &Infrastructure{
		certs:   make(map[uint32]*ecdsa.PublicKey),
		revoked: make(map[uint32]bool),
	}
}

// NewPlatform manufactures a platform: generates its report key and PCK
// key pair (entropy from rand) and registers the PCK certificate.
//
// The keys are a pure function of the bytes read from rand. That matters
// for multi-process clusters: every rexnode process re-derives the whole
// cluster's collateral from the shared seed, which only verifies if equal
// entropy yields equal keys. ecdsa.GenerateKey cannot provide this — Go
// deliberately randomizes its reads (randutil.MaybeReadByte) so callers
// cannot rely on determinism — hence the explicit derivation here.
func (inf *Infrastructure) NewPlatform(rand io.Reader) (*Platform, error) {
	key, err := deriveP256Key(rand)
	if err != nil {
		return nil, fmt.Errorf("attest: generating PCK key: %w", err)
	}
	reportKey := make([]byte, 32)
	if _, err := io.ReadFull(rand, reportKey); err != nil {
		return nil, fmt.Errorf("attest: generating report key: %w", err)
	}
	inf.nextPlatform++
	inf.nextCert++
	p := &Platform{
		ID:        inf.nextPlatform,
		reportKey: reportKey,
		qeKey:     key,
		certID:    inf.nextCert,
	}
	inf.certs[p.certID] = &key.PublicKey
	return p, nil
}

// deriveP256Key builds a P-256 private key deterministically from the
// entropy stream: 40 bytes (320 bits) reduced into [1, N-1], so the
// modular bias is negligible (~2^-64).
func deriveP256Key(rand io.Reader) (*ecdsa.PrivateKey, error) {
	buf := make([]byte, 40)
	if _, err := io.ReadFull(rand, buf); err != nil {
		return nil, err
	}
	curve := elliptic.P256()
	nMinus1 := new(big.Int).Sub(curve.Params().N, big.NewInt(1))
	d := new(big.Int).SetBytes(buf)
	d.Mod(d, nMinus1).Add(d, big.NewInt(1))
	priv := &ecdsa.PrivateKey{D: d}
	priv.Curve = curve
	priv.X, priv.Y = curve.ScalarBaseMult(d.Bytes())
	return priv, nil
}

// Revoke marks a platform certificate as revoked; subsequent verifications
// of its quotes fail.
func (inf *Infrastructure) Revoke(certID uint32) { inf.revoked[certID] = true }

// Errors returned by VerifyQuote.
var (
	ErrUnknownCert  = errors.New("attest: unknown PCK certificate")
	ErrRevokedCert  = errors.New("attest: revoked PCK certificate")
	ErrBadSignature = errors.New("attest: invalid quote signature")
)

// VerifyQuote is the DCAP check a remote verifier performs: the signing
// certificate must be known and unrevoked, and the ECDSA signature must
// cover the report (§II-D). Measurement policy is the caller's job.
func (inf *Infrastructure) VerifyQuote(q *Quote) error {
	pub, ok := inf.certs[q.PCKCertID]
	if !ok {
		return ErrUnknownCert
	}
	if inf.revoked[q.PCKCertID] {
		return ErrRevokedCert
	}
	digest := sha256.Sum256(q.Report.macInput())
	if !ecdsa.VerifyASN1(pub, digest[:], q.Signature) {
		return ErrBadSignature
	}
	return nil
}
