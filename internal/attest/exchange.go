package attest

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"rex/internal/seccha"
)

// Exchange drives one side of REX's mutual attestation (paper §III-A):
//
//  1. both peers exchange fresh nonces (hello);
//  2. each peer obtains a quote over a report whose user-data field holds
//     its ECDH public key and a hash binding the peer's nonce (freshness);
//  3. each peer DCAP-verifies the other's quote, requires the measurement
//     to equal its own (all REX nodes run identical code), and combines the
//     quoted public key with its private key into the shared channel key.
//
// After Complete() returns true, ChannelKey() yields the symmetric key for
// the encrypted session.
type Exchange struct {
	platform *Platform
	inf      *Infrastructure
	meas     Measurement
	kp       *seccha.KeyPair

	localNonce    [16]byte
	peerNonce     [16]byte
	havePeerNonce bool

	peerPub  []byte
	peerMeas Measurement
	done     bool
}

// helloMsg and quoteMsg are the two wire messages, serialized as JSON just
// like the paper's implementation (§III-E). Attestation traffic is
// deliberately cleartext: it carries no secrets, and forgeries fail
// verification (paper Algorithm 1 commentary).
type helloMsg struct {
	Type  string `json:"type"`
	Nonce []byte `json:"nonce"`
}

type quoteMsg struct {
	Type  string          `json:"type"`
	Quote json.RawMessage `json:"quote"`
}

// NewExchange prepares an attestation exchange for an enclave with the
// given measurement hosted on platform p; entropy for the ECDH key and
// nonce is read from rand.
func NewExchange(p *Platform, inf *Infrastructure, meas Measurement, rand io.Reader) (*Exchange, error) {
	kp, err := seccha.GenerateKeyPair(rand)
	if err != nil {
		return nil, err
	}
	e := &Exchange{platform: p, inf: inf, meas: meas, kp: kp}
	if _, err := io.ReadFull(rand, e.localNonce[:]); err != nil {
		return nil, fmt.Errorf("attest: nonce: %w", err)
	}
	return e, nil
}

// Hello produces this side's opening message.
func (e *Exchange) Hello() ([]byte, error) {
	return json.Marshal(helloMsg{Type: "hello", Nonce: e.localNonce[:]})
}

// binding derives the freshness hash placed in user-data alongside the
// ECDH key: H("rex-attest" ‖ peerNonce ‖ pubkey).
func binding(peerNonce, pub []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("rex-attest-v1"))
	h.Write(peerNonce)
	h.Write(pub)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// HandleMessage processes one inbound attestation message and returns the
// response to send (nil when the exchange needs no further output).
func (e *Exchange) HandleMessage(raw []byte) ([]byte, error) {
	var probe struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("attest: undecodable message: %w", err)
	}
	switch probe.Type {
	case "hello":
		var h helloMsg
		if err := json.Unmarshal(raw, &h); err != nil {
			return nil, err
		}
		if len(h.Nonce) != len(e.peerNonce) {
			return nil, fmt.Errorf("attest: bad nonce length %d", len(h.Nonce))
		}
		copy(e.peerNonce[:], h.Nonce)
		e.havePeerNonce = true
		return e.buildQuote()
	case "quote":
		var q quoteMsg
		if err := json.Unmarshal(raw, &q); err != nil {
			return nil, err
		}
		return nil, e.verifyQuote(q.Quote)
	default:
		return nil, fmt.Errorf("attest: unknown message type %q", probe.Type)
	}
}

func (e *Exchange) buildQuote() ([]byte, error) {
	if !e.havePeerNonce {
		return nil, errors.New("attest: quote requested before hello")
	}
	var ud [UserDataSize]byte
	pub := e.kp.PublicKey()
	copy(ud[:32], pub)
	b := binding(e.peerNonce[:], pub)
	copy(ud[32:], b[:])
	report := e.platform.CreateReport(e.meas, ud)
	quote, err := e.platform.QuoteReport(report)
	if err != nil {
		return nil, err
	}
	qb, err := quote.Marshal()
	if err != nil {
		return nil, err
	}
	return json.Marshal(quoteMsg{Type: "quote", Quote: qb})
}

// Attestation failure modes surfaced to callers.
var (
	ErrMeasurementMismatch = errors.New("attest: peer runs different code (measurement mismatch)")
	ErrStaleQuote          = errors.New("attest: quote does not bind our nonce (possible replay)")
)

func (e *Exchange) verifyQuote(raw []byte) error {
	q, err := UnmarshalQuote(raw)
	if err != nil {
		return err
	}
	if err := e.inf.VerifyQuote(q); err != nil {
		return err
	}
	// REX policy: the peer must run the exact same code we do (§III-A).
	if q.Report.Measurement != e.meas {
		return ErrMeasurementMismatch
	}
	pub := q.Report.UserData[:32]
	want := binding(e.localNonce[:], pub)
	if !bytes.Equal(q.Report.UserData[32:], want[:]) {
		return ErrStaleQuote
	}
	e.peerPub = append([]byte(nil), pub...)
	e.peerMeas = q.Report.Measurement
	e.done = true
	return nil
}

// Complete reports whether the peer has been fully attested.
func (e *Exchange) Complete() bool { return e.done }

// ChannelKey derives the symmetric session key once attestation completed.
func (e *Exchange) ChannelKey() ([]byte, error) {
	if !e.done {
		return nil, errors.New("attest: exchange not complete")
	}
	secret, err := e.kp.SharedSecret(e.peerPub)
	if err != nil {
		return nil, err
	}
	return seccha.ChannelKey(secret, e.meas[:], e.peerMeas[:]), nil
}
