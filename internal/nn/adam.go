package nn

import (
	"math"

	"rex/internal/vec"
)

// Adam implements the Adam optimizer (Kingma & Ba, the paper's §IV-A3b
// choice) with decoupled weight decay. Paper hyperparameters: learning
// rate 1e-4, weight decay 1e-5.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t     int
	state map[*Param]*adamState
}

type adamState struct {
	m, v []float32
}

// NewAdam creates an optimizer with the usual defaults (β1=0.9, β2=0.999,
// ε=1e-8) and the given learning rate and weight decay.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		state: make(map[*Param]*adamState),
	}
}

// Step applies one update to every parameter from its accumulated gradient,
// then leaves gradients untouched (callers zero them per batch).
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		st, ok := a.state[p]
		if !ok {
			st = &adamState{m: make([]float32, len(p.W)), v: make([]float32, len(p.W))}
			a.state[p] = st
		}
		// Decoupled weight decay, AdamW-style, fused with the moment
		// updates in the shared kernel.
		vec.AdamStep(p.W, p.G, st.m, st.v, a.LR, a.WeightDecay,
			float32(a.Beta1), float32(a.Beta2), bc1, bc2, a.Eps)
	}
}

// Reset drops all moment state and the step counter, used after a merge
// replaces parameters wholesale (stale moments would mis-scale updates).
func (a *Adam) Reset() {
	a.t = 0
	a.state = make(map[*Param]*adamState)
}
