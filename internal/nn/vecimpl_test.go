package nn_test

import (
	"bytes"
	"math/rand"
	"testing"

	"rex/internal/dataset"
	"rex/internal/nn"
	"rex/internal/vec"
)

// TestTrainingTrajectoryEveryVecImpl trains the same small network from
// the same seed under every kernel implementation this machine offers and
// requires bitwise-identical parameters: the DNN hot path (linear layers
// via Axpy, Adam via the fused kernel) must not drift by a single bit
// when dispatch picks AVX2/SSE2/NEON over the portable loops. The arm64
// CI job runs this on real NEON hardware.
func TestTrainingTrajectoryEveryVecImpl(t *testing.T) {
	prev := vec.Impl()
	defer func() {
		if err := vec.Use(prev); err != nil {
			t.Fatal(err)
		}
	}()

	const users, items = 25, 60
	rng := rand.New(rand.NewSource(31))
	data := make([]dataset.Rating, 300)
	for i := range data {
		data[i] = dataset.Rating{
			User:  uint32(rng.Intn(users)),
			Item:  uint32(rng.Intn(items)),
			Value: float32(rng.Intn(9)+1) / 2,
		}
	}

	train := func() []byte {
		cfg := nn.DefaultConfig(users, items)
		cfg.EmbDim = 6
		cfg.Hidden = []int{12, 6}
		cfg.BatchSize = 16
		net := nn.NewNet(cfg)
		net.Train(data, 80, rand.New(rand.NewSource(7)))
		buf, err := net.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}

	impls := vec.Available()
	want := []byte(nil)
	for _, name := range impls {
		if err := vec.Use(name); err != nil {
			t.Fatal(err)
		}
		got := train()
		if want == nil {
			want = got // first impl (best available) is the comparison base
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("impl %q produced a different trajectory than %q (%d vs %d bytes, contents differ)",
				name, impls[0], len(got), len(want))
		}
	}
}
