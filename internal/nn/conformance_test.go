package nn_test

import (
	"math/rand"
	"testing"

	"rex/internal/dataset"
	"rex/internal/model"
	"rex/internal/model/modeltest"
	"rex/internal/nn"
)

// TestConformance runs the shared model.Model invariant suite against the
// DNN recommender with a small architecture (the invariants are shape-
// independent; small keeps the suite fast).
func TestConformance(t *testing.T) {
	const users, items = 30, 80
	rng := rand.New(rand.NewSource(29))
	data := make([]dataset.Rating, 400)
	for i := range data {
		data[i] = dataset.Rating{
			User:  uint32(rng.Intn(users)),
			Item:  uint32(rng.Intn(items)),
			Value: float32(rng.Intn(9)+1) / 2,
		}
	}
	cfg := nn.DefaultConfig(users, items)
	cfg.EmbDim = 6
	cfg.Hidden = []int{12, 6}
	cfg.BatchSize = 16
	modeltest.Run(t, modeltest.Config{
		New:        func() model.Model { return nn.NewNet(cfg) },
		Data:       data,
		OOVUser:    users, // first id past the dense vocabulary
		OOVItem:    items,
		TrainSteps: 60,
	})
}
