package nn

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"rex/internal/dataset"
	"rex/internal/model"
)

// Config describes the DNN recommender of §IV-A3b: user/item embeddings of
// dimension EmbDim feed four hidden linear+ReLU layers with dropout (0.02
// after the embeddings, 0.15 after the first two hidden layers) and a final
// one-unit linear layer under a closing ReLU. With the paper's 610 users,
// 9000 items and EmbDim 20, DefaultHidden yields ~218k parameters,
// matching the paper's reported 215,001 in order of magnitude.
type Config struct {
	NumUsers, NumItems int
	EmbDim             int     // paper: 20
	Hidden             []int   // paper: 4 hidden layers
	DropoutEmb         float64 // paper: 0.02
	DropoutHidden      float64 // paper: 0.15 (first two hidden layers)
	LearningRate       float64 // paper: 1e-4
	WeightDecay        float64 // paper: 1e-5
	BatchSize          int
	Seed               int64
}

// DefaultHidden is the hidden stack used when Config.Hidden is nil.
var DefaultHidden = []int{160, 96, 32, 16}

// DefaultConfig returns the paper's DNN hyperparameters for a given id
// space.
func DefaultConfig(numUsers, numItems int) Config {
	return Config{
		NumUsers: numUsers, NumItems: numItems,
		EmbDim: 20, Hidden: append([]int(nil), DefaultHidden...),
		DropoutEmb: 0.02, DropoutHidden: 0.15,
		LearningRate: 1e-4, WeightDecay: 1e-5,
		BatchSize: 32, Seed: 11,
	}
}

// Net is the DNN recommender. It implements model.Model so the REX
// protocol can drive it interchangeably with matrix factorization.
type Net struct {
	cfg    Config
	emb    *EmbeddingPair
	layers []Layer
	opt    *Adam
	params []*Param
	rng    *rand.Rand
}

var _ model.Model = (*Net)(nil)

// NewNet builds the network. Parameter initialization is deterministic in
// cfg.Seed so all nodes can start from an identical model, as enclaves with
// equal measurements do.
func NewNet(cfg Config) *Net {
	if cfg.Hidden == nil {
		cfg.Hidden = append([]int(nil), DefaultHidden...)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Net{cfg: cfg, rng: rng}
	n.emb = NewEmbeddingPair(cfg.NumUsers, cfg.NumItems, cfg.EmbDim, rng)
	in := 2 * cfg.EmbDim
	n.layers = append(n.layers, NewDropout(cfg.DropoutEmb, rng))
	for i, h := range cfg.Hidden {
		n.layers = append(n.layers, NewLinear(in, h, rng), &ReLU{})
		if i < 2 && cfg.DropoutHidden > 0 {
			n.layers = append(n.layers, NewDropout(cfg.DropoutHidden, rng))
		}
		in = h
	}
	n.layers = append(n.layers, NewLinear(in, 1, rng), &ReLU{}) // final ReLU output layer
	n.params = append(n.params, n.emb.Params()...)
	for _, l := range n.layers {
		n.params = append(n.params, l.Params()...)
	}
	n.opt = NewAdam(cfg.LearningRate, cfg.WeightDecay)
	return n
}

// Config returns the network configuration.
func (n *Net) Config() Config { return n.cfg }

// ParamCount implements model.Model.
func (n *Net) ParamCount() int {
	total := 0
	for _, p := range n.params {
		total += len(p.W)
	}
	return total
}

// WireSize implements model.Model: the exact Marshal output length.
func (n *Net) WireSize() int {
	size := 8
	for _, p := range n.params {
		size += 4 + 4*len(p.W)
	}
	return size
}

func (n *Net) forward(users, items []uint32, train bool) *Mat {
	x := n.emb.Lookup(users, items)
	for _, l := range n.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Train implements model.Model: `steps` minibatches of cfg.BatchSize
// uniformly sampled ratings, MSE loss, one Adam step per batch.
func (n *Net) Train(data []dataset.Rating, steps int, rng *rand.Rand) {
	if len(data) == 0 || steps <= 0 {
		return
	}
	b := n.cfg.BatchSize
	users := make([]uint32, b)
	items := make([]uint32, b)
	target := make([]float32, b)
	for s := 0; s < steps; s++ {
		for i := 0; i < b; i++ {
			r := data[rng.Intn(len(data))]
			users[i], items[i], target[i] = r.User, r.Item, r.Value
		}
		for _, p := range n.params {
			p.ZeroGrad()
		}
		out := n.forward(users, items, true)
		// dMSE/dpred = 2(pred − y)/B
		grad := NewMat(b, 1)
		inv := float32(2.0 / float64(b))
		for i := 0; i < b; i++ {
			grad.Set(i, 0, inv*(out.At(i, 0)-target[i]))
		}
		d := grad
		for i := len(n.layers) - 1; i >= 0; i-- {
			d = n.layers[i].Backward(d)
		}
		n.emb.Accumulate(d)
		n.opt.Step(n.params)
	}
}

// Predict implements model.Model (eval mode, single example).
func (n *Net) Predict(user, item uint32) float32 {
	if int(user) >= n.cfg.NumUsers || int(item) >= n.cfg.NumItems {
		return 3.5 // out-of-vocabulary fallback
	}
	out := n.forward([]uint32{user}, []uint32{item}, false)
	return out.At(0, 0)
}

// PredictBatch implements model.BatchPredictor: one forward pass over the
// in-vocabulary examples of the batch instead of one per example — the
// batched matmuls are what make the test stage cheap for the DNN. Each
// row of a forward pass is computed independently (per-row axpy/dot over
// that row only), so out[j] is bit-identical to Predict(users[j],
// items[j]).
func (n *Net) PredictBatch(users, items []uint32, out []float32) {
	if len(users) != len(items) || len(users) != len(out) {
		panic("nn: predict batch length mismatch")
	}
	if len(out) == 0 {
		return
	}
	vu := make([]uint32, 0, len(out))
	vi := make([]uint32, 0, len(out))
	pos := make([]int, 0, len(out))
	for j := range out {
		if int(users[j]) >= n.cfg.NumUsers || int(items[j]) >= n.cfg.NumItems {
			out[j] = 3.5 // out-of-vocabulary fallback
			continue
		}
		vu = append(vu, users[j])
		vi = append(vi, items[j])
		pos = append(pos, j)
	}
	if len(vu) == 0 {
		return
	}
	y := n.forward(vu, vi, false)
	for r, j := range pos {
		out[j] = y.At(r, 0)
	}
}

// MergeWeighted implements model.Model: a dense weighted average of every
// parameter tensor. All REX DNN nodes share the architecture (enforced by
// attestation), so tensors align one-to-one. Optimizer moments are reset
// after a merge, since they describe gradients of the pre-merge weights.
func (n *Net) MergeWeighted(selfW float64, others []model.Weighted) {
	type src struct {
		n *Net
		w float64
	}
	var srcs []src
	var wsum float64
	srcs = append(srcs, src{n, selfW})
	wsum = selfW
	for _, o := range others {
		on, ok := o.M.(*Net)
		if !ok {
			continue
		}
		srcs = append(srcs, src{on, o.W})
		wsum += o.W
	}
	if wsum == 0 {
		return
	}
	for pi, p := range n.params {
		acc := make([]float64, len(p.W))
		for _, s := range srcs {
			sp := s.n.params[pi]
			for i, v := range sp.W {
				// float64(...) bars FMA contraction on arm64 so a merge
				// of given models accumulates the same bits on every
				// arch (see internal/vec's package doc).
				acc[i] += float64(s.w * float64(v))
			}
		}
		for i := range p.W {
			p.W[i] = float32(acc[i] / wsum)
		}
	}
	n.opt.Reset()
}

// Clone implements model.Model.
func (n *Net) Clone() model.Model {
	c := NewNet(n.cfg)
	for i, p := range n.params {
		copy(c.params[i].W, p.W)
	}
	return c
}

// CopyFrom implements model.Copier: it overwrites n with src's parameters
// in place, leaving n indistinguishable from src.Clone() — weights copied,
// optimizer state cleared, dropout rng rewound to the seed — while reusing
// n's tensors. Share paths rotate pooled payload nets through this instead
// of allocating a full Clone per epoch.
func (n *Net) CopyFrom(src model.Model) bool {
	o, ok := src.(*Net)
	if !ok || len(o.params) != len(n.params) {
		return false
	}
	for i, p := range o.params {
		if len(p.W) != len(n.params[i].W) {
			return false
		}
	}
	for i, p := range o.params {
		copy(n.params[i].W, p.W)
	}
	n.opt.Reset()
	n.rng.Seed(n.cfg.Seed)
	return true
}

const netMagic = uint32(0x5245584e) // "REXN"

// Marshal implements model.Model: magic, param tensor count, then each
// tensor as (len, float32 data). Architecture compatibility is assumed
// (enclave attestation guarantees identical code and config).
func (n *Net) Marshal() ([]byte, error) { return n.MarshalAppend(nil) }

// MarshalAppend implements model.AppendMarshaler: the canonical Marshal
// bytes appended to dst, growing it at most once, so share paths can
// serialize the (large, fixed-size) parameter block into a reused buffer.
func (n *Net) MarshalAppend(dst []byte) ([]byte, error) {
	need := n.WireSize()
	start := len(dst)
	if cap(dst)-start < need {
		grown := make([]byte, start+need)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:start+need]
	}
	buf := dst[start:]
	binary.LittleEndian.PutUint32(buf, netMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(n.params)))
	off := 8
	for _, p := range n.params {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(p.W)))
		off += 4
		for _, v := range p.W {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
			off += 4
		}
	}
	return dst, nil
}

// Unmarshal implements model.Model.
func (n *Net) Unmarshal(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("nn: buffer too short (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b) != netMagic {
		return fmt.Errorf("nn: bad magic %#x", binary.LittleEndian.Uint32(b))
	}
	count := int(binary.LittleEndian.Uint32(b[4:]))
	if count != len(n.params) {
		return fmt.Errorf("nn: serialized %d tensors, model has %d", count, len(n.params))
	}
	off := 8
	for _, p := range n.params {
		if off+4 > len(b) {
			return fmt.Errorf("nn: truncated tensor header at %d", off)
		}
		ln := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if ln != len(p.W) {
			return fmt.Errorf("nn: tensor %s has %d values, serialized %d", p.Name, len(p.W), ln)
		}
		if off+4*ln > len(b) {
			return fmt.Errorf("nn: truncated tensor %s", p.Name)
		}
		for i := 0; i < ln; i++ {
			p.W[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[off:]))
			off += 4
		}
	}
	if off != len(b) {
		return fmt.Errorf("nn: %d trailing bytes", len(b)-off)
	}
	n.opt.Reset()
	return nil
}
