// Package nn is a from-scratch neural-network substrate sufficient for the
// paper's DNN recommender (§II-A-c, §IV-A3b): an embedding pair feeding a
// stack of linear+ReLU hidden layers with dropout, trained with Adam and
// weight decay on MSE loss. Only the stdlib is used.
package nn

import (
	"fmt"
	"math/rand"

	"rex/internal/vec"
)

// Mat is a dense row-major float32 matrix.
type Mat struct {
	R, C int
	V    []float32
}

// NewMat allocates an R x C zero matrix.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic("nn: negative matrix dimension")
	}
	return &Mat{R: r, C: c, V: make([]float32, r*c)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float32 { return m.V[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float32) { m.V[i*m.C+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Mat) Row(i int) []float32 { return m.V[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.R, m.C)
	copy(c.V, m.V)
	return c
}

// String renders dimensions, for debugging.
func (m *Mat) String() string { return fmt.Sprintf("Mat(%dx%d)", m.R, m.C) }

// MatMul computes a x b into a fresh matrix. Inner dimensions must agree.
func MatMul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("nn: matmul %dx%d x %dx%d", a.R, a.C, b.R, b.C))
	}
	out := NewMat(a.R, b.C)
	// ikj loop order keeps the inner axpy streaming over contiguous rows
	// of b and out, which matters for the larger embedding batches. The
	// zero test preserves the ReLU-sparsity skip (and the exact bits: an
	// axpy with 0 could flip a -0 accumulator).
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.C; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			vec.Axpy(aik, b.Row(k), orow)
		}
	}
	return out
}

// MatMulATransposed computes aᵀ x b (a is treated transposed).
func MatMulATransposed(a, b *Mat) *Mat {
	if a.R != b.R {
		panic(fmt.Sprintf("nn: matmulAT %dx%d x %dx%d", a.R, a.C, b.R, b.C))
	}
	out := NewMat(a.C, b.C)
	for r := 0; r < a.R; r++ {
		arow := a.Row(r)
		brow := b.Row(r)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			vec.Axpy(av, brow, out.Row(i))
		}
	}
	return out
}

// MatMulBTransposed computes a x bᵀ.
func MatMulBTransposed(a, b *Mat) *Mat {
	if a.C != b.C {
		panic(fmt.Sprintf("nn: matmulBT %dx%d x %dx%d", a.R, a.C, b.R, b.C))
	}
	out := NewMat(a.R, b.R)
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.R; j++ {
			orow[j] = vec.Dot(arow, b.Row(j))
		}
	}
	return out
}

// Param is a learnable tensor: values plus an accumulated gradient of the
// same shape. Optimizer state is owned by the optimizer, keyed by pointer
// identity.
type Param struct {
	Name string
	W    []float32
	G    []float32
}

func newParam(name string, n int) *Param {
	// G is allocated lazily by ZeroGrad: a replica that only serves,
	// merges, or marshals never pays gradient memory, which at embedding
	// scale would double the model's footprint.
	return &Param{Name: name, W: make([]float32, n)}
}

// ZeroGrad clears the accumulated gradient, materializing it on first use.
// Training calls it on every param before each backward pass, so gradient
// consumers always see an allocated, zeroed G.
func (p *Param) ZeroGrad() {
	if p.G == nil {
		p.G = make([]float32, len(p.W))
		return
	}
	vec.Zero(p.G)
}

// initNormal fills w with N(0, std) values.
func initNormal(w []float32, std float64, rng *rand.Rand) {
	for i := range w {
		w[i] = float32(rng.NormFloat64() * std)
	}
}
