package nn

import (
	"math"
	"math/rand"

	"rex/internal/vec"
)

// Layer is one differentiable stage of the MLP. Forward consumes the
// previous activation; Backward consumes dLoss/dOutput, accumulates
// parameter gradients, and returns dLoss/dInput.
type Layer interface {
	Forward(x *Mat, train bool) *Mat
	Backward(dy *Mat) *Mat
	Params() []*Param
}

// Linear is a fully connected layer: y = xW + b.
type Linear struct {
	In, Out int
	W, B    *Param
	x       *Mat // cached input for backward
}

// NewLinear creates a Linear layer with Kaiming-style initialization
// (std = sqrt(2/in)), appropriate for the ReLU stack that follows.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{In: in, Out: out, W: newParam("linear.w", in*out), B: newParam("linear.b", out)}
	initNormal(l.W.W, math.Sqrt(2/float64(in)), rng)
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *Mat, train bool) *Mat {
	l.x = x
	w := &Mat{R: l.In, C: l.Out, V: l.W.W}
	y := MatMul(x, w)
	for i := 0; i < y.R; i++ {
		vec.Add(y.Row(i), l.B.W)
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(dy *Mat) *Mat {
	// dW += xᵀ dy ; db += column sums of dy ; dx = dy Wᵀ
	dw := MatMulATransposed(l.x, dy)
	vec.Add(l.W.G, dw.V)
	for i := 0; i < dy.R; i++ {
		vec.Add(l.B.G, dy.Row(i))
	}
	w := &Mat{R: l.In, C: l.Out, V: l.W.W}
	return MatMulBTransposed(dy, w)
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// Forward implements Layer.
func (r *ReLU) Forward(x *Mat, train bool) *Mat {
	y := x.Clone()
	if cap(r.mask) < len(y.V) {
		r.mask = make([]bool, len(y.V))
	}
	r.mask = r.mask[:len(y.V)]
	for i, v := range y.V {
		if v <= 0 {
			y.V[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(dy *Mat) *Mat {
	dx := dy.Clone()
	for i := range dx.V {
		if !r.mask[i] {
			dx.V[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Dropout zeroes activations with probability P during training and scales
// the survivors by 1/(1-P) (inverted dropout), matching the paper's rates:
// 0.02 after the embedding layer, 0.15 after the first two hidden layers.
type Dropout struct {
	P    float64
	rng  *rand.Rand
	mask []bool
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0,1)")
	}
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer. In eval mode it is the identity.
func (d *Dropout) Forward(x *Mat, train bool) *Mat {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	y := x.Clone()
	if cap(d.mask) < len(y.V) {
		d.mask = make([]bool, len(y.V))
	}
	d.mask = d.mask[:len(y.V)]
	scale := float32(1 / (1 - d.P))
	for i := range y.V {
		if d.rng.Float64() < d.P {
			y.V[i] = 0
			d.mask[i] = false
		} else {
			y.V[i] *= scale
			d.mask[i] = true
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(dy *Mat) *Mat {
	if d.mask == nil {
		return dy
	}
	dx := dy.Clone()
	scale := float32(1 / (1 - d.P))
	for i := range dx.V {
		if d.mask[i] {
			dx.V[i] *= scale
		} else {
			dx.V[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// EmbeddingPair holds the user and item embedding tables. Forward looks up
// and concatenates the two embeddings per example — the paper's
// "intermediate embedding layer ... equivalent to the lower-rank matrices"
// of MF (§II-A-c). Tables are dense over the global id space, as in the
// paper's PyTorch implementation where every node instantiates the full
// model.
type EmbeddingPair struct {
	NumUsers, NumItems, Dim int
	Users, Items            *Param
	bu, bi                  []uint32 // cached ids for backward
}

// NewEmbeddingPair allocates and initializes both tables with N(0, 0.05).
func NewEmbeddingPair(numUsers, numItems, dim int, rng *rand.Rand) *EmbeddingPair {
	e := &EmbeddingPair{
		NumUsers: numUsers, NumItems: numItems, Dim: dim,
		Users: newParam("emb.users", numUsers*dim),
		Items: newParam("emb.items", numItems*dim),
	}
	initNormal(e.Users.W, 0.05, rng)
	initNormal(e.Items.W, 0.05, rng)
	return e
}

// Lookup produces the concatenated (user‖item) embedding batch.
func (e *EmbeddingPair) Lookup(users, items []uint32) *Mat {
	if len(users) != len(items) {
		panic("nn: user/item batch length mismatch")
	}
	e.bu = append(e.bu[:0], users...)
	e.bi = append(e.bi[:0], items...)
	out := NewMat(len(users), 2*e.Dim)
	for r := range users {
		row := out.Row(r)
		copy(row[:e.Dim], e.Users.W[int(users[r])*e.Dim:(int(users[r])+1)*e.Dim])
		copy(row[e.Dim:], e.Items.W[int(items[r])*e.Dim:(int(items[r])+1)*e.Dim])
	}
	return out
}

// Accumulate scatters the concatenated gradient back into the tables.
func (e *EmbeddingPair) Accumulate(d *Mat) {
	for r := 0; r < d.R; r++ {
		row := d.Row(r)
		vec.Add(e.Users.G[int(e.bu[r])*e.Dim:(int(e.bu[r])+1)*e.Dim], row[:e.Dim])
		vec.Add(e.Items.G[int(e.bi[r])*e.Dim:(int(e.bi[r])+1)*e.Dim], row[e.Dim:])
	}
}

// Params returns both tables.
func (e *EmbeddingPair) Params() []*Param { return []*Param{e.Users, e.Items} }
