package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rex/internal/dataset"
	"rex/internal/model"
	"rex/internal/movielens"
)

func tinyConfig() Config {
	return Config{
		NumUsers: 12, NumItems: 30, EmbDim: 4,
		Hidden: []int{8, 6}, DropoutEmb: 0, DropoutHidden: 0,
		LearningRate: 1e-2, WeightDecay: 0, BatchSize: 4, Seed: 3,
	}
}

func TestMatMulShapes(t *testing.T) {
	a := NewMat(2, 3)
	b := NewMat(3, 4)
	for i := range a.V {
		a.V[i] = float32(i + 1)
	}
	for i := range b.V {
		b.V[i] = float32(i + 1)
	}
	c := MatMul(a, b)
	if c.R != 2 || c.C != 4 {
		t.Fatalf("shape %dx%d", c.R, c.C)
	}
	// c[0][0] = 1*1 + 2*5 + 3*9 = 38
	if c.At(0, 0) != 38 {
		t.Fatalf("c00 = %v", c.At(0, 0))
	}
}

func TestMatMulTransposedAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMat(3, 5)
	b := NewMat(3, 4)
	for i := range a.V {
		a.V[i] = float32(rng.NormFloat64())
	}
	for i := range b.V {
		b.V[i] = float32(rng.NormFloat64())
	}
	// aᵀ b via explicit transpose must equal MatMulATransposed.
	at := NewMat(5, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	got := MatMulATransposed(a, b)
	for i := range want.V {
		if math.Abs(float64(want.V[i]-got.V[i])) > 1e-5 {
			t.Fatalf("AT mismatch at %d: %v vs %v", i, got.V[i], want.V[i])
		}
	}
	// a bᵀ similarly.
	c := NewMat(4, 5)
	for i := range c.V {
		c.V[i] = float32(rng.NormFloat64())
	}
	ct := NewMat(5, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			ct.Set(j, i, c.At(i, j))
		}
	}
	wantBT := MatMul(a, &Mat{R: 5, C: 4, V: ct.V})
	gotBT := MatMulBTransposed(a, c)
	for i := range wantBT.V {
		if math.Abs(float64(wantBT.V[i]-gotBT.V[i])) > 1e-5 {
			t.Fatalf("BT mismatch at %d", i)
		}
	}
}

// TestLinearGradientCheck verifies backprop against numerical gradients —
// the canonical correctness test for a hand-written layer stack.
func TestLinearGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(3, 2, rng)
	x := NewMat(2, 3)
	for i := range x.V {
		x.V[i] = float32(rng.NormFloat64())
	}
	loss := func() float64 {
		y := l.Forward(x, false)
		var s float64
		for _, v := range y.V {
			s += float64(v) * float64(v)
		}
		return s
	}
	// Analytic gradient of sum(y^2): dL/dy = 2y.
	y := l.Forward(x, false)
	dy := NewMat(y.R, y.C)
	for i := range y.V {
		dy.V[i] = 2 * y.V[i]
	}
	l.W.ZeroGrad()
	l.B.ZeroGrad()
	dx := l.Backward(dy)

	const eps = 1e-3
	check := func(name string, w []float32, g []float32, idx int) {
		orig := w[idx]
		w[idx] = orig + eps
		lp := loss()
		w[idx] = orig - eps
		lm := loss()
		w[idx] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(g[idx])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("%s[%d]: numeric %.5f analytic %.5f", name, idx, num, g[idx])
		}
	}
	for i := 0; i < len(l.W.W); i += 2 {
		check("W", l.W.W, l.W.G, i)
	}
	for i := range l.B.W {
		check("B", l.B.W, l.B.G, i)
	}
	// Input gradient check.
	for i := range x.V {
		orig := x.V[i]
		x.V[i] = orig + eps
		lp := loss()
		x.V[i] = orig - eps
		lm := loss()
		x.V[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(dx.V[i])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("dx[%d]: numeric %.5f analytic %.5f", i, num, dx.V[i])
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x := &Mat{R: 1, C: 4, V: []float32{-1, 0, 2, -3}}
	y := r.Forward(x, true)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if y.V[i] != want[i] {
			t.Fatalf("relu[%d] = %v", i, y.V[i])
		}
	}
	dy := &Mat{R: 1, C: 4, V: []float32{1, 1, 1, 1}}
	dx := r.Backward(dy)
	wantG := []float32{0, 0, 1, 0}
	for i := range wantG {
		if dx.V[i] != wantG[i] {
			t.Fatalf("relu grad[%d] = %v", i, dx.V[i])
		}
	}
}

func TestDropoutEvalIdentity(t *testing.T) {
	d := NewDropout(0.5, rand.New(rand.NewSource(3)))
	x := &Mat{R: 1, C: 8, V: []float32{1, 2, 3, 4, 5, 6, 7, 8}}
	y := d.Forward(x, false)
	for i := range x.V {
		if y.V[i] != x.V[i] {
			t.Fatal("dropout changed values in eval mode")
		}
	}
}

func TestDropoutTrainScales(t *testing.T) {
	d := NewDropout(0.5, rand.New(rand.NewSource(4)))
	x := NewMat(1, 10000)
	for i := range x.V {
		x.V[i] = 1
	}
	y := d.Forward(x, true)
	var sum float64
	zeros := 0
	for _, v := range y.V {
		sum += float64(v)
		if v == 0 {
			zeros++
		}
	}
	if zeros < 4000 || zeros > 6000 {
		t.Fatalf("dropped %d of 10000 at p=0.5", zeros)
	}
	// Inverted dropout preserves the expectation.
	if mean := sum / 10000; mean < 0.9 || mean > 1.1 {
		t.Fatalf("post-dropout mean %v, want ~1", mean)
	}
}

func TestDropoutBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 accepted")
		}
	}()
	NewDropout(1.0, rand.New(rand.NewSource(5)))
}

func TestEmbeddingLookupAndAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := NewEmbeddingPair(4, 5, 3, rng)
	out := e.Lookup([]uint32{1, 2}, []uint32{0, 4})
	if out.R != 2 || out.C != 6 {
		t.Fatalf("lookup shape %dx%d", out.R, out.C)
	}
	// Row 0 first half must equal user 1's embedding.
	for d := 0; d < 3; d++ {
		if out.At(0, d) != e.Users.W[1*3+d] {
			t.Fatal("user embedding mismatch")
		}
		if out.At(0, 3+d) != e.Items.W[0*3+d] {
			t.Fatal("item embedding mismatch")
		}
	}
	g := NewMat(2, 6)
	for i := range g.V {
		g.V[i] = 1
	}
	e.Users.ZeroGrad()
	e.Items.ZeroGrad()
	e.Accumulate(g)
	if e.Users.G[1*3] != 1 || e.Items.G[4*3+2] != 1 {
		t.Fatal("gradient not scattered")
	}
	if e.Users.G[0] != 0 {
		t.Fatal("gradient leaked to untouched row")
	}
}

func TestAdamStepMovesParams(t *testing.T) {
	a := NewAdam(0.1, 0)
	p := newParam("p", 3)
	p.ZeroGrad() // gradients materialize lazily
	p.W[0] = 1
	p.G[0] = 1 // positive gradient: value must decrease
	a.Step([]*Param{p})
	if p.W[0] >= 1 {
		t.Fatalf("param did not descend: %v", p.W[0])
	}
	if p.W[1] != 0 {
		t.Fatal("zero-grad param moved")
	}
}

func TestAdamWeightDecayShrinks(t *testing.T) {
	a := NewAdam(0.1, 0.5)
	p := newParam("p", 1)
	p.W[0] = 10
	for i := 0; i < 20; i++ {
		p.ZeroGrad()
		a.Step([]*Param{p})
	}
	if p.W[0] >= 10 {
		t.Fatal("weight decay did not shrink the weight")
	}
}

func TestNetTrainReducesError(t *testing.T) {
	spec := movielens.Latest().Scaled(0.03)
	spec.Seed = 9
	ds := movielens.Generate(spec)
	cfg := DefaultConfig(ds.NumUsers, ds.NumItems)
	cfg.EmbDim = 6
	cfg.Hidden = []int{16, 8}
	cfg.LearningRate = 5e-3
	cfg.BatchSize = 16
	net := NewNet(cfg)
	rng := rand.New(rand.NewSource(10))
	tr, te := ds.SplitPerUser(0.7, rng)
	before := model.RMSE(net, te.Ratings)
	net.Train(tr.Ratings, 400, rng)
	after := model.RMSE(net, te.Ratings)
	if after >= before {
		t.Fatalf("DNN did not learn: %.4f -> %.4f", before, after)
	}
	if after > 1.6 {
		t.Fatalf("DNN RMSE %.4f too high after training", after)
	}
}

func TestNetParamCountPaperScale(t *testing.T) {
	// §IV-A3b: 610 users, 9000 items, k=20 with the default hidden stack
	// lands within 3% of the paper's 215,001 parameters.
	cfg := DefaultConfig(610, 9000)
	n := NewNet(cfg)
	got := n.ParamCount()
	if got < 209000 || got < 215001*97/100 || got > 215001*103/100 {
		t.Fatalf("param count %d, want within 3%% of 215001", got)
	}
}

func TestNetMarshalRoundtrip(t *testing.T) {
	cfg := tinyConfig()
	n := NewNet(cfg)
	rng := rand.New(rand.NewSource(11))
	data := []dataset.Rating{{User: 1, Item: 2, Value: 4}, {User: 3, Item: 7, Value: 2}}
	n.Train(data, 10, rng)
	buf, err := n.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != n.WireSize() {
		t.Fatalf("WireSize %d != %d", n.WireSize(), len(buf))
	}
	n2 := NewNet(cfg)
	if err := n2.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if n.Predict(1, 2) != n2.Predict(1, 2) {
		t.Fatal("prediction differs after roundtrip")
	}
}

func TestNetUnmarshalErrors(t *testing.T) {
	n := NewNet(tinyConfig())
	if err := n.Unmarshal([]byte{0}); err == nil {
		t.Fatal("short buffer accepted")
	}
	buf, _ := n.Marshal()
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xFF
	if err := n.Unmarshal(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := n.Unmarshal(buf[:len(buf)-4]); err == nil {
		t.Fatal("truncated accepted")
	}
	other := tinyConfig()
	other.Hidden = []int{8}
	n2 := NewNet(other)
	buf2, _ := n2.Marshal()
	if err := n.Unmarshal(buf2); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
}

func TestNetMergeAverages(t *testing.T) {
	cfg := tinyConfig()
	a, b := NewNet(cfg), NewNet(cfg)
	// Same seed → identical initial params; diverge them.
	rng := rand.New(rand.NewSource(12))
	a.Train([]dataset.Rating{{User: 0, Item: 0, Value: 5}}, 50, rng)
	b.Train([]dataset.Rating{{User: 1, Item: 1, Value: 1}}, 50, rng)
	wantFirst := 0.5*float64(a.params[0].W[0]) + 0.5*float64(b.params[0].W[0])
	a.MergeWeighted(0.5, []model.Weighted{{M: b, W: 0.5}})
	if got := float64(a.params[0].W[0]); math.Abs(got-wantFirst) > 1e-6 {
		t.Fatalf("merge average %v, want %v", got, wantFirst)
	}
}

func TestNetIdenticalSeedsIdenticalParams(t *testing.T) {
	cfg := tinyConfig()
	a, b := NewNet(cfg), NewNet(cfg)
	for i := range a.params {
		for j := range a.params[i].W {
			if a.params[i].W[j] != b.params[i].W[j] {
				t.Fatal("same-seed networks differ at init")
			}
		}
	}
}

func TestNetCloneIndependent(t *testing.T) {
	n := NewNet(tinyConfig())
	c := n.Clone().(*Net)
	c.params[0].W[0] += 1
	if n.params[0].W[0] == c.params[0].W[0] {
		t.Fatal("clone aliases parameters")
	}
}

func TestNetPredictOutOfVocab(t *testing.T) {
	n := NewNet(tinyConfig())
	if p := n.Predict(9999, 0); p != 3.5 {
		t.Fatalf("OOV fallback %v", p)
	}
}

func TestNetWireSizeProperty(t *testing.T) {
	f := func(seedRaw uint8) bool {
		cfg := tinyConfig()
		cfg.Seed = int64(seedRaw)
		n := NewNet(cfg)
		buf, err := n.Marshal()
		return err == nil && len(buf) == n.WireSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
