// Package compress implements the payload compression the paper discusses
// in §IV-E-e: "recommendation systems are based on ratings that can take
// very few values (only 10 in the case of MovieLens ...), data sharing in
// this area is also highly compressible." Raw rating triplets are packed
// with sorted delta-varint ids and 4-bit star values; model payloads go
// through DEFLATE. Both are evaluated by the ext-compression experiment.
package compress

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"rex/internal/dataset"
)

// starToNibble maps the ten MovieLens star levels (0.5..5.0 step 0.5) to
// 0..9; out-of-grid values get the escape nibble 15 and ride as float32.
// The range is checked before any float-to-int conversion: converting a
// NaN, infinity or huge float to int is implementation-defined in Go, so
// the old `int(doubled)` probe could not be trusted to classify them.
func starToNibble(v float32) (byte, bool) {
	doubled := float64(v) * 2 // float64 holds any float32*2 exactly
	if !(doubled >= 1 && doubled <= 10) || doubled != math.Trunc(doubled) {
		return 15, false // off-grid, NaN or infinite: escape to float32
	}
	return byte(int(doubled) - 1), true // 0.5 -> 0, 5.0 -> 9
}

func nibbleToStar(n byte) float32 { return float32(n+1) / 2 }

// PackRatings compresses rating triplets: ratings are sorted by (user,
// item); user ids and within-user item ids are delta-varint coded; values
// are 4-bit star levels. Typical output is ~4-6 bytes per rating versus
// the 12-byte raw wire format.
//
// Off-grid values (anything but 0.5..5.0 in 0.5 steps — including NaN and
// infinities) do not round-trip through the nibble grid: they are encoded
// explicitly with the escape nibble 15 plus a trailing float32, so
// UnpackRatings reproduces every input value bit for bit, never a
// silently-quantized one.
func PackRatings(rs []dataset.Rating) []byte {
	sorted := make([]dataset.Rating, len(rs))
	copy(sorted, rs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].User != sorted[j].User {
			return sorted[i].User < sorted[j].User
		}
		return sorted[i].Item < sorted[j].Item
	})

	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	putUvarint(uint64(len(sorted)))

	var nibbles []byte
	var escapes []float32
	prevUser := uint64(0)
	prevItem := uint64(0)
	for i, r := range sorted {
		u := uint64(r.User)
		if i == 0 || u != prevUser {
			// New user: emit (delta+1) so 0 can mean "same user".
			putUvarint(u - prevUser + 1)
			prevItem = 0
			prevUser = u
		} else {
			putUvarint(0)
		}
		putUvarint(uint64(r.Item) - prevItem)
		prevItem = uint64(r.Item) + 1
		nb, ok := starToNibble(r.Value)
		nibbles = append(nibbles, nb)
		if !ok {
			escapes = append(escapes, r.Value)
		}
	}
	// Nibble block, two values per byte.
	for i := 0; i < len(nibbles); i += 2 {
		b := nibbles[i] << 4
		if i+1 < len(nibbles) {
			b |= nibbles[i+1]
		}
		buf.WriteByte(b)
	}
	for _, v := range escapes {
		var f [4]byte
		binary.LittleEndian.PutUint32(f[:], math.Float32bits(v))
		buf.Write(f[:])
	}
	return buf.Bytes()
}

// UnpackRatings inverts PackRatings. The output order is the canonical
// sorted order, which is fine for REX: the receiving store deduplicates by
// key and training samples uniformly.
func UnpackRatings(b []byte) ([]dataset.Rating, error) {
	r := bytes.NewReader(b)
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("compress: count: %w", err)
	}
	if count > uint64(len(b))*8 {
		return nil, fmt.Errorf("compress: implausible count %d", count)
	}
	out := make([]dataset.Rating, count)
	prevUser := uint64(0)
	prevItem := uint64(0)
	started := false
	for i := range out {
		du, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("compress: user delta: %w", err)
		}
		if du != 0 || !started {
			if du == 0 {
				return nil, fmt.Errorf("compress: first record lacks user delta")
			}
			prevUser += du - 1
			prevItem = 0
			started = true
		}
		di, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("compress: item delta: %w", err)
		}
		item := prevItem + di
		prevItem = item + 1
		out[i] = dataset.Rating{User: uint32(prevUser), Item: uint32(item)}
	}
	// Nibble block.
	nibbleBytes := (int(count) + 1) / 2
	nb := make([]byte, nibbleBytes)
	if _, err := io.ReadFull(r, nb); err != nil {
		return nil, fmt.Errorf("compress: nibbles: %w", err)
	}
	var escapeIdx []int
	for i := range out {
		v := nb[i/2]
		if i%2 == 0 {
			v >>= 4
		} else {
			v &= 0x0F
		}
		if v == 15 {
			escapeIdx = append(escapeIdx, i)
			continue
		}
		if v > 9 {
			return nil, fmt.Errorf("compress: bad star nibble %d", v)
		}
		out[i].Value = nibbleToStar(v)
	}
	for _, i := range escapeIdx {
		var f [4]byte
		if _, err := io.ReadFull(r, f[:]); err != nil {
			return nil, fmt.Errorf("compress: escape value: %w", err)
		}
		out[i].Value = math.Float32frombits(binary.LittleEndian.Uint32(f[:]))
	}
	return out, nil
}

// Deflate compresses an arbitrary payload (model parameters) with DEFLATE
// at the given level (flate.DefaultCompression if 0).
func Deflate(b []byte, level int) ([]byte, error) {
	if level == 0 {
		level = flate.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, fmt.Errorf("compress: flate writer: %w", err)
	}
	if _, err := w.Write(b); err != nil {
		return nil, fmt.Errorf("compress: deflate: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("compress: deflate close: %w", err)
	}
	return buf.Bytes(), nil
}

// Inflate decompresses Deflate output.
func Inflate(b []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(b))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("compress: inflate: %w", err)
	}
	return out, nil
}

// InflateLimit decompresses Deflate output but fails once the plaintext
// exceeds max bytes — the wire-facing variant, so a hostile or corrupt
// frame cannot expand into an unbounded allocation before validation
// rejects it.
func InflateLimit(b []byte, max int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(b))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, int64(max)+1))
	if err != nil {
		return nil, fmt.Errorf("compress: inflate: %w", err)
	}
	if len(out) > max {
		return nil, fmt.Errorf("compress: inflated payload exceeds %d bytes", max)
	}
	return out, nil
}
