package compress

import (
	"math"
	"math/rand"
	"testing"

	"rex/internal/dataset"
)

// TestStarNibbleBoundaries pins the grid classification down value by
// value: every on-grid star maps to its nibble, and everything else —
// boundary neighbors, NaN, infinities, huge floats — takes the escape
// path and still round-trips bit for bit through PackRatings.
func TestStarNibbleBoundaries(t *testing.T) {
	cases := []struct {
		v      float32
		nibble byte
		onGrid bool
	}{
		{0.5, 0, true},
		{1.0, 1, true},
		{4.5, 8, true},
		{5.0, 9, true},
		{0, 15, false},
		{0.4, 15, false},
		{0.75, 15, false},
		{5.5, 15, false}, // doubled lands on 11: integral but past the grid
		{-0.5, 15, false},
		{float32(math.NaN()), 15, false},
		{float32(math.Inf(1)), 15, false},
		{float32(math.Inf(-1)), 15, false},
		{math.MaxFloat32, 15, false},
	}
	for _, tc := range cases {
		nb, ok := starToNibble(tc.v)
		if nb != tc.nibble || ok != tc.onGrid {
			t.Errorf("starToNibble(%v) = %d,%v want %d,%v", tc.v, nb, ok, tc.nibble, tc.onGrid)
		}
		rs := []dataset.Rating{{User: 3, Item: 7, Value: tc.v}}
		got, err := UnpackRatings(PackRatings(rs))
		if err != nil {
			t.Fatalf("roundtrip %v: %v", tc.v, err)
		}
		if len(got) != 1 || math.Float32bits(got[0].Value) != math.Float32bits(tc.v) {
			t.Errorf("roundtrip %v came back %v", tc.v, got)
		}
	}
}

func randomBlock(rng *rand.Rand, n int) []dataset.Rating {
	rs := make([]dataset.Rating, n)
	for i := range rs {
		rs[i] = dataset.Rating{
			User:  uint32(rng.Intn(6041)),
			Item:  uint32(rng.Intn(3953)),
			Value: float32(rng.Intn(10)+1) / 2,
		}
	}
	return rs
}

// TestColumnarRoundtripPreservesOrder is the property the delta codec
// leans on: the block comes back in exactly the input order, not the
// sorted order PackRatings canonicalizes to.
func TestColumnarRoundtripPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 30, 400} {
		rs := randomBlock(rng, n)
		if n > 2 {
			rs[1].Value = 9.75               // escape path
			rs[2] = dataset.Rating{Value: 3} // zero ids
		}
		enc := AppendRatingsColumnar(nil, rs)
		got, rest, err := DecodeRatingsColumnar(enc)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(rest) != 0 {
			t.Fatalf("n=%d: %d leftover bytes", n, len(rest))
		}
		if len(got) != len(rs) {
			t.Fatalf("n=%d: %d ratings back", n, len(got))
		}
		for i := range rs {
			if got[i].User != rs[i].User || got[i].Item != rs[i].Item ||
				math.Float32bits(got[i].Value) != math.Float32bits(rs[i].Value) {
				t.Fatalf("n=%d index %d: %+v != %+v", n, i, got[i], rs[i])
			}
		}
		if n == 400 {
			perRating := float64(len(enc)) / float64(n)
			if perRating > 5 {
				t.Errorf("columnar block costs %.2f B/rating, want <= 5", perRating)
			}
		}
	}
}

// TestColumnarTrailingBytesSurvive checks section concatenation: the
// decoder must consume exactly its block and hand back the tail.
func TestColumnarTrailingBytesSurvive(t *testing.T) {
	rs := randomBlock(rand.New(rand.NewSource(3)), 17)
	enc := AppendRatingsColumnar(nil, rs)
	enc = append(enc, 0xAA, 0xBB, 0xCC)
	_, rest, err := DecodeRatingsColumnar(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 3 || rest[0] != 0xAA {
		t.Fatalf("tail %x", rest)
	}
}

func TestColumnarGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		DecodeRatingsColumnar(b) // must not panic
		DecodeIndexDeltas(b)     // must not panic
	}
	// Truncations of a valid encoding must error, never panic or hang.
	enc := AppendRatingsColumnar(nil, randomBlock(rng, 50))
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeRatingsColumnar(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d decoded cleanly", cut, len(enc))
		}
	}
}

func TestIndexDeltasRoundtrip(t *testing.T) {
	cases := [][]uint32{
		nil,
		{0},
		{5},
		{0, 1, 2, 3},
		{3, 90, 91, 4000, 1 << 30},
	}
	for _, idx := range cases {
		enc := AppendIndexDeltas(nil, idx)
		got, rest, err := DecodeIndexDeltas(enc)
		if err != nil {
			t.Fatalf("%v: %v", idx, err)
		}
		if len(rest) != 0 || len(got) != len(idx) {
			t.Fatalf("%v came back %v (tail %d)", idx, got, len(rest))
		}
		for i := range idx {
			if got[i] != idx[i] {
				t.Fatalf("%v came back %v", idx, got)
			}
		}
	}
	// A dense run of n sorted refs should cost ~1 byte each plus header.
	dense := make([]uint32, 400)
	for i := range dense {
		dense[i] = uint32(i * 7)
	}
	if n := len(AppendIndexDeltas(nil, dense)); n > 500 {
		t.Errorf("400 dense refs cost %d bytes", n)
	}
}
