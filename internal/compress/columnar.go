package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"rex/internal/dataset"
)

// Columnar packers for the runtime's delta wire format (frame version 3).
//
// Unlike PackRatings, AppendRatingsColumnar preserves the input order —
// the delta codec needs it: entries that may be new to the receiving
// store must arrive in the sender's sample order so the store's
// first-occurrence insertion order (and with it the training trajectory)
// stays bit-identical to the uncompressed path. Order-preserving rules
// out the sorted delta coding PackRatings uses, so ids are bit-packed
// instead: one width per column, sized to the block's maximum id.
// Values reuse the 4-bit star grid with float32 escapes.
//
// Both decoders are wire-facing: they validate counts, widths and lengths
// against the buffer before allocating, and return the unconsumed tail so
// sections can be concatenated inside one frame.

// AppendRatingsColumnar appends an order-preserving packed encoding of rs
// to dst: uvarint count, one byte each of user/item bit widths, then the
// bit-packed user column, item column, star nibbles and float32 escapes.
// Typical MovieLens-scale blocks pack to ~3.7 bytes per rating versus the
// 12-byte raw encoding.
func AppendRatingsColumnar(dst []byte, rs []dataset.Rating) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(rs)))
	if len(rs) == 0 {
		return dst
	}
	var maxU, maxI uint32
	for _, r := range rs {
		if r.User > maxU {
			maxU = r.User
		}
		if r.Item > maxI {
			maxI = r.Item
		}
	}
	ub, ib := bits.Len32(maxU), bits.Len32(maxI)
	dst = append(dst, byte(ub), byte(ib))
	dst = appendPacked(dst, len(rs), ub, func(i int) uint32 { return rs[i].User })
	dst = appendPacked(dst, len(rs), ib, func(i int) uint32 { return rs[i].Item })

	var escapes []float32
	var half byte
	for i, r := range rs {
		nb, ok := starToNibble(r.Value)
		if !ok {
			escapes = append(escapes, r.Value)
		}
		if i%2 == 0 {
			half = nb << 4
		} else {
			dst = append(dst, half|nb)
		}
	}
	if len(rs)%2 == 1 {
		dst = append(dst, half)
	}
	for _, v := range escapes {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// DecodeRatingsColumnar inverts AppendRatingsColumnar, returning the
// decoded block and the unconsumed tail of b.
func DecodeRatingsColumnar(b []byte) ([]dataset.Rating, []byte, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("compress: columnar count: truncated")
	}
	b = b[n:]
	if count == 0 {
		return nil, b, nil
	}
	// Every rating costs at least 4 bits (its star nibble), so a count
	// beyond 2x the remaining bytes cannot be genuine.
	if count > uint64(len(b))*2 {
		return nil, nil, fmt.Errorf("compress: implausible columnar count %d", count)
	}
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("compress: columnar widths: truncated")
	}
	ub, ib := int(b[0]), int(b[1])
	b = b[2:]
	if ub > 32 || ib > 32 {
		return nil, nil, fmt.Errorf("compress: columnar width %d/%d out of range", ub, ib)
	}
	out := make([]dataset.Rating, count)
	users, b, err := unpackColumn(b, int(count), ub)
	if err != nil {
		return nil, nil, fmt.Errorf("compress: user column: %w", err)
	}
	items, b, err := unpackColumn(b, int(count), ib)
	if err != nil {
		return nil, nil, fmt.Errorf("compress: item column: %w", err)
	}
	for i := range out {
		out[i].User, out[i].Item = users[i], items[i]
	}
	nibbleBytes := (int(count) + 1) / 2
	if len(b) < nibbleBytes {
		return nil, nil, fmt.Errorf("compress: columnar nibbles: truncated")
	}
	var escapeIdx []int
	for i := range out {
		v := b[i/2]
		if i%2 == 0 {
			v >>= 4
		} else {
			v &= 0x0F
		}
		switch {
		case v == 15:
			escapeIdx = append(escapeIdx, i)
		case v > 9:
			return nil, nil, fmt.Errorf("compress: bad star nibble %d", v)
		default:
			out[i].Value = nibbleToStar(v)
		}
	}
	b = b[nibbleBytes:]
	if len(b) < 4*len(escapeIdx) {
		return nil, nil, fmt.Errorf("compress: columnar escapes: truncated")
	}
	for _, i := range escapeIdx {
		out[i].Value = math.Float32frombits(binary.LittleEndian.Uint32(b))
		b = b[4:]
	}
	return out, b, nil
}

// appendPacked bit-packs n width-bit values MSB-first. Width 0 (all values
// zero) emits nothing.
func appendPacked(dst []byte, n, width int, get func(i int) uint32) []byte {
	if width == 0 {
		return dst
	}
	var acc uint64
	accBits := 0
	for i := 0; i < n; i++ {
		acc = acc<<width | uint64(get(i))
		accBits += width
		for accBits >= 8 {
			accBits -= 8
			dst = append(dst, byte(acc>>accBits))
		}
	}
	if accBits > 0 {
		dst = append(dst, byte(acc<<(8-accBits)))
	}
	return dst
}

// unpackColumn reads n width-bit values and returns the remaining bytes.
func unpackColumn(b []byte, n, width int) ([]uint32, []byte, error) {
	out := make([]uint32, n)
	if width == 0 {
		return out, b, nil
	}
	need := (n*width + 7) / 8
	if len(b) < need {
		return nil, nil, fmt.Errorf("truncated (%d of %d bytes)", len(b), need)
	}
	var acc uint64
	accBits := 0
	pos := 0
	mask := uint64(1)<<width - 1
	for i := range out {
		for accBits < width {
			acc = acc<<8 | uint64(b[pos])
			pos++
			accBits += 8
		}
		out[i] = uint32(acc >> (accBits - width) & mask)
		accBits -= width
	}
	return out, b[need:], nil
}

// AppendIndexDeltas packs a strictly-increasing index list (the delta
// codec's back-references into the per-peer dictionary) as a uvarint
// count, the first index, then uvarint gaps minus one. Sorted references
// at REX densities cost about one byte each. The caller must pass a
// strictly-increasing list; the runtime sorts its (distinct) references
// before encoding.
func AppendIndexDeltas(dst []byte, idx []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(idx)))
	prev := uint64(0)
	for i, v := range idx {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(v))
		} else {
			dst = binary.AppendUvarint(dst, uint64(v)-prev-1)
		}
		prev = uint64(v)
	}
	return dst
}

// DecodeIndexDeltas inverts AppendIndexDeltas, validating monotonicity and
// range, and returns the unconsumed tail.
func DecodeIndexDeltas(b []byte) ([]uint32, []byte, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("compress: index count: truncated")
	}
	b = b[n:]
	if count > uint64(len(b)) {
		return nil, nil, fmt.Errorf("compress: implausible index count %d", count)
	}
	out := make([]uint32, count)
	prev := uint64(0)
	for i := range out {
		d, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, nil, fmt.Errorf("compress: index delta: truncated")
		}
		b = b[n:]
		v := d
		if i > 0 {
			v = prev + 1 + d
		}
		if v > math.MaxUint32 {
			return nil, nil, fmt.Errorf("compress: index %d overflows", v)
		}
		out[i] = uint32(v)
		prev = v
	}
	return out, b, nil
}
