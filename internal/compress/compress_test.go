package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rex/internal/dataset"
	"rex/internal/movielens"
)

func sortedEqual(a, b []dataset.Rating) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[uint64]float32, len(a))
	for _, r := range a {
		am[r.Key()] = r.Value
	}
	for _, r := range b {
		v, ok := am[r.Key()]
		if !ok || v != r.Value {
			return false
		}
	}
	return true
}

func TestPackRoundtrip(t *testing.T) {
	spec := movielens.Latest().Scaled(0.05)
	ds := movielens.Generate(spec)
	rs := ds.Ratings[:500]
	packed := PackRatings(rs)
	got, err := UnpackRatings(packed)
	if err != nil {
		t.Fatal(err)
	}
	if !sortedEqual(rs, got) {
		t.Fatal("pack roundtrip lost ratings")
	}
}

func TestPackCompressionRatio(t *testing.T) {
	spec := movielens.Latest().Scaled(0.1)
	ds := movielens.Generate(spec)
	raw := len(dataset.EncodeRatings(ds.Ratings))
	packed := len(PackRatings(ds.Ratings))
	if packed*2 > raw {
		t.Fatalf("packing saves too little: %d -> %d bytes", raw, packed)
	}
	perRating := float64(packed) / float64(len(ds.Ratings))
	if perRating > 7 {
		t.Fatalf("%.1f bytes/rating after packing, expected <7", perRating)
	}
}

func TestPackEmpty(t *testing.T) {
	got, err := UnpackRatings(PackRatings(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty roundtrip: %v %v", got, err)
	}
}

func TestPackOffGridValues(t *testing.T) {
	rs := []dataset.Rating{
		{User: 1, Item: 2, Value: 3.14}, // escape path
		{User: 1, Item: 3, Value: 4.5},  // on-grid
		{User: 2, Item: 1, Value: 0.5},
	}
	got, err := UnpackRatings(PackRatings(rs))
	if err != nil {
		t.Fatal(err)
	}
	if !sortedEqual(rs, got) {
		t.Fatalf("off-grid roundtrip: %+v", got)
	}
}

func TestPackRoundtripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		seen := make(map[uint64]bool)
		var rs []dataset.Rating
		for len(rs) < int(n) {
			r := dataset.Rating{
				User:  uint32(rng.Intn(100)),
				Item:  uint32(rng.Intn(1000)),
				Value: float32(rng.Intn(10)+1) / 2,
			}
			if seen[r.Key()] {
				continue
			}
			seen[r.Key()] = true
			rs = append(rs, r)
		}
		got, err := UnpackRatings(PackRatings(rs))
		return err == nil && sortedEqual(rs, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackGarbage(t *testing.T) {
	if _, err := UnpackRatings([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}); err == nil {
		t.Fatal("implausible count accepted")
	}
	if _, err := UnpackRatings([]byte{5}); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestDeflateRoundtrip(t *testing.T) {
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i % 17) // compressible
	}
	c, err := Deflate(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) >= len(data) {
		t.Fatalf("deflate grew data: %d -> %d", len(data), len(c))
	}
	got, err := Inflate(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("inflate mismatch")
	}
}

func TestDeflateModelPayload(t *testing.T) {
	// Model bytes (float32 params) still shrink somewhat under DEFLATE
	// because low-entropy exponent bytes repeat.
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 4000)
	for i := 0; i < len(data); i += 4 {
		v := float32(rng.NormFloat64() * 0.1)
		b := math.Float32bits(v)
		data[i] = byte(b)
		data[i+1] = byte(b >> 8)
		data[i+2] = byte(b >> 16)
		data[i+3] = byte(b >> 24)
	}
	c, err := Deflate(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Inflate(c)
	if err != nil || len(got) != len(data) {
		t.Fatalf("inflate: %v", err)
	}
}
