// Package serve is the query side of a REX node daemon: an HTTP API over
// the engine's published snapshots, turning the training process into a
// recommendation service. It reads only immutable snapshots
// (runtime.Engine Publish mode), so queries never block — and never race —
// the training loop:
//
//	GET  /recommend?user=U&n=N[&model=knn]  ranked unseen items
//	POST /rate                              online rating ingestion
//	GET  /status                            control-plane counters
//	GET  /metrics                           per-endpoint latency histograms
//	GET  /peers                             live/lost neighbor sets
//	POST /drain                             graceful stop of training
//	GET  /snapshot                          serialized serving state
//
// Ranking goes through a cached candidate index (rank.Index) rebuilt once
// per snapshot epoch, not per query; results are bit-identical to running
// the uncached rank.TopN offline against the same snapshot — the contract
// the daemon's acceptance test pins. model=knn serves user-based KNN from
// the node's raw-data store through the same handler, the profile database
// that raw-data sharing uniquely provides (§II-B).
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rex/internal/dataset"
	"rex/internal/knn"
	"rex/internal/metrics"
	"rex/internal/rank"
	"rex/internal/runtime"
)

// Node is the engine surface the server reads; *runtime.Engine implements
// it. All methods must be safe for concurrent use.
type Node interface {
	// Snapshot returns the latest published read-consistent snapshot (nil
	// until the first epoch completes).
	Snapshot() *runtime.Snapshot
	// Status returns the latest published control-plane view.
	Status() *runtime.Status
	// Ingest posts ratings into the training mailbox.
	Ingest(rs []dataset.Rating) int
	// Drain asks the training loop to stop after the current epoch.
	Drain()
}

// Config wires a Server to its node.
type Config struct {
	// Node is the serving data source. Required.
	Node Node
	// ID is this node's id, echoed in /status.
	ID int
	// NumItems bounds ranking candidates: items 0..NumItems-1.
	NumItems int
	// KNN configures the model=knn serving path; zero value = defaults.
	KNN knn.Config
	// OnRate, when set, is called with accepted ratings BEFORE they are
	// acknowledged or ingested — the daemon's durability hook (WAL
	// append). An error rejects the request.
	OnRate func(rs []dataset.Rating) error
	// Drained, when set, is closed by the daemon once the training loop
	// has stopped; /drain waits on it.
	Drained <-chan struct{}
	// DrainErr, when set, is consulted after Drained closes: a non-nil
	// error means the drain did not complete cleanly (e.g. the final
	// snapshot failed to persist), and /drain reports 500 instead of
	// claiming a clean drain. Must be safe to call once Drained is closed.
	DrainErr func() error
	// Extra, when set, contributes additional fields to /status (e.g. the
	// daemon's generation counter and data directory).
	Extra func() map[string]any
	// Stages, when set, is surfaced under "stages" in /metrics — the
	// daemon records per-epoch pipeline stage durations (train, merge,
	// seal, wire, ...) into it.
	Stages *metrics.StageSet
	// Admission configures overload protection on the serving edge
	// (token-bucket + bounded queue on /rate, staleness shed on
	// /recommend). The zero value disables every gate.
	Admission AdmissionConfig
	// Now overrides the admission clock; nil = time.Now. Tests only.
	Now func() time.Time
}

// Server serves the HTTP API.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	adm   *admission                // nil when no gate is configured
	stats map[string]*endpointStats // keyed by endpoint name, fixed at New

	// Per-snapshot caches, rebuilt when the served epoch advances. The
	// KNN recommender is built lazily: only queries asking for it pay the
	// profile-database construction.
	mu       sync.Mutex
	cacheEp  int
	index    *rank.Index
	knnRec   *knn.Recommender
	knnSnap  *runtime.Snapshot
	knnBuilt bool
}

// endpointStats accumulates one endpoint's request latencies and response
// status counts. The histogram path is lock-free; status counts take a
// short mutex (one map bump per request).
type endpointStats struct {
	hist     metrics.Hist
	mu       sync.Mutex
	statuses map[int]uint64
}

// statusWriter captures the response status code for accounting. Handlers
// that never call WriteHeader implicitly send 200.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// New builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Node == nil {
		return nil, fmt.Errorf("serve: node is required")
	}
	if cfg.NumItems <= 0 {
		return nil, fmt.Errorf("serve: NumItems must be positive")
	}
	if cfg.KNN.K <= 0 {
		cfg.KNN = knn.DefaultConfig()
	}
	s := &Server{cfg: cfg, cacheEp: -1, mux: http.NewServeMux(), stats: make(map[string]*endpointStats)}
	if cfg.Admission.Enabled() {
		s.adm = newAdmission(cfg.Admission, cfg.Now)
	}
	s.mux.HandleFunc("GET /recommend", s.instrument("recommend", s.handleRecommend))
	s.mux.HandleFunc("POST /rate", s.instrument("rate", s.handleRate))
	s.mux.HandleFunc("GET /status", s.instrument("status", s.handleStatus))
	s.mux.HandleFunc("GET /peers", s.instrument("peers", s.handlePeers))
	s.mux.HandleFunc("POST /drain", s.instrument("drain", s.handleDrain))
	s.mux.HandleFunc("GET /snapshot", s.instrument("snapshot", s.handleSnapshot))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// instrument wraps a handler with request-latency and status accounting
// under the given endpoint name.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	es := &endpointStats{statuses: make(map[int]uint64)}
	s.stats[name] = es
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		es.hist.Observe(time.Since(start))
		es.mu.Lock()
		es.statuses[sw.code]++
		es.mu.Unlock()
	}
}

// Handler returns the http.Handler for the API.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// indexFor returns the candidate index for the snapshot, rebuilding the
// cache if the snapshot advanced past the cached epoch.
func (s *Server) indexFor(snap *runtime.Snapshot) *rank.Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap.Epoch != s.cacheEp {
		s.index = rank.NewIndex(snap.Ratings, s.cfg.NumItems)
		s.cacheEp = snap.Epoch
		s.knnBuilt = false
		s.knnRec, s.knnSnap = nil, nil
	}
	return s.index
}

// knnFor returns the KNN recommender built over the snapshot's raw-data
// store, building it on first use per epoch.
func (s *Server) knnFor(snap *runtime.Snapshot) *knn.Recommender {
	s.indexFor(snap) // ensure cache generation matches
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.knnBuilt || s.knnSnap != snap {
		s.knnRec = knn.New(s.cfg.KNN, snap.Ratings)
		s.knnSnap = snap
		s.knnBuilt = true
	}
	return s.knnRec
}

// knnPredictor adapts internal/knn to rank.Predictor.
type knnPredictor struct{ r *knn.Recommender }

func (p knnPredictor) Predict(user, item uint32) float32 {
	return float32(p.r.Predict(user, item))
}

// RecommendItem is one /recommend list entry.
type RecommendItem struct {
	Item  uint32  `json:"item"`
	Score float32 `json:"score"`
}

// RecommendResponse is the /recommend payload.
type RecommendResponse struct {
	User  uint32          `json:"user"`
	Epoch int             `json:"epoch"`
	Model string          `json:"model"`
	Items []RecommendItem `json:"items"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	snap := s.cfg.Node.Snapshot()
	if snap == nil {
		writeErr(w, http.StatusServiceUnavailable, "no model snapshot yet; still training epoch 0")
		return
	}
	if shed, retry := s.adm.shedRecommend(snap.Epoch); shed {
		writeShed(w, http.StatusServiceUnavailable, ShedStale, retry,
			fmt.Sprintf("snapshot epoch %d is stale past the %s serving bound; training is not advancing here — retry later or on another replica",
				snap.Epoch, s.cfg.Admission.MaxSnapshotAge))
		return
	}
	q := r.URL.Query()
	user, err := strconv.ParseUint(q.Get("user"), 10, 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "user: %v", err)
		return
	}
	n := 10
	if v := q.Get("n"); v != "" {
		n, err = strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
	}
	if n > s.cfg.NumItems {
		n = s.cfg.NumItems
	}
	ix := s.indexFor(snap)
	var pred rank.Predictor
	modelName := q.Get("model")
	switch modelName {
	case "", "mf", "model":
		pred = snap.Model
		modelName = "mf"
	case "knn":
		pred = knnPredictor{r: s.knnFor(snap)}
	default:
		writeErr(w, http.StatusBadRequest, "unknown model %q (want mf or knn)", modelName)
		return
	}
	items := ix.TopN(pred, uint32(user), n)
	resp := RecommendResponse{
		User: uint32(user), Epoch: snap.Epoch, Model: modelName,
		Items: make([]RecommendItem, len(items)),
	}
	for i, it := range items {
		resp.Items[i] = RecommendItem{Item: it.ID, Score: it.Score}
	}
	writeJSON(w, http.StatusOK, resp)
}

// Rating is the /rate request item.
type Rating struct {
	User  uint32  `json:"user"`
	Item  uint32  `json:"item"`
	Value float32 `json:"value"`
}

// maxEntityID mirrors the gossip wire's id cap (internal/mf): user and
// item ids at or above 2^24 cannot be encoded on the delta wire, so the
// serving edge must reject them up front — before the WAL append — or a
// single bad rating would poison every future gossip round.
const maxEntityID = 1 << 24

// validateRating is the full admission check for one /rate entry,
// applied before any durability or ingestion side effect. The value
// check is written as a negated inclusion so NaN (which fails every
// comparison) is rejected rather than slipping past a two-sided
// exclusion check; ±Inf falls outside the interval the same way.
func validateRating(i int, b Rating, numItems int) error {
	if !(b.Value >= 0.5 && b.Value <= 5) {
		return fmt.Errorf("rating %d: value %v outside [0.5, 5]", i, b.Value)
	}
	if b.User >= maxEntityID {
		return fmt.Errorf("rating %d: user %d above wire id cap %d", i, b.User, maxEntityID)
	}
	if int(b.Item) >= numItems {
		return fmt.Errorf("rating %d: item %d outside catalog of %d", i, b.Item, numItems)
	}
	return nil
}

func (s *Server) handleRate(w http.ResponseWriter, r *http.Request) {
	// Admission runs before the body is even parsed: an over-limit request
	// must cost the node as close to nothing as possible, and must never
	// reach the WAL. The release covers the full parse+WAL+ingest section,
	// so QueueDepth bounds real handler concurrency, not just the append.
	release, reason, retryAfter := s.adm.admitRate()
	if release == nil {
		writeShed(w, http.StatusTooManyRequests, reason, retryAfter,
			"rating shed by admission control ("+reason+"); nothing was written — safe to retry after the hint")
		return
	}
	defer release()
	dec := json.NewDecoder(r.Body)
	var batch []Rating
	// Accept a single object or an array.
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		writeErr(w, http.StatusBadRequest, "body: %v", err)
		return
	}
	if len(raw) > 0 && raw[0] == '[' {
		if err := json.Unmarshal(raw, &batch); err != nil {
			writeErr(w, http.StatusBadRequest, "body: %v", err)
			return
		}
	} else {
		var one Rating
		if err := json.Unmarshal(raw, &one); err != nil {
			writeErr(w, http.StatusBadRequest, "body: %v", err)
			return
		}
		batch = []Rating{one}
	}
	if len(batch) == 0 {
		writeJSON(w, http.StatusOK, map[string]int{"accepted": 0})
		return
	}
	rs := make([]dataset.Rating, len(batch))
	for i, b := range batch {
		if err := validateRating(i, b, s.cfg.NumItems); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		rs[i] = dataset.Rating{User: b.User, Item: b.Item, Value: b.Value}
	}
	// Durability before acknowledgment: the WAL append happens first, so a
	// crash after the 200 can never lose an acknowledged rating.
	if s.cfg.OnRate != nil {
		if err := s.cfg.OnRate(rs); err != nil {
			writeErr(w, http.StatusInternalServerError, "persisting: %v", err)
			return
		}
	}
	s.adm.noteAccepted()
	writeJSON(w, http.StatusOK, map[string]int{"accepted": s.cfg.Node.Ingest(rs)})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Node.Status()
	if st == nil {
		writeErr(w, http.StatusServiceUnavailable, "engine not started")
		return
	}
	rmse := st.RMSE
	if math.IsNaN(rmse) {
		rmse = -1 // JSON has no NaN
	}
	out := map[string]any{
		"id":            s.cfg.ID,
		"epoch":         st.Epoch,
		"rmse":          rmse,
		"draining":      st.Draining,
		"ingested":      st.Ingested,
		"bytes_in":      st.BytesIn,
		"bytes_out":     st.BytesOut,
		"bytes_on_wire": st.BytesOnWire,
		"peers_lost":    st.PeersLost,
		"rejoins":       st.Rejoins,
		"attested":      st.Attested,
		"num_items":     s.cfg.NumItems,
		// Delta-wire counters: zero across the board on the full wire.
		"delta_refs":     st.DeltaRefs,
		"delta_explicit": st.DeltaExplicit,
		"resyncs":        st.Resyncs,
		"wire_saved_bytes": func() int64 {
			if v := st.WireRawBytes - st.BytesOnWire; v > 0 {
				return v
			}
			return 0
		}(),
	}
	if snap := s.cfg.Node.Snapshot(); snap != nil {
		out["snapshot_epoch"] = snap.Epoch
	}
	if s.cfg.Extra != nil {
		for k, v := range s.cfg.Extra() {
			out[k] = v
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// EndpointMetrics is one endpoint's entry in the /metrics payload.
// Percentiles are precomputed in milliseconds for human consumption; the
// raw histogram rides along so a scraper aggregating several nodes can
// merge buckets (metrics.HistSnapshot.Add) and get exact cluster-wide
// quantiles instead of averaging per-node percentiles.
type EndpointMetrics struct {
	Count    uint64                `json:"count"`
	Statuses map[int]uint64        `json:"statuses"`
	MeanMs   float64               `json:"mean_ms"`
	P50Ms    float64               `json:"p50_ms"`
	P95Ms    float64               `json:"p95_ms"`
	P99Ms    float64               `json:"p99_ms"`
	Hist     *metrics.HistSnapshot `json:"hist,omitempty"`
}

// MetricsResponse is the /metrics payload.
type MetricsResponse struct {
	Endpoints map[string]EndpointMetrics       `json:"endpoints"`
	Stages    map[string]*metrics.HistSnapshot `json:"stages,omitempty"`
	// Admission carries the overload-protection counters when any gate is
	// configured: accepted vs shed (by reason) and the in-flight queue's
	// high-water mark.
	Admission *AdmissionMetrics `json:"admission,omitempty"`
}

func endpointMetricsFrom(es *endpointStats) EndpointMetrics {
	snap := es.hist.Snapshot()
	es.mu.Lock()
	statuses := make(map[int]uint64, len(es.statuses))
	for code, n := range es.statuses {
		statuses[code] = n
	}
	es.mu.Unlock()
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	return EndpointMetrics{
		Count:    snap.Count,
		Statuses: statuses,
		MeanMs:   ms(snap.Mean()),
		P50Ms:    ms(snap.Quantile(0.50)),
		P95Ms:    ms(snap.Quantile(0.95)),
		P99Ms:    ms(snap.Quantile(0.99)),
		Hist:     snap,
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := MetricsResponse{Endpoints: make(map[string]EndpointMetrics, len(s.stats))}
	for name, es := range s.stats {
		resp.Endpoints[name] = endpointMetricsFrom(es)
	}
	if s.cfg.Stages != nil {
		resp.Stages = s.cfg.Stages.Snapshot()
	}
	resp.Admission = s.adm.metrics()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePeers(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Node.Status()
	if st == nil {
		writeErr(w, http.StatusServiceUnavailable, "engine not started")
		return
	}
	neighbors, lost := st.Neighbors, st.Lost
	if neighbors == nil {
		neighbors = []int{}
	}
	if lost == nil {
		lost = []int{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"neighbors": neighbors, "lost": lost})
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.cfg.Node.Drain()
	if s.cfg.Drained != nil {
		select {
		case <-s.cfg.Drained:
			if s.cfg.DrainErr != nil {
				if err := s.cfg.DrainErr(); err != nil {
					writeErr(w, http.StatusInternalServerError, "drain did not complete cleanly: %v", err)
					return
				}
			}
		case <-r.Context().Done():
			writeErr(w, http.StatusGatewayTimeout, "drain still in progress")
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"draining": true})
}

// SnapshotResponse is the /snapshot payload: enough to reconstruct the
// serving state offline (model bytes unmarshal into the model family the
// cluster runs; ratings decode with dataset.DecodeRatings) and verify
// /recommend bit for bit.
type SnapshotResponse struct {
	Epoch    int     `json:"epoch"`
	RMSE     float64 `json:"rmse"`
	NumItems int     `json:"num_items"`
	Model    []byte  `json:"model"`   // base64 in JSON
	Ratings  []byte  `json:"ratings"` // dataset.EncodeRatings, base64 in JSON
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.cfg.Node.Snapshot()
	if snap == nil {
		writeErr(w, http.StatusServiceUnavailable, "no model snapshot yet")
		return
	}
	mb, err := snap.Model.Marshal()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "marshaling model: %v", err)
		return
	}
	rmse := snap.RMSE
	if math.IsNaN(rmse) {
		rmse = -1 // JSON has no NaN; same substitution as /status
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{
		Epoch: snap.Epoch, RMSE: rmse, NumItems: s.cfg.NumItems,
		Model: mb, Ratings: dataset.EncodeRatings(snap.Ratings),
	})
}
