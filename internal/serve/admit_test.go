package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"rex/internal/dataset"
	"rex/internal/mf"
	"rex/internal/runtime"
)

// fakeClock is an injectable admission clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestAdmissionRateLimit429 walks the token bucket through a burst: the
// burst is admitted, the next request sheds 429 with reason and
// Retry-After, nothing shed reaches the WAL hook or the mailbox, and
// refilled tokens admit again.
func TestAdmissionRateLimit429(t *testing.T) {
	clock := newFakeClock()
	n := &fakeNode{status: &runtime.Status{}}
	var walBatches int
	s, err := New(Config{
		Node: n, NumItems: 100,
		Admission: AdmissionConfig{RatePerSec: 2, Burst: 2},
		Now:       clock.Now,
		OnRate:    func([]dataset.Rating) error { walBatches++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	for i := 0; i < 2; i++ {
		if w, body := post(t, h, "/rate", `{"user":1,"item":2,"value":3}`); w.Code != http.StatusOK {
			t.Fatalf("burst request %d: %d %v", i, w.Code, body)
		}
	}
	w, body := post(t, h, "/rate", `{"user":1,"item":2,"value":3}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: %d %v, want 429", w.Code, body)
	}
	if body["reason"] != ShedRateLimited {
		t.Fatalf("shed reason %v, want %q", body["reason"], ShedRateLimited)
	}
	// Deficit is one full token at 2/s = 500ms: the header rounds up to
	// the next whole second, the body keeps millisecond precision.
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", ra)
	}
	if ms, _ := body["retry_after_ms"].(float64); ms != 500 {
		t.Fatalf("retry_after_ms %v, want 500 (1 token at 2/s)", body["retry_after_ms"])
	}
	if walBatches != 2 || len(n.ingested) != 2 {
		t.Fatalf("shed request left a trace: %d WAL batches, %d ingested (want 2/2)", walBatches, len(n.ingested))
	}

	// Refill: 500ms buys one token.
	clock.Advance(500 * time.Millisecond)
	if w, body := post(t, h, "/rate", `{"user":1,"item":2,"value":3}`); w.Code != http.StatusOK {
		t.Fatalf("post-refill request: %d %v", w.Code, body)
	}
	if walBatches != 3 {
		t.Fatalf("post-refill WAL batches %d, want 3", walBatches)
	}
}

// TestAdmissionQueueFull pins the bounded-queue path: with QueueDepth 1
// and a request parked inside the WAL section, the next one sheds 429
// with reason queue_full instead of queuing on the WAL lock.
func TestAdmissionQueueFull(t *testing.T) {
	n := &fakeNode{status: &runtime.Status{}}
	inWAL := make(chan struct{})
	releaseWAL := make(chan struct{})
	s, err := New(Config{
		Node: n, NumItems: 100,
		Admission: AdmissionConfig{QueueDepth: 1},
		OnRate: func() func([]dataset.Rating) error {
			var once sync.Once
			return func([]dataset.Rating) error {
				first := false
				once.Do(func() { first = true })
				if first { // only the parked request blocks
					close(inWAL)
					<-releaseWAL
				}
				return nil
			}
		}(),
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	done := make(chan int)
	go func() {
		w, _ := post(t, h, "/rate", `{"user":1,"item":2,"value":3}`)
		done <- w.Code
	}()
	<-inWAL // the first request holds the only queue slot

	w, body := post(t, h, "/rate", `{"user":2,"item":3,"value":4}`)
	if w.Code != http.StatusTooManyRequests || body["reason"] != ShedQueueFull {
		t.Fatalf("queue-full request: %d %v, want 429/%q", w.Code, body, ShedQueueFull)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("queue-full 429 without Retry-After")
	}

	close(releaseWAL)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("parked request finished %d, want 200", code)
	}
	// The slot is free again.
	if w, _ := post(t, h, "/rate", `{"user":3,"item":4,"value":2}`); w.Code != http.StatusOK {
		t.Fatalf("post-release request: %d", w.Code)
	}

	m := s.adm.metrics()
	if m.ShedQueueFull != 1 || m.Accepted != 2 || m.QueueDepthHWM != 1 {
		t.Fatalf("metrics %+v, want 1 queue shed, 2 accepted, hwm 1", m)
	}
}

// TestAdmissionStaleSnapshot503: /recommend serves while the snapshot is
// fresh, sheds 503 with reason and hint once the epoch stalls past the
// bound, and recovers the moment a new epoch publishes.
func TestAdmissionStaleSnapshot503(t *testing.T) {
	clock := newFakeClock()
	n := &fakeNode{
		status: &runtime.Status{},
		snap: &runtime.Snapshot{
			Epoch: 1, Model: mf.New(mf.DefaultConfig()),
			Ratings: []dataset.Rating{{User: 1, Item: 2, Value: 3}},
		},
	}
	s, err := New(Config{
		Node: n, NumItems: 10,
		Admission: AdmissionConfig{MaxSnapshotAge: 10 * time.Second},
		Now:       clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	if w, _ := get(t, h, "/recommend?user=1&n=2"); w.Code != http.StatusOK {
		t.Fatalf("fresh snapshot: %d", w.Code)
	}
	clock.Advance(9 * time.Second)
	if w, _ := get(t, h, "/recommend?user=1&n=2"); w.Code != http.StatusOK {
		t.Fatalf("inside bound: %d", w.Code)
	}
	clock.Advance(2 * time.Second) // 11s since epoch 1 first seen
	w, body := get(t, h, "/recommend?user=1&n=2")
	if w.Code != http.StatusServiceUnavailable || body["reason"] != ShedStale {
		t.Fatalf("stale snapshot: %d %v, want 503/%q", w.Code, body, ShedStale)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("stale 503 without Retry-After")
	}
	if ms, _ := body["retry_after_ms"].(float64); ms != 5000 {
		t.Fatalf("retry_after_ms %v, want 5000 (half the bound)", body["retry_after_ms"])
	}

	// Training resumes: a new epoch resets the staleness clock.
	n.snap = &runtime.Snapshot{
		Epoch: 2, Model: n.snap.Model, Ratings: n.snap.Ratings,
	}
	if w, _ := get(t, h, "/recommend?user=1&n=2"); w.Code != http.StatusOK {
		t.Fatalf("after epoch advance: %d", w.Code)
	}

	m := s.adm.metrics()
	if m.ShedStale != 1 {
		t.Fatalf("metrics %+v, want 1 stale shed", m)
	}
}

// TestAdmissionMetricsInScrape: the admission block rides /metrics with
// counters and config echo; without any gate configured it is absent.
func TestAdmissionMetricsInScrape(t *testing.T) {
	clock := newFakeClock()
	n := &fakeNode{status: &runtime.Status{}}
	s, err := New(Config{
		Node: n, NumItems: 100,
		Admission: AdmissionConfig{RatePerSec: 1, Burst: 1, QueueDepth: 8},
		Now:       clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	post(t, h, "/rate", `{"user":1,"item":2,"value":3}`) // accepted
	post(t, h, "/rate", `{"user":1,"item":2,"value":3}`) // rate shed

	var resp MetricsResponse
	w, _ := get(t, h, "/metrics")
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	a := resp.Admission
	if a == nil {
		t.Fatal("no admission block in /metrics")
	}
	if a.Accepted != 1 || a.ShedRateLimited != 1 || a.QueueDepth != 8 || a.RatePerSec != 1 {
		t.Fatalf("admission metrics %+v", a)
	}

	// No gates configured: the block must be omitted, and /rate must be
	// completely ungated.
	s2, err := New(Config{Node: n, NumItems: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if w, _ := post(t, s2.Handler(), "/rate", `{"user":1,"item":2,"value":3}`); w.Code != http.StatusOK {
			t.Fatalf("ungated request %d: %d", i, w.Code)
		}
	}
	w, _ = get(t, s2.Handler(), "/metrics")
	var resp2 MetricsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Admission != nil {
		t.Fatalf("admission block present with no gates: %+v", resp2.Admission)
	}
}
