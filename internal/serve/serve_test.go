package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/gossip"
	"rex/internal/knn"
	"rex/internal/metrics"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/rank"
	"rex/internal/runtime"
)

// fakeNode is a controllable serve.Node for handler-level tests.
type fakeNode struct {
	snap     *runtime.Snapshot
	status   *runtime.Status
	ingested []dataset.Rating
	drained  bool
}

func (f *fakeNode) Snapshot() *runtime.Snapshot { return f.snap }
func (f *fakeNode) Status() *runtime.Status     { return f.status }
func (f *fakeNode) Drain()                      { f.drained = true }
func (f *fakeNode) Ingest(rs []dataset.Rating) int {
	f.ingested = append(f.ingested, rs...)
	return len(rs)
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	return do(t, h, httptest.NewRequest("GET", path, nil))
}

func post(t *testing.T, h http.Handler, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	return do(t, h, httptest.NewRequest("POST", path, strings.NewReader(body)))
}

func do(t *testing.T, h http.Handler, req *http.Request) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var out map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: non-JSON body %q", req.Method, req.URL, w.Body.String())
	}
	return w, out
}

func TestHandlersBeforeFirstSnapshot(t *testing.T) {
	n := &fakeNode{status: &runtime.Status{Epoch: 0}}
	s, err := New(Config{Node: n, NumItems: 10})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if w, _ := get(t, h, "/recommend?user=1"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/recommend before snapshot: %d, want 503", w.Code)
	}
	if w, _ := get(t, h, "/snapshot"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/snapshot before snapshot: %d, want 503", w.Code)
	}
	w, body := get(t, h, "/status")
	if w.Code != http.StatusOK {
		t.Fatalf("/status: %d", w.Code)
	}
	if _, has := body["snapshot_epoch"]; has {
		t.Fatal("status advertises a snapshot_epoch with no snapshot")
	}
	// Peers with nil slices must serialize as empty arrays, not null.
	w, _ = get(t, h, "/peers")
	if w.Code != http.StatusOK || !bytes.Contains(w.Body.Bytes(), []byte(`"neighbors":[]`)) {
		t.Fatalf("/peers: %d %s", w.Code, w.Body.String())
	}
}

func TestRateValidationAndDurabilityOrder(t *testing.T) {
	n := &fakeNode{status: &runtime.Status{}}
	var logged []dataset.Rating
	s, err := New(Config{
		Node: n, NumItems: 100,
		OnRate: func(rs []dataset.Rating) error {
			// Order invariant: this batch must not be in the mailbox yet.
			if len(n.ingested) != len(logged) {
				t.Fatal("ratings ingested before the durability hook ran")
			}
			logged = append(logged, rs...)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// Single object form.
	w, body := post(t, h, "/rate", `{"user":3,"item":7,"value":4.5}`)
	if w.Code != http.StatusOK || body["accepted"].(float64) != 1 {
		t.Fatalf("single rate: %d %v", w.Code, body)
	}
	// Array form.
	w, body = post(t, h, "/rate", `[{"user":3,"item":8,"value":3},{"user":4,"item":9,"value":1}]`)
	if w.Code != http.StatusOK || body["accepted"].(float64) != 2 {
		t.Fatalf("batch rate: %d %v", w.Code, body)
	}
	if len(logged) != 3 || len(n.ingested) != 3 {
		t.Fatalf("logged %d ingested %d, want 3/3", len(logged), len(n.ingested))
	}
	if logged[0] != (dataset.Rating{User: 3, Item: 7, Value: 4.5}) {
		t.Fatalf("logged %+v", logged[0])
	}

	// Out-of-range value and out-of-catalog item reject the whole batch.
	if w, _ := post(t, h, "/rate", `{"user":1,"item":2,"value":9}`); w.Code != http.StatusBadRequest {
		t.Fatalf("value 9 accepted: %d", w.Code)
	}
	if w, _ := post(t, h, "/rate", `{"user":1,"item":100,"value":3}`); w.Code != http.StatusBadRequest {
		t.Fatalf("item 100 of 100 accepted: %d", w.Code)
	}
	if w, _ := post(t, h, "/rate", `not json`); w.Code != http.StatusBadRequest {
		t.Fatalf("garbage accepted: %d", w.Code)
	}
	if len(n.ingested) != 3 {
		t.Fatalf("rejected requests leaked %d ratings in", len(n.ingested)-3)
	}

	// A failing durability hook must reject without ingesting.
	s2, _ := New(Config{Node: n, NumItems: 100, OnRate: func([]dataset.Rating) error {
		return fmt.Errorf("disk gone")
	}})
	if w, _ := post(t, s2.Handler(), "/rate", `{"user":1,"item":2,"value":3}`); w.Code != http.StatusInternalServerError {
		t.Fatalf("failed WAL append returned %d, want 500", w.Code)
	}
	if len(n.ingested) != 3 {
		t.Fatal("rating ingested despite failed durability hook")
	}
}

func TestDrainWaitsForDrained(t *testing.T) {
	n := &fakeNode{status: &runtime.Status{}}
	ch := make(chan struct{})
	close(ch)
	s, err := New(Config{Node: n, NumItems: 4, Drained: ch})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := post(t, s.Handler(), "/drain", "")
	if w.Code != http.StatusOK || !n.drained {
		t.Fatalf("/drain: %d drained=%v", w.Code, n.drained)
	}
}

// TestDrainReportsDirtyDrain pins that /drain does not claim a clean
// drain when the daemon's loop ended in error (the final snapshot was
// never persisted): the waiter gets a 500 carrying the loop error.
func TestDrainReportsDirtyDrain(t *testing.T) {
	n := &fakeNode{status: &runtime.Status{}}
	ch := make(chan struct{})
	close(ch)
	s, err := New(Config{Node: n, NumItems: 4, Drained: ch, DrainErr: func() error {
		return fmt.Errorf("final snapshot: disk gone")
	}})
	if err != nil {
		t.Fatal(err)
	}
	w, body := post(t, s.Handler(), "/drain", "")
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("/drain after failed final persist: %d %v, want 500", w.Code, body)
	}
	if !strings.Contains(body["error"].(string), "disk gone") {
		t.Fatalf("error body %v does not carry the loop error", body)
	}

	// A clean drain (nil DrainErr result) still returns 200.
	s2, err := New(Config{Node: n, NumItems: 4, Drained: ch, DrainErr: func() error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := post(t, s2.Handler(), "/drain", ""); w.Code != http.StatusOK {
		t.Fatalf("clean /drain: %d, want 200", w.Code)
	}
}

// TestSnapshotNaNRMSESanitized: a node whose test partition is empty has a
// NaN RMSE, which json.Encoder refuses to emit — after the 200 header is
// already written. /snapshot must apply the same NaN→-1 substitution as
// /status so the body stays well-formed JSON.
func TestSnapshotNaNRMSESanitized(t *testing.T) {
	n := &fakeNode{
		status: &runtime.Status{},
		snap: &runtime.Snapshot{
			Epoch: 3, RMSE: math.NaN(), Model: mf.New(mf.DefaultConfig()),
			Ratings: []dataset.Rating{{User: 1, Item: 2, Value: 3}},
		},
	}
	s, err := New(Config{Node: n, NumItems: 4})
	if err != nil {
		t.Fatal(err)
	}
	w, body := get(t, s.Handler(), "/snapshot")
	if w.Code != http.StatusOK {
		t.Fatalf("/snapshot with NaN RMSE: %d %v", w.Code, body)
	}
	if body["rmse"].(float64) != -1 {
		t.Fatalf("rmse %v, want the -1 NaN substitute", body["rmse"])
	}
}

// engineNode spins up a real single-node engine over a movielens shard and
// steps it twice so a published snapshot exists.
func engineNode(t *testing.T) (*runtime.Engine, int, func()) {
	t.Helper()
	spec := movielens.Latest().Scaled(0.05)
	spec.Seed = 33
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(33))
	tr, te := ds.SplitPerUser(0.7, rng)
	mcfg := mf.DefaultConfig()
	node := core.NewNode(core.Config{
		ID: 0, Mode: core.DataSharing, Algo: gossip.DPSGD,
		StepsPerEpoch: 200, SharePoints: 30, Seed: 33,
	}, mf.New(mcfg), tr.Ratings, te.Ratings)
	eps := runtime.NewChanNet(1)
	e, err := runtime.NewEngine(runtime.Config{
		Node: node, Endpoint: eps[0],
		NewModel: func() model.Model { return mf.New(mcfg) },
		Publish:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return e, ds.NumItems, func() { e.Stop(); eps[0].Close() }
}

// TestRecommendBitIdenticalToOfflineTopN is the serving-path contract: the
// JSON that comes out of /recommend must match the uncached offline
// rank.TopN over the engine's snapshot exactly — same ids, same float32
// scores (float32 survives a JSON round-trip losslessly).
func TestRecommendBitIdenticalToOfflineTopN(t *testing.T) {
	e, numItems, stop := engineNode(t)
	defer stop()
	s, err := New(Config{Node: e, NumItems: numItems})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	snap := e.Snapshot()

	users := map[uint32]bool{1 << 30: true} // plus a user nobody has seen
	for _, r := range snap.Ratings {
		if len(users) > 25 {
			break
		}
		users[r.User] = true
	}
	for u := range users {
		w, _ := get(t, h, fmt.Sprintf("/recommend?user=%d&n=10", u))
		if w.Code != http.StatusOK {
			t.Fatalf("user %d: %d %s", u, w.Code, w.Body.String())
		}
		var resp RecommendResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Epoch != snap.Epoch || resp.Model != "mf" {
			t.Fatalf("user %d: epoch %d model %q", u, resp.Epoch, resp.Model)
		}
		want := rank.TopN(snap.Model, u, numItems, 10, rank.SeenSet(snap.Ratings, u))
		if len(resp.Items) != len(want) {
			t.Fatalf("user %d: %d items served vs %d offline", u, len(resp.Items), len(want))
		}
		for i, it := range want {
			if resp.Items[i].Item != it.ID || resp.Items[i].Score != it.Score {
				t.Fatalf("user %d rank %d: served %+v != offline %+v", u, i, resp.Items[i], it)
			}
		}
	}

	// Bad inputs.
	if w, _ := get(t, h, "/recommend?user=notanumber"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad user: %d", w.Code)
	}
	if w, _ := get(t, h, "/recommend?user=1&n=0"); w.Code != http.StatusBadRequest {
		t.Fatalf("n=0: %d", w.Code)
	}
	if w, _ := get(t, h, "/recommend?user=1&model=rf"); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown model: %d", w.Code)
	}
}

// TestRecommendKNNFromRawStore is the raw-data-sharing payoff the paper
// highlights (§II-B): because REX nodes hold actual profiles, the same
// /recommend handler can serve a KNN recommender built from the node's
// raw-data store — no retraining, just a different predictor over the same
// snapshot and candidate index.
func TestRecommendKNNFromRawStore(t *testing.T) {
	e, numItems, stop := engineNode(t)
	defer stop()
	s, err := New(Config{Node: e, NumItems: numItems})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	snap := e.Snapshot()
	rec := knn.New(knn.DefaultConfig(), snap.Ratings)
	ix := rank.NewIndex(snap.Ratings, numItems)

	users := map[uint32]bool{}
	for _, r := range snap.Ratings {
		if len(users) > 10 {
			break
		}
		users[r.User] = true
	}
	differs := false
	for u := range users {
		w, _ := get(t, h, fmt.Sprintf("/recommend?user=%d&n=8&model=knn", u))
		if w.Code != http.StatusOK {
			t.Fatalf("user %d: %d %s", u, w.Code, w.Body.String())
		}
		var resp RecommendResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Model != "knn" {
			t.Fatalf("served model %q", resp.Model)
		}
		want := ix.TopN(knnPredictor{r: rec}, u, 8)
		for i, it := range want {
			if resp.Items[i].Item != it.ID || resp.Items[i].Score != it.Score {
				t.Fatalf("user %d rank %d: served %+v != offline knn %+v", u, i, resp.Items[i], it)
			}
		}
		// MF and KNN should not be the same ranking for every user; verify
		// the handler actually switches predictors.
		wmf, _ := get(t, h, fmt.Sprintf("/recommend?user=%d&n=8", u))
		var mfResp RecommendResponse
		if err := json.Unmarshal(wmf.Body.Bytes(), &mfResp); err != nil {
			t.Fatal(err)
		}
		for i := range resp.Items {
			if i < len(mfResp.Items) && resp.Items[i] != mfResp.Items[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("knn and mf rankings identical for all sampled users — predictor switch suspect")
	}
}

// TestSnapshotEndpointRoundtrip pins that /snapshot carries enough to
// reconstruct the serving state offline: model bytes unmarshal into an
// equal predictor and the ratings block decodes to the snapshot store.
func TestSnapshotEndpointRoundtrip(t *testing.T) {
	e, numItems, stop := engineNode(t)
	defer stop()
	s, err := New(Config{Node: e, NumItems: numItems})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := get(t, s.Handler(), "/snapshot")
	if w.Code != http.StatusOK {
		t.Fatalf("/snapshot: %d", w.Code)
	}
	var resp SnapshotResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if resp.Epoch != snap.Epoch || resp.NumItems != numItems {
		t.Fatalf("snapshot meta %d/%d, want %d/%d", resp.Epoch, resp.NumItems, snap.Epoch, numItems)
	}
	wantModel, err := snap.Model.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Model, wantModel) {
		t.Fatal("model bytes differ through /snapshot")
	}
	rs, _, err := dataset.DecodeRatings(resp.Ratings)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(snap.Ratings) || rs[0] != snap.Ratings[0] {
		t.Fatalf("ratings: %d decoded vs %d in snapshot", len(rs), len(snap.Ratings))
	}

	// The decoded model must predict bit-identically to the live snapshot.
	m := mf.New(mf.DefaultConfig())
	if err := m.Unmarshal(resp.Model); err != nil {
		t.Fatal(err)
	}
	for u := uint32(0); u < 20; u++ {
		if m.Predict(u, u%7) != snap.Model.Predict(u, u%7) {
			t.Fatalf("user %d: reconstructed model predicts differently", u)
		}
	}
}

// TestStatusWireCounters: the delta-wire counters surface in /status, and
// the reported saving is raw-equivalent minus on-wire bytes, clamped at
// zero (full-wire runs report no negative savings).
func TestStatusWireCounters(t *testing.T) {
	n := &fakeNode{status: &runtime.Status{
		DeltaRefs: 7, DeltaExplicit: 3, Resyncs: 2,
		WireRawBytes: 1000, BytesOnWire: 400,
	}}
	s, err := New(Config{Node: n, NumItems: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, body := get(t, s.Handler(), "/status")
	for k, want := range map[string]float64{
		"delta_refs": 7, "delta_explicit": 3, "resyncs": 2, "wire_saved_bytes": 600,
	} {
		if got, _ := body[k].(float64); got != want {
			t.Fatalf("status %q = %v, want %v", k, body[k], want)
		}
	}

	// Full wire: no raw-equivalent accounting, saving clamps at zero.
	n.status = &runtime.Status{BytesOnWire: 400}
	_, body = get(t, s.Handler(), "/status")
	if got, _ := body["wire_saved_bytes"].(float64); got != 0 {
		t.Fatalf("full-wire saving = %v, want 0", got)
	}
}

// TestRateRejectionTable walks every /rate admission failure: each must
// return 400 with a structured error body, and — the durability contract —
// neither the WAL hook nor the ingest mailbox may see any part of the
// batch.
func TestRateRejectionTable(t *testing.T) {
	for _, tc := range []struct {
		name, body string
	}{
		{"value-below-range", `{"user":1,"item":2,"value":0.4}`},
		{"value-above-range", `{"user":1,"item":2,"value":5.5}`},
		{"value-negative", `{"user":1,"item":2,"value":-3}`},
		// 1e39 overflows float32 at decode time; json surfaces it as an
		// unmarshal error, which must also land as a 400.
		{"value-overflows-float32", `{"user":1,"item":2,"value":1e39}`},
		{"value-wrong-type", `{"user":1,"item":2,"value":"four"}`},
		{"item-outside-catalog", `{"user":1,"item":100,"value":3}`},
		{"user-at-wire-cap", `{"user":16777216,"item":2,"value":3}`},
		{"user-above-wire-cap", `{"user":4294967295,"item":2,"value":3}`},
		{"bad-entry-in-batch", `[{"user":1,"item":2,"value":3},{"user":16777216,"item":2,"value":3}]`},
		{"garbage", `not json`},
		{"user-negative", `{"user":-1,"item":2,"value":3}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := &fakeNode{status: &runtime.Status{}}
			walCalled := false
			s, err := New(Config{Node: n, NumItems: 100, OnRate: func([]dataset.Rating) error {
				walCalled = true
				return nil
			}})
			if err != nil {
				t.Fatal(err)
			}
			w, body := post(t, s.Handler(), "/rate", tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("%s: code %d, want 400 (body %v)", tc.name, w.Code, body)
			}
			if _, ok := body["error"].(string); !ok {
				t.Fatalf("%s: no structured error in %v", tc.name, body)
			}
			if walCalled {
				t.Fatalf("%s: WAL hook ran for a rejected batch", tc.name)
			}
			if len(n.ingested) != 0 {
				t.Fatalf("%s: rejected batch leaked %d ratings into the mailbox", tc.name, len(n.ingested))
			}
		})
	}

	// The largest representable ids below the caps still pass.
	n := &fakeNode{status: &runtime.Status{}}
	s, _ := New(Config{Node: n, NumItems: 100})
	if w, body := post(t, s.Handler(), "/rate", `{"user":16777215,"item":99,"value":5}`); w.Code != http.StatusOK {
		t.Fatalf("max in-range rating rejected: %d %v", w.Code, body)
	}
	if len(n.ingested) != 1 {
		t.Fatalf("in-range rating not ingested (%d)", len(n.ingested))
	}
}

// TestValidateRatingNonFinite exercises the non-finite values JSON cannot
// carry (so the HTTP table above cannot reach them): NaN fails the negated
// range check by failing every comparison, and both infinities fall
// outside the interval.
func TestValidateRatingNonFinite(t *testing.T) {
	for _, v := range []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
	} {
		if err := validateRating(0, Rating{User: 1, Item: 2, Value: v}, 10); err == nil {
			t.Fatalf("value %v admitted", v)
		}
	}
	if err := validateRating(0, Rating{User: 1, Item: 2, Value: 3}, 10); err != nil {
		t.Fatalf("valid rating rejected: %v", err)
	}
	if err := validateRating(0, Rating{User: maxEntityID, Item: 2, Value: 3}, 10); err == nil {
		t.Fatal("user at wire cap admitted")
	}
	if err := validateRating(0, Rating{User: maxEntityID - 1, Item: 2, Value: 3}, 10); err != nil {
		t.Fatalf("user below wire cap rejected: %v", err)
	}
}

// TestRecommendRejectionTable: malformed queries get structured 400s, not
// empty bodies or 500s.
func TestRecommendRejectionTable(t *testing.T) {
	n := &fakeNode{
		status: &runtime.Status{},
		snap: &runtime.Snapshot{
			Epoch: 1, Model: mf.New(mf.DefaultConfig()),
			Ratings: []dataset.Rating{{User: 1, Item: 2, Value: 3}},
		},
	}
	s, err := New(Config{Node: n, NumItems: 10})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for _, tc := range []struct{ name, query string }{
		{"user-missing", "/recommend"},
		{"user-not-integer", "/recommend?user=abc"},
		{"user-negative", "/recommend?user=-1"},
		{"user-fractional", "/recommend?user=1.5"},
		{"user-overflows-uint32", "/recommend?user=4294967296"},
		{"n-zero", "/recommend?user=1&n=0"},
		{"n-negative", "/recommend?user=1&n=-3"},
		{"n-not-integer", "/recommend?user=1&n=ten"},
		{"model-unknown", "/recommend?user=1&model=svd"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w, body := get(t, h, tc.query)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("%s: code %d, want 400 (body %v)", tc.name, w.Code, body)
			}
			if msg, ok := body["error"].(string); !ok || msg == "" {
				t.Fatalf("%s: no structured error in %v", tc.name, body)
			}
		})
	}
	if w, body := get(t, h, "/recommend?user=1&n=3"); w.Code != http.StatusOK {
		t.Fatalf("valid query: %d %v", w.Code, body)
	}
}

// TestMetricsEndpoint: request traffic shows up per endpoint with status
// counts and sane latency percentiles, stage histograms surface when the
// daemon provides them, and the payload decodes into the exported
// MetricsResponse type the load generator scrapes.
func TestMetricsEndpoint(t *testing.T) {
	n := &fakeNode{
		status: &runtime.Status{},
		snap: &runtime.Snapshot{
			Epoch: 1, Model: mf.New(mf.DefaultConfig()),
			Ratings: []dataset.Rating{{User: 1, Item: 2, Value: 3}},
		},
	}
	stages := metrics.NewStageSet()
	stages.Observe("train", 20*time.Millisecond)
	stages.Observe("merge", 5*time.Millisecond)
	s, err := New(Config{Node: n, NumItems: 10, Stages: stages})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for i := 0; i < 10; i++ {
		if w, _ := get(t, h, "/recommend?user=1&n=2"); w.Code != http.StatusOK {
			t.Fatalf("recommend %d failed: %d", i, w.Code)
		}
	}
	post(t, h, "/rate", `{"user":1,"item":2,"value":3}`)
	post(t, h, "/rate", `{"user":1,"item":2,"value":99}`) // one 400

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d %s", w.Code, w.Body.String())
	}
	var resp MetricsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	rec := resp.Endpoints["recommend"]
	if rec.Count != 10 || rec.Statuses[200] != 10 {
		t.Fatalf("recommend metrics %+v, want 10 requests all 200", rec)
	}
	if rec.P50Ms <= 0 || rec.P50Ms > rec.P99Ms {
		t.Fatalf("recommend percentiles not sane: p50=%v p99=%v", rec.P50Ms, rec.P99Ms)
	}
	rate := resp.Endpoints["rate"]
	if rate.Count != 2 || rate.Statuses[200] != 1 || rate.Statuses[400] != 1 {
		t.Fatalf("rate metrics %+v, want one 200 and one 400", rate)
	}
	if rec.Hist == nil || rec.Hist.Count != 10 {
		t.Fatal("raw histogram missing from /metrics (cluster merging needs it)")
	}
	if resp.Stages["train"].Count != 1 || resp.Stages["merge"].Count != 1 {
		t.Fatalf("stage histograms missing: %v", resp.Stages)
	}
	// Quantile of the decoded stage snapshot lands in the observed bucket.
	if q := resp.Stages["train"].Quantile(0.5); q < 18*time.Millisecond || q > 22*time.Millisecond {
		t.Fatalf("train p50 %v, want ~20ms", q)
	}
}
