// Admission control for the serving edge: a token-bucket rate limit and a
// bounded in-flight queue ahead of the /rate durability path, and a
// staleness bound on /recommend. Under a flash crowd the WAL fsync is the
// expensive resource — without a gate, every over-limit request still pays
// a WAL append before the caller learns the node is drowning, and the
// backlog grows without bound. The gate sheds *before* any side effect: a
// 429 response is a promise that the rating left no WAL trace and was
// never ingested, so a shed-then-crash can never resurrect a rating the
// client was told to retry.
package serve

import (
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// AdmissionConfig tunes the serving edge's overload protection. The zero
// value disables every gate (the pre-admission behavior).
type AdmissionConfig struct {
	// RatePerSec is the token-bucket refill rate for POST /rate requests;
	// each admitted request consumes one token. 0 = unlimited.
	RatePerSec float64
	// Burst is the bucket capacity — the largest instantaneous spike
	// admitted at full rate. Defaults to ceil(RatePerSec), min 1.
	Burst int
	// QueueDepth bounds how many /rate requests may be inside the
	// WAL-append + ingest section concurrently; requests beyond it are
	// shed 429 instead of queuing on the WAL lock. 0 = unbounded.
	QueueDepth int
	// MaxSnapshotAge sheds GET /recommend with 503 when the served
	// snapshot has not advanced for longer than this — a node whose
	// training loop stalled (partitioned, draining, wedged) serves
	// increasingly stale rankings, and past the bound a client is better
	// off retrying another replica. 0 = never shed.
	MaxSnapshotAge time.Duration
}

// Enabled reports whether any gate is configured.
func (c AdmissionConfig) Enabled() bool {
	return c.RatePerSec > 0 || c.QueueDepth > 0 || c.MaxSnapshotAge > 0
}

// Shed reasons, surfaced in the structured 429/503 body and counted in
// /metrics.
const (
	ShedRateLimited = "rate_limited"
	ShedQueueFull   = "queue_full"
	ShedStale       = "stale_snapshot"
)

// admission is the runtime state of the gates. All methods are safe for
// concurrent use; the token bucket and queue share one short mutex (two
// arithmetic ops per request), counters are atomics read by /metrics.
type admission struct {
	cfg AdmissionConfig
	now func() time.Time // injectable clock for tests

	mu       sync.Mutex
	tokens   float64
	lastFill time.Time
	inflight int
	queueHWM int

	// Snapshot staleness tracking: the epoch last seen on /recommend and
	// when it first appeared.
	staleEpoch int
	staleSeen  time.Time

	accepted  atomic.Uint64
	shedRate  atomic.Uint64
	shedQueue atomic.Uint64
	shedStale atomic.Uint64
}

func newAdmission(cfg AdmissionConfig, now func() time.Time) *admission {
	if now == nil {
		now = time.Now
	}
	if cfg.RatePerSec > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(math.Ceil(cfg.RatePerSec))
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &admission{
		cfg:        cfg,
		now:        now,
		tokens:     float64(cfg.Burst), // start full: a fresh node admits its burst
		lastFill:   now(),
		staleEpoch: -1,
	}
}

// admitRate runs the /rate gates in cost order: the token bucket first
// (two float ops), then the queue slot. On admission it returns a release
// func the handler must call once the WAL+ingest section is done; on shed
// it returns a nil release with the reason and a Retry-After hint.
func (a *admission) admitRate() (release func(), reason string, retryAfter time.Duration) {
	if a == nil {
		return func() {}, "", 0
	}
	a.mu.Lock()
	if a.cfg.RatePerSec > 0 {
		now := a.now()
		a.tokens += now.Sub(a.lastFill).Seconds() * a.cfg.RatePerSec
		if max := float64(a.cfg.Burst); a.tokens > max {
			a.tokens = max
		}
		a.lastFill = now
		if a.tokens < 1 {
			deficit := 1 - a.tokens
			a.mu.Unlock()
			a.shedRate.Add(1)
			return nil, ShedRateLimited, time.Duration(deficit / a.cfg.RatePerSec * float64(time.Second))
		}
		a.tokens--
	}
	if a.cfg.QueueDepth > 0 && a.inflight >= a.cfg.QueueDepth {
		// The token is deliberately not refunded: a queue-full shed still
		// consumed serving capacity, and refunding would let a stuck WAL
		// admit an unbounded retry storm at full rate.
		a.mu.Unlock()
		a.shedQueue.Add(1)
		return nil, ShedQueueFull, a.queueRetryHint()
	}
	a.inflight++
	if a.inflight > a.queueHWM {
		a.queueHWM = a.inflight
	}
	a.mu.Unlock()
	return func() {
		a.mu.Lock()
		a.inflight--
		a.mu.Unlock()
	}, "", 0
}

// queueRetryHint is the Retry-After for a queue-full shed: one token
// period when rate-limited (the queue drains at WAL speed, which the
// bucket approximates), else a flat second.
func (a *admission) queueRetryHint() time.Duration {
	if a.cfg.RatePerSec > 0 {
		return time.Duration(float64(time.Second) / a.cfg.RatePerSec)
	}
	return time.Second
}

// noteAccepted counts one fully admitted-and-durable rating request.
func (a *admission) noteAccepted() {
	if a != nil {
		a.accepted.Add(1)
	}
}

// snapshotAge tracks epoch advancement and returns how long the given
// epoch has been the served one. The clock starts when an epoch is first
// observed here, so a node that just booted is "fresh" until its first
// bound expires without training progress.
func (a *admission) snapshotAge(epoch int) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	if epoch != a.staleEpoch {
		a.staleEpoch = epoch
		a.staleSeen = now
	}
	return now.Sub(a.staleSeen)
}

// shedRecommend reports whether /recommend must shed the request because
// the snapshot is stale past the configured bound, with the retry hint.
func (a *admission) shedRecommend(epoch int) (bool, time.Duration) {
	if a == nil || a.cfg.MaxSnapshotAge <= 0 {
		return false, 0
	}
	if a.snapshotAge(epoch) <= a.cfg.MaxSnapshotAge {
		return false, 0
	}
	a.shedStale.Add(1)
	// Half the bound is the soonest a recovered trainer plausibly
	// publishes; clamp to at least a second so clients don't hammer.
	hint := a.cfg.MaxSnapshotAge / 2
	if hint < time.Second {
		hint = time.Second
	}
	return true, hint
}

// AdmissionMetrics is the /metrics view of the gates.
type AdmissionMetrics struct {
	// Accepted counts /rate requests that passed every gate and were made
	// durable; Shed* count requests turned away with no WAL write.
	Accepted        uint64 `json:"accepted"`
	ShedRateLimited uint64 `json:"shed_rate_limited"`
	ShedQueueFull   uint64 `json:"shed_queue_full"`
	ShedStale       uint64 `json:"shed_stale"`
	// QueueDepthHWM is the in-flight /rate high-water mark since boot.
	QueueDepthHWM int `json:"queue_depth_hwm"`
	// Echo of the configured knobs, so a scrape is self-describing.
	RatePerSec   float64 `json:"rate_per_sec"`
	Burst        int     `json:"burst"`
	QueueDepth   int     `json:"queue_depth"`
	MaxSnapAgeMs int64   `json:"max_snapshot_age_ms"`
}

func (a *admission) metrics() *AdmissionMetrics {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	hwm := a.queueHWM
	a.mu.Unlock()
	return &AdmissionMetrics{
		Accepted:        a.accepted.Load(),
		ShedRateLimited: a.shedRate.Load(),
		ShedQueueFull:   a.shedQueue.Load(),
		ShedStale:       a.shedStale.Load(),
		QueueDepthHWM:   hwm,
		RatePerSec:      a.cfg.RatePerSec,
		Burst:           a.cfg.Burst,
		QueueDepth:      a.cfg.QueueDepth,
		MaxSnapAgeMs:    a.cfg.MaxSnapshotAge.Milliseconds(),
	}
}

// writeShed emits the structured shed response: a Retry-After header
// (whole seconds, rounded up, minimum 1 — the header's resolution) plus a
// machine-readable body carrying the reason and a millisecond-precision
// hint for clients that can pace tighter than a second.
func writeShed(w http.ResponseWriter, status int, reason string, retryAfter time.Duration, msg string) {
	secs := int64(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, status, map[string]any{
		"error":          msg,
		"reason":         reason,
		"retry_after_ms": retryAfter.Milliseconds(),
	})
}
