package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkRatings(n int, users, items uint32, seed int64) []Rating {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Rating, 0, n)
	seen := make(map[uint64]bool)
	for len(out) < n {
		r := Rating{
			User:  uint32(rng.Intn(int(users))),
			Item:  uint32(rng.Intn(int(items))),
			Value: float32(rng.Intn(10)+1) / 2,
		}
		if seen[r.Key()] {
			continue
		}
		seen[r.Key()] = true
		out = append(out, r)
	}
	return out
}

func TestNewDerivesBounds(t *testing.T) {
	rs := []Rating{{User: 3, Item: 7, Value: 4}, {User: 1, Item: 9, Value: 2}}
	d := New(rs)
	if d.NumUsers != 4 || d.NumItems != 10 {
		t.Fatalf("bounds: got %d users %d items", d.NumUsers, d.NumItems)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestNewEmpty(t *testing.T) {
	d := New(nil)
	if d.NumUsers != 0 || d.NumItems != 0 || d.Len() != 0 {
		t.Fatalf("empty dataset has nonzero shape: %+v", d)
	}
	if d.Mean() != 0 {
		t.Fatalf("empty mean = %v", d.Mean())
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	d := &Dataset{Ratings: []Rating{{User: 5, Item: 0, Value: 3}}, NumUsers: 3, NumItems: 3}
	if err := d.Validate(); err == nil {
		t.Fatal("expected out-of-range user error")
	}
	d = &Dataset{Ratings: []Rating{{User: 0, Item: 5, Value: 3}}, NumUsers: 3, NumItems: 3}
	if err := d.Validate(); err == nil {
		t.Fatal("expected out-of-range item error")
	}
	nan := float32(0)
	nan = nan / nan
	d = &Dataset{Ratings: []Rating{{User: 0, Item: 0, Value: nan}}, NumUsers: 3, NumItems: 3}
	if err := d.Validate(); err == nil {
		t.Fatal("expected NaN error")
	}
}

func TestSplitFractions(t *testing.T) {
	d := New(mkRatings(1000, 40, 200, 1))
	rng := rand.New(rand.NewSource(2))
	tr, te := d.Split(0.7, rng)
	if tr.Len()+te.Len() != d.Len() {
		t.Fatalf("split loses ratings: %d + %d != %d", tr.Len(), te.Len(), d.Len())
	}
	if tr.Len() != 700 {
		t.Fatalf("train fraction: got %d want 700", tr.Len())
	}
	if tr.NumUsers != d.NumUsers || te.NumItems != d.NumItems {
		t.Fatal("split must preserve id-space bounds")
	}
}

func TestSplitPreservesMultiset(t *testing.T) {
	d := New(mkRatings(500, 20, 80, 3))
	tr, te := d.Split(0.5, rand.New(rand.NewSource(4)))
	seen := make(map[uint64]float32, d.Len())
	for _, r := range d.Ratings {
		seen[r.Key()] = r.Value
	}
	for _, half := range [][]Rating{tr.Ratings, te.Ratings} {
		for _, r := range half {
			v, ok := seen[r.Key()]
			if !ok || v != r.Value {
				t.Fatalf("rating %+v not in original", r)
			}
			delete(seen, r.Key())
		}
	}
	if len(seen) != 0 {
		t.Fatalf("%d ratings missing from the split", len(seen))
	}
}

func TestSplitPerUserBothHalves(t *testing.T) {
	d := New(mkRatings(800, 25, 100, 5))
	tr, te := d.SplitPerUser(0.7, rand.New(rand.NewSource(6)))
	if tr.Len()+te.Len() != d.Len() {
		t.Fatalf("per-user split loses ratings")
	}
	trainUsers := make(map[uint32]bool)
	for _, r := range tr.Ratings {
		trainUsers[r.User] = true
	}
	testUsers := make(map[uint32]bool)
	for _, r := range te.Ratings {
		testUsers[r.User] = true
	}
	for _, u := range d.Users() {
		// every user with >=2 ratings must appear in both halves
		count := 0
		for _, r := range d.Ratings {
			if r.User == u {
				count++
			}
		}
		if count >= 2 && (!trainUsers[u] || !testUsers[u]) {
			t.Fatalf("user %d (%d ratings) missing from a half", u, count)
		}
	}
}

func TestPartitionPerUser(t *testing.T) {
	d := New(mkRatings(300, 15, 60, 7))
	parts, err := d.PartitionPerUser()
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != d.NumUsers {
		t.Fatalf("got %d parts want %d", len(parts), d.NumUsers)
	}
	total := 0
	for u, p := range parts {
		total += len(p)
		for _, r := range p {
			if int(r.User) != u {
				t.Fatalf("rating of user %d in partition %d", r.User, u)
			}
		}
	}
	if total != d.Len() {
		t.Fatalf("partitions cover %d of %d ratings", total, d.Len())
	}
}

func TestPartitionPerUserEmpty(t *testing.T) {
	if _, err := New(nil).PartitionPerUser(); err != ErrNoRatings {
		t.Fatalf("want ErrNoRatings, got %v", err)
	}
}

func TestPartitionUsersAcross(t *testing.T) {
	d := New(mkRatings(600, 30, 90, 8))
	const n = 7
	parts, err := d.PartitionUsersAcross(n, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != n {
		t.Fatalf("got %d parts", len(parts))
	}
	// Users must never be split across nodes.
	owner := make(map[uint32]int)
	total := 0
	for node, p := range parts {
		total += len(p)
		for _, r := range p {
			if prev, ok := owner[r.User]; ok && prev != node {
				t.Fatalf("user %d split across nodes %d and %d", r.User, prev, node)
			}
			owner[r.User] = node
		}
	}
	if total != d.Len() {
		t.Fatalf("partitions cover %d of %d", total, d.Len())
	}
}

func TestPartitionUsersAcrossBadCount(t *testing.T) {
	d := New(mkRatings(10, 5, 5, 1))
	if _, err := d.PartitionUsersAcross(0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestPartitionDeterministicInSeed(t *testing.T) {
	d := New(mkRatings(400, 20, 50, 10))
	a, _ := d.PartitionUsersAcross(5, rand.New(rand.NewSource(11)))
	b, _ := d.PartitionUsersAcross(5, rand.New(rand.NewSource(11)))
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("partition %d differs under equal seeds", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("partition %d entry %d differs", i, j)
			}
		}
	}
}

func TestUsersItemsSorted(t *testing.T) {
	d := New(mkRatings(200, 12, 40, 12))
	us := d.Users()
	for i := 1; i < len(us); i++ {
		if us[i-1] >= us[i] {
			t.Fatal("Users not strictly sorted")
		}
	}
	is := d.Items()
	for i := 1; i < len(is); i++ {
		if is[i-1] >= is[i] {
			t.Fatal("Items not strictly sorted")
		}
	}
}

func TestRatingKeyUnique(t *testing.T) {
	f := func(u1, i1, u2, i2 uint32) bool {
		k1 := Rating{User: u1, Item: i1}.Key()
		k2 := Rating{User: u2, Item: i2}.Key()
		return (k1 == k2) == (u1 == u2 && i1 == i2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	d := New([]Rating{{0, 0, 1}, {0, 1, 2}, {1, 0, 3}})
	if got := d.Mean(); got != 2 {
		t.Fatalf("mean = %v want 2", got)
	}
}
