package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStoreDedup(t *testing.T) {
	s := NewStore([]Rating{{1, 1, 3}, {1, 2, 4}})
	added := s.Append([]Rating{{1, 1, 3}, {2, 2, 5}})
	if added != 1 {
		t.Fatalf("added = %d want 1", added)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d want 3", s.Len())
	}
	if s.Duplicates() != 1 {
		t.Fatalf("duplicates = %d want 1", s.Duplicates())
	}
}

func TestStoreDuplicateUpdatesValue(t *testing.T) {
	s := NewStore([]Rating{{1, 1, 3}})
	s.Append([]Rating{{1, 1, 5}})
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	if got := s.Ratings()[0].Value; got != 5 {
		t.Fatalf("newest opinion must win: got %v", got)
	}
}

func TestStoreContains(t *testing.T) {
	s := NewStore([]Rating{{4, 9, 1}})
	if !s.Contains(4, 9) {
		t.Fatal("missing stored rating")
	}
	if s.Contains(9, 4) {
		t.Fatal("contains swapped pair")
	}
}

func TestStoreSampleSizes(t *testing.T) {
	rs := mkRatings(100, 10, 50, 1)
	s := NewStore(rs)
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 10, 99, 100, 500} {
		got := s.Sample(n, rng)
		want := n
		if want > 100 {
			want = 100
		}
		if len(got) != want {
			t.Fatalf("sample(%d) returned %d", n, len(got))
		}
	}
}

func TestStoreSampleDistinctAndSubset(t *testing.T) {
	rs := mkRatings(200, 20, 60, 3)
	s := NewStore(rs)
	in := make(map[uint64]bool, len(rs))
	for _, r := range rs {
		in[r.Key()] = true
	}
	rng := rand.New(rand.NewSource(4))
	sample := s.Sample(50, rng)
	seen := make(map[uint64]bool)
	for _, r := range sample {
		if !in[r.Key()] {
			t.Fatalf("sampled rating %+v not in store", r)
		}
		if seen[r.Key()] {
			t.Fatalf("duplicate in one sample: %+v", r)
		}
		seen[r.Key()] = true
	}
}

// TestStoreStatelessSampling checks the paper's §III-E property: sampling
// keeps no state, so across epochs the same point can recur.
func TestStoreStatelessSampling(t *testing.T) {
	rs := mkRatings(30, 5, 20, 5)
	s := NewStore(rs)
	rng := rand.New(rand.NewSource(6))
	counts := make(map[uint64]int)
	for epoch := 0; epoch < 50; epoch++ {
		for _, r := range s.Sample(10, rng) {
			counts[r.Key()]++
		}
	}
	repeats := 0
	for _, c := range counts {
		if c > 1 {
			repeats++
		}
	}
	if repeats == 0 {
		t.Fatal("stateless sampling should repeat points across epochs")
	}
}

func TestStoreAppendIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rs := mkRatings(50, 8, 30, seed%1000)
		s := NewStore(rs)
		before := s.Len()
		s.Append(rs) // appending the same data adds nothing
		return s.Len() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreBytes(t *testing.T) {
	s := NewStore(mkRatings(17, 5, 10, 7))
	if s.Bytes() != 17*EncodedSize {
		t.Fatalf("bytes = %d", s.Bytes())
	}
}

func TestStoreSnapshotIndependent(t *testing.T) {
	s := NewStore([]Rating{{1, 1, 3}})
	snap := s.Snapshot()
	s.Append([]Rating{{2, 2, 4}})
	if len(snap) != 1 {
		t.Fatal("snapshot grew with the store")
	}
	snap[0].Value = 99
	if s.Ratings()[0].Value == 99 {
		t.Fatal("snapshot aliases store memory")
	}
}

func TestStoreInsertionOrderStable(t *testing.T) {
	a := []Rating{{3, 3, 1}, {1, 1, 2}, {2, 2, 3}}
	s := NewStore(a)
	s.Append([]Rating{{1, 1, 9}, {4, 4, 4}})
	got := s.Ratings()
	wantOrder := []uint32{3, 1, 2, 4}
	for i, u := range wantOrder {
		if got[i].User != u {
			t.Fatalf("order[%d] = user %d, want %d", i, got[i].User, u)
		}
	}
}
