// Package dataset provides the rating-triplet data model used throughout
// REX: datasets, train/test splitting, node partitioning (one user per node
// or multiple users per node), and the deduplicating raw-data store that
// each enclave keeps in protected memory (paper §III-B, Algorithm 2 line 16).
package dataset

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Rating is one user-item interaction: the triplet <user, item, value>
// described in paper §II-A. Values are star ratings in [0.5, 5.0] in steps
// of 0.5 for MovieLens-shaped data, but the type imposes no range.
type Rating struct {
	User  uint32
	Item  uint32
	Value float32
}

// Key returns a unique 64-bit identity for the (user, item) pair. Two
// ratings with equal keys describe the same interaction; later values
// supersede earlier ones on append.
func (r Rating) Key() uint64 { return uint64(r.User)<<32 | uint64(r.Item) }

// EncodedSize is the wire size of one rating triplet: two uint32 ids plus a
// float32 value. This is the unit the paper contrasts against model
// parameters when arguing raw data is small (§IV-B).
const EncodedSize = 12

// Dataset is an immutable collection of ratings together with the id-space
// bounds, mirroring the user-item matrix A in paper §II-A.
type Dataset struct {
	Ratings  []Rating
	NumUsers int // user ids are < NumUsers
	NumItems int // item ids are < NumItems
}

// New builds a Dataset from ratings, deriving NumUsers/NumItems from the
// maximum ids present. The ratings slice is retained, not copied.
func New(ratings []Rating) *Dataset {
	var maxU, maxI uint32
	for _, r := range ratings {
		if r.User > maxU {
			maxU = r.User
		}
		if r.Item > maxI {
			maxI = r.Item
		}
	}
	n := 0
	if len(ratings) > 0 {
		n = int(maxU) + 1
	}
	m := 0
	if len(ratings) > 0 {
		m = int(maxI) + 1
	}
	return &Dataset{Ratings: ratings, NumUsers: n, NumItems: m}
}

// Len returns the number of ratings.
func (d *Dataset) Len() int { return len(d.Ratings) }

// Mean returns the global mean rating, the natural zero-knowledge predictor
// used to initialize bias terms.
func (d *Dataset) Mean() float64 {
	if len(d.Ratings) == 0 {
		return 0
	}
	var s float64
	for _, r := range d.Ratings {
		s += float64(r.Value)
	}
	return s / float64(len(d.Ratings))
}

// Validate checks internal consistency: ids within bounds and no NaN values.
func (d *Dataset) Validate() error {
	for i, r := range d.Ratings {
		if int(r.User) >= d.NumUsers {
			return fmt.Errorf("dataset: rating %d user %d out of range %d", i, r.User, d.NumUsers)
		}
		if int(r.Item) >= d.NumItems {
			return fmt.Errorf("dataset: rating %d item %d out of range %d", i, r.Item, d.NumItems)
		}
		if r.Value != r.Value { // NaN
			return fmt.Errorf("dataset: rating %d has NaN value", i)
		}
	}
	return nil
}

// Split partitions the ratings into train and test sets with the given
// train fraction (the paper uses 70/30, §IV-A3a). The split is performed on
// a shuffled copy so both halves are unbiased; the receiver is unmodified.
func (d *Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test *Dataset) {
	if trainFrac < 0 || trainFrac > 1 {
		panic("dataset: trainFrac must be in [0,1]")
	}
	idx := rng.Perm(len(d.Ratings))
	cut := int(float64(len(d.Ratings)) * trainFrac)
	tr := make([]Rating, 0, cut)
	te := make([]Rating, 0, len(d.Ratings)-cut)
	for pos, i := range idx {
		if pos < cut {
			tr = append(tr, d.Ratings[i])
		} else {
			te = append(te, d.Ratings[i])
		}
	}
	train = &Dataset{Ratings: tr, NumUsers: d.NumUsers, NumItems: d.NumItems}
	test = &Dataset{Ratings: te, NumUsers: d.NumUsers, NumItems: d.NumItems}
	return train, test
}

// SplitPerUser splits each user's ratings individually with the given train
// fraction, guaranteeing every user with >=2 ratings appears in both halves.
// This matches the decentralized setting where each node must hold local
// test data (Algorithm 2 line 21).
func (d *Dataset) SplitPerUser(trainFrac float64, rng *rand.Rand) (train, test *Dataset) {
	byUser := make(map[uint32][]Rating)
	for _, r := range d.Ratings {
		byUser[r.User] = append(byUser[r.User], r)
	}
	users := make([]uint32, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	var tr, te []Rating
	for _, u := range users {
		rs := byUser[u]
		rng.Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
		cut := int(float64(len(rs)) * trainFrac)
		if cut == len(rs) && len(rs) > 1 {
			cut = len(rs) - 1 // keep at least one test rating
		}
		if cut == 0 && len(rs) > 1 {
			cut = 1 // keep at least one train rating
		}
		tr = append(tr, rs[:cut]...)
		te = append(te, rs[cut:]...)
	}
	train = &Dataset{Ratings: tr, NumUsers: d.NumUsers, NumItems: d.NumItems}
	test = &Dataset{Ratings: te, NumUsers: d.NumUsers, NumItems: d.NumItems}
	return train, test
}

// ErrNoRatings is returned by partitioners handed an empty dataset.
var ErrNoRatings = errors.New("dataset: no ratings to partition")

// PartitionPerUser assigns every user to its own node: node i receives
// exactly the ratings of user i (paper §IV-A5, "one node, one user"). The
// returned slice has NumUsers entries; users with no ratings get an empty
// slice.
func (d *Dataset) PartitionPerUser() ([][]Rating, error) {
	if len(d.Ratings) == 0 {
		return nil, ErrNoRatings
	}
	parts := make([][]Rating, d.NumUsers)
	for _, r := range d.Ratings {
		parts[r.User] = append(parts[r.User], r)
	}
	return parts, nil
}

// PartitionUsersAcross distributes whole users round-robin across n nodes
// (paper §IV-B-b: 610 users over 50 nodes, each node holding 12 or 13
// users). Users are dealt in shuffled order so node loads are balanced in
// expectation; a user's ratings are never split across nodes.
func (d *Dataset) PartitionUsersAcross(n int, rng *rand.Rand) ([][]Rating, error) {
	if len(d.Ratings) == 0 {
		return nil, ErrNoRatings
	}
	if n <= 0 {
		return nil, fmt.Errorf("dataset: invalid node count %d", n)
	}
	byUser := make(map[uint32][]Rating)
	for _, r := range d.Ratings {
		byUser[r.User] = append(byUser[r.User], r)
	}
	users := make([]uint32, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	rng.Shuffle(len(users), func(i, j int) { users[i], users[j] = users[j], users[i] })
	parts := make([][]Rating, n)
	for i, u := range users {
		node := i % n
		parts[node] = append(parts[node], byUser[u]...)
	}
	return parts, nil
}

// Users returns the sorted distinct user ids present in the dataset.
func (d *Dataset) Users() []uint32 {
	seen := make(map[uint32]struct{})
	for _, r := range d.Ratings {
		seen[r.User] = struct{}{}
	}
	out := make([]uint32, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Items returns the sorted distinct item ids present in the dataset.
func (d *Dataset) Items() []uint32 {
	seen := make(map[uint32]struct{})
	for _, r := range d.Ratings {
		seen[r.Item] = struct{}{}
	}
	out := make([]uint32, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
