package dataset

import "math/rand"

// Store is the raw-data store a REX enclave keeps in protected memory. It
// deduplicates on (user, item): the paper's sampling is stateless, so a node
// may receive the same data point more than once, and Algorithm 2 line 16
// appends only non-duplicate items. The Store preserves insertion order of
// first occurrence so training iteration is deterministic under a fixed rng.
type Store struct {
	ratings []Rating
	index   map[uint64]int // Key() -> position in ratings
	// appended counts total Append attempts; appended-Len() is the number
	// of duplicates rejected, a quantity surfaced in metrics.
	appended int
}

// NewStore creates a store seeded with the node's initial local ratings.
// Duplicate (user,item) pairs in the seed keep the last value.
func NewStore(initial []Rating) *Store {
	s := &Store{index: make(map[uint64]int, len(initial))}
	s.Append(initial)
	return s
}

// Append merges new ratings into the store, skipping duplicates. A
// duplicate with a different value updates the stored value in place (the
// newest opinion wins); it still counts as a duplicate for accounting. It
// returns the number of genuinely new data points added.
func (s *Store) Append(rs []Rating) int {
	added := 0
	for _, r := range rs {
		s.appended++
		if pos, ok := s.index[r.Key()]; ok {
			s.ratings[pos].Value = r.Value
			continue
		}
		s.index[r.Key()] = len(s.ratings)
		s.ratings = append(s.ratings, r)
		added++
	}
	return added
}

// Len returns the number of distinct data points held.
func (s *Store) Len() int { return len(s.ratings) }

// Duplicates returns how many appended points were rejected as duplicates.
func (s *Store) Duplicates() int { return s.appended - len(s.ratings) }

// Ratings exposes the backing slice for training loops. Callers must treat
// it as read-only; it is invalidated by the next Append.
func (s *Store) Ratings() []Rating { return s.ratings }

// Contains reports whether the (user, item) interaction is present.
func (s *Store) Contains(user, item uint32) bool {
	_, ok := s.index[Rating{User: user, Item: item}.Key()]
	return ok
}

// Sample draws n data points uniformly at random *with replacement is not
// used*: it picks n distinct positions when n < Len, else returns a copy of
// everything. This implements the paper's stateless sampling (§III-E): the
// sampler keeps no memory of what was previously shared, so across epochs
// the same point may be re-sent.
func (s *Store) Sample(n int, rng *rand.Rand) []Rating {
	if n >= len(s.ratings) {
		out := make([]Rating, len(s.ratings))
		copy(out, s.ratings)
		return out
	}
	idx := rng.Perm(len(s.ratings))[:n]
	out := make([]Rating, n)
	for i, j := range idx {
		out[i] = s.ratings[j]
	}
	return out
}

// Bytes returns the encoded size of the whole store, used for the enclave
// memory accounting in the SGX experiments (Fig 6/7 (b)).
func (s *Store) Bytes() int { return len(s.ratings) * EncodedSize }

// Snapshot returns a copy of the current contents, safe to retain.
func (s *Store) Snapshot() []Rating {
	out := make([]Rating, len(s.ratings))
	copy(out, s.ratings)
	return out
}
