package dataset

import "math/rand"

// keyIndex is a compact open-addressing hash from a Rating.Key() to its
// position in the ratings slice: linear probing, power-of-two capacity,
// ~3/4 max load, no deletion. Positions are stored as pos+1 so the zero
// value marks an empty cell. At ~16 bytes per entry (versus ~50 for a
// built-in map) the dedup index stops dominating a node's store memory at
// 100k-node scale.
type keyIndex struct {
	keys []uint64
	pos  []int32 // position+1; 0 = empty
	n    int
}

// mix64 is the splitmix64 finalizer — a full-avalanche 64-bit hash, so
// (user<<32|item) keys with few distinct low bits still spread evenly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (x *keyIndex) get(key uint64) (int32, bool) {
	if x.n == 0 {
		return 0, false
	}
	mask := uint32(len(x.keys) - 1)
	i := uint32(mix64(key)) & mask
	for {
		p := x.pos[i]
		if p == 0 {
			return 0, false
		}
		if x.keys[i] == key {
			return p - 1, true
		}
		i = (i + 1) & mask
	}
}

func (x *keyIndex) put(key uint64, pos int32) {
	if 4*(x.n+1) > 3*len(x.keys) {
		x.grow(2 * len(x.keys))
	}
	mask := uint32(len(x.keys) - 1)
	i := uint32(mix64(key)) & mask
	for x.pos[i] != 0 {
		i = (i + 1) & mask
	}
	x.keys[i] = key
	x.pos[i] = pos + 1
	x.n++
}

func (x *keyIndex) grow(ncap int) {
	if ncap < 16 {
		ncap = 16
	}
	keys, pos := x.keys, x.pos
	x.keys = make([]uint64, ncap)
	x.pos = make([]int32, ncap)
	x.n = 0
	for i, p := range pos {
		if p != 0 {
			x.put(keys[i], p-1)
		}
	}
}

// Store is the raw-data store a REX enclave keeps in protected memory. It
// deduplicates on (user, item): the paper's sampling is stateless, so a node
// may receive the same data point more than once, and Algorithm 2 line 16
// appends only non-duplicate items. The Store preserves insertion order of
// first occurrence so training iteration is deterministic under a fixed rng.
type Store struct {
	ratings []Rating
	index   keyIndex // Key() -> position in ratings
	// appended counts total Append attempts; appended-Len() is the number
	// of duplicates rejected, a quantity surfaced in metrics.
	appended int
}

// NewStore creates a store seeded with the node's initial local ratings.
// Duplicate (user,item) pairs in the seed keep the last value.
func NewStore(initial []Rating) *Store {
	s := &Store{}
	s.Append(initial)
	return s
}

// Append merges new ratings into the store, skipping duplicates. A
// duplicate with a different value updates the stored value in place (the
// newest opinion wins); it still counts as a duplicate for accounting. It
// returns the number of genuinely new data points added.
func (s *Store) Append(rs []Rating) int {
	added := 0
	for _, r := range rs {
		s.appended++
		if pos, ok := s.index.get(r.Key()); ok {
			s.ratings[pos].Value = r.Value
			continue
		}
		s.index.put(r.Key(), int32(len(s.ratings)))
		s.ratings = append(s.ratings, r)
		added++
	}
	return added
}

// Len returns the number of distinct data points held.
func (s *Store) Len() int { return len(s.ratings) }

// Duplicates returns how many appended points were rejected as duplicates.
func (s *Store) Duplicates() int { return s.appended - len(s.ratings) }

// Ratings exposes the backing slice for training loops. Callers must treat
// it as read-only; it is invalidated by the next Append.
func (s *Store) Ratings() []Rating { return s.ratings }

// Contains reports whether the (user, item) interaction is present.
func (s *Store) Contains(user, item uint32) bool {
	_, ok := s.index.get(Rating{User: user, Item: item}.Key())
	return ok
}

// Sample draws n data points uniformly at random *with replacement is not
// used*: it picks n distinct positions when n < Len, else returns a copy of
// everything. This implements the paper's stateless sampling (§III-E): the
// sampler keeps no memory of what was previously shared, so across epochs
// the same point may be re-sent.
func (s *Store) Sample(n int, rng *rand.Rand) []Rating {
	var perm []int
	return s.SampleAppend(nil, n, rng, &perm)
}

// SampleAppend is Sample with caller-owned buffers: the drawn points are
// appended to dst and *perm is reused as permutation scratch. The rng draw
// sequence is identical to Sample's (it replays rand.Perm's swaps into the
// scratch buffer), so pooled and unpooled sampling produce bit-identical
// trajectories; a node sampling every epoch stops allocating once its
// buffers reach steady-state capacity.
func (s *Store) SampleAppend(dst []Rating, n int, rng *rand.Rand, perm *[]int) []Rating {
	if n >= len(s.ratings) {
		return append(dst, s.ratings...)
	}
	// rand.Perm(len) inlined over the reusable scratch: the loop below is
	// math/rand's exactly — including the wasted Intn(1) draw at i=0 that
	// Perm keeps for Go 1 stream compatibility — so the rng advances
	// identically, with no per-call permutation allocation. Every cell is
	// written before it is read, so the scratch needs no clearing.
	p := *perm
	if need := len(s.ratings); cap(p) < need {
		p = make([]int, need)
	} else {
		p = p[:need]
	}
	for i := 0; i < len(p); i++ {
		j := rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	*perm = p
	for _, j := range p[:n] {
		dst = append(dst, s.ratings[j])
	}
	return dst
}

// Bytes returns the encoded size of the whole store, used for the enclave
// memory accounting in the SGX experiments (Fig 6/7 (b)).
func (s *Store) Bytes() int { return len(s.ratings) * EncodedSize }

// Snapshot returns a copy of the current contents, safe to retain.
func (s *Store) Snapshot() []Rating {
	out := make([]Rating, len(s.ratings))
	copy(out, s.ratings)
	return out
}
