package dataset

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeRatings serializes ratings into the compact 12-byte-per-triplet wire
// format exchanged between REX nodes: little-endian uint32 user, uint32
// item, float32 value, preceded by a uint32 count.
func EncodeRatings(rs []Rating) []byte {
	return EncodeRatingsAppend(make([]byte, 0, 4+len(rs)*EncodedSize), rs)
}

// EncodeRatingsAppend appends the EncodeRatings serialization to dst and
// returns the extended slice, letting share-path callers reuse one buffer
// across epochs instead of allocating per payload.
func EncodeRatingsAppend(dst []byte, rs []Rating) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, 4+len(rs)*EncodedSize)...)
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(rs)))
	off += 4
	for _, r := range rs {
		binary.LittleEndian.PutUint32(dst[off:], r.User)
		binary.LittleEndian.PutUint32(dst[off+4:], r.Item)
		binary.LittleEndian.PutUint32(dst[off+8:], math.Float32bits(r.Value))
		off += EncodedSize
	}
	return dst
}

// DecodeRatings parses the format produced by EncodeRatings and returns the
// ratings along with the number of bytes consumed.
func DecodeRatings(buf []byte) ([]Rating, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("dataset: short buffer %d", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	need := 4 + n*EncodedSize
	if len(buf) < need {
		return nil, 0, fmt.Errorf("dataset: buffer %d too short for %d ratings", len(buf), n)
	}
	rs := make([]Rating, n)
	off := 4
	for i := 0; i < n; i++ {
		rs[i] = Rating{
			User:  binary.LittleEndian.Uint32(buf[off:]),
			Item:  binary.LittleEndian.Uint32(buf[off+4:]),
			Value: math.Float32frombits(binary.LittleEndian.Uint32(buf[off+8:])),
		}
		off += EncodedSize
	}
	return rs, need, nil
}
