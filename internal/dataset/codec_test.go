package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCodecRoundtrip(t *testing.T) {
	rs := mkRatings(137, 12, 77, 1)
	buf := EncodeRatings(rs)
	if len(buf) != 4+len(rs)*EncodedSize {
		t.Fatalf("encoded size %d", len(buf))
	}
	got, n, err := DecodeRatings(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if len(got) != len(rs) {
		t.Fatalf("decoded %d of %d", len(got), len(rs))
	}
	for i := range rs {
		if got[i] != rs[i] {
			t.Fatalf("rating %d: %+v != %+v", i, got[i], rs[i])
		}
	}
}

func TestCodecRoundtripProperty(t *testing.T) {
	f := func(users, items []uint32, values []float32) bool {
		n := len(users)
		if len(items) < n {
			n = len(items)
		}
		if len(values) < n {
			n = len(values)
		}
		rs := make([]Rating, n)
		for i := 0; i < n; i++ {
			v := values[i]
			if math.IsNaN(float64(v)) {
				v = 0 // NaN != NaN breaks equality; value fidelity is bit-level anyway
			}
			rs[i] = Rating{User: users[i], Item: items[i], Value: v}
		}
		got, _, err := DecodeRatings(EncodeRatings(rs))
		if err != nil || len(got) != n {
			return false
		}
		for i := range rs {
			if got[i] != rs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecEmpty(t *testing.T) {
	got, n, err := DecodeRatings(EncodeRatings(nil))
	if err != nil || len(got) != 0 || n != 4 {
		t.Fatalf("empty roundtrip: %v %d %v", got, n, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeRatings([]byte{1, 2}); err == nil {
		t.Fatal("short header accepted")
	}
	buf := EncodeRatings(mkRatings(3, 4, 4, 2))
	if _, _, err := DecodeRatings(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated body accepted")
	}
}
