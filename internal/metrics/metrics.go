// Package metrics provides the small presentation layer the benchmark
// harness uses: humane byte/duration formatting, ASCII tables matching the
// paper's table layouts, and down-sampled series printing for figures.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// FormatBytes renders a byte count with binary units, e.g. "2.1 MiB".
// Non-finite inputs render as "NaN"/"+Inf"/"-Inf" rather than leaking into
// a unit suffix.
func FormatBytes(b float64) string {
	if math.IsNaN(b) {
		return "NaN"
	}
	if math.IsInf(b, 0) {
		return fmt.Sprintf("%+.0f", b)
	}
	abs := math.Abs(b)
	switch {
	case abs >= 1<<30:
		return fmt.Sprintf("%.1f GiB", b/(1<<30))
	case abs >= 1<<20:
		return fmt.Sprintf("%.1f MiB", b/(1<<20))
	case abs >= 1<<10:
		return fmt.Sprintf("%.1f KiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

// FormatSeconds renders a duration in the unit the paper's axes use,
// extended down to the µs/ns range the request-latency percentiles live
// in. The unit is chosen on the magnitude, so negative durations keep
// their sign instead of falling through every branch into "-5000.0 ms";
// NaN and ±Inf (e.g. a percentile of an empty series fed through a
// division) render as themselves instead of "NaN ms" garbage.
func FormatSeconds(s float64) string {
	if math.IsNaN(s) {
		return "NaN"
	}
	if math.IsInf(s, 0) {
		return fmt.Sprintf("%+.0f", s)
	}
	if s < 0 {
		return "-" + FormatSeconds(-s)
	}
	switch {
	case s >= 3600:
		return fmt.Sprintf("%.1f h", s/3600)
	case s >= 60:
		return fmt.Sprintf("%.1f min", s/60)
	case s >= 1:
		return fmt.Sprintf("%.1f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.1f ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.1f µs", s*1e6)
	case s == 0:
		return "0 s"
	default:
		return fmt.Sprintf("%.1f ns", s*1e9)
	}
}

// Table accumulates rows and prints them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Fprint writes the aligned table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a labeled (x, y) sequence, one line of a figure.
type Series struct {
	Label string
	X, Y  []float64
}

// Downsample returns at most n evenly spaced points of the series
// (endpoints preserved), for terminal-friendly figure dumps.
func (s Series) Downsample(n int) Series {
	if n <= 0 || len(s.X) <= n {
		return s
	}
	out := Series{Label: s.Label}
	step := float64(len(s.X)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		j := int(math.Round(float64(i) * step))
		if j >= len(s.X) {
			j = len(s.X) - 1
		}
		out.X = append(out.X, s.X[j])
		out.Y = append(out.Y, s.Y[j])
	}
	return out
}

// FprintSeries prints one or more series as columns: x then one y column
// per series, down-sampled to at most points rows. Series may have
// different x grids; each is printed in its own block.
func FprintSeries(w io.Writer, points int, series ...Series) {
	for _, s := range series {
		ds := s.Downsample(points)
		fmt.Fprintf(w, "# %s\n", s.Label)
		for i := range ds.X {
			fmt.Fprintf(w, "%12.4f  %10.4f\n", ds.X[i], ds.Y[i])
		}
	}
}

// CleanNaN filters out NaN y-values (epochs where RMSE evaluation was
// skipped), keeping x/y aligned.
func CleanNaN(x, y []float64) ([]float64, []float64) {
	var ox, oy []float64
	for i := range y {
		if !math.IsNaN(y[i]) {
			ox = append(ox, x[i])
			oy = append(oy, y[i])
		}
	}
	return ox, oy
}
