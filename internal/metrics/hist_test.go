package metrics

import (
	"encoding/json"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistIndexMonotone pins the bucket layout: indices are monotone in the
// value, every bucket's low bound maps back to itself, and the relative
// width of a bucket stays under 1/8 (the sub-bucket resolution).
func TestHistIndexMonotone(t *testing.T) {
	prev := -1
	for _, ns := range []int64{0, 1, 2, 7, 8, 9, 15, 16, 17, 100, 1023, 1024, 1 << 20, 1<<20 + 1, 1 << 40, 1<<62 + 12345} {
		idx := histIndex(ns)
		if idx < prev {
			t.Fatalf("histIndex(%d) = %d < previous %d", ns, idx, prev)
		}
		prev = idx
		if lo := histLow(idx); histIndex(lo) != idx {
			t.Fatalf("histLow(%d) = %d maps to bucket %d", idx, lo, histIndex(lo))
		}
		if mid := histMid(idx); histIndex(mid) != idx {
			t.Fatalf("histMid(%d) = %d escapes its bucket (-> %d)", idx, mid, histIndex(mid))
		}
	}
	if histIndex(-5) != 0 {
		t.Fatal("negative values must clamp to bucket 0")
	}
}

// TestHistQuantileAccuracy draws a heavy-tailed sample and checks the
// histogram quantiles against the exact sorted-sample quantiles within the
// bucket resolution (12.5% relative width -> allow 13%).
func TestHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Hist
	var vals []int64
	for i := 0; i < 20000; i++ {
		// Log-uniform over [1µs, 1s] with occasional 10x outliers.
		v := int64(1000 * (1 + rng.ExpFloat64()*5000))
		if rng.Intn(100) == 0 {
			v *= 10
		}
		vals = append(vals, v)
		h.ObserveNanos(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("snapshot count %d, want %d", s.Count, len(vals))
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
		rank := int(q*float64(len(vals))) - 1
		if rank < 0 {
			rank = 0
		}
		exact := float64(vals[rank])
		got := float64(s.Quantile(q))
		if got < exact*(1-0.13) || got > exact*(1+0.13) {
			t.Fatalf("q%.2f: hist %v, exact %v (>13%% off)", q, got, exact)
		}
	}
	if s.Quantile(0.5) > s.Quantile(0.95) || s.Quantile(0.95) > s.Quantile(0.99) {
		t.Fatal("quantiles not monotone")
	}
}

// TestHistSnapshotMerge pins that merging two snapshots equals observing
// the union into one histogram — the property the loadgen relies on when
// folding per-node /metrics scrapes.
func TestHistSnapshotMerge(t *testing.T) {
	var a, b, union Hist
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1_000_000) + 1)
		if i%2 == 0 {
			a.ObserveNanos(v)
		} else {
			b.ObserveNanos(v)
		}
		union.ObserveNanos(v)
	}
	sa := a.Snapshot()
	sa.Add(b.Snapshot())
	su := union.Snapshot()
	if sa.Count != su.Count || sa.SumNs != su.SumNs {
		t.Fatalf("merged count/sum %d/%d, want %d/%d", sa.Count, sa.SumNs, su.Count, su.SumNs)
	}
	if len(sa.Buckets) != len(su.Buckets) {
		t.Fatalf("merged %d buckets, union has %d", len(sa.Buckets), len(su.Buckets))
	}
	for i := range sa.Buckets {
		if sa.Buckets[i] != su.Buckets[i] {
			t.Fatalf("bucket %d: merged %+v union %+v", i, sa.Buckets[i], su.Buckets[i])
		}
	}
	for _, q := range []float64{0.5, 0.99} {
		if sa.Quantile(q) != su.Quantile(q) {
			t.Fatalf("q%.2f differs after merge", q)
		}
	}
	// Merging nil is a no-op.
	before := sa.Count
	sa.Add(nil)
	if sa.Count != before {
		t.Fatal("Add(nil) changed the snapshot")
	}
}

// TestHistEmptyAndEdgeQuantiles: empty histograms report zeros, q is
// clamped into [0,1], and single-sample histograms report that sample's
// bucket for every quantile.
func TestHistEmptyAndEdgeQuantiles(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot must report 0")
	}
	h.Observe(5 * time.Millisecond)
	s = h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := s.Quantile(q)
		if got < 4*time.Millisecond || got > 6*time.Millisecond {
			t.Fatalf("q%v of single 5ms sample = %v", q, got)
		}
	}
}

// TestHistConcurrentObserve hammers one histogram from many goroutines;
// under -race this verifies the lock-free recording path, and the final
// count must equal the number of observations.
func TestHistConcurrentObserve(t *testing.T) {
	var h Hist
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveNanos(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
}

// TestHistSnapshotJSONRoundTrip: the snapshot survives the JSON encoding
// /metrics uses, with quantiles intact.
func TestHistSnapshotJSONRoundTrip(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.ObserveNanos(int64(i) * 1000)
	}
	s := h.Snapshot()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back HistSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != s.Count || back.Quantile(0.95) != s.Quantile(0.95) {
		t.Fatalf("round trip changed the snapshot: %v vs %v", back, s)
	}
}

// TestStageSet: names are sorted, observations land in the right stage,
// and snapshots are independent copies.
func TestStageSet(t *testing.T) {
	ss := NewStageSet()
	ss.Observe("train", 10*time.Millisecond)
	ss.Observe("merge", time.Millisecond)
	ss.Observe("train", 12*time.Millisecond)
	if got := ss.Names(); len(got) != 2 || got[0] != "merge" || got[1] != "train" {
		t.Fatalf("names %v", got)
	}
	snap := ss.Snapshot()
	if snap["train"].Count != 2 || snap["merge"].Count != 1 {
		t.Fatalf("counts %d/%d", snap["train"].Count, snap["merge"].Count)
	}
	ss.Observe("train", time.Millisecond)
	if snap["train"].Count != 2 {
		t.Fatal("snapshot mutated by later observation")
	}
	if FormatQuantiles(snap["train"]) == "-" || FormatQuantiles(nil) != "-" {
		t.Fatal("FormatQuantiles empty/nil handling")
	}
}
