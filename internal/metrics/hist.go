package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hist is a small streaming latency histogram: durations are counted into
// log-spaced buckets (8 sub-buckets per power of two, ~6% relative error at
// the bucket midpoint), so recording is one atomic increment — safe for
// concurrent use on serving hot paths — and quantiles come from a bucket
// walk. The bucket layout is fixed and global, which makes snapshots from
// different histograms (different nodes of a cluster) mergeable by adding
// counts bucket for bucket; merged quantiles are therefore exact at the
// same resolution as local ones, unlike averaging per-node percentiles.
//
// The zero value is ready to use.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

const (
	histSubBits = 3 // sub-buckets per octave = 2^histSubBits
	histSub     = 1 << histSubBits
	// 64-bit nanosecond values need (64-histSubBits)*histSub + histSub
	// buckets; 512 covers every int64 with headroom.
	histBuckets = 512
)

// histIndex maps a nanosecond value to its bucket. Values 0..7 get exact
// buckets; larger values index by (octave, top 3 bits below the MSB).
func histIndex(ns int64) int {
	if ns < histSub {
		if ns < 0 {
			return 0
		}
		return int(ns)
	}
	l := bits.Len64(uint64(ns))
	return (l-histSubBits)<<histSubBits | int(ns>>(l-1-histSubBits))&(histSub-1)
}

// histLow returns the smallest nanosecond value mapping to bucket idx.
func histLow(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	e := idx >> histSubBits
	s := idx & (histSub - 1)
	return int64(histSub+s) << (e - 1)
}

// histMid returns the representative (midpoint) value of bucket idx, the
// value quantile queries report for samples landing in it.
func histMid(idx int) int64 {
	lo := histLow(idx)
	if idx < histSub {
		return lo // exact single-value buckets
	}
	var hi int64
	if idx+1 < histBuckets {
		hi = histLow(idx + 1)
	} else {
		hi = lo + lo/histSub
	}
	return lo + (hi-lo-1)/2
}

// Observe records one duration. Negative durations count as zero.
func (h *Hist) Observe(d time.Duration) { h.ObserveNanos(int64(d)) }

// ObserveNanos records one duration given in nanoseconds.
func (h *Hist) ObserveNanos(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[histIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations so far.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Snapshot returns a point-in-time copy suitable for quantile queries,
// serialization and merging. Concurrent Observe calls may or may not be
// included; the snapshot itself is internally consistent enough for
// reporting (bucket sum is used as the count).
func (h *Hist) Snapshot() *HistSnapshot {
	s := &HistSnapshot{SumNs: h.sum.Load()}
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Index: i, Count: c})
			s.Count += c
		}
	}
	return s
}

// HistBucket is one non-empty bucket of a snapshot.
type HistBucket struct {
	Index int    `json:"i"`
	Count uint64 `json:"c"`
}

// HistSnapshot is the serializable, mergeable form of a Hist. Buckets are
// sparse (non-empty only) and sorted by index.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	SumNs   int64        `json:"sum_ns"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Add folds other into s bucket for bucket, so quantiles over the union
// keep full resolution. Nil other is a no-op.
func (s *HistSnapshot) Add(other *HistSnapshot) {
	if other == nil {
		return
	}
	s.Count += other.Count
	s.SumNs += other.SumNs
	merged := make([]HistBucket, 0, len(s.Buckets)+len(other.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(other.Buckets) {
		switch {
		case j >= len(other.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Index < other.Buckets[j].Index):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || other.Buckets[j].Index < s.Buckets[i].Index:
			merged = append(merged, other.Buckets[j])
			j++
		default:
			merged = append(merged, HistBucket{Index: s.Buckets[i].Index, Count: s.Buckets[i].Count + other.Buckets[j].Count})
			i++
			j++
		}
	}
	s.Buckets = merged
}

// Quantile returns the q-quantile (0 <= q <= 1) as a duration: the
// midpoint of the bucket holding the ceil(q*count)-th smallest sample.
// An empty snapshot returns 0.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s == nil || s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return time.Duration(histMid(b.Index))
		}
	}
	return time.Duration(histMid(s.Buckets[len(s.Buckets)-1].Index))
}

// Mean returns the mean observed duration (0 when empty).
func (s *HistSnapshot) Mean() time.Duration {
	if s == nil || s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / int64(s.Count))
}

// StageSet is a named registry of histograms — one per pipeline stage
// (train, merge, seal, wire, ...). Safe for concurrent use; histograms are
// created on first observation.
type StageSet struct {
	mu sync.Mutex
	m  map[string]*Hist
}

// NewStageSet returns an empty registry.
func NewStageSet() *StageSet { return &StageSet{m: make(map[string]*Hist)} }

// Observe records d into the named stage histogram.
func (s *StageSet) Observe(name string, d time.Duration) {
	s.hist(name).Observe(d)
}

func (s *StageSet) hist(name string) *Hist {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.m[name]
	if !ok {
		h = &Hist{}
		s.m[name] = h
	}
	return h
}

// Snapshot returns a snapshot per stage, keyed by name.
func (s *StageSet) Snapshot() map[string]*HistSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*HistSnapshot, len(s.m))
	for name, h := range s.m {
		out[name] = h.Snapshot()
	}
	return out
}

// Names returns the stage names in sorted order.
func (s *StageSet) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.m))
	for name := range s.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FormatQuantiles renders "p50 / p95 / p99" of a snapshot in one cell for
// table output.
func FormatQuantiles(s *HistSnapshot) string {
	if s == nil || s.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%s / %s / %s",
		FormatSeconds(s.Quantile(0.50).Seconds()),
		FormatSeconds(s.Quantile(0.95).Seconds()),
		FormatSeconds(s.Quantile(0.99).Seconds()))
}
