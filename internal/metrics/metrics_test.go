package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestFormatBytes(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{512, "512 B"}, {2048, "2.0 KiB"}, {3 << 20, "3.0 MiB"}, {5 << 30, "5.0 GiB"},
		// Signs and non-finite values must not leak into unit garbage.
		{-3 << 20, "-3.0 MiB"}, {-12, "-12 B"},
		{math.NaN(), "NaN"}, {math.Inf(1), "+Inf"}, {math.Inf(-1), "-Inf"},
	} {
		if got := FormatBytes(tc.in); got != tc.want {
			t.Fatalf("FormatBytes(%v) = %q want %q", tc.in, got, tc.want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0.005, "5.0 ms"}, {2.5, "2.5 s"}, {90, "1.5 min"}, {7200, "2.0 h"},
		// The extremes request-latency percentiles feed through here:
		// sub-millisecond and sub-nanosecond values get real units instead
		// of "0.0 ms", negatives keep their sign and unit, multi-hour
		// stays in hours, and NaN/Inf render as themselves — never
		// "NaN ms" in a benchmark table.
		{250e-6, "250.0 µs"}, {3.2e-9, "3.2 ns"}, {1.2e-10, "0.1 ns"},
		{0, "0 s"},
		{-0.25, "-250.0 ms"}, {-90, "-1.5 min"},
		{1e6, "277.8 h"},
		{math.NaN(), "NaN"}, {math.Inf(1), "+Inf"}, {math.Inf(-1), "-Inf"},
	} {
		if got := FormatSeconds(tc.in); got != tc.want {
			t.Fatalf("FormatSeconds(%v) = %q want %q", tc.in, got, tc.want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Setup", "Value")
	tb.AddRow("short", "1")
	tb.AddRow("a much longer setup name", "2")
	tb.AddRow("padded") // short row
	var sb strings.Builder
	tb.Fprint(&sb)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "Setup") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator %q", lines[1])
	}
	// The Value column must start at the same offset in every data row.
	idx := strings.Index(lines[2], "1")
	if idx < 0 || !strings.Contains(lines[3], strings.Repeat(" ", 2)+"2") {
		t.Fatalf("misaligned rows: %q %q", lines[2], lines[3])
	}
}

func TestDownsample(t *testing.T) {
	s := Series{Label: "x"}
	for i := 0; i < 100; i++ {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, float64(i)*2)
	}
	d := s.Downsample(5)
	if len(d.X) != 5 {
		t.Fatalf("downsampled to %d", len(d.X))
	}
	if d.X[0] != 0 || d.X[4] != 99 {
		t.Fatalf("endpoints lost: %v", d.X)
	}
	// Short series unchanged.
	if got := s.Downsample(200); len(got.X) != 100 {
		t.Fatal("short series padded")
	}
	if got := s.Downsample(0); len(got.X) != 100 {
		t.Fatal("n=0 should be identity")
	}
}

func TestFprintSeries(t *testing.T) {
	var sb strings.Builder
	FprintSeries(&sb, 3, Series{Label: "curve", X: []float64{1, 2, 3, 4}, Y: []float64{1, 4, 9, 16}})
	out := sb.String()
	if !strings.Contains(out, "# curve") {
		t.Fatalf("missing label: %q", out)
	}
	if strings.Count(out, "\n") != 4 { // label + 3 points
		t.Fatalf("wrong row count: %q", out)
	}
}

func TestCleanNaN(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, math.NaN(), 3, math.NaN()}
	cx, cy := CleanNaN(x, y)
	if len(cx) != 2 || cx[1] != 2 || cy[1] != 3 {
		t.Fatalf("cleaned: %v %v", cx, cy)
	}
}
