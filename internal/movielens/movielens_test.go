package movielens

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"rex/internal/dataset"
)

func TestGenerateTableIShape(t *testing.T) {
	spec := Latest().Scaled(0.1)
	ds := Generate(spec)
	st := Summarize(ds)
	if math.Abs(float64(st.Ratings-spec.Ratings)) > float64(spec.Ratings)/50 {
		t.Fatalf("ratings %d, want ~%d", st.Ratings, spec.Ratings)
	}
	if st.Users != spec.Users {
		t.Fatalf("users %d, want %d (min-3 policy gives every user ratings)", st.Users, spec.Users)
	}
	if st.Items > spec.Items {
		t.Fatalf("items %d exceeds spec %d", st.Items, spec.Items)
	}
	if st.MeanRating < 3.0 || st.MeanRating > 4.1 {
		t.Fatalf("mean rating %.2f outside MovieLens-like range", st.MeanRating)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateStarScale(t *testing.T) {
	ds := Generate(Latest().Scaled(0.05))
	for _, r := range ds.Ratings {
		v := float64(r.Value)
		if v < 0.5 || v > 5.0 {
			t.Fatalf("rating %v out of range", v)
		}
		if math.Mod(v*2, 1) != 0 {
			t.Fatalf("rating %v not a half-star", v)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Latest().Scaled(0.05))
	b := Generate(Latest().Scaled(0.05))
	if len(a.Ratings) != len(b.Ratings) {
		t.Fatal("same spec, different sizes")
	}
	for i := range a.Ratings {
		if a.Ratings[i] != b.Ratings[i] {
			t.Fatalf("rating %d differs under identical seed", i)
		}
	}
	c := Latest().Scaled(0.05)
	c.Seed = 999
	d := Generate(c)
	same := len(a.Ratings) == len(d.Ratings)
	if same {
		identical := true
		for i := range a.Ratings {
			if a.Ratings[i] != d.Ratings[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical data")
		}
	}
}

func TestGenerateNoDuplicatePairs(t *testing.T) {
	ds := Generate(Latest().Scaled(0.08))
	seen := make(map[uint64]bool, len(ds.Ratings))
	for _, r := range ds.Ratings {
		if seen[r.Key()] {
			t.Fatalf("duplicate (user,item) pair: %+v", r)
		}
		seen[r.Key()] = true
	}
}

func TestGenerateZipfPopularity(t *testing.T) {
	ds := Generate(Latest().Scaled(0.2))
	counts := make(map[uint32]int)
	for _, r := range ds.Ratings {
		counts[r.Item]++
	}
	st := Summarize(ds)
	avg := float64(st.Ratings) / float64(st.Items)
	if float64(st.MaxItemDegree) < 5*avg {
		t.Fatalf("no blockbuster effect: max item degree %d vs avg %.1f", st.MaxItemDegree, avg)
	}
}

func TestGenerateMinimumPerUser(t *testing.T) {
	ds := Generate(Latest().Scaled(0.05))
	counts := make(map[uint32]int)
	for _, r := range ds.Ratings {
		counts[r.User]++
	}
	for u, c := range counts {
		if c < 3 {
			t.Fatalf("user %d has %d ratings (<3 breaks per-user splits)", u, c)
		}
	}
}

func TestScaledFloors(t *testing.T) {
	s := Latest().Scaled(0.000001)
	if s.Users < 2 || s.Items < 2 || s.Ratings < 2 {
		t.Fatalf("scaled spec underflows: %+v", s)
	}
}

func TestTwentyFiveMSpec(t *testing.T) {
	s := TwentyFiveMCapped()
	if s.Users != 15000 || s.Items != 28830 || s.Ratings != 2249739 {
		t.Fatalf("25M-capped spec drifted from Table I: %+v", s)
	}
	l := Latest()
	if l.Users != 610 || l.Items != 9000 || l.Ratings != 100000 {
		t.Fatalf("Latest spec drifted from Table I: %+v", l)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(&dataset.Dataset{})
	if st.Ratings != 0 || st.Users != 0 || st.Density != 0 {
		t.Fatalf("empty summary: %+v", st)
	}
}

const sampleCSV = `userId,movieId,rating,timestamp
1,31,2.5,1260759144
1,1029,3.0,1260759179
2,31,4.0,835355493
3,1061,3.5,1260759182
`

func TestLoadCSV(t *testing.T) {
	ds, err := LoadCSV(strings.NewReader(sampleCSV), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers != 3 || ds.NumItems != 3 || len(ds.Ratings) != 4 {
		t.Fatalf("loaded %d users %d items %d ratings", ds.NumUsers, ds.NumItems, len(ds.Ratings))
	}
	// Dense remapping in first-appearance order: user "1" -> 0, item "31" -> 0.
	if ds.Ratings[0].User != 0 || ds.Ratings[0].Item != 0 || ds.Ratings[0].Value != 2.5 {
		t.Fatalf("first rating mismapped: %+v", ds.Ratings[0])
	}
	// Item 31 shared between users 1 and 2 must map to the same dense id.
	if ds.Ratings[2].Item != ds.Ratings[0].Item {
		t.Fatal("shared raw item mapped to different dense ids")
	}
}

func TestLoadCSVUserCap(t *testing.T) {
	ds, err := LoadCSV(strings.NewReader(sampleCSV), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers != 2 {
		t.Fatalf("cap ignored: %d users", ds.NumUsers)
	}
	if len(ds.Ratings) != 3 {
		t.Fatalf("capped dataset has %d ratings, want 3", len(ds.Ratings))
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := LoadCSV(strings.NewReader(""), 0); err == nil {
		t.Fatal("empty file accepted")
	}
	if _, err := LoadCSV(strings.NewReader("userId,movieId,rating\n1,2,notanumber\n"), 0); err == nil {
		t.Fatal("bad rating accepted")
	}
}

// TestLoadCSVPartitionedConformance checks the one-pass partitioned
// loader against the two-pass reference (LoadCSV + PartitionPerUser) on
// an interleaved multi-user file, with and without the user cap.
func TestLoadCSVPartitionedConformance(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("userId,movieId,rating,timestamp\n")
	// Users appear interleaved and out of order, sharing items, so the
	// dense remap and per-node grouping both do real work.
	rng := rand.New(rand.NewSource(31))
	users := []string{"42", "7", "100", "7", "42", "9", "100", "42", "9", "7", "55", "55"}
	for i, u := range users {
		fmt.Fprintf(&sb, "%s,%d,%.1f,0\n", u, 10+rng.Intn(6), float64(rng.Intn(9)+2)/2)
		_ = i
	}
	csvText := sb.String()

	for _, cap := range []int{0, 2} {
		ds, err := LoadCSV(strings.NewReader(csvText), cap)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ds.PartitionPerUser()
		if err != nil {
			t.Fatal(err)
		}
		parts, nu, ni, err := LoadCSVPartitioned(strings.NewReader(csvText), cap)
		if err != nil {
			t.Fatal(err)
		}
		if nu != ds.NumUsers || ni != ds.NumItems || len(parts) != len(want) {
			t.Fatalf("cap=%d: got %d users %d items %d parts, want %d/%d/%d",
				cap, nu, ni, len(parts), ds.NumUsers, ds.NumItems, len(want))
		}
		for node := range want {
			if len(parts[node]) != len(want[node]) {
				t.Fatalf("cap=%d node %d: %d ratings, want %d", cap, node, len(parts[node]), len(want[node]))
			}
			for k := range want[node] {
				if parts[node][k] != want[node][k] {
					t.Fatalf("cap=%d node %d rating %d: %+v, want %+v", cap, node, k, parts[node][k], want[node][k])
				}
			}
		}
	}
}
