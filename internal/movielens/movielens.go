// Package movielens produces MovieLens-shaped rating datasets. The paper
// evaluates on MovieLens Latest (100k ratings, 9k items, 610 users) and a
// truncated MovieLens 25M (2,249,739 ratings, 28,830 items, 15,000 users)
// — Table I. Real dumps are unavailable offline, so this package generates
// synthetic datasets with the same statistical fingerprints that matter to
// every experiment: Zipf item popularity, heavy-tailed user activity, a
// learnable latent-factor structure with user/item biases, and star ratings
// quantized to 0.5..5.0 in steps of 0.5. A CSV loader is provided for real
// MovieLens files when present.
package movielens

import (
	"math"
	"math/rand"

	"rex/internal/dataset"
)

// Spec parameterizes the synthetic generator.
type Spec struct {
	Users   int // number of users (rows of the interaction matrix)
	Items   int // number of items (columns)
	Ratings int // target number of ratings; actual count may differ by <1%

	// LatentDim is the rank of the ground-truth factor model from which
	// ratings are drawn; recoverable structure for MF/DNN to learn.
	LatentDim int
	// NoiseStd is the std-dev of per-rating Gaussian noise; it sets the
	// irreducible RMSE floor the centralized baseline converges to.
	NoiseStd float64
	// SignalVar is the variance of the latent-factor contribution
	// <p_u, q_i> to each rating: the collaborative signal a recommender
	// must learn from other users' data. Defaults to 0.35 when zero.
	// Together with the bias spreads this puts the mean-predictor RMSE
	// near 1.4 and the converged error near 1.0, bracketing the paper's
	// curves (~1.6 down to ~1.0). Most of the closable gap is item-bias
	// discovery, which under per-user splits requires other users'
	// opinions — the collaborative signal sharing accelerates.
	SignalVar float64
	// ZipfS is the Zipf exponent for item popularity (s>1). Higher means
	// heavier concentration of ratings on few blockbuster items.
	ZipfS float64
	// UserActivityShape controls the log-normal sigma of per-user rating
	// counts; higher means some users rate far more than others.
	UserActivityShape float64
	// Seed makes generation deterministic.
	Seed int64
}

// Latest returns the spec reproducing the MovieLens Latest row of Table I:
// 100,000 ratings, 9,000 items, 610 users.
func Latest() Spec {
	return Spec{
		Users: 610, Items: 9000, Ratings: 100_000,
		LatentDim: 8, NoiseStd: 0.85, ZipfS: 1.07, UserActivityShape: 1.0,
		Seed: 1,
	}
}

// TwentyFiveMCapped returns the spec reproducing the truncated MovieLens
// 25M row of Table I: 2,249,739 ratings, 28,830 items, 15,000 users (the
// paper capped users to stay near SGX memory limits).
func TwentyFiveMCapped() Spec {
	return Spec{
		Users: 15_000, Items: 28_830, Ratings: 2_249_739,
		LatentDim: 8, NoiseStd: 0.85, ZipfS: 1.05, UserActivityShape: 1.1,
		Seed: 25,
	}
}

// Scaled returns a spec shrunk by the given factor in users/items/ratings,
// for fast tests and benchmarks that need the same shape at smaller scale.
func (s Spec) Scaled(factor float64) Spec {
	scale := func(v int) int {
		n := int(float64(v) * factor)
		if n < 2 {
			n = 2
		}
		return n
	}
	out := s
	out.Users = scale(s.Users)
	out.Items = scale(s.Items)
	out.Ratings = scale(s.Ratings)
	return out
}

// Generate synthesizes the dataset. Ground truth: rating(u,i) =
// clampHalf(mu + bu[u] + bi[i] + <pu[u], qi[i]> + eps). Item choice follows
// a Zipf law over a user-specific random permutation-free ranking (the same
// global popularity ranking for all users, matching real MovieLens where
// blockbusters are globally popular), without duplicates per user.
func Generate(spec Spec) *dataset.Dataset {
	rng := rand.New(rand.NewSource(spec.Seed))

	// Per-user latent factors, biases. Entry std is set so that
	// Var(<p_u, q_i>) = k*std^4 equals SignalVar.
	sv := spec.SignalVar
	if sv == 0 {
		sv = 0.35
	}
	entryStd := math.Pow(sv/float64(spec.LatentDim), 0.25)
	pu := make([][]float64, spec.Users)
	bu := make([]float64, spec.Users)
	for u := range pu {
		v := make([]float64, spec.LatentDim)
		for d := range v {
			v[d] = rng.NormFloat64() * entryStd
		}
		pu[u] = v
		bu[u] = rng.NormFloat64() * 0.50
	}
	qi := make([][]float64, spec.Items)
	bi := make([]float64, spec.Items)
	for i := range qi {
		v := make([]float64, spec.LatentDim)
		for d := range v {
			v[d] = rng.NormFloat64() * entryStd
		}
		qi[i] = v
		bi[i] = rng.NormFloat64() * 0.65
	}

	// Per-user activity: log-normal, scaled so the sum approximates the
	// ratings target, with a minimum of 3 ratings per user so per-user
	// train/test splits are possible everywhere.
	counts := make([]int, spec.Users)
	var raw []float64
	var sum float64
	for u := 0; u < spec.Users; u++ {
		v := math.Exp(rng.NormFloat64() * spec.UserActivityShape)
		raw = append(raw, v)
		sum += v
	}
	total := 0
	for u := 0; u < spec.Users; u++ {
		c := int(raw[u] / sum * float64(spec.Ratings))
		if c < 3 {
			c = 3
		}
		if c > spec.Items {
			c = spec.Items
		}
		counts[u] = c
		total += c
	}
	// Trim or pad toward the target without going below the minimum.
	for total > spec.Ratings {
		u := rng.Intn(spec.Users)
		if counts[u] > 3 {
			counts[u]--
			total--
		}
	}
	for total < spec.Ratings {
		u := rng.Intn(spec.Users)
		if counts[u] < spec.Items {
			counts[u]++
			total++
		}
	}

	zipf := rand.NewZipf(rng, spec.ZipfS, 1, uint64(spec.Items-1))

	ratings := make([]dataset.Rating, 0, total)
	seen := make(map[uint32]struct{}, 256)
	for u := 0; u < spec.Users; u++ {
		clear(seen)
		for len(seen) < counts[u] {
			item := uint32(zipf.Uint64())
			if _, dup := seen[item]; dup {
				// Resample; fall back to uniform after collisions to
				// terminate quickly for very active users.
				item = uint32(rng.Intn(spec.Items))
				if _, dup2 := seen[item]; dup2 {
					continue
				}
			}
			seen[item] = struct{}{}
			score := 3.55 + bu[u] + bi[item] + dot(pu[u], qi[item]) +
				rng.NormFloat64()*spec.NoiseStd
			ratings = append(ratings, dataset.Rating{
				User:  uint32(u),
				Item:  item,
				Value: clampHalf(score),
			})
		}
	}
	return &dataset.Dataset{Ratings: ratings, NumUsers: spec.Users, NumItems: spec.Items}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// clampHalf quantizes to the MovieLens star scale: multiples of 0.5 within
// [0.5, 5.0].
func clampHalf(v float64) float32 {
	q := math.Round(v*2) / 2
	if q < 0.5 {
		q = 0.5
	}
	if q > 5.0 {
		q = 5.0
	}
	return float32(q)
}

// Stats summarizes a dataset in the shape of Table I.
type Stats struct {
	Ratings       int
	Users         int // distinct users with >=1 rating
	Items         int // distinct items with >=1 rating
	MeanRating    float64
	Density       float64 // ratings / (users*items)
	MaxUserDegree int     // most active user's rating count
	MaxItemDegree int     // most popular item's rating count
}

// Summarize computes Table I-style statistics for a dataset.
func Summarize(d *dataset.Dataset) Stats {
	uc := make(map[uint32]int)
	ic := make(map[uint32]int)
	var sum float64
	for _, r := range d.Ratings {
		uc[r.User]++
		ic[r.Item]++
		sum += float64(r.Value)
	}
	st := Stats{Ratings: len(d.Ratings), Users: len(uc), Items: len(ic)}
	if st.Ratings > 0 {
		st.MeanRating = sum / float64(st.Ratings)
	}
	if st.Users > 0 && st.Items > 0 {
		st.Density = float64(st.Ratings) / (float64(st.Users) * float64(st.Items))
	}
	for _, c := range uc {
		if c > st.MaxUserDegree {
			st.MaxUserDegree = c
		}
	}
	for _, c := range ic {
		if c > st.MaxItemDegree {
			st.MaxItemDegree = c
		}
	}
	return st
}
