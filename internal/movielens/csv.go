package movielens

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"rex/internal/dataset"
)

// scanCSV is the streaming core of both loaders: it reads MovieLens
// ratings.csv content (header: userId,movieId,rating,timestamp) row by
// row, remaps user and item ids to dense 0-based ids in first-appearance
// order, and hands each triplet to emit as it is parsed. maxUsers > 0
// caps the number of distinct users kept, reproducing the paper's
// truncation of the 25M dump (Table I footnote); later users' rows are
// skipped. Memory is the two id maps plus whatever emit retains — no
// parsed slice is accumulated here.
func scanCSV(r io.Reader, maxUsers int, emit func(dataset.Rating)) (numUsers, numItems int, err error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1

	header, err := cr.Read()
	if err != nil {
		return 0, 0, fmt.Errorf("movielens: reading header: %w", err)
	}
	if len(header) < 3 {
		return 0, 0, fmt.Errorf("movielens: malformed header %q", header)
	}

	userIDs := make(map[string]uint32)
	itemIDs := make(map[string]uint32)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, fmt.Errorf("movielens: reading row: %w", err)
		}
		if len(rec) < 3 {
			return 0, 0, fmt.Errorf("movielens: short row %q", rec)
		}
		uid, ok := userIDs[rec[0]]
		if !ok {
			if maxUsers > 0 && len(userIDs) >= maxUsers {
				continue // truncated user; skip all their rows
			}
			uid = uint32(len(userIDs))
			userIDs[rec[0]] = uid
		}
		iid, ok := itemIDs[rec[1]]
		if !ok {
			iid = uint32(len(itemIDs))
			itemIDs[rec[1]] = iid
		}
		v, err := strconv.ParseFloat(rec[2], 32)
		if err != nil {
			return 0, 0, fmt.Errorf("movielens: bad rating %q: %w", rec[2], err)
		}
		emit(dataset.Rating{User: uid, Item: iid, Value: float32(v)})
	}
	return len(userIDs), len(itemIDs), nil
}

// LoadCSV reads real MovieLens ratings.csv content into a flat Dataset
// (rows in file order). See scanCSV for the id remapping and maxUsers
// truncation semantics.
func LoadCSV(r io.Reader, maxUsers int) (*dataset.Dataset, error) {
	var ratings []dataset.Rating
	nu, ni, err := scanCSV(r, maxUsers, func(rt dataset.Rating) {
		ratings = append(ratings, rt)
	})
	if err != nil {
		return nil, err
	}
	return &dataset.Dataset{Ratings: ratings, NumUsers: nu, NumItems: ni}, nil
}

// LoadCSVPartitioned reads ratings.csv and partitions the ratings to
// nodes (node i = dense user id i, the paper's one-node-one-user layout)
// in the same single pass that parses them, so the full flat slice of
// LoadCSV + Dataset.PartitionPerUser is never materialized. At large n
// that halves dataset-prep memory: the only O(ratings) state is the
// partitions themselves, which the caller needs anyway. Each node's
// ratings keep file order; the result is element-wise identical to
// LoadCSV followed by PartitionPerUser.
func LoadCSVPartitioned(r io.Reader, maxUsers int) (parts [][]dataset.Rating, numUsers, numItems int, err error) {
	numUsers, numItems, err = scanCSV(r, maxUsers, func(rt dataset.Rating) {
		for int(rt.User) >= len(parts) {
			parts = append(parts, nil)
		}
		parts[rt.User] = append(parts[rt.User], rt)
	})
	if err != nil {
		return nil, 0, 0, err
	}
	// Users are dense first-appearance ids, so every id below numUsers has
	// a slot already; this is just the empty-file case.
	for len(parts) < numUsers {
		parts = append(parts, nil)
	}
	return parts, numUsers, numItems, nil
}
