package movielens

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"rex/internal/dataset"
)

// LoadCSV reads real MovieLens ratings.csv content (header:
// userId,movieId,rating,timestamp). User and item ids are remapped to dense
// 0-based ids in first-appearance order. maxUsers > 0 caps the number of
// distinct users kept, reproducing the paper's truncation of the 25M dump
// (Table I footnote); later users' rows are skipped.
func LoadCSV(r io.Reader, maxUsers int) (*dataset.Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("movielens: reading header: %w", err)
	}
	if len(header) < 3 {
		return nil, fmt.Errorf("movielens: malformed header %q", header)
	}

	userIDs := make(map[string]uint32)
	itemIDs := make(map[string]uint32)
	var ratings []dataset.Rating
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("movielens: reading row: %w", err)
		}
		if len(rec) < 3 {
			return nil, fmt.Errorf("movielens: short row %q", rec)
		}
		uid, ok := userIDs[rec[0]]
		if !ok {
			if maxUsers > 0 && len(userIDs) >= maxUsers {
				continue // truncated user; skip all their rows
			}
			uid = uint32(len(userIDs))
			userIDs[rec[0]] = uid
		}
		iid, ok := itemIDs[rec[1]]
		if !ok {
			iid = uint32(len(itemIDs))
			itemIDs[rec[1]] = iid
		}
		v, err := strconv.ParseFloat(rec[2], 32)
		if err != nil {
			return nil, fmt.Errorf("movielens: bad rating %q: %w", rec[2], err)
		}
		ratings = append(ratings, dataset.Rating{User: uid, Item: iid, Value: float32(v)})
	}
	return &dataset.Dataset{
		Ratings:  ratings,
		NumUsers: len(userIDs),
		NumItems: len(itemIDs),
	}, nil
}
