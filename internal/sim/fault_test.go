package sim

import (
	"math"
	"reflect"
	"testing"

	"rex/internal/core"
	"rex/internal/faultnet"
	"rex/internal/gossip"
)

// chaosConfig is the sim fault-injection workload: every wire fault plus
// churn, over the small-world D-PSGD REX setup.
func chaosConfig(t testing.TB) Config {
	t.Helper()
	cfg := smallConfig(t, core.DataSharing, gossip.DPSGD)
	cfg.Epochs = 12
	cfg.Scenario = &faultnet.Scenario{
		Name: "sim-chaos", Seed: 7, Epochs: 12,
		Drop: 0.05, Delay: 0.2, DelayMs: 3, DelayJitterMs: 9,
		Duplicate: 0.05, Reorder: 0.05,
		Partitions: []faultnet.Partition{{From: 4, Until: 6, Groups: [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}}},
		Churn:      []faultnet.Churn{{Node: 2, Leave: 3, Rejoin: 7}},
		TimeoutMs:  500,
	}
	return cfg
}

// TestScenarioReplayDeterministicSim is the simulator leg of the replay
// acceptance: the same (seed, spec) produces bit-identical per-epoch RMSE
// and an identical fault-event log, run after run and for any worker
// count.
func TestScenarioReplayDeterministicSim(t *testing.T) {
	run := func(workers int) *Result {
		cfg := chaosConfig(t)
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, par := run(1), run(1), run(4)
	if len(a.FaultLog) == 0 {
		t.Fatal("chaos scenario injected nothing")
	}
	for _, other := range []*Result{b, par} {
		if len(a.Series) != len(other.Series) {
			t.Fatal("series length diverged")
		}
		for e := range a.Series {
			if math.Float64bits(a.Series[e].MeanRMSE) != math.Float64bits(other.Series[e].MeanRMSE) {
				t.Fatalf("epoch %d RMSE diverged: %v vs %v", e, a.Series[e].MeanRMSE, other.Series[e].MeanRMSE)
			}
			if a.Series[e].TimeMean != other.Series[e].TimeMean {
				t.Fatalf("epoch %d virtual time diverged", e)
			}
		}
		if !reflect.DeepEqual(a.FaultLog, other.FaultLog) {
			t.Fatal("fault logs diverged between identical runs")
		}
	}
	if a.Faults.Dropped == 0 || a.Faults.Delayed == 0 || a.Faults.Duplicated == 0 ||
		a.Faults.Reordered == 0 || a.Faults.PartitionDrops == 0 ||
		a.Faults.Leaves != 1 || a.Faults.Rejoins != 1 {
		t.Fatalf("fault counts incomplete: %+v", a.Faults)
	}
}

// TestScenarioNilIsNoop: a nil scenario must leave trajectories exactly as
// before the chaos harness existed (bit-identical to an explicit zero-less
// config).
func TestScenarioNilIsNoop(t *testing.T) {
	cfg := smallConfig(t, core.DataSharing, gossip.DPSGD)
	cfg.Epochs = 8
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := smallConfig(t, core.DataSharing, gossip.DPSGD)
	cfg2.Epochs = 8
	cfg2.Scenario = &faultnet.Scenario{Name: "empty", Seed: 123, Epochs: 8}
	empty, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	for e := range base.Series {
		if math.Float64bits(base.Series[e].MeanRMSE) != math.Float64bits(empty.Series[e].MeanRMSE) {
			t.Fatalf("empty scenario changed epoch %d RMSE", e)
		}
	}
	if len(empty.FaultLog) != 0 {
		t.Fatalf("empty scenario logged %d events", len(empty.FaultLog))
	}
}

// TestScenarioDropLosesTraffic: dropped frames reduce delivered traffic
// relative to the fault-free run but convergence survives modest loss.
func TestScenarioDropLosesTraffic(t *testing.T) {
	clean := smallConfig(t, core.DataSharing, gossip.DPSGD)
	clean.Epochs = 15
	base, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	lossy := smallConfig(t, core.DataSharing, gossip.DPSGD)
	lossy.Epochs = 15
	lossy.Scenario = &faultnet.Scenario{Name: "lossy", Seed: 5, Epochs: 15, Drop: 0.15}
	dropped, err := Run(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if dropped.Faults.Dropped == 0 {
		t.Fatal("no drops injected")
	}
	if dropped.BytesPerNode >= base.BytesPerNode {
		t.Fatalf("drops did not reduce traffic: %.0f vs %.0f", dropped.BytesPerNode, base.BytesPerNode)
	}
	// Convergence envelope: a 15% loss rate costs accuracy but not
	// convergence — the surviving gossip keeps learning within 15% of the
	// fault-free error.
	if dropped.FinalRMSE > base.FinalRMSE*1.15 {
		t.Fatalf("lossy run diverged: %.4f vs fault-free %.4f", dropped.FinalRMSE, base.FinalRMSE)
	}
}

// TestScenarioTimeoutChargesVirtualTime: with TimeoutMs set, rounds that
// lost an expected message charge the failure detector's wait.
func TestScenarioTimeoutChargesVirtualTime(t *testing.T) {
	mk := func(timeoutMs int) *Result {
		cfg := smallConfig(t, core.DataSharing, gossip.DPSGD)
		cfg.Epochs = 10
		cfg.Scenario = &faultnet.Scenario{Name: "t", Seed: 5, Epochs: 10, Drop: 0.2, TimeoutMs: timeoutMs}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free, charged := mk(0), mk(800)
	if charged.TotalTimeMean <= free.TotalTimeMean {
		t.Fatalf("timeout charge missing: %.3f vs %.3f", charged.TotalTimeMean, free.TotalTimeMean)
	}
	// Learning is unaffected by the cost model: bit-identical RMSE.
	for e := range free.Series {
		if math.Float64bits(free.Series[e].MeanRMSE) != math.Float64bits(charged.Series[e].MeanRMSE) {
			t.Fatal("timeout charge changed learning")
		}
	}
}

// TestScenarioChurnGeneralizesFailAt: a permanent churn entry behaves like
// FailAt — bit-identical trajectories — and a temporary one brings the
// node back.
func TestScenarioChurnGeneralizesFailAt(t *testing.T) {
	viaFail := smallConfig(t, core.DataSharing, gossip.DPSGD)
	viaFail.Epochs = 10
	viaFail.FailAt = map[int]int{3: 4}
	a, err := Run(viaFail)
	if err != nil {
		t.Fatal(err)
	}
	viaChurn := smallConfig(t, core.DataSharing, gossip.DPSGD)
	viaChurn.Epochs = 10
	viaChurn.Scenario = &faultnet.Scenario{Name: "perm", Seed: 1, Epochs: 10,
		Churn: []faultnet.Churn{{Node: 3, Leave: 4}}} // no rejoin: permanent
	b, err := Run(viaChurn)
	if err != nil {
		t.Fatal(err)
	}
	for e := range a.Series {
		if math.Float64bits(a.Series[e].MeanRMSE) != math.Float64bits(b.Series[e].MeanRMSE) {
			t.Fatalf("permanent churn != FailAt at epoch %d", e)
		}
	}
	if b.Faults.Leaves != 1 || b.Faults.Rejoins != 0 {
		t.Fatalf("counts %+v", b.Faults)
	}

	// Temporary churn: the node rejoins and the final mean RMSE improves
	// over the permanent-crash run (one more learner back in the mesh).
	viaRejoin := smallConfig(t, core.DataSharing, gossip.DPSGD)
	viaRejoin.Epochs = 10
	viaRejoin.Scenario = &faultnet.Scenario{Name: "temp", Seed: 1, Epochs: 10,
		Churn: []faultnet.Churn{{Node: 3, Leave: 4, Rejoin: 6}}}
	c, err := Run(viaRejoin)
	if err != nil {
		t.Fatal(err)
	}
	if c.Faults.Leaves != 1 || c.Faults.Rejoins != 1 {
		t.Fatalf("temp churn counts %+v", c.Faults)
	}
	if math.IsNaN(c.FinalRMSE) || c.FinalRMSE <= 0 {
		t.Fatalf("rejoin run RMSE %v", c.FinalRMSE)
	}
}

// TestScenarioPartitionCutsCrossTraffic: during the split no cross-group
// messages land, and the log attributes the cuts to the partition kind.
func TestScenarioPartitionCutsCrossTraffic(t *testing.T) {
	cfg := smallConfig(t, core.DataSharing, gossip.DPSGD)
	cfg.Epochs = 8
	half := make([]int, 0, 12)
	rest := make([]int, 0, 12)
	for i := 0; i < cfg.Graph.N(); i++ {
		if i < 12 {
			half = append(half, i)
		} else {
			rest = append(rest, i)
		}
	}
	cfg.Scenario = &faultnet.Scenario{Name: "split", Seed: 2, Epochs: 8,
		Partitions: []faultnet.Partition{{From: 2, Until: 5, Groups: [][]int{half, rest}}}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.PartitionDrops == 0 {
		t.Fatal("no partition cuts recorded")
	}
	for _, ev := range res.FaultLog {
		if ev.Kind != faultnet.KindPartition {
			t.Fatalf("unexpected event kind %q", ev.Kind)
		}
		if ev.Epoch < 2 || ev.Epoch >= 5 {
			t.Fatalf("cut outside the window: %+v", ev)
		}
		if (ev.From < 12) == (ev.To < 12) {
			t.Fatalf("intra-group edge cut: %+v", ev)
		}
	}
}
