package sim

import (
	"math"

	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/enclave"
	"rex/internal/faultnet"
	"rex/internal/gossip"
	"rex/internal/model"
	"rex/internal/topology"
)

// Config describes one simulated run.
type Config struct {
	// Graph is the communication topology — a materialized *topology.Graph
	// or a streamed form (topology.SmallWorldStream, topology.ERStream)
	// that derives neighbor lists on demand, which is what makes 100k+
	// node runs affordable.
	Graph topology.Source
	// Topology, when set, supplies the communication graph for each epoch
	// (same node count as Graph), enabling dynamic overlays such as a
	// peer-sampling service re-sampled between rounds. The Algorithm 2
	// barrier still holds: a node trains once every message addressed to
	// it in the previous epoch has arrived.
	Topology func(epoch int) *topology.Graph
	Algo     gossip.Algo
	Mode     core.Mode

	Epochs        int
	StepsPerEpoch int // fixed SGD steps per epoch (§III-E); <=0 = full pass
	SharePoints   int // raw points sampled per epoch in REX mode

	// Workers bounds the goroutines stepping nodes within an epoch. Zero
	// (the default) uses GOMAXPROCS; 1 forces the sequential path. The
	// result is bit-identical for every value: within one epoch node i's
	// merge/train/share/test reads only the previous epoch's inbox and
	// node-i state, and all cross-node effects — message delivery and
	// floating-point accumulation of epoch statistics — are folded in
	// ascending node-index order after the parallel section.
	Workers int

	// UniformMerge is the §III-C2 ablation: naive uniform averaging in
	// place of Metropolis-Hastings weights for D-PSGD.
	UniformMerge bool
	// ShareParallel overlaps the share step with training, the §III-D
	// "future work" optimization: legal only for raw data sharing (the
	// sample does not depend on this epoch's training result), so it is
	// ignored in model-sharing mode.
	ShareParallel bool
	// FailAt injects permanent crash failures: node id -> epoch at which
	// it stops participating. The paper leaves failure handling to future
	// work (§III-D); the simulator models the oracle-detected case where
	// surviving neighbors simply stop waiting for the dead node.
	FailAt map[int]int
	// Byzantine marks nodes that poison their shared payloads (§IV-E-c:
	// attestation cannot stop poisoned *input data*).
	Byzantine map[int]bool
	// Scenario injects the epoch-level equivalents of the faultnet wire
	// faults: per-edge message drop, delay (virtual seconds added to the
	// arrival), duplication (the copy merges in the same barrier) and
	// reorder (the message joins the next barrier instead), scheduled
	// partitions, and leave/rejoin churn (generalizing FailAt, which
	// remains the permanent-crash special case). Every decision is a pure
	// function of (Scenario.Seed, edge, epoch), so runs stay bit-identical
	// for any Workers count, and Scenario.TimeoutMs charges the live
	// runtime's round-timeout wait whenever an expected message was
	// faulted away. Nil injects nothing.
	Scenario *faultnet.Scenario

	// NewModel constructs node i's initial model. All nodes must start
	// from identical parameters (attestation guarantees identical code),
	// so implementations should seed deterministically and identically.
	NewModel func(id int) model.Model
	// Train/Test hold each node's initial local partition and private
	// test set; both must have Graph.N() entries.
	Train [][]dataset.Rating
	Test  [][]dataset.Rating

	Net     NetParams
	Compute ComputeParams

	// SGX enables the enclave cost model; otherwise nodes run "native".
	SGX     bool
	Enclave enclave.Params
	// AttestSetupSec is charged once per neighbor pair at bootstrap when
	// SGX is on (mutual attestation handshake, §III-A).
	AttestSetupSec float64

	// Heap scales the components of the simulated trusted heap to account
	// for container/allocator overhead of the modeled implementation (the
	// paper's C++/Eigen/JSON stack keeps far more bytes per entry than
	// this package's packed wire formats). Zero values default to 1.
	Heap HeapFactors

	// KeepState retains every node's final model and raw-data store in
	// the Result, letting callers serve recommendations (rank.TopN) or
	// run store-based learners (knn) after the simulation.
	KeepState bool

	// TestEvery computes the RMSE every k epochs (1 = every epoch);
	// skipped epochs report NaN in the series but still charge test time
	// only when evaluated.
	TestEvery int

	// AfterEpoch, when set, is called on the driver goroutine after each
	// epoch's barrier with the epoch index — an observability hook (e.g.
	// host-heap measurement while the engine is resident). It must not
	// mutate simulation state; it has no effect on results.
	AfterEpoch func(epoch int)

	Seed int64
}

// StageTimes are per-epoch mean durations of the four protocol stages
// (virtual seconds) — the quantity behind Figs 5(a), 6(a), 7(a).
type StageTimes struct {
	Merge, Train, Share, Test float64
}

// Total returns the sum of all stages.
func (s StageTimes) Total() float64 { return s.Merge + s.Train + s.Share + s.Test }

func (s StageTimes) add(o StageTimes) StageTimes {
	return StageTimes{s.Merge + o.Merge, s.Train + o.Train, s.Share + o.Share, s.Test + o.Test}
}

func (s StageTimes) scale(f float64) StageTimes {
	return StageTimes{s.Merge * f, s.Train * f, s.Share * f, s.Test * f}
}

// EpochStats is one row of the result series.
type EpochStats struct {
	Epoch int
	// MeanRMSE is the nodes' mean test error after this epoch (NaN when
	// evaluation was skipped by TestEvery).
	MeanRMSE float64
	// TimeMean/TimeMax are node virtual clocks at the end of the epoch.
	TimeMean, TimeMax float64
	// BytesPerNode is the mean cumulative network volume (in+out) per
	// node up to and including this epoch — Fig 2 row 1.
	BytesPerNode float64
	// EpochBytesPerNode is the mean volume exchanged during this epoch
	// alone, per node alive this epoch — Fig 3 column 3 and Fig 5(b).
	EpochBytesPerNode float64
	// Stage holds this epoch's mean stage durations over alive nodes.
	Stage StageTimes
}

// Result aggregates a run.
type Result struct {
	Series []EpochStats
	// FinalRMSE is the last evaluated mean RMSE.
	FinalRMSE float64
	// TotalTimeMean/Max are the final virtual clocks.
	TotalTimeMean, TotalTimeMax float64
	// BytesPerNode is the mean total in+out volume per node.
	BytesPerNode float64
	// Stage is the mean per-epoch stage breakdown over the whole run.
	Stage StageTimes
	// PeakHeapBytes is the maximum simulated trusted-heap across nodes
	// (model + store + in-flight buffers) — the RAM column of Table IV.
	PeakHeapBytes int64
	// MeanHeapBytes averages nodes' peak heaps.
	MeanHeapBytes float64
	// Attestations counts mutual attestation handshakes performed.
	Attestations int
	// FailedNodes counts nodes that crashed during the run.
	FailedNodes int
	// Faults aggregates injected scenario faults; FaultLog lists every
	// injection in canonical order — two runs of the same (Config, seed)
	// produce identical logs, which the scenario conformance suite
	// asserts.
	Faults   faultnet.Counts
	FaultLog []faultnet.Event
	// Models/Stores hold each node's final model and raw-data store when
	// Config.KeepState is set (nil otherwise).
	Models []model.Model
	Stores [][]dataset.Rating
}

// TimeToRMSE returns the first virtual time (mean clock) at which the mean
// RMSE dropped to target or below, and true if reached — the measurement
// behind Tables II and III.
func (r *Result) TimeToRMSE(target float64) (float64, bool) {
	for _, e := range r.Series {
		if !math.IsNaN(e.MeanRMSE) && e.MeanRMSE <= target {
			return e.TimeMean, true
		}
	}
	return 0, false
}

// HeapFactors scale heap components: Model applies to model parameters,
// Store to raw ratings (train store + test set), Buffer to per-epoch
// message buffers (received copies and outbound serializations).
type HeapFactors struct {
	Model, Store, Buffer float64
}

func (h HeapFactors) orDefault() HeapFactors {
	if h.Model == 0 {
		h.Model = 1
	}
	if h.Store == 0 {
		h.Store = 1
	}
	if h.Buffer == 0 {
		h.Buffer = 1
	}
	return h
}

// PaperHeapFactors approximate the paper implementation's memory overhead
// (Eigen sparse containers, STL maps, JSON serialization buffers) relative
// to this package's packed formats; calibrated against the RAM column of
// Table IV (see EXPERIMENTS.md).
func PaperHeapFactors() HeapFactors { return HeapFactors{Model: 8, Store: 2, Buffer: 16} }

// message is an in-flight gossip payload.
type message struct {
	payload core.Payload
	arrival float64 // virtual receive time
	bytes   int
}

// nodeHeap computes the simulated trusted-heap footprint of a node given
// the heap factors and this epoch's transient buffer bytes.
func nodeHeap(n *core.Node, f HeapFactors, bufferBytes int) int64 {
	modelB := float64(n.Model.WireSize()) * f.Model
	storeB := float64(n.Store.Bytes()+len(n.Test)*dataset.EncodedSize) * f.Store
	bufB := float64(bufferBytes) * f.Buffer
	return int64(modelB + storeB + bufB)
}
