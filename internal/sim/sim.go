package sim

import (
	"fmt"
	"math"

	"rex/internal/attest"
	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/enclave"
	"rex/internal/gossip"
	"rex/internal/model"
	"rex/internal/topology"
)

// Config describes one simulated run.
type Config struct {
	Graph *topology.Graph
	// Topology, when set, supplies the communication graph for each epoch
	// (same node count as Graph), enabling dynamic overlays such as a
	// peer-sampling service re-sampled between rounds. The Algorithm 2
	// barrier still holds: a node trains once every message addressed to
	// it in the previous epoch has arrived.
	Topology func(epoch int) *topology.Graph
	Algo     gossip.Algo
	Mode     core.Mode

	Epochs        int
	StepsPerEpoch int // fixed SGD steps per epoch (§III-E); <=0 = full pass
	SharePoints   int // raw points sampled per epoch in REX mode

	// UniformMerge is the §III-C2 ablation: naive uniform averaging in
	// place of Metropolis-Hastings weights for D-PSGD.
	UniformMerge bool
	// ShareParallel overlaps the share step with training, the §III-D
	// "future work" optimization: legal only for raw data sharing (the
	// sample does not depend on this epoch's training result), so it is
	// ignored in model-sharing mode.
	ShareParallel bool
	// FailAt injects permanent crash failures: node id -> epoch at which
	// it stops participating. The paper leaves failure handling to future
	// work (§III-D); the simulator models the oracle-detected case where
	// surviving neighbors simply stop waiting for the dead node.
	FailAt map[int]int
	// Byzantine marks nodes that poison their shared payloads (§IV-E-c:
	// attestation cannot stop poisoned *input data*).
	Byzantine map[int]bool

	// NewModel constructs node i's initial model. All nodes must start
	// from identical parameters (attestation guarantees identical code),
	// so implementations should seed deterministically and identically.
	NewModel func(id int) model.Model
	// Train/Test hold each node's initial local partition and private
	// test set; both must have Graph.N() entries.
	Train [][]dataset.Rating
	Test  [][]dataset.Rating

	Net     NetParams
	Compute ComputeParams

	// SGX enables the enclave cost model; otherwise nodes run "native".
	SGX     bool
	Enclave enclave.Params
	// AttestSetupSec is charged once per neighbor pair at bootstrap when
	// SGX is on (mutual attestation handshake, §III-A).
	AttestSetupSec float64

	// Heap scales the components of the simulated trusted heap to account
	// for container/allocator overhead of the modeled implementation (the
	// paper's C++/Eigen/JSON stack keeps far more bytes per entry than
	// this package's packed wire formats). Zero values default to 1.
	Heap HeapFactors

	// KeepState retains every node's final model and raw-data store in
	// the Result, letting callers serve recommendations (rank.TopN) or
	// run store-based learners (knn) after the simulation.
	KeepState bool

	// TestEvery computes the RMSE every k epochs (1 = every epoch);
	// skipped epochs report NaN in the series but still charge test time
	// only when evaluated.
	TestEvery int

	Seed int64
}

// StageTimes are per-epoch mean durations of the four protocol stages
// (virtual seconds) — the quantity behind Figs 5(a), 6(a), 7(a).
type StageTimes struct {
	Merge, Train, Share, Test float64
}

// Total returns the sum of all stages.
func (s StageTimes) Total() float64 { return s.Merge + s.Train + s.Share + s.Test }

func (s StageTimes) add(o StageTimes) StageTimes {
	return StageTimes{s.Merge + o.Merge, s.Train + o.Train, s.Share + o.Share, s.Test + o.Test}
}

func (s StageTimes) scale(f float64) StageTimes {
	return StageTimes{s.Merge * f, s.Train * f, s.Share * f, s.Test * f}
}

// EpochStats is one row of the result series.
type EpochStats struct {
	Epoch int
	// MeanRMSE is the nodes' mean test error after this epoch (NaN when
	// evaluation was skipped by TestEvery).
	MeanRMSE float64
	// TimeMean/TimeMax are node virtual clocks at the end of the epoch.
	TimeMean, TimeMax float64
	// BytesPerNode is the mean cumulative network volume (in+out) per
	// node up to and including this epoch — Fig 2 row 1.
	BytesPerNode float64
	// EpochBytesPerNode is the mean volume exchanged during this epoch
	// alone — Fig 3 column 3 and Fig 5(b).
	EpochBytesPerNode float64
	// Stage holds this epoch's mean stage durations.
	Stage StageTimes
}

// Result aggregates a run.
type Result struct {
	Series []EpochStats
	// FinalRMSE is the last evaluated mean RMSE.
	FinalRMSE float64
	// TotalTimeMean/Max are the final virtual clocks.
	TotalTimeMean, TotalTimeMax float64
	// BytesPerNode is the mean total in+out volume per node.
	BytesPerNode float64
	// Stage is the mean per-epoch stage breakdown over the whole run.
	Stage StageTimes
	// PeakHeapBytes is the maximum simulated trusted-heap across nodes
	// (model + store + in-flight buffers) — the RAM column of Table IV.
	PeakHeapBytes int64
	// MeanHeapBytes averages nodes' peak heaps.
	MeanHeapBytes float64
	// Attestations counts mutual attestation handshakes performed.
	Attestations int
	// FailedNodes counts nodes that crashed during the run.
	FailedNodes int
	// Models/Stores hold each node's final model and raw-data store when
	// Config.KeepState is set (nil otherwise).
	Models []model.Model
	Stores [][]dataset.Rating
}

// TimeToRMSE returns the first virtual time (mean clock) at which the mean
// RMSE dropped to target or below, and true if reached — the measurement
// behind Tables II and III.
func (r *Result) TimeToRMSE(target float64) (float64, bool) {
	for _, e := range r.Series {
		if !math.IsNaN(e.MeanRMSE) && e.MeanRMSE <= target {
			return e.TimeMean, true
		}
	}
	return 0, false
}

// HeapFactors scale heap components: Model applies to model parameters,
// Store to raw ratings (train store + test set), Buffer to per-epoch
// message buffers (received copies and outbound serializations).
type HeapFactors struct {
	Model, Store, Buffer float64
}

func (h HeapFactors) orDefault() HeapFactors {
	if h.Model == 0 {
		h.Model = 1
	}
	if h.Store == 0 {
		h.Store = 1
	}
	if h.Buffer == 0 {
		h.Buffer = 1
	}
	return h
}

// PaperHeapFactors approximate the paper implementation's memory overhead
// (Eigen sparse containers, STL maps, JSON serialization buffers) relative
// to this package's packed formats; calibrated against the RAM column of
// Table IV (see EXPERIMENTS.md).
func PaperHeapFactors() HeapFactors { return HeapFactors{Model: 8, Store: 2, Buffer: 16} }

// message is an in-flight gossip payload.
type message struct {
	payload core.Payload
	arrival float64 // virtual receive time
	bytes   int
}

// Run executes the configured network and returns its metrics. The run is
// deterministic in Config.Seed.
func Run(cfg Config) (*Result, error) {
	n := cfg.Graph.N()
	if len(cfg.Train) != n || len(cfg.Test) != n {
		return nil, fmt.Errorf("sim: partitions (%d train, %d test) do not match %d nodes",
			len(cfg.Train), len(cfg.Test), n)
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("sim: epochs must be positive")
	}
	if cfg.TestEvery <= 0 {
		cfg.TestEvery = 1
	}
	if cfg.Net.BandwidthBps == 0 {
		cfg.Net = DefaultNet()
	}
	if cfg.SGX && cfg.Enclave.EPCBytes == 0 {
		cfg.Enclave = enclave.DefaultParams()
	}

	heapF := cfg.Heap.orDefault()
	meas := attest.MeasureCode([]byte("rex-enclave-v1"))
	nodes := make([]*core.Node, n)
	encl := make([]*enclave.Enclave, n)
	clocks := make([]float64, n)
	inbox := make([][]message, n)
	cumBytes := make([]float64, n) // in+out per node
	res := &Result{}

	for i := 0; i < n; i++ {
		nodes[i] = core.NewNode(core.Config{
			ID:            i,
			Mode:          cfg.Mode,
			Algo:          cfg.Algo,
			StepsPerEpoch: cfg.StepsPerEpoch,
			SharePoints:   cfg.SharePoints,
			Seed:          cfg.Seed,
			UniformMerge:  cfg.UniformMerge,
			Byzantine:     cfg.Byzantine[i],
		}, cfg.NewModel(i), cfg.Train[i], cfg.Test[i])
		encl[i] = enclave.New(meas, cfg.Enclave, cfg.SGX)
		encl[i].SetHeap(nodeHeap(nodes[i], heapF, 0))
		if cfg.SGX {
			// Mutual attestation with every neighbor before any data
			// flows (§III-A); pairs overlap, so charge per neighbor.
			d := cfg.Graph.Degree(i)
			clocks[i] = cfg.AttestSetupSec * float64(d)
			res.Attestations += d
		}
	}
	res.Attestations /= 2 // counted from both endpoints

	cp := cfg.Compute
	secPerFlop := cp.SecPerFlop
	if secPerFlop == 0 {
		secPerFlop = 1e-9
	}

	series := make([]EpochStats, 0, cfg.Epochs)
	var stageSum StageTimes
	peakHeapPerNode := make([]int64, n)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}

	for e := 0; e < cfg.Epochs; e++ {
		graph := cfg.Graph
		if cfg.Topology != nil {
			if g := cfg.Topology(e); g != nil && g.N() == n {
				graph = g
			}
		}
		// Crash the nodes scheduled to fail this epoch (oracle failure
		// detection: neighbors immediately stop expecting their traffic).
		for id, at := range cfg.FailAt {
			if at == e && id >= 0 && id < n && alive[id] {
				alive[id] = false
				res.FailedNodes++
			}
		}
		var epochStage StageTimes
		var epochBytes float64
		outgoing := make([][]message, n) // staged deliveries, applied after the epoch

		for i := 0; i < n; i++ {
			if !alive[i] {
				inbox[i] = nil // a dead node consumes nothing
				continue
			}
			node := nodes[i]
			enc := encl[i]
			deg := graph.Degree(i)

			// --- gather inputs and the epoch start time ---
			// Algorithm 2 line 13: a node is ready to train when it has
			// received a message (possibly empty) from all its neighbors.
			// The barrier applies to RMW too — only the payload placement
			// differs (one random neighbor gets content, the rest get
			// empty notifications).
			var inputs []message
			start := clocks[i]
			if e > 0 {
				inputs = inbox[i]
				inbox[i] = nil
				for _, m := range inputs {
					if m.arrival > start {
						start = m.arrival
					}
				}
			}

			// --- merge (Alg. 2 lines 15-16) ---
			payloads := make([]core.Payload, len(inputs))
			inBytes := 0
			for k, m := range inputs {
				payloads[k] = m.payload
				inBytes += m.bytes
			}
			st := node.Merge(payloads, deg)
			var mergeFlops float64
			if cfg.Mode == core.ModelSharing {
				for _, p := range payloads {
					if p.Model != nil {
						mergeFlops += float64(p.Model.ParamCount()) * cp.MergeFlopsPerParam
					}
				}
			} else {
				mergeFlops = float64(st.PointsAppended+st.PointsDuplicate) * cp.AppendFlopsPerPoint
			}
			mergeT := mergeFlops * secPerFlop * enc.MemFactor()
			// Receiving under SGX: one ecall plus traffic decryption per message.
			for _, m := range inputs {
				mergeT += enc.ECall(m.bytes).Seconds() + enc.CryptoTime(m.bytes).Seconds()
			}

			// --- train (Alg. 2 line 17) ---
			trainT := float64(node.Train()) * cp.TrainStepFlops * secPerFlop * enc.ComputeFactor()

			// --- share (Alg. 2 lines 18-20) ---
			// The payload goes to the scheme's targets (one random
			// neighbor under RMW, everyone under D-PSGD); all remaining
			// neighbors receive an empty notification that keeps the
			// barrier advancing.
			neighbors := graph.Neighbors(i)
			payloadTo := gossip.Targets(cfg.Algo, graph, i, node.RNG())
			isPayload := make(map[int]bool, len(payloadTo))
			for _, t := range payloadTo {
				isPayload[t] = true
			}
			var shareT float64
			var outBytes int
			if len(neighbors) > 0 {
				payload := node.Share(deg, cfg.Mode == core.ModelSharing)
				empty := core.Payload{From: i, Degree: deg}
				wire := core.PayloadWireSize(payload)
				emptyWire := core.PayloadWireSize(empty)
				for _, t := range neighbors {
					w := emptyWire
					if isPayload[t] {
						w = wire
					}
					shareT += float64(w) * cp.SerializeSecPerByte * enc.MemFactor()
					shareT += enc.CryptoTime(w).Seconds()
					shareT += enc.OCall(w).Seconds()
					shareT += enc.NativeAllocTime(w).Seconds()
					outBytes += w
				}
				sendDone := start + mergeT + trainT + shareT
				if cfg.ShareParallel && cfg.Mode == core.DataSharing {
					// Sampling the pre-train store and shipping it can
					// overlap training (§III-D): dispatch right after the
					// merge; the share cost itself rides the wire path.
					sendDone = start + mergeT + shareT
				}
				for _, t := range neighbors {
					if !alive[t] {
						continue // oracle: no traffic to crashed peers
					}
					pl, w := empty, emptyWire
					if isPayload[t] {
						pl, w = payload, wire
					}
					outgoing[t] = append(outgoing[t], message{
						payload: pl,
						arrival: sendDone + cfg.Net.LatencySec + float64(w)/cfg.Net.BandwidthBps,
						bytes:   w,
					})
				}
			}

			// --- test (Alg. 2 line 21) ---
			var testT float64
			if (e+1)%cfg.TestEvery == 0 || e == cfg.Epochs-1 {
				testT = float64(len(node.Test)) * cp.TestFlopsPerExample * secPerFlop * enc.ComputeFactor()
			}

			elapsed := mergeT + trainT + shareT + testT
			if cfg.ShareParallel && cfg.Mode == core.DataSharing && shareT < trainT {
				elapsed = mergeT + trainT + testT // share hidden under training
			}
			clocks[i] = start + elapsed
			cumBytes[i] += float64(inBytes + outBytes)
			epochBytes += float64(inBytes + outBytes)
			epochStage = epochStage.add(StageTimes{mergeT, trainT, shareT, testT})

			// Heap: persistent state plus this epoch's transient buffers
			// (received copies during merge + outbound serialization).
			heap := nodeHeap(node, heapF, inBytes+outBytes)
			enc.SetHeap(heap)
			if heap > peakHeapPerNode[i] {
				peakHeapPerNode[i] = heap
			}
		}

		// Deliver this epoch's messages.
		for t := range outgoing {
			inbox[t] = append(inbox[t], outgoing[t]...)
		}

		// --- record epoch stats ---
		stat := EpochStats{Epoch: e, MeanRMSE: math.NaN()}
		if (e+1)%cfg.TestEvery == 0 || e == cfg.Epochs-1 {
			var sum float64
			cnt := 0
			for ni, nd := range nodes {
				if len(nd.Test) == 0 || !alive[ni] {
					continue
				}
				sum += nd.TestRMSE()
				cnt++
			}
			if cnt > 0 {
				stat.MeanRMSE = sum / float64(cnt)
				res.FinalRMSE = stat.MeanRMSE
			}
		}
		var tm, tmax, bsum float64
		for i := 0; i < n; i++ {
			tm += clocks[i]
			if clocks[i] > tmax {
				tmax = clocks[i]
			}
			bsum += cumBytes[i]
		}
		stat.TimeMean = tm / float64(n)
		stat.TimeMax = tmax
		stat.BytesPerNode = bsum / float64(n)
		stat.EpochBytesPerNode = epochBytes / float64(n)
		stat.Stage = epochStage.scale(1 / float64(n))
		stageSum = stageSum.add(stat.Stage)
		series = append(series, stat)
	}

	res.Series = series
	last := series[len(series)-1]
	res.TotalTimeMean = last.TimeMean
	res.TotalTimeMax = last.TimeMax
	res.BytesPerNode = last.BytesPerNode
	res.Stage = stageSum.scale(1 / float64(cfg.Epochs))
	var heapSum float64
	for i := 0; i < n; i++ {
		if peakHeapPerNode[i] > res.PeakHeapBytes {
			res.PeakHeapBytes = peakHeapPerNode[i]
		}
		heapSum += float64(peakHeapPerNode[i])
	}
	res.MeanHeapBytes = heapSum / float64(n)
	if cfg.KeepState {
		res.Models = make([]model.Model, n)
		res.Stores = make([][]dataset.Rating, n)
		for i, nd := range nodes {
			res.Models[i] = nd.Model
			res.Stores[i] = nd.Store.Snapshot()
		}
	}
	return res, nil
}

// nodeHeap computes the simulated trusted-heap footprint of a node given
// the heap factors and this epoch's transient buffer bytes.
func nodeHeap(n *core.Node, f HeapFactors, bufferBytes int) int64 {
	modelB := float64(n.Model.WireSize()) * f.Model
	storeB := float64(n.Store.Bytes()+len(n.Test)*dataset.EncodedSize) * f.Store
	bufB := float64(bufferBytes) * f.Buffer
	return int64(modelB + storeB + bufB)
}
