package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"math/rand"
	"testing"

	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/faultnet"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/nn"
	"rex/internal/topology"
)

// goldenParts builds deterministic per-node train/test partitions without
// the movielens generator, so the hashes below depend only on this package
// and the model implementations.
func goldenParts(seed int64, nodes, perNode int) (train, test [][]dataset.Rating) {
	rng := rand.New(rand.NewSource(seed))
	train = make([][]dataset.Rating, nodes)
	test = make([][]dataset.Rating, nodes)
	for i := 0; i < nodes; i++ {
		mk := func(n int) []dataset.Rating {
			out := make([]dataset.Rating, n)
			for j := range out {
				out[j] = dataset.Rating{
					User:  uint32(rng.Intn(nodes * 3)),
					Item:  uint32(rng.Intn(nodes * 7)),
					Value: float32(rng.Intn(9)+1) / 2,
				}
			}
			return out
		}
		train[i] = mk(perNode)
		test[i] = mk(perNode / 3)
	}
	return train, test
}

// resultDigest hashes every externally observable number a Result carries:
// the full per-epoch series (RMSE, clocks, traffic, stage times), the run
// aggregates, the heap accounting and the fault counters. Two Results with
// equal digests went through bit-identical trajectories AND bit-identical
// cost/heap accounting.
func resultDigest(res *Result) string {
	h := sha256.New()
	le := binary.LittleEndian
	put := func(f float64) {
		var b [8]byte
		le.PutUint64(b[:], math.Float64bits(f))
		h.Write(b[:])
	}
	puti := func(v int64) {
		var b [8]byte
		le.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	for _, e := range res.Series {
		puti(int64(e.Epoch))
		put(e.MeanRMSE)
		put(e.TimeMean)
		put(e.TimeMax)
		put(e.BytesPerNode)
		put(e.EpochBytesPerNode)
		put(e.Stage.Merge)
		put(e.Stage.Train)
		put(e.Stage.Share)
		put(e.Stage.Test)
	}
	put(res.FinalRMSE)
	put(res.TotalTimeMean)
	put(res.TotalTimeMax)
	put(res.BytesPerNode)
	puti(res.PeakHeapBytes)
	put(res.MeanHeapBytes)
	puti(int64(res.Attestations))
	puti(int64(res.FailedNodes))
	puti(int64(res.Faults.Dropped + res.Faults.Delayed + res.Faults.Duplicated +
		res.Faults.Reordered + res.Faults.PartitionDrops + res.Faults.Leaves + res.Faults.Rejoins))
	puti(int64(len(res.FaultLog)))
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenSimTrajectories pins the simulator's end-to-end results —
// learning trajectories, virtual-time cost model, traffic and heap
// accounting — as SHA-256 digests recorded from the dense-table,
// materialized-topology implementation. Structural rework of the engine
// (sparse model tables, pooled epoch state, streamed topologies) must
// reproduce every digest bit for bit; a mismatch is a results change and
// must be owned loudly.
func TestGoldenSimTrajectories(t *testing.T) {
	graph := topology.SmallWorld(24, 4, 0.2, rand.New(rand.NewSource(5)))
	trainMF, testMF := goldenParts(11, 24, 40)
	mfModel := func(id int) model.Model { return mf.New(mf.DefaultConfig()) }

	base := Config{
		Graph:         graph,
		Epochs:        30,
		StepsPerEpoch: 60,
		SharePoints:   20,
		NewModel:      mfModel,
		Train:         trainMF,
		Test:          testMF,
		TestEvery:     1,
		Seed:          9,
	}

	cases := []struct {
		name string
		mut  func(c *Config)
		want string
	}{
		{"ds-dpsgd", func(c *Config) { c.Mode = core.DataSharing; c.Algo = gossip.DPSGD }, goldenDSDPSGD},
		{"ds-rmw", func(c *Config) { c.Mode = core.DataSharing; c.Algo = gossip.RMW }, goldenDSRMW},
		{"ms-dpsgd", func(c *Config) { c.Mode = core.ModelSharing; c.Algo = gossip.DPSGD }, goldenMSDPSGD},
		{"ms-rmw", func(c *Config) { c.Mode = core.ModelSharing; c.Algo = gossip.RMW }, goldenMSRMW},
		{"ms-dpsgd-faults", func(c *Config) {
			c.Mode = core.ModelSharing
			c.Algo = gossip.DPSGD
			c.FailAt = map[int]int{3: 5}
			c.Byzantine = map[int]bool{2: true}
		}, goldenMSFaults},
		{"ds-dpsgd-shareparallel-sgx", func(c *Config) {
			c.Mode = core.DataSharing
			c.Algo = gossip.DPSGD
			c.ShareParallel = true
			c.SGX = true
			c.AttestSetupSec = 0.25
			c.Heap = PaperHeapFactors()
		}, goldenDSSGX},
		{"ds-dpsgd-scenario", func(c *Config) {
			c.Mode = core.DataSharing
			c.Algo = gossip.DPSGD
			c.Scenario = &faultnet.Scenario{
				Name: "golden", Seed: 77,
				Drop: 0.08, Delay: 0.1, DelayMs: 5, DelayJitterMs: 35,
				Duplicate: 0.05, Reorder: 0.05, TimeoutMs: 50,
			}
		}, goldenDSScenario},
		{"ms-dpsgd-uniform", func(c *Config) {
			c.Mode = core.ModelSharing
			c.Algo = gossip.DPSGD
			c.UniformMerge = true
		}, goldenMSUniform},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := resultDigest(res); got != tc.want {
				t.Errorf("sim trajectory diverged:\n got %s\nwant %s", got, tc.want)
			}
		})
	}

	t.Run("nn-ms-dpsgd", func(t *testing.T) {
		trainNN, testNN := goldenParts(13, 8, 24)
		ncfg := nn.Config{
			NumUsers: 24, NumItems: 56, EmbDim: 4, Hidden: []int{8},
			DropoutEmb: 0.02, DropoutHidden: 0.15,
			LearningRate: 1e-3, WeightDecay: 1e-5, BatchSize: 8, Seed: 3,
		}
		cfg := Config{
			Graph:         topology.SmallWorld(8, 2, 0.3, rand.New(rand.NewSource(6))),
			Mode:          core.ModelSharing,
			Algo:          gossip.DPSGD,
			Epochs:        8,
			StepsPerEpoch: 4,
			NewModel:      func(id int) model.Model { return nn.NewNet(ncfg) },
			Train:         trainNN,
			Test:          testNN,
			TestEvery:     1,
			Seed:          17,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := resultDigest(res); got != goldenNNMS {
			t.Errorf("nn sim trajectory diverged:\n got %s\nwant %s", got, goldenNNMS)
		}
	})
}

// Golden digests recorded from the dense-table implementation (PR 7 tree),
// before the sparse-table/pooled-state/streamed-topology rework.
const (
	goldenDSDPSGD    = "85a353ce993af57607f3c6fdd447acf1a13d537769889cb57baf04c6f36f431a"
	goldenDSRMW      = "4c2f945b693f29ef0418f5877a2659900cad09b3c04ebc1e8cca90027c746a35"
	goldenMSDPSGD    = "ff65f9970377bfde5b8ccb5aa3a9fb621f2da8e36ef3105fe9135bcabd799626"
	goldenMSRMW      = "d1009e7f76c6e66141f276ba2fc0f922a3b5878469cea2aaedc9f3e25d986e40"
	goldenMSFaults   = "157494160852d0e424e4031e4f2c30da85b82290a52dac80b755a553fe927dcb"
	goldenDSSGX      = "c587f6e28b971f8acb1fa54d07249f1829c253394d0bb32b028a614f7a87d145"
	goldenDSScenario = "fe88f624784706dd319ba11b8ad55db4f2d7da77d37a650fdba0156550ea51bf"
	goldenMSUniform  = "5adb36a8aef6431dd0ee3ed0009a85f29cfc6b244daf62206de2647143b8e40b"
	goldenNNMS       = "9d88cfbec69cece258e5168f86b4ef93c583d0541a2ab18334da683da70eef29"
)
