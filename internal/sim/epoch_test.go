package sim

import (
	"math"
	"math/rand"
	"testing"

	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/topology"
)

// shareParallelConfig builds a perfectly symmetric 2-node, 1-epoch
// data-sharing workload: equal partition and test-set sizes mean both
// nodes have identical merge/train/share/test stage times, so the
// per-alive-node Stage means ARE the per-node values and the epoch clock
// can be reconstructed from them exactly.
func shareParallelConfig(steps int, shareParallel bool) Config {
	rng := rand.New(rand.NewSource(4))
	part := func(userBase int) (train, test []dataset.Rating) {
		for u := 0; u < 10; u++ {
			for it := 0; it < 10; it++ {
				r := dataset.Rating{
					User:  uint32(userBase + u),
					Item:  uint32(it),
					Value: float32(rng.Intn(9)+1) / 2,
				}
				if it < 7 {
					train = append(train, r)
				} else {
					test = append(test, r)
				}
			}
		}
		return train, test
	}
	tr0, te0 := part(0)
	tr1, te1 := part(10)
	mcfg := mf.DefaultConfig()
	cp := MFCompute(mcfg.K)
	// Inflate serialization cost so the share-dominant case dominates by a
	// wide margin even at steps=1.
	cp.SerializeSecPerByte *= 1000
	return Config{
		Graph: topology.FullyConnected(2),
		Algo:  gossip.DPSGD, Mode: core.DataSharing,
		Epochs: 1, StepsPerEpoch: steps, SharePoints: 40,
		ShareParallel: shareParallel,
		NewModel:      func(int) model.Model { return mf.New(mcfg) },
		Train:         [][]dataset.Rating{tr0, tr1},
		Test:          [][]dataset.Rating{te0, te1},
		Compute:       cp,
		TestEvery:     1,
		Seed:          12,
	}
}

// TestShareParallelOverlapCost is the regression test for the cost-model
// wart ROADMAP flagged: with ShareParallel the epoch must cost
// merge + max(train, share) + test in BOTH regimes. The pre-fix code only
// hid the share when shareT < trainT; when shareT >= trainT the sender's
// clock serialized all four stages (while sendDone already modeled the
// overlap), so the share-dominated case below would have reported
// merge+train+share+test. This is an owned results change: ShareParallel
// runs with share-bound epochs now finish earlier than before.
func TestShareParallelOverlapCost(t *testing.T) {
	reconstruct := func(res *Result, overlap bool) float64 {
		st := res.Series[0].Stage
		if !overlap {
			return st.Merge + st.Train + st.Share + st.Test
		}
		longer := st.Train
		if st.Share > longer {
			longer = st.Share
		}
		return st.Merge + longer + st.Test
	}
	check := func(name string, res *Result, overlap bool) {
		t.Helper()
		st := res.Series[0].Stage
		if st.Train <= 0 || st.Share <= 0 {
			t.Fatalf("%s: degenerate stages %+v", name, st)
		}
		want := reconstruct(res, overlap)
		if diff := math.Abs(res.TotalTimeMax - want); diff > 1e-12*want {
			t.Fatalf("%s: TotalTimeMax = %.12g, want %.12g (stages %+v)",
				name, res.TotalTimeMax, want, st)
		}
	}

	// Share-dominant: steps=1 makes trainT tiny next to the inflated
	// serialization cost. The fixed model must charge merge+share+test.
	shareDom, err := Run(shareParallelConfig(1, true))
	if err != nil {
		t.Fatal(err)
	}
	if st := shareDom.Series[0].Stage; st.Share <= st.Train {
		t.Fatalf("workload not share-dominant: %+v", st)
	}
	check("share-dominant overlap", shareDom, true)

	// Train-dominant: many steps; share hides under training as before.
	trainDom, err := Run(shareParallelConfig(200_000, true))
	if err != nil {
		t.Fatal(err)
	}
	if st := trainDom.Series[0].Stage; st.Train <= st.Share {
		t.Fatalf("workload not train-dominant: %+v", st)
	}
	check("train-dominant overlap", trainDom, true)

	// ShareParallel off: all four stages serialize.
	seq, err := Run(shareParallelConfig(1, false))
	if err != nil {
		t.Fatal(err)
	}
	check("sequential", seq, false)

	// And the overlap must actually save time vs the sequential run of
	// the identical workload (equality was the pre-fix symptom).
	if shareDom.TotalTimeMax >= seq.TotalTimeMax {
		t.Fatalf("overlap saved nothing: %v >= %v", shareDom.TotalTimeMax, seq.TotalTimeMax)
	}
}
