// Package sim executes REX networks under deterministic virtual time: real
// training on real (synthetic) data, with per-node clocks advanced by an
// explicit cost model instead of wall time. This reproduces the paper's
// simulated experiments (Figs 1-5, Tables II-III) and, with the enclave
// cost model enabled, its SGX experiments (Figs 6-7, Table IV) — shapes
// and ratios are meaningful, absolute seconds are model outputs.
package sim

// NetParams describe the virtual network links between nodes.
type NetParams struct {
	// LatencySec is the one-way propagation delay per message.
	LatencySec float64
	// BandwidthBps is per-link throughput in bytes per second.
	BandwidthBps float64
}

// DefaultNet returns the profile of decentralized user machines on the
// open internet: 2 ms latency, 10 Mbit/s per-link throughput. REX targets
// exactly this setting — end-user devices gossiping without a datacenter
// backbone — and it is where model sharing's payload sizes hurt most.
func DefaultNet() NetParams {
	return NetParams{LatencySec: 0.002, BandwidthBps: 10e6 / 8}
}

// ComputeParams translate algorithmic work into virtual seconds.
type ComputeParams struct {
	// SecPerFlop converts floating-point operations to seconds.
	SecPerFlop float64
	// TrainStepFlops is the cost of one SGD step (one rating for MF, one
	// minibatch for the DNN).
	TrainStepFlops float64
	// MergeFlopsPerParam is charged per parameter per alien model merged
	// (weighted averaging, Algorithm 2 line 15).
	MergeFlopsPerParam float64
	// AppendFlopsPerPoint is charged per raw data point appended to the
	// store (hash + dedup + insert, Algorithm 2 line 16). The paper notes
	// this is far cheaper than model merging (§IV-C).
	AppendFlopsPerPoint float64
	// TestFlopsPerExample is one prediction's cost during the test step.
	TestFlopsPerExample float64
	// SerializeSecPerByte is the marshalling cost per outgoing byte.
	SerializeSecPerByte float64
}

// MFCompute returns the cost profile of the rank-k MF model (§II-A-b):
// one SGD step touches two embedding rows (~8k flops incl. updates), one
// prediction is a dot product.
func MFCompute(k int) ComputeParams {
	return ComputeParams{
		SecPerFlop: 1e-9,
		// A sparse SGD step is ~8k arithmetic ops plus a large constant
		// of scattered map/sparse-matrix accesses; the constant is
		// calibrated so stage breakdowns have the paper's proportions
		// (train comparable to D-PSGD merge at 8 nodes, Fig 6a).
		TrainStepFlops:      float64(8*k+16) + 30_000,
		MergeFlopsPerParam:  150, // weighted sparse-map merge, ~150ns/param
		AppendFlopsPerPoint: 400, // hash + dedup + insert per raw point
		TestFlopsPerExample: float64(2*k+6) + 1_000,
		SerializeSecPerByte: 10e-9, // ~100 MB/s marshalling
	}
}

// DNNCompute returns the cost profile of the DNN recommender: a training
// step is one minibatch (forward+backward ~6 flops per MLP weight per
// example plus embedding traffic), predictions are single forward passes.
func DNNCompute(mlpParams, embDim, batch int) ComputeParams {
	fwd := float64(2*mlpParams + 4*embDim)
	return ComputeParams{
		SecPerFlop:          1e-9,
		TrainStepFlops:      3 * fwd * float64(batch),
		MergeFlopsPerParam:  150,
		AppendFlopsPerPoint: 400,
		TestFlopsPerExample: fwd,
		SerializeSecPerByte: 10e-9,
	}
}
