package sim

import (
	"math"
	"math/rand"
	"testing"

	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/topology"
)

// buildSmall returns a scaled MovieLens-like workload split across n nodes.
func buildSmall(t testing.TB, n int, seed int64) (train, test [][]dataset.Rating) {
	t.Helper()
	spec := movielens.Latest().Scaled(0.12)
	spec.Seed = seed
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(seed))
	tr, te := ds.SplitPerUser(0.7, rng)
	trainParts, err := tr.PartitionUsersAcross(n, rng)
	if err != nil {
		t.Fatalf("partition train: %v", err)
	}
	testParts, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("partition test: %v", err)
	}
	return trainParts, testParts
}

func smallConfig(t testing.TB, mode core.Mode, algo gossip.Algo) Config {
	t.Helper()
	n := 24
	train, test := buildSmall(t, n, 42)
	rng := rand.New(rand.NewSource(1))
	g := topology.SmallWorld(n, 6, 0.03, rng)
	mcfg := mf.DefaultConfig()
	return Config{
		Graph: g, Algo: algo, Mode: mode,
		Epochs: 40, StepsPerEpoch: 200, SharePoints: 100,
		NewModel: func(id int) model.Model { return mf.New(mcfg) },
		Train:    train, Test: test,
		Compute: MFCompute(mcfg.K),
		Seed:    99,
	}
}

func TestRunConvergesREX(t *testing.T) {
	cfg := smallConfig(t, core.DataSharing, gossip.DPSGD)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Series[0].MeanRMSE
	if math.IsNaN(first) || first <= 0 {
		t.Fatalf("bad initial RMSE %v", first)
	}
	if res.FinalRMSE >= first {
		t.Fatalf("REX did not improve: first %.3f final %.3f", first, res.FinalRMSE)
	}
	if res.FinalRMSE > 1.35 {
		t.Errorf("REX final RMSE too high: %.3f", res.FinalRMSE)
	}
}

func TestRunConvergesMS(t *testing.T) {
	cfg := smallConfig(t, core.ModelSharing, gossip.DPSGD)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Series[0].MeanRMSE
	if res.FinalRMSE >= first {
		t.Fatalf("MS did not improve: first %.3f final %.3f", first, res.FinalRMSE)
	}
}

func TestREXBeatsMSOnTimeAndBytes(t *testing.T) {
	rex, err := Run(smallConfig(t, core.DataSharing, gossip.DPSGD))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Run(smallConfig(t, core.ModelSharing, gossip.DPSGD))
	if err != nil {
		t.Fatal(err)
	}
	if rex.BytesPerNode*5 > ms.BytesPerNode {
		t.Errorf("expected >=5x byte savings: REX %.0f MS %.0f", rex.BytesPerNode, ms.BytesPerNode)
	}
	if rex.TotalTimeMean >= ms.TotalTimeMean {
		t.Errorf("expected REX faster: REX %.3fs MS %.3fs", rex.TotalTimeMean, ms.TotalTimeMean)
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(smallConfig(t, core.DataSharing, gossip.RMW))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(t, core.DataSharing, gossip.RMW))
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalRMSE != b.FinalRMSE || a.TotalTimeMean != b.TotalTimeMean || a.BytesPerNode != b.BytesPerNode {
		t.Errorf("runs with equal seeds diverged: %+v vs %+v", a.FinalRMSE, b.FinalRMSE)
	}
}

func TestSGXSlowerThanNative(t *testing.T) {
	for _, mode := range []core.Mode{core.DataSharing, core.ModelSharing} {
		cfg := smallConfig(t, mode, gossip.DPSGD)
		cfg.Epochs = 15
		native, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg2 := smallConfig(t, mode, gossip.DPSGD)
		cfg2.Epochs = 15
		cfg2.SGX = true
		sgx, err := Run(cfg2)
		if err != nil {
			t.Fatal(err)
		}
		nT := native.Stage.Total()
		sT := sgx.Stage.Total()
		if sT <= nT {
			t.Errorf("%v: SGX epoch (%.4fs) should exceed native (%.4fs)", mode, sT, nT)
		}
		overhead := (sT - nT) / nT
		if mode == core.DataSharing && overhead > 0.6 {
			t.Errorf("REX SGX overhead too large: %.0f%%", overhead*100)
		}
		if sgx.Attestations == 0 {
			t.Error("no attestations recorded in SGX mode")
		}
	}
}

func TestRMWCheaperThanDPSGD(t *testing.T) {
	rmw, err := Run(smallConfig(t, core.ModelSharing, gossip.RMW))
	if err != nil {
		t.Fatal(err)
	}
	dpsgd, err := Run(smallConfig(t, core.ModelSharing, gossip.DPSGD))
	if err != nil {
		t.Fatal(err)
	}
	if rmw.BytesPerNode >= dpsgd.BytesPerNode {
		t.Errorf("RMW unicast should move fewer bytes: %.0f vs %.0f", rmw.BytesPerNode, dpsgd.BytesPerNode)
	}
}
