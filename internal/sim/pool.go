package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// pool is a fixed set of persistent worker goroutines executing
// index-sharded jobs for the engine. Indices are handed out through an
// atomic counter so uneven per-node costs balance across workers; the
// scheduling order cannot affect results because every job writes only
// state owned by its index (see Config.Workers).
type pool struct {
	workers int
	jobs    chan poolJob
}

type poolJob struct {
	n        int
	fn       func(i int)
	next     *atomic.Int64
	wg       *sync.WaitGroup
	panicked *atomic.Pointer[any]
}

// newPool starts a pool of the requested width; w <= 0 selects GOMAXPROCS.
// A width-1 pool spawns no goroutines and runs jobs inline on the caller.
func newPool(w int) *pool {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	p := &pool{workers: w}
	if w > 1 {
		p.jobs = make(chan poolJob)
		for k := 0; k < w; k++ {
			go p.loop()
		}
	}
	return p
}

func (p *pool) loop() {
	for j := range p.jobs {
		j.drain()
	}
}

// drain claims indices until the job is exhausted. A panic in fn is
// captured (first one wins) and re-raised on the caller's goroutine by run,
// so a bug surfaces as a panic rather than a deadlocked WaitGroup.
func (j poolJob) drain() {
	defer j.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			v := r
			j.panicked.CompareAndSwap(nil, &v)
			// Claim the remaining indices so sibling workers finish.
			j.next.Add(int64(j.n))
		}
	}()
	for {
		i := int(j.next.Add(1)) - 1
		if i >= j.n {
			return
		}
		j.fn(i)
	}
}

// run executes fn(i) for every i in [0, n) and returns once all calls have
// completed. fn must only write state owned by index i.
func (p *pool) run(n int, fn func(i int)) {
	if p.workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[any]
	)
	w := p.workers
	if w > n {
		w = n
	}
	wg.Add(w)
	j := poolJob{n: n, fn: fn, next: &next, wg: &wg, panicked: &panicked}
	for k := 0; k < w; k++ {
		p.jobs <- j
	}
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(*pv)
	}
}

// close releases the pool's goroutines; the pool must not be used after.
func (p *pool) close() {
	if p.jobs != nil {
		close(p.jobs)
	}
}
