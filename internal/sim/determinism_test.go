package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"rex/internal/core"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/nn"
	"rex/internal/topology"
)

// tinyConfig builds a quick workload exercising every determinism-relevant
// feature: crashes, Byzantine peers, and an irregular small-world graph.
func tinyConfig(t testing.TB, mode core.Mode, algo gossip.Algo) Config {
	t.Helper()
	n := 16
	train, test := buildSmall(t, n, 7)
	mcfg := mf.DefaultConfig()
	return Config{
		Graph: topology.SmallWorld(n, 4, 0.2, rand.New(rand.NewSource(3))),
		Algo:  algo, Mode: mode,
		Epochs: 18, StepsPerEpoch: 120, SharePoints: 60,
		FailAt:    map[int]int{1: 4, 5: 9},
		Byzantine: map[int]bool{2: true, 7: true},
		NewModel:  func(id int) model.Model { return mf.New(mcfg) },
		Train:     train, Test: test,
		Compute: MFCompute(mcfg.K),
		Seed:    99,
	}
}

// f64bitsEq compares floats byte-for-byte; unlike ==, NaN equals NaN, so
// TestEvery-skipped epochs compare equal too.
func f64bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func stageEq(a, b StageTimes) bool {
	return f64bitsEq(a.Merge, b.Merge) && f64bitsEq(a.Train, b.Train) &&
		f64bitsEq(a.Share, b.Share) && f64bitsEq(a.Test, b.Test)
}

// requireIdentical asserts two results are byte-for-byte identical across
// the series and the aggregate metrics.
func requireIdentical(t testing.TB, a, b *Result) {
	t.Helper()
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series lengths differ: %d vs %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		x, y := a.Series[i], b.Series[i]
		ok := x.Epoch == y.Epoch &&
			f64bitsEq(x.MeanRMSE, y.MeanRMSE) &&
			f64bitsEq(x.TimeMean, y.TimeMean) &&
			f64bitsEq(x.TimeMax, y.TimeMax) &&
			f64bitsEq(x.BytesPerNode, y.BytesPerNode) &&
			f64bitsEq(x.EpochBytesPerNode, y.EpochBytesPerNode) &&
			stageEq(x.Stage, y.Stage)
		if !ok {
			t.Fatalf("epoch %d diverged:\n%+v\nvs\n%+v", i, x, y)
		}
	}
	if !f64bitsEq(a.FinalRMSE, b.FinalRMSE) || !f64bitsEq(a.TotalTimeMean, b.TotalTimeMean) ||
		!f64bitsEq(a.TotalTimeMax, b.TotalTimeMax) || !f64bitsEq(a.BytesPerNode, b.BytesPerNode) ||
		!stageEq(a.Stage, b.Stage) || a.PeakHeapBytes != b.PeakHeapBytes ||
		!f64bitsEq(a.MeanHeapBytes, b.MeanHeapBytes) || a.FailedNodes != b.FailedNodes {
		t.Fatalf("aggregates diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestParallelMatchesSequential is the engine's core guarantee: for any
// fixed seed, Workers>1 produces byte-for-byte the same Result as
// Workers=1, across both sharing modes and both dissemination algorithms,
// with crash failures and Byzantine nodes active.
func TestParallelMatchesSequential(t *testing.T) {
	for _, mode := range []core.Mode{core.DataSharing, core.ModelSharing} {
		for _, algo := range []gossip.Algo{gossip.RMW, gossip.DPSGD} {
			t.Run(fmt.Sprintf("%v-%v", mode, algo), func(t *testing.T) {
				seq := tinyConfig(t, mode, algo)
				seq.Workers = 1
				a, err := Run(seq)
				if err != nil {
					t.Fatal(err)
				}
				par := tinyConfig(t, mode, algo)
				par.Workers = 8
				b, err := Run(par)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, a, b)
			})
		}
	}
}

// TestSameSeedSameSeries re-runs an identical config (default worker
// count) and demands an identical series — reproducibility under the
// parallel default.
func TestSameSeedSameSeries(t *testing.T) {
	cfg := tinyConfig(t, core.DataSharing, gossip.DPSGD)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := tinyConfig(t, core.DataSharing, gossip.DPSGD)
	b, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, a, b)
}

// TestSGXParallelMatchesSequential covers the enclave cost model too: the
// per-node Enclave has mutable stats and heap tracking, so this pins down
// that enclave state stays node-local under concurrency.
func TestSGXParallelMatchesSequential(t *testing.T) {
	seq := tinyConfig(t, core.DataSharing, gossip.DPSGD)
	seq.Epochs = 10
	seq.SGX = true
	seq.AttestSetupSec = 0.02
	seq.Workers = 1
	a, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	par := tinyConfig(t, core.DataSharing, gossip.DPSGD)
	par.Epochs = 10
	par.SGX = true
	par.AttestSetupSec = 0.02
	par.Workers = 6
	b, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if a.Attestations == 0 || a.Attestations != b.Attestations {
		t.Fatalf("attestation counts diverged: %d vs %d", a.Attestations, b.Attestations)
	}
	requireIdentical(t, a, b)
}

// TestFailAtStatsUseAliveCount is the regression test for the per-epoch
// divisor bug: Stage and EpochBytesPerNode are means over the nodes alive
// that epoch, so with fixed SGD steps the per-epoch mean train time must
// not drop when half the network crashes (the old code divided by all n,
// halving it).
func TestFailAtStatsUseAliveCount(t *testing.T) {
	cfg := tinyConfig(t, core.DataSharing, gossip.DPSGD)
	cfg.Epochs = 10
	failEpoch := 5
	cfg.FailAt = map[int]int{}
	cfg.Byzantine = nil
	n := cfg.Graph.N()
	for id := 0; id < n/2; id++ {
		cfg.FailAt[id] = failEpoch
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedNodes != n/2 {
		t.Fatalf("FailedNodes = %d, want %d", res.FailedNodes, n/2)
	}
	// Every alive node runs exactly StepsPerEpoch steps per epoch, so the
	// per-alive-node mean train time is the same constant before and
	// after the crashes.
	before := res.Series[failEpoch-1].Stage.Train
	after := res.Series[failEpoch+1].Stage.Train
	if math.Abs(after-before) > 1e-9*before {
		t.Errorf("mean train time changed after crashes: before %.9g after %.9g", before, after)
	}
	// Share time is charged per neighbor regardless of the neighbor's
	// state, so it is also invariant per alive node.
	beforeS := res.Series[failEpoch-1].Stage.Share
	afterS := res.Series[failEpoch+1].Stage.Share
	if math.Abs(afterS-beforeS) > 1e-9*beforeS {
		t.Errorf("mean share time changed after crashes: before %.9g after %.9g", beforeS, afterS)
	}
	if res.Series[failEpoch+1].EpochBytesPerNode <= 0 {
		t.Error("EpochBytesPerNode vanished after crashes")
	}
}

// TestAllNodesCrashedStatsZero pins the degenerate divisor: once every
// node is dead an epoch's means are zero, not NaN.
func TestAllNodesCrashedStatsZero(t *testing.T) {
	cfg := tinyConfig(t, core.DataSharing, gossip.DPSGD)
	cfg.Epochs = 6
	cfg.Byzantine = nil
	cfg.FailAt = map[int]int{}
	for id := 0; id < cfg.Graph.N(); id++ {
		cfg.FailAt[id] = 3
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	late := res.Series[4]
	if math.IsNaN(late.EpochBytesPerNode) || late.EpochBytesPerNode != 0 {
		t.Errorf("EpochBytesPerNode = %v, want 0", late.EpochBytesPerNode)
	}
	if math.IsNaN(late.Stage.Total()) || late.Stage.Total() != 0 {
		t.Errorf("Stage.Total = %v, want 0", late.Stage.Total())
	}
}

// TestDNNParallelMatchesSequential pins the bit-identical contract for the
// DNN recommender too: under D-PSGD model sharing every neighbor merges
// the same nn.Net clone, concurrently when Workers > 1, so this guards
// nn.MergeWeighted (and forward-pass state) staying read-only on payload
// sources — the MF-only suite would miss a regression confined to nn.
func TestDNNParallelMatchesSequential(t *testing.T) {
	run := func(workers int) *Result {
		t.Helper()
		n := 8
		spec := movielens.Latest().Scaled(0.06)
		spec.Seed = 5
		ds := movielens.Generate(spec)
		rng := rand.New(rand.NewSource(5))
		tr, te := ds.SplitPerUser(0.7, rng)
		train, err := tr.PartitionUsersAcross(n, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		test, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		ncfg := nn.DefaultConfig(ds.NumUsers, ds.NumItems)
		ncfg.EmbDim = 4
		ncfg.Hidden = []int{8, 4}
		ncfg.BatchSize = 8
		res, err := Run(Config{
			Graph: topology.SmallWorld(n, 4, 0.2, rand.New(rand.NewSource(2))),
			Algo:  gossip.DPSGD, Mode: core.ModelSharing,
			Epochs: 6, StepsPerEpoch: 20,
			Workers:   workers,
			FailAt:    map[int]int{3: 4},
			Byzantine: map[int]bool{1: true},
			NewModel:  func(int) model.Model { return nn.NewNet(ncfg) },
			Train:     train, Test: test,
			Compute: DNNCompute(100, ncfg.EmbDim, ncfg.BatchSize),
			Seed:    5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	requireIdentical(t, run(1), run(8))
}
