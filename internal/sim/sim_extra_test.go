package sim

import (
	"math"
	"testing"

	"rex/internal/core"
	"rex/internal/gossip"
)

func TestChurnSurvivorsConverge(t *testing.T) {
	cfg := smallConfig(t, core.DataSharing, gossip.DPSGD)
	cfg.FailAt = map[int]int{1: 10, 5: 10, 9: 15}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedNodes != 3 {
		t.Fatalf("failed nodes %d, want 3", res.FailedNodes)
	}
	if math.IsNaN(res.FinalRMSE) || res.FinalRMSE >= res.Series[0].MeanRMSE {
		t.Fatalf("survivors did not converge: %.4f", res.FinalRMSE)
	}
}

func TestChurnAllButOne(t *testing.T) {
	cfg := smallConfig(t, core.DataSharing, gossip.DPSGD)
	cfg.Epochs = 10
	cfg.FailAt = map[int]int{}
	for i := 1; i < cfg.Graph.N(); i++ {
		cfg.FailAt[i] = 3
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedNodes != cfg.Graph.N()-1 {
		t.Fatalf("failed %d", res.FailedNodes)
	}
	// The lone survivor keeps training on its local store.
	if math.IsNaN(res.FinalRMSE) {
		t.Fatal("no RMSE from the survivor")
	}
}

func TestByzantinePoisoningDegrades(t *testing.T) {
	clean, err := Run(smallConfig(t, core.DataSharing, gossip.DPSGD))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(t, core.DataSharing, gossip.DPSGD)
	cfg.Byzantine = map[int]bool{0: true, 3: true, 7: true, 11: true, 15: true, 19: true}
	poisoned, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if poisoned.FinalRMSE <= clean.FinalRMSE {
		t.Fatalf("poisoning did not degrade accuracy: clean %.4f poisoned %.4f",
			clean.FinalRMSE, poisoned.FinalRMSE)
	}
}

func TestByzantineModelSharingDegrades(t *testing.T) {
	clean, err := Run(smallConfig(t, core.ModelSharing, gossip.DPSGD))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(t, core.ModelSharing, gossip.DPSGD)
	cfg.Byzantine = map[int]bool{0: true, 3: true, 7: true, 11: true, 15: true, 19: true}
	poisoned, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if poisoned.FinalRMSE <= clean.FinalRMSE {
		t.Fatalf("model poisoning did not degrade accuracy: %.4f vs %.4f",
			clean.FinalRMSE, poisoned.FinalRMSE)
	}
}

func TestShareParallelNotSlower(t *testing.T) {
	seq, err := Run(smallConfig(t, core.DataSharing, gossip.DPSGD))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(t, core.DataSharing, gossip.DPSGD)
	cfg.ShareParallel = true
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if par.TotalTimeMean > seq.TotalTimeMean {
		t.Fatalf("parallel share slower: %.4f > %.4f", par.TotalTimeMean, seq.TotalTimeMean)
	}
}

func TestShareParallelIgnoredForMS(t *testing.T) {
	seq, err := Run(smallConfig(t, core.ModelSharing, gossip.DPSGD))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(t, core.ModelSharing, gossip.DPSGD)
	cfg.ShareParallel = true
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if par.TotalTimeMean != seq.TotalTimeMean {
		t.Fatal("ShareParallel must be a no-op for model sharing (the share depends on the train result)")
	}
}

func TestHeapFactorsScaleMemory(t *testing.T) {
	base, err := Run(smallConfig(t, core.ModelSharing, gossip.DPSGD))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(t, core.ModelSharing, gossip.DPSGD)
	cfg.Heap = PaperHeapFactors()
	scaled, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.PeakHeapBytes <= base.PeakHeapBytes {
		t.Fatalf("paper heap factors did not grow memory: %d vs %d",
			scaled.PeakHeapBytes, base.PeakHeapBytes)
	}
}

func TestUniformMergeStillConverges(t *testing.T) {
	cfg := smallConfig(t, core.ModelSharing, gossip.DPSGD)
	cfg.UniformMerge = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalRMSE >= res.Series[0].MeanRMSE {
		t.Fatal("uniform-merge ablation diverged")
	}
}

func TestTimeToRMSE(t *testing.T) {
	res, err := Run(smallConfig(t, core.DataSharing, gossip.DPSGD))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.TimeToRMSE(0.01); ok {
		t.Fatal("unreachable target reported reached")
	}
	tm, ok := res.TimeToRMSE(res.Series[0].MeanRMSE) // initial error: reached immediately
	if !ok || tm <= 0 {
		t.Fatalf("initial target: %v %v", tm, ok)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := smallConfig(t, core.DataSharing, gossip.DPSGD)
	cfg.Epochs = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero epochs accepted")
	}
	cfg2 := smallConfig(t, core.DataSharing, gossip.DPSGD)
	cfg2.Train = cfg2.Train[:3]
	if _, err := Run(cfg2); err == nil {
		t.Fatal("partition mismatch accepted")
	}
}

func TestEmptyRMWNotificationsCounted(t *testing.T) {
	// Under RMW every neighbor still gets a (tiny) notification each
	// epoch; bytes must reflect that but stay near the payload volume.
	res, err := Run(smallConfig(t, core.DataSharing, gossip.RMW))
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesPerNode <= 0 {
		t.Fatal("no bytes accounted")
	}
	// Empty notifications are 16B each, payloads ~1.2KB: cumulative bytes
	// must be dominated by payloads (at least half).
	perEpoch := res.BytesPerNode / float64(len(res.Series))
	if perEpoch < 100 {
		t.Fatalf("per-epoch volume %f implausibly small", perEpoch)
	}
}

func TestSGXAttestationSetupCharged(t *testing.T) {
	cfg := smallConfig(t, core.DataSharing, gossip.DPSGD)
	cfg.Epochs = 5
	cfg.SGX = true
	cfg.AttestSetupSec = 1.0 // exaggerated for visibility
	with, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := smallConfig(t, core.DataSharing, gossip.DPSGD)
	cfg2.Epochs = 5
	cfg2.SGX = true
	without, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if with.TotalTimeMean <= without.TotalTimeMean+1 {
		t.Fatalf("attestation setup not charged: %.2f vs %.2f",
			with.TotalTimeMean, without.TotalTimeMean)
	}
}
