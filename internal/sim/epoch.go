package sim

import (
	"math"

	"rex/internal/core"
	"rex/internal/faultnet"
	"rex/internal/gossip"
	"rex/internal/topology"
)

// runEpoch advances every node by one merge-train-share-test round
// (Algorithm 2). Node steps fan out across the worker pool; everything
// order-sensitive — message delivery and the floating-point accumulation of
// epoch statistics — happens afterwards in ascending node-index order,
// exactly as the sequential engine would, so results are bit-identical for
// any Config.Workers.
func (eng *engine) runEpoch(e int) {
	cfg := &eng.cfg
	n := eng.n
	var graph topology.Source = cfg.Graph
	if cfg.Topology != nil {
		if g := cfg.Topology(e); g != nil && g.N() == n {
			graph = g
		}
	}
	// Crash the nodes scheduled to fail this epoch (oracle failure
	// detection: neighbors immediately stop expecting their traffic).
	for id, at := range cfg.FailAt {
		if at == e && id >= 0 && id < n && eng.alive[id] {
			eng.alive[id] = false
			eng.res.FailedNodes++
		}
	}
	// Scenario churn: scheduled leaves and rejoins (FailAt generalized).
	// A rejoining node resumes with the state it left with and an empty
	// inbox; the arrival barrier catches its clock up naturally.
	if sc := cfg.Scenario; sc != nil {
		for _, c := range sc.Churn {
			if c.Node < 0 || c.Node >= n {
				continue
			}
			if c.Leave == e && eng.alive[c.Node] {
				eng.alive[c.Node] = false
				eng.res.FaultLog = append(eng.res.FaultLog,
					faultnet.Event{Epoch: e, From: c.Node, To: c.Node, Kind: faultnet.KindLeave})
			}
			if c.Rejoin == e && c.Rejoin > c.Leave && !eng.alive[c.Node] {
				eng.alive[c.Node] = true
				eng.res.FaultLog = append(eng.res.FaultLog,
					faultnet.Event{Epoch: e, From: c.Node, To: c.Node, Kind: faultnet.KindRejoin})
			}
		}
	}

	// --- parallel section: step every node against the previous epoch's
	// inboxes. A worker writes only results[i] and node-i state; payload
	// models/data from other nodes are read-only here.
	eng.pool.run(n, func(i int) {
		eng.stepNode(e, graph, i, &eng.results[i])
	})

	// --- epoch barrier: deliver staged messages and fold accounting, both
	// in node-index order. Reorder-deferred messages stashed at the
	// previous barrier join first — they are older traffic, delivered one
	// epoch late — then this epoch's deliveries (with its own deferred
	// messages stashed for the next barrier).
	for i := 0; i < n; i++ {
		if len(eng.deferred[i]) > 0 {
			eng.inbox[i] = append(eng.inbox[i], eng.deferred[i]...)
			eng.deferred[i] = eng.deferred[i][:0]
		}
	}
	var epochStage StageTimes
	var epochBytes float64
	aliveCnt := 0
	for i := 0; i < n; i++ {
		if eng.alive[i] {
			aliveCnt++
		}
		r := &eng.results[i]
		epochStage = epochStage.add(r.stage)
		epochBytes += r.bytes
		for _, d := range r.out {
			if d.deferred {
				eng.deferred[d.to] = append(eng.deferred[d.to], d.msg)
			} else {
				eng.inbox[d.to] = append(eng.inbox[d.to], d.msg)
			}
		}
		if len(r.events) > 0 {
			eng.res.FaultLog = append(eng.res.FaultLog, r.events...)
		}
	}

	// --- record epoch stats ---
	stat := EpochStats{Epoch: e, MeanRMSE: math.NaN()}
	if (e+1)%cfg.TestEvery == 0 || e == cfg.Epochs-1 {
		eng.pool.run(n, func(i int) {
			eng.rmseOK[i] = eng.alive[i] && len(eng.nodes[i].Test) > 0
			if eng.rmseOK[i] {
				eng.rmse[i] = eng.nodes[i].TestRMSE()
			}
		})
		var sum float64
		cnt := 0
		for i := 0; i < n; i++ {
			if eng.rmseOK[i] {
				sum += eng.rmse[i]
				cnt++
			}
		}
		if cnt > 0 {
			stat.MeanRMSE = sum / float64(cnt)
			eng.res.FinalRMSE = stat.MeanRMSE
		}
	}
	var tm, tmax, bsum float64
	for i := 0; i < n; i++ {
		tm += eng.clocks[i]
		if eng.clocks[i] > tmax {
			tmax = eng.clocks[i]
		}
		bsum += eng.cumBytes[i]
	}
	stat.TimeMean = tm / float64(n)
	stat.TimeMax = tmax
	stat.BytesPerNode = bsum / float64(n)
	// Per-epoch means are over the nodes alive this epoch: only they did
	// work and moved bytes, and dividing by all n would under-report
	// per-alive-node stage times and traffic after crashes.
	perAlive := float64(aliveCnt)
	if aliveCnt == 0 {
		perAlive = 1 // all crashed: the sums are zero, keep the stats zero
	}
	stat.EpochBytesPerNode = epochBytes / perAlive
	stat.Stage = epochStage.scale(1 / perAlive)
	eng.stageSum = eng.stageSum.add(stat.Stage)
	eng.res.Series = append(eng.res.Series, stat)
	if cfg.AfterEpoch != nil {
		cfg.AfterEpoch(e)
	}
}

// stepNode runs node i's merge-train-share-test round for epoch e. It
// mutates only node-i state (nodes[i], encl[i], clocks[i], cumBytes[i],
// inbox[i], peakHeap[i], the node's pooled scratch) and writes the staged
// deliveries plus this node's epoch accounting into r (reusing r's slices
// from the previous epoch), so concurrent steps never race and the
// steady-state epoch loop stops allocating per-node result storage.
func (eng *engine) stepNode(e int, graph topology.Source, i int, r *nodeResult) {
	r.stage = StageTimes{}
	r.bytes = 0
	r.out = r.out[:0]
	r.events = r.events[:0]
	if !eng.alive[i] {
		eng.inbox[i] = eng.inbox[i][:0] // a dead node consumes nothing
		return
	}
	cfg := &eng.cfg
	cp := cfg.Compute
	node := eng.nodes[i]
	enc := eng.encl[i]
	deg := graph.Degree(i)

	// --- gather inputs and the epoch start time ---
	// Algorithm 2 line 13: a node is ready to train when it has received a
	// message (possibly empty) from all its neighbors. The barrier applies
	// to RMW too — only the payload placement differs (one random neighbor
	// gets content, the rest get empty notifications).
	var inputs []message
	start := eng.clocks[i]
	if e > 0 {
		inputs = eng.inbox[i]
		// Recycle the inbox in place: the barrier appends next epoch's
		// deliveries into the same backing array after this parallel
		// section ends, and `inputs` is only read before then.
		eng.inbox[i] = inputs[:0]
		for _, m := range inputs {
			if m.arrival > start {
				start = m.arrival
			}
		}
	}

	// --- merge (Alg. 2 lines 15-16) ---
	payloads := eng.payloadBuf[i][:0]
	inBytes := 0
	for _, m := range inputs {
		payloads = append(payloads, m.payload)
		inBytes += m.bytes
	}
	eng.payloadBuf[i] = payloads
	st := node.Merge(payloads, deg)
	var mergeFlops float64
	// Cost model for faulted-away traffic: when a message this node
	// expected was dropped (drop fault or partition cut) or deferred to
	// the next barrier (reorder), the live runtime's gather waits out its
	// round timeout before proceeding; charge that wait once per such
	// round as part of the merge stage.
	var timeoutT float64
	if sc := cfg.Scenario; sc != nil && sc.TimeoutMs > 0 && e > 0 {
		for _, j := range graph.Neighbors(i) {
			if sc.Absent(j, e-1) || !eng.alive[j] {
				continue // oracle churn/crash: nothing was expected
			}
			if sc.DropAt(j, i, e-1) || sc.Partitioned(j, i, e-1) || sc.ReorderAt(j, i, e-1) {
				timeoutT = float64(sc.TimeoutMs) / 1e3
				break
			}
		}
	}
	if cfg.Mode == core.ModelSharing {
		for _, p := range payloads {
			if p.Model != nil {
				mergeFlops += float64(p.Model.ParamCount()) * cp.MergeFlopsPerParam
			}
		}
	} else {
		mergeFlops = float64(st.PointsAppended+st.PointsDuplicate) * cp.AppendFlopsPerPoint
	}
	mergeT := mergeFlops*eng.secPerFlop*enc.MemFactor() + timeoutT
	// Receiving under SGX: one ecall plus traffic decryption per message.
	for _, m := range inputs {
		mergeT += enc.ECall(m.bytes).Seconds() + enc.CryptoTime(m.bytes).Seconds()
	}

	// --- train (Alg. 2 line 17) ---
	trainT := float64(node.Train()) * cp.TrainStepFlops * eng.secPerFlop * enc.ComputeFactor()

	// --- share (Alg. 2 lines 18-20) ---
	// The payload goes to the scheme's targets (one random neighbor under
	// RMW, everyone under D-PSGD); all remaining neighbors receive an
	// empty notification that keeps the barrier advancing.
	neighbors := graph.Neighbors(i)
	payloadTo := gossip.TargetsAppend(eng.targetBuf[i][:0], cfg.Algo, graph, i, node.RNG())
	eng.targetBuf[i] = payloadTo
	// Payload targets are 1 (RMW) or deg (D-PSGD) entries: a linear scan
	// beats the per-epoch map the previous implementation allocated here.
	isPayload := func(t int) bool {
		for _, p := range payloadTo {
			if p == t {
				return true
			}
		}
		return false
	}
	var shareT float64
	var outBytes int
	if len(neighbors) > 0 {
		// retained=true: the payload is read by receivers at the next one
		// or two epoch barriers, so both modes draw from the node's pooled
		// depth-3 share rotation instead of allocating per epoch.
		payload := node.Share(deg, true)
		empty := core.Payload{From: i, Degree: deg}
		wire := core.PayloadWireSize(payload)
		emptyWire := core.PayloadWireSize(empty)
		for _, t := range neighbors {
			w := emptyWire
			if isPayload(t) {
				w = wire
			}
			shareT += float64(w) * cp.SerializeSecPerByte * enc.MemFactor()
			shareT += enc.CryptoTime(w).Seconds()
			shareT += enc.OCall(w).Seconds()
			shareT += enc.NativeAllocTime(w).Seconds()
			outBytes += w
		}
		sendDone := start + mergeT + trainT + shareT
		if cfg.ShareParallel && cfg.Mode == core.DataSharing {
			// Sampling the pre-train store and shipping it can overlap
			// training (§III-D): dispatch right after the merge; the
			// share cost itself rides the wire path.
			sendDone = start + mergeT + shareT
		}
		sc := cfg.Scenario
		for _, t := range neighbors {
			if !eng.alive[t] {
				continue // oracle: no traffic to crashed peers
			}
			pl, w := empty, emptyWire
			if isPayload(t) {
				pl, w = payload, wire
			}
			msg := message{
				payload: pl,
				arrival: sendDone + cfg.Net.LatencySec + float64(w)/cfg.Net.BandwidthBps,
				bytes:   w,
			}
			if sc == nil {
				r.out = append(r.out, delivery{to: t, msg: msg})
				continue
			}
			// Wire faults, in the same order the live wrapper applies
			// them: partition cut, drop, delay, reorder, duplicate. Events
			// go into the node's result and are folded in node-index
			// order at the barrier, keeping the log deterministic for any
			// Workers count.
			if sc.Partitioned(i, t, e) {
				r.events = append(r.events, faultnet.Event{Epoch: e, From: i, To: t, Kind: faultnet.KindPartition})
				continue
			}
			if sc.DropAt(i, t, e) {
				r.events = append(r.events, faultnet.Event{Epoch: e, From: i, To: t, Kind: faultnet.KindDrop})
				continue
			}
			if d, ok := sc.DelayAt(i, t, e); ok {
				r.events = append(r.events, faultnet.Event{Epoch: e, From: i, To: t, Kind: faultnet.KindDelay})
				msg.arrival += d.Seconds()
			}
			deferred := sc.ReorderAt(i, t, e)
			if deferred {
				r.events = append(r.events, faultnet.Event{Epoch: e, From: i, To: t, Kind: faultnet.KindReorder})
			}
			r.out = append(r.out, delivery{to: t, msg: msg, deferred: deferred})
			if sc.DuplicateAt(i, t, e) {
				r.events = append(r.events, faultnet.Event{Epoch: e, From: i, To: t, Kind: faultnet.KindDuplicate})
				r.out = append(r.out, delivery{to: t, msg: msg, deferred: deferred})
			}
		}
	}

	// --- test (Alg. 2 line 21) ---
	var testT float64
	if (e+1)%cfg.TestEvery == 0 || e == cfg.Epochs-1 {
		testT = float64(len(node.Test)) * cp.TestFlopsPerExample * eng.secPerFlop * enc.ComputeFactor()
	}

	elapsed := mergeT + trainT + shareT + testT
	if cfg.ShareParallel && cfg.Mode == core.DataSharing {
		// §III-D overlap: the sample is drawn from the pre-train store, so
		// serialization and dispatch ride alongside training and the epoch
		// pays whichever is longer — merge + max(train, share) + test.
		// (Pre-fix this only hid the share when shareT < trainT; with
		// shareT >= trainT the sender serialized all four stages even
		// though sendDone above already modeled the overlap.)
		overlapped := trainT
		if shareT > overlapped {
			overlapped = shareT
		}
		elapsed = mergeT + overlapped + testT
	}
	eng.clocks[i] = start + elapsed
	eng.cumBytes[i] += float64(inBytes + outBytes)

	// Heap: persistent state plus this epoch's transient buffers
	// (received copies during merge + outbound serialization).
	heap := nodeHeap(node, eng.heapF, inBytes+outBytes)
	enc.SetHeap(heap)
	if heap > eng.peakHeap[i] {
		eng.peakHeap[i] = heap
	}

	r.stage = StageTimes{mergeT, trainT, shareT, testT}
	r.bytes = float64(inBytes + outBytes)
}
