package sim

import (
	"fmt"
	"testing"

	"rex/internal/core"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/topology"
)

// TestStreamedTopologyMatchesMaterialized is the swap-in guarantee of the
// streaming topology path: a run whose Config.Graph is a streamed source
// must be byte-for-byte identical to the same run over the materialized
// form of that source. This covers both gossip schemes — D-PSGD walks the
// full neighbor list, RMW draws through topology.RandomNeighborOf — so any
// divergence in neighbor order, degree, or rng consumption would surface.
func TestStreamedTopologyMatchesMaterialized(t *testing.T) {
	const n = 16
	for _, algo := range []gossip.Algo{gossip.DPSGD, gossip.RMW} {
		t.Run(fmt.Sprint(algo), func(t *testing.T) {
			run := func(src topology.Source) *Result {
				t.Helper()
				train, test := buildSmall(t, n, 7)
				mcfg := mf.DefaultConfig()
				res, err := Run(Config{
					Graph: src,
					Algo:  algo, Mode: core.DataSharing,
					Epochs: 12, StepsPerEpoch: 100, SharePoints: 50,
					FailAt:   map[int]int{2: 5},
					NewModel: func(id int) model.Model { return mf.New(mcfg) },
					Train:    train, Test: test,
					Compute: MFCompute(mcfg.K),
					Seed:    99,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a := run(topology.NewSmallWorldStream(n, 4, 0.2, 77))
			b := run(topology.Materialize(topology.NewSmallWorldStream(n, 4, 0.2, 77)))
			requireIdentical(t, a, b)
		})
	}
}
