package sim

import (
	"fmt"

	"rex/internal/attest"
	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/enclave"
	"rex/internal/faultnet"
	"rex/internal/model"
)

// engine holds one run's mutable state. Every cross-node slice is indexed
// by node id; during the parallel section of an epoch a worker touches only
// the slots of the node it is stepping, which is what makes the parallel
// path race-free and bit-identical to the sequential one.
type engine struct {
	cfg        Config
	n          int
	secPerFlop float64
	heapF      HeapFactors

	nodes    []*core.Node
	encl     []*enclave.Enclave
	clocks   []float64
	inbox    [][]message
	cumBytes []float64 // in+out per node, cumulative
	alive    []bool
	peakHeap []int64
	// deferred holds reorder-faulted messages for one extra barrier: a
	// message staged at epoch e normally joins inbox at the epoch-e
	// barrier (consumed at e+1); a reordered one joins at the e+1 barrier
	// instead (consumed at e+2, alongside that epoch's message).
	deferred [][]message

	// Per-epoch scratch, reused across epochs. results[i] is written only
	// by the worker stepping node i; rmse/rmseOK, payloadBuf and targetBuf
	// likewise. payloadBuf pools the merge-input views and targetBuf the
	// gossip target lists, so the steady-state epoch loop allocates nothing
	// per node once the buffers reach their working capacity.
	results    []nodeResult
	rmse       []float64
	rmseOK     []bool
	payloadBuf [][]core.Payload
	targetBuf  [][]int

	pool     *pool
	res      *Result
	stageSum StageTimes
}

// nodeResult carries everything a node step produces beyond the node's own
// state: staged deliveries and the accounting terms that must be folded in
// ascending node-index order so parallel runs reproduce the sequential
// floating-point sums exactly.
type nodeResult struct {
	stage StageTimes
	bytes float64 // in+out traffic this epoch
	out   []delivery
	// events are this node's injected faults, folded into the run log in
	// node-index order at the barrier so the log is deterministic for any
	// Workers count.
	events []faultnet.Event
}

// delivery is one staged message awaiting the epoch barrier.
type delivery struct {
	to  int
	msg message
	// deferred marks a reorder-faulted message that skips one barrier.
	deferred bool
}

// Run executes the configured network and returns its metrics. The run is
// deterministic in Config.Seed, independent of Config.Workers.
func Run(cfg Config) (*Result, error) {
	n := cfg.Graph.N()
	if len(cfg.Train) != n || len(cfg.Test) != n {
		return nil, fmt.Errorf("sim: partitions (%d train, %d test) do not match %d nodes",
			len(cfg.Train), len(cfg.Test), n)
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("sim: epochs must be positive")
	}
	if cfg.TestEvery <= 0 {
		cfg.TestEvery = 1
	}
	if cfg.Net.BandwidthBps == 0 {
		cfg.Net = DefaultNet()
	}
	if cfg.SGX && cfg.Enclave.EPCBytes == 0 {
		cfg.Enclave = enclave.DefaultParams()
	}
	if cfg.Compute.SecPerFlop == 0 {
		cfg.Compute.SecPerFlop = 1e-9
	}
	if cfg.Scenario != nil {
		if err := cfg.Scenario.Validate(); err != nil {
			return nil, err
		}
	}

	eng := newEngine(cfg, n)
	defer eng.pool.close()
	for e := 0; e < cfg.Epochs; e++ {
		eng.runEpoch(e)
	}
	return eng.finish(), nil
}

// newEngine builds all per-node state and charges attestation bootstrap.
func newEngine(cfg Config, n int) *engine {
	eng := &engine{
		cfg:        cfg,
		n:          n,
		secPerFlop: cfg.Compute.SecPerFlop,
		heapF:      cfg.Heap.orDefault(),
		nodes:      make([]*core.Node, n),
		encl:       make([]*enclave.Enclave, n),
		clocks:     make([]float64, n),
		inbox:      make([][]message, n),
		cumBytes:   make([]float64, n),
		alive:      make([]bool, n),
		peakHeap:   make([]int64, n),
		deferred:   make([][]message, n),
		results:    make([]nodeResult, n),
		rmse:       make([]float64, n),
		rmseOK:     make([]bool, n),
		payloadBuf: make([][]core.Payload, n),
		targetBuf:  make([][]int, n),
		res:        &Result{Series: make([]EpochStats, 0, cfg.Epochs)},
	}
	meas := attest.MeasureCode([]byte("rex-enclave-v1"))
	for i := 0; i < n; i++ {
		eng.alive[i] = true
		eng.nodes[i] = core.NewNode(core.Config{
			ID:            i,
			Mode:          cfg.Mode,
			Algo:          cfg.Algo,
			StepsPerEpoch: cfg.StepsPerEpoch,
			SharePoints:   cfg.SharePoints,
			Seed:          cfg.Seed,
			UniformMerge:  cfg.UniformMerge,
			Byzantine:     cfg.Byzantine[i],
		}, cfg.NewModel(i), cfg.Train[i], cfg.Test[i])
		eng.encl[i] = enclave.New(meas, cfg.Enclave, cfg.SGX)
		eng.encl[i].SetHeap(nodeHeap(eng.nodes[i], eng.heapF, 0))
		if cfg.SGX {
			// Mutual attestation with every neighbor before any data
			// flows (§III-A); pairs overlap, so charge per neighbor.
			d := cfg.Graph.Degree(i)
			eng.clocks[i] = cfg.AttestSetupSec * float64(d)
			eng.res.Attestations += d
		}
	}
	eng.res.Attestations /= 2 // counted from both endpoints
	// Spawn the pool last: node construction above runs user callbacks
	// (cfg.NewModel), and a panic there must not leak worker goroutines —
	// Run's deferred close is only installed once newEngine returns.
	eng.pool = newPool(cfg.Workers)
	return eng
}

// finish assembles the Result after the last epoch.
func (eng *engine) finish() *Result {
	res := eng.res
	faultnet.SortEvents(res.FaultLog)
	for _, ev := range res.FaultLog {
		switch ev.Kind {
		case faultnet.KindDrop:
			res.Faults.Dropped++
		case faultnet.KindDelay:
			res.Faults.Delayed++
		case faultnet.KindDuplicate:
			res.Faults.Duplicated++
		case faultnet.KindReorder:
			res.Faults.Reordered++
		case faultnet.KindPartition:
			res.Faults.PartitionDrops++
			res.Faults.Dropped++
		case faultnet.KindLeave:
			res.Faults.Leaves++
		case faultnet.KindRejoin:
			res.Faults.Rejoins++
		}
	}
	last := res.Series[len(res.Series)-1]
	res.TotalTimeMean = last.TimeMean
	res.TotalTimeMax = last.TimeMax
	res.BytesPerNode = last.BytesPerNode
	res.Stage = eng.stageSum.scale(1 / float64(eng.cfg.Epochs))
	var heapSum float64
	for i := 0; i < eng.n; i++ {
		if eng.peakHeap[i] > res.PeakHeapBytes {
			res.PeakHeapBytes = eng.peakHeap[i]
		}
		heapSum += float64(eng.peakHeap[i])
	}
	res.MeanHeapBytes = heapSum / float64(eng.n)
	if eng.cfg.KeepState {
		res.Models = make([]model.Model, eng.n)
		res.Stores = make([][]dataset.Rating, eng.n)
		for i, nd := range eng.nodes {
			res.Models[i] = nd.Model
			res.Stores[i] = nd.Store.Snapshot()
		}
	}
	return res
}
