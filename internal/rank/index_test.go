package rank

import (
	"math/rand"
	"testing"

	"rex/internal/dataset"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
)

// tiedScores gives every item the same score except a few, forcing the
// tie-break rule (lower id first) to decide most of the ranking.
type tiedScores struct{}

func (tiedScores) Train([]dataset.Rating, int, *rand.Rand) {}
func (tiedScores) Predict(u, i uint32) float32 {
	switch i {
	case 4:
		return 9
	case 11:
		return 9
	default:
		return 1
	}
}
func (tiedScores) Marshal() ([]byte, error)                { return nil, nil }
func (tiedScores) Unmarshal([]byte) error                  { return nil }
func (tiedScores) MergeWeighted(float64, []model.Weighted) {}
func (tiedScores) ParamCount() int                         { return 0 }
func (tiedScores) WireSize() int                           { return 0 }
func (tiedScores) Clone() model.Model                      { return tiedScores{} }

// TestIndexTieBreaking pins the tie rule through the cached index: equal
// scores order by ascending item id, and the rule keeps holding when the
// seen set removes the natural winners.
func TestIndexTieBreaking(t *testing.T) {
	ratings := []dataset.Rating{
		{User: 1, Item: 4, Value: 5}, // user 1 has seen the first top item
		{User: 2, Item: 0, Value: 3},
	}
	ix := NewIndex(ratings, 16)

	// User 2: both 9-scored items beat the 1-scored sea; among the tied
	// sea, ascending id order.
	got := ix.TopN(tiedScores{}, 2, 5)
	wantIDs := []uint32{4, 11, 0, 1, 2}
	// Item 0 is seen by user 2 — excluded, shifting the tail.
	wantIDs = []uint32{4, 11, 1, 2, 3}
	for i, w := range wantIDs {
		if got[i].ID != w {
			t.Fatalf("user 2 rank %d: item %d, want %d (full: %v)", i, got[i].ID, w, got)
		}
	}

	// User 1: item 4 is seen → excluded; 11 tops; then tied tail by id.
	got = ix.TopN(tiedScores{}, 1, 4)
	wantIDs = []uint32{11, 0, 1, 2}
	for i, w := range wantIDs {
		if got[i].ID != w {
			t.Fatalf("user 1 rank %d: item %d, want %d (full: %v)", i, got[i].ID, w, got)
		}
	}

	// Unknown user: nothing seen, item 4 leads (tie with 11, lower id).
	got = ix.TopN(tiedScores{}, 99, 2)
	if got[0].ID != 4 || got[1].ID != 11 {
		t.Fatalf("unknown user got %v, want [4 11]", got)
	}
}

// TestIndexMatchesUncachedTopN is the bit-identity contract: for a real
// trained MF model over a generated workload, the cached index must return
// exactly what the uncached TopN + SeenSet path returns — same ids, same
// float32 scores — for every user.
func TestIndexMatchesUncachedTopN(t *testing.T) {
	spec := movielens.Latest().Scaled(0.05)
	spec.Seed = 11
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(12))
	m := mf.New(mf.DefaultConfig())
	m.Train(ds.Ratings, 40_000, rng)

	ix := NewIndex(ds.Ratings, ds.NumItems)
	const n = 10
	users := map[uint32]bool{}
	for _, r := range ds.Ratings {
		users[r.User] = true
	}
	users[1<<30] = true // a user the index has never seen
	checked := 0
	for u := range users {
		want := TopN(m, u, ds.NumItems, n, SeenSet(ds.Ratings, u))
		got := ix.TopN(m, u, n)
		if len(got) != len(want) {
			t.Fatalf("user %d: %d items cached vs %d uncached", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d rank %d: cached %+v != uncached %+v", u, i, got[i], want[i])
			}
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d users checked", checked)
	}
}

// TestIndexSeenExclusion verifies the seen sets the index caches equal
// SeenSet's, and that exclusion removes exactly those items.
func TestIndexSeenExclusion(t *testing.T) {
	ratings := []dataset.Rating{
		{User: 7, Item: 1}, {User: 7, Item: 3}, {User: 8, Item: 2},
		{User: 7, Item: 1}, // duplicate interaction
	}
	ix := NewIndex(ratings, 6)
	want := SeenSet(ratings, 7)
	got := ix.Seen(7)
	if len(got) != len(want) {
		t.Fatalf("seen sets differ: %v vs %v", got, want)
	}
	for it := range want {
		if !got[it] {
			t.Fatalf("item %d missing from cached seen set", it)
		}
	}
	rec := ix.TopN(scoreByID{}, 7, 6)
	if len(rec) != 4 {
		t.Fatalf("%d candidates after exclusion, want 4", len(rec))
	}
	for _, it := range rec {
		if want[it.ID] {
			t.Fatalf("seen item %d recommended", it.ID)
		}
	}
}
