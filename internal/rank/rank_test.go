package rank

import (
	"math"
	"math/rand"
	"testing"

	"rex/internal/dataset"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
)

// scoreByID is a deterministic model: item id is the score.
type scoreByID struct{}

func (scoreByID) Train([]dataset.Rating, int, *rand.Rand) {}
func (scoreByID) Predict(u, i uint32) float32             { return float32(i) }
func (scoreByID) Marshal() ([]byte, error)                { return nil, nil }
func (scoreByID) Unmarshal([]byte) error                  { return nil }
func (scoreByID) MergeWeighted(float64, []model.Weighted) {}
func (scoreByID) ParamCount() int                         { return 0 }
func (scoreByID) WireSize() int                           { return 0 }
func (scoreByID) Clone() model.Model                      { return scoreByID{} }

func TestTopNOrderAndExclusion(t *testing.T) {
	got := TopN(scoreByID{}, 0, 10, 3, map[uint32]bool{9: true})
	if len(got) != 3 {
		t.Fatalf("got %d items", len(got))
	}
	// Item 9 excluded; top scores are 8, 7, 6.
	want := []uint32{8, 7, 6}
	for i, w := range want {
		if got[i].ID != w {
			t.Fatalf("rank %d: got item %d want %d", i, got[i].ID, w)
		}
	}
}

func TestTopNEdgeCases(t *testing.T) {
	if got := TopN(scoreByID{}, 0, 5, 0, nil); got != nil {
		t.Fatal("n=0 returned items")
	}
	if got := TopN(scoreByID{}, 0, 3, 10, nil); len(got) != 3 {
		t.Fatalf("n>candidates returned %d", len(got))
	}
	all := map[uint32]bool{0: true, 1: true, 2: true}
	if got := TopN(scoreByID{}, 0, 3, 2, all); len(got) != 0 {
		t.Fatal("everything excluded but items returned")
	}
}

func TestSeenSet(t *testing.T) {
	rs := []dataset.Rating{{User: 1, Item: 5}, {User: 2, Item: 6}, {User: 1, Item: 7}}
	s := SeenSet(rs, 1)
	if !s[5] || !s[7] || s[6] {
		t.Fatalf("seen set %v", s)
	}
}

// perfectModel knows the relevant items.
type perfectModel struct{ rel map[uint32]bool }

func (p perfectModel) Train([]dataset.Rating, int, *rand.Rand) {}
func (p perfectModel) Predict(u, i uint32) float32 {
	if p.rel[i] {
		return 5
	}
	return 1
}
func (p perfectModel) Marshal() ([]byte, error)                { return nil, nil }
func (p perfectModel) Unmarshal([]byte) error                  { return nil }
func (p perfectModel) MergeWeighted(float64, []model.Weighted) {}
func (p perfectModel) ParamCount() int                         { return 0 }
func (p perfectModel) WireSize() int                           { return 0 }
func (p perfectModel) Clone() model.Model                      { return p }

func TestEvaluatePerfectModel(t *testing.T) {
	test := []dataset.Rating{
		{User: 0, Item: 3, Value: 5}, // relevant
		{User: 0, Item: 4, Value: 4.5},
		{User: 0, Item: 5, Value: 2}, // not relevant
	}
	m := perfectModel{rel: map[uint32]bool{3: true, 4: true}}
	got := Evaluate(m, nil, test, 10, 2)
	if got.Users != 1 {
		t.Fatalf("users %d", got.Users)
	}
	if got.PrecisionAtK != 1 || got.RecallAtK != 1 {
		t.Fatalf("perfect model scored p=%.2f r=%.2f", got.PrecisionAtK, got.RecallAtK)
	}
	if math.Abs(got.NDCGAtK-1) > 1e-12 {
		t.Fatalf("perfect NDCG %.4f", got.NDCGAtK)
	}
}

func TestEvaluateAntiModel(t *testing.T) {
	test := []dataset.Rating{{User: 0, Item: 3, Value: 5}}
	// Model ranks everything except item 3 above it.
	m := perfectModel{rel: map[uint32]bool{}}
	got := Evaluate(m, nil, test, 50, 5)
	if got.PrecisionAtK > 0.2 {
		t.Fatalf("anti-model precision %.2f", got.PrecisionAtK)
	}
}

func TestEvaluateExcludesTrainItems(t *testing.T) {
	train := []dataset.Rating{{User: 0, Item: 8, Value: 5}}
	test := []dataset.Rating{{User: 0, Item: 9, Value: 5}}
	got := Evaluate(scoreByID{}, train, test, 10, 1)
	// Item 9 tops the list only because trained item 8... actually 9 > 8
	// anyway; the point: item 8 must not occupy a slot.
	if got.PrecisionAtK != 1 {
		t.Fatalf("precision %.2f", got.PrecisionAtK)
	}
}

// randomRanker scores items by a hash — a ranking no better than chance.
type randomRanker struct{}

func (randomRanker) Train([]dataset.Rating, int, *rand.Rand) {}
func (randomRanker) Predict(u, i uint32) float32 {
	h := (uint64(i)*0x9E3779B97F4A7C15 + uint64(u)) * 0xBF58476D1CE4E5B9
	return float32(h>>40) / float32(1<<24)
}
func (randomRanker) Marshal() ([]byte, error)                { return nil, nil }
func (randomRanker) Unmarshal([]byte) error                  { return nil }
func (randomRanker) MergeWeighted(float64, []model.Weighted) {}
func (randomRanker) ParamCount() int                         { return 0 }
func (randomRanker) WireSize() int                           { return 0 }
func (randomRanker) Clone() model.Model                      { return randomRanker{} }

func TestEvaluateTrainedMFBeatsRandom(t *testing.T) {
	spec := movielens.Latest().Scaled(0.05)
	spec.Seed = 3
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(4))
	tr, te := ds.SplitPerUser(0.7, rng)
	trained := mf.New(mf.DefaultConfig())
	trained.Train(tr.Ratings, 60_000, rng)

	k := 10
	gotTrained := Evaluate(trained, tr.Ratings, te.Ratings, ds.NumItems, k)
	gotRandom := Evaluate(randomRanker{}, tr.Ratings, te.Ratings, ds.NumItems, k)
	if gotTrained.Users == 0 {
		t.Fatal("no users evaluated")
	}
	if gotTrained.NDCGAtK <= gotRandom.NDCGAtK {
		t.Fatalf("training did not beat random ranking: %.4f vs %.4f",
			gotTrained.NDCGAtK, gotRandom.NDCGAtK)
	}
}
