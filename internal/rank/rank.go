// Package rank turns trained rating predictors into recommenders: top-N
// recommendation lists and the ranking metrics used to evaluate them
// (precision@k, recall@k, NDCG@k). The paper evaluates RMSE (§IV-A4); a
// deployed recommender additionally serves ranked lists, which is what
// this layer provides on top of any model.Model.
package rank

import (
	"math"
	"sort"

	"rex/internal/dataset"
	"rex/internal/model"
)

// Item is one entry of a recommendation list.
type Item struct {
	ID    uint32
	Score float32
}

// Predictor is the minimal surface ranking needs: a rating prediction per
// (user, item) pair. model.Model satisfies it; so do adapters over
// recommenders outside the model contract (e.g. internal/knn served from
// a node's raw-data store).
type Predictor interface {
	Predict(user, item uint32) float32
}

// TopN returns the n highest-predicted items for a user, excluding the
// items in seen (typically the user's training interactions). Candidates
// are 0..numItems-1. Ties break toward lower item ids for determinism.
func TopN(m Predictor, user uint32, numItems, n int, seen map[uint32]bool) []Item {
	if n <= 0 || numItems <= 0 {
		return nil
	}
	items := make([]Item, 0, numItems)
	for i := 0; i < numItems; i++ {
		id := uint32(i)
		if seen[id] {
			continue
		}
		items = append(items, Item{ID: id, Score: m.Predict(user, id)})
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].Score != items[b].Score {
			return items[a].Score > items[b].Score
		}
		return items[a].ID < items[b].ID
	})
	if len(items) > n {
		items = items[:n]
	}
	return items
}

// SeenSet builds the exclusion set of items a user interacted with.
func SeenSet(ratings []dataset.Rating, user uint32) map[uint32]bool {
	out := make(map[uint32]bool)
	for _, r := range ratings {
		if r.User == user {
			out[r.Item] = true
		}
	}
	return out
}

// Metrics aggregates ranking quality over a user population.
type Metrics struct {
	PrecisionAtK float64
	RecallAtK    float64
	NDCGAtK      float64
	Users        int // users with at least one relevant test item
}

// RelevanceThreshold is the star value at and above which a held-out
// rating counts as "relevant" for ranking metrics (liked items).
const RelevanceThreshold = 4.0

// Evaluate computes mean precision@k, recall@k and NDCG@k over all users
// present in test. Train interactions are excluded from candidate lists.
func Evaluate(m model.Model, train, test []dataset.Rating, numItems, k int) Metrics {
	if k <= 0 {
		return Metrics{}
	}
	trainSeen := make(map[uint32]map[uint32]bool)
	for _, r := range train {
		mset, ok := trainSeen[r.User]
		if !ok {
			mset = make(map[uint32]bool)
			trainSeen[r.User] = mset
		}
		mset[r.Item] = true
	}
	relevant := make(map[uint32]map[uint32]bool)
	for _, r := range test {
		if r.Value < RelevanceThreshold {
			continue
		}
		mset, ok := relevant[r.User]
		if !ok {
			mset = make(map[uint32]bool)
			relevant[r.User] = mset
		}
		mset[r.Item] = true
	}

	var out Metrics
	for user, rel := range relevant {
		if len(rel) == 0 {
			continue
		}
		rec := TopN(m, user, numItems, k, trainSeen[user])
		hits := 0
		dcg := 0.0
		for pos, it := range rec {
			if rel[it.ID] {
				hits++
				dcg += 1 / math.Log2(float64(pos)+2)
			}
		}
		ideal := 0.0
		n := len(rel)
		if n > k {
			n = k
		}
		for pos := 0; pos < n; pos++ {
			ideal += 1 / math.Log2(float64(pos)+2)
		}
		out.PrecisionAtK += float64(hits) / float64(k)
		out.RecallAtK += float64(hits) / float64(len(rel))
		if ideal > 0 {
			out.NDCGAtK += dcg / ideal
		}
		out.Users++
	}
	if out.Users > 0 {
		f := float64(out.Users)
		out.PrecisionAtK /= f
		out.RecallAtK /= f
		out.NDCGAtK /= f
	}
	return out
}
