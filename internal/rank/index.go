package rank

import "rex/internal/dataset"

// Index is the cached candidate index the serving path ranks against: the
// per-user seen sets (items to exclude — the user's own interactions) and
// the candidate range, precomputed once per model snapshot instead of
// rebuilt on every query. An Index is immutable after construction and
// safe for concurrent readers; results are bit-identical to calling the
// uncached TopN with SeenSet-built exclusions over the same ratings.
type Index struct {
	numItems int
	seen     map[uint32]map[uint32]bool
}

// NewIndex builds the index from a ratings snapshot (typically a REX
// node's raw-data store at a training epoch boundary). numItems bounds
// the candidate ids: 0..numItems-1.
func NewIndex(ratings []dataset.Rating, numItems int) *Index {
	ix := &Index{numItems: numItems, seen: make(map[uint32]map[uint32]bool)}
	for _, r := range ratings {
		s, ok := ix.seen[r.User]
		if !ok {
			s = make(map[uint32]bool)
			ix.seen[r.User] = s
		}
		s[r.Item] = true
	}
	return ix
}

// NumItems returns the candidate range bound.
func (ix *Index) NumItems() int { return ix.numItems }

// Seen returns the user's exclusion set (nil for unknown users — every
// item is then a candidate). Callers must not mutate it.
func (ix *Index) Seen(user uint32) map[uint32]bool { return ix.seen[user] }

// TopN ranks the n best unseen items for the user under the given
// predictor — exactly TopN(m, user, ix.NumItems(), n, ix.Seen(user)), with
// the seen set coming from the cache instead of a per-query scan.
func (ix *Index) TopN(m Predictor, user uint32, n int) []Item {
	return TopN(m, user, ix.numItems, n, ix.seen[user])
}
