package seccha

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestSeqRoundtrip pins the explicit-sequence framing: frames open in
// order, the plaintext matches, and the frame carries SeqOverhead extra
// bytes over the strict framing.
func TestSeqRoundtrip(t *testing.T) {
	a, b := pair(t)
	for i := 0; i < 5; i++ {
		msg := []byte(fmt.Sprintf("frame %d", i))
		fr := a.SealSeqAppend(nil, msg)
		if len(fr) != len(msg)+SeqOverhead+a.Overhead() {
			t.Fatalf("frame %d bytes, want %d", len(fr), len(msg)+SeqOverhead+a.Overhead())
		}
		pt, err := b.OpenSeqAppend(nil, fr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("roundtrip mismatch: %q", pt)
		}
	}
}

// TestSeqSurvivesLoss is the property the faultnet harness depends on: a
// dropped frame must not desynchronize the channel — later frames still
// authenticate (the strict Seal/Open pairing fails here by design).
func TestSeqSurvivesLoss(t *testing.T) {
	a, b := pair(t)
	frames := make([][]byte, 6)
	for i := range frames {
		frames[i] = a.SealSeqAppend(nil, []byte(fmt.Sprintf("m%d", i)))
	}
	for _, i := range []int{0, 2, 5} { // 1, 3, 4 lost
		pt, err := b.OpenSeqAppend(nil, frames[i])
		if err != nil {
			t.Fatalf("frame %d after losses: %v", i, err)
		}
		if string(pt) != fmt.Sprintf("m%d", i) {
			t.Fatalf("frame %d decoded as %q", i, pt)
		}
	}
}

// TestSeqSurvivesReorder: frames arriving out of order within the window
// all authenticate exactly once.
func TestSeqSurvivesReorder(t *testing.T) {
	a, b := pair(t)
	frames := make([][]byte, 4)
	for i := range frames {
		frames[i] = a.SealSeqAppend(nil, []byte(fmt.Sprintf("m%d", i)))
	}
	for _, i := range []int{1, 0, 3, 2} {
		if _, err := b.OpenSeqAppend(nil, frames[i]); err != nil {
			t.Fatalf("reordered frame %d: %v", i, err)
		}
	}
}

// TestSeqRejectsReplay: a duplicated frame fails with ErrReplay (not
// ErrAuth) so receivers can discard it without treating the peer as
// compromised, and the original still opened fine.
func TestSeqRejectsReplay(t *testing.T) {
	a, b := pair(t)
	fr := a.SealSeqAppend(nil, []byte("once"))
	if _, err := b.OpenSeqAppend(nil, fr); err != nil {
		t.Fatal(err)
	}
	if _, err := b.OpenSeqAppend(nil, fr); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay: got %v, want ErrReplay", err)
	}
	// And the channel still works afterwards.
	fr2 := a.SealSeqAppend(nil, []byte("next"))
	if pt, err := b.OpenSeqAppend(nil, fr2); err != nil || string(pt) != "next" {
		t.Fatalf("post-replay frame: %v %q", err, pt)
	}
}

// TestSeqWindowAges: a frame further behind the highest accepted sequence
// than the window is rejected as stale.
func TestSeqWindowAges(t *testing.T) {
	a, b := pair(t)
	old := a.SealSeqAppend(nil, []byte("ancient"))
	var last []byte
	for i := 0; i < replayWindow+2; i++ {
		last = a.SealSeqAppend(nil, []byte("x"))
	}
	if _, err := b.OpenSeqAppend(nil, last); err != nil {
		t.Fatal(err)
	}
	if _, err := b.OpenSeqAppend(nil, old); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale frame: got %v, want ErrReplay", err)
	}
}

// TestSeqWindowEdgeReplayRejected pins the off-by-one at the window's
// edge: after accepting seq 0 and then seq exactly replayWindow ahead,
// the seq-0 frame is still inside the representable window and its
// replay must be rejected, not accepted a second time.
func TestSeqWindowEdgeReplayRejected(t *testing.T) {
	a, b := pair(t)
	frames := make([][]byte, replayWindow+1)
	for i := range frames {
		frames[i] = a.SealSeqAppend(nil, []byte{byte(i)})
	}
	if _, err := b.OpenSeqAppend(nil, frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.OpenSeqAppend(nil, frames[replayWindow]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.OpenSeqAppend(nil, frames[0]); !errors.Is(err, ErrReplay) {
		t.Fatalf("edge-of-window replay: got %v, want ErrReplay", err)
	}
	// A never-seen frame at the same distance still opens.
	if _, err := b.OpenSeqAppend(nil, frames[1]); err != nil {
		t.Fatalf("in-window fresh frame rejected: %v", err)
	}
}

// TestSeqTamperDetected: flipping any byte (sequence or ciphertext) fails
// authentication with ErrAuth.
func TestSeqTamperDetected(t *testing.T) {
	a, b := pair(t)
	fr := a.SealSeqAppend(nil, []byte("payload"))
	for _, i := range []int{3, SeqOverhead, len(fr) - 1} {
		bad := append([]byte(nil), fr...)
		bad[i] ^= 0x40
		if _, err := b.OpenSeqAppend(nil, bad); !errors.Is(err, ErrAuth) {
			t.Fatalf("tampered byte %d: got %v, want ErrAuth", i, err)
		}
	}
	if _, err := b.OpenSeqAppend(nil, fr[:SeqOverhead-1]); !errors.Is(err, ErrAuth) {
		t.Fatal("truncated frame accepted")
	}
	// The untampered frame still opens: failed attempts must not burn the
	// sequence.
	if _, err := b.OpenSeqAppend(nil, fr); err != nil {
		t.Fatalf("original after tamper attempts: %v", err)
	}
}

// TestSeqBidirectional: both directions run explicit-sequence framing on
// one key without nonce collisions.
func TestSeqBidirectional(t *testing.T) {
	a, b := pair(t)
	fa := a.SealSeqAppend(nil, []byte("from a"))
	fb := b.SealSeqAppend(nil, []byte("from b"))
	if pt, err := b.OpenSeqAppend(nil, fa); err != nil || string(pt) != "from a" {
		t.Fatalf("a->b: %v %q", err, pt)
	}
	if pt, err := a.OpenSeqAppend(nil, fb); err != nil || string(pt) != "from b" {
		t.Fatalf("b->a: %v %q", err, pt)
	}
}
