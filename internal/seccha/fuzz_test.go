package seccha

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzKey is the fixed 32-byte channel key for the fuzz corpus: frames in
// testdata/fuzz were sealed under it, so the fuzzer starts from inputs
// that actually authenticate (mutations then explore the reject paths).
func fuzzKey() []byte {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i*7 + 3)
	}
	return key
}

// FuzzOpenSeqAppend throws arbitrary frames at the explicit-sequence
// decryption path — the bytes every gossip receiver accepts from a lossy,
// reordering, duplicating (or malicious) link since the chaos harness
// landed. Whatever the input:
//   - OpenSeqAppend must never panic and must fail with ErrAuth or
//     ErrReplay, never anything else;
//   - a frame that authenticates must be rejected as a replay when fed
//     again (the anti-replay window must advance);
//   - the channel must stay usable afterwards: a later in-window sequence
//     from the legitimate sender must still open (a hostile frame may
//     degrade gossip but must not kill the channel).
func FuzzOpenSeqAppend(f *testing.F) {
	key := fuzzKey()
	sender, err := NewChannel(key, true)
	if err != nil {
		f.Fatal(err)
	}
	frame0 := sender.SealSeqAppend(nil, []byte("epoch-0 share"))
	frame1 := sender.SealSeqAppend(nil, []byte("epoch-1 share"))

	f.Add(frame0)                 // valid frame, seq 0 (body replays it too)
	f.Add(frame1)                 // valid frame, seq 1 (out-of-order arrival)
	f.Add(frame0[:SeqOverhead-3]) // truncated below the sequence header
	f.Add(frame1[:SeqOverhead+3]) // truncated mid-ciphertext
	forged := append([]byte(nil), frame1...)
	forged[SeqOverhead-1] ^= 0x01 // seq rewritten after sealing: wrong nonce
	f.Add(forged)
	f.Add([]byte{})                       // empty
	f.Add(bytes.Repeat([]byte{0xA5}, 64)) // garbage

	f.Fuzz(func(t *testing.T, b []byte) {
		recv, err := NewChannel(key, false)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := recv.OpenSeqAppend(nil, b)
		switch {
		case err == nil:
			if len(b) < SeqOverhead {
				t.Fatalf("opened a %d-byte frame shorter than the sequence header", len(b))
			}
			// The exact same frame must now be a replay, and the failed
			// open must not grow the plaintext.
			pt2, err2 := recv.OpenSeqAppend(nil, b)
			if !errors.Is(err2, ErrReplay) {
				t.Fatalf("replay of an accepted frame: got (%v, %v), want ErrReplay", pt2, err2)
			}
			_ = pt
		case errors.Is(err, ErrAuth) || errors.Is(err, ErrReplay):
			// The two documented failure modes.
		default:
			t.Fatalf("unexpected error type: %v", err)
		}

		// Liveness: the legitimate sender's seq-3 frame was never fed to
		// this receiver (it is not in the corpus and GCM makes it
		// unforgeable), so whatever b did, it must still open — a lossy
		// or hostile link degrades gossip, it must not wedge the channel.
		s2, err := NewChannel(key, true)
		if err != nil {
			t.Fatal(err)
		}
		var lateFrame []byte
		for i := 0; i < 4; i++ {
			lateFrame = s2.SealSeqAppend(nil, []byte("late share"))
		}
		got, err := recv.OpenSeqAppend(nil, lateFrame)
		if err != nil {
			t.Fatalf("channel wedged after arbitrary frame: %v", err)
		}
		if !bytes.Equal(got, []byte("late share")) {
			t.Fatalf("late frame decrypted to %q", got)
		}
	})
}
