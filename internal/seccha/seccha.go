// Package seccha implements the secure channel REX establishes between two
// mutually attested enclaves (paper §III-A): an elliptic-curve
// Diffie–Hellman key agreement whose public keys ride in the quote's
// user-data field, HKDF-SHA256 key derivation, and AES-256-GCM framing
// with strictly monotonic per-direction nonces. It stands in for Intel SGX
// SSL using only the Go standard library.
package seccha

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// KeyPair is an X25519 key pair used for the per-enclave ECDH exchange.
type KeyPair struct {
	priv *ecdh.PrivateKey
}

// GenerateKeyPair creates a key pair reading entropy from rand (pass
// crypto/rand.Reader in production, a deterministic reader in tests).
func GenerateKeyPair(rand io.Reader) (*KeyPair, error) {
	priv, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("seccha: generating key: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// PublicKey returns the 32-byte X25519 public key, the value REX embeds in
// the attestation quote's user-data field.
func (k *KeyPair) PublicKey() []byte { return k.priv.PublicKey().Bytes() }

// SharedSecret runs X25519 with the peer's public key bytes.
func (k *KeyPair) SharedSecret(peerPub []byte) ([]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return nil, fmt.Errorf("seccha: bad peer public key: %w", err)
	}
	sec, err := k.priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("seccha: ECDH: %w", err)
	}
	return sec, nil
}

// HKDF derives length bytes from the input keying material using
// HKDF-SHA256 (RFC 5869), implemented over crypto/hmac for compatibility
// with older Go toolchains.
func HKDF(secret, salt, info []byte, length int) []byte {
	if salt == nil {
		salt = make([]byte, sha256.Size)
	}
	ext := hmac.New(sha256.New, salt)
	ext.Write(secret)
	prk := ext.Sum(nil)

	var out []byte
	var prev []byte
	for counter := byte(1); len(out) < length; counter++ {
		h := hmac.New(sha256.New, prk)
		h.Write(prev)
		h.Write(info)
		h.Write([]byte{counter})
		prev = h.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length]
}

// ChannelKey derives the 32-byte AES key both peers compute from the ECDH
// shared secret. The info string binds the key to its purpose; both
// measurements are mixed in so a key never outlives a code change.
func ChannelKey(sharedSecret []byte, measA, measB []byte) []byte {
	// Order the measurements canonically so both sides derive equal keys.
	lo, hi := measA, measB
	for i := range lo {
		if i >= len(hi) || lo[i] > hi[i] {
			lo, hi = measB, measA
			break
		} else if lo[i] < hi[i] {
			break
		}
	}
	info := append(append([]byte("rex-channel-v1"), lo...), hi...)
	return HKDF(sharedSecret, nil, info, 32)
}

// Channel is one authenticated-encryption session between two enclaves.
// Each direction has an independent nonce sequence; the initiator flag
// separates the two directions' nonce spaces so the same key can serve
// both.
type Channel struct {
	aead      cipher.AEAD
	initiator bool
	sendSeq   uint64
	recvSeq   uint64

	// Explicit-sequence receive window (SealSeq/OpenSeq framing): recvMax
	// is the highest authenticated sequence accepted so far, recvMask bit
	// i records whether recvMax-i-1 was seen, and recvAny whether any
	// frame has been accepted (distinguishes "nothing yet" from seq 0).
	recvMax  uint64
	recvMask uint64
	recvAny  bool
}

// NewChannel builds a channel from a 32-byte key. Exactly one peer must
// pass initiator=true (REX uses the lexicographic order of node ids).
func NewChannel(key []byte, initiator bool) (*Channel, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("seccha: key must be 32 bytes, got %d", len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("seccha: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("seccha: GCM: %w", err)
	}
	return &Channel{aead: aead, initiator: initiator}, nil
}

func (c *Channel) nonce(seq uint64, sending bool) []byte {
	n := make([]byte, 12)
	dir := byte(0)
	if c.initiator == sending { // initiator's sends and responder's receives share space 1
		dir = 1
	}
	n[0] = dir
	binary.BigEndian.PutUint64(n[4:], seq)
	return n
}

// Seal encrypts and authenticates plaintext, advancing the send sequence.
// The output carries no nonce: both sides track sequences, so any drop or
// reorder surfaces as an authentication failure — the strict in-order
// delivery REX's pairwise TCP/ZeroMQ links provide.
func (c *Channel) Seal(plaintext []byte) []byte {
	return c.SealAppend(nil, plaintext)
}

// SealAppend is Seal appending the ciphertext to dst (which may be nil, or
// a buffer being reused across epochs) and returning the extended slice.
// dst must not alias plaintext.
func (c *Channel) SealAppend(dst, plaintext []byte) []byte {
	ct := c.aead.Seal(dst, c.nonce(c.sendSeq, true), plaintext, nil)
	c.sendSeq++
	return ct
}

// ErrAuth is returned when decryption fails (tampering, replay, or loss).
var ErrAuth = errors.New("seccha: message authentication failed")

// Open decrypts the next in-order ciphertext, advancing the receive
// sequence only on success.
func (c *Channel) Open(ciphertext []byte) ([]byte, error) {
	return c.OpenAppend(nil, ciphertext)
}

// OpenAppend is Open appending the plaintext to dst (which may be nil, or
// a buffer being reused across epochs) and returning the extended slice.
// dst must not alias ciphertext.
func (c *Channel) OpenAppend(dst, ciphertext []byte) ([]byte, error) {
	pt, err := c.aead.Open(dst, c.nonce(c.recvSeq, false), ciphertext, nil)
	if err != nil {
		return nil, ErrAuth
	}
	c.recvSeq++
	return pt, nil
}

// Overhead returns the ciphertext expansion in bytes (the GCM tag).
func (c *Channel) Overhead() int { return c.aead.Overhead() }

// The strict Seal/Open pairing above assumes perfectly reliable in-order
// delivery: one lost frame desynchronizes the implicit nonce sequence and
// every later Open fails. The SealSeq/OpenSeq pairing below instead ships
// the sequence number explicitly (8 bytes, big-endian, ahead of the
// ciphertext) and accepts frames through a sliding anti-replay window —
// the DTLS/IPsec discipline — so a lossy, reordering or duplicating link
// (or a fault-injection harness standing in for one) degrades gossip
// instead of killing the channel. A channel must use one pairing or the
// other for its whole life; both directions' nonce spaces are shared with
// the strict API.

// SeqOverhead is the framing overhead of SealSeq beyond Seal: the explicit
// sequence number.
const SeqOverhead = 8

// ErrReplay reports a frame whose sequence was already accepted or has
// fallen behind the replay window — a duplicated (or maliciously replayed)
// message. Receivers discard such frames and keep the channel alive.
var ErrReplay = errors.New("seccha: duplicate or stale sequence")

// replayWindow is how far behind the highest accepted sequence a late
// frame may arrive: recvMask tracks the 64 sequences below recvMax.
const replayWindow = 64

// SealSeqAppend encrypts plaintext into an explicit-sequence frame
// appended to dst (which may be nil or a reused buffer; it must not alias
// plaintext) and returns the extended slice.
func (c *Channel) SealSeqAppend(dst, plaintext []byte) []byte {
	var seqb [SeqOverhead]byte
	binary.BigEndian.PutUint64(seqb[:], c.sendSeq)
	dst = append(dst, seqb[:]...)
	dst = c.aead.Seal(dst, c.nonce(c.sendSeq, true), plaintext, nil)
	c.sendSeq++
	return dst
}

// OpenSeqAppend authenticates and decrypts an explicit-sequence frame,
// appending the plaintext to dst (which must not alias frame) and
// returning the extended slice. A tampered frame (including a forged
// sequence, which derives the wrong nonce) fails with ErrAuth; an already
// seen or too-old sequence fails with ErrReplay. The window advances only
// on successful authentication.
func (c *Channel) OpenSeqAppend(dst, frame []byte) ([]byte, error) {
	if len(frame) < SeqOverhead {
		return nil, ErrAuth
	}
	seq := binary.BigEndian.Uint64(frame[:SeqOverhead])
	if !c.seqFresh(seq) {
		return nil, ErrReplay
	}
	pt, err := c.aead.Open(dst, c.nonce(seq, false), frame[SeqOverhead:], nil)
	if err != nil {
		return nil, ErrAuth
	}
	c.seqMark(seq)
	return pt, nil
}

// seqFresh reports whether seq has neither been accepted nor aged out.
func (c *Channel) seqFresh(seq uint64) bool {
	if !c.recvAny || seq > c.recvMax {
		return true
	}
	if seq == c.recvMax {
		return false
	}
	behind := c.recvMax - seq
	if behind > replayWindow {
		return false
	}
	return c.recvMask&(1<<(behind-1)) == 0
}

// seqMark records an accepted sequence.
func (c *Channel) seqMark(seq uint64) {
	if !c.recvAny {
		c.recvAny = true
		c.recvMax = seq
		c.recvMask = 0
		return
	}
	if seq > c.recvMax {
		shift := seq - c.recvMax
		if shift > replayWindow {
			// The whole previous window aged out of representability.
			c.recvMask = 0
		} else {
			// shift == replayWindow is fine: Go defines x<<64 as 0, and
			// bit shift-1 records the old recvMax at the window's edge —
			// zeroing here instead would let that frame replay once.
			c.recvMask = c.recvMask<<shift | 1<<(shift-1)
		}
		c.recvMax = seq
		return
	}
	c.recvMask |= 1 << (c.recvMax - seq - 1)
}

// Rekey ratchets the channel onto a fresh key derived from the current
// one via HKDF, resetting both sequence counters. Long-lived REX sessions
// rekey periodically so the nonce space never nears exhaustion and old
// keys cannot decrypt future traffic (forward ratchet). Both peers must
// call Rekey at an agreed point (e.g. every N epochs).
func (c *Channel) Rekey(currentKeyHint []byte) error {
	next := HKDF(currentKeyHint, nil, []byte("rex-rekey-v1"), 32)
	block, err := aes.NewCipher(next)
	if err != nil {
		return fmt.Errorf("seccha: rekey cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return fmt.Errorf("seccha: rekey GCM: %w", err)
	}
	c.aead = aead
	c.sendSeq = 0
	c.recvSeq = 0
	c.recvMax, c.recvMask, c.recvAny = 0, 0, false
	// Zero the caller's copy of the retired key material.
	for i := range currentKeyHint {
		currentKeyHint[i] = 0
	}
	return nil
}
