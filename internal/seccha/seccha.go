// Package seccha implements the secure channel REX establishes between two
// mutually attested enclaves (paper §III-A): an elliptic-curve
// Diffie–Hellman key agreement whose public keys ride in the quote's
// user-data field, HKDF-SHA256 key derivation, and AES-256-GCM framing
// with strictly monotonic per-direction nonces. It stands in for Intel SGX
// SSL using only the Go standard library.
package seccha

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// KeyPair is an X25519 key pair used for the per-enclave ECDH exchange.
type KeyPair struct {
	priv *ecdh.PrivateKey
}

// GenerateKeyPair creates a key pair reading entropy from rand (pass
// crypto/rand.Reader in production, a deterministic reader in tests).
func GenerateKeyPair(rand io.Reader) (*KeyPair, error) {
	priv, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("seccha: generating key: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// PublicKey returns the 32-byte X25519 public key, the value REX embeds in
// the attestation quote's user-data field.
func (k *KeyPair) PublicKey() []byte { return k.priv.PublicKey().Bytes() }

// SharedSecret runs X25519 with the peer's public key bytes.
func (k *KeyPair) SharedSecret(peerPub []byte) ([]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return nil, fmt.Errorf("seccha: bad peer public key: %w", err)
	}
	sec, err := k.priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("seccha: ECDH: %w", err)
	}
	return sec, nil
}

// HKDF derives length bytes from the input keying material using
// HKDF-SHA256 (RFC 5869), implemented over crypto/hmac for compatibility
// with older Go toolchains.
func HKDF(secret, salt, info []byte, length int) []byte {
	if salt == nil {
		salt = make([]byte, sha256.Size)
	}
	ext := hmac.New(sha256.New, salt)
	ext.Write(secret)
	prk := ext.Sum(nil)

	var out []byte
	var prev []byte
	for counter := byte(1); len(out) < length; counter++ {
		h := hmac.New(sha256.New, prk)
		h.Write(prev)
		h.Write(info)
		h.Write([]byte{counter})
		prev = h.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length]
}

// ChannelKey derives the 32-byte AES key both peers compute from the ECDH
// shared secret. The info string binds the key to its purpose; both
// measurements are mixed in so a key never outlives a code change.
func ChannelKey(sharedSecret []byte, measA, measB []byte) []byte {
	// Order the measurements canonically so both sides derive equal keys.
	lo, hi := measA, measB
	for i := range lo {
		if i >= len(hi) || lo[i] > hi[i] {
			lo, hi = measB, measA
			break
		} else if lo[i] < hi[i] {
			break
		}
	}
	info := append(append([]byte("rex-channel-v1"), lo...), hi...)
	return HKDF(sharedSecret, nil, info, 32)
}

// Channel is one authenticated-encryption session between two enclaves.
// Each direction has an independent nonce sequence; the initiator flag
// separates the two directions' nonce spaces so the same key can serve
// both.
type Channel struct {
	aead      cipher.AEAD
	initiator bool
	sendSeq   uint64
	recvSeq   uint64
}

// NewChannel builds a channel from a 32-byte key. Exactly one peer must
// pass initiator=true (REX uses the lexicographic order of node ids).
func NewChannel(key []byte, initiator bool) (*Channel, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("seccha: key must be 32 bytes, got %d", len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("seccha: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("seccha: GCM: %w", err)
	}
	return &Channel{aead: aead, initiator: initiator}, nil
}

func (c *Channel) nonce(seq uint64, sending bool) []byte {
	n := make([]byte, 12)
	dir := byte(0)
	if c.initiator == sending { // initiator's sends and responder's receives share space 1
		dir = 1
	}
	n[0] = dir
	binary.BigEndian.PutUint64(n[4:], seq)
	return n
}

// Seal encrypts and authenticates plaintext, advancing the send sequence.
// The output carries no nonce: both sides track sequences, so any drop or
// reorder surfaces as an authentication failure — the strict in-order
// delivery REX's pairwise TCP/ZeroMQ links provide.
func (c *Channel) Seal(plaintext []byte) []byte {
	return c.SealAppend(nil, plaintext)
}

// SealAppend is Seal appending the ciphertext to dst (which may be nil, or
// a buffer being reused across epochs) and returning the extended slice.
// dst must not alias plaintext.
func (c *Channel) SealAppend(dst, plaintext []byte) []byte {
	ct := c.aead.Seal(dst, c.nonce(c.sendSeq, true), plaintext, nil)
	c.sendSeq++
	return ct
}

// ErrAuth is returned when decryption fails (tampering, replay, or loss).
var ErrAuth = errors.New("seccha: message authentication failed")

// Open decrypts the next in-order ciphertext, advancing the receive
// sequence only on success.
func (c *Channel) Open(ciphertext []byte) ([]byte, error) {
	return c.OpenAppend(nil, ciphertext)
}

// OpenAppend is Open appending the plaintext to dst (which may be nil, or
// a buffer being reused across epochs) and returning the extended slice.
// dst must not alias ciphertext.
func (c *Channel) OpenAppend(dst, ciphertext []byte) ([]byte, error) {
	pt, err := c.aead.Open(dst, c.nonce(c.recvSeq, false), ciphertext, nil)
	if err != nil {
		return nil, ErrAuth
	}
	c.recvSeq++
	return pt, nil
}

// Overhead returns the ciphertext expansion in bytes (the GCM tag).
func (c *Channel) Overhead() int { return c.aead.Overhead() }

// Rekey ratchets the channel onto a fresh key derived from the current
// one via HKDF, resetting both sequence counters. Long-lived REX sessions
// rekey periodically so the nonce space never nears exhaustion and old
// keys cannot decrypt future traffic (forward ratchet). Both peers must
// call Rekey at an agreed point (e.g. every N epochs).
func (c *Channel) Rekey(currentKeyHint []byte) error {
	next := HKDF(currentKeyHint, nil, []byte("rex-rekey-v1"), 32)
	block, err := aes.NewCipher(next)
	if err != nil {
		return fmt.Errorf("seccha: rekey cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return fmt.Errorf("seccha: rekey GCM: %w", err)
	}
	c.aead = aead
	c.sendSeq = 0
	c.recvSeq = 0
	// Zero the caller's copy of the retired key material.
	for i := range currentKeyHint {
		currentKeyHint[i] = 0
	}
	return nil
}
