package seccha

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// detRand is a deterministic entropy source for tests.
func detRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func pair(t *testing.T) (*Channel, *Channel) {
	t.Helper()
	a, err := GenerateKeyPair(detRand(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKeyPair(detRand(2))
	if err != nil {
		t.Fatal(err)
	}
	sa, err := a.SharedSecret(b.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.SharedSecret(a.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatal("ECDH secrets disagree")
	}
	ma := sha256.Sum256([]byte("m"))
	key := ChannelKey(sa, ma[:], ma[:])
	ca, err := NewChannel(key, true)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewChannel(key, false)
	if err != nil {
		t.Fatal(err)
	}
	return ca, cb
}

func TestChannelRoundtrip(t *testing.T) {
	a, b := pair(t)
	msg := []byte("raw ratings are safe in here")
	ct := a.Seal(msg)
	if bytes.Contains(ct, msg) {
		t.Fatal("ciphertext leaks plaintext")
	}
	pt, err := b.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatalf("roundtrip mismatch: %q", pt)
	}
}

// TestChannelAppendVariants pins the buffer-reuse API the live runtime's
// share/open scratch depends on: SealAppend/OpenAppend must produce the
// same bytes as Seal/Open, append after any prefix, and stay correct when
// the same buffer is recycled across messages.
func TestChannelAppendVariants(t *testing.T) {
	key := bytes.Repeat([]byte{0x5c}, 32)
	mk := func(init bool) *Channel {
		c, err := NewChannel(key, init)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(true), mk(false)
	a2, b2 := mk(true), mk(false)
	var sealBuf, openBuf []byte
	for i := 0; i < 5; i++ {
		msg := []byte(fmt.Sprintf("epoch %d payload", i))
		ref := a2.Seal(msg)
		sealBuf = append(sealBuf[:0], 0xEE) // simulated frame kind prefix
		sealBuf = a.SealAppend(sealBuf, msg)
		if sealBuf[0] != 0xEE || !bytes.Equal(sealBuf[1:], ref) {
			t.Fatalf("message %d: SealAppend diverged from Seal", i)
		}
		refPt, err := b2.Open(ref)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := b.OpenAppend(openBuf[:0], sealBuf[1:])
		if err != nil {
			t.Fatal(err)
		}
		openBuf = pt
		if !bytes.Equal(pt, refPt) || !bytes.Equal(pt, msg) {
			t.Fatalf("message %d: OpenAppend mismatch: %q", i, pt)
		}
	}
}

func TestChannelBidirectional(t *testing.T) {
	a, b := pair(t)
	for i := 0; i < 10; i++ {
		m1 := []byte{byte(i), 1}
		m2 := []byte{byte(i), 2}
		if pt, err := b.Open(a.Seal(m1)); err != nil || !bytes.Equal(pt, m1) {
			t.Fatalf("a->b msg %d: %v", i, err)
		}
		if pt, err := a.Open(b.Seal(m2)); err != nil || !bytes.Equal(pt, m2) {
			t.Fatalf("b->a msg %d: %v", i, err)
		}
	}
}

func TestChannelTamperDetected(t *testing.T) {
	a, b := pair(t)
	ct := a.Seal([]byte("payload"))
	ct[len(ct)/2] ^= 0x01
	if _, err := b.Open(ct); err != ErrAuth {
		t.Fatalf("tampering not detected: %v", err)
	}
}

func TestChannelReplayAndReorderRejected(t *testing.T) {
	a, b := pair(t)
	ct1 := a.Seal([]byte("one"))
	ct2 := a.Seal([]byte("two"))
	if _, err := b.Open(ct2); err == nil {
		t.Fatal("out-of-order message accepted")
	}
	if _, err := b.Open(ct1); err != nil {
		t.Fatalf("in-order message rejected after failed open: %v", err)
	}
	if _, err := b.Open(ct1); err == nil {
		t.Fatal("replay accepted")
	}
}

func TestChannelDirectionsSeparate(t *testing.T) {
	a, _ := pair(t)
	ct := a.Seal([]byte("self"))
	// The sender cannot open its own traffic: directions have distinct
	// nonce spaces.
	if _, err := a.Open(ct); err == nil {
		t.Fatal("sender decrypted its own ciphertext")
	}
}

func TestChannelRoundtripProperty(t *testing.T) {
	a, b := pair(t)
	f := func(msg []byte) bool {
		pt, err := b.Open(a.Seal(msg))
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelBadKey(t *testing.T) {
	if _, err := NewChannel(make([]byte, 16), true); err == nil {
		t.Fatal("16-byte key accepted")
	}
}

func TestHKDFDeterministicAndSized(t *testing.T) {
	secret := []byte("secret")
	for _, n := range []int{1, 16, 32, 33, 64, 100} {
		a := HKDF(secret, []byte("salt"), []byte("info"), n)
		b := HKDF(secret, []byte("salt"), []byte("info"), n)
		if len(a) != n || !bytes.Equal(a, b) {
			t.Fatalf("HKDF(%d) len=%d deterministic=%v", n, len(a), bytes.Equal(a, b))
		}
	}
	x := HKDF(secret, nil, []byte("a"), 32)
	y := HKDF(secret, nil, []byte("b"), 32)
	if bytes.Equal(x, y) {
		t.Fatal("different info, same key")
	}
}

func TestChannelKeySymmetric(t *testing.T) {
	ma := sha256.Sum256([]byte("A"))
	mb := sha256.Sum256([]byte("B"))
	s := []byte("shared")
	k1 := ChannelKey(s, ma[:], mb[:])
	k2 := ChannelKey(s, mb[:], ma[:])
	if !bytes.Equal(k1, k2) {
		t.Fatal("channel key depends on argument order")
	}
	if len(k1) != 32 {
		t.Fatalf("key length %d", len(k1))
	}
}

func TestSharedSecretBadKey(t *testing.T) {
	a, err := GenerateKeyPair(detRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.SharedSecret([]byte{1, 2, 3}); err == nil {
		t.Fatal("malformed public key accepted")
	}
}

func TestOverhead(t *testing.T) {
	a, _ := pair(t)
	if a.Overhead() != 16 {
		t.Fatalf("GCM overhead %d", a.Overhead())
	}
	ct := a.Seal([]byte("xx"))
	if len(ct) != 2+16 {
		t.Fatalf("ciphertext length %d", len(ct))
	}
}

func TestRekeyRatchet(t *testing.T) {
	a, err := GenerateKeyPair(detRand(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKeyPair(detRand(11))
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := a.SharedSecret(b.PublicKey())
	m := sha256.Sum256([]byte("m"))
	key := ChannelKey(sa, m[:], m[:])
	ca, _ := NewChannel(append([]byte(nil), key...), true)
	cb, _ := NewChannel(append([]byte(nil), key...), false)

	ct := ca.Seal([]byte("before"))
	if _, err := cb.Open(ct); err != nil {
		t.Fatal(err)
	}

	// Both peers ratchet with their copies of the current key.
	ka := append([]byte(nil), key...)
	kb := append([]byte(nil), key...)
	if err := ca.Rekey(ka); err != nil {
		t.Fatal(err)
	}
	if err := cb.Rekey(kb); err != nil {
		t.Fatal(err)
	}
	for i := range ka {
		if ka[i] != 0 {
			t.Fatal("retired key not zeroed")
		}
	}

	ct2 := ca.Seal([]byte("after"))
	pt, err := cb.Open(ct2)
	if err != nil || string(pt) != "after" {
		t.Fatalf("post-rekey roundtrip: %v", err)
	}

	// A channel still on the old key cannot read post-rekey traffic.
	stale, _ := NewChannel(key, false)
	ct3 := ca.Seal([]byte("secret"))
	if _, err := stale.Open(ct3); err == nil {
		t.Fatal("old key decrypted post-rekey traffic")
	}
}
