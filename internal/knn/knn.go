// Package knn implements user-based K-nearest-neighbour collaborative
// filtering — the other decentralized recommender family the paper
// surveys (§II-B, citing WHATSUP): predictions from the opinions of the k
// most similar users. KNN fundamentally requires access to *other users'
// raw profiles*, which classical parameter-sharing DLS cannot provide; a
// REX node's deduplicated raw-data store is exactly the profile database
// KNN needs, so raw data sharing enables this model family for free. The
// ext-knn experiment quantifies that.
package knn

import (
	"math"
	"sort"

	"rex/internal/dataset"
)

// Config holds KNN hyperparameters.
type Config struct {
	// K is the neighbourhood size.
	K int
	// MinOverlap is the minimum number of co-rated items for a similarity
	// to count (guards against spurious 1-item matches).
	MinOverlap int
	// GlobalMean is the cold-start prediction.
	GlobalMean float64
}

// DefaultConfig returns commonly used KNN settings.
func DefaultConfig() Config { return Config{K: 20, MinOverlap: 2, GlobalMean: 3.5} }

// Recommender predicts ratings from a set of raw profiles using cosine
// similarity over mean-centered co-rated items (adjusted cosine).
//
// Profiles are stored in CSR form: one packed row of ascending (item,
// value) pairs per user, plus the per-user mean. Compared to the earlier
// map-of-maps layout this costs ~12 bytes per rating instead of ~100, and
// similarity walks two sorted rows in item order — a fixed summation
// order, so similarities are deterministic run to run (map iteration made
// them dependent on hash seeding before).
type Recommender struct {
	cfg   Config
	users []uint32 // sorted distinct user ids; row r belongs to users[r]
	start []int32  // len(users)+1 row offsets into items/vals
	items []uint32 // ascending item ids within each row
	vals  []float64
	mean  []float64 // per-row mean rating
}

// New builds a recommender from raw ratings (e.g. a REX node's store).
// Duplicate (user,item) pairs keep the last value for the profile; every
// occurrence still contributes to the user's mean, matching the previous
// implementation's accounting.
func New(cfg Config, ratings []dataset.Rating) *Recommender {
	if cfg.K <= 0 {
		cfg.K = 20
	}
	r := &Recommender{cfg: cfg}
	if len(ratings) == 0 {
		r.start = []int32{0}
		return r
	}
	// Sort a copy by (user, item), keeping input order within equal pairs
	// so "last occurrence wins" survives the stable sort.
	rs := make([]dataset.Rating, len(ratings))
	copy(rs, ratings)
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].User != rs[j].User {
			return rs[i].User < rs[j].User
		}
		return rs[i].Item < rs[j].Item
	})
	r.start = append(r.start, 0)
	var sum float64
	var n int
	flush := func(user uint32) {
		r.users = append(r.users, user)
		r.start = append(r.start, int32(len(r.items)))
		r.mean = append(r.mean, sum/float64(n))
		sum, n = 0, 0
	}
	for i, rt := range rs {
		if i > 0 && rt.User != rs[i-1].User {
			flush(rs[i-1].User)
		}
		v := float64(rt.Value)
		sum += v
		n++
		if last := len(r.items) - 1; last >= int(r.start[len(r.start)-1]) && r.items[last] == rt.Item {
			r.vals[last] = v // duplicate pair: newest opinion wins
			continue
		}
		r.items = append(r.items, rt.Item)
		r.vals = append(r.vals, v)
	}
	flush(rs[len(rs)-1].User)
	return r
}

// NumProfiles returns how many distinct users the recommender knows.
func (r *Recommender) NumProfiles() int { return len(r.users) }

// rowOf returns the CSR row for user, or -1.
func (r *Recommender) rowOf(user uint32) int {
	i := sort.Search(len(r.users), func(i int) bool { return r.users[i] >= user })
	if i < len(r.users) && r.users[i] == user {
		return i
	}
	return -1
}

// row returns the items and values of row i.
func (r *Recommender) row(i int) ([]uint32, []float64) {
	lo, hi := r.start[i], r.start[i+1]
	return r.items[lo:hi], r.vals[lo:hi]
}

// rated returns the value of item in row i, if present.
func (r *Recommender) rated(i int, item uint32) (float64, bool) {
	its, vls := r.row(i)
	j := sort.Search(len(its), func(j int) bool { return its[j] >= item })
	if j < len(its) && its[j] == item {
		return vls[j], true
	}
	return 0, false
}

// similarity computes the adjusted-cosine similarity between two users
// over their co-rated items; ok is false below the overlap threshold.
// Both rows are walked in ascending item order, so the summation order —
// and hence the float64 result — is a pure function of the profiles.
func (r *Recommender) similarity(a, b uint32) (float64, bool) {
	ra, rb := r.rowOf(a), r.rowOf(b)
	if ra < 0 || rb < 0 {
		return 0, false
	}
	return r.rowSimilarity(ra, rb)
}

func (r *Recommender) rowSimilarity(ra, rb int) (float64, bool) {
	ia, va := r.row(ra)
	ib, vb := r.row(rb)
	ma, mb := r.mean[ra], r.mean[rb]
	var dot, na, nb float64
	overlap := 0
	for x, y := 0, 0; x < len(ia) && y < len(ib); {
		switch {
		case ia[x] < ib[y]:
			x++
		case ia[x] > ib[y]:
			y++
		default:
			da, db := va[x]-ma, vb[y]-mb
			dot += da * db
			na += da * da
			nb += db * db
			overlap++
			x++
			y++
		}
	}
	if overlap < r.cfg.MinOverlap || na == 0 || nb == 0 {
		return 0, false
	}
	return dot / math.Sqrt(na*nb), true
}

type neighbor struct {
	row int
	sim float64
}

// neighbors returns the k most similar users to `user` that have rated
// `item`.
func (r *Recommender) neighbors(userRow int, user, item uint32) []neighbor {
	var cands []neighbor
	for other := range r.users {
		if other == userRow {
			continue
		}
		if _, ok := r.rated(other, item); !ok {
			continue
		}
		if s, ok := r.rowSimilarity(userRow, other); ok && s > 0 {
			cands = append(cands, neighbor{row: other, sim: s})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sim != cands[j].sim {
			return cands[i].sim > cands[j].sim
		}
		return r.users[cands[i].row] < r.users[cands[j].row]
	})
	if len(cands) > r.cfg.K {
		cands = cands[:r.cfg.K]
	}
	return cands
}

// Predict estimates user's rating of item: the user's mean plus the
// similarity-weighted mean-centered opinions of the neighbourhood.
func (r *Recommender) Predict(user, item uint32) float64 {
	base := r.cfg.GlobalMean
	userRow := r.rowOf(user)
	if userRow < 0 {
		return base
	}
	base = r.mean[userRow]
	nb := r.neighbors(userRow, user, item)
	if len(nb) == 0 {
		return base
	}
	var num, den float64
	for _, n := range nb {
		v, _ := r.rated(n.row, item)
		num += n.sim * (v - r.mean[n.row])
		den += math.Abs(n.sim)
	}
	if den == 0 {
		return base
	}
	return base + num/den
}

// RMSE evaluates the recommender over held-out ratings, clamping into the
// star range like model.RMSE.
func (r *Recommender) RMSE(test []dataset.Rating) float64 {
	if len(test) == 0 {
		return 0
	}
	var se float64
	for _, t := range test {
		p := r.Predict(t.User, t.Item)
		if p < 0.5 {
			p = 0.5
		}
		if p > 5 {
			p = 5
		}
		d := p - float64(t.Value)
		se += d * d
	}
	return math.Sqrt(se / float64(len(test)))
}
