// Package knn implements user-based K-nearest-neighbour collaborative
// filtering — the other decentralized recommender family the paper
// surveys (§II-B, citing WHATSUP): predictions from the opinions of the k
// most similar users. KNN fundamentally requires access to *other users'
// raw profiles*, which classical parameter-sharing DLS cannot provide; a
// REX node's deduplicated raw-data store is exactly the profile database
// KNN needs, so raw data sharing enables this model family for free. The
// ext-knn experiment quantifies that.
package knn

import (
	"math"
	"sort"

	"rex/internal/dataset"
)

// Config holds KNN hyperparameters.
type Config struct {
	// K is the neighbourhood size.
	K int
	// MinOverlap is the minimum number of co-rated items for a similarity
	// to count (guards against spurious 1-item matches).
	MinOverlap int
	// GlobalMean is the cold-start prediction.
	GlobalMean float64
}

// DefaultConfig returns commonly used KNN settings.
func DefaultConfig() Config { return Config{K: 20, MinOverlap: 2, GlobalMean: 3.5} }

// Recommender predicts ratings from a set of raw profiles using cosine
// similarity over mean-centered co-rated items (adjusted cosine).
type Recommender struct {
	cfg Config
	// profiles[user][item] = rating
	profiles map[uint32]map[uint32]float64
	// userMean[user] = mean rating
	userMean map[uint32]float64
}

// New builds a recommender from raw ratings (e.g. a REX node's store).
func New(cfg Config, ratings []dataset.Rating) *Recommender {
	if cfg.K <= 0 {
		cfg.K = 20
	}
	r := &Recommender{
		cfg:      cfg,
		profiles: make(map[uint32]map[uint32]float64),
		userMean: make(map[uint32]float64),
	}
	counts := make(map[uint32]int)
	for _, rt := range ratings {
		p, ok := r.profiles[rt.User]
		if !ok {
			p = make(map[uint32]float64)
			r.profiles[rt.User] = p
		}
		p[rt.Item] = float64(rt.Value)
		r.userMean[rt.User] += float64(rt.Value)
		counts[rt.User]++
	}
	for u, c := range counts {
		r.userMean[u] /= float64(c)
	}
	return r
}

// NumProfiles returns how many distinct users the recommender knows.
func (r *Recommender) NumProfiles() int { return len(r.profiles) }

// similarity computes the adjusted-cosine similarity between two users
// over their co-rated items; ok is false below the overlap threshold.
func (r *Recommender) similarity(a, b uint32) (float64, bool) {
	pa, pb := r.profiles[a], r.profiles[b]
	if len(pa) > len(pb) {
		pa, pb = pb, pa
		a, b = b, a
	}
	ma, mb := r.userMean[a], r.userMean[b]
	var dot, na, nb float64
	overlap := 0
	for item, va := range pa {
		vb, ok := pb[item]
		if !ok {
			continue
		}
		da, db := va-ma, vb-mb
		dot += da * db
		na += da * da
		nb += db * db
		overlap++
	}
	if overlap < r.cfg.MinOverlap || na == 0 || nb == 0 {
		return 0, false
	}
	return dot / math.Sqrt(na*nb), true
}

type neighbor struct {
	user uint32
	sim  float64
}

// neighbors returns the k most similar users to `user` that have rated
// `item`.
func (r *Recommender) neighbors(user, item uint32) []neighbor {
	var cands []neighbor
	for other := range r.profiles {
		if other == user {
			continue
		}
		if _, rated := r.profiles[other][item]; !rated {
			continue
		}
		if s, ok := r.similarity(user, other); ok && s > 0 {
			cands = append(cands, neighbor{user: other, sim: s})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sim != cands[j].sim {
			return cands[i].sim > cands[j].sim
		}
		return cands[i].user < cands[j].user
	})
	if len(cands) > r.cfg.K {
		cands = cands[:r.cfg.K]
	}
	return cands
}

// Predict estimates user's rating of item: the user's mean plus the
// similarity-weighted mean-centered opinions of the neighbourhood.
func (r *Recommender) Predict(user, item uint32) float64 {
	base := r.cfg.GlobalMean
	if m, ok := r.userMean[user]; ok {
		base = m
	}
	nb := r.neighbors(user, item)
	if len(nb) == 0 {
		return base
	}
	var num, den float64
	for _, n := range nb {
		num += n.sim * (r.profiles[n.user][item] - r.userMean[n.user])
		den += math.Abs(n.sim)
	}
	if den == 0 {
		return base
	}
	return base + num/den
}

// RMSE evaluates the recommender over held-out ratings, clamping into the
// star range like model.RMSE.
func (r *Recommender) RMSE(test []dataset.Rating) float64 {
	if len(test) == 0 {
		return 0
	}
	var se float64
	for _, t := range test {
		p := r.Predict(t.User, t.Item)
		if p < 0.5 {
			p = 0.5
		}
		if p > 5 {
			p = 5
		}
		d := p - float64(t.Value)
		se += d * d
	}
	return math.Sqrt(se / float64(len(test)))
}
