package knn

import (
	"math"
	"math/rand"
	"testing"

	"rex/internal/dataset"
	"rex/internal/movielens"
)

func TestPredictFromSimilarUsers(t *testing.T) {
	// Users 0 and 1 agree on items 0,1; user 1 also rated item 2 highly.
	rs := []dataset.Rating{
		{User: 0, Item: 0, Value: 5}, {User: 0, Item: 1, Value: 1},
		{User: 1, Item: 0, Value: 5}, {User: 1, Item: 1, Value: 1}, {User: 1, Item: 2, Value: 5},
		// An anti-correlated user also rated item 2 — low.
		{User: 2, Item: 0, Value: 1}, {User: 2, Item: 1, Value: 5}, {User: 2, Item: 2, Value: 1},
	}
	r := New(Config{K: 1, MinOverlap: 2, GlobalMean: 3}, rs)
	p := r.Predict(0, 2)
	// The similar user rated item 2 at 5 (above their mean): prediction
	// must be above user 0's mean (3).
	if p <= 3 {
		t.Fatalf("prediction %v should exceed the user mean", p)
	}
}

func TestPredictColdStart(t *testing.T) {
	r := New(DefaultConfig(), nil)
	if p := r.Predict(0, 0); p != DefaultConfig().GlobalMean {
		t.Fatalf("cold prediction %v", p)
	}
	r2 := New(DefaultConfig(), []dataset.Rating{{User: 7, Item: 1, Value: 4}})
	// Known user, no neighbors: user mean.
	if p := r2.Predict(7, 99); p != 4 {
		t.Fatalf("user-mean fallback %v", p)
	}
}

func TestSimilaritySymmetric(t *testing.T) {
	rs := []dataset.Rating{
		{User: 0, Item: 0, Value: 5}, {User: 0, Item: 1, Value: 2}, {User: 0, Item: 2, Value: 4},
		{User: 1, Item: 0, Value: 4}, {User: 1, Item: 1, Value: 1}, {User: 1, Item: 2, Value: 5},
	}
	r := New(Config{K: 5, MinOverlap: 2, GlobalMean: 3}, rs)
	ab, ok1 := r.similarity(0, 1)
	ba, ok2 := r.similarity(1, 0)
	if !ok1 || !ok2 {
		t.Fatal("similarity unavailable")
	}
	if math.Abs(ab-ba) > 1e-12 {
		t.Fatalf("asymmetric similarity: %v vs %v", ab, ba)
	}
}

func TestMinOverlapGuards(t *testing.T) {
	rs := []dataset.Rating{
		{User: 0, Item: 0, Value: 5}, {User: 0, Item: 5, Value: 2},
		{User: 1, Item: 0, Value: 5}, {User: 1, Item: 9, Value: 2},
	}
	r := New(Config{K: 5, MinOverlap: 2, GlobalMean: 3}, rs)
	if _, ok := r.similarity(0, 1); ok {
		t.Fatal("single-item overlap passed MinOverlap=2")
	}
}

// TestKNNImprovesWithMoreProfiles is the REX-enables-KNN property: the
// same user's predictions get better as more alien raw profiles land in
// the store — exactly what raw data sharing provides and parameter
// sharing cannot.
func TestKNNImprovesWithMoreProfiles(t *testing.T) {
	spec := movielens.Latest().Scaled(0.08)
	spec.Seed = 5
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(6))
	tr, te := ds.SplitPerUser(0.7, rng)

	// "Local only": profiles of 10% of users. "After gossip": all.
	few := make([]dataset.Rating, 0)
	cut := uint32(ds.NumUsers / 10)
	for _, r := range tr.Ratings {
		if r.User < cut {
			few = append(few, r)
		}
	}
	// Evaluate on the same subset of test users present in both.
	var testSubset []dataset.Rating
	for _, r := range te.Ratings {
		if r.User < cut {
			testSubset = append(testSubset, r)
		}
	}
	local := New(DefaultConfig(), few).RMSE(testSubset)
	full := New(DefaultConfig(), tr.Ratings).RMSE(testSubset)
	if full >= local {
		t.Fatalf("more profiles should improve KNN: local-only %.4f, full %.4f", local, full)
	}
}

func TestRMSEEmpty(t *testing.T) {
	r := New(DefaultConfig(), nil)
	if got := r.RMSE(nil); got != 0 {
		t.Fatalf("empty rmse %v", got)
	}
}

func TestNumProfiles(t *testing.T) {
	r := New(DefaultConfig(), []dataset.Rating{{User: 1, Item: 1, Value: 3}, {User: 2, Item: 1, Value: 4}})
	if r.NumProfiles() != 2 {
		t.Fatalf("profiles %d", r.NumProfiles())
	}
}
