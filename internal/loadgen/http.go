package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"rex/internal/serve"
)

// HTTPTarget replays a schedule against a live rexd deployment: the same
// events the sim driver feeds in-process go out as real HTTP requests,
// routed user→node exactly like the sim's shard routing, so the two
// modes are directly comparable. EndTick paces to the spec's tick_millis
// wall clock; Finish scrapes every node's /metrics and merges them.
type HTTPTarget struct {
	urls       []string
	client     *http.Client
	tickMillis int
	start      time.Time
}

// NewHTTPTarget builds a live-cluster target from base URLs (e.g.
// "http://127.0.0.1:8800,http://127.0.0.1:8801"). tickMillis paces
// replay; 0 replays as fast as the cluster accepts. timeout bounds each
// request (connect through body; 0 = 30s) so one wedged node turns into
// a counted failure, not a stuck run.
func NewHTTPTarget(urls []string, tickMillis int, timeout time.Duration) (*HTTPTarget, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("loadgen: no target urls")
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	clean := make([]string, len(urls))
	for i, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("loadgen: empty target url at position %d", i)
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		clean[i] = u
	}
	return &HTTPTarget{
		urls:       clean,
		client:     &http.Client{Timeout: timeout},
		tickMillis: tickMillis,
		start:      time.Now(),
	}, nil
}

// NumItems implements CatalogReporter: the smallest num_items across the
// cluster's /status responses — the binding constraint for routed
// writes. An unreachable node is an error (the run would fail anyway);
// a node that omits the field is skipped.
func (h *HTTPTarget) NumItems() (int, error) {
	min := 0
	for _, base := range h.urls {
		resp, err := h.client.Get(base + "/status")
		if err != nil {
			return 0, fmt.Errorf("probing %s/status: %w", base, err)
		}
		var st struct {
			NumItems int `json:"num_items"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return 0, fmt.Errorf("decoding %s/status: %w", base, err)
		}
		if st.NumItems > 0 && (min == 0 || st.NumItems < min) {
			min = st.NumItems
		}
	}
	return min, nil
}

// Do implements Target: one real HTTP request, routed by user.
func (h *HTTPTarget) Do(ev Event) (int, error) {
	base := h.urls[int(ev.User)%len(h.urls)]
	method, target, body := eventRequest(ev)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, base+target, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// EndTick implements Target: sleep until the next tick boundary, so the
// replayed schedule's arrival times track the spec's tick clock (a tick
// whose dispatch overran its budget starts the next one immediately).
func (h *HTTPTarget) EndTick(t int) error {
	if h.tickMillis <= 0 {
		return nil
	}
	deadline := h.start.Add(time.Duration(t+1) * time.Duration(h.tickMillis) * time.Millisecond)
	if d := time.Until(deadline); d > 0 {
		time.Sleep(d)
	}
	return nil
}

// Finish implements Target: scrape and merge every node's /metrics.
func (h *HTTPTarget) Finish() (*ServerMetrics, error) {
	merged := newServerMetrics()
	for _, base := range h.urls {
		resp, err := h.client.Get(base + "/metrics")
		if err != nil {
			return nil, fmt.Errorf("scraping %s/metrics: %w", base, err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("scraping %s/metrics: %w", base, err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("scraping %s/metrics: status %d", base, resp.StatusCode)
		}
		var mr serve.MetricsResponse
		if err := json.Unmarshal(data, &mr); err != nil {
			return nil, fmt.Errorf("decoding %s/metrics: %w", base, err)
		}
		merged.fold(&mr)
	}
	return merged, nil
}
