package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rex/internal/metrics"
)

// Target is where generated events land. One Runner implementation
// drives both deployment shapes through this seam: an in-process engine
// cluster (EngineCluster) and a live rexd deployment over HTTP
// (HTTPTarget).
type Target interface {
	// Do dispatches one event and returns the HTTP status observed.
	// Safe for concurrent use.
	Do(ev Event) (int, error)
	// EndTick is called once after all of tick t's events completed —
	// the sim driver trains an epoch here, the live driver paces to the
	// tick boundary.
	EndTick(t int) error
	// Finish ends the run and returns the server-side metrics scrape
	// (merged across nodes), nil if the target has none.
	Finish() (*ServerMetrics, error)
}

// CatalogReporter is an optional Target extension: targets that know
// their serving catalog size report it so Run can fail fast when the
// spec's item universe exceeds it. Without the preflight, every write to
// an out-of-catalog item comes back 400 and a live run silently loses a
// slice of its schedule (the PR 9 caveat).
type CatalogReporter interface {
	// NumItems returns the smallest catalog size across the target's
	// nodes, or 0 if unknown (which skips the preflight).
	NumItems() (int, error)
}

// ServerMetrics is the merged server-side view scraped from the
// target's /metrics endpoints after a run.
type ServerMetrics struct {
	// Endpoints maps endpoint name to merged latency histograms and
	// status counts.
	Endpoints map[string]*EndpointStats
	// Stages maps pipeline stage (train, merge, seal, wire, ...) to
	// merged per-epoch duration histograms.
	Stages map[string]*metrics.HistSnapshot
}

// EndpointStats is one endpoint's merged server-side data.
type EndpointStats struct {
	Hist     *metrics.HistSnapshot
	Statuses map[int]uint64
}

// Options tunes a run.
type Options struct {
	// Workers is the dispatch concurrency per tick (default 4). The
	// event schedule is independent of it; only dispatch interleaving
	// changes.
	Workers int
	// Retries bounds how many times a retryable outcome (transport
	// error, 429, 503) is retried per event. 0 = no retries.
	Retries int
	// RetryBase is the exponential backoff base (default 50ms when
	// Retries > 0). The wait before retry k is RetryBase<<(k-1) plus
	// jitter.
	RetryBase time.Duration
	// RetryJitter bounds the per-attempt deterministic jitter added to
	// the backoff (default = RetryBase). Derived from the event hash —
	// see RetryBackoff.
	RetryJitter time.Duration
}

// LatencySummary is the report form of a histogram.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

func summarize(s *metrics.HistSnapshot) LatencySummary {
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	if s == nil {
		return LatencySummary{}
	}
	return LatencySummary{
		Count:  s.Count,
		MeanMs: ms(s.Mean()),
		P50Ms:  ms(s.Quantile(0.50)),
		P95Ms:  ms(s.Quantile(0.95)),
		P99Ms:  ms(s.Quantile(0.99)),
	}
}

// EndpointReport is one endpoint's line in a report.
type EndpointReport struct {
	LatencySummary
	// Statuses counts responses by HTTP status code.
	Statuses map[int]uint64 `json:"statuses,omitempty"`
}

// Report is the outcome of one load run — the schema of BENCH_load.json.
type Report struct {
	// Spec echoes the workload that ran.
	Spec *Spec `json:"spec"`
	// Mode is "sim" (in-process engines) or "live" (HTTP).
	Mode string `json:"mode"`
	// Nodes is the cluster size events were spread over.
	Nodes int `json:"nodes"`
	// Workers is the dispatch concurrency used.
	Workers int `json:"workers"`
	// WallSec is the run's wall-clock length.
	WallSec float64 `json:"wall_sec"`
	// Events is the number of events dispatched.
	Events uint64 `json:"events"`
	// EventsPerSec is Events/WallSec.
	EventsPerSec float64 `json:"events_per_sec"`
	// ScheduleDigest fingerprints the event schedule (hex): equal
	// digests = identical schedules, across worker counts and across
	// sim vs live replay. Retries and sheds don't perturb it — it
	// fingerprints generated events, not dispatch attempts.
	ScheduleDigest string `json:"schedule_digest"`
	// Outcomes counts events by how they ended: accepted first try,
	// retried-then-succeeded, shed (429/503, budget exhausted),
	// rejected (400), or failed (transport / hard server error).
	Outcomes Outcomes `json:"outcomes"`
	// Client holds client-observed request latency per endpoint
	// ("rate", "recommend"), including queueing and transport.
	Client map[string]EndpointReport `json:"client"`
	// Server holds the server-side view scraped from /metrics, merged
	// across nodes (handler time only).
	Server map[string]EndpointReport `json:"server,omitempty"`
	// Stages holds per-epoch pipeline stage percentiles (train, merge,
	// seal, wire, ...), merged across nodes.
	Stages map[string]LatencySummary `json:"stages,omitempty"`
}

// Run generates spec's schedule and drives it into the target tick by
// tick. Dispatch latency is recorded client-side per endpoint; after the
// last tick the target's server-side metrics are folded into the report.
func Run(spec *Spec, tgt Target, mode string, nodes int, opt Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 4
	}
	retryBase := opt.RetryBase
	if opt.Retries > 0 && retryBase <= 0 {
		retryBase = 50 * time.Millisecond
	}
	retryJitter := opt.RetryJitter
	if opt.Retries > 0 && retryJitter <= 0 {
		retryJitter = retryBase
	}
	// Preflight: a spec whose item universe exceeds the target's catalog
	// would have every out-of-catalog write rejected 400 — fail fast
	// with the fix instead of silently losing a slice of the schedule.
	if cr, ok := tgt.(CatalogReporter); ok {
		n, err := cr.NumItems()
		if err != nil {
			return nil, fmt.Errorf("loadgen: preflight catalog check: %w", err)
		}
		if n > 0 && spec.Items > n {
			return nil, fmt.Errorf(
				"loadgen: spec item universe (%d items) exceeds the target catalog (%d items): "+
					"writes to items >= %d would be rejected 400 and silently lost — "+
					"regenerate the daemon dataset with a larger -scale, or shrink the spec's \"items\"",
				spec.Items, n, n)
		}
	}
	gen := NewGen(spec)

	var rateHist, queryHist metrics.Hist
	statuses := map[Kind]map[int]uint64{Write: {}, Query: {}}
	var statusMu sync.Mutex
	var digest, events uint64
	var outAccepted, outRetriedOK, outShed, outRejected, outFailed, outRetries atomic.Uint64

	start := time.Now()
	var buf []Event
	for t := 0; t < spec.Ticks; t++ {
		buf = gen.EventsAt(t, buf[:0])
		for _, ev := range buf {
			digest ^= ev.Digest()
		}
		events += uint64(len(buf))

		// Fan the tick's events over the workers. Chunking by stride
		// keeps per-worker load balanced without any coordination.
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(buf); i += workers {
					ev := buf[i]
					// Bounded retry: histograms and status counts see
					// every attempt (they measure traffic), outcome
					// counters see each event once (they classify it).
					var status int
					var err error
					attempts := 0
					for {
						attempts++
						reqStart := time.Now()
						status, err = tgt.Do(ev)
						elapsed := time.Since(reqStart)
						statusMu.Lock()
						statuses[ev.Kind][status]++ // transport errors count as status 0
						statusMu.Unlock()
						if err == nil {
							if ev.Kind == Query {
								queryHist.Observe(elapsed)
							} else {
								rateHist.Observe(elapsed)
							}
						}
						if !Retryable(status, err) || attempts > opt.Retries {
							break
						}
						time.Sleep(RetryBackoff(ev, attempts, retryBase, retryJitter))
					}
					outRetries.Add(uint64(attempts - 1))
					switch {
					case err != nil:
						outFailed.Add(1)
					case status >= 200 && status < 300:
						if attempts > 1 {
							outRetriedOK.Add(1)
						} else {
							outAccepted.Add(1)
						}
					case status == 429 || status == 503:
						outShed.Add(1)
					case status >= 400 && status < 500:
						outRejected.Add(1)
					default:
						outFailed.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		if err := tgt.EndTick(t); err != nil {
			return nil, fmt.Errorf("loadgen: tick %d: %w", t, err)
		}
	}
	wall := time.Since(start).Seconds()

	rep := &Report{
		Spec: spec, Mode: mode, Nodes: nodes, Workers: workers,
		WallSec: wall, Events: events,
		ScheduleDigest: fmt.Sprintf("%016x", digest),
		Outcomes: Outcomes{
			Accepted:  outAccepted.Load(),
			RetriedOK: outRetriedOK.Load(),
			Shed:      outShed.Load(),
			Rejected:  outRejected.Load(),
			Failed:    outFailed.Load(),
			Retries:   outRetries.Load(),
		},
		Client: map[string]EndpointReport{
			"rate":      {LatencySummary: summarize(rateHist.Snapshot()), Statuses: statuses[Write]},
			"recommend": {LatencySummary: summarize(queryHist.Snapshot()), Statuses: statuses[Query]},
		},
	}
	if wall > 0 {
		rep.EventsPerSec = float64(events) / wall
	}

	sm, err := tgt.Finish()
	if err != nil {
		return nil, fmt.Errorf("loadgen: finishing: %w", err)
	}
	if sm != nil {
		rep.Server = make(map[string]EndpointReport, len(sm.Endpoints))
		for name, es := range sm.Endpoints {
			rep.Server[name] = EndpointReport{LatencySummary: summarize(es.Hist), Statuses: es.Statuses}
		}
		rep.Stages = make(map[string]LatencySummary, len(sm.Stages))
		for name, h := range sm.Stages {
			rep.Stages[name] = summarize(h)
		}
	}
	return rep, nil
}
