// Package loadgen is the declarative workload generator for REX serving
// clusters: a JSON spec describes per-user rating arrival rates,
// heavy-tailed (Zipf) user activity, diurnal rate modulation, the
// query:write mix, and flash crowds on hot items — and the generator
// turns it into a concrete event schedule where every event is a pure
// hash of (seed, user, tick). Like the faultnet fault scenarios, the
// same spec + seed always replays the identical schedule, so a load test
// is a reproducible experiment, not a dice roll: the schedule driven
// into an in-process engine cluster is event-for-event the schedule
// driven against a live rexd deployment.
package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
)

// Diurnal modulates the global arrival rate sinusoidally:
// rate(t) = base · (1 + Amplitude·sin(2πt/PeriodTicks)), the day/night
// cycle of an interactive service compressed into the spec's tick scale.
type Diurnal struct {
	// Amplitude in [0, 1]: peak-to-mean rate ratio minus one.
	Amplitude float64 `json:"amplitude"`
	// PeriodTicks is the full cycle length in ticks.
	PeriodTicks int `json:"period_ticks"`
}

// FlashCrowd is a burst window on one hot item: while active it
// multiplies the overall arrival rate by Boost and redirects a Focus
// fraction of write events onto Item — the "everyone rates the new
// release" pattern.
type FlashCrowd struct {
	// Item is the hot item all redirected writes land on.
	Item uint32 `json:"item"`
	// StartTick is the first tick of the window.
	StartTick int `json:"start_tick"`
	// Ticks is the window length.
	Ticks int `json:"ticks"`
	// Boost multiplies every user's arrival rate inside the window (1 =
	// no rate change, just refocused writes).
	Boost float64 `json:"boost"`
	// Focus in [0, 1] is the fraction of writes redirected to Item.
	Focus float64 `json:"focus"`
}

// Spec is the declarative workload: everything the generator needs to
// derive the full event schedule as a pure function of Seed.
type Spec struct {
	// Name labels reports and canned specs.
	Name string `json:"name"`
	// Seed drives every event decision; same spec+seed = same schedule.
	Seed uint64 `json:"seed"`
	// Users is the simulated user population. Users are request sources;
	// they need not exist in the cluster's training data (ratings for
	// unseen users are how profiles bootstrap).
	Users int `json:"users"`
	// Items bounds the item ids events touch; must not exceed the
	// cluster's catalog (serve rejects out-of-catalog writes).
	Items int `json:"items"`
	// Ticks is the schedule length.
	Ticks int `json:"ticks"`
	// TickMillis is the real-time length of one tick when replaying
	// against a live cluster (the sim driver runs ticks back to back).
	// 0 = no pacing.
	TickMillis int `json:"tick_millis"`
	// RatePerUserTick is the mean number of events an average-activity
	// user emits per tick.
	RatePerUserTick float64 `json:"rate_per_user_tick"`
	// ZipfS is the Zipf exponent of per-user activity: user activity
	// rank r gets weight ∝ (r+1)^-ZipfS, normalized to mean 1. 0 =
	// uniform activity.
	ZipfS float64 `json:"zipf_s"`
	// QueryFraction in [0, 1] is the probability an event is a
	// /recommend query rather than a /rate write.
	QueryFraction float64 `json:"query_fraction"`
	// TopN is the n= each query asks for (default 10).
	TopN int `json:"top_n,omitempty"`
	// Diurnal, when set, modulates the rate over time.
	Diurnal *Diurnal `json:"diurnal,omitempty"`
	// FlashCrowds lists burst windows; overlapping windows multiply.
	FlashCrowds []FlashCrowd `json:"flash_crowds,omitempty"`
}

// Validate checks the spec for structural soundness.
func (s *Spec) Validate() error {
	if s.Users <= 0 {
		return fmt.Errorf("loadgen: users must be positive (got %d)", s.Users)
	}
	if s.Items <= 0 {
		return fmt.Errorf("loadgen: items must be positive (got %d)", s.Items)
	}
	if s.Ticks <= 0 {
		return fmt.Errorf("loadgen: ticks must be positive (got %d)", s.Ticks)
	}
	if s.TickMillis < 0 {
		return fmt.Errorf("loadgen: tick_millis must be >= 0 (got %d)", s.TickMillis)
	}
	if s.RatePerUserTick < 0 {
		return fmt.Errorf("loadgen: rate_per_user_tick must be >= 0 (got %v)", s.RatePerUserTick)
	}
	if s.ZipfS < 0 {
		return fmt.Errorf("loadgen: zipf_s must be >= 0 (got %v)", s.ZipfS)
	}
	if s.QueryFraction < 0 || s.QueryFraction > 1 {
		return fmt.Errorf("loadgen: query_fraction must be in [0, 1] (got %v)", s.QueryFraction)
	}
	if s.TopN < 0 {
		return fmt.Errorf("loadgen: top_n must be >= 0 (got %d)", s.TopN)
	}
	if d := s.Diurnal; d != nil {
		if d.Amplitude < 0 || d.Amplitude > 1 {
			return fmt.Errorf("loadgen: diurnal amplitude must be in [0, 1] (got %v)", d.Amplitude)
		}
		if d.PeriodTicks <= 0 {
			return fmt.Errorf("loadgen: diurnal period_ticks must be positive (got %d)", d.PeriodTicks)
		}
	}
	for i, f := range s.FlashCrowds {
		if int(f.Item) >= s.Items {
			return fmt.Errorf("loadgen: flash crowd %d: item %d outside catalog of %d", i, f.Item, s.Items)
		}
		if f.Ticks <= 0 {
			return fmt.Errorf("loadgen: flash crowd %d: ticks must be positive (got %d)", i, f.Ticks)
		}
		if f.StartTick < 0 {
			return fmt.Errorf("loadgen: flash crowd %d: start_tick must be >= 0 (got %d)", i, f.StartTick)
		}
		if f.Boost < 0 {
			return fmt.Errorf("loadgen: flash crowd %d: boost must be >= 0 (got %v)", i, f.Boost)
		}
		if f.Focus < 0 || f.Focus > 1 {
			return fmt.Errorf("loadgen: flash crowd %d: focus must be in [0, 1] (got %v)", i, f.Focus)
		}
	}
	return nil
}

// topN returns the effective query depth.
func (s *Spec) topN() int {
	if s.TopN <= 0 {
		return 10
	}
	return s.TopN
}

// Parse decodes and validates a JSON spec.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("loadgen: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads a spec from a JSON file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	return Parse(data)
}

// Canned returns the built-in workload specs, the load-test counterparts
// of faultnet's canned fault scenarios. Item populations fit the default
// rexd -scale 0.1 catalog (900 items), so every canned spec runs against
// a stock 2-node quickstart cluster unchanged.
func Canned() []*Spec {
	return []*Spec{
		{
			// Uniform users, steady rate, read-heavy: the smoke-test
			// baseline whose percentiles isolate serving-path cost.
			Name: "steady", Seed: 1,
			Users: 200, Items: 200, Ticks: 20, TickMillis: 100,
			RatePerUserTick: 0.5, QueryFraction: 0.7,
		},
		{
			// Heavy-tailed activity under a diurnal swing: a few users
			// dominate the write stream while the global rate breathes.
			Name: "zipf-burst", Seed: 7,
			Users: 500, Items: 400, Ticks: 30, TickMillis: 100,
			RatePerUserTick: 0.4, ZipfS: 1.1, QueryFraction: 0.5,
			Diurnal: &Diurnal{Amplitude: 0.6, PeriodTicks: 20},
		},
		{
			// A 3x arrival spike with 80% of writes converging on one hot
			// item mid-run — the cache-unfriendly worst case for the
			// serving index.
			Name: "flashcrowd", Seed: 11,
			Users: 300, Items: 300, Ticks: 30, TickMillis: 100,
			RatePerUserTick: 0.3, ZipfS: 0.8, QueryFraction: 0.4,
			FlashCrowds: []FlashCrowd{
				{Item: 42, StartTick: 10, Ticks: 8, Boost: 3, Focus: 0.8},
			},
		},
	}
}

// CannedByName returns the named canned spec, or nil.
func CannedByName(name string) *Spec {
	for _, s := range Canned() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Resolve turns a CLI argument into a spec: a canned name first, else a
// path to a JSON spec file — the same convention faultnet scenarios use.
func Resolve(arg string) (*Spec, error) {
	if s := CannedByName(arg); s != nil {
		return s, nil
	}
	s, err := Load(arg)
	if err != nil {
		names := ""
		for i, c := range Canned() {
			if i > 0 {
				names += ", "
			}
			names += c.Name
		}
		return nil, fmt.Errorf("%w (not a canned spec either; canned: %s)", err, names)
	}
	return s, nil
}
