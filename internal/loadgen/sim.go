package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/faultnet"
	"rex/internal/gossip"
	"rex/internal/metrics"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/runtime"
	"rex/internal/serve"
)

// EngineCluster is the sim-mode Target: a small in-process REX cluster —
// real runtime.Engines gossiping over the in-proc transport, each behind
// a real serve.Server — driven without any sockets. Events go through
// the same HTTP handlers a live deployment runs (writes land in the
// engines' Ingest mailboxes, queries read published snapshots), so a
// load run exercises the identical serving path; EndTick steps every
// engine one training epoch in lockstep, making one tick = one epoch.
type EngineCluster struct {
	spec    *Spec
	opts    ClusterOptions
	nodes   []*simNode
	stopped bool
}

// ClusterOptions extends the sim cluster for chaos-load runs.
type ClusterOptions struct {
	// Scenario, when non-nil and enabled, injects the faultnet schedule
	// into every engine's gossip endpoint — the same wrapper a live rexd
	// applies, so sim and live degrade under identical fault schedules.
	Scenario *faultnet.Scenario
	// FaultLog, when set with Scenario, collects the injected faults for
	// the report's fault counters.
	FaultLog *faultnet.Log
	// Admission configures the serving edge's overload gates on every
	// node. Sim ticks run unpaced (EndTick trains instead of sleeping),
	// so time-based rate limits would shed almost everything — leave the
	// zero value for throughput runs and set it only in tests that
	// exercise the gates.
	Admission serve.AdmissionConfig
	// SettleEpochs is how many extra lockstep epochs Finish runs after
	// the last tick before scraping, so mailbox-buffered ratings reach
	// the published snapshots the accept-then-lose check reads.
	// Default 2.
	SettleEpochs int
}

// simNode is one engine plus its serving layer and protocol goroutine.
// Engine Step/Stop must run on one goroutine (the protocol thread); cmd
// serializes the cluster's requests onto it. Each node gets its own
// StageSet — exactly what its /metrics serves — so folding the per-node
// scrapes counts every epoch once.
type simNode struct {
	eng    *runtime.Engine
	srv    *serve.Server
	stages *metrics.StageSet
	prev   runtime.Stats
	cmd    chan simCmd
}

type simCmd struct {
	stop bool
	err  chan error
}

// simEpochSteps keeps sim epochs cheap: the load test measures the
// serving path under training interference, not convergence.
const simEpochSteps = 40

// NewEngineCluster builds and starts an n-node cluster seeded with a
// deterministic synthetic shard per node (users striped across nodes,
// items within the spec's catalog), then runs one warm-up epoch so every
// node has a published snapshot before the first query arrives.
func NewEngineCluster(spec *Spec, n int) (*EngineCluster, error) {
	return NewEngineClusterOpts(spec, n, ClusterOptions{})
}

// NewEngineClusterOpts is NewEngineCluster with chaos-load options.
func NewEngineClusterOpts(spec *Spec, n int, opts ClusterOptions) (*EngineCluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("loadgen: sim cluster needs at least 2 nodes (got %d)", n)
	}
	if opts.SettleEpochs <= 0 {
		opts.SettleEpochs = 2
	}
	eps := runtime.NewChanNet(n)
	mcfg := mf.DefaultConfig()
	c := &EngineCluster{spec: spec, opts: opts}
	for i := 0; i < n; i++ {
		// Ring neighbors keep gossip volume O(1) per node regardless of
		// cluster size; the ChanNet mesh carries any pair anyway.
		var neighbors []int
		if n == 2 {
			neighbors = []int{1 - i}
		} else {
			neighbors = []int{(i + 1) % n, (i - 1 + n) % n}
		}
		node := core.NewNode(core.Config{
			ID: i, Mode: core.DataSharing, Algo: gossip.DPSGD,
			StepsPerEpoch: simEpochSteps, SharePoints: 50, Seed: int64(spec.Seed),
		}, mf.New(mcfg), simRatings(spec, n, i), nil)
		rcfg := runtime.Config{
			Node: node, Endpoint: eps[i], Neighbors: neighbors,
			NewModel: func() model.Model { return mf.New(mcfg) },
			Publish:  true,
		}
		if opts.Scenario != nil && opts.Scenario.Enabled() {
			opts.Scenario.ApplyRun(&rcfg, opts.FaultLog)
		}
		eng, err := runtime.NewEngine(rcfg)
		if err != nil {
			return nil, err
		}
		stages := metrics.NewStageSet()
		srv, err := serve.New(serve.Config{
			Node: eng, ID: i, NumItems: spec.Items, Stages: stages,
			Admission: opts.Admission,
		})
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, &simNode{eng: eng, srv: srv, stages: stages, cmd: make(chan simCmd)})
	}
	// Protocol goroutines: Start, then serve step/stop commands. Engines
	// gossip every epoch, so steps across nodes must be in flight
	// together — stepAll issues all n before waiting on any.
	startErrs := make(chan error, n)
	for _, sn := range c.nodes {
		go func(sn *simNode) {
			err := sn.eng.Start()
			startErrs <- err
			if err != nil {
				return
			}
			for cmd := range sn.cmd {
				if cmd.stop {
					sn.eng.Stop()
					cmd.err <- nil
					return
				}
				_, err := sn.eng.Step()
				if err == nil {
					sn.recordStages()
				}
				cmd.err <- err
			}
		}(sn)
	}
	for range c.nodes {
		if err := <-startErrs; err != nil {
			return nil, err
		}
	}
	if err := c.stepAll(); err != nil { // warm-up epoch: publish snapshots
		return nil, err
	}
	return c, nil
}

// simRatings is node i's deterministic synthetic training shard: users
// striped user%n == i (matching the Do routing, so online ratings land
// on the node already holding that user's profile), a few items each.
func simRatings(spec *Spec, n, i int) []dataset.Rating {
	const perUser = 3
	var rs []dataset.Rating
	// Cap the seed shard so huge user populations don't slow cluster
	// construction; online ingestion covers the rest of the id space.
	maxUsers := spec.Users
	if maxUsers > 2000 {
		maxUsers = 2000
	}
	for u := i; u < maxUsers; u += n {
		h := spec.Seed*0x9E3779B97F4A7C15 + uint64(u)
		for k := 0; k < perUser; k++ {
			h = mix64(h + uint64(k) + 1)
			rs = append(rs, dataset.Rating{
				User:  uint32(u),
				Item:  uint32(h % uint64(spec.Items)),
				Value: float32(h>>32%10+1) / 2,
			})
		}
	}
	return rs
}

// recordStages diffs the engine's cumulative stage counters against the
// previous epoch and records the deltas — called on the protocol thread
// right after Step, the only place Stats may be read.
func (sn *simNode) recordStages() {
	st := *sn.eng.Stats()
	prev := sn.prev
	for _, s := range []struct {
		name string
		d    time.Duration
	}{
		{"train", st.Train - prev.Train},
		{"merge", st.Merge - prev.Merge},
		{"share", st.Share - prev.Share},
		{"seal", st.Seal - prev.Seal},
		{"wire", st.Wire - prev.Wire},
	} {
		sn.stages.Observe(s.name, s.d)
	}
	sn.prev = st
}

// stepAll runs one epoch on every engine in lockstep.
func (c *EngineCluster) stepAll() error {
	errs := make([]chan error, len(c.nodes))
	for i, sn := range c.nodes {
		errs[i] = make(chan error, 1)
		sn.cmd <- simCmd{err: errs[i]}
	}
	var first error
	for _, ch := range errs {
		if err := <-ch; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// memWriter is a minimal in-memory http.ResponseWriter for in-proc
// handler dispatch.
type memWriter struct {
	hdr  http.Header
	code int
	body bytes.Buffer
}

func newMemWriter() *memWriter { return &memWriter{hdr: make(http.Header), code: http.StatusOK} }

func (w *memWriter) Header() http.Header         { return w.hdr }
func (w *memWriter) Write(b []byte) (int, error) { return w.body.Write(b) }
func (w *memWriter) WriteHeader(code int)        { w.code = code }

// dispatch runs one request through a server's handler in-process.
func dispatch(srv *serve.Server, method, target string, body []byte) (*memWriter, error) {
	var r *http.Request
	var err error
	if body != nil {
		r, err = http.NewRequest(method, target, bytes.NewReader(body))
	} else {
		r, err = http.NewRequest(method, target, nil)
	}
	if err != nil {
		return nil, err
	}
	w := newMemWriter()
	srv.Handler().ServeHTTP(w, r)
	return w, nil
}

// eventRequest renders an event as its HTTP method, target and body —
// shared by the sim dispatch and the live HTTP target so both shapes
// issue byte-identical requests.
func eventRequest(ev Event) (method, target string, body []byte) {
	if ev.Kind == Query {
		return http.MethodGet, fmt.Sprintf("/recommend?user=%d&n=%d", ev.User, ev.N), nil
	}
	body, _ = json.Marshal(serve.Rating{User: ev.User, Item: ev.Item, Value: ev.Value})
	return http.MethodPost, "/rate", body
}

// Do implements Target: route by user to keep each user's online
// ratings on one node's profile, then run the real handler.
func (c *EngineCluster) Do(ev Event) (int, error) {
	sn := c.nodes[int(ev.User)%len(c.nodes)]
	method, target, body := eventRequest(ev)
	w, err := dispatch(sn.srv, method, target, body)
	if err != nil {
		return 0, err
	}
	return w.code, nil
}

// EndTick implements Target: one training epoch across the cluster.
func (c *EngineCluster) EndTick(int) error { return c.stepAll() }

// NumItems implements CatalogReporter: the sim cluster serves exactly
// the spec's catalog, so the preflight always passes.
func (c *EngineCluster) NumItems() (int, error) { return c.spec.Items, nil }

// FinalRatings returns the union of every node's published snapshot
// ratings, keyed (user, item) — the store dedups on that pair, so
// presence is the durable fact the accept-then-lose check verifies.
func (c *EngineCluster) FinalRatings() map[uint64]bool {
	out := make(map[uint64]bool)
	for _, sn := range c.nodes {
		snap := sn.eng.Snapshot()
		if snap == nil {
			continue
		}
		for _, r := range snap.Ratings {
			out[uint64(r.User)<<32|uint64(r.Item)] = true
		}
	}
	return out
}

// Finish implements Target: settle (so mailbox-buffered ratings reach
// published snapshots), scrape every node's /metrics through the same
// handler a live deployment serves, merge, and stop the engines.
func (c *EngineCluster) Finish() (*ServerMetrics, error) {
	for i := 0; i < c.opts.SettleEpochs && !c.stopped; i++ {
		if err := c.stepAll(); err != nil {
			return nil, err
		}
	}
	merged := newServerMetrics()
	for _, sn := range c.nodes {
		w, err := dispatch(sn.srv, http.MethodGet, "/metrics", nil)
		if err != nil {
			return nil, err
		}
		if w.code != http.StatusOK {
			return nil, fmt.Errorf("loadgen: sim /metrics: status %d", w.code)
		}
		var resp serve.MetricsResponse
		if err := json.Unmarshal(w.body.Bytes(), &resp); err != nil {
			return nil, fmt.Errorf("loadgen: sim /metrics: %w", err)
		}
		merged.fold(&resp)
	}
	if err := c.Stop(); err != nil {
		return nil, err
	}
	return merged, nil
}

// Stop shuts the engines down (idempotent).
func (c *EngineCluster) Stop() error {
	if c.stopped {
		return nil
	}
	c.stopped = true
	errs := make([]chan error, len(c.nodes))
	for i, sn := range c.nodes {
		errs[i] = make(chan error, 1)
		sn.cmd <- simCmd{stop: true, err: errs[i]}
	}
	for _, ch := range errs {
		<-ch
	}
	return nil
}

func newServerMetrics() *ServerMetrics {
	return &ServerMetrics{
		Endpoints: make(map[string]*EndpointStats),
		Stages:    make(map[string]*metrics.HistSnapshot),
	}
}

// fold merges one node's /metrics payload into the cluster view: bucket
// histograms add exactly, so merged percentiles have full resolution.
func (m *ServerMetrics) fold(resp *serve.MetricsResponse) {
	for name, em := range resp.Endpoints {
		es := m.Endpoints[name]
		if es == nil {
			es = &EndpointStats{Hist: &metrics.HistSnapshot{}, Statuses: make(map[int]uint64)}
			m.Endpoints[name] = es
		}
		es.Hist.Add(em.Hist)
		for code, n := range em.Statuses {
			es.Statuses[code] += n
		}
	}
	for name, h := range resp.Stages {
		if m.Stages[name] == nil {
			m.Stages[name] = &metrics.HistSnapshot{}
		}
		m.Stages[name].Add(h)
	}
}
