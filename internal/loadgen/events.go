package loadgen

import (
	"math"
)

// Every event decision below is a pure function of (spec.Seed, user,
// tick, event index): no RNG state threads through the schedule, so any
// subset of it can be derived independently — by any worker, on any
// machine, in any order — and the full schedule is identical every time.
// This is the property that makes a load test replayable: the sim driver
// and a live-cluster run see the same events.

// mix64 is the splitmix64 finalizer, the same bijective mixer the
// streamed topologies use for (seed, id) edge decisions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unitFloat maps a hash to [0, 1) with 53 bits of precision.
func unitFloat(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// Hash salts, one per independent decision stream.
const (
	saltCount = 0x9E3779B97F4A7C15 // fractional event-count Bernoulli
	saltEvent = 0xC2B2AE3D27D4EB4F // per-event hash chain base
	saltKind  = 0x165667B19E3779F9 // query vs write
	saltItem  = 0x27D4EB2F165667C5 // item choice
	saltFocus = 0x85EBCA77C2B2AE63 // flash-crowd redirect
	saltValue = 0xA24BAED4963EE407 // rating value
	saltRank  = 0x589965CC75374CC3 // user activity-rank permutation
)

// Kind says what a generated event does to the cluster.
type Kind uint8

const (
	// Write is a POST /rate of one rating.
	Write Kind = iota
	// Query is a GET /recommend.
	Query
)

// Event is one generated request.
type Event struct {
	// Tick is the schedule slot the event fires in.
	Tick int
	// Seq is the event's index within its (tick, user) burst.
	Seq int
	// User is the acting user id.
	User uint32
	// Kind selects write vs query.
	Kind Kind
	// Item is the rated item (writes only).
	Item uint32
	// Value is the rating value in half stars (writes only).
	Value float32
	// N is the query depth (queries only).
	N int
}

// Digest folds one event into a 64-bit fingerprint. Schedule digests XOR
// per-event digests, so they are order-independent: dispatching the same
// events from a different number of workers — or comparing a sim run to
// a live replay — yields the same digest iff the event sets match.
func (e Event) Digest() uint64 {
	h := mix64(uint64(e.Tick)<<40 ^ uint64(e.Seq)<<32 ^ uint64(e.User))
	h = mix64(h ^ uint64(e.Kind)<<56 ^ uint64(e.Item)<<16 ^ uint64(math.Float32bits(e.Value)))
	return mix64(h ^ uint64(e.N))
}

// Gen derives the event schedule of one spec. Construction precomputes
// the per-user activity weights; everything per tick is derived on
// demand.
type Gen struct {
	spec *Spec
	// weight is each user's activity multiplier (mean 1 across users):
	// user u's Zipf rank comes from a seed-derived affine permutation of
	// the id space, so "who is a heavy hitter" varies with the seed while
	// the weight profile stays exactly Zipf(s).
	weight []float64
}

// NewGen builds the generator for a validated spec.
func NewGen(spec *Spec) *Gen {
	n := spec.Users
	g := &Gen{spec: spec, weight: make([]float64, n)}
	if spec.ZipfS == 0 {
		for u := range g.weight {
			g.weight[u] = 1
		}
		return g
	}
	// Normalize (rank+1)^-s to mean 1 over the population.
	var sum float64
	rankWeight := make([]float64, n)
	for r := 0; r < n; r++ {
		rankWeight[r] = math.Pow(float64(r+1), -spec.ZipfS)
		sum += rankWeight[r]
	}
	// Affine rank permutation: rank(u) = (a·u + b) mod n, a coprime to n.
	a := mix64(spec.Seed^saltRank)%uint64(n) + 1
	for gcdU64(a, uint64(n)) != 1 {
		a = a%uint64(n) + 1
	}
	b := mix64(spec.Seed^saltRank^0xABCD) % uint64(n)
	scale := float64(n) / sum
	for u := 0; u < n; u++ {
		rank := (a*uint64(u) + b) % uint64(n)
		g.weight[u] = rankWeight[rank] * scale
	}
	return g
}

func gcdU64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// rateAt is the expected number of events user u emits at tick t, after
// activity weighting, diurnal modulation and flash-crowd boosts.
func (g *Gen) rateAt(u, t int) float64 {
	r := g.spec.RatePerUserTick * g.weight[u]
	if d := g.spec.Diurnal; d != nil {
		r *= 1 + d.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(d.PeriodTicks))
	}
	for _, f := range g.spec.FlashCrowds {
		if t >= f.StartTick && t < f.StartTick+f.Ticks {
			r *= f.Boost
		}
	}
	return r
}

// flashFocus returns the active flash-crowd redirect at tick t: the hot
// item and the fraction of writes pulled onto it. With overlapping
// windows the earliest-listed active window wins.
func (g *Gen) flashFocus(t int) (item uint32, focus float64, ok bool) {
	for _, f := range g.spec.FlashCrowds {
		if t >= f.StartTick && t < f.StartTick+f.Ticks && f.Focus > 0 {
			return f.Item, f.Focus, true
		}
	}
	return 0, 0, false
}

// countAt is the concrete number of events user u emits at tick t:
// floor(rate) plus a Bernoulli draw on the fractional part, decided by a
// hash — so expected counts match the spec's rates exactly while staying
// deterministic.
func (g *Gen) countAt(u, t int) int {
	r := g.rateAt(u, t)
	base := int(r)
	frac := r - float64(base)
	if frac > 0 && unitFloat(mix64(g.spec.Seed^saltCount^uint64(u)<<24^uint64(t))) < frac {
		base++
	}
	return base
}

// eventAt derives the k-th event of user u at tick t.
func (g *Gen) eventAt(u, t, k int) Event {
	spec := g.spec
	h := mix64(spec.Seed ^ saltEvent ^ uint64(u)<<24 ^ uint64(t))
	hk := mix64(h ^ uint64(k)*0xD6E8FEB86659FD93)
	ev := Event{Tick: t, Seq: k, User: uint32(u)}
	if unitFloat(mix64(hk^saltKind)) < spec.QueryFraction {
		ev.Kind = Query
		ev.N = spec.topN()
		return ev
	}
	ev.Kind = Write
	ev.Item = uint32(mix64(hk^saltItem) % uint64(spec.Items))
	if hot, focus, ok := g.flashFocus(t); ok && unitFloat(mix64(hk^saltFocus)) < focus {
		ev.Item = hot
	}
	// Half-star values 0.5..5.0, the MovieLens rating scale.
	ev.Value = float32(mix64(hk^saltValue)%10+1) / 2
	return ev
}

// EventsAt appends tick t's full event list (user order, then burst
// order) to dst and returns it.
func (g *Gen) EventsAt(t int, dst []Event) []Event {
	for u := 0; u < g.spec.Users; u++ {
		for k, c := 0, g.countAt(u, t); k < c; k++ {
			dst = append(dst, g.eventAt(u, t, k))
		}
	}
	return dst
}

// TotalEvents counts the schedule's events without materializing them.
func (g *Gen) TotalEvents() uint64 {
	var n uint64
	for t := 0; t < g.spec.Ticks; t++ {
		for u := 0; u < g.spec.Users; u++ {
			n += uint64(g.countAt(u, t))
		}
	}
	return n
}

// ScheduleDigest folds the whole schedule into one fingerprint (see
// Event.Digest for the order-independence contract).
func (g *Gen) ScheduleDigest() uint64 {
	var d uint64
	var buf []Event
	for t := 0; t < g.spec.Ticks; t++ {
		buf = g.EventsAt(t, buf[:0])
		for _, ev := range buf {
			d ^= ev.Digest()
		}
	}
	return d
}
