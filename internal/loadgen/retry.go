// Retry policy for load runs. Backoff offsets are a pure function of the
// event hash and the attempt number — no RNG state threads through the
// runner — so a retried schedule is as replayable as the original one:
// the same event sheds at the same point, backs off by the same offsets,
// and the schedule digest (which fingerprints generated events, not
// dispatch attempts) is unchanged.
package loadgen

import "time"

// saltRetry separates the backoff-jitter hash stream from the schedule's
// decision streams in events.go.
const saltRetry = 0x2545F4914F6CDD1D

// Retryable reports whether an attempt's outcome warrants a retry:
// transport errors (err != nil), 429 (admission shed) and 503 (stale
// snapshot / not started). Validation rejects (400), other client
// errors, and hard server errors (500) are final — retrying them would
// replay the same failure.
func Retryable(status int, err error) bool {
	return err != nil || status == 429 || status == 503
}

// RetryBackoff is the wait before retry attempt `attempt` (1 = first
// retry) of event ev: exponential base<<(attempt-1) plus deterministic
// jitter in [0, jitter) hashed from (event digest, attempt). Same event,
// same attempt → same offset, on any worker, in any run.
func RetryBackoff(ev Event, attempt int, base, jitter time.Duration) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	if attempt > 16 {
		attempt = 16 // clamp the shift; 16 doublings is already minutes
	}
	d := base << (attempt - 1)
	if jitter > 0 {
		h := mix64(ev.Digest() ^ saltRetry ^ uint64(attempt)*0x9E3779B97F4A7C15)
		d += time.Duration(unitFloat(h) * float64(jitter))
	}
	return d
}

// Outcomes counts events (not attempts) by how they ended. Shed vs
// failed vs retried-then-succeeded is the report's view of graceful
// degradation: a run where everything lands in Shed+RetriedOK degraded
// politely; Failed means the transport or the server broke.
type Outcomes struct {
	// Accepted succeeded on the first attempt (2xx).
	Accepted uint64 `json:"accepted"`
	// RetriedOK succeeded after at least one retry.
	RetriedOK uint64 `json:"retried_ok"`
	// Shed ended 429/503 with retry budget exhausted — the server turned
	// the event away without side effects.
	Shed uint64 `json:"shed"`
	// Rejected ended with a non-retryable client error (400 validation).
	Rejected uint64 `json:"rejected"`
	// Failed ended in a transport error or a non-retryable server error.
	Failed uint64 `json:"failed"`
	// Retries is the total number of retry attempts across all events.
	Retries uint64 `json:"retries"`
}

// ShedFraction is Shed over all events, the chaos-load gate's headline
// number.
func (o Outcomes) ShedFraction() float64 {
	total := o.Accepted + o.RetriedOK + o.Shed + o.Rejected + o.Failed
	if total == 0 {
		return 0
	}
	return float64(o.Shed) / float64(total)
}
