package loadgen

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rex/internal/serve"
)

// TestRetryBackoffDeterministic pins the retry schedule's contract:
// backoff is a pure function of (event, attempt), exponential in the
// attempt, with jitter bounded by the jitter parameter — so a retried
// run replays exactly, on any worker layout.
func TestRetryBackoffDeterministic(t *testing.T) {
	ev := Event{Tick: 2, Seq: 1, User: 17, Kind: Write, Item: 5, Value: 3}
	base, jitter := 50*time.Millisecond, 20*time.Millisecond

	for attempt := 1; attempt <= 4; attempt++ {
		a := RetryBackoff(ev, attempt, base, jitter)
		b := RetryBackoff(ev, attempt, base, jitter)
		if a != b {
			t.Fatalf("attempt %d: %v != %v — backoff not deterministic", attempt, a, b)
		}
		lo := base << (attempt - 1)
		if a < lo || a >= lo+jitter {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, a, lo, lo+jitter)
		}
	}

	// Different events land on different jitter offsets (with overwhelming
	// probability over a handful of events).
	same := 0
	for u := uint32(0); u < 8; u++ {
		other := ev
		other.User = 100 + u
		if RetryBackoff(other, 1, base, jitter) == RetryBackoff(ev, 1, base, jitter) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("jitter identical across 8 distinct events — hash not feeding through")
	}

	// Attempt clamps: below 1 behaves as 1, the shift stops doubling at 16.
	if RetryBackoff(ev, 0, base, 0) != base {
		t.Fatal("attempt 0 not clamped to the first-retry backoff")
	}
	if RetryBackoff(ev, 40, base, 0) != base<<15 {
		t.Fatal("attempt 40 not clamped to the 16th doubling")
	}
}

func TestRetryable(t *testing.T) {
	for _, tc := range []struct {
		status int
		err    error
		want   bool
	}{
		{200, nil, false},
		{400, nil, false},
		{429, nil, true},
		{500, nil, false},
		{503, nil, true},
		{0, errors.New("conn refused"), true},
	} {
		if got := Retryable(tc.status, tc.err); got != tc.want {
			t.Errorf("Retryable(%d, %v) = %v, want %v", tc.status, tc.err, got, tc.want)
		}
	}
}

// scriptedTarget answers each event by its user id class, tracking
// per-event attempt counts so retry behavior is observable:
//
//	user%5 == 0 → 429 on the first attempt, 200 after (retried_ok)
//	user%5 == 1 → always 429                          (shed)
//	user%5 == 2 → always 400                          (rejected)
//	user%5 == 3 → always a transport error            (failed)
//	otherwise   → 200                                 (accepted)
type scriptedTarget struct {
	mu       sync.Mutex
	attempts map[uint64]int
}

func (s *scriptedTarget) Do(ev Event) (int, error) {
	s.mu.Lock()
	s.attempts[ev.Digest()]++
	n := s.attempts[ev.Digest()]
	s.mu.Unlock()
	switch ev.User % 5 {
	case 0:
		if n == 1 {
			return 429, nil
		}
		return 200, nil
	case 1:
		return 429, nil
	case 2:
		return 400, nil
	case 3:
		return 0, fmt.Errorf("scripted transport error")
	default:
		return 200, nil
	}
}

func (s *scriptedTarget) EndTick(int) error               { return nil }
func (s *scriptedTarget) Finish() (*ServerMetrics, error) { return nil, nil }

// TestRunnerRetryOutcomes drives a schedule into the scripted target and
// checks that every event is classified exactly once, retry budgets are
// honored per class, and the schedule digest ignores dispatch attempts.
func TestRunnerRetryOutcomes(t *testing.T) {
	spec := tinySpec()
	tgt := &scriptedTarget{attempts: make(map[uint64]int)}
	const budget = 2
	rep, err := Run(spec, tgt, "sim", 1, Options{
		Workers: 3, Retries: budget,
		RetryBase: time.Microsecond, RetryJitter: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Recompute the expected classification from the schedule itself.
	var want Outcomes
	gen := NewGen(spec)
	var buf []Event
	for tick := 0; tick < spec.Ticks; tick++ {
		buf = gen.EventsAt(tick, buf[:0])
		for _, ev := range buf {
			switch ev.User % 5 {
			case 0:
				want.RetriedOK++
				want.Retries++ // one 429, then success
			case 1:
				want.Shed++
				want.Retries += budget // full budget burned
			case 2:
				want.Rejected++ // 400 is final, no retries
			case 3:
				want.Failed++
				want.Retries += budget // transport errors retry too
			default:
				want.Accepted++
			}
		}
	}
	if rep.Outcomes != want {
		t.Fatalf("outcomes %+v, want %+v", rep.Outcomes, want)
	}
	total := want.Accepted + want.RetriedOK + want.Shed + want.Rejected + want.Failed
	if total != rep.Events {
		t.Fatalf("outcome sum %d != events %d", total, rep.Events)
	}

	// The digest fingerprints generated events, not attempts: a retry-free
	// run of the same spec reports the same digest.
	plain, err := Run(spec, nullTarget{}, "sim", 1, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.ScheduleDigest != rep.ScheduleDigest {
		t.Fatalf("digest changed under retries: %s vs %s", rep.ScheduleDigest, plain.ScheduleDigest)
	}
}

// catalogTarget is a nullTarget that reports a catalog size.
type catalogTarget struct {
	nullTarget
	items int
	err   error
}

func (c catalogTarget) NumItems() (int, error) { return c.items, c.err }

// TestPreflightCatalogCoverage: a spec whose item universe exceeds the
// target's catalog must fail fast with the fix spelled out, before any
// event is dispatched; an unknown catalog (0) skips the check.
func TestPreflightCatalogCoverage(t *testing.T) {
	spec := tinySpec() // 30 items
	_, err := Run(spec, catalogTarget{items: 10}, "live", 1, Options{})
	if err == nil {
		t.Fatal("undersized catalog passed preflight")
	}
	for _, frag := range []string{"30 items", "10 items", "-scale"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("preflight error %q missing %q", err, frag)
		}
	}

	if _, err := Run(spec, catalogTarget{items: 0}, "live", 1, Options{}); err != nil {
		t.Fatalf("unknown catalog (0) should skip the preflight: %v", err)
	}
	if _, err := Run(spec, catalogTarget{items: 30}, "live", 1, Options{}); err != nil {
		t.Fatalf("exact-fit catalog rejected: %v", err)
	}
	if _, err := Run(spec, catalogTarget{err: fmt.Errorf("node down")}, "live", 1, Options{}); err == nil {
		t.Fatal("preflight swallowed a scrape error")
	}
}

// TestSimClusterAdmissionSheds turns the serving-edge gates on inside the
// sim cluster: with a near-zero refill rate every node admits its burst
// and sheds the rest 429, the runner classifies them as shed, and the
// schedule digest still matches a fault-free run.
func TestSimClusterAdmissionSheds(t *testing.T) {
	spec := tinySpec()
	cluster, err := NewEngineClusterOpts(spec, 2, ClusterOptions{
		Admission: serve.AdmissionConfig{RatePerSec: 0.001, Burst: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, cluster, "sim", 2, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes.Shed == 0 {
		t.Fatal("no sheds with a 0.001/s rate limit — admission not wired into the sim cluster")
	}
	if rep.Outcomes.Accepted == 0 {
		t.Fatal("nothing accepted — burst tokens not honored")
	}
	if got := rep.Client["rate"].Statuses[429]; got == 0 {
		t.Fatalf("no client-observed 429s: %v", rep.Client["rate"].Statuses)
	}
	// Queries are not rate-gated: every recommend answer is 200.
	for code := range rep.Client["recommend"].Statuses {
		if code != 200 {
			t.Fatalf("recommend saw status %d under write-side admission", code)
		}
	}
	want := fmt.Sprintf("%016x", NewGen(spec).ScheduleDigest())
	if rep.ScheduleDigest != want {
		t.Fatalf("digest %s != schedule %s", rep.ScheduleDigest, want)
	}
}
