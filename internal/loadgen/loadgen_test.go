package loadgen

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

func tinySpec() *Spec {
	return &Spec{
		Name: "tiny", Seed: 5,
		Users: 40, Items: 30, Ticks: 3,
		RatePerUserTick: 0.5, ZipfS: 0.9, QueryFraction: 0.5,
		Diurnal:     &Diurnal{Amplitude: 0.4, PeriodTicks: 3},
		FlashCrowds: []FlashCrowd{{Item: 7, StartTick: 1, Ticks: 1, Boost: 2, Focus: 0.9}},
	}
}

func TestSpecValidation(t *testing.T) {
	for name, mut := range map[string]func(*Spec){
		"zero-users":       func(s *Spec) { s.Users = 0 },
		"zero-items":       func(s *Spec) { s.Items = 0 },
		"zero-ticks":       func(s *Spec) { s.Ticks = 0 },
		"negative-rate":    func(s *Spec) { s.RatePerUserTick = -1 },
		"bad-query-frac":   func(s *Spec) { s.QueryFraction = 1.5 },
		"bad-amplitude":    func(s *Spec) { s.Diurnal.Amplitude = 2 },
		"zero-period":      func(s *Spec) { s.Diurnal.PeriodTicks = 0 },
		"flash-bad-item":   func(s *Spec) { s.FlashCrowds[0].Item = 1000 },
		"flash-zero-ticks": func(s *Spec) { s.FlashCrowds[0].Ticks = 0 },
		"flash-bad-focus":  func(s *Spec) { s.FlashCrowds[0].Focus = -0.1 },
	} {
		s := tinySpec()
		mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	if err := tinySpec().Validate(); err != nil {
		t.Fatalf("tiny spec invalid: %v", err)
	}
}

// TestCannedAndResolve: every canned spec validates, resolves by name,
// and a spec written to a JSON file resolves by path — the faultnet
// convention.
func TestCannedAndResolve(t *testing.T) {
	for _, s := range Canned() {
		if err := s.Validate(); err != nil {
			t.Fatalf("canned %q invalid: %v", s.Name, err)
		}
		got, err := Resolve(s.Name)
		if err != nil || got.Name != s.Name {
			t.Fatalf("Resolve(%q): %v %v", s.Name, got, err)
		}
	}
	data, _ := json.Marshal(tinySpec())
	path := filepath.Join(t.TempDir(), "tiny.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Resolve(path)
	if err != nil || got.Name != "tiny" {
		t.Fatalf("Resolve(file): %v %v", got, err)
	}
	if _, err := Resolve("no-such-spec"); err == nil {
		t.Fatal("bogus spec name resolved")
	}
}

// TestScheduleDeterminism: the schedule is a pure function of
// (spec, seed) — two generators agree event for event, and a different
// seed diverges.
func TestScheduleDeterminism(t *testing.T) {
	spec := tinySpec()
	a, b := NewGen(spec), NewGen(spec)
	var evA, evB []Event
	for tick := 0; tick < spec.Ticks; tick++ {
		evA = a.EventsAt(tick, evA)
		evB = b.EventsAt(tick, evB)
	}
	if len(evA) == 0 {
		t.Fatal("empty schedule")
	}
	if len(evA) != len(evB) {
		t.Fatalf("lengths differ: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, evA[i], evB[i])
		}
	}
	if a.ScheduleDigest() != b.ScheduleDigest() {
		t.Fatal("digests differ for identical schedules")
	}
	other := tinySpec()
	other.Seed = 6
	if NewGen(other).ScheduleDigest() == a.ScheduleDigest() {
		t.Fatal("different seeds produced the same digest")
	}
}

// TestZipfActivity: weights normalize to mean 1 and the head of the
// distribution carries the Zipf mass.
func TestZipfActivity(t *testing.T) {
	spec := &Spec{Seed: 3, Users: 1000, Items: 10, Ticks: 1, RatePerUserTick: 1, ZipfS: 1.2}
	g := NewGen(spec)
	var sum, max float64
	for _, w := range g.weight {
		sum += w
		if w > max {
			max = w
		}
	}
	if mean := sum / float64(spec.Users); math.Abs(mean-1) > 1e-9 {
		t.Fatalf("mean weight %v, want 1", mean)
	}
	if max < 20 {
		t.Fatalf("heaviest user weight %v, want a heavy tail (>20x mean)", max)
	}
	// Uniform spec: all weights exactly 1.
	for _, w := range NewGen(&Spec{Seed: 3, Users: 10, Items: 1, Ticks: 1, RatePerUserTick: 1}).weight {
		if w != 1 {
			t.Fatalf("uniform weight %v", w)
		}
	}
}

// TestDiurnalAndFlashCrowd: the flash window multiplies arrivals and
// focuses writes on the hot item; outside the window the hot item gets
// its uniform share.
func TestDiurnalAndFlashCrowd(t *testing.T) {
	spec := &Spec{
		Seed: 9, Users: 400, Items: 100, Ticks: 4,
		RatePerUserTick: 0.5, QueryFraction: 0,
		FlashCrowds: []FlashCrowd{{Item: 3, StartTick: 2, Ticks: 1, Boost: 3, Focus: 0.8}},
	}
	g := NewGen(spec)
	count := make([]int, spec.Ticks)
	hot := make([]int, spec.Ticks)
	var buf []Event
	for tick := 0; tick < spec.Ticks; tick++ {
		buf = g.EventsAt(tick, buf[:0])
		count[tick] = len(buf)
		for _, ev := range buf {
			if ev.Kind == Write && ev.Item == 3 {
				hot[tick]++
			}
		}
	}
	if float64(count[2]) < 2*float64(count[0]) {
		t.Fatalf("flash tick count %d vs baseline %d, want ~3x", count[2], count[0])
	}
	if frac := float64(hot[2]) / float64(count[2]); frac < 0.7 {
		t.Fatalf("hot-item share in window %.2f, want ~0.8", frac)
	}
	if frac := float64(hot[0]) / float64(count[0]); frac > 0.1 {
		t.Fatalf("hot-item share outside window %.2f, want ~1/100", frac)
	}
}

// nullTarget swallows events; used to exercise the runner machinery
// without a cluster.
type nullTarget struct{}

func (nullTarget) Do(Event) (int, error)           { return 200, nil }
func (nullTarget) EndTick(int) error               { return nil }
func (nullTarget) Finish() (*ServerMetrics, error) { return nil, nil }

// TestDigestIndependentOfWorkers: the schedule digest — and therefore
// the schedule — is identical whatever the dispatch concurrency.
func TestDigestIndependentOfWorkers(t *testing.T) {
	spec := tinySpec()
	var first *Report
	for _, workers := range []int{1, 2, 4} {
		rep, err := Run(spec, nullTarget{}, "sim", 1, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = rep
			continue
		}
		if rep.ScheduleDigest != first.ScheduleDigest {
			t.Fatalf("workers=%d digest %s != workers=1 digest %s", workers, rep.ScheduleDigest, first.ScheduleDigest)
		}
		if rep.Events != first.Events {
			t.Fatalf("workers=%d dispatched %d events, workers=1 dispatched %d", workers, rep.Events, first.Events)
		}
	}
	if first.Events == 0 || first.Client["rate"].Count+first.Client["recommend"].Count != first.Events {
		t.Fatalf("client-side accounting does not cover all %d events: %+v", first.Events, first.Client)
	}
}

// TestSimVsLiveReplay is the end-to-end determinism pin: the same
// spec+seed driven into an in-process engine cluster and replayed over
// real HTTP against live serve handlers produces the identical schedule
// digest, all events are accepted, and both sides surface non-zero
// server-side metrics.
func TestSimVsLiveReplay(t *testing.T) {
	spec := tinySpec()

	sim, err := NewEngineCluster(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	simRep, err := Run(spec, sim, "sim", 2, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}

	// "Live" side: a second cluster's serve handlers behind real HTTP
	// listeners, replayed over sockets.
	live, err := NewEngineCluster(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Stop()
	var urls []string
	for _, sn := range live.nodes {
		ts := httptest.NewServer(sn.srv.Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	tgt, err := NewHTTPTarget(urls, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	liveRep, err := Run(spec, tgt, "live", 2, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	if simRep.ScheduleDigest != liveRep.ScheduleDigest {
		t.Fatalf("sim digest %s != live digest %s", simRep.ScheduleDigest, liveRep.ScheduleDigest)
	}
	for mode, rep := range map[string]*Report{"sim": simRep, "live": liveRep} {
		for _, ep := range []string{"rate", "recommend"} {
			cl := rep.Client[ep]
			if cl.Count == 0 {
				t.Fatalf("%s: no %s requests recorded", mode, ep)
			}
			for code := range cl.Statuses {
				if code != 200 {
					t.Fatalf("%s %s: unexpected status %d (%v)", mode, ep, code, cl.Statuses)
				}
			}
			srv, ok := rep.Server[ep]
			if !ok || srv.Count != cl.Count {
				t.Fatalf("%s %s: server saw %d requests, client sent %d", mode, ep, srv.Count, cl.Count)
			}
			if srv.P50Ms <= 0 || srv.P50Ms > srv.P99Ms {
				t.Fatalf("%s %s: percentiles not sane: %+v", mode, ep, srv.LatencySummary)
			}
		}
	}
	// The sim cluster trains an epoch per tick: stage percentiles must be
	// populated (warm-up epoch + one per tick, per node).
	tr, ok := simRep.Stages["train"]
	if !ok || tr.Count < uint64(spec.Ticks)*2 {
		t.Fatalf("sim stage histograms missing or thin: %+v", simRep.Stages)
	}
	if simRep.Stages["merge"].Count != tr.Count {
		t.Fatalf("stage counts diverge: %+v", simRep.Stages)
	}
}

// TestSpecFilesMatchCanned pins the checked-in specs/ files to the
// canned definitions: `rexbench -load steady` and
// `rexbench -load specs/steady.json` must be the same workload.
func TestSpecFilesMatchCanned(t *testing.T) {
	for _, want := range Canned() {
		path := filepath.Join("..", "..", "specs", want.Name+".json")
		got, err := Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if string(gb) != string(wb) {
			t.Fatalf("%s drifted from the canned spec:\n file:   %s\n canned: %s", path, gb, wb)
		}
	}
}
