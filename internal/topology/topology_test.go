package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddRemoveEdge(t *testing.T) {
	g := NewGraph(5)
	if !g.AddEdge(1, 3) {
		t.Fatal("add failed")
	}
	if g.AddEdge(1, 3) || g.AddEdge(3, 1) {
		t.Fatal("duplicate edge accepted")
	}
	if g.AddEdge(2, 2) {
		t.Fatal("self-loop accepted")
	}
	if g.AddEdge(-1, 0) || g.AddEdge(0, 5) {
		t.Fatal("out-of-range edge accepted")
	}
	if !g.HasEdge(3, 1) {
		t.Fatal("edge not symmetric")
	}
	if !g.RemoveEdge(1, 3) {
		t.Fatal("remove failed")
	}
	if g.HasEdge(1, 3) || g.RemoveEdge(1, 3) {
		t.Fatal("edge survived removal")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewGraph(10)
	for _, j := range []int{7, 2, 9, 4} {
		g.AddEdge(5, j)
	}
	nb := g.Neighbors(5)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatalf("unsorted neighbors: %v", nb)
		}
	}
}

func TestEdgesAndDegree(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatal("degree wrong")
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Fatalf("avg degree %v", got)
	}
	es := g.Edges()
	if len(es) != 3 || es[0] != [2]int{0, 1} {
		t.Fatalf("edges list %v", es)
	}
}

func TestSmallWorldShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := SmallWorld(100, 6, 0.03, rng)
	if !IsConnected(g) {
		t.Fatal("small world disconnected")
	}
	// Ring lattice with k=6 gives base degree 6; shortcuts add a few.
	if avg := g.AvgDegree(); avg < 5.5 || avg > 8 {
		t.Fatalf("avg degree %.2f outside small-world range", avg)
	}
	// High clustering is the defining small-world property (§IV-A2a).
	if cc := ClusteringCoefficient(g); cc < 0.4 {
		t.Fatalf("clustering %.2f too low for a small world", cc)
	}
}

func TestErdosRenyiConnectedByConstruction(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(60, 0.02, rng) // sparse enough to fragment without repair
		if !IsConnected(g) {
			t.Fatalf("seed %d: ER graph disconnected after repair", seed)
		}
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ErdosRenyi(200, 0.05, rng)
	want := 0.05 * 199
	if avg := g.AvgDegree(); math.Abs(avg-want) > want/3 {
		t.Fatalf("avg degree %.1f, expected ~%.1f", avg, want)
	}
}

func TestSmallWorldVsERClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sw := SmallWorld(150, 6, 0.03, rng)
	er := ErdosRenyi(150, float64(6)/149, rand.New(rand.NewSource(5)))
	if ClusteringCoefficient(sw) <= ClusteringCoefficient(er) {
		t.Fatalf("small world should cluster more: SW %.3f ER %.3f",
			ClusteringCoefficient(sw), ClusteringCoefficient(er))
	}
}

func TestFullyConnected(t *testing.T) {
	g := FullyConnected(8)
	if g.NumEdges() != 28 {
		t.Fatalf("8-node complete graph has %d edges, want 28 (paper §IV-C)", g.NumEdges())
	}
	if Diameter(g) != 1 {
		t.Fatalf("diameter %d", Diameter(g))
	}
	if cc := ClusteringCoefficient(g); cc != 1 {
		t.Fatalf("clustering %v", cc)
	}
}

func TestComponentsAndRepair(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(4, 5)
	comps := Components(g)
	if len(comps) != 3 {
		t.Fatalf("components = %d", len(comps))
	}
	EnsureConnected(g, rand.New(rand.NewSource(6)))
	if !IsConnected(g) {
		t.Fatal("repair failed")
	}
}

func TestDiameter(t *testing.T) {
	g := NewGraph(4) // path 0-1-2-3
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if d := Diameter(g); d != 3 {
		t.Fatalf("path diameter %d", d)
	}
	g2 := NewGraph(3)
	g2.AddEdge(0, 1)
	if d := Diameter(g2); d != -1 {
		t.Fatalf("disconnected diameter %d", d)
	}
}

func TestRandomNeighbor(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	rng := rand.New(rand.NewSource(7))
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		j := g.RandomNeighbor(0, rng)
		if j != 1 && j != 2 {
			t.Fatalf("bad neighbor %d", j)
		}
		seen[j] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatal("random neighbor never picked one side")
	}
	if g.RandomNeighbor(4, rng) != -1 {
		t.Fatal("isolated node should yield -1")
	}
}

// TestMetropolisHastingsStochastic verifies the §III-C2 weight matrix is
// row-stochastic with nonnegative entries and symmetric (w_ij == w_ji) on
// random graphs — the property making D-PSGD average correctly.
func TestMetropolisHastingsStochastic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(30, 0.15, rng)
		for i := 0; i < g.N(); i++ {
			ws, self := MetropolisHastings(g, i)
			sum := self
			if self < -1e-9 {
				return false
			}
			for _, w := range ws {
				if w < 0 {
					return false
				}
				sum += w
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
			// Symmetry: w_ij computed from j's side must match.
			for k, j := range g.Neighbors(i) {
				wsj, _ := MetropolisHastings(g, j)
				found := false
				for k2, i2 := range g.Neighbors(j) {
					if i2 == i {
						if math.Abs(wsj[k2]-ws[k]) > 1e-12 {
							return false
						}
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(2, 3)
	if g.HasEdge(2, 3) {
		t.Fatal("clone shares storage")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone lost edges")
	}
}

func TestGraphString(t *testing.T) {
	g := FullyConnected(3)
	if s := g.String(); s == "" {
		t.Fatal("empty string")
	}
}

func TestSmallWorldShortcutAlwaysAddedWhenEligible(t *testing.T) {
	// n=8, k=6 gives a ring lattice where each node's only non-neighbor is
	// its antipode. Rejection sampling alone misses it with probability
	// (7/8)^16 per node, which used to drop the far-fetched edge silently;
	// the deterministic fallback must add it whenever one exists. With
	// pFar=1 every node requests a shortcut, so across many seeds the
	// result must always be the complete graph K8 (28 edges).
	for seed := int64(0); seed < 50; seed++ {
		g := SmallWorld(8, 6, 1.0, rand.New(rand.NewSource(seed)))
		if got, want := g.NumEdges(), 8*7/2; got != want {
			t.Fatalf("seed %d: got %d edges, want complete graph with %d", seed, got, want)
		}
	}
}

func TestSmallWorldDeterministic(t *testing.T) {
	a := SmallWorld(64, 6, 0.5, rand.New(rand.NewSource(7)))
	b := SmallWorld(64, 6, 0.5, rand.New(rand.NewSource(7)))
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatalf("edge counts differ: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
}
