// Package topology builds and analyzes the communication graphs used by
// REX: small-world graphs (paper §IV-A2a: 6 close connections, 3%
// far-fetched probability) and connected Erdős–Rényi random graphs
// (§IV-A2b: p = 5%), plus the graph analytics the paper cites (diameter,
// clustering coefficient) and Metropolis–Hastings weights for D-PSGD model
// averaging (§III-C2).
package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// Source is the minimal read-only neighbor view the gossip and simulation
// layers need. *Graph implements it with materialized adjacency; the
// streamed generators (SmallWorldStream, ERStream) implement it by
// deriving neighbor lists on demand from (seed, node id), so topology
// memory is O(degree) per node actually touched instead of O(n·degree) up
// front. Neighbors results must be sorted ascending, stable for the
// lifetime of the value, and treated as read-only by callers.
type Source interface {
	N() int
	Degree(i int) int
	Neighbors(i int) []int
}

// RandomNeighborOf picks a uniform random neighbor of node i from any
// Source, consuming exactly one rng draw when the node has neighbors and
// none otherwise — the same stream contract as Graph.RandomNeighbor, so
// materialized and streamed topologies yield bit-identical RMW schedules.
func RandomNeighborOf(s Source, i int, rng *rand.Rand) int {
	nb := s.Neighbors(i)
	if len(nb) == 0 {
		return -1
	}
	return nb[rng.Intn(len(nb))]
}

// Graph is a simple undirected graph over nodes 0..N-1 with sorted
// adjacency lists and no self-loops or parallel edges.
type Graph struct {
	n   int
	adj [][]int
}

var _ Source = (*Graph)(nil)

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("topology: negative node count")
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// Degree returns the number of neighbors of node i. D-PSGD senders attach
// this value to every message for Metropolis–Hastings weighting (§III-C2).
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// Neighbors returns the sorted neighbor list of node i. Callers must not
// modify the returned slice.
func (g *Graph) Neighbors(i int) []int { return g.adj[i] }

// HasEdge reports whether the undirected edge (i, j) exists.
func (g *Graph) HasEdge(i, j int) bool {
	lst := g.adj[i]
	k := sort.SearchInts(lst, j)
	return k < len(lst) && lst[k] == j
}

// AddEdge inserts the undirected edge (i, j); self-loops and duplicates are
// ignored. It reports whether a new edge was added.
func (g *Graph) AddEdge(i, j int) bool {
	if i == j || i < 0 || j < 0 || i >= g.n || j >= g.n {
		return false
	}
	if g.HasEdge(i, j) {
		return false
	}
	g.insert(i, j)
	g.insert(j, i)
	return true
}

func (g *Graph) insert(i, j int) {
	lst := g.adj[i]
	k := sort.SearchInts(lst, j)
	lst = append(lst, 0)
	copy(lst[k+1:], lst[k:])
	lst[k] = j
	g.adj[i] = lst
}

// RemoveEdge deletes the undirected edge (i, j) if present.
func (g *Graph) RemoveEdge(i, j int) bool {
	if !g.HasEdge(i, j) {
		return false
	}
	g.remove(i, j)
	g.remove(j, i)
	return true
}

func (g *Graph) remove(i, j int) {
	lst := g.adj[i]
	k := sort.SearchInts(lst, j)
	g.adj[i] = append(lst[:k], lst[k+1:]...)
}

// Edges returns all undirected edges as (i, j) pairs with i < j, sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for i := 0; i < g.n; i++ {
		for _, j := range g.adj[i] {
			if i < j {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	sum := 0
	for i := 0; i < g.n; i++ {
		sum += len(g.adj[i])
	}
	return sum / 2
}

// AvgDegree returns the mean node degree.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(g.n)
}

// RandomNeighbor picks a uniform random neighbor of node i, used by RMW to
// select its unicast destination each epoch (§III-C1). It returns -1 for
// isolated nodes.
func (g *Graph) RandomNeighbor(i int, rng *rand.Rand) int {
	if len(g.adj[i]) == 0 {
		return -1
	}
	return g.adj[i][rng.Intn(len(g.adj[i]))]
}

// Clone returns an independent deep copy.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.n)
	for i := range g.adj {
		c.adj[i] = append([]int(nil), g.adj[i]...)
	}
	return c
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d avgdeg=%.1f}", g.n, g.NumEdges(), g.AvgDegree())
}

// SmallWorld builds a Watts–Strogatz-style small-world graph as the boost
// generator the paper used (§IV-A2a): a ring lattice where each node links
// to its k nearest neighbors (k/2 on each side), plus "far-fetched"
// shortcut edges added independently with probability pFar per node. The
// paper's parameters are k=6 close connections and pFar=3%.
func SmallWorld(n, k int, pFar float64, rng *rand.Rand) *Graph {
	if k >= n {
		k = n - 1
	}
	g := NewGraph(n)
	half := k / 2
	if half < 1 && n > 1 {
		half = 1
	}
	for i := 0; i < n; i++ {
		for d := 1; d <= half; d++ {
			g.AddEdge(i, (i+d)%n)
		}
	}
	// Far-fetched connections: each node gains a shortcut to a uniformly
	// random distant node with probability pFar. Rejection sampling is
	// tried first; on dense graphs (few eligible targets) it falls back to
	// a scan from a random offset so the shortcut is added whenever any
	// eligible target exists, instead of being silently dropped.
	for i := 0; i < n; i++ {
		if rng.Float64() < pFar {
			added := false
			for tries := 0; tries < 16; tries++ {
				j := rng.Intn(n)
				if j != i && !g.HasEdge(i, j) {
					g.AddEdge(i, j)
					added = true
					break
				}
			}
			if !added {
				start := rng.Intn(n)
				for d := 0; d < n; d++ {
					j := (start + d) % n
					if j != i && !g.HasEdge(i, j) {
						g.AddEdge(i, j)
						break
					}
				}
			}
		}
	}
	return g
}

// ErdosRenyi builds a G(n, p) random graph and then repairs connectivity by
// linking components, exactly as the paper does ("we ensure to make it
// connected by adding the missing edges", §IV-A2b). p = 5% in the paper.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	EnsureConnected(g, rng)
	return g
}

// FullyConnected builds the complete graph on n nodes: the paper's 8-node
// SGX deployment is fully connected with 28 pairwise links (§IV-C).
func FullyConnected(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// EnsureConnected adds edges between connected components (a random node
// of each subsequent component to a random node of the first) until the
// graph is a single component.
func EnsureConnected(g *Graph, rng *rand.Rand) {
	comps := Components(g)
	if len(comps) <= 1 {
		return
	}
	base := comps[0]
	for _, c := range comps[1:] {
		a := base[rng.Intn(len(base))]
		b := c[rng.Intn(len(c))]
		g.AddEdge(a, b)
		base = append(base, c...)
	}
}

// Components returns the connected components, each as a sorted node list,
// ordered by smallest member.
func Components(g *Graph) [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for _, w := range g.adj[v] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the graph has exactly one component (or is
// empty).
func IsConnected(g *Graph) bool {
	if g.n == 0 {
		return true
	}
	return len(Components(g)) == 1
}

// Diameter returns the longest shortest-path length between any pair of
// nodes, or -1 if the graph is disconnected. Small-world graphs have low
// diameter; sparse ER graphs may have larger ones (§IV-A2).
func Diameter(g *Graph) int {
	if g.n == 0 {
		return 0
	}
	max := 0
	dist := make([]int, g.n)
	for s := 0; s < g.n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		reached := 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				if dist[w] == -1 {
					dist[w] = dist[v] + 1
					if dist[w] > max {
						max = dist[w]
					}
					reached++
					queue = append(queue, w)
				}
			}
		}
		if reached < g.n {
			return -1
		}
	}
	return max
}

// ClusteringCoefficient returns the mean local clustering coefficient:
// for each node, the fraction of neighbor pairs that are themselves
// connected. Small-world graphs exhibit high clustering (§IV-A2a).
func ClusteringCoefficient(g *Graph) float64 {
	if g.n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < g.n; i++ {
		nb := g.adj[i]
		d := len(nb)
		if d < 2 {
			continue
		}
		links := 0
		for a := 0; a < d; a++ {
			for b := a + 1; b < d; b++ {
				if g.HasEdge(nb[a], nb[b]) {
					links++
				}
			}
		}
		sum += 2 * float64(links) / float64(d*(d-1))
	}
	return sum / float64(g.n)
}

// MetropolisHastings returns, for node i, the averaging weights used by
// D-PSGD model merging (§III-C2, citing Xiao/Boyd/Kim): for each neighbor
// j, w_ij = 1/(1+max(deg_i, deg_j)); the self weight is 1 - sum of the
// others. Weights are returned parallel to Neighbors(i), followed by the
// self-weight. The induced weight matrix is symmetric and doubly
// stochastic, the property that makes D-PSGD converge to the global
// average.
func MetropolisHastings(g *Graph, i int) (neighborW []float64, selfW float64) {
	nb := g.adj[i]
	neighborW = make([]float64, len(nb))
	di := len(nb)
	sum := 0.0
	for k, j := range nb {
		dj := len(g.adj[j])
		m := di
		if dj > m {
			m = dj
		}
		w := 1.0 / float64(1+m)
		neighborW[k] = w
		sum += w
	}
	return neighborW, 1 - sum
}
