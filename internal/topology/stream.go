package topology

import (
	"sort"
	"sync/atomic"
)

// This file holds the streaming topology generators for the million-user
// scale path: instead of materializing an n-node adjacency structure up
// front (SmallWorld walks every node, ErdosRenyi is O(n²) in time), these
// derive a node's neighbor list on demand as a pure function of
// (seed, node id). Memory is O(degree) per node actually touched — a
// simulation over 100k users with only a subset alive never pays for the
// rest — and generation parallelizes for free because every per-node list
// is computed independently and cached behind an atomic pointer.

// mixTopo is the splitmix64 finalizer, used to turn (seed, structured id)
// tuples into uniform 64-bit values for edge decisions.
func mixTopo(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashFloat maps a hash to [0, 1) with 53 bits of precision.
func hashFloat(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// neighborCache memoizes per-node neighbor lists. Computation is a pure
// function of (seed, i), so concurrent fills race benignly: every writer
// produces an identical list and CompareAndSwap keeps exactly one, which
// makes Neighbors stable (same backing array) for the cache's lifetime.
type neighborCache struct {
	slots []atomic.Pointer[[]int]
}

func newNeighborCache(n int) neighborCache {
	return neighborCache{slots: make([]atomic.Pointer[[]int], n)}
}

func (c *neighborCache) get(i int, compute func(int) []int) []int {
	if p := c.slots[i].Load(); p != nil {
		return *p
	}
	nb := compute(i)
	if !c.slots[i].CompareAndSwap(nil, &nb) {
		return *c.slots[i].Load()
	}
	return nb
}

// SmallWorldStream is the streamed counterpart of SmallWorld (§IV-A2a):
// a ring lattice (k/2 close connections per side) plus "far-fetched"
// shortcuts. Shortcuts come from shortcutRounds independent random
// matchings: round r pairs node i with (offset_r − i) mod n — an
// involution, so both endpoints derive the same candidate edge — and the
// edge is kept with probability 2·pFar/shortcutRounds decided by a hash of
// (seed, round, edge). Expected shortcut degree is therefore 2·pFar per
// node, matching the materialized generator, where a node initiates a
// shortcut with probability pFar and receives one on average equally
// often. The ring keeps the graph connected for any seed.
type SmallWorldStream struct {
	n     int
	half  int
	pEdge float64
	seed  uint64
	cache neighborCache
}

// shortcutRounds is the number of matching rounds SmallWorldStream draws
// shortcut candidates from. More rounds spread the same expected shortcut
// mass (2·pFar) over more independent pairings.
const shortcutRounds = 4

var _ Source = (*SmallWorldStream)(nil)

// NewSmallWorldStream builds the streamed small-world topology on n nodes
// with k close connections and far-fetched probability pFar, derived
// entirely from seed. No per-node state is allocated until a node's
// neighborhood is first requested.
func NewSmallWorldStream(n, k int, pFar float64, seed uint64) *SmallWorldStream {
	if n < 0 {
		panic("topology: negative node count")
	}
	if k >= n {
		k = n - 1
	}
	half := k / 2
	if half < 1 && n > 1 {
		half = 1
	}
	pEdge := 2 * pFar / shortcutRounds
	if pEdge > 1 {
		pEdge = 1
	}
	return &SmallWorldStream{n: n, half: half, pEdge: pEdge, seed: seed, cache: newNeighborCache(n)}
}

// N implements Source.
func (s *SmallWorldStream) N() int { return s.n }

// Degree implements Source.
func (s *SmallWorldStream) Degree(i int) int { return len(s.Neighbors(i)) }

// Neighbors implements Source: the sorted neighbor list of node i,
// computed on first request and cached. Callers must not modify it.
func (s *SmallWorldStream) Neighbors(i int) []int {
	return s.cache.get(i, s.compute)
}

func (s *SmallWorldStream) compute(i int) []int {
	if s.n <= 1 {
		return nil
	}
	nb := make([]int, 0, 2*s.half+2)
	for d := 1; d <= s.half; d++ {
		nb = append(nb, (i+d)%s.n, ((i-d)%s.n+s.n)%s.n)
	}
	for r := 0; r < shortcutRounds; r++ {
		off := int(mixTopo(s.seed^0xA076_1D64_78BD_642F^uint64(r)*0xE703_7ED1_A0B4_28DB) % uint64(s.n))
		j := ((off-i)%s.n + s.n) % s.n
		if j == i {
			continue
		}
		a, b := i, j
		if a > b {
			a, b = b, a
		}
		h := mixTopo(s.seed ^ uint64(r+1)*0x9E3779B97F4A7C15 ^ uint64(a)<<32 ^ uint64(b))
		if hashFloat(h) < s.pEdge {
			nb = append(nb, j)
		}
	}
	return sortDedup(nb)
}

// ERStream is the streamed counterpart of ErdosRenyi (§IV-A2b): random
// edges with mean degree p·(n−1) per node, plus a deterministic Hamiltonian
// ring i—(i+1 mod n) standing in for the materialized generator's
// connectivity repair.
//
// Sparse graphs derive a node's candidates from per-node hashed buckets
// instead of scanning all n partners: each of erRounds rounds permutes the
// node ids with a seed-derived affine bijection π_r(x) = (a_r·x+b_r) mod n
// and partitions the permuted positions into buckets of erBucket
// consecutive slots. Both endpoints of a pair compute the same bucket
// membership (π_r is shared), so candidate edges are exactly the
// within-bucket pairs, kept with a per-(round, pair) hash probability
// calibrated so the expected non-ring degree stays p·(n−1). Deriving one
// node's list enumerates erRounds buckets — O(degree) work, since the
// bucket size tracks the expected degree — and stays a pure function of
// (seed, id). Dense graphs (bucket work ≥ n) keep the full pair scan,
// which is already O(degree) there.
//
// The trade against true G(n, p): only pairs sharing a bucket in some
// round can ever be edges, so the per-pair edge probability is lumpy even
// though per-node degree is Binomial with the right mean — the same class
// of stand-in as the forced ring.
type ERStream struct {
	n      int
	p      float64
	seed   uint64
	cache  neighborCache
	bucket int       // bucket size; 0 = dense full-scan path
	keep   float64   // per-(round, pair) keep probability on the bucket path
	rounds []erRound // affine permutations, one per round
}

// erRound is one seed-derived affine permutation of [0, n):
// π(x) = (a·x + b) mod n with gcd(a, n) = 1; aInv inverts it.
type erRound struct {
	a, aInv, b uint64
}

// erRounds is the number of independent bucketings candidate edges are
// drawn from. More rounds spread the same expected degree over more
// independent partner sets (and cut the keep probability per pair).
const erRounds = 3

var _ Source = (*ERStream)(nil)

// NewERStream builds the streamed G(n, p) topology derived from seed.
func NewERStream(n int, p float64, seed uint64) *ERStream {
	if n < 0 {
		panic("topology: negative node count")
	}
	s := &ERStream{n: n, p: p, seed: seed, cache: newNeighborCache(n)}
	if n > 1 {
		// Bucket size: ~4x the per-round expected degree keeps the
		// per-pair probability ≤ ~1/4 (Binomial ≈ the ER Poisson), with a
		// floor so tiny rates still see candidates.
		expect := p * float64(n-1)
		bucket := int(4*expect/erRounds) + 8
		if erRounds*bucket < n {
			s.bucket = bucket
			s.keep = expect / (erRounds * float64(bucket-1))
			if s.keep > 1 {
				s.keep = 1
			}
			for r := 0; r < erRounds; r++ {
				s.rounds = append(s.rounds, deriveERRound(seed, uint64(r), uint64(n)))
			}
		}
	}
	return s
}

// deriveERRound derives round r's affine permutation from the seed: a is
// the first hash draw coprime to n (so x -> a·x+b is a bijection), b a
// free offset.
func deriveERRound(seed, r, n uint64) erRound {
	a := mixTopo(seed^0x8CB9_2BA7_2F3D_8DD7^r*0xD6E8_FEB8_6659_FD93)%(n-1) + 1
	for gcd64(a, n) != 1 {
		a = a%(n-1) + 1
	}
	b := mixTopo(seed^0x4CF5_AD43_2745_937F^r*0x9E3779B97F4A7C15) % n
	return erRound{a: a, aInv: modInverse(a, n), b: b}
}

func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// modInverse returns a^-1 mod n for gcd(a, n) == 1, via the extended
// Euclidean algorithm.
func modInverse(a, n uint64) uint64 {
	t, newT := int64(0), int64(1)
	r, newR := int64(n), int64(a)
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if t < 0 {
		t += int64(n)
	}
	return uint64(t)
}

// N implements Source.
func (s *ERStream) N() int { return s.n }

// Degree implements Source.
func (s *ERStream) Degree(i int) int { return len(s.Neighbors(i)) }

// Neighbors implements Source: the sorted neighbor list of node i,
// computed on first request and cached. Callers must not modify it.
func (s *ERStream) Neighbors(i int) []int {
	return s.cache.get(i, s.compute)
}

func (s *ERStream) compute(i int) []int {
	if s.n <= 1 {
		return nil
	}
	if s.bucket == 0 {
		return s.computeDense(i)
	}
	n := uint64(s.n)
	nb := make([]int, 0, 2+2*erRounds)
	nb = append(nb, (i+1)%s.n, (i-1+s.n)%s.n)
	for r, rd := range s.rounds {
		pos := (rd.a*uint64(i) + rd.b) % n
		lo := pos / uint64(s.bucket) * uint64(s.bucket)
		hi := lo + uint64(s.bucket)
		if hi > n {
			hi = n
		}
		for q := lo; q < hi; q++ {
			if q == pos {
				continue
			}
			j := int(rd.aInv * ((q + n - rd.b%n) % n) % n)
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			h := mixTopo(s.seed ^ uint64(r+1)*0xFF51_AFD7_ED55_8CCD ^ uint64(a)<<32 ^ uint64(b))
			if hashFloat(h) < s.keep {
				nb = append(nb, j)
			}
		}
	}
	return sortDedup(nb)
}

// computeDense is the original all-pairs scan, kept for graphs whose
// expected degree is a sizable fraction of n (there it IS O(degree)).
func (s *ERStream) computeDense(i int) []int {
	var nb []int
	for j := 0; j < s.n; j++ {
		if j == i {
			continue
		}
		a, b := i, j
		if a > b {
			a, b = b, a
		}
		ring := b-a == 1 || (a == 0 && b == s.n-1)
		if ring {
			nb = append(nb, j)
			continue
		}
		h := mixTopo(s.seed ^ 0xD6E8_FEB8_6659_FD93 ^ uint64(a)<<32 ^ uint64(b))
		if hashFloat(h) < s.p {
			nb = append(nb, j)
		}
	}
	return nb // ascending scan order; already sorted and duplicate-free
}

// sortDedup sorts nb ascending and removes duplicates in place.
func sortDedup(nb []int) []int {
	sort.Ints(nb)
	out := nb[:0]
	for k, v := range nb {
		if k == 0 || v != nb[k-1] {
			out = append(out, v)
		}
	}
	return out
}

// Materialize builds a *Graph holding the full adjacency of any Source,
// so the graph analytics (Diameter, ClusteringCoefficient, Components)
// and tests can inspect streamed topologies.
func Materialize(s Source) *Graph {
	g := NewGraph(s.N())
	for i := 0; i < s.N(); i++ {
		for _, j := range s.Neighbors(i) {
			g.AddEdge(i, j)
		}
	}
	return g
}
