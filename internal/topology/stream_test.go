package topology

import (
	"math/rand"
	"sync"
	"testing"
)

// The streamed generators must satisfy the same structural invariants the
// materialized ones do — symmetry, sortedness, no self-loops, and
// connectivity (the ring backbone) — for any seed, because the simulator's
// barrier and the chaos harness both assume them.

func streamCases() []struct {
	name string
	mk   func(seed uint64) Source
} {
	return []struct {
		name string
		mk   func(seed uint64) Source
	}{
		{"smallworld-n2", func(s uint64) Source { return NewSmallWorldStream(2, 6, 0.03, s) }},
		{"smallworld-n3-k2", func(s uint64) Source { return NewSmallWorldStream(3, 2, 0.03, s) }},
		{"smallworld-n64-paper", func(s uint64) Source { return NewSmallWorldStream(64, 6, 0.03, s) }},
		{"smallworld-n64-heavy-far", func(s uint64) Source { return NewSmallWorldStream(64, 6, 0.9, s) }},
		{"smallworld-n257", func(s uint64) Source { return NewSmallWorldStream(257, 6, 0.03, s) }},
		{"er-n2", func(s uint64) Source { return NewERStream(2, 0.05, s) }},
		{"er-n64-paper", func(s uint64) Source { return NewERStream(64, 0.05, s) }},
		{"er-n257-sparse", func(s uint64) Source { return NewERStream(257, 0.01, s) }},
	}
}

func TestStreamInvariants(t *testing.T) {
	for _, tc := range streamCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 10; seed++ {
				s := tc.mk(seed)
				g := Materialize(s)
				if !IsConnected(g) {
					t.Fatalf("seed %d: disconnected: %v", seed, Components(g))
				}
				for i := 0; i < s.N(); i++ {
					nb := s.Neighbors(i)
					if s.Degree(i) != len(nb) {
						t.Fatalf("seed %d node %d: Degree %d != len(Neighbors) %d", seed, i, s.Degree(i), len(nb))
					}
					for k, j := range nb {
						if j == i {
							t.Fatalf("seed %d: self-loop at %d", seed, i)
						}
						if k > 0 && nb[k-1] >= j {
							t.Fatalf("seed %d node %d: neighbors not strictly ascending: %v", seed, i, nb)
						}
						// Symmetry: the involution/pair-hash constructions
						// must give both endpoints the same view.
						found := false
						for _, back := range s.Neighbors(j) {
							if back == i {
								found = true
								break
							}
						}
						if !found {
							t.Fatalf("seed %d: edge %d->%d not symmetric", seed, i, j)
						}
					}
				}
			}
		})
	}
}

// TestStreamDeterministic pins that two instances with the same parameters
// agree node-by-node — the property that lets every simulator worker (or
// every machine of a sharded deployment) derive the topology locally.
func TestStreamDeterministic(t *testing.T) {
	for _, tc := range streamCases() {
		a, b := tc.mk(42), tc.mk(42)
		c := tc.mk(43)
		diff := false
		for i := 0; i < a.N(); i++ {
			na, nb := a.Neighbors(i), b.Neighbors(i)
			if len(na) != len(nb) {
				t.Fatalf("%s node %d: same seed, different degree", tc.name, i)
			}
			for k := range na {
				if na[k] != nb[k] {
					t.Fatalf("%s node %d: same seed, different neighbors", tc.name, i)
				}
			}
			nc := c.Neighbors(i)
			if len(na) != len(nc) {
				diff = true
				continue
			}
			for k := range na {
				if na[k] != nc[k] {
					diff = true
				}
			}
		}
		if !diff && a.N() > 8 {
			t.Errorf("%s: seeds 42 and 43 generated identical topologies", tc.name)
		}
	}
}

// TestStreamConcurrentAccess hammers the lazy per-node cache from many
// goroutines; under -race this verifies the atomic-pointer memoization.
// Every goroutine must observe the exact same slice contents.
func TestStreamConcurrentAccess(t *testing.T) {
	s := NewSmallWorldStream(512, 6, 0.1, 7)
	want := Materialize(NewSmallWorldStream(512, 6, 0.1, 7))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < s.N(); i++ {
				nb := s.Neighbors(i)
				ref := want.Neighbors(i)
				if len(nb) != len(ref) {
					t.Errorf("node %d: got %d neighbors, want %d", i, len(nb), len(ref))
					return
				}
				for k := range nb {
					if nb[k] != ref[k] {
						t.Errorf("node %d: neighbor mismatch", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestSmallWorldStreamShortcutMass checks the far-fetched edge budget: the
// mean degree over a large ring should approach ringDegree + 2·pFar,
// matching the materialized generator's expectation.
func TestSmallWorldStreamShortcutMass(t *testing.T) {
	const n, k = 4096, 6
	const pFar = 0.3
	var total int
	s := NewSmallWorldStream(n, k, pFar, 99)
	for i := 0; i < n; i++ {
		total += s.Degree(i)
	}
	mean := float64(total) / n
	want := float64(k) + 2*pFar
	if mean < want-0.3 || mean > want+0.3 {
		t.Fatalf("mean degree %.3f, want about %.3f", mean, want)
	}
}

// TestERStreamDegreeMass checks the bucketed edge budget: the mean degree
// over a large graph must approach ring (2) + p·(n−1), matching the
// materialized G(n, p) expectation, so swapping the O(n)-scan derivation
// for hashed buckets did not change the edge mass.
func TestERStreamDegreeMass(t *testing.T) {
	const n = 4096
	const p = 0.002 // expected non-ring degree ~8.2
	var total int
	s := NewERStream(n, p, 123)
	if s.bucket == 0 {
		t.Fatalf("n=%d p=%v should take the bucketed sparse path", n, p)
	}
	for i := 0; i < n; i++ {
		total += s.Degree(i)
	}
	mean := float64(total) / n
	want := 2 + p*(n-1)
	if mean < want*0.9 || mean > want*1.1 {
		t.Fatalf("mean degree %.3f, want about %.3f", mean, want)
	}
}

// TestERStreamLargeSparse touches a few hundred nodes of a million-node
// sparse graph — the scale path's access pattern. Each derivation must be
// bucket-local (no O(n) scan; this test would take minutes otherwise) and
// still symmetric and deterministic.
func TestERStreamLargeSparse(t *testing.T) {
	const n = 1 << 20
	s := NewERStream(n, 5.0/(n-1), 77) // expected degree ~2 ring + 5 random
	s2 := NewERStream(n, 5.0/(n-1), 77)
	if s.bucket == 0 {
		t.Fatal("large sparse graph should take the bucketed path")
	}
	for step := 0; step < 400; step++ {
		i := (step * 2654435761) % n
		nb := s.Neighbors(i)
		nb2 := s2.Neighbors(i)
		if len(nb) != len(nb2) {
			t.Fatalf("node %d: same seed, different degree", i)
		}
		for k, j := range nb {
			if nb2[k] != j {
				t.Fatalf("node %d: same seed, different neighbors", i)
			}
			found := false
			for _, back := range s.Neighbors(j) {
				if back == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not symmetric", i, j)
			}
		}
	}
}

func BenchmarkERStreamNeighbors(b *testing.B) {
	const n = 1 << 20
	s := NewERStream(n, 8.0/(n-1), 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Fresh cache slots would dominate; cycle through distinct nodes so
		// each iteration computes (not just loads) a list.
		node := i % n
		s.cache.slots[node].Store(nil)
		_ = s.Neighbors(node)
	}
}

// TestRandomNeighborOfMatchesGraph pins that the generic helper consumes
// the rng exactly like Graph.RandomNeighbor, so swapping a materialized
// graph for any Source keeps RMW trajectories bit-identical.
func TestRandomNeighborOfMatchesGraph(t *testing.T) {
	g := SmallWorld(64, 6, 0.03, rand.New(rand.NewSource(5)))
	r1 := rand.New(rand.NewSource(9))
	r2 := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		i := trial % g.N()
		if got, want := RandomNeighborOf(g, i, r1), g.RandomNeighbor(i, r2); got != want {
			t.Fatalf("trial %d: RandomNeighborOf %d != RandomNeighbor %d", trial, got, want)
		}
	}
	empty := NewGraph(3)
	if got := RandomNeighborOf(empty, 0, r1); got != -1 {
		t.Fatalf("isolated node: got %d, want -1", got)
	}
	if r1.Int63() != r2.Int63() {
		t.Fatal("isolated-node path consumed rng draws")
	}
}

// TestMaterializeRoundTrip: materializing a materialized graph is the
// identity, and a streamed ER form contains its Hamiltonian ring.
func TestMaterializeRoundTrip(t *testing.T) {
	g := ErdosRenyi(40, 0.1, rand.New(rand.NewSource(3)))
	m := Materialize(g)
	if m.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d != %d", m.NumEdges(), g.NumEdges())
	}
	s := NewERStream(40, 0.0, 11)
	sm := Materialize(s)
	for i := 0; i < 40; i++ {
		if !sm.HasEdge(i, (i+1)%40) {
			t.Fatalf("ER stream missing ring edge %d-%d", i, (i+1)%40)
		}
	}
	if sm.NumEdges() != 40 {
		t.Fatalf("p=0 ER stream has %d edges, want the 40 ring edges", sm.NumEdges())
	}
}
