package topology

import (
	"math/rand"
	"testing"
)

// Partitions in the chaos harness (internal/faultnet) make graph
// connectivity load-bearing: a generator that silently emits a
// disconnected overlay turns a scheduled split-brain into a permanent
// one. These tables pin the generators at the ROADMAP-noted edge cases —
// tiny n, degree at or past n, extreme probabilities.

func TestSmallWorldConnectedTable(t *testing.T) {
	cases := []struct {
		name    string
		n, k    int
		pFar    float64
		seeds   int
		wantMin int // minimum acceptable degree over all nodes
	}{
		{"n2-k6", 2, 6, 0.03, 20, 1},
		{"n3-k2", 3, 2, 0.03, 20, 1},
		{"n4-k6-degree-exceeds-n", 4, 6, 0.03, 20, 1},
		{"n5-k4", 5, 4, 0.0, 20, 2},
		{"n7-k6-always-far", 7, 6, 1.0, 20, 2},
		{"n8-k1-odd-degree", 8, 1, 0.0, 20, 1},
		{"n64-k6-paper", 64, 6, 0.03, 10, 3},
		{"n64-k6-heavy-far", 64, 6, 0.9, 10, 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= int64(tc.seeds); seed++ {
				g := SmallWorld(tc.n, tc.k, tc.pFar, rand.New(rand.NewSource(seed)))
				if g.N() != tc.n {
					t.Fatalf("seed %d: %d nodes, want %d", seed, g.N(), tc.n)
				}
				if !IsConnected(g) {
					t.Fatalf("seed %d: disconnected: %v", seed, Components(g))
				}
				for i := 0; i < tc.n; i++ {
					if d := g.Degree(i); d < tc.wantMin {
						t.Fatalf("seed %d: node %d degree %d < %d", seed, i, d, tc.wantMin)
					}
					if g.HasEdge(i, i) {
						t.Fatalf("seed %d: self-loop at %d", seed, i)
					}
				}
			}
		})
	}
}

func TestErdosRenyiConnectedTable(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		p     float64
		seeds int
	}{
		{"n2-p0", 2, 0.0, 20},      // repair must add the only possible edge
		{"n3-p0", 3, 0.0, 20},      // pure repair graph
		{"n5-sparse", 5, 0.01, 20}, // almost surely disconnected pre-repair
		{"n10-p5-paper", 10, 0.05, 20},
		{"n10-dense", 10, 1.0, 10}, // complete graph, repair is a no-op
		{"n50-sparse", 50, 0.01, 10},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= int64(tc.seeds); seed++ {
				g := ErdosRenyi(tc.n, tc.p, rand.New(rand.NewSource(seed)))
				if !IsConnected(g) {
					t.Fatalf("seed %d: disconnected: %v", seed, Components(g))
				}
				if tc.p >= 1 && g.NumEdges() != tc.n*(tc.n-1)/2 {
					t.Fatalf("seed %d: p=1 gave %d edges", seed, g.NumEdges())
				}
			}
		})
	}
}

// TestSingleNodeGraphs: n=1 is a degenerate but legal deployment (one
// node, no gossip); generators must not panic or invent self-loops.
func TestSingleNodeGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, g := range map[string]*Graph{
		"smallworld": SmallWorld(1, 6, 0.5, rng),
		"erdosrenyi": ErdosRenyi(1, 0.5, rng),
		"full":       FullyConnected(1),
	} {
		if g.N() != 1 || g.NumEdges() != 0 {
			t.Fatalf("%s: n=%d m=%d for a single node", name, g.N(), g.NumEdges())
		}
		if !IsConnected(g) {
			t.Fatalf("%s: single node reported disconnected", name)
		}
	}
}

// TestEnsureConnectedRepairsAdversarialSplits: EnsureConnected must unify
// any number of components, including many singletons.
func TestEnsureConnectedRepairsAdversarialSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{2, 3, 5, 17, 40} {
		g := NewGraph(n) // n isolated nodes: worst case
		EnsureConnected(g, rng)
		if !IsConnected(g) {
			t.Fatalf("n=%d: still disconnected", n)
		}
		if g.NumEdges() < n-1 {
			t.Fatalf("n=%d: %d edges cannot span the graph", n, g.NumEdges())
		}
	}
}

// TestRemoveEdgeKeepsInvariant: partitioned-overlay experiments remove
// edges; adjacency must stay sorted and symmetric afterwards.
func TestRemoveEdgeKeepsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := SmallWorld(12, 4, 0.2, rng)
	for _, e := range g.Edges() {
		if !g.RemoveEdge(e[0], e[1]) {
			t.Fatalf("edge %v vanished", e)
		}
		if g.HasEdge(e[0], e[1]) || g.HasEdge(e[1], e[0]) {
			t.Fatalf("edge %v still present after removal", e)
		}
		g.AddEdge(e[0], e[1])
	}
	for i := 0; i < g.N(); i++ {
		nb := g.Neighbors(i)
		for k := 1; k < len(nb); k++ {
			if nb[k-1] >= nb[k] {
				t.Fatalf("node %d adjacency unsorted: %v", i, nb)
			}
		}
		for _, j := range nb {
			if !g.HasEdge(j, i) {
				t.Fatalf("asymmetric edge %d-%d", i, j)
			}
		}
	}
}
