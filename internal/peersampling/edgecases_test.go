package peersampling

import (
	"math/rand"
	"testing"

	"rex/internal/topology"
)

// The chaos harness (internal/faultnet) leans on the peer-sampling
// overlay staying connected while nodes leave and rejoin; these tables
// pin the ROADMAP-noted edge cases — tiny n, view sizes at or past n,
// and heavy churn — that the main tests don't reach.

func TestOverlayConnectedTable(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		cfg    Config
		rounds int
	}{
		{"n2-minimal", 2, Config{ViewSize: 1, SwapSize: 1}, 10},
		{"n3-view-exceeds-n", 3, Config{ViewSize: 8, SwapSize: 4}, 10},
		{"n4-view-equals-n", 4, Config{ViewSize: 4, SwapSize: 2}, 10},
		{"n5-swap-equals-view", 5, Config{ViewSize: 4, SwapSize: 4}, 10},
		{"n8-no-healer", 8, Config{ViewSize: 4, SwapSize: 2, Healer: false}, 20},
		{"n16-default", 16, DefaultConfig(), 20},
		{"n64-small-view", 64, Config{ViewSize: 6, SwapSize: 3, Healer: true}, 30},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				s := New(tc.n, tc.cfg, rand.New(rand.NewSource(seed)))
				for r := 0; r < tc.rounds; r++ {
					s.Step()
					g := s.Snapshot()
					if !topology.IsConnected(g) {
						t.Fatalf("seed %d round %d: overlay disconnected: %v",
							seed, r, topology.Components(g))
					}
				}
				// Views never exceed capacity or contain self/dupes.
				for i := 0; i < tc.n; i++ {
					view := s.View(i)
					if len(view) > tc.cfg.ViewSize {
						t.Fatalf("seed %d: node %d view %d > cap %d", seed, i, len(view), tc.cfg.ViewSize)
					}
					seen := map[int]bool{}
					for _, d := range view {
						if d.ID == i {
							t.Fatalf("seed %d: node %d holds itself", seed, i)
						}
						if seen[d.ID] {
							t.Fatalf("seed %d: node %d holds %d twice", seed, i, d.ID)
						}
						seen[d.ID] = true
					}
				}
			}
		})
	}
}

// TestSurvivorsReconnectAfterMassChurn: kill nearly half the mesh at
// once; the healer policy must age the dead out and keep the survivors'
// induced overlay connected — the property faultnet partitions rely on
// when a split never heals.
func TestSurvivorsReconnectAfterMassChurn(t *testing.T) {
	const n = 24
	s := New(n, Config{ViewSize: 8, SwapSize: 4, Healer: true}, rand.New(rand.NewSource(7)))
	for r := 0; r < 10; r++ {
		s.Step()
	}
	for i := 0; i < n/2-2; i++ {
		s.Kill(i)
	}
	for r := 0; r < 30; r++ {
		s.Step()
	}
	g := s.Snapshot()
	live := s.LiveNodes()
	if len(live) != n/2+2 {
		t.Fatalf("%d live nodes", len(live))
	}
	// All live nodes form one component (dead ones are isolated vertices).
	comps := topology.Components(g)
	liveComp := 0
	for _, c := range comps {
		if len(c) > 1 {
			liveComp++
			if len(c) != len(live) {
				t.Fatalf("survivors split: component %d of %d live", len(c), len(live))
			}
		}
	}
	if liveComp != 1 {
		t.Fatalf("%d non-trivial components", liveComp)
	}
	// No survivor still references a dead peer.
	for _, i := range live {
		for _, d := range s.View(i) {
			if d.ID < n/2-2 {
				t.Fatalf("node %d still references dead %d after 30 rounds", i, d.ID)
			}
		}
	}
}

// TestTwoSurvivors: the extreme churn edge — exactly two nodes left keep
// gossiping with each other rather than deadlocking on empty views.
func TestTwoSurvivors(t *testing.T) {
	const n = 6
	s := New(n, Config{ViewSize: 4, SwapSize: 2, Healer: true}, rand.New(rand.NewSource(3)))
	for r := 0; r < 5; r++ {
		s.Step()
	}
	for i := 2; i < n; i++ {
		s.Kill(i)
	}
	for r := 0; r < 10; r++ {
		s.Step()
	}
	g := s.Snapshot()
	if !g.HasEdge(0, 1) {
		t.Fatal("last two survivors lost each other")
	}
}

// TestAllDeadIsInert: killing everyone must leave Step a no-op rather
// than a panic — the terminal state of an unhealed total churn schedule.
func TestAllDeadIsInert(t *testing.T) {
	s := New(4, DefaultConfig(), rand.New(rand.NewSource(2)))
	for i := 0; i < 4; i++ {
		s.Kill(i)
	}
	for r := 0; r < 3; r++ {
		s.Step()
	}
	if len(s.LiveNodes()) != 0 {
		t.Fatal("dead nodes resurrected")
	}
	if g := s.Snapshot(); g.NumEdges() != 0 {
		t.Fatal("dead overlay has edges")
	}
}
