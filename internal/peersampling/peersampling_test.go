package peersampling

import (
	"math/rand"
	"testing"

	"rex/internal/topology"
)

func service(t *testing.T, n int, seed int64) *Service {
	t.Helper()
	return New(n, DefaultConfig(), rand.New(rand.NewSource(seed)))
}

func TestViewBounds(t *testing.T) {
	s := service(t, 60, 1)
	for r := 0; r < 30; r++ {
		s.Step()
	}
	for i := 0; i < s.N(); i++ {
		v := s.View(i)
		if len(v) == 0 || len(v) > DefaultConfig().ViewSize {
			t.Fatalf("node %d view size %d", i, len(v))
		}
		for _, d := range v {
			if d.ID == i {
				t.Fatalf("node %d holds itself in its view", i)
			}
			if d.ID < 0 || d.ID >= s.N() {
				t.Fatalf("bad id %d", d.ID)
			}
		}
	}
}

func TestNoDuplicateDescriptors(t *testing.T) {
	s := service(t, 40, 2)
	for r := 0; r < 20; r++ {
		s.Step()
	}
	for i := 0; i < s.N(); i++ {
		seen := map[int]bool{}
		for _, d := range s.View(i) {
			if seen[d.ID] {
				t.Fatalf("node %d has duplicate descriptor %d", i, d.ID)
			}
			seen[d.ID] = true
		}
	}
}

func TestOverlayStaysConnected(t *testing.T) {
	s := service(t, 80, 3)
	for r := 0; r < 40; r++ {
		s.Step()
		if r%10 == 9 {
			if !topology.IsConnected(s.Snapshot()) {
				t.Fatalf("overlay disconnected at round %d", r)
			}
		}
	}
	g := s.Snapshot()
	if d := topology.Diameter(g); d <= 0 || d > 6 {
		t.Fatalf("overlay diameter %d, expected small", d)
	}
}

func TestViewsRandomizeAwayFromRing(t *testing.T) {
	s := service(t, 100, 4)
	for r := 0; r < 40; r++ {
		s.Step()
	}
	// After mixing, node 0's view should not be just its ring successors.
	ringOnly := true
	for _, d := range s.View(0) {
		if d.ID > DefaultConfig().ViewSize && d.ID < 100-1 {
			ringOnly = false
			break
		}
	}
	if ringOnly {
		t.Fatal("views never mixed beyond the bootstrap ring")
	}
}

func TestSelfHealingAfterChurn(t *testing.T) {
	s := service(t, 60, 5)
	for r := 0; r < 10; r++ {
		s.Step()
	}
	// Kill a third of the network.
	for i := 0; i < 20; i++ {
		s.Kill(i * 3)
	}
	for r := 0; r < 30; r++ {
		s.Step()
	}
	// Dead descriptors age out: live nodes' views reference live peers
	// predominantly, and the live overlay is connected.
	g := s.Snapshot()
	live := s.LiveNodes()
	if len(live) != 40 {
		t.Fatalf("live count %d", len(live))
	}
	// Check connectivity restricted to live nodes: build the live-induced
	// subgraph via components containing live nodes.
	comps := topology.Components(g)
	var liveComp []int
	for _, c := range comps {
		hasLive := false
		for _, v := range c {
			if s.alive[v] {
				hasLive = true
				break
			}
		}
		if hasLive {
			if liveComp != nil {
				t.Fatalf("live overlay split into multiple components")
			}
			liveComp = c
		}
	}
	deadRefs := 0
	total := 0
	for _, i := range live {
		for _, d := range s.View(i) {
			total++
			if !s.alive[d.ID] {
				deadRefs++
			}
		}
	}
	if total == 0 || float64(deadRefs)/float64(total) > 0.2 {
		t.Fatalf("views still reference the dead: %d/%d", deadRefs, total)
	}
}

func TestKillIdempotentAndBounds(t *testing.T) {
	s := service(t, 10, 6)
	s.Kill(3)
	s.Kill(3)
	s.Kill(-1) // no-op
	s.Kill(99) // no-op
	if len(s.LiveNodes()) != 9 {
		t.Fatalf("live %d", len(s.LiveNodes()))
	}
	s.Step() // must not panic with a dead node present
}

func TestSnapshotUsableBySimulator(t *testing.T) {
	s := service(t, 30, 7)
	for r := 0; r < 15; r++ {
		s.Step()
	}
	g := s.Snapshot()
	if g.N() != 30 {
		t.Fatalf("graph size %d", g.N())
	}
	if g.AvgDegree() < float64(DefaultConfig().ViewSize)/2 {
		t.Fatalf("degree %.1f too low for view size %d", g.AvgDegree(), DefaultConfig().ViewSize)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	a := service(t, 25, 8)
	b := service(t, 25, 8)
	for r := 0; r < 10; r++ {
		a.Step()
		b.Step()
	}
	for i := 0; i < 25; i++ {
		va, vb := a.View(i), b.View(i)
		if len(va) != len(vb) {
			t.Fatalf("node %d view sizes differ", i)
		}
		for k := range va {
			if va[k] != vb[k] {
				t.Fatalf("node %d descriptor %d differs", i, k)
			}
		}
	}
}
