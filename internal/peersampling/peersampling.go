// Package peersampling implements the gossip-based peer-sampling service
// the paper's background cites for decentralized systems (§II-B,
// Jelasity et al., "Gossip-based peer sampling", ACM TOCS 2007): each node
// maintains a small partial view of the network and periodically swaps
// halves of it with a random peer, which keeps the induced overlay
// connected, low-diameter and self-healing without any global membership.
// REX deployments can bootstrap and maintain their communication graph
// with this service instead of a static topology.
package peersampling

import (
	"fmt"
	"math/rand"
	"sort"

	"rex/internal/topology"
)

// Descriptor is one view entry: a peer and the age of the information.
type Descriptor struct {
	ID  int
	Age int
}

// Config parameterizes the protocol.
type Config struct {
	// ViewSize is the partial-view capacity c (typically 8-30).
	ViewSize int
	// SwapSize is how many descriptors are exchanged per round (<= c/2).
	SwapSize int
	// Healer prioritizes dropping the oldest descriptors (the H
	// parameter of the original protocol, here as a boolean policy).
	Healer bool
}

// DefaultConfig returns a robust configuration.
func DefaultConfig() Config { return Config{ViewSize: 12, SwapSize: 6, Healer: true} }

// Service simulates peer sampling for n nodes (round-synchronous). It is
// the membership substrate; use Snapshot to materialize the current
// overlay as a topology.Graph for the REX simulator.
type Service struct {
	cfg   Config
	views [][]Descriptor
	alive []bool
	rng   *rand.Rand
	round int
}

// New creates the service with ring-initialized views (each node knows
// its successors — the minimal bootstrap knowledge).
func New(n int, cfg Config, rng *rand.Rand) *Service {
	if cfg.ViewSize <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.SwapSize <= 0 || cfg.SwapSize > cfg.ViewSize {
		cfg.SwapSize = cfg.ViewSize / 2
	}
	s := &Service{cfg: cfg, rng: rng}
	s.views = make([][]Descriptor, n)
	s.alive = make([]bool, n)
	for i := 0; i < n; i++ {
		s.alive[i] = true
		view := make([]Descriptor, 0, cfg.ViewSize)
		for d := 1; d <= cfg.ViewSize && d < n; d++ {
			view = append(view, Descriptor{ID: (i + d) % n})
		}
		s.views[i] = view
	}
	return s
}

// N returns the node count.
func (s *Service) N() int { return len(s.views) }

// Round returns how many gossip rounds have run.
func (s *Service) Round() int { return s.round }

// View returns a copy of node i's current partial view.
func (s *Service) View(i int) []Descriptor {
	return append([]Descriptor(nil), s.views[i]...)
}

// Kill removes a node: it stops gossiping and its descriptors age out of
// other views (self-healing).
func (s *Service) Kill(i int) {
	if i >= 0 && i < len(s.alive) {
		s.alive[i] = false
		s.views[i] = nil
	}
}

// Step runs one synchronous gossip round: every live node ages its view,
// picks its oldest live peer, and the pair exchange SwapSize descriptors.
func (s *Service) Step() {
	s.round++
	order := s.rng.Perm(len(s.views))
	for _, i := range order {
		if !s.alive[i] {
			continue
		}
		for k := range s.views[i] {
			s.views[i][k].Age++
		}
		j := s.selectPeer(i)
		if j < 0 {
			continue
		}
		s.exchange(i, j)
	}
}

// selectPeer returns node i's oldest view entry that is still alive,
// dropping dead entries encountered along the way.
func (s *Service) selectPeer(i int) int {
	view := s.views[i]
	sort.Slice(view, func(a, b int) bool { return view[a].Age > view[b].Age })
	for k, d := range view {
		if s.alive[d.ID] {
			if k > 0 {
				// Entries older than the chosen one were dead: drop them.
				s.views[i] = view[k:]
			}
			return d.ID
		}
	}
	s.views[i] = view[:0]
	return -1
}

// exchange swaps descriptor buffers between i and j and merges.
func (s *Service) exchange(i, j int) {
	bi := s.buffer(i)
	bj := s.buffer(j)
	s.merge(i, bj)
	s.merge(j, bi)
}

// buffer builds the descriptors node i sends: itself (age 0) plus a
// random sample of its view.
func (s *Service) buffer(i int) []Descriptor {
	buf := []Descriptor{{ID: i, Age: 0}}
	view := s.views[i]
	idx := s.rng.Perm(len(view))
	for _, k := range idx {
		if len(buf) >= s.cfg.SwapSize {
			break
		}
		buf = append(buf, view[k])
	}
	return buf
}

// merge folds received descriptors into node i's view: dedup by id keeping
// the freshest, drop self, then trim to capacity (oldest first when the
// healer policy is on, random otherwise).
func (s *Service) merge(i int, received []Descriptor) {
	byID := make(map[int]Descriptor, len(s.views[i])+len(received))
	keep := func(d Descriptor) {
		if d.ID == i {
			return
		}
		if prev, ok := byID[d.ID]; !ok || d.Age < prev.Age {
			byID[d.ID] = d
		}
	}
	for _, d := range s.views[i] {
		keep(d)
	}
	for _, d := range received {
		keep(d)
	}
	merged := make([]Descriptor, 0, len(byID))
	for _, d := range byID {
		merged = append(merged, d)
	}
	if s.cfg.Healer {
		sort.Slice(merged, func(a, b int) bool {
			if merged[a].Age != merged[b].Age {
				return merged[a].Age < merged[b].Age
			}
			return merged[a].ID < merged[b].ID
		})
	} else {
		sort.Slice(merged, func(a, b int) bool { return merged[a].ID < merged[b].ID })
		s.rng.Shuffle(len(merged), func(a, b int) { merged[a], merged[b] = merged[b], merged[a] })
	}
	if len(merged) > s.cfg.ViewSize {
		merged = merged[:s.cfg.ViewSize]
	}
	s.views[i] = merged
}

// Snapshot materializes the current overlay as an undirected graph: an
// edge (i, j) exists when either node holds the other in its view. Dead
// nodes are isolated vertices.
func (s *Service) Snapshot() *topology.Graph {
	g := topology.NewGraph(len(s.views))
	for i, view := range s.views {
		if !s.alive[i] {
			continue
		}
		for _, d := range view {
			if s.alive[d.ID] {
				g.AddEdge(i, d.ID)
			}
		}
	}
	return g
}

// LiveNodes returns the ids of nodes still alive.
func (s *Service) LiveNodes() []int {
	var out []int
	for i, a := range s.alive {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// String summarizes the service state.
func (s *Service) String() string {
	return fmt.Sprintf("peersampling{n=%d round=%d live=%d}", len(s.views), s.round, len(s.LiveNodes()))
}
