package gossip

import (
	"math/rand"
	"testing"

	"rex/internal/topology"
)

func TestParseAlgo(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Algo
	}{{"rmw", RMW}, {"RMW", RMW}, {"dpsgd", DPSGD}, {"d-psgd", DPSGD}, {"D-PSGD", DPSGD}} {
		got, err := ParseAlgo(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseAlgo(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseAlgo("nope"); err == nil {
		t.Fatal("bad algo accepted")
	}
	if RMW.String() != "RMW" || DPSGD.String() != "D-PSGD" {
		t.Fatal("algo names drifted")
	}
}

func TestTargetsRMWSingleRandom(t *testing.T) {
	g := topology.FullyConnected(10)
	rng := rand.New(rand.NewSource(1))
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		ts := Targets(RMW, g, 0, rng)
		if len(ts) != 1 {
			t.Fatalf("RMW targets %v", ts)
		}
		if ts[0] == 0 {
			t.Fatal("RMW targeted self")
		}
		seen[ts[0]] = true
	}
	if len(seen) < 5 {
		t.Fatalf("RMW not spreading: only %d distinct targets", len(seen))
	}
}

func TestTargetsDPSGDAllNeighbors(t *testing.T) {
	g := topology.NewGraph(5)
	g.AddEdge(0, 2)
	g.AddEdge(0, 4)
	ts := Targets(DPSGD, g, 0, rand.New(rand.NewSource(2)))
	if len(ts) != 2 || ts[0] != 2 || ts[1] != 4 {
		t.Fatalf("DPSGD targets %v", ts)
	}
}

func TestTargetsIsolatedNode(t *testing.T) {
	g := topology.NewGraph(3)
	if ts := Targets(RMW, g, 0, rand.New(rand.NewSource(3))); ts != nil {
		t.Fatalf("isolated RMW targets %v", ts)
	}
	if ts := Targets(DPSGD, g, 0, rand.New(rand.NewSource(3))); len(ts) != 0 {
		t.Fatalf("isolated DPSGD targets %v", ts)
	}
}

func TestFanout(t *testing.T) {
	g := topology.FullyConnected(6)
	if Fanout(RMW, g, 0) != 1 {
		t.Fatal("RMW fanout != 1")
	}
	if Fanout(DPSGD, g, 0) != 5 {
		t.Fatal("DPSGD fanout != degree")
	}
	iso := topology.NewGraph(2)
	if Fanout(RMW, iso, 0) != 0 {
		t.Fatal("isolated RMW fanout != 0")
	}
}
