// Package gossip provides the two dissemination schemes REX supports
// (paper §III-C): random model walk (RMW, gossip learning — unicast to one
// random neighbor per epoch) and decentralized parallel SGD (D-PSGD —
// broadcast to all neighbors with Metropolis–Hastings-weighted merging).
// Whether the payload is a model (MS) or raw data (REX/DS) is orthogonal
// and handled by core.
package gossip

import (
	"fmt"
	"math/rand"

	"rex/internal/topology"
)

// Algo selects the dissemination scheme.
type Algo int

const (
	// RMW sends to one uniformly random neighbor each epoch (§III-C1).
	RMW Algo = iota
	// DPSGD sends to every neighbor each epoch (§III-C2).
	DPSGD
)

// String implements fmt.Stringer.
func (a Algo) String() string {
	switch a {
	case RMW:
		return "RMW"
	case DPSGD:
		return "D-PSGD"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// ParseAlgo converts a CLI name into an Algo.
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "rmw", "RMW":
		return RMW, nil
	case "dpsgd", "d-psgd", "DPSGD", "D-PSGD":
		return DPSGD, nil
	}
	return 0, fmt.Errorf("gossip: unknown algorithm %q (want rmw or dpsgd)", s)
}

// Targets returns the neighbors node i shares with in the current epoch:
// one random neighbor under RMW, all neighbors under D-PSGD. The result
// aliases graph storage for DPSGD and must not be modified.
func Targets(a Algo, g topology.Source, i int, rng *rand.Rand) []int {
	switch a {
	case RMW:
		j := topology.RandomNeighborOf(g, i, rng)
		if j < 0 {
			return nil
		}
		return []int{j}
	case DPSGD:
		return g.Neighbors(i)
	default:
		panic("gossip: unknown algorithm")
	}
}

// TargetsAppend is Targets with a caller-owned buffer: the epoch's targets
// are appended to dst (usually a recycled scratch slice) and the extended
// slice is returned. The rng draw sequence is identical to Targets', so
// pooled and unpooled dissemination pick the same peers; unlike Targets,
// the result never aliases graph storage and is safe to retain until the
// caller reuses the buffer.
func TargetsAppend(dst []int, a Algo, g topology.Source, i int, rng *rand.Rand) []int {
	switch a {
	case RMW:
		j := topology.RandomNeighborOf(g, i, rng)
		if j < 0 {
			return dst
		}
		return append(dst, j)
	case DPSGD:
		return append(dst, g.Neighbors(i)...)
	default:
		panic("gossip: unknown algorithm")
	}
}

// Fanout returns the expected number of messages node i sends per epoch.
func Fanout(a Algo, g topology.Source, i int) int {
	if a == RMW {
		if g.Degree(i) == 0 {
			return 0
		}
		return 1
	}
	return g.Degree(i)
}
