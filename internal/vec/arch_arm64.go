//go:build arm64

package vec

// NEON (ASIMD) is architectural on arm64 — no feature detection needed.
// The kernels live in kernels_arm64.s; Go's arm64 assembler has no
// vector floating-point add/mul/sub mnemonics (only fused VFMLA/VFMLS,
// which the bit-identity contract forbids), so the float ops are emitted
// as WORD-encoded A64 instructions, one comment per WORD naming the
// instruction it encodes.
func archImpls() []impl {
	return []impl{{
		name:  "neon",
		add:   addNEONFull,
		axpy:  axpyNEONFull,
		scale: scaleNEONFull,
		zero:  zeroNEONFull,
		sgd10: sgd10NEON,
		adam:  adamNEONFull,
	}}
}

// The assembly kernels consume only whole 4-element blocks; the wrappers
// trim and finish tails with the exact reference loop (element-wise, so
// the split cannot change a single bit).

//go:noescape
func addNEON(dst, src []float32)

//go:noescape
func axpyNEON(alpha float32, x, y []float32)

//go:noescape
func scaleNEON(alpha float32, x []float32)

//go:noescape
func zeroNEON(x []float32)

//go:noescape
func sgd10NEON(x, y []float32, rating, mean, bu, bi, lr, reg float32) (float32, float32)

//go:noescape
func adamNEON(w, g, m, v []float32, lr float64, b1, onemb1, b2, onemb2 float32, bc1, bc2, eps float64)

func addNEONFull(dst, src []float32) {
	n := len(dst)
	src = src[:n]
	if blk := n &^ 3; blk > 0 {
		addNEON(dst[:blk], src[:blk])
	}
	for i := n &^ 3; i < n; i++ {
		dst[i] += src[i]
	}
}

func axpyNEONFull(alpha float32, x, y []float32) {
	n := len(y)
	x = x[:n]
	if blk := n &^ 3; blk > 0 {
		axpyNEON(alpha, x[:blk], y[:blk])
	}
	for i := n &^ 3; i < n; i++ {
		y[i] += float32(alpha * x[i])
	}
}

func scaleNEONFull(alpha float32, x []float32) {
	n := len(x)
	if blk := n &^ 3; blk > 0 {
		scaleNEON(alpha, x[:blk])
	}
	for i := n &^ 3; i < n; i++ {
		x[i] *= alpha
	}
}

func zeroNEONFull(x []float32) {
	n := len(x)
	if blk := n &^ 3; blk > 0 {
		zeroNEON(x[:blk])
	}
	for i := n &^ 3; i < n; i++ {
		x[i] = 0
	}
}

func adamNEONFull(w, g, m, v []float32, lr, wd float64, b1, b2 float32, bc1, bc2, eps float64) {
	n := len(w)
	g, m, v = g[:n], m[:n], v[:n]
	if wd != 0 {
		adamDecay(w, lr*wd)
	}
	blk := n &^ 3
	if blk > 0 {
		adamNEON(w[:blk], g[:blk], m[:blk], v[:blk], lr, b1, 1-b1, b2, 1-b2, bc1, bc2, eps)
	}
	adamTail(w, g, m, v, blk, lr, b1, b2, bc1, bc2, eps)
}
