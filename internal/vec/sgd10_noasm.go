//go:build !amd64

package vec

const asmSGD10 = false

func fusedSGDStep10Asm(x, y []float32, rating, mean, bu, bi, lr, reg float32) (float32, float32) {
	return fusedSGDStep10(x, y, rating, mean, bu, bi, lr, reg)
}
