package vec

import (
	"math"
	"math/rand"
	"testing"
)

// The kernels promise bit-identity with their naive reference loops. Every
// property test below runs the reference next to the kernel and asserts
// float32 equality by bits, not tolerance. Dispatched kernels run the full
// matrix of {every implementation available on this machine} × {lengths
// 0..70, crossing every SSE2/AVX2/NEON remainder boundary} × {slice
// offsets 0..5, so vector blocks start at unaligned addresses}; guard
// sentinels around each window catch any out-of-bounds store by the
// assembly block/tail split.

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func bitsEq(a, b float32) bool { return math.Float32bits(a) == math.Float32bits(b) }

func requireBitsEq(t *testing.T, name string, n int, got, want []float32) {
	t.Helper()
	for i := range want {
		if !bitsEq(got[i], want[i]) {
			t.Fatalf("%s n=%d index %d: got %v want %v", name, n, i, got[i], want[i])
		}
	}
}

// forEachImpl runs fn once per implementation available on this machine,
// with dispatch pinned to it for the duration of the subtest.
func forEachImpl(t *testing.T, fn func(t *testing.T)) {
	for _, im := range available {
		im := im
		t.Run(im.name, func(t *testing.T) {
			prev := active
			active = im
			defer func() { active = prev }()
			fn(t)
		})
	}
}

const guard = 8 // sentinel elements on each side of every test window

const sentinel = float32(-987654.25)

// window is an n-element slice carved out of a larger buffer at a chosen
// element offset (so SIMD blocks start at 4-, 8-, 12-… byte alignments,
// not just 16/32), with sentinel guards on both sides.
type window struct {
	base []float32
	off  int
	n    int
}

func newWindow(rng *rand.Rand, n, off int) window {
	w := window{base: make([]float32, guard+off+n+guard), off: guard + off, n: n}
	for i := range w.base {
		w.base[i] = sentinel
	}
	s := w.s()
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return w
}

func (w window) s() []float32 { return w.base[w.off : w.off+w.n] }

func (w window) checkGuards(t *testing.T, name string) {
	t.Helper()
	for i := 0; i < w.off; i++ {
		if !bitsEq(w.base[i], sentinel) {
			t.Fatalf("%s n=%d: clobbered guard before window (index %d)", name, w.n, i-w.off)
		}
	}
	for i := w.off + w.n; i < len(w.base); i++ {
		if !bitsEq(w.base[i], sentinel) {
			t.Fatalf("%s n=%d: clobbered guard after window (index %d)", name, w.n, i-w.off-w.n)
		}
	}
}

var testOffsets = []int{0, 1, 2, 3, 5}

func TestDotMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 70; n++ {
		a, b := randSlice(rng, n), randSlice(rng, n)
		var want float32
		for i := 0; i < n; i++ {
			want += float32(a[i] * b[i])
		}
		if got := Dot(a, b); !bitsEq(got, want) {
			t.Fatalf("Dot n=%d: got %v want %v", n, got, want)
		}
	}
}

func TestSumSqMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 70; n++ {
		x := randSlice(rng, n)
		var want float32
		for i := 0; i < n; i++ {
			want += float32(x[i] * x[i])
		}
		if got := SumSq(x); !bitsEq(got, want) {
			t.Fatalf("SumSq n=%d: got %v want %v", n, got, want)
		}
	}
}

func TestAddMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	forEachImpl(t, func(t *testing.T) {
		for n := 0; n <= 70; n++ {
			for _, off := range testOffsets {
				dw, sw := newWindow(rng, n, off), newWindow(rng, n, off)
				dst, src := dw.s(), sw.s()
				want := append([]float32(nil), dst...)
				for i := range want {
					want[i] += src[i]
				}
				Add(dst, src)
				requireBitsEq(t, "Add", n, dst, want)
				dw.checkGuards(t, "Add.dst")
				sw.checkGuards(t, "Add.src")
			}
		}
	})
}

func TestAddScaledMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	forEachImpl(t, func(t *testing.T) {
		for n := 0; n <= 70; n++ {
			for _, off := range testOffsets {
				alpha := float32(rng.NormFloat64())
				dw, sw := newWindow(rng, n, off), newWindow(rng, n, off)
				dst, src := dw.s(), sw.s()
				want := append([]float32(nil), dst...)
				srcOrig := append([]float32(nil), src...)
				for i := range want {
					want[i] += float32(alpha * src[i])
				}
				add2 := append([]float32(nil), dst...)
				AddScaled(dst, src, alpha)
				requireBitsEq(t, "AddScaled", n, dst, want)
				requireBitsEq(t, "AddScaled.src", n, src, srcOrig)
				dw.checkGuards(t, "AddScaled.dst")
				sw.checkGuards(t, "AddScaled.src")
				// Axpy is the same kernel under its BLAS name.
				Axpy(alpha, srcOrig, add2)
				requireBitsEq(t, "Axpy", n, add2, want)
			}
		}
	})
}

func TestScaleAndZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	forEachImpl(t, func(t *testing.T) {
		for n := 0; n <= 70; n++ {
			for _, off := range testOffsets {
				alpha := float32(rng.NormFloat64())
				w := newWindow(rng, n, off)
				x := w.s()
				want := append([]float32(nil), x...)
				for i := range want {
					want[i] *= alpha
				}
				Scale(alpha, x)
				requireBitsEq(t, "Scale", n, x, want)
				w.checkGuards(t, "Scale")
				Zero(x)
				for i := range x {
					if x[i] != 0 {
						t.Fatalf("Zero n=%d left %v at %d", n, x[i], i)
					}
				}
				w.checkGuards(t, "Zero")
			}
		}
	})
}

// TestAxpyAliased pins in-place accumulation, dst==src: the reference loop
// reads y[i] before writing it, so aliasing is well defined and the
// element-wise kernels must honor it.
func TestAxpyAliased(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	forEachImpl(t, func(t *testing.T) {
		for n := 0; n <= 70; n++ {
			for _, off := range testOffsets {
				alpha := float32(rng.NormFloat64())
				w := newWindow(rng, n, off)
				x := w.s()
				want := append([]float32(nil), x...)
				for i := range want {
					want[i] += float32(alpha * want[i])
				}
				Axpy(alpha, x, x)
				requireBitsEq(t, "Axpy.aliased", n, x, want)
				w.checkGuards(t, "Axpy.aliased")
			}
		}
	})
}

func TestSGDStepMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for n := 0; n <= 70; n++ {
		e := float32(rng.NormFloat64())
		lr, reg := float32(0.005), float32(0.1)
		x, y := randSlice(rng, n), randSlice(rng, n)
		wx := append([]float32(nil), x...)
		wy := append([]float32(nil), y...)
		for d := 0; d < n; d++ {
			xd, yd := wx[d], wy[d]
			wx[d] += float32(lr * (float32(e*yd) - float32(reg*xd)))
			wy[d] += float32(lr * (float32(e*xd) - float32(reg*yd)))
		}
		SGDStep(x, y, e, lr, reg)
		requireBitsEq(t, "SGDStep.x", n, x, wx)
		requireBitsEq(t, "SGDStep.y", n, y, wy)
	}
}

func adamReference(w, g, m, v []float32, lr, wd float64, b1, b2 float32, bc1, bc2, eps float64) {
	for i, gi := range g {
		if wd != 0 {
			w[i] -= float32(lr * wd * float64(w[i]))
		}
		m[i] = float32(b1*m[i]) + float32((1-b1)*gi)
		v[i] = float32(b2*v[i]) + float32((1-b2)*gi*gi)
		mhat := float64(m[i]) / bc1
		vhat := float64(v[i]) / bc2
		w[i] -= float32(lr * mhat / (math.Sqrt(vhat) + eps))
	}
}

func TestAdamStepMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lr, wd, eps := 1e-4, 1e-5, 1e-8
	b1, b2 := float32(0.9), float32(0.999)
	forEachImpl(t, func(t *testing.T) {
		for n := 0; n <= 70; n++ {
			for _, useWD := range []float64{wd, 0} {
				for _, off := range testOffsets {
					ws, gs := newWindow(rng, n, off), newWindow(rng, n, off)
					ms, vs := newWindow(rng, n, off), newWindow(rng, n, off)
					w, g, m, v := ws.s(), gs.s(), ms.s(), vs.s()
					for i := range v {
						v[i] = float32(rng.Float64()) // v must stay non-negative
					}
					t_ := 1 + rng.Intn(50)
					bc1 := 1 - math.Pow(float64(b1), float64(t_))
					bc2 := 1 - math.Pow(float64(b2), float64(t_))
					ww := append([]float32(nil), w...)
					wm := append([]float32(nil), m...)
					wv := append([]float32(nil), v...)
					adamReference(ww, g, wm, wv, lr, useWD, b1, b2, bc1, bc2, eps)
					AdamStep(w, g, m, v, lr, useWD, b1, b2, bc1, bc2, eps)
					requireBitsEq(t, "AdamStep.w", n, w, ww)
					requireBitsEq(t, "AdamStep.m", n, m, wm)
					requireBitsEq(t, "AdamStep.v", n, v, wv)
					for _, pair := range []struct {
						name string
						win  window
					}{{"w", ws}, {"g", gs}, {"m", ms}, {"v", vs}} {
						pair.win.checkGuards(t, "AdamStep."+pair.name)
					}
				}
			}
		}
	})
}

// TestLongerSourcesIgnored pins the length contract: the first argument
// defines the operation length and trailing source elements are untouched.
func TestLongerSourcesIgnored(t *testing.T) {
	forEachImpl(t, func(t *testing.T) {
		dst := []float32{1, 2}
		src := []float32{10, 20, 30}
		AddScaled(dst, src, 1)
		if dst[0] != 11 || dst[1] != 22 {
			t.Fatalf("AddScaled wrong: %v", dst)
		}
		if src[2] != 30 {
			t.Fatalf("AddScaled touched excess src: %v", src)
		}
		if got := Dot([]float32{1, 1}, []float32{3, 4, 5}); got != 7 {
			t.Fatalf("Dot used excess elements: %v", got)
		}
	})
}

func TestShortSourcePanics(t *testing.T) {
	forEachImpl(t, func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("AddScaled with short src must panic")
			}
		}()
		AddScaled(make([]float32, 8), make([]float32, 4), 1)
	})
}

// --- benchmarks: the numbers behind README's kernel table and the CI
// bench-regression gate (cmd/benchgate compares the dispatched path
// against REX_VEC=go runs of these same benchmarks) ---

func benchSlices(n int) ([]float32, []float32) {
	rng := rand.New(rand.NewSource(9))
	return randSlice(rng, n), randSlice(rng, n)
}

func BenchmarkDot(b *testing.B) {
	for _, n := range []int{10, 64, 1024} {
		a, c := benchSlices(n)
		b.Run(sizeName(n), func(b *testing.B) {
			var s float32
			for i := 0; i < b.N; i++ {
				s += Dot(a, c)
			}
			sink = s
		})
	}
}

func BenchmarkAddScaled(b *testing.B) {
	for _, n := range []int{10, 64, 1024} {
		a, c := benchSlices(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AddScaled(a, c, 0.5)
			}
		})
	}
}

func BenchmarkScale(b *testing.B) {
	for _, n := range []int{64, 1024} {
		a, _ := benchSlices(n)
		b.Run(sizeName(n), func(b *testing.B) {
			// alpha=-1 keeps magnitudes constant across iterations: a
			// decaying alpha would drive the buffer into subnormals and
			// measure FP-assist stalls instead of the kernel.
			for i := 0; i < b.N; i++ {
				Scale(-1, a)
			}
		})
	}
}

func BenchmarkSGDStep(b *testing.B) {
	for _, n := range []int{10, 64} {
		x, y := benchSlices(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SGDStep(x, y, 0.1, 0.005, 0.1)
			}
		})
	}
}

func BenchmarkAdamStep(b *testing.B) {
	for _, n := range []int{64, 1024} {
		w, g := benchSlices(n)
		m := make([]float32, n)
		v := make([]float32, n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AdamStep(w, g, m, v, 1e-4, 1e-5, 0.9, 0.999, 0.1, 0.001, 1e-8)
			}
		})
	}
}

var sink float32

func sizeName(n int) string {
	switch n {
	case 10:
		return "n=10"
	case 64:
		return "n=64"
	case 1024:
		return "n=1024"
	}
	return "n"
}
