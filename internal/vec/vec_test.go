package vec

import (
	"math"
	"math/rand"
	"testing"
)

// The kernels promise bit-identity with their naive reference loops. Every
// property test below runs the reference next to the kernel across lengths
// straddling the unroll width (0..67) and asserts float32 equality by bits,
// not tolerance.

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func bitsEq(a, b float32) bool { return math.Float32bits(a) == math.Float32bits(b) }

func requireBitsEq(t *testing.T, name string, n int, got, want []float32) {
	t.Helper()
	for i := range want {
		if !bitsEq(got[i], want[i]) {
			t.Fatalf("%s n=%d index %d: got %v want %v", name, n, i, got[i], want[i])
		}
	}
}

func TestDotMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 67; n++ {
		a, b := randSlice(rng, n), randSlice(rng, n)
		var want float32
		for i := 0; i < n; i++ {
			want += a[i] * b[i]
		}
		if got := Dot(a, b); !bitsEq(got, want) {
			t.Fatalf("Dot n=%d: got %v want %v", n, got, want)
		}
	}
}

func TestSumSqMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 67; n++ {
		x := randSlice(rng, n)
		var want float32
		for i := 0; i < n; i++ {
			want += x[i] * x[i]
		}
		if got := SumSq(x); !bitsEq(got, want) {
			t.Fatalf("SumSq n=%d: got %v want %v", n, got, want)
		}
	}
}

func TestAddMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 0; n <= 67; n++ {
		dst, src := randSlice(rng, n), randSlice(rng, n)
		want := append([]float32(nil), dst...)
		for i := range want {
			want[i] += src[i]
		}
		Add(dst, src)
		requireBitsEq(t, "Add", n, dst, want)
	}
}

func TestAddScaledMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 0; n <= 67; n++ {
		alpha := float32(rng.NormFloat64())
		dst, src := randSlice(rng, n), randSlice(rng, n)
		want := append([]float32(nil), dst...)
		for i := range want {
			want[i] += alpha * src[i]
		}
		Add2 := append([]float32(nil), dst...)
		AddScaled(dst, src, alpha)
		requireBitsEq(t, "AddScaled", n, dst, want)
		// Axpy is the same kernel under its BLAS name.
		Axpy(alpha, src, Add2)
		requireBitsEq(t, "Axpy", n, Add2, want)
	}
}

func TestScaleAndZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 0; n <= 67; n++ {
		alpha := float32(rng.NormFloat64())
		x := randSlice(rng, n)
		want := append([]float32(nil), x...)
		for i := range want {
			want[i] *= alpha
		}
		Scale(alpha, x)
		requireBitsEq(t, "Scale", n, x, want)
		Zero(x)
		for i := range x {
			if x[i] != 0 {
				t.Fatalf("Zero n=%d left %v at %d", n, x[i], i)
			}
		}
	}
}

func TestSGDStepMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for n := 0; n <= 67; n++ {
		e := float32(rng.NormFloat64())
		lr, reg := float32(0.005), float32(0.1)
		x, y := randSlice(rng, n), randSlice(rng, n)
		wx := append([]float32(nil), x...)
		wy := append([]float32(nil), y...)
		for d := 0; d < n; d++ {
			xd, yd := wx[d], wy[d]
			wx[d] += lr * (e*yd - reg*xd)
			wy[d] += lr * (e*xd - reg*yd)
		}
		SGDStep(x, y, e, lr, reg)
		requireBitsEq(t, "SGDStep.x", n, x, wx)
		requireBitsEq(t, "SGDStep.y", n, y, wy)
	}
}

func TestAdamStepMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lr, wd, eps := 1e-4, 1e-5, 1e-8
	b1, b2 := float32(0.9), float32(0.999)
	for n := 0; n <= 67; n++ {
		for _, useWD := range []float64{wd, 0} {
			w, g := randSlice(rng, n), randSlice(rng, n)
			m, v := randSlice(rng, n), make([]float32, n)
			for i := range v {
				v[i] = float32(rng.Float64()) // v must stay non-negative
			}
			t_ := 1 + rng.Intn(50)
			bc1 := 1 - math.Pow(float64(b1), float64(t_))
			bc2 := 1 - math.Pow(float64(b2), float64(t_))
			ww := append([]float32(nil), w...)
			wm := append([]float32(nil), m...)
			wv := append([]float32(nil), v...)
			for i, gi := range g {
				if useWD != 0 {
					ww[i] -= float32(lr * useWD * float64(ww[i]))
				}
				wm[i] = b1*wm[i] + (1-b1)*gi
				wv[i] = b2*wv[i] + (1-b2)*gi*gi
				mhat := float64(wm[i]) / bc1
				vhat := float64(wv[i]) / bc2
				ww[i] -= float32(lr * mhat / (math.Sqrt(vhat) + eps))
			}
			AdamStep(w, g, m, v, lr, useWD, b1, b2, bc1, bc2, eps)
			requireBitsEq(t, "AdamStep.w", n, w, ww)
			requireBitsEq(t, "AdamStep.m", n, m, wm)
			requireBitsEq(t, "AdamStep.v", n, v, wv)
		}
	}
}

// TestLongerSourcesIgnored pins the length contract: the first argument
// defines the operation length and trailing source elements are untouched.
func TestLongerSourcesIgnored(t *testing.T) {
	dst := []float32{1, 2}
	src := []float32{10, 20, 30}
	AddScaled(dst, src, 1)
	if dst[0] != 11 || dst[1] != 22 {
		t.Fatalf("AddScaled wrong: %v", dst)
	}
	if got := Dot([]float32{1, 1}, []float32{3, 4, 5}); got != 7 {
		t.Fatalf("Dot used excess elements: %v", got)
	}
}

func TestShortSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddScaled with short src must panic")
		}
	}()
	AddScaled(make([]float32, 8), make([]float32, 4), 1)
}

// --- benchmarks: the numbers behind README's kernel table ---

func benchSlices(n int) ([]float32, []float32) {
	rng := rand.New(rand.NewSource(9))
	return randSlice(rng, n), randSlice(rng, n)
}

func BenchmarkDot(b *testing.B) {
	for _, n := range []int{10, 64, 1024} {
		a, c := benchSlices(n)
		b.Run(sizeName(n), func(b *testing.B) {
			var s float32
			for i := 0; i < b.N; i++ {
				s += Dot(a, c)
			}
			sink = s
		})
	}
}

func BenchmarkAddScaled(b *testing.B) {
	for _, n := range []int{10, 64, 1024} {
		a, c := benchSlices(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AddScaled(a, c, 0.5)
			}
		})
	}
}

func BenchmarkSGDStep(b *testing.B) {
	for _, n := range []int{10, 64} {
		x, y := benchSlices(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SGDStep(x, y, 0.1, 0.005, 0.1)
			}
		})
	}
}

func BenchmarkAdamStep(b *testing.B) {
	for _, n := range []int{64, 1024} {
		w, g := benchSlices(n)
		m := make([]float32, n)
		v := make([]float32, n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AdamStep(w, g, m, v, 1e-4, 1e-5, 0.9, 0.999, 0.1, 0.001, 1e-8)
			}
		})
	}
}

var sink float32

func sizeName(n int) string {
	switch n {
	case 10:
		return "n=10"
	case 64:
		return "n=64"
	case 1024:
		return "n=1024"
	}
	return "n"
}
