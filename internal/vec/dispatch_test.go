package vec

import (
	"os"
	"runtime"
	"testing"
)

func TestAvailableContract(t *testing.T) {
	names := Available()
	if len(names) == 0 {
		t.Fatal("no implementations available")
	}
	if names[len(names)-1] != "go" {
		t.Fatalf("portable Go impl must be last, got %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate implementation %q in %v", n, names)
		}
		seen[n] = true
	}
	if runtime.GOARCH == "amd64" && !seen["sse2"] {
		t.Fatalf("amd64 must always offer sse2, got %v", names)
	}
	if runtime.GOARCH == "arm64" && !seen["neon"] {
		t.Fatalf("arm64 must always offer neon, got %v", names)
	}
	if seen["avx2"] && names[0] != "avx2" {
		t.Fatalf("avx2 available but not preferred: %v", names)
	}
}

func TestUse(t *testing.T) {
	prev := Impl()
	defer func() {
		if err := Use(prev); err != nil {
			t.Fatal(err)
		}
	}()
	for _, name := range Available() {
		if err := Use(name); err != nil {
			t.Fatalf("Use(%q): %v", name, err)
		}
		if got := Impl(); got != name {
			t.Fatalf("Use(%q) left Impl()=%q", name, got)
		}
	}
	if err := Use("bogus"); err == nil {
		t.Fatal("Use of unknown implementation must error")
	}
	if got := Impl(); got != Available()[len(Available())-1] {
		// The failed Use must not have changed dispatch (last successful
		// Use in the loop above was "go", always last).
		t.Fatalf("failed Use changed Impl() to %q", got)
	}
}

// TestForcedImplActive is the assertion behind the CI forced-path sweep:
// when REX_VEC names an implementation this machine has, init must have
// pinned dispatch to it. (The sweep runs the whole test suite with
// REX_VEC=go, =sse2, =avx2, =neon; this test proves the knob actually
// took effect rather than silently testing the default path four times.)
func TestForcedImplActive(t *testing.T) {
	forced := os.Getenv("REX_VEC")
	if forced == "" || forced == "auto" {
		t.Skip("REX_VEC not forcing a path")
	}
	for _, name := range Available() {
		if name == forced {
			if got := Impl(); got != forced {
				t.Fatalf("REX_VEC=%q but Impl()=%q", forced, got)
			}
			return
		}
	}
	// Forced path unavailable on this machine: init falls back to auto.
	if got, want := Impl(), Available()[0]; got != want {
		t.Fatalf("REX_VEC=%q unavailable: Impl()=%q, want auto choice %q", forced, got, want)
	}
}
