//go:build !amd64 && !arm64

package vec

// archImpls: no assembly tiers on this architecture — the portable Go
// kernels (always appended by dispatch init) are the only implementation.
func archImpls() []impl { return nil }
