//go:build amd64

#include "textflag.h"

// amd64 element-wise kernels, SSE2 and AVX2 tiers. Bit-identity with the
// pure-Go reference loops is load-bearing everywhere:
//   - packed single/double ops compute the identical IEEE-754 operations
//     the scalar loop would, lane by lane (no FMA contraction, default
//     rounding; ÷ and √ are correctly rounded and therefore safe);
//   - reductions never appear here — Dot/SumSq stay scalar Go by contract;
//   - every kernel consumes only whole vector blocks (len pre-trimmed by
//     the Go wrapper, which finishes the tail with the reference loop).
// The AVX2 kernels are VEX-encoded throughout and end in VZEROUPPER so no
// legacy-SSE transition stalls leak into the caller.

// func addSSE2(dst, src []float32)
// dst[i] += src[i]; len(dst) is a positive multiple of 4.
TEXT ·addSSE2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ dst_len+8(FP), CX
	SHRQ $2, CX

addsse2_loop:
	MOVUPS (SI), X1
	MOVUPS (DI), X2
	ADDPS  X1, X2        // dst + src
	MOVUPS X2, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	DECQ   CX
	JNZ    addsse2_loop
	RET

// func addAVX2(dst, src []float32)
// dst[i] += src[i]; len(dst) is a positive multiple of 8.
TEXT ·addAVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ dst_len+8(FP), CX
	SHRQ $3, CX

addavx2_loop:
	VMOVUPS (DI), Y1
	VADDPS  (SI), Y1, Y1 // dst + src
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     addavx2_loop
	VZEROUPPER
	RET

// func axpySSE2(alpha float32, x, y []float32)
// y[i] += alpha*x[i]; len(y) is a positive multiple of 4.
TEXT ·axpySSE2(SB), NOSPLIT, $0-56
	MOVSS  alpha+0(FP), X0
	SHUFPS $0x00, X0, X0
	MOVQ   x_base+8(FP), SI
	MOVQ   y_base+32(FP), DI
	MOVQ   y_len+40(FP), CX
	SHRQ   $2, CX

axpysse2_loop:
	MOVUPS (SI), X1
	MULPS  X0, X1        // alpha*x
	MOVUPS (DI), X2
	ADDPS  X1, X2        // y + alpha*x
	MOVUPS X2, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	DECQ   CX
	JNZ    axpysse2_loop
	RET

// func scaleSSE2(alpha float32, x []float32)
// x[i] *= alpha; len(x) is a positive multiple of 4.
TEXT ·scaleSSE2(SB), NOSPLIT, $0-32
	MOVSS  alpha+0(FP), X0
	SHUFPS $0x00, X0, X0
	MOVQ   x_base+8(FP), SI
	MOVQ   x_len+16(FP), CX
	SHRQ   $2, CX

scalesse2_loop:
	MOVUPS (SI), X1
	MULPS  X0, X1
	MOVUPS X1, (SI)
	ADDQ   $16, SI
	DECQ   CX
	JNZ    scalesse2_loop
	RET

// func zeroSSE2(x []float32)
// x[i] = 0; len(x) is a positive multiple of 4.
TEXT ·zeroSSE2(SB), NOSPLIT, $0-24
	XORPS X0, X0
	MOVQ  x_base+0(FP), SI
	MOVQ  x_len+8(FP), CX
	SHRQ  $2, CX

zerosse2_loop:
	MOVUPS X0, (SI)
	ADDQ   $16, SI
	DECQ   CX
	JNZ    zerosse2_loop
	RET

// func axpyAVX2(alpha float32, x, y []float32)
// y[i] += alpha*x[i]; len(y) is a positive multiple of 8.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-56
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ         x_base+8(FP), SI
	MOVQ         y_base+32(FP), DI
	MOVQ         y_len+40(FP), CX
	SHRQ         $3, CX

axpyavx2_loop:
	VMOVUPS (SI), Y1
	VMULPS  Y1, Y0, Y1   // alpha*x
	VADDPS  (DI), Y1, Y1 // y + alpha*x
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     axpyavx2_loop
	VZEROUPPER
	RET

// func scaleAVX2(alpha float32, x []float32)
// x[i] *= alpha; len(x) is a positive multiple of 8.
TEXT ·scaleAVX2(SB), NOSPLIT, $0-32
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ         x_base+8(FP), SI
	MOVQ         x_len+16(FP), CX
	SHRQ         $3, CX

scaleavx2_loop:
	VMULPS  (SI), Y0, Y1
	VMOVUPS Y1, (SI)
	ADDQ    $32, SI
	DECQ    CX
	JNZ     scaleavx2_loop
	VZEROUPPER
	RET

// func zeroAVX2(x []float32)
// x[i] = 0; len(x) is a positive multiple of 8.
TEXT ·zeroAVX2(SB), NOSPLIT, $0-24
	VXORPS X0, X0, X0    // zeroes the full Y0
	MOVQ   x_base+0(FP), SI
	MOVQ   x_len+8(FP), CX
	SHRQ   $3, CX

zeroavx2_loop:
	VMOVUPS Y0, (SI)
	ADDQ    $32, SI
	DECQ    CX
	JNZ     zeroavx2_loop
	VZEROUPPER
	RET

// func sgd10SSE2(x, y []float32, rating, mean, bu, bi, lr, reg float32) (float32, float32)
//
// SSE2 implementation of the K=10 fused biased-MF SGD step:
//   - the dot product is a strictly serial scalar ADDSS chain starting
//     from +0, exactly the Go accumulation order;
//   - the embedding update is element-wise, so packed MULPS/SUBPS/ADDPS
//     lanes compute the identical IEEE-754 single operations the scalar
//     loop would (no FMA contraction, default rounding);
//   - bias updates replicate the Go expression shapes operation for
//     operation.
TEXT ·sgd10SSE2(SB), NOSPLIT, $0-80
	MOVQ x_base+0(FP), SI
	MOVQ y_base+24(FP), DI

	// --- dot = Σ x[i]*y[i], serial chain from +0 ---
	XORPS X0, X0
	MOVSS 0(SI), X1
	MULSS 0(DI), X1
	ADDSS X1, X0
	MOVSS 4(SI), X1
	MULSS 4(DI), X1
	ADDSS X1, X0
	MOVSS 8(SI), X1
	MULSS 8(DI), X1
	ADDSS X1, X0
	MOVSS 12(SI), X1
	MULSS 12(DI), X1
	ADDSS X1, X0
	MOVSS 16(SI), X1
	MULSS 16(DI), X1
	ADDSS X1, X0
	MOVSS 20(SI), X1
	MULSS 20(DI), X1
	ADDSS X1, X0
	MOVSS 24(SI), X1
	MULSS 24(DI), X1
	ADDSS X1, X0
	MOVSS 28(SI), X1
	MULSS 28(DI), X1
	ADDSS X1, X0
	MOVSS 32(SI), X1
	MULSS 32(DI), X1
	ADDSS X1, X0
	MOVSS 36(SI), X1
	MULSS 36(DI), X1
	ADDSS X1, X0

	// --- e = rating - (((mean + bu) + bi) + dot) ---
	MOVSS mean+52(FP), X2
	ADDSS bu+56(FP), X2
	ADDSS bi+60(FP), X2
	ADDSS X0, X2
	MOVSS rating+48(FP), X3
	SUBSS X2, X3                  // X3 = e (scalar lane)

	// --- broadcasts: X6 = e, X4 = lr, X5 = reg (lane0 stays scalar) ---
	MOVSS  lr+64(FP), X4
	SHUFPS $0x00, X4, X4
	MOVSS  reg+68(FP), X5
	SHUFPS $0x00, X5, X5
	MOVAPS X3, X6
	SHUFPS $0x00, X6, X6

	// --- lanes 0..3 ---
	MOVUPS 0(SI), X8              // x old
	MOVUPS 0(DI), X9              // y old
	MOVAPS X6, X10
	MULPS  X9, X10                // e*y
	MOVAPS X5, X11
	MULPS  X8, X11                // reg*x
	SUBPS  X11, X10               // e*y - reg*x
	MULPS  X4, X10                // lr*(e*y - reg*x)
	ADDPS  X8, X10                // x' = x + ...
	MOVAPS X6, X12
	MULPS  X8, X12                // e*x_old
	MOVAPS X5, X13
	MULPS  X9, X13                // reg*y
	SUBPS  X13, X12
	MULPS  X4, X12
	ADDPS  X9, X12                // y' = y + ...
	MOVUPS X10, 0(SI)
	MOVUPS X12, 0(DI)

	// --- lanes 4..7 ---
	MOVUPS 16(SI), X8
	MOVUPS 16(DI), X9
	MOVAPS X6, X10
	MULPS  X9, X10
	MOVAPS X5, X11
	MULPS  X8, X11
	SUBPS  X11, X10
	MULPS  X4, X10
	ADDPS  X8, X10
	MOVAPS X6, X12
	MULPS  X8, X12
	MOVAPS X5, X13
	MULPS  X9, X13
	SUBPS  X13, X12
	MULPS  X4, X12
	ADDPS  X9, X12
	MOVUPS X10, 16(SI)
	MOVUPS X12, 16(DI)

	// --- lanes 8..9 (8-byte loads zero the upper half; the junk lanes
	// compute 0*… = 0 and are not stored back) ---
	MOVQ   32(SI), X8
	MOVQ   32(DI), X9
	MOVAPS X6, X10
	MULPS  X9, X10
	MOVAPS X5, X11
	MULPS  X8, X11
	SUBPS  X11, X10
	MULPS  X4, X10
	ADDPS  X8, X10
	MOVAPS X6, X12
	MULPS  X8, X12
	MOVAPS X5, X13
	MULPS  X9, X13
	SUBPS  X13, X12
	MULPS  X4, X12
	ADDPS  X9, X12
	MOVQ   X10, 32(SI)
	MOVQ   X12, 32(DI)

	// --- bu' = bu + lr*(e - reg*bu) ---
	MOVSS  bu+56(FP), X7
	MOVAPS X5, X8
	MULSS  X7, X8
	MOVAPS X3, X9
	SUBSS  X8, X9
	MULSS  X4, X9
	ADDSS  X7, X9
	MOVSS  X9, ret+72(FP)

	// --- bi' = bi + lr*(e - reg*bi) ---
	MOVSS  bi+60(FP), X7
	MOVAPS X5, X8
	MULSS  X7, X8
	MOVAPS X3, X9
	SUBSS  X8, X9
	MULSS  X4, X9
	ADDSS  X7, X9
	MOVSS  X9, ret1+76(FP)

	RET

// func sgd10AVX2(x, y []float32, rating, mean, bu, bi, lr, reg float32) (float32, float32)
//
// AVX2-tier K=10 fused step, deliberately VEX-128: the serial scalar
// VADDSS dot chain (reduction contract) bounds this kernel's latency, so
// 256-bit lanes cannot pay at K=10 — measured on AVX2 hardware, a ymm
// variant loses ~3ns/call to the mandatory VZEROUPPER and ymm broadcast
// overhead while the three-operand VEX xmm forms tie SSE2's best. Lanes
// 0..3 and 4..7 update as xmm blocks, lanes 8..9 in the low half of an
// xmm (VMOVSD 8-byte load/store; the junk upper lanes are computed but
// never stored). No ymm register is touched, so no VZEROUPPER is needed.
TEXT ·sgd10AVX2(SB), NOSPLIT, $0-80
	MOVQ x_base+0(FP), SI
	MOVQ y_base+24(FP), DI

	// --- dot = Σ x[i]*y[i], serial chain from +0 ---
	VXORPS X0, X0, X0
	VMOVSS 0(SI), X1
	VMULSS 0(DI), X1, X1
	VADDSS X1, X0, X0
	VMOVSS 4(SI), X1
	VMULSS 4(DI), X1, X1
	VADDSS X1, X0, X0
	VMOVSS 8(SI), X1
	VMULSS 8(DI), X1, X1
	VADDSS X1, X0, X0
	VMOVSS 12(SI), X1
	VMULSS 12(DI), X1, X1
	VADDSS X1, X0, X0
	VMOVSS 16(SI), X1
	VMULSS 16(DI), X1, X1
	VADDSS X1, X0, X0
	VMOVSS 20(SI), X1
	VMULSS 20(DI), X1, X1
	VADDSS X1, X0, X0
	VMOVSS 24(SI), X1
	VMULSS 24(DI), X1, X1
	VADDSS X1, X0, X0
	VMOVSS 28(SI), X1
	VMULSS 28(DI), X1, X1
	VADDSS X1, X0, X0
	VMOVSS 32(SI), X1
	VMULSS 32(DI), X1, X1
	VADDSS X1, X0, X0
	VMOVSS 36(SI), X1
	VMULSS 36(DI), X1, X1
	VADDSS X1, X0, X0

	// --- e = rating - (((mean + bu) + bi) + dot) ---
	VMOVSS mean+52(FP), X2
	VADDSS bu+56(FP), X2, X2
	VADDSS bi+60(FP), X2, X2
	VADDSS X0, X2, X2
	VMOVSS rating+48(FP), X3
	VSUBSS X2, X3, X3             // X3 = e

	// --- broadcasts: X6 = e, X4 = lr, X5 = reg ---
	VBROADCASTSS lr+64(FP), X4
	VBROADCASTSS reg+68(FP), X5
	VBROADCASTSS X3, X6

	// --- lanes 0..3 ---
	VMOVUPS (SI), X8              // x old
	VMOVUPS (DI), X9              // y old
	VMULPS  X9, X6, X10           // e*y
	VMULPS  X8, X5, X11           // reg*x
	VSUBPS  X11, X10, X10         // e*y - reg*x
	VMULPS  X10, X4, X10          // lr*(...)
	VADDPS  X10, X8, X10          // x' = x + ...
	VMULPS  X8, X6, X12           // e*x_old
	VMULPS  X9, X5, X13           // reg*y
	VSUBPS  X13, X12, X12
	VMULPS  X12, X4, X12
	VADDPS  X12, X9, X12          // y' = y + ...
	VMOVUPS X10, (SI)
	VMOVUPS X12, (DI)

	// --- lanes 4..7 ---
	VMOVUPS 16(SI), X8
	VMOVUPS 16(DI), X9
	VMULPS  X9, X6, X10
	VMULPS  X8, X5, X11
	VSUBPS  X11, X10, X10
	VMULPS  X10, X4, X10
	VADDPS  X10, X8, X10
	VMULPS  X8, X6, X12
	VMULPS  X9, X5, X13
	VSUBPS  X13, X12, X12
	VMULPS  X12, X4, X12
	VADDPS  X12, X9, X12
	VMOVUPS X10, 16(SI)
	VMOVUPS X12, 16(DI)

	// --- lanes 8..9 ---
	VMOVSD 32(SI), X8
	VMOVSD 32(DI), X9
	VMULPS X9, X6, X10
	VMULPS X8, X5, X11
	VSUBPS X11, X10, X10
	VMULPS X10, X4, X10
	VADDPS X10, X8, X10
	VMULPS X8, X6, X12
	VMULPS X9, X5, X13
	VSUBPS X13, X12, X12
	VMULPS X12, X4, X12
	VADDPS X12, X9, X12
	VMOVSD X10, 32(SI)
	VMOVSD X12, 32(DI)

	// --- bu' = bu + lr*(e - reg*bu) ---
	VMOVSS bu+56(FP), X7
	VMULSS X7, X5, X8             // reg*bu
	VSUBSS X8, X3, X9             // e - reg*bu
	VMULSS X9, X4, X9             // lr*(...)
	VADDSS X9, X7, X9             // bu + ...
	VMOVSS X9, ret+72(FP)

	// --- bi' = bi + lr*(e - reg*bi) ---
	VMOVSS bi+60(FP), X7
	VMULSS X7, X5, X8
	VSUBSS X8, X3, X9
	VMULSS X9, X4, X9
	VADDSS X9, X7, X9
	VMOVSS X9, ret1+76(FP)

	RET

// func adamAVX2(w, g, m, v []float32, lr float64, b1, onemb1, b2, onemb2 float32, bc1, bc2, eps float64)
//
// AVX2 fused Adam step, weight decay already applied by the wrapper;
// len(w) is a positive multiple of 4. Per 4-element block:
//
//	m' = b1*m + (1-b1)*g                      (float32 lanes, xmm)
//	v' = b2*v + ((1-b2)*g)*g                  (float32 lanes, xmm)
//	step = lr*(f64(m')/bc1) / (sqrt(f64(v')/bc2) + eps)   (float64, ymm)
//	w' = w - f32(step)
//
// Widening converts are exact, and VDIVPD/VSQRTPD/VCVTPD2PS are IEEE
// correctly rounded, so every lane reproduces the scalar loop bit for bit.
TEXT ·adamAVX2(SB), NOSPLIT, $0-144
	MOVQ w_base+0(FP), DI
	MOVQ g_base+24(FP), SI
	MOVQ m_base+48(FP), R8
	MOVQ v_base+72(FP), R9
	MOVQ w_len+8(FP), CX
	SHRQ $2, CX

	VBROADCASTSS b1+104(FP), X1
	VBROADCASTSS onemb1+108(FP), X2
	VBROADCASTSS b2+112(FP), X3
	VBROADCASTSS onemb2+116(FP), X4
	VBROADCASTSD lr+96(FP), Y5
	VBROADCASTSD bc1+120(FP), Y6
	VBROADCASTSD bc2+128(FP), Y7
	VBROADCASTSD eps+136(FP), Y8

adamavx2_loop:
	VMOVUPS (SI), X9              // g
	VMOVUPS (R8), X10             // m
	VMOVUPS (R9), X11             // v

	VMULPS X10, X1, X10           // b1*m
	VMULPS X9, X2, X12            // (1-b1)*g
	VADDPS X12, X10, X10          // m' = b1*m + (1-b1)*g

	VMULPS X11, X3, X11           // b2*v
	VMULPS X9, X4, X13            // (1-b2)*g
	VMULPS X9, X13, X13           // ((1-b2)*g)*g  — left-assoc like Go
	VADDPS X13, X11, X11          // v'

	VMOVUPS X10, (R8)
	VMOVUPS X11, (R9)

	VCVTPS2PD X10, Y12            // f64(m'), exact
	VCVTPS2PD X11, Y13            // f64(v'), exact
	VDIVPD    Y6, Y12, Y12        // mhat = f64(m')/bc1
	VDIVPD    Y7, Y13, Y13        // vhat = f64(v')/bc2
	VSQRTPD   Y13, Y13            // sqrt(vhat)
	VADDPD    Y8, Y13, Y13        // sqrt(vhat) + eps
	VMULPD    Y12, Y5, Y12        // lr*mhat
	VDIVPD    Y13, Y12, Y12       // step (float64)
	VCVTPD2PSY Y12, X12           // f32(step), correctly rounded

	VMOVUPS (DI), X14
	VSUBPS  X12, X14, X14         // w' = w - f32(step)
	VMOVUPS X14, (DI)

	ADDQ $16, SI
	ADDQ $16, DI
	ADDQ $16, R8
	ADDQ $16, R9
	DECQ CX
	JNZ  adamavx2_loop

	VZEROUPPER
	RET
