package vec

import (
	"math"
	"math/rand"
	"testing"
)

// TestFusedSGDStep10AsmBitIdentical pins the assembly fast path to the
// pure-Go kernel bit for bit: same embedding updates, same bias returns,
// across a wide range of magnitudes (including values driving subnormal
// products). On non-amd64 builds the "asm" function is the Go kernel and
// the test is trivially green.
func TestFusedSGDStep10AsmBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 2000; trial++ {
		scale := math.Pow(10, float64(rng.Intn(9)-4))
		mk := func() []float32 {
			s := make([]float32, 10)
			for i := range s {
				s[i] = float32(rng.NormFloat64() * scale)
			}
			return s
		}
		x1, y1 := mk(), mk()
		x2 := append([]float32(nil), x1...)
		y2 := append([]float32(nil), y1...)
		rating := float32(rng.NormFloat64() * 3)
		mean, bu, bi := float32(3.5), float32(rng.NormFloat64()), float32(rng.NormFloat64())
		lr, reg := float32(0.005), float32(0.1)
		gbu, gbi := fusedSGDStep10(x1, y1, rating, mean, bu, bi, lr, reg)
		abu, abi := fusedSGDStep10Asm(x2, y2, rating, mean, bu, bi, lr, reg)
		if math.Float32bits(gbu) != math.Float32bits(abu) || math.Float32bits(gbi) != math.Float32bits(abi) {
			t.Fatalf("trial %d: bias mismatch: go (%v,%v) asm (%v,%v)", trial, gbu, gbi, abu, abi)
		}
		requireBitsEq(t, "sgd10.x", 10, x2, x1)
		requireBitsEq(t, "sgd10.y", 10, y2, y1)
	}
}

// TestFusedSGDStepMatchesComposition pins FusedSGDStep (all K) against the
// unfused Dot + scalar-bias + SGDStep composition it replaces.
func TestFusedSGDStepMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 2, 3, 5, 10, 16, 33, 50} {
		x1, y1 := randSlice(rng, n), randSlice(rng, n)
		x2 := append([]float32(nil), x1...)
		y2 := append([]float32(nil), y1...)
		rating := float32(rng.NormFloat64() * 3)
		mean, bu, bi := float32(3.5), float32(rng.NormFloat64()), float32(rng.NormFloat64())
		lr, reg := float32(0.005), float32(0.1)

		pred := mean + bu + bi + Dot(x1, y1)
		e := rating - pred
		wbu := bu + lr*(e-reg*bu)
		wbi := bi + lr*(e-reg*bi)
		SGDStep(x1, y1, e, lr, reg)

		gbu, gbi := FusedSGDStep(x2, y2, rating, mean, bu, bi, lr, reg)
		if math.Float32bits(gbu) != math.Float32bits(wbu) || math.Float32bits(gbi) != math.Float32bits(wbi) {
			t.Fatalf("n=%d: bias mismatch: fused (%v,%v) composed (%v,%v)", n, gbu, gbi, wbu, wbi)
		}
		requireBitsEq(t, "fused.x", n, x2, x1)
		requireBitsEq(t, "fused.y", n, y2, y1)
	}
}

func BenchmarkFusedSGDStep10(b *testing.B) {
	x, y := benchSlices(10)
	for i := 0; i < b.N; i++ {
		FusedSGDStep(x, y, 4, 3.5, 0.1, 0.1, 0.005, 0.1)
	}
}
