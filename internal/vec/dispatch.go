package vec

import (
	"fmt"
	"os"
)

// impl is one complete kernel set for the dispatched element-wise entry
// points. Every slot carries full semantics — any length, including the
// remainder elements past the last full vector block (implementations
// handle tails in Go, so the assembly only ever sees whole blocks).
// Reductions (Dot, SumSq) are deliberately absent: the bit-identity
// contract keeps their serial accumulator chain scalar on every arch.
type impl struct {
	name  string
	add   func(dst, src []float32)
	axpy  func(alpha float32, x, y []float32)
	scale func(alpha float32, x []float32)
	zero  func(x []float32)
	sgd10 func(x, y []float32, rating, mean, bu, bi, lr, reg float32) (float32, float32)
	adam  func(w, g, m, v []float32, lr, wd float64, b1, b2 float32, bc1, bc2, eps float64)
}

// goImpl is the portable reference implementation — the loops every other
// implementation must reproduce float-op for float-op.
var goImpl = impl{
	name:  "go",
	add:   addGo,
	axpy:  axpyGo,
	scale: scaleGo,
	zero:  zeroGo,
	sgd10: fusedSGDStep10,
	adam:  adamStepGo,
}

// available lists the kernel sets usable on this machine, best first and
// "go" always last. Populated at init from archImpls (per-GOARCH, after
// CPU-feature detection).
var available []impl

// active is the kernel set the exported entry points dispatch to. It is
// written once at init (plus by Use, a test/bench knob) and read on every
// kernel call; concurrent Use during kernel calls is not supported.
var active impl

func init() {
	available = append(archImpls(), goImpl)
	active = available[0]
	// REX_VEC forces a dispatch path: auto (default) picks the best
	// available, any implementation name pins that path for the process.
	// Forcing a path the hardware lacks is a configuration error — fall
	// back to auto loudly rather than crash or silently mislabel results.
	if v := os.Getenv("REX_VEC"); v != "" && v != "auto" {
		if err := Use(v); err != nil {
			fmt.Fprintf(os.Stderr, "vec: ignoring REX_VEC=%q: %v (using %q)\n", v, err, active.name)
		}
	}
}

// Impl reports the name of the kernel implementation currently dispatched
// to: "avx2", "sse2", "neon" or "go".
func Impl() string { return active.name }

// Available lists the implementations usable on this machine, best first;
// "go" is always present and always last.
func Available() []string {
	names := make([]string, len(available))
	for i := range available {
		names[i] = available[i].name
	}
	return names
}

// Use forces dispatch onto the named implementation for the whole process.
// It exists for tests and benchmarks (the REX_VEC env knob calls it); it
// must not race kernel calls from other goroutines.
func Use(name string) error {
	for _, im := range available {
		if im.name == name {
			active = im
			return nil
		}
	}
	return fmt.Errorf("vec: implementation %q not available on this machine (have %v)", name, Available())
}
