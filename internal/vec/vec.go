// Package vec is the shared float32 kernel layer under every model family:
// the SGD inner loops of the MF recommender, the matrix and optimizer
// arithmetic of the DNN, and the weighted-average merges of the REX
// protocol all bottom out in these routines. Element-wise kernels dispatch
// at init to the widest vector unit the CPU offers (AVX2 or SSE2 on amd64,
// NEON on arm64, portable Go elsewhere); the REX_VEC env knob
// (auto|avx2|sse2|neon|go) pins any path for tests and benchmarks — see
// dispatch.go and the README "Kernel dispatch" section.
//
// Bit-identity contract: every kernel performs exactly the floating-point
// operations of its naive reference loop. Reductions (Dot, SumSq) use a
// single sequentially-updated accumulator and therefore stay scalar on
// every architecture — vectorizing a reduction reassociates the sum.
// Element-wise kernels touch each index independently, so SIMD lanes
// compute the identical IEEE-754 single operations the scalar loop would
// (no FMA contraction, default rounding) and swapping implementations
// never changes results by a single bit. Optimizations that reorder float
// arithmetic (multiple accumulators, FMA) must not be introduced here
// without owning a results change across the repo's golden and
// determinism suites.
//
// The float32(...) conversions wrapping every product that feeds an
// addition are load-bearing, not noise: the Go spec allows the compiler
// to contract a*b+c into a fused multiply-add (and gc does exactly that
// on arm64, emitting FMADDS), which skips the intermediate rounding and
// would make the "portable reference" compute different bits on arm64
// than on amd64 — silently breaking the cross-architecture golden
// trajectories. An explicit conversion is the spec-defined rounding
// barrier that forbids contraction. Do not "simplify" them away; the
// arm64 CI job's golden and property tests fail if one goes missing.
//
// Length contract: the first slice argument defines the operation length;
// remaining slices must be at least that long (enforced by slice bounds)
// and any excess is ignored.
package vec

import "math"

// Dot returns the inner product Σ a[i]*b[i], accumulated left to right.
// Serial by contract (reduction); identical on every dispatch path.
func Dot(a, b []float32) float32 {
	n := len(a)
	b = b[:n]
	var s float32
	i := 0
	for ; i <= n-4; i += 4 {
		s += float32(a[i] * b[i])
		s += float32(a[i+1] * b[i+1])
		s += float32(a[i+2] * b[i+2])
		s += float32(a[i+3] * b[i+3])
	}
	for ; i < n; i++ {
		s += float32(a[i] * b[i])
	}
	return s
}

// SumSq returns Σ x[i]², accumulated left to right. Serial by contract.
func SumSq(x []float32) float32 {
	var s float32
	i := 0
	for ; i <= len(x)-4; i += 4 {
		s += float32(x[i] * x[i])
		s += float32(x[i+1] * x[i+1])
		s += float32(x[i+2] * x[i+2])
		s += float32(x[i+3] * x[i+3])
	}
	for ; i < len(x); i++ {
		s += float32(x[i] * x[i])
	}
	return s
}

// Scale multiplies x by alpha in place.
func Scale(alpha float32, x []float32) { active.scale(alpha, x) }

func scaleGo(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Zero clears x.
func Zero(x []float32) { active.zero(x) }

// zeroGo compiles to memclr via range-over-clear.
func zeroGo(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Add accumulates src into dst: dst[i] += src[i].
func Add(dst, src []float32) { active.add(dst, src) }

func addGo(dst, src []float32) {
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i <= n-4; i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// AddScaled accumulates a scaled source into dst: dst[i] += alpha*src[i].
// This is the weighted-merge kernel (§III-C2 averaging walks rows with it).
func AddScaled(dst, src []float32, alpha float32) { active.axpy(alpha, src, dst) }

// Axpy is the BLAS spelling of AddScaled: y[i] += alpha*x[i]. The matrix
// kernels call it by this name; the merge path calls AddScaled. Both names
// denote the same operation (and the same dispatched kernel).
func Axpy(alpha float32, x, y []float32) { active.axpy(alpha, x, y) }

// axpyGo: y[i] += alpha*x[i] for i < len(y).
func axpyGo(alpha float32, x, y []float32) {
	n := len(y)
	x = x[:n]
	i := 0
	for ; i <= n-4; i += 4 {
		y[i] += float32(alpha * x[i])
		y[i+1] += float32(alpha * x[i+1])
		y[i+2] += float32(alpha * x[i+2])
		y[i+3] += float32(alpha * x[i+3])
	}
	for ; i < n; i++ {
		y[i] += float32(alpha * x[i])
	}
}

// SGDStep applies one fused biased-MF SGD update to an embedding pair:
// for each dimension d, with e the prediction error, lr the learning rate
// and reg the L2 coefficient,
//
//	x[d] += lr*(e*y_old[d] - reg*x_old[d])
//	y[d] += lr*(e*x_old[d] - reg*y_old[d])
//
// where the y update deliberately reads the pre-update x (both gradients
// are taken at the same point), matching the paper's §II-A-b loss exactly.
func SGDStep(x, y []float32, e, lr, reg float32) {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i <= n-2; i += 2 {
		x0, y0 := x[i], y[i]
		x1, y1 := x[i+1], y[i+1]
		x[i] += float32(lr * (float32(e*y0) - float32(reg*x0)))
		y[i] += float32(lr * (float32(e*x0) - float32(reg*y0)))
		x[i+1] += float32(lr * (float32(e*y1) - float32(reg*x1)))
		y[i+1] += float32(lr * (float32(e*x1) - float32(reg*y1)))
	}
	for ; i < n; i++ {
		xd, yd := x[i], y[i]
		x[i] += float32(lr * (float32(e*yd) - float32(reg*xd)))
		y[i] += float32(lr * (float32(e*xd) - float32(reg*yd)))
	}
}

// FusedSGDStep runs one complete biased-MF SGD step on an embedding pair
// in a single call: the prediction dot product, the error against the
// observed rating (with the global-mean prior and both bias terms), and
// the SGDStep update, returning the new user and item biases. It performs
// exactly the arithmetic of Dot + the scalar bias updates + SGDStep, in
// the same order — fusing only removes call and reload overhead from the
// innermost training loop, not a single float operation.
func FusedSGDStep(x, y []float32, rating, mean, bu, bi, lr, reg float32) (float32, float32) {
	if len(x) == 10 {
		// The paper's MF rank (§IV-A3a): a fully-unrolled straight-line
		// body, dispatched to the widest assembly the CPU offers. Every
		// implementation keeps the dot reduction a serial scalar chain and
		// the update element-wise: identical float ops in identical order.
		return active.sgd10(x, y[:10], rating, mean, bu, bi, lr, reg)
	}
	n := len(x)
	y = y[:n]
	var dot float32
	i := 0
	for ; i <= n-4; i += 4 {
		dot += float32(x[i] * y[i])
		dot += float32(x[i+1] * y[i+1])
		dot += float32(x[i+2] * y[i+2])
		dot += float32(x[i+3] * y[i+3])
	}
	for ; i < n; i++ {
		dot += float32(x[i] * y[i])
	}
	e := rating - (mean + bu + bi + dot)
	for i = 0; i <= n-2; i += 2 {
		x0, y0 := x[i], y[i]
		x1, y1 := x[i+1], y[i+1]
		x[i] += float32(lr * (float32(e*y0) - float32(reg*x0)))
		y[i] += float32(lr * (float32(e*x0) - float32(reg*y0)))
		x[i+1] += float32(lr * (float32(e*y1) - float32(reg*x1)))
		y[i+1] += float32(lr * (float32(e*x1) - float32(reg*y1)))
	}
	for ; i < n; i++ {
		xd, yd := x[i], y[i]
		x[i] += float32(lr * (float32(e*yd) - float32(reg*xd)))
		y[i] += float32(lr * (float32(e*xd) - float32(reg*yd)))
	}
	return bu + float32(lr*(e-float32(reg*bu))), bi + float32(lr*(e-float32(reg*bi)))
}

func fusedSGDStep10(x, y []float32, rating, mean, bu, bi, lr, reg float32) (float32, float32) {
	_, _ = x[9], y[9]
	// dot starts from +0 and accumulates, like the generic loop: folding
	// the first term into the initializer would flip the sign of a -0 sum.
	var dot float32
	dot += float32(x[0] * y[0])
	dot += float32(x[1] * y[1])
	dot += float32(x[2] * y[2])
	dot += float32(x[3] * y[3])
	dot += float32(x[4] * y[4])
	dot += float32(x[5] * y[5])
	dot += float32(x[6] * y[6])
	dot += float32(x[7] * y[7])
	dot += float32(x[8] * y[8])
	dot += float32(x[9] * y[9])
	e := rating - (mean + bu + bi + dot)
	x0, y0 := x[0], y[0]
	x[0] += float32(lr * (float32(e*y0) - float32(reg*x0)))
	y[0] += float32(lr * (float32(e*x0) - float32(reg*y0)))
	x1, y1 := x[1], y[1]
	x[1] += float32(lr * (float32(e*y1) - float32(reg*x1)))
	y[1] += float32(lr * (float32(e*x1) - float32(reg*y1)))
	x2, y2 := x[2], y[2]
	x[2] += float32(lr * (float32(e*y2) - float32(reg*x2)))
	y[2] += float32(lr * (float32(e*x2) - float32(reg*y2)))
	x3, y3 := x[3], y[3]
	x[3] += float32(lr * (float32(e*y3) - float32(reg*x3)))
	y[3] += float32(lr * (float32(e*x3) - float32(reg*y3)))
	x4, y4 := x[4], y[4]
	x[4] += float32(lr * (float32(e*y4) - float32(reg*x4)))
	y[4] += float32(lr * (float32(e*x4) - float32(reg*y4)))
	x5, y5 := x[5], y[5]
	x[5] += float32(lr * (float32(e*y5) - float32(reg*x5)))
	y[5] += float32(lr * (float32(e*x5) - float32(reg*y5)))
	x6, y6 := x[6], y[6]
	x[6] += float32(lr * (float32(e*y6) - float32(reg*x6)))
	y[6] += float32(lr * (float32(e*x6) - float32(reg*y6)))
	x7, y7 := x[7], y[7]
	x[7] += float32(lr * (float32(e*y7) - float32(reg*x7)))
	y[7] += float32(lr * (float32(e*x7) - float32(reg*y7)))
	x8, y8 := x[8], y[8]
	x[8] += float32(lr * (float32(e*y8) - float32(reg*x8)))
	y[8] += float32(lr * (float32(e*x8) - float32(reg*y8)))
	x9, y9 := x[9], y[9]
	x[9] += float32(lr * (float32(e*y9) - float32(reg*x9)))
	y[9] += float32(lr * (float32(e*x9) - float32(reg*y9)))
	return bu + float32(lr*(e-float32(reg*bu))), bi + float32(lr*(e-float32(reg*bi)))
}

// AdamStep applies one fused Adam update with decoupled (AdamW-style)
// weight decay to a parameter tensor: m and v are the first/second moment
// buffers, bc1/bc2 the bias-correction denominators 1-β1ᵗ and 1-β2ᵗ.
// Arithmetic mixes float32 state with float64 step math exactly as the
// reference optimizer loop did, so trajectories are bit-identical. All
// operations are element-wise and IEEE correctly rounded (÷, √ included),
// which is what lets the AVX2/NEON paths vectorize it without breaking
// the contract.
func AdamStep(w, g, m, v []float32, lr, wd float64, b1, b2 float32, bc1, bc2, eps float64) {
	active.adam(w, g, m, v, lr, wd, b1, b2, bc1, bc2, eps)
}

func adamStepGo(w, g, m, v []float32, lr, wd float64, b1, b2 float32, bc1, bc2, eps float64) {
	n := len(w)
	g, m, v = g[:n], m[:n], v[:n]
	for i := 0; i < n; i++ {
		gi := g[i]
		if wd != 0 {
			w[i] -= float32(lr * wd * float64(w[i]))
		}
		m[i] = float32(b1*m[i]) + float32((1-b1)*gi)
		v[i] = float32(b2*v[i]) + float32((1-b2)*gi*gi)
		mhat := float64(m[i]) / bc1
		vhat := float64(v[i]) / bc2
		w[i] -= float32(lr * mhat / (math.Sqrt(vhat) + eps))
	}
}

// adamTail finishes AdamStep elements [from:] with the scalar loop, after
// an assembly kernel consumed the whole vector blocks. Weight decay has
// already been applied by the caller (the two-pass split is element-wise,
// so per-element results are bit-identical to the fused reference loop).
func adamTail(w, g, m, v []float32, from int, lr float64, b1, b2 float32, bc1, bc2, eps float64) {
	for i := from; i < len(w); i++ {
		gi := g[i]
		m[i] = float32(b1*m[i]) + float32((1-b1)*gi)
		v[i] = float32(b2*v[i]) + float32((1-b2)*gi*gi)
		mhat := float64(m[i]) / bc1
		vhat := float64(v[i]) / bc2
		w[i] -= float32(lr * mhat / (math.Sqrt(vhat) + eps))
	}
}

// adamDecay applies the decoupled weight-decay pass w[i] -= f32(lr*wd*w[i])
// ahead of an assembly Adam kernel. In the reference loop the decay and the
// step interleave per element, but every element is independent, so running
// the decay as its own pass leaves each w[i] bit-identical.
func adamDecay(w []float32, lrwd float64) {
	for i := range w {
		w[i] -= float32(lrwd * float64(w[i]))
	}
}
