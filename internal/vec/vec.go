// Package vec is the shared float32 kernel layer under every model family:
// the SGD inner loops of the MF recommender, the matrix and optimizer
// arithmetic of the DNN, and the weighted-average merges of the REX
// protocol all bottom out in these routines. Implementations are
// loop-unrolled scalar Go — one place for future SIMD or assembly to land
// for every learner at once.
//
// Bit-identity contract: every kernel performs exactly the floating-point
// operations of its naive reference loop, in the same order. Reductions
// (Dot, SumSq) use a single sequentially-updated accumulator, and
// element-wise kernels touch each index independently, so swapping a naive
// loop for the kernel never changes results by a single bit. Optimizations
// that reorder float arithmetic (multiple accumulators, FMA) must not be
// introduced here without owning a results change across the repo's golden
// and determinism suites.
//
// Length contract: the first slice argument defines the operation length;
// remaining slices must be at least that long (enforced by slice bounds)
// and any excess is ignored.
package vec

import "math"

// Dot returns the inner product Σ a[i]*b[i], accumulated left to right.
func Dot(a, b []float32) float32 {
	n := len(a)
	b = b[:n]
	var s float32
	i := 0
	for ; i <= n-4; i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// SumSq returns Σ x[i]², accumulated left to right.
func SumSq(x []float32) float32 {
	var s float32
	i := 0
	for ; i <= len(x)-4; i += 4 {
		s += x[i] * x[i]
		s += x[i+1] * x[i+1]
		s += x[i+2] * x[i+2]
		s += x[i+3] * x[i+3]
	}
	for ; i < len(x); i++ {
		s += x[i] * x[i]
	}
	return s
}

// Scale multiplies x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Zero clears x. (range-over-clear compiles to memclr.)
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Add accumulates src into dst: dst[i] += src[i].
func Add(dst, src []float32) {
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i <= n-4; i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// AddScaled accumulates a scaled source into dst: dst[i] += alpha*src[i].
// This is the weighted-merge kernel (§III-C2 averaging walks rows with it).
func AddScaled(dst, src []float32, alpha float32) {
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i <= n-4; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// Axpy is the BLAS spelling of AddScaled: y[i] += alpha*x[i]. The matrix
// kernels call it by this name; the merge path calls AddScaled. Both names
// denote the same operation.
func Axpy(alpha float32, x, y []float32) { AddScaled(y, x, alpha) }

// SGDStep applies one fused biased-MF SGD update to an embedding pair:
// for each dimension d, with e the prediction error, lr the learning rate
// and reg the L2 coefficient,
//
//	x[d] += lr*(e*y_old[d] - reg*x_old[d])
//	y[d] += lr*(e*x_old[d] - reg*y_old[d])
//
// where the y update deliberately reads the pre-update x (both gradients
// are taken at the same point), matching the paper's §II-A-b loss exactly.
func SGDStep(x, y []float32, e, lr, reg float32) {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i <= n-2; i += 2 {
		x0, y0 := x[i], y[i]
		x1, y1 := x[i+1], y[i+1]
		x[i] += lr * (e*y0 - reg*x0)
		y[i] += lr * (e*x0 - reg*y0)
		x[i+1] += lr * (e*y1 - reg*x1)
		y[i+1] += lr * (e*x1 - reg*y1)
	}
	for ; i < n; i++ {
		xd, yd := x[i], y[i]
		x[i] += lr * (e*yd - reg*xd)
		y[i] += lr * (e*xd - reg*yd)
	}
}

// FusedSGDStep runs one complete biased-MF SGD step on an embedding pair
// in a single call: the prediction dot product, the error against the
// observed rating (with the global-mean prior and both bias terms), and
// the SGDStep update, returning the new user and item biases. It performs
// exactly the arithmetic of Dot + the scalar bias updates + SGDStep, in
// the same order — fusing only removes call and reload overhead from the
// innermost training loop, not a single float operation.
func FusedSGDStep(x, y []float32, rating, mean, bu, bi, lr, reg float32) (float32, float32) {
	if len(x) == 10 {
		// The paper's MF rank (§IV-A3a): a fully-unrolled straight-line
		// body, in SSE2 assembly on amd64 — identical float ops in
		// identical order either way (see sgd10_amd64.s).
		if asmSGD10 {
			return fusedSGDStep10Asm(x, y[:10], rating, mean, bu, bi, lr, reg)
		}
		return fusedSGDStep10(x[:10], y[:10], rating, mean, bu, bi, lr, reg)
	}
	n := len(x)
	y = y[:n]
	var dot float32
	i := 0
	for ; i <= n-4; i += 4 {
		dot += x[i] * y[i]
		dot += x[i+1] * y[i+1]
		dot += x[i+2] * y[i+2]
		dot += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		dot += x[i] * y[i]
	}
	e := rating - (mean + bu + bi + dot)
	for i = 0; i <= n-2; i += 2 {
		x0, y0 := x[i], y[i]
		x1, y1 := x[i+1], y[i+1]
		x[i] += lr * (e*y0 - reg*x0)
		y[i] += lr * (e*x0 - reg*y0)
		x[i+1] += lr * (e*y1 - reg*x1)
		y[i+1] += lr * (e*x1 - reg*y1)
	}
	for ; i < n; i++ {
		xd, yd := x[i], y[i]
		x[i] += lr * (e*yd - reg*xd)
		y[i] += lr * (e*xd - reg*yd)
	}
	return bu + lr*(e-reg*bu), bi + lr*(e-reg*bi)
}

func fusedSGDStep10(x, y []float32, rating, mean, bu, bi, lr, reg float32) (float32, float32) {
	_, _ = x[9], y[9]
	// dot starts from +0 and accumulates, like the generic loop: folding
	// the first term into the initializer would flip the sign of a -0 sum.
	var dot float32
	dot += x[0] * y[0]
	dot += x[1] * y[1]
	dot += x[2] * y[2]
	dot += x[3] * y[3]
	dot += x[4] * y[4]
	dot += x[5] * y[5]
	dot += x[6] * y[6]
	dot += x[7] * y[7]
	dot += x[8] * y[8]
	dot += x[9] * y[9]
	e := rating - (mean + bu + bi + dot)
	x0, y0 := x[0], y[0]
	x[0] += lr * (e*y0 - reg*x0)
	y[0] += lr * (e*x0 - reg*y0)
	x1, y1 := x[1], y[1]
	x[1] += lr * (e*y1 - reg*x1)
	y[1] += lr * (e*x1 - reg*y1)
	x2, y2 := x[2], y[2]
	x[2] += lr * (e*y2 - reg*x2)
	y[2] += lr * (e*x2 - reg*y2)
	x3, y3 := x[3], y[3]
	x[3] += lr * (e*y3 - reg*x3)
	y[3] += lr * (e*x3 - reg*y3)
	x4, y4 := x[4], y[4]
	x[4] += lr * (e*y4 - reg*x4)
	y[4] += lr * (e*x4 - reg*y4)
	x5, y5 := x[5], y[5]
	x[5] += lr * (e*y5 - reg*x5)
	y[5] += lr * (e*x5 - reg*y5)
	x6, y6 := x[6], y[6]
	x[6] += lr * (e*y6 - reg*x6)
	y[6] += lr * (e*x6 - reg*y6)
	x7, y7 := x[7], y[7]
	x[7] += lr * (e*y7 - reg*x7)
	y[7] += lr * (e*x7 - reg*y7)
	x8, y8 := x[8], y[8]
	x[8] += lr * (e*y8 - reg*x8)
	y[8] += lr * (e*x8 - reg*y8)
	x9, y9 := x[9], y[9]
	x[9] += lr * (e*y9 - reg*x9)
	y[9] += lr * (e*x9 - reg*y9)
	return bu + lr*(e-reg*bu), bi + lr*(e-reg*bi)
}

// AdamStep applies one fused Adam update with decoupled (AdamW-style)
// weight decay to a parameter tensor: m and v are the first/second moment
// buffers, bc1/bc2 the bias-correction denominators 1-β1ᵗ and 1-β2ᵗ.
// Arithmetic mixes float32 state with float64 step math exactly as the
// reference optimizer loop did, so trajectories are bit-identical.
func AdamStep(w, g, m, v []float32, lr, wd float64, b1, b2 float32, bc1, bc2, eps float64) {
	n := len(w)
	g, m, v = g[:n], m[:n], v[:n]
	for i := 0; i < n; i++ {
		gi := g[i]
		if wd != 0 {
			w[i] -= float32(lr * wd * float64(w[i]))
		}
		m[i] = b1*m[i] + (1-b1)*gi
		v[i] = b2*v[i] + (1-b2)*gi*gi
		mhat := float64(m[i]) / bc1
		vhat := float64(v[i]) / bc2
		w[i] -= float32(lr * mhat / (math.Sqrt(vhat) + eps))
	}
}
