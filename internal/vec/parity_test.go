package vec

import (
	"math"
	"math/rand"
	"testing"
)

// Randomized asm-vs-Go parity: for every non-"go" implementation, every
// dispatched kernel runs 2000 trials against the portable reference with
// random lengths (0..70), random slice offsets and magnitudes spanning
// 1e-4..1e4 (driving subnormal products and large cancellations), and the
// results must match bit for bit. This is the wide-net complement to the
// exhaustive-small-length property tests in vec_test.go.

const parityTrials = 2000

func forEachAsmImpl(t *testing.T, fn func(t *testing.T, im impl)) {
	for _, im := range available {
		if im.name == goImpl.name {
			continue
		}
		im := im
		t.Run(im.name, func(t *testing.T) { fn(t, im) })
	}
}

func scaledSlice(rng *rand.Rand, n int, scale float64) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64() * scale)
	}
	return s
}

func offsetCopy(rng *rand.Rand, src []float32) []float32 {
	off := rng.Intn(6)
	buf := make([]float32, off+len(src))
	out := buf[off:]
	copy(out, src)
	return out
}

func TestFusedSGDStep10Parity(t *testing.T) {
	forEachAsmImpl(t, func(t *testing.T, im impl) {
		rng := rand.New(rand.NewSource(8))
		for trial := 0; trial < parityTrials; trial++ {
			scale := math.Pow(10, float64(rng.Intn(9)-4))
			x1 := scaledSlice(rng, 10, scale)
			y1 := scaledSlice(rng, 10, scale)
			x2 := offsetCopy(rng, x1)
			y2 := offsetCopy(rng, y1)
			rating := float32(rng.NormFloat64() * 3)
			mean, bu, bi := float32(3.5), float32(rng.NormFloat64()), float32(rng.NormFloat64())
			lr, reg := float32(0.005), float32(0.1)
			gbu, gbi := goImpl.sgd10(x1, y1, rating, mean, bu, bi, lr, reg)
			abu, abi := im.sgd10(x2, y2, rating, mean, bu, bi, lr, reg)
			if math.Float32bits(gbu) != math.Float32bits(abu) || math.Float32bits(gbi) != math.Float32bits(abi) {
				t.Fatalf("trial %d: bias mismatch: go (%v,%v) %s (%v,%v)", trial, gbu, gbi, im.name, abu, abi)
			}
			requireBitsEq(t, "sgd10.x", 10, x2, x1)
			requireBitsEq(t, "sgd10.y", 10, y2, y1)
		}
	})
}

func TestAddParity(t *testing.T) {
	forEachAsmImpl(t, func(t *testing.T, im impl) {
		rng := rand.New(rand.NewSource(16))
		for trial := 0; trial < parityTrials; trial++ {
			n := rng.Intn(71)
			scale := math.Pow(10, float64(rng.Intn(9)-4))
			src := scaledSlice(rng, n, scale)
			d1 := scaledSlice(rng, n, scale)
			d2 := offsetCopy(rng, d1)
			goImpl.add(d1, src)
			im.add(d2, offsetCopy(rng, src))
			requireBitsEq(t, "add", n, d2, d1)
		}
	})
}

func TestAxpyParity(t *testing.T) {
	forEachAsmImpl(t, func(t *testing.T, im impl) {
		rng := rand.New(rand.NewSource(12))
		for trial := 0; trial < parityTrials; trial++ {
			n := rng.Intn(71)
			scale := math.Pow(10, float64(rng.Intn(9)-4))
			alpha := float32(rng.NormFloat64() * scale)
			x := scaledSlice(rng, n, scale)
			y1 := scaledSlice(rng, n, scale)
			y2 := offsetCopy(rng, y1)
			goImpl.axpy(alpha, x, y1)
			im.axpy(alpha, offsetCopy(rng, x), y2)
			requireBitsEq(t, "axpy", n, y2, y1)
		}
	})
}

func TestScaleParity(t *testing.T) {
	forEachAsmImpl(t, func(t *testing.T, im impl) {
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < parityTrials; trial++ {
			n := rng.Intn(71)
			scale := math.Pow(10, float64(rng.Intn(9)-4))
			alpha := float32(rng.NormFloat64() * scale)
			x1 := scaledSlice(rng, n, scale)
			x2 := offsetCopy(rng, x1)
			goImpl.scale(alpha, x1)
			im.scale(alpha, x2)
			requireBitsEq(t, "scale", n, x2, x1)
		}
	})
}

func TestZeroParity(t *testing.T) {
	forEachAsmImpl(t, func(t *testing.T, im impl) {
		rng := rand.New(rand.NewSource(14))
		for trial := 0; trial < parityTrials; trial++ {
			n := rng.Intn(71)
			x := offsetCopy(rng, scaledSlice(rng, n, 1))
			im.zero(x)
			for i := range x {
				if math.Float32bits(x[i]) != 0 {
					t.Fatalf("trial %d: zero left %v (bits %#x) at %d", trial, x[i], math.Float32bits(x[i]), i)
				}
			}
		}
	})
}

func TestAdamParity(t *testing.T) {
	forEachAsmImpl(t, func(t *testing.T, im impl) {
		rng := rand.New(rand.NewSource(15))
		lr, eps := 1e-4, 1e-8
		b1, b2 := float32(0.9), float32(0.999)
		for trial := 0; trial < parityTrials; trial++ {
			n := rng.Intn(71)
			scale := math.Pow(10, float64(rng.Intn(9)-4))
			wd := 0.0
			if rng.Intn(2) == 1 {
				wd = 1e-5
			}
			w1, g := scaledSlice(rng, n, scale), scaledSlice(rng, n, scale)
			m1 := scaledSlice(rng, n, scale)
			v1 := make([]float32, n)
			for i := range v1 {
				v1[i] = float32(rng.Float64() * scale)
			}
			w2, m2, v2 := offsetCopy(rng, w1), offsetCopy(rng, m1), offsetCopy(rng, v1)
			step := 1 + rng.Intn(50)
			bc1 := 1 - math.Pow(float64(b1), float64(step))
			bc2 := 1 - math.Pow(float64(b2), float64(step))
			goImpl.adam(w1, g, m1, v1, lr, wd, b1, b2, bc1, bc2, eps)
			im.adam(w2, offsetCopy(rng, g), m2, v2, lr, wd, b1, b2, bc1, bc2, eps)
			requireBitsEq(t, "adam.w", n, w2, w1)
			requireBitsEq(t, "adam.m", n, m2, m1)
			requireBitsEq(t, "adam.v", n, v2, v1)
		}
	})
}

// TestFusedSGDStepMatchesComposition pins FusedSGDStep (all K, every
// implementation) against the unfused Dot + scalar-bias + SGDStep
// composition it replaces.
func TestFusedSGDStepMatchesComposition(t *testing.T) {
	forEachImpl(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(9))
		for _, n := range []int{0, 1, 2, 3, 5, 10, 16, 33, 50} {
			x1, y1 := randSlice(rng, n), randSlice(rng, n)
			x2 := append([]float32(nil), x1...)
			y2 := append([]float32(nil), y1...)
			rating := float32(rng.NormFloat64() * 3)
			mean, bu, bi := float32(3.5), float32(rng.NormFloat64()), float32(rng.NormFloat64())
			lr, reg := float32(0.005), float32(0.1)

			pred := mean + bu + bi + Dot(x1, y1)
			e := rating - pred
			wbu := bu + float32(lr*(e-float32(reg*bu)))
			wbi := bi + float32(lr*(e-float32(reg*bi)))
			SGDStep(x1, y1, e, lr, reg)

			gbu, gbi := FusedSGDStep(x2, y2, rating, mean, bu, bi, lr, reg)
			if math.Float32bits(gbu) != math.Float32bits(wbu) || math.Float32bits(gbi) != math.Float32bits(wbi) {
				t.Fatalf("n=%d: bias mismatch: fused (%v,%v) composed (%v,%v)", n, gbu, gbi, wbu, wbi)
			}
			requireBitsEq(t, "fused.x", n, x2, x1)
			requireBitsEq(t, "fused.y", n, y2, y1)
		}
	})
}

func BenchmarkFusedSGDStep10(b *testing.B) {
	x, y := benchSlices(10)
	for i := 0; i < b.N; i++ {
		FusedSGDStep(x, y, 4, 3.5, 0.1, 0.1, 0.005, 0.1)
	}
}
