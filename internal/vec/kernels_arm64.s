//go:build arm64

#include "textflag.h"

// arm64 NEON kernels. Bit-identity with the pure-Go reference loops is
// load-bearing:
//   - vector FADD/FSUB/FMUL/FDIV/FSQRT and the FCVTL/FCVTN widen/narrow
//     pairs are IEEE-754 correctly rounded per lane (default rounding
//     mode), so every lane computes the identical operation the scalar
//     loop would; VFMLA (fused multiply-add) is never used;
//   - reductions never appear here — Dot/SumSq stay scalar Go by
//     contract, and sgd10's dot is a serial scalar FADDS chain;
//   - every kernel consumes only whole 4-element blocks (len pre-trimmed
//     by the Go wrapper, which finishes the tail with the reference loop).
//
// Go's arm64 assembler has no vector floating-point add/mul/sub/div
// mnemonics (only the fused VFMLA/VFMLS, forbidden by the contract), so
// those operations are WORD-encoded; each WORD's comment is the A64
// instruction it encodes, and `go tool objdump` on an arm64 build decodes
// them back to exactly these mnemonics (checked in CI by the cross-arch
// job actually executing this file's kernels).

// func addNEON(dst, src []float32)
// dst[i] += src[i]; len(dst) is a positive multiple of 4.
TEXT ·addNEON(SB), NOSPLIT, $0-48
	MOVD dst_base+0(FP), R1
	MOVD src_base+24(FP), R0
	MOVD dst_len+8(FP), R2
	LSR  $2, R2, R2

addneon_loop:
	VLD1.P 16(R0), [V0.S4]
	VLD1   (R1), [V1.S4]
	WORD   $0x4E20D422         // FADD V2.4S, V1.4S, V0.4S   (dst + src)
	VST1.P [V2.S4], 16(R1)
	SUBS   $1, R2, R2
	BNE    addneon_loop
	RET

// func axpyNEON(alpha float32, x, y []float32)
// y[i] += alpha*x[i]; len(y) is a positive multiple of 4.
TEXT ·axpyNEON(SB), NOSPLIT, $0-56
	FMOVS alpha+0(FP), F4
	VDUP  V4.S[0], V4.S4
	MOVD  x_base+8(FP), R0
	MOVD  y_base+32(FP), R1
	MOVD  y_len+40(FP), R2
	LSR   $2, R2, R2

axpyneon_loop:
	VLD1.P 16(R0), [V0.S4]
	VLD1   (R1), [V1.S4]
	WORD   $0x6E20DC82         // FMUL V2.4S, V4.4S, V0.4S   (alpha*x)
	WORD   $0x4E22D422         // FADD V2.4S, V1.4S, V2.4S   (y + alpha*x)
	VST1.P [V2.S4], 16(R1)
	SUBS   $1, R2, R2
	BNE    axpyneon_loop
	RET

// func scaleNEON(alpha float32, x []float32)
// x[i] *= alpha; len(x) is a positive multiple of 4.
TEXT ·scaleNEON(SB), NOSPLIT, $0-32
	FMOVS alpha+0(FP), F4
	VDUP  V4.S[0], V4.S4
	MOVD  x_base+8(FP), R0
	MOVD  x_len+16(FP), R2
	LSR   $2, R2, R2

scaleneon_loop:
	VLD1   (R0), [V0.S4]
	WORD   $0x6E20DC81         // FMUL V1.4S, V4.4S, V0.4S   (alpha*x)
	VST1.P [V1.S4], 16(R0)
	SUBS   $1, R2, R2
	BNE    scaleneon_loop
	RET

// func zeroNEON(x []float32)
// x[i] = 0; len(x) is a positive multiple of 4.
TEXT ·zeroNEON(SB), NOSPLIT, $0-24
	VEOR V0.B16, V0.B16, V0.B16
	MOVD x_base+0(FP), R0
	MOVD x_len+8(FP), R2
	LSR  $2, R2, R2

zeroneon_loop:
	VST1.P [V0.S4], 16(R0)
	SUBS   $1, R2, R2
	BNE    zeroneon_loop
	RET

// func sgd10NEON(x, y []float32, rating, mean, bu, bi, lr, reg float32) (float32, float32)
//
// NEON tier of the K=10 fused biased-MF SGD step: the dot product is a
// strictly serial scalar FADDS chain starting from +0 (exactly the Go
// accumulation order), lanes 0..7 update as two 4-lane vector blocks,
// lanes 8..9 and the bias returns replicate the Go expression shapes
// with scalar instructions operation for operation.
TEXT ·sgd10NEON(SB), NOSPLIT, $0-80
	MOVD x_base+0(FP), R0
	MOVD y_base+24(FP), R1

	// --- dot = Σ x[i]*y[i], serial chain from +0 ---
	FMOVS ZR, F0
	FMOVS 0(R0), F1
	FMOVS 0(R1), F2
	FMULS F2, F1, F1
	FADDS F1, F0, F0
	FMOVS 4(R0), F1
	FMOVS 4(R1), F2
	FMULS F2, F1, F1
	FADDS F1, F0, F0
	FMOVS 8(R0), F1
	FMOVS 8(R1), F2
	FMULS F2, F1, F1
	FADDS F1, F0, F0
	FMOVS 12(R0), F1
	FMOVS 12(R1), F2
	FMULS F2, F1, F1
	FADDS F1, F0, F0
	FMOVS 16(R0), F1
	FMOVS 16(R1), F2
	FMULS F2, F1, F1
	FADDS F1, F0, F0
	FMOVS 20(R0), F1
	FMOVS 20(R1), F2
	FMULS F2, F1, F1
	FADDS F1, F0, F0
	FMOVS 24(R0), F1
	FMOVS 24(R1), F2
	FMULS F2, F1, F1
	FADDS F1, F0, F0
	FMOVS 28(R0), F1
	FMOVS 28(R1), F2
	FMULS F2, F1, F1
	FADDS F1, F0, F0
	FMOVS 32(R0), F1
	FMOVS 32(R1), F2
	FMULS F2, F1, F1
	FADDS F1, F0, F0
	FMOVS 36(R0), F1
	FMOVS 36(R1), F2
	FMULS F2, F1, F1
	FADDS F1, F0, F0

	// --- e = rating - (((mean + bu) + bi) + dot) ---
	FMOVS mean+52(FP), F3
	FMOVS bu+56(FP), F4
	FADDS F4, F3, F3
	FMOVS bi+60(FP), F5
	FADDS F5, F3, F3
	FADDS F0, F3, F3
	FMOVS rating+48(FP), F6
	FSUBS F3, F6, F6           // F6 = e

	// --- broadcasts: V16 = e, V17 = lr, V18 = reg ---
	VDUP  V6.S[0], V16.S4
	FMOVS lr+64(FP), F7
	VDUP  V7.S[0], V17.S4
	FMOVS reg+68(FP), F8
	VDUP  V8.S[0], V18.S4

	// --- lanes 0..3 ---
	VLD1   (R0), [V0.S4]       // x old
	VLD1   (R1), [V1.S4]       // y old
	WORD   $0x6E21DE02         // FMUL V2.4S, V16.4S, V1.4S  (e*y)
	WORD   $0x6E20DE43         // FMUL V3.4S, V18.4S, V0.4S  (reg*x)
	WORD   $0x4EA3D442         // FSUB V2.4S, V2.4S, V3.4S   (e*y - reg*x)
	WORD   $0x6E22DE22         // FMUL V2.4S, V17.4S, V2.4S  (lr*(...))
	WORD   $0x4E22D402         // FADD V2.4S, V0.4S, V2.4S   (x' = x + ...)
	WORD   $0x6E20DE04         // FMUL V4.4S, V16.4S, V0.4S  (e*x_old)
	WORD   $0x6E21DE45         // FMUL V5.4S, V18.4S, V1.4S  (reg*y)
	WORD   $0x4EA5D484         // FSUB V4.4S, V4.4S, V5.4S
	WORD   $0x6E24DE24         // FMUL V4.4S, V17.4S, V4.4S
	WORD   $0x4E24D424         // FADD V4.4S, V1.4S, V4.4S   (y' = y + ...)
	VST1.P [V2.S4], 16(R0)
	VST1.P [V4.S4], 16(R1)

	// --- lanes 4..7 ---
	VLD1   (R0), [V0.S4]
	VLD1   (R1), [V1.S4]
	WORD   $0x6E21DE02         // FMUL V2.4S, V16.4S, V1.4S
	WORD   $0x6E20DE43         // FMUL V3.4S, V18.4S, V0.4S
	WORD   $0x4EA3D442         // FSUB V2.4S, V2.4S, V3.4S
	WORD   $0x6E22DE22         // FMUL V2.4S, V17.4S, V2.4S
	WORD   $0x4E22D402         // FADD V2.4S, V0.4S, V2.4S
	WORD   $0x6E20DE04         // FMUL V4.4S, V16.4S, V0.4S
	WORD   $0x6E21DE45         // FMUL V5.4S, V18.4S, V1.4S
	WORD   $0x4EA5D484         // FSUB V4.4S, V4.4S, V5.4S
	WORD   $0x6E24DE24         // FMUL V4.4S, V17.4S, V4.4S
	WORD   $0x4E24D424         // FADD V4.4S, V1.4S, V4.4S
	VST1.P [V2.S4], 16(R0)
	VST1.P [V4.S4], 16(R1)

	// --- lanes 8..9, scalar ---
	FMOVS 0(R0), F9            // x8
	FMOVS 0(R1), F10           // y8
	FMULS F10, F6, F11         // e*y
	FMULS F9, F8, F12          // reg*x
	FSUBS F12, F11, F11
	FMULS F11, F7, F11         // lr*(...)
	FADDS F11, F9, F11         // x8'
	FMULS F9, F6, F12          // e*x_old
	FMULS F10, F8, F13         // reg*y
	FSUBS F13, F12, F12
	FMULS F12, F7, F12
	FADDS F12, F10, F12        // y8'
	FMOVS F11, 0(R0)
	FMOVS F12, 0(R1)

	FMOVS 4(R0), F9            // x9
	FMOVS 4(R1), F10           // y9
	FMULS F10, F6, F11
	FMULS F9, F8, F12
	FSUBS F12, F11, F11
	FMULS F11, F7, F11
	FADDS F11, F9, F11
	FMULS F9, F6, F12
	FMULS F10, F8, F13
	FSUBS F13, F12, F12
	FMULS F12, F7, F12
	FADDS F12, F10, F12
	FMOVS F11, 4(R0)
	FMOVS F12, 4(R1)

	// --- bu' = bu + lr*(e - reg*bu) ---
	FMOVS bu+56(FP), F9
	FMULS F9, F8, F10          // reg*bu
	FSUBS F10, F6, F10         // e - reg*bu
	FMULS F10, F7, F10         // lr*(...)
	FADDS F10, F9, F10         // bu + ...
	FMOVS F10, ret+72(FP)

	// --- bi' = bi + lr*(e - reg*bi) ---
	FMOVS bi+60(FP), F9
	FMULS F9, F8, F10
	FSUBS F10, F6, F10
	FMULS F10, F7, F10
	FADDS F10, F9, F10
	FMOVS F10, ret1+76(FP)

	RET

// func adamNEON(w, g, m, v []float32, lr float64, b1, onemb1, b2, onemb2 float32, bc1, bc2, eps float64)
//
// NEON fused Adam step, weight decay already applied by the wrapper;
// len(w) is a positive multiple of 4. Per 4-element block:
//
//	m' = b1*m + (1-b1)*g                      (float32, one 4S block)
//	v' = b2*v + ((1-b2)*g)*g                  (float32, one 4S block)
//	step = lr*(f64(m')/bc1) / (sqrt(f64(v')/bc2) + eps)   (float64, 2×2D)
//	w' = w - f32(step)
//
// FCVTL/FCVTL2 widen exactly; FDIV/FSQRT/FCVTN are correctly rounded, so
// every lane reproduces the scalar loop bit for bit.
TEXT ·adamNEON(SB), NOSPLIT, $0-144
	MOVD w_base+0(FP), R0
	MOVD g_base+24(FP), R1
	MOVD m_base+48(FP), R2
	MOVD v_base+72(FP), R3
	MOVD w_len+8(FP), R4
	LSR  $2, R4, R4

	FMOVS b1+104(FP), F20
	VDUP  V20.S[0], V20.S4
	FMOVS onemb1+108(FP), F21
	VDUP  V21.S[0], V21.S4
	FMOVS b2+112(FP), F22
	VDUP  V22.S[0], V22.S4
	FMOVS onemb2+116(FP), F23
	VDUP  V23.S[0], V23.S4
	FMOVD lr+96(FP), F24
	VDUP  V24.D[0], V24.D2
	FMOVD bc1+120(FP), F25
	VDUP  V25.D[0], V25.D2
	FMOVD bc2+128(FP), F26
	VDUP  V26.D[0], V26.D2
	FMOVD eps+136(FP), F27
	VDUP  V27.D[0], V27.D2

adamneon_loop:
	VLD1.P 16(R1), [V0.S4]     // g
	VLD1   (R2), [V1.S4]       // m
	VLD1   (R3), [V2.S4]       // v

	WORD $0x6E21DE83           // FMUL V3.4S, V20.4S, V1.4S  (b1*m)
	WORD $0x6E20DEA4           // FMUL V4.4S, V21.4S, V0.4S  ((1-b1)*g)
	WORD $0x4E24D463           // FADD V3.4S, V3.4S, V4.4S   (m')
	WORD $0x6E22DEC5           // FMUL V5.4S, V22.4S, V2.4S  (b2*v)
	WORD $0x6E20DEE6           // FMUL V6.4S, V23.4S, V0.4S  ((1-b2)*g)
	WORD $0x6E20DCC6           // FMUL V6.4S, V6.4S, V0.4S   (((1-b2)*g)*g, left-assoc like Go)
	WORD $0x4E26D4A5           // FADD V5.4S, V5.4S, V6.4S   (v')

	VST1.P [V3.S4], 16(R2)
	VST1.P [V5.S4], 16(R3)

	WORD $0x0E617867           // FCVTL  V7.2D, V3.2S        (f64(m') low, exact)
	WORD $0x4E617868           // FCVTL2 V8.2D, V3.4S        (f64(m') high, exact)
	WORD $0x0E6178A9           // FCVTL  V9.2D, V5.2S        (f64(v') low)
	WORD $0x4E6178AA           // FCVTL2 V10.2D, V5.4S       (f64(v') high)
	WORD $0x6E79FCE7           // FDIV V7.2D, V7.2D, V25.2D  (mhat low  = f64(m')/bc1)
	WORD $0x6E79FD08           // FDIV V8.2D, V8.2D, V25.2D  (mhat high)
	WORD $0x6E7AFD29           // FDIV V9.2D, V9.2D, V26.2D  (vhat low  = f64(v')/bc2)
	WORD $0x6E7AFD4A           // FDIV V10.2D, V10.2D, V26.2D (vhat high)
	WORD $0x6EE1F929           // FSQRT V9.2D, V9.2D         (sqrt(vhat) low)
	WORD $0x6EE1F94A           // FSQRT V10.2D, V10.2D       (sqrt(vhat) high)
	WORD $0x4E7BD529           // FADD V9.2D, V9.2D, V27.2D  (+ eps, low)
	WORD $0x4E7BD54A           // FADD V10.2D, V10.2D, V27.2D (+ eps, high)
	WORD $0x6E67DF07           // FMUL V7.2D, V24.2D, V7.2D  (lr*mhat low)
	WORD $0x6E68DF08           // FMUL V8.2D, V24.2D, V8.2D  (lr*mhat high)
	WORD $0x6E69FCE7           // FDIV V7.2D, V7.2D, V9.2D   (step low, float64)
	WORD $0x6E6AFD08           // FDIV V8.2D, V8.2D, V10.2D  (step high)
	WORD $0x0E6168EB           // FCVTN  V11.2S, V7.2D       (f32(step) low, correctly rounded)
	WORD $0x4E61690B           // FCVTN2 V11.4S, V8.2D       (f32(step) high)

	VLD1 (R0), [V12.S4]        // w
	WORD $0x4EABD58C           // FSUB V12.4S, V12.4S, V11.4S (w' = w - f32(step))
	VST1.P [V12.S4], 16(R0)

	SUBS $1, R4, R4
	BNE  adamneon_loop
	RET
