//go:build amd64

package vec

// asmSGD10 gates the SSE2 implementation of the K=10 fused SGD step.
// Packed single-precision ops are IEEE-identical per lane to the scalar
// code (no FMA, no reassociation: the dot reduction stays a serial scalar
// chain), so the assembly preserves the package's bit-identity contract —
// enforced against the pure-Go kernel by TestFusedSGDStep10AsmBitIdentical.
const asmSGD10 = true

//go:noescape
func fusedSGDStep10Asm(x, y []float32, rating, mean, bu, bi, lr, reg float32) (float32, float32)
