//go:build amd64

package vec

// Runtime CPU-feature detection, self-contained so the module needs no
// external dependency: CPUID leaf 1 for AVX+OSXSAVE, XGETBV for OS-enabled
// YMM state, CPUID leaf 7 for AVX2. SSE2 is architectural on amd64.

// cpuidRaw executes CPUID with the given EAX/ECX inputs (cpu_amd64.s).
func cpuidRaw(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask (cpu_amd64.s).
func xgetbv0() (eax, edx uint32)

// hasAVX2 reports whether both the CPU and the OS support AVX2: the ISA
// bit alone is not enough — the kernel must have enabled YMM state saving
// (XCR0 bits 1 and 2), or executing a VEX.256 instruction faults.
func hasAVX2() bool {
	maxID, _, _, _ := cpuidRaw(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidRaw(1, 0)
	const osxsaveBit, avxBit = 1 << 27, 1 << 28
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	const ymmState = 0x6 // XMM (bit 1) + YMM (bit 2)
	if xcr0&ymmState != ymmState {
		return false
	}
	_, ebx7, _, _ := cpuidRaw(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// archImpls returns the assembly kernel sets this amd64 machine can run,
// best first. SSE2 is always present (part of the base amd64 ISA).
func archImpls() []impl {
	sse2 := impl{
		name:  "sse2",
		add:   addSSE2Full,
		axpy:  axpySSE2Full,
		scale: scaleSSE2Full,
		zero:  zeroSSE2Full,
		sgd10: sgd10SSE2,
		// SSE2 Adam would need 2-wide float64 lanes for marginal gain;
		// the scalar reference loop stays the SSE2-tier implementation.
		adam: adamStepGo,
	}
	if !hasAVX2() {
		return []impl{sse2}
	}
	avx2 := impl{
		name:  "avx2",
		add:   addAVX2Full,
		axpy:  axpyAVX2Full,
		scale: scaleAVX2Full,
		zero:  zeroAVX2Full,
		sgd10: sgd10AVX2,
		adam:  adamAVX2Full,
	}
	return []impl{avx2, sse2}
}

// The assembly kernels consume only whole vector blocks (4 floats for
// SSE2, 8 for AVX2; 4 for the AVX2 Adam, which widens to 4×float64); the
// wrappers below trim the slices to the block region and finish the tail
// with the exact reference loop. Element-wise kernels touch each index
// independently, so the split cannot change a single bit.

//go:noescape
func addSSE2(dst, src []float32)

//go:noescape
func addAVX2(dst, src []float32)

//go:noescape
func axpySSE2(alpha float32, x, y []float32)

//go:noescape
func axpyAVX2(alpha float32, x, y []float32)

//go:noescape
func scaleSSE2(alpha float32, x []float32)

//go:noescape
func scaleAVX2(alpha float32, x []float32)

//go:noescape
func zeroSSE2(x []float32)

//go:noescape
func zeroAVX2(x []float32)

//go:noescape
func sgd10SSE2(x, y []float32, rating, mean, bu, bi, lr, reg float32) (float32, float32)

//go:noescape
func sgd10AVX2(x, y []float32, rating, mean, bu, bi, lr, reg float32) (float32, float32)

//go:noescape
func adamAVX2(w, g, m, v []float32, lr float64, b1, onemb1, b2, onemb2 float32, bc1, bc2, eps float64)

func addSSE2Full(dst, src []float32) {
	n := len(dst)
	src = src[:n]
	if blk := n &^ 3; blk > 0 {
		addSSE2(dst[:blk], src[:blk])
	}
	for i := n &^ 3; i < n; i++ {
		dst[i] += src[i]
	}
}

func addAVX2Full(dst, src []float32) {
	n := len(dst)
	src = src[:n]
	if blk := n &^ 7; blk > 0 {
		addAVX2(dst[:blk], src[:blk])
	}
	for i := n &^ 7; i < n; i++ {
		dst[i] += src[i]
	}
}

func axpySSE2Full(alpha float32, x, y []float32) {
	n := len(y)
	x = x[:n]
	if blk := n &^ 3; blk > 0 {
		axpySSE2(alpha, x[:blk], y[:blk])
	}
	for i := n &^ 3; i < n; i++ {
		y[i] += float32(alpha * x[i])
	}
}

func axpyAVX2Full(alpha float32, x, y []float32) {
	n := len(y)
	x = x[:n]
	if blk := n &^ 7; blk > 0 {
		axpyAVX2(alpha, x[:blk], y[:blk])
	}
	for i := n &^ 7; i < n; i++ {
		y[i] += float32(alpha * x[i])
	}
}

func scaleSSE2Full(alpha float32, x []float32) {
	n := len(x)
	if blk := n &^ 3; blk > 0 {
		scaleSSE2(alpha, x[:blk])
	}
	for i := n &^ 3; i < n; i++ {
		x[i] *= alpha
	}
}

func scaleAVX2Full(alpha float32, x []float32) {
	n := len(x)
	if blk := n &^ 7; blk > 0 {
		scaleAVX2(alpha, x[:blk])
	}
	for i := n &^ 7; i < n; i++ {
		x[i] *= alpha
	}
}

func zeroSSE2Full(x []float32) {
	n := len(x)
	if blk := n &^ 3; blk > 0 {
		zeroSSE2(x[:blk])
	}
	for i := n &^ 3; i < n; i++ {
		x[i] = 0
	}
}

func zeroAVX2Full(x []float32) {
	n := len(x)
	if blk := n &^ 7; blk > 0 {
		zeroAVX2(x[:blk])
	}
	for i := n &^ 7; i < n; i++ {
		x[i] = 0
	}
}

func adamAVX2Full(w, g, m, v []float32, lr, wd float64, b1, b2 float32, bc1, bc2, eps float64) {
	n := len(w)
	g, m, v = g[:n], m[:n], v[:n]
	if wd != 0 {
		adamDecay(w, lr*wd)
	}
	blk := n &^ 3
	if blk > 0 {
		adamAVX2(w[:blk], g[:blk], m[:blk], v[:blk], lr, b1, 1-b1, b2, 1-b2, bc1, bc2, eps)
	}
	adamTail(w, g, m, v, blk, lr, b1, b2, bc1, bc2, eps)
}
