//go:build amd64

#include "textflag.h"

// func fusedSGDStep10Asm(x, y []float32, rating, mean, bu, bi, lr, reg float32) (float32, float32)
//
// SSE2 implementation of the K=10 fused biased-MF SGD step. Bit-identity
// with the pure-Go kernel is load-bearing:
//   - the dot product is a strictly serial scalar ADDSS chain starting
//     from +0, exactly the Go accumulation order;
//   - the embedding update is element-wise, so packed MULPS/SUBPS/ADDPS
//     lanes compute the identical IEEE-754 single operations the scalar
//     loop would (no FMA contraction, default rounding);
//   - bias updates replicate the Go expression shapes operation for
//     operation.
TEXT ·fusedSGDStep10Asm(SB), NOSPLIT, $0-80
	MOVQ x_base+0(FP), SI
	MOVQ y_base+24(FP), DI

	// --- dot = Σ x[i]*y[i], serial chain from +0 ---
	XORPS X0, X0
	MOVSS 0(SI), X1
	MULSS 0(DI), X1
	ADDSS X1, X0
	MOVSS 4(SI), X1
	MULSS 4(DI), X1
	ADDSS X1, X0
	MOVSS 8(SI), X1
	MULSS 8(DI), X1
	ADDSS X1, X0
	MOVSS 12(SI), X1
	MULSS 12(DI), X1
	ADDSS X1, X0
	MOVSS 16(SI), X1
	MULSS 16(DI), X1
	ADDSS X1, X0
	MOVSS 20(SI), X1
	MULSS 20(DI), X1
	ADDSS X1, X0
	MOVSS 24(SI), X1
	MULSS 24(DI), X1
	ADDSS X1, X0
	MOVSS 28(SI), X1
	MULSS 28(DI), X1
	ADDSS X1, X0
	MOVSS 32(SI), X1
	MULSS 32(DI), X1
	ADDSS X1, X0
	MOVSS 36(SI), X1
	MULSS 36(DI), X1
	ADDSS X1, X0

	// --- e = rating - (((mean + bu) + bi) + dot) ---
	MOVSS mean+52(FP), X2
	ADDSS bu+56(FP), X2
	ADDSS bi+60(FP), X2
	ADDSS X0, X2
	MOVSS rating+48(FP), X3
	SUBSS X2, X3                  // X3 = e (scalar lane)

	// --- broadcasts: X6 = e, X4 = lr, X5 = reg (lane0 stays scalar) ---
	MOVSS  lr+64(FP), X4
	SHUFPS $0x00, X4, X4
	MOVSS  reg+68(FP), X5
	SHUFPS $0x00, X5, X5
	MOVAPS X3, X6
	SHUFPS $0x00, X6, X6

	// --- lanes 0..3 ---
	MOVUPS 0(SI), X8              // x old
	MOVUPS 0(DI), X9              // y old
	MOVAPS X6, X10
	MULPS  X9, X10                // e*y
	MOVAPS X5, X11
	MULPS  X8, X11                // reg*x
	SUBPS  X11, X10               // e*y - reg*x
	MULPS  X4, X10                // lr*(e*y - reg*x)
	ADDPS  X8, X10                // x' = x + ...
	MOVAPS X6, X12
	MULPS  X8, X12                // e*x_old
	MOVAPS X5, X13
	MULPS  X9, X13                // reg*y
	SUBPS  X13, X12
	MULPS  X4, X12
	ADDPS  X9, X12                // y' = y + ...
	MOVUPS X10, 0(SI)
	MOVUPS X12, 0(DI)

	// --- lanes 4..7 ---
	MOVUPS 16(SI), X8
	MOVUPS 16(DI), X9
	MOVAPS X6, X10
	MULPS  X9, X10
	MOVAPS X5, X11
	MULPS  X8, X11
	SUBPS  X11, X10
	MULPS  X4, X10
	ADDPS  X8, X10
	MOVAPS X6, X12
	MULPS  X8, X12
	MOVAPS X5, X13
	MULPS  X9, X13
	SUBPS  X13, X12
	MULPS  X4, X12
	ADDPS  X9, X12
	MOVUPS X10, 16(SI)
	MOVUPS X12, 16(DI)

	// --- lanes 8..9 (8-byte loads zero the upper half; the junk lanes
	// compute 0*… = 0 and are not stored back) ---
	MOVQ   32(SI), X8
	MOVQ   32(DI), X9
	MOVAPS X6, X10
	MULPS  X9, X10
	MOVAPS X5, X11
	MULPS  X8, X11
	SUBPS  X11, X10
	MULPS  X4, X10
	ADDPS  X8, X10
	MOVAPS X6, X12
	MULPS  X8, X12
	MOVAPS X5, X13
	MULPS  X9, X13
	SUBPS  X13, X12
	MULPS  X4, X12
	ADDPS  X9, X12
	MOVQ   X10, 32(SI)
	MOVQ   X12, 32(DI)

	// --- bu' = bu + lr*(e - reg*bu) ---
	MOVSS  bu+56(FP), X7
	MOVAPS X5, X8
	MULSS  X7, X8
	MOVAPS X3, X9
	SUBSS  X8, X9
	MULSS  X4, X9
	ADDSS  X7, X9
	MOVSS  X9, ret+72(FP)

	// --- bi' = bi + lr*(e - reg*bi) ---
	MOVSS  bi+60(FP), X7
	MOVAPS X5, X8
	MULSS  X7, X8
	MOVAPS X3, X9
	SUBSS  X8, X9
	MULSS  X4, X9
	ADDSS  X7, X9
	MOVSS  X9, ret1+76(FP)

	RET
