package mf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rex/internal/dataset"
	"rex/internal/model"
	"rex/internal/movielens"
)

func trainingData(t testing.TB) *dataset.Dataset {
	t.Helper()
	spec := movielens.Latest().Scaled(0.05)
	spec.Seed = 77
	return movielens.Generate(spec)
}

func TestTrainReducesError(t *testing.T) {
	ds := trainingData(t)
	rng := rand.New(rand.NewSource(1))
	tr, te := ds.SplitPerUser(0.7, rng)
	m := New(DefaultConfig())
	before := model.RMSE(m, te.Ratings)
	m.Train(tr.Ratings, 40_000, rng)
	after := model.RMSE(m, te.Ratings)
	if after >= before {
		t.Fatalf("training did not help: %.4f -> %.4f", before, after)
	}
	if after > 1.1 {
		t.Fatalf("converged RMSE %.4f too high", after)
	}
}

func TestTrainNoData(t *testing.T) {
	m := New(DefaultConfig())
	m.Train(nil, 100, rand.New(rand.NewSource(1))) // must not panic
	if m.ParamCount() != 0 {
		t.Fatal("training on nothing materialized parameters")
	}
}

func TestPredictFallbacks(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	if got := m.Predict(5, 9); got != float32(cfg.GlobalMean) {
		t.Fatalf("cold prediction %v, want global mean", got)
	}
	m.Train([]dataset.Rating{{User: 1, Item: 2, Value: 5}}, 200, rand.New(rand.NewSource(2)))
	// Known user, unknown item: bias-only path must not panic and should
	// stay in a sane range.
	if p := m.Predict(1, 999); p < 0 || p > 6 {
		t.Fatalf("bias-only prediction %v out of range", p)
	}
}

func TestDeterministicInit(t *testing.T) {
	cfg := DefaultConfig()
	a, b := New(cfg), New(cfg)
	// Touch the same entities in different orders; initial vectors must
	// match (pure function of seed+id), the attested-equal-state property.
	a.users.vec(3)
	a.users.vec(7)
	b.users.vec(7)
	b.users.vec(3)
	av, bv := a.users.vec(3), b.users.vec(3)
	for d := range av {
		if av[d] != bv[d] {
			t.Fatalf("dim %d: %v != %v", d, av[d], bv[d])
		}
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	ds := trainingData(t)
	m := New(DefaultConfig())
	m.Train(ds.Ratings, 10_000, rand.New(rand.NewSource(3)))
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != m.WireSize() {
		t.Fatalf("WireSize %d != marshaled %d", m.WireSize(), len(buf))
	}
	m2 := New(DefaultConfig())
	if err := m2.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Ratings[:200] {
		if m.Predict(r.User, r.Item) != m2.Predict(r.User, r.Item) {
			t.Fatalf("prediction differs after roundtrip for %+v", r)
		}
	}
	buf2, err := m2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(buf2) {
		t.Fatal("serialization not canonical")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	m := New(DefaultConfig())
	if err := m.Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer accepted")
	}
	other := DefaultConfig()
	other.K = 20
	m20 := New(other)
	m20.Train([]dataset.Rating{{User: 0, Item: 0, Value: 3}}, 10, rand.New(rand.NewSource(4)))
	buf, _ := m20.Marshal()
	if err := m.Unmarshal(buf); err == nil {
		t.Fatal("K mismatch accepted")
	}
	good, _ := m20.Marshal()
	if err := m20.Unmarshal(good[:len(good)-2]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if err := m20.Unmarshal(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestUnmarshalRejectsCorruptedRecords pins the id-order validation:
// Marshal emits each section's records with strictly increasing ids, so a
// duplicated or reordered record is corruption and must be rejected (the
// old total-length check alone accepted such buffers silently).
func TestUnmarshalRejectsCorruptedRecords(t *testing.T) {
	m := New(DefaultConfig())
	data := []dataset.Rating{
		{User: 1, Item: 10, Value: 4},
		{User: 2, Item: 11, Value: 2},
		{User: 3, Item: 12, Value: 5},
	}
	m.Train(data, 200, rand.New(rand.NewSource(20)))
	good, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rec := 4 + 4 + 4*m.Config().K
	if err := New(DefaultConfig()).Unmarshal(good); err != nil {
		t.Fatalf("canonical buffer rejected: %v", err)
	}

	// Duplicate: overwrite the second user record with a copy of the first.
	dup := append([]byte(nil), good...)
	copy(dup[16+rec:16+2*rec], dup[16:16+rec])
	if err := New(DefaultConfig()).Unmarshal(dup); err == nil {
		t.Fatal("duplicated record accepted")
	}

	// Reordered: swap the first two user records (ids decrease).
	swapped := append([]byte(nil), good...)
	tmp := append([]byte(nil), swapped[16:16+rec]...)
	copy(swapped[16:16+rec], swapped[16+rec:16+2*rec])
	copy(swapped[16+rec:16+2*rec], tmp)
	if err := New(DefaultConfig()).Unmarshal(swapped); err == nil {
		t.Fatal("reordered records accepted")
	}

	// A rejected buffer must leave the receiver untouched.
	m2 := New(DefaultConfig())
	if err := m2.Unmarshal(good); err != nil {
		t.Fatal(err)
	}
	before := m2.Predict(1, 10)
	if err := m2.Unmarshal(dup); err == nil {
		t.Fatal("duplicated record accepted on a populated model")
	}
	if got := m2.Predict(1, 10); got != before {
		t.Fatalf("failed Unmarshal mutated the model: %v vs %v", got, before)
	}
}

func TestMarshalRoundtripProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		cfg := DefaultConfig()
		m := New(cfg)
		rng := rand.New(rand.NewSource(seed))
		data := []dataset.Rating{
			{User: uint32(rng.Intn(50)), Item: uint32(rng.Intn(50)), Value: 3},
			{User: uint32(rng.Intn(50)), Item: uint32(rng.Intn(50)), Value: 4},
		}
		m.Train(data, int(steps), rng)
		buf, err := m.Marshal()
		if err != nil {
			return false
		}
		m2 := New(cfg)
		if err := m2.Unmarshal(buf); err != nil {
			return false
		}
		buf2, err := m2.Marshal()
		return err == nil && string(buf) == string(buf2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(DefaultConfig())
	m.Train([]dataset.Rating{{User: 1, Item: 1, Value: 5}}, 500, rand.New(rand.NewSource(5)))
	c := m.Clone().(*Model)
	before := m.Predict(1, 1)
	c.Train([]dataset.Rating{{User: 1, Item: 1, Value: 0.5}}, 2000, rand.New(rand.NewSource(6)))
	if m.Predict(1, 1) != before {
		t.Fatal("training a clone mutated the original")
	}
}

func TestMergeIdenticalIsIdempotent(t *testing.T) {
	ds := trainingData(t)
	m := New(DefaultConfig())
	m.Train(ds.Ratings, 5000, rand.New(rand.NewSource(7)))
	c := m.Clone()
	m.MergeWeighted(0.5, []model.Weighted{{M: c, W: 0.5}})
	for _, r := range ds.Ratings[:100] {
		a, b := m.Predict(r.User, r.Item), c.Predict(r.User, r.Item)
		if diff := a - b; diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("averaging a model with itself changed it: %v vs %v", a, b)
		}
	}
}

func TestMergeDisjointAdoptsAlien(t *testing.T) {
	cfg := DefaultConfig()
	a := New(cfg)
	b := New(cfg)
	a.Train([]dataset.Rating{{User: 1, Item: 1, Value: 5}}, 300, rand.New(rand.NewSource(8)))
	b.Train([]dataset.Rating{{User: 2, Item: 2, Value: 1}}, 300, rand.New(rand.NewSource(9)))
	bPred := b.Predict(2, 2)
	a.MergeWeighted(0.5, []model.Weighted{{M: b, W: 0.5}})
	// Entity (2,2) existed only in b: weights renormalize to b alone, so
	// a adopts b's values exactly (§III-C2).
	if got := a.Predict(2, 2); got != bPred {
		t.Fatalf("adopted prediction %v, want %v", got, bPred)
	}
	if a.NumItems() != 2 || a.NumUsers() != 2 {
		t.Fatalf("union sizes wrong: %d users %d items", a.NumUsers(), a.NumItems())
	}
}

func TestMergeWeightedAverage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitStd = 0 // zero init so values are exactly the trained biases
	a := New(cfg)
	b := New(cfg)
	// Handcraft: set biases via direct table access.
	a.users.vec(0)
	a.users.b[0] = 1.0
	b.users.vec(0)
	b.users.b[0] = 3.0
	a.MergeWeighted(0.25, []model.Weighted{{M: b, W: 0.75}})
	if got := a.users.b[0]; got != 0.25*1.0+0.75*3.0 {
		t.Fatalf("weighted bias %v, want 2.5", got)
	}
}

func TestMergeIncompatibleIgnored(t *testing.T) {
	a := New(DefaultConfig())
	a.users.vec(0)
	a.users.b[0] = 2
	other := DefaultConfig()
	other.K = 20
	b := New(other)
	a.MergeWeighted(0.5, []model.Weighted{{M: b, W: 0.5}})
	if a.users.b[0] != 2 {
		t.Fatal("incompatible merge modified the model")
	}
}

func TestParamCountAndWireSize(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	m.users.vec(0)
	m.items.vec(3)
	m.items.vec(9)
	wantParams := (cfg.K + 1) * 3
	if m.ParamCount() != wantParams {
		t.Fatalf("params %d want %d", m.ParamCount(), wantParams)
	}
	buf, _ := m.Marshal()
	if m.WireSize() != len(buf) {
		t.Fatalf("wire %d vs marshal %d", m.WireSize(), len(buf))
	}
}

// TestMergeCapacityStable guards against the capacity ping-pong regression:
// repeated merging between two models must not balloon allocations.
func TestMergeCapacityStable(t *testing.T) {
	cfg := DefaultConfig()
	a, b := New(cfg), New(cfg)
	rng := rand.New(rand.NewSource(10))
	data := []dataset.Rating{{User: 40, Item: 900, Value: 3}}
	a.Train(data, 10, rng)
	b.Train(data, 10, rng)
	for i := 0; i < 40; i++ {
		a.MergeWeighted(0.5, []model.Weighted{{M: b, W: 0.5}})
		b.MergeWeighted(0.5, []model.Weighted{{M: a, W: 0.5}})
	}
	if cap := len(a.items.present); cap > 4*901 {
		t.Fatalf("capacity ballooned to %d for max id 900", cap)
	}
}
