package mf

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"rex/internal/dataset"
	"rex/internal/model"
	"rex/internal/movielens"
)

func trainingData(t testing.TB) *dataset.Dataset {
	t.Helper()
	spec := movielens.Latest().Scaled(0.05)
	spec.Seed = 77
	return movielens.Generate(spec)
}

func TestTrainReducesError(t *testing.T) {
	ds := trainingData(t)
	rng := rand.New(rand.NewSource(1))
	tr, te := ds.SplitPerUser(0.7, rng)
	m := New(DefaultConfig())
	before := model.RMSE(m, te.Ratings)
	m.Train(tr.Ratings, 40_000, rng)
	after := model.RMSE(m, te.Ratings)
	if after >= before {
		t.Fatalf("training did not help: %.4f -> %.4f", before, after)
	}
	if after > 1.1 {
		t.Fatalf("converged RMSE %.4f too high", after)
	}
}

func TestTrainNoData(t *testing.T) {
	m := New(DefaultConfig())
	m.Train(nil, 100, rand.New(rand.NewSource(1))) // must not panic
	if m.ParamCount() != 0 {
		t.Fatal("training on nothing materialized parameters")
	}
}

func TestPredictFallbacks(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	if got := m.Predict(5, 9); got != float32(cfg.GlobalMean) {
		t.Fatalf("cold prediction %v, want global mean", got)
	}
	m.Train([]dataset.Rating{{User: 1, Item: 2, Value: 5}}, 200, rand.New(rand.NewSource(2)))
	// Known user, unknown item: bias-only path must not panic and should
	// stay in a sane range.
	if p := m.Predict(1, 999); p < 0 || p > 6 {
		t.Fatalf("bias-only prediction %v out of range", p)
	}
}

func TestDeterministicInit(t *testing.T) {
	cfg := DefaultConfig()
	a, b := New(cfg), New(cfg)
	// Touch the same entities in different orders; initial vectors must
	// match (pure function of seed+id), the attested-equal-state property.
	a.users.vec(3)
	a.users.vec(7)
	b.users.vec(7)
	b.users.vec(3)
	av, bv := a.users.vec(3), b.users.vec(3)
	for d := range av {
		if av[d] != bv[d] {
			t.Fatalf("dim %d: %v != %v", d, av[d], bv[d])
		}
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	ds := trainingData(t)
	m := New(DefaultConfig())
	m.Train(ds.Ratings, 10_000, rand.New(rand.NewSource(3)))
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != m.WireSize() {
		t.Fatalf("WireSize %d != marshaled %d", m.WireSize(), len(buf))
	}
	m2 := New(DefaultConfig())
	if err := m2.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Ratings[:200] {
		if m.Predict(r.User, r.Item) != m2.Predict(r.User, r.Item) {
			t.Fatalf("prediction differs after roundtrip for %+v", r)
		}
	}
	buf2, err := m2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(buf2) {
		t.Fatal("serialization not canonical")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	m := New(DefaultConfig())
	if err := m.Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer accepted")
	}
	other := DefaultConfig()
	other.K = 20
	m20 := New(other)
	m20.Train([]dataset.Rating{{User: 0, Item: 0, Value: 3}}, 10, rand.New(rand.NewSource(4)))
	buf, _ := m20.Marshal()
	if err := m.Unmarshal(buf); err == nil {
		t.Fatal("K mismatch accepted")
	}
	good, _ := m20.Marshal()
	if err := m20.Unmarshal(good[:len(good)-2]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if err := m20.Unmarshal(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestUnmarshalRejectsCorruptedRecords pins the id-order validation:
// Marshal emits each section's records with strictly increasing ids, so a
// duplicated or reordered record is corruption and must be rejected (the
// old total-length check alone accepted such buffers silently).
func TestUnmarshalRejectsCorruptedRecords(t *testing.T) {
	m := New(DefaultConfig())
	data := []dataset.Rating{
		{User: 1, Item: 10, Value: 4},
		{User: 2, Item: 11, Value: 2},
		{User: 3, Item: 12, Value: 5},
	}
	m.Train(data, 200, rand.New(rand.NewSource(20)))
	good, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rec := 4 + 4 + 4*m.Config().K
	if err := New(DefaultConfig()).Unmarshal(good); err != nil {
		t.Fatalf("canonical buffer rejected: %v", err)
	}

	// Duplicate: overwrite the second user record with a copy of the first.
	dup := append([]byte(nil), good...)
	copy(dup[16+rec:16+2*rec], dup[16:16+rec])
	if err := New(DefaultConfig()).Unmarshal(dup); err == nil {
		t.Fatal("duplicated record accepted")
	}

	// Reordered: swap the first two user records (ids decrease).
	swapped := append([]byte(nil), good...)
	tmp := append([]byte(nil), swapped[16:16+rec]...)
	copy(swapped[16:16+rec], swapped[16+rec:16+2*rec])
	copy(swapped[16+rec:16+2*rec], tmp)
	if err := New(DefaultConfig()).Unmarshal(swapped); err == nil {
		t.Fatal("reordered records accepted")
	}

	// A rejected buffer must leave the receiver untouched.
	m2 := New(DefaultConfig())
	if err := m2.Unmarshal(good); err != nil {
		t.Fatal(err)
	}
	before := m2.Predict(1, 10)
	if err := m2.Unmarshal(dup); err == nil {
		t.Fatal("duplicated record accepted on a populated model")
	}
	if got := m2.Predict(1, 10); got != before {
		t.Fatalf("failed Unmarshal mutated the model: %v vs %v", got, before)
	}
}

func TestMarshalRoundtripProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		cfg := DefaultConfig()
		m := New(cfg)
		rng := rand.New(rand.NewSource(seed))
		data := []dataset.Rating{
			{User: uint32(rng.Intn(50)), Item: uint32(rng.Intn(50)), Value: 3},
			{User: uint32(rng.Intn(50)), Item: uint32(rng.Intn(50)), Value: 4},
		}
		m.Train(data, int(steps), rng)
		buf, err := m.Marshal()
		if err != nil {
			return false
		}
		m2 := New(cfg)
		if err := m2.Unmarshal(buf); err != nil {
			return false
		}
		buf2, err := m2.Marshal()
		return err == nil && string(buf) == string(buf2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(DefaultConfig())
	m.Train([]dataset.Rating{{User: 1, Item: 1, Value: 5}}, 500, rand.New(rand.NewSource(5)))
	c := m.Clone().(*Model)
	before := m.Predict(1, 1)
	c.Train([]dataset.Rating{{User: 1, Item: 1, Value: 0.5}}, 2000, rand.New(rand.NewSource(6)))
	if m.Predict(1, 1) != before {
		t.Fatal("training a clone mutated the original")
	}
}

func TestMergeIdenticalIsIdempotent(t *testing.T) {
	ds := trainingData(t)
	m := New(DefaultConfig())
	m.Train(ds.Ratings, 5000, rand.New(rand.NewSource(7)))
	c := m.Clone()
	m.MergeWeighted(0.5, []model.Weighted{{M: c, W: 0.5}})
	for _, r := range ds.Ratings[:100] {
		a, b := m.Predict(r.User, r.Item), c.Predict(r.User, r.Item)
		if diff := a - b; diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("averaging a model with itself changed it: %v vs %v", a, b)
		}
	}
}

func TestMergeDisjointAdoptsAlien(t *testing.T) {
	cfg := DefaultConfig()
	a := New(cfg)
	b := New(cfg)
	a.Train([]dataset.Rating{{User: 1, Item: 1, Value: 5}}, 300, rand.New(rand.NewSource(8)))
	b.Train([]dataset.Rating{{User: 2, Item: 2, Value: 1}}, 300, rand.New(rand.NewSource(9)))
	bPred := b.Predict(2, 2)
	a.MergeWeighted(0.5, []model.Weighted{{M: b, W: 0.5}})
	// Entity (2,2) existed only in b: weights renormalize to b alone, so
	// a adopts b's values exactly (§III-C2).
	if got := a.Predict(2, 2); got != bPred {
		t.Fatalf("adopted prediction %v, want %v", got, bPred)
	}
	if a.NumItems() != 2 || a.NumUsers() != 2 {
		t.Fatalf("union sizes wrong: %d users %d items", a.NumUsers(), a.NumItems())
	}
}

func TestMergeWeightedAverage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitStd = 0 // zero init so values are exactly the trained biases
	a := New(cfg)
	b := New(cfg)
	// Handcraft: set biases via direct table access.
	a.users.vec(0)
	a.users.b[0] = 1.0
	b.users.vec(0)
	b.users.b[0] = 3.0
	a.MergeWeighted(0.25, []model.Weighted{{M: b, W: 0.75}})
	if got := a.users.b[0]; got != 0.25*1.0+0.75*3.0 {
		t.Fatalf("weighted bias %v, want 2.5", got)
	}
}

func TestMergeIncompatibleIgnored(t *testing.T) {
	a := New(DefaultConfig())
	a.users.vec(0)
	a.users.b[0] = 2
	other := DefaultConfig()
	other.K = 20
	b := New(other)
	a.MergeWeighted(0.5, []model.Weighted{{M: b, W: 0.5}})
	if a.users.b[0] != 2 {
		t.Fatal("incompatible merge modified the model")
	}
}

func TestParamCountAndWireSize(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	m.users.vec(0)
	m.items.vec(3)
	m.items.vec(9)
	wantParams := (cfg.K + 1) * 3
	if m.ParamCount() != wantParams {
		t.Fatalf("params %d want %d", m.ParamCount(), wantParams)
	}
	buf, _ := m.Marshal()
	if m.WireSize() != len(buf) {
		t.Fatalf("wire %d vs marshal %d", m.WireSize(), len(buf))
	}
}

// TestMergeCapacityStable guards against the capacity ping-pong regression:
// repeated merging between two models must not balloon allocations.
func TestMergeCapacityStable(t *testing.T) {
	cfg := DefaultConfig()
	a, b := New(cfg), New(cfg)
	rng := rand.New(rand.NewSource(10))
	data := []dataset.Rating{{User: 40, Item: 900, Value: 3}}
	a.Train(data, 10, rng)
	b.Train(data, 10, rng)
	for i := 0; i < 40; i++ {
		a.MergeWeighted(0.5, []model.Weighted{{M: b, W: 0.5}})
		b.MergeWeighted(0.5, []model.Weighted{{M: a, W: 0.5}})
	}
	// The packed layout stores one row per distinct id — a single hot item
	// id (900) must cost one slot, not a 901-entry dense prefix, and
	// repeated merging must not grow the backing arrays at all.
	if c := cap(a.items.b); c > 16 {
		t.Fatalf("packed capacity ballooned to %d slots for 1 item", c)
	}
}

// denseRefMarshal is a test-local dense reference serializer: it produces
// the wire bytes the pre-sparse dense-table layout emitted, computed
// straight from the model's definition — records ascending by id, each
// row re-derived from the (seed, id) init function, biases zero (the
// untrained state). The sparse implementation under test shares none of
// this walk: it serializes via its slot permutation over packed rows.
func denseRefMarshal(cfg Config, userIDs, itemIDs []int) []byte {
	refRow := func(seed uint64, id int) []float32 {
		row := make([]float32, cfg.K)
		h := seed ^ uint64(id)*0x9E3779B97F4A7C15
		for d := range row {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			u := float32(h>>11)/float32(1<<52) - 1
			row[d] = u * 1.7320508 * float32(cfg.InitStd)
		}
		return row
	}
	buf := make([]byte, 0, 16+(8+4*cfg.K)*(len(userIDs)+len(itemIDs)))
	buf = binary.LittleEndian.AppendUint32(buf, magic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cfg.K))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(userIDs)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(itemIDs)))
	emit := func(seed uint64, ids []int) {
		sorted := append([]int(nil), ids...)
		sort.Ints(sorted)
		for _, id := range sorted {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
			buf = binary.LittleEndian.AppendUint32(buf, 0) // zero bias
			for _, x := range refRow(seed, id) {
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
			}
		}
	}
	emit(uint64(cfg.Seed)*2654435761+1, userIDs)
	emit(uint64(cfg.Seed)*2654435761+2, itemIDs)
	return buf
}

// TestSparseDenseMarshalParity is the layout-parity property test: for
// random id sets materialized in random orders, the sparse model's wire
// bytes must equal the dense reference layout's bytes exactly. This is
// the contract that let the sparse tables replace the dense ones without
// re-recording any golden trajectory.
func TestSparseDenseMarshalParity(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(42))
	randIDs := func(n, space int) []int {
		seen := make(map[int]bool, n)
		out := make([]int, 0, n)
		for len(out) < n {
			id := rng.Intn(space)
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		return out
	}
	for trial := 0; trial < 25; trial++ {
		userIDs := randIDs(rng.Intn(40)+1, 500)
		itemIDs := randIDs(rng.Intn(40)+1, 2000)
		m := New(cfg)
		// Touch users and items interleaved, in a random order unrelated
		// to id order, so the packed slot layout is thoroughly shuffled.
		type touch struct {
			tab *table
			id  int
		}
		var touches []touch
		for _, id := range userIDs {
			touches = append(touches, touch{m.users, id})
		}
		for _, id := range itemIDs {
			touches = append(touches, touch{m.items, id})
		}
		rng.Shuffle(len(touches), func(i, j int) { touches[i], touches[j] = touches[j], touches[i] })
		for _, tc := range touches {
			tc.tab.vec(tc.id)
		}
		got, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if want := denseRefMarshal(cfg, userIDs, itemIDs); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: sparse marshal differs from dense reference (%d users, %d items)",
				trial, len(userIDs), len(itemIDs))
		}
	}
}

// TestMarshalTouchOrderInvariance checks the trained case: a model whose
// rows were pre-materialized in a random order before training serializes
// byte-identically to one that materialized them lazily during training.
// Initial embeddings are a pure function of (seed, id) and training never
// consults layout, so only the slot permutation differs — and it must not
// reach the wire.
func TestMarshalTouchOrderInvariance(t *testing.T) {
	ds := trainingData(t)
	data := ds.Ratings[:2000]
	direct := New(DefaultConfig())
	direct.Train(data, 3000, rand.New(rand.NewSource(5)))
	want, err := direct.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		m := New(DefaultConfig())
		// Pre-touch exactly the ids the direct run materialized (training
		// samples steps, so it touches a subset of the data's ids), in a
		// fresh random order each trial.
		for _, s := range rng.Perm(direct.users.count()) {
			m.users.vec(int(direct.users.ids[s]))
		}
		for _, s := range rng.Perm(direct.items.count()) {
			m.items.vec(int(direct.items.ids[s]))
		}
		m.Train(data, 3000, rand.New(rand.NewSource(5)))
		got, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: pre-touched model serializes differently", trial)
		}
	}
}

// TestConcurrentMergeFromSharedSource models the D-PSGD broadcast: one
// payload model is merged as a source by many receivers at once. After
// Canonicalize (which core.Node.Share performs before publication) the
// source must be purely read-only — without it, the lazy ordered()
// rebuild inside mergeTables is a data race the race detector catches
// here — and every receiver must compute byte-identical results.
func TestConcurrentMergeFromSharedSource(t *testing.T) {
	ds := trainingData(t)
	src := New(DefaultConfig())
	src.Train(ds.Ratings, 4000, rand.New(rand.NewSource(3)))
	src.Canonicalize()

	build := func() *Model {
		m := New(DefaultConfig())
		m.Train(ds.Ratings[:500], 2000, rand.New(rand.NewSource(4)))
		return m
	}
	ref := build()
	ref.MergeWeighted(0.5, []model.Weighted{{M: src, W: 0.5}})
	want, err := ref.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	got := make([][]byte, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			m := build()
			m.MergeWeighted(0.5, []model.Weighted{{M: src, W: 0.5}})
			got[r], _ = m.Marshal()
		}(r)
	}
	wg.Wait()
	for r := range got {
		if !bytes.Equal(got[r], want) {
			t.Fatalf("reader %d diverged from the sequential merge", r)
		}
	}
}
