package mf

import (
	"math/rand"
	"testing"
)

// TestDrawIndicesMatchesIntn pins drawIndices' contract: identical index
// values AND identical rng stream consumption to a plain rng.Intn loop,
// across power-of-two, odd, small and large divisors.
func TestDrawIndicesMatchesIntn(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 100, 101, 1024, 99991, 1 << 20, (1 << 28) + 3} {
		a := rand.New(rand.NewSource(11))
		b := rand.New(rand.NewSource(11))
		got := make([]int, 4096)
		drawIndices(got, a, n)
		for j, g := range got {
			if want := b.Intn(n); g != want {
				t.Fatalf("n=%d draw %d: got %d want %d", n, j, g, want)
			}
		}
		// Streams must stay aligned after the batch too.
		if a.Int63() != b.Int63() {
			t.Fatalf("n=%d: rng stream diverged after batch", n)
		}
	}
}
