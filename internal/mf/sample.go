package mf

import (
	"math"
	"math/bits"
	"math/rand"
)

// drawIndices fills batch with exactly the values rng.Intn(n) would
// produce, consuming the rng stream draw-for-draw — same rejection loop,
// same underlying Int31 calls — so training trajectories are unchanged.
// What it removes is math/rand's per-draw 32-bit division: the divisor is
// loop-invariant across a batch, so the modulo is computed with a
// precomputed Lemire fastmod (two 64-bit multiplies), which is worth
// several ns per SGD step. math/rand (v1) is frozen under the Go 1
// compatibility promise, so mirroring Int31n's draw structure is stable.
func drawIndices(batch []int, rng *rand.Rand, n int) {
	if n > math.MaxInt32 {
		// rng.Intn switches to its Int63n path here; no fastmod, but a
		// dataset this size (>2^31 ratings) never fits a node anyway.
		for j := range batch {
			batch[j] = rng.Intn(n)
		}
		return
	}
	if n&(n-1) == 0 {
		// Power of two (including n==1): Int31n masks, no division.
		m := int32(n - 1)
		for j := range batch {
			batch[j] = int(rng.Int31() & m)
		}
		return
	}
	maxV := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	magic := ^uint64(0)/uint64(uint32(n)) + 1
	for j := range batch {
		v := rng.Int31()
		for v > maxV {
			v = rng.Int31()
		}
		// Lemire & Kaser fastmod: exact v % n for 32-bit operands.
		lo := magic * uint64(uint32(v))
		r, _ := bits.Mul64(lo, uint64(uint32(n)))
		batch[j] = int(r)
	}
}
