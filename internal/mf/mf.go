// Package mf implements the biased matrix-factorization recommender of
// paper §II-A-b: rank-k user/item embeddings X, Y with bias vectors b, c,
// trained by SGD on the regularized squared loss
//
//	1/2 Σ (a_ij − b_i − c_j − x_i·y_j)² + λ/2 (‖X‖² + ‖Y‖²)
//
// Predictions are p_ij = x_i·y_j + b_i + c_j. Hyperparameters follow
// §IV-A3a: η = 0.005, λ = 0.1, k = 10.
//
// Storage is sparse: factor rows live densely packed in slot order with a
// compact id→slot hash index on top, so a node's memory is proportional to
// the users/items it has actually trained on or merged in — never to the
// highest id it has ever seen. Marshaling walks ids in ascending order, so
// the wire format is byte-identical to the earlier dense-table layout, and
// initial embeddings stay a pure function of (seed, id), so trajectories
// are bit-identical regardless of storage layout or touch order.
package mf

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"rex/internal/dataset"
	"rex/internal/model"
	"rex/internal/vec"
)

// Config holds MF hyperparameters.
type Config struct {
	K            int     // embedding dimension (paper: 10; Fig 3 sweeps 10..50)
	LearningRate float64 // SGD step size η (paper: 0.005)
	Reg          float64 // regularization λ (paper: 0.1)
	InitStd      float64 // std-dev of embedding initialization
	GlobalMean   float64 // prior used for cold predictions
	Seed         int64   // seed for parameter initialization
}

// DefaultConfig returns the paper's MF hyperparameters (§IV-A3a).
func DefaultConfig() Config {
	return Config{K: 10, LearningRate: 0.005, Reg: 0.1, InitStd: 0.1, GlobalMean: 3.5, Seed: 7}
}

// idIndex is a minimal open-addressing hash from entity id to packed slot:
// linear probing, power-of-two capacity, ~3/4 max load, no deletion. Keys
// are stored as id+1 so the zero value marks an empty cell. At scale this
// costs ~11 bytes per entry versus ~50 for a built-in map — the difference
// between holding 100k sparse nodes and not.
type idIndex struct {
	keys  []int32 // id+1; 0 = empty
	slots []int32
	n     int
}

// get is deliberately loop-free so it inlines into the SGD hot path; the
// probe loop lives in the out-of-line slow path.
func (x *idIndex) get(id int32) (int32, bool) {
	if x.n == 0 {
		return 0, false
	}
	i := (uint32(id) * 2654435761) & uint32(len(x.keys)-1)
	k := x.keys[i]
	if k == id+1 {
		return x.slots[i], true
	}
	if k == 0 {
		return 0, false
	}
	return x.probe(id, i)
}

func (x *idIndex) probe(id int32, i uint32) (int32, bool) {
	mask := uint32(len(x.keys) - 1)
	for {
		i = (i + 1) & mask
		k := x.keys[i]
		if k == id+1 {
			return x.slots[i], true
		}
		if k == 0 {
			return 0, false
		}
	}
}

func (x *idIndex) put(id, slot int32) {
	if 4*(x.n+1) > 3*len(x.keys) {
		x.grow(2 * len(x.keys))
	}
	mask := uint32(len(x.keys) - 1)
	i := (uint32(id) * 2654435761) & mask
	for x.keys[i] != 0 {
		i = (i + 1) & mask
	}
	x.keys[i] = id + 1
	x.slots[i] = slot
	x.n++
}

func (x *idIndex) grow(ncap int) {
	if ncap < 16 {
		ncap = 16
	}
	keys, slots := x.keys, x.slots
	x.keys = make([]int32, ncap)
	x.slots = make([]int32, ncap)
	x.n = 0
	for i, k := range keys {
		if k != 0 {
			x.put(k-1, slots[i])
		}
	}
}

// reserve sizes the index for n entries up front without rehashing.
func (x *idIndex) reserve(n int) {
	c := 16
	for 3*c < 4*n {
		c *= 2
	}
	x.keys = make([]int32, c)
	x.slots = make([]int32, c)
	x.n = 0
}

func (x *idIndex) copyFrom(src *idIndex) {
	x.keys = append(x.keys[:0], src.keys...)
	x.slots = append(x.slots[:0], src.slots...)
	x.n = src.n
}

// table is one side's sparse storage (users or items): factor rows packed
// back to back in materialization order, biases and entity ids alongside,
// and an id→slot index for lookups. An ascending-id slot permutation is
// maintained lazily for the order-sensitive walks (marshal, merge).
type table struct {
	k       int
	seed    uint64
	initStd float32
	f       []float32 // count*k packed factor rows, slot-major
	b       []float32 // count per-slot biases
	ids     []int32   // count slot -> entity id
	idx     idIndex   // entity id -> slot

	order      []int32 // slots in ascending-id order; valid when !orderStale
	orderStale bool
	maxID      int // 1 + highest present id (0 when empty)
}

func newTable(k int, seed uint64, initStd float64) *table {
	return &table{k: k, seed: seed, initStd: float32(initStd)}
}

func (t *table) count() int { return len(t.ids) }

func (t *table) has(id int) bool {
	_, ok := t.idx.get(int32(id))
	return ok
}

// reserve pre-sizes the packed arrays for exactly n rows (merges and
// unmarshal use it so peers' slack capacity never compounds).
func (t *table) reserve(n int) {
	t.f = make([]float32, 0, n*t.k)
	t.b = make([]float32, 0, n)
	t.ids = make([]int32, 0, n)
	t.order = make([]int32, 0, n)
	t.idx.reserve(n)
}

// appendRow adds a zeroed row for a not-yet-present id and returns its slot.
func (t *table) appendRow(id int) int32 {
	slot := int32(len(t.ids))
	n := len(t.f)
	if cap(t.f) < n+t.k {
		grown := make([]float32, n, 2*n+16*t.k)
		copy(grown, t.f)
		t.f = grown
	}
	t.f = t.f[:n+t.k]
	vec.Zero(t.f[n:])
	t.b = append(t.b, 0)
	t.ids = append(t.ids, int32(id))
	t.idx.put(int32(id), slot)
	if !t.orderStale {
		if id >= t.maxID {
			t.order = append(t.order, slot)
		} else {
			t.orderStale = true
		}
	}
	if id+1 > t.maxID {
		t.maxID = id + 1
	}
	return slot
}

// ordered returns the slots in ascending entity-id order, rebuilding the
// permutation only when out-of-order materializations invalidated it.
// Unmarshal and merge materialize ids ascending, so their appends keep the
// permutation valid for free; only random-order training touches pay a sort.
func (t *table) ordered() []int32 {
	if t.orderStale || len(t.order) != len(t.ids) {
		t.order = t.order[:0]
		for s := range t.ids {
			t.order = append(t.order, int32(s))
		}
		sort.Slice(t.order, func(i, j int) bool { return t.ids[t.order[i]] < t.ids[t.order[j]] })
		t.orderStale = false
	}
	return t.order
}

// row returns the factor row stored at slot.
func (t *table) row(slot int32) []float32 {
	return t.f[int(slot)*t.k : (int(slot)+1)*t.k]
}

// vec materializes (if needed) and returns the factor row for id.
func (t *table) vec(id int) []float32 {
	if s, ok := t.idx.get(int32(id)); ok {
		return t.row(s)
	}
	return t.materialize(id)
}

// materialize appends and seeds the row for id. The initial vector is a
// pure function of (seed, id), so two models with equal seeds materialize
// identical embeddings regardless of touch order — mirroring attested
// enclaves sharing initial state.
func (t *table) materialize(id int) []float32 {
	row := t.row(t.appendRow(id))
	h := t.seed ^ uint64(id)*0x9E3779B97F4A7C15
	for d := range row {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		// Uniform in [-sqrt(3), sqrt(3)) * std has variance std^2.
		// Spelled /2^52 rather than the equivalent /2^53*2: powers of
		// two make the two forms bit-identical, but the *2 form gave
		// the arm64 compiler a multiply to contract into the -1 (an
		// FMA skips the intermediate rounding), which would give init
		// embeddings different bits than the amd64-recorded golden
		// trajectories — a division cannot be contracted (see
		// internal/vec's package doc).
		u := float32(h>>11)/float32(1<<52) - 1
		row[d] = u * 1.7320508 * t.initStd
	}
	return row
}

func (t *table) clone() *table {
	c := &table{k: t.k, seed: t.seed, initStd: t.initStd, maxID: t.maxID, orderStale: t.orderStale}
	c.f = append([]float32(nil), t.f...)
	c.b = append([]float32(nil), t.b...)
	c.ids = append([]int32(nil), t.ids...)
	if !t.orderStale {
		c.order = append([]int32(nil), t.order...)
	}
	c.idx.copyFrom(&t.idx)
	return c
}

// copyFrom overwrites t with src's contents, reusing t's backing arrays.
func (t *table) copyFrom(src *table) {
	t.k, t.seed, t.initStd, t.maxID = src.k, src.seed, src.initStd, src.maxID
	t.f = append(t.f[:0], src.f...)
	t.b = append(t.b[:0], src.b...)
	t.ids = append(t.ids[:0], src.ids...)
	t.order = append(t.order[:0], src.order...)
	t.orderStale = src.orderStale
	t.idx.copyFrom(&src.idx)
}

// Model is a biased MF model.
type Model struct {
	cfg   Config
	users *table
	items *table
}

var _ model.Model = (*Model)(nil)

// New creates an empty MF model. Embeddings materialize lazily the first
// time a user/item is touched by training, merging, or unmarshaling.
func New(cfg Config) *Model {
	if cfg.K <= 0 {
		panic("mf: K must be positive")
	}
	return &Model{
		cfg:   cfg,
		users: newTable(cfg.K, uint64(cfg.Seed)*2654435761+1, cfg.InitStd),
		items: newTable(cfg.K, uint64(cfg.Seed)*2654435761+2, cfg.InitStd),
	}
}

// Config returns the model's hyperparameters.
func (m *Model) Config() Config { return m.cfg }

// trainBatch is how many rating indices Train draws per kernel sweep:
// large enough to amortize the sampling loop, small enough that the index
// buffer stays in L1.
const trainBatch = 512

// Train runs `steps` plain SGD steps, each on one rating drawn uniformly
// from data. Fixing steps (rather than sweeping all data) keeps epoch time
// constant as the raw-data store grows, exactly the paper's device in
// §III-E. Steps are processed in batches: each batch's rating indices are
// sampled up front (the rng draw order is identical to the one-at-a-time
// loop) and then applied through the fused vec kernels; because every
// kernel is bit-identical to its scalar loop and updates stay strictly
// sequential, the trajectory matches the pre-batching implementation bit
// for bit (pinned by TestGoldenTrajectory).
func (m *Model) Train(data []dataset.Rating, steps int, rng *rand.Rand) {
	if len(data) == 0 || steps <= 0 {
		return
	}
	k := m.cfg.K
	lr := float32(m.cfg.LearningRate)
	reg := float32(m.cfg.Reg)
	mean := float32(m.cfg.GlobalMean)
	users, items := m.users, m.items
	var idx [trainBatch]int
	for remaining := steps; remaining > 0; {
		bsz := min(trainBatch, remaining)
		batch := idx[:bsz]
		drawIndices(batch, rng, len(data))
		for _, ix := range batch {
			r := data[ix]
			// idIndex.get's fast path inlines here; only a first-touch of
			// an id (or a probe collision) leaves the loop body.
			us, ok := users.idx.get(int32(r.User))
			if !ok {
				users.materialize(int(r.User))
				us, _ = users.idx.get(int32(r.User))
			}
			is, ok := items.idx.get(int32(r.Item))
			if !ok {
				items.materialize(int(r.Item))
				is, _ = items.idx.get(int32(r.Item))
			}
			x := users.f[int(us)*k : (int(us)+1)*k]
			y := items.f[int(is)*k : (int(is)+1)*k]
			users.b[us], items.b[is] = vec.FusedSGDStep(
				x, y, r.Value, mean, users.b[us], items.b[is], lr, reg)
		}
		remaining -= bsz
	}
}

// Predict returns the estimated rating, falling back to bias-only or the
// global mean for unseen entities.
func (m *Model) Predict(user, item uint32) float32 {
	return m.predictOne(int(user), int(item))
}

// PredictBatch implements model.BatchPredictor: out[j] receives exactly
// what Predict(users[j], items[j]) would return.
func (m *Model) PredictBatch(users, items []uint32, out []float32) {
	if len(users) != len(items) || len(users) != len(out) {
		panic("mf: predict batch length mismatch")
	}
	for j := range out {
		out[j] = m.predictOne(int(users[j]), int(items[j]))
	}
}

func (m *Model) predictOne(u, it int) float32 {
	p := float32(m.cfg.GlobalMean)
	us, hasU := m.users.idx.get(int32(u))
	is, hasI := m.items.idx.get(int32(it))
	if hasU {
		p += m.users.b[us]
	}
	if hasI {
		p += m.items.b[is]
	}
	if hasU && hasI {
		p += vec.Dot(m.users.row(us), m.items.row(is))
	}
	return p
}

// ParamCount returns the number of scalar parameters held: (k+1) per known
// user plus (k+1) per known item.
func (m *Model) ParamCount() int {
	return (m.cfg.K + 1) * (m.users.count() + m.items.count())
}

// WireSize implements model.Model: the exact Marshal output length.
func (m *Model) WireSize() int {
	rec := 4 + 4 + 4*m.cfg.K
	return 16 + rec*(m.users.count()+m.items.count())
}

// NumUsers returns how many distinct users the model has embeddings for.
func (m *Model) NumUsers() int { return m.users.count() }

// NumItems returns how many distinct items the model has embeddings for.
func (m *Model) NumItems() int { return m.items.count() }

// Clone returns a deep copy sharing no state.
func (m *Model) Clone() model.Model {
	return &Model{cfg: m.cfg, users: m.users.clone(), items: m.items.clone()}
}

// CopyFrom implements model.Copier: it overwrites m with src's parameters
// while reusing m's backing arrays, so a pooled share buffer refreshed
// every epoch stops allocating once its capacity plateaus.
func (m *Model) CopyFrom(src model.Model) bool {
	o, ok := src.(*Model)
	if !ok || o.cfg != m.cfg {
		return false
	}
	m.users.copyFrom(o.users)
	m.items.copyFrom(o.items)
	return true
}

// Canonicalize implements model.Canonicalizer: it rebuilds the lazy
// ascending-id slot permutations now, on the caller's goroutine. A shared
// payload model must be canonicalized before publication — mergeTables
// and emitTable call ordered() on source tables, and that rebuild is a
// mutation that several receivers merging the same payload concurrently
// must never perform themselves.
func (m *Model) Canonicalize() {
	m.users.ordered()
	m.items.ordered()
}

// MergeWeighted implements model.Model. For each entity, the result is the
// weight-normalized average over the models that actually hold it
// (§III-C2: "when a node has no embedding for a given user or item, we
// consider only those of its neighbors").
func (m *Model) MergeWeighted(selfW float64, others []model.Weighted) {
	userTabs := make([]*table, 0, len(others))
	itemTabs := make([]*table, 0, len(others))
	ws := make([]float32, 0, len(others))
	for _, o := range others {
		om, ok := o.M.(*Model)
		if !ok || om.cfg.K != m.cfg.K {
			continue // incompatible model; cannot average across families
		}
		userTabs = append(userTabs, om.users)
		itemTabs = append(itemTabs, om.items)
		ws = append(ws, float32(o.W))
	}
	if len(ws) == 0 {
		return
	}
	mergeTables(m.users, float32(selfW), userTabs, ws)
	mergeTables(m.items, float32(selfW), itemTabs, ws)
}

// mergeTables folds the source tables into dst in a single ascending-id
// union walk over the tables' ordered slot permutations: each id's
// source-presence set is computed once from the walk cursors and replayed
// through the vec kernels. The id visit order (ascending) and the per-id
// accumulation order — dst scaled first, then each source added in peer
// order — match the dense implementation exactly, so merges stay
// bit-identical to the recorded golden trajectories.
func mergeTables(dst *table, selfW float32, srcs []*table, ws []float32) {
	dstOrd := dst.ordered()
	dpos := 0
	sOrd := make([][]int32, len(srcs))
	pos := make([]int, len(srcs))
	match := make([]bool, len(srcs))
	total := len(dstOrd)
	for i, s := range srcs {
		sOrd[i] = s.ordered()
		total += len(sOrd[i])
	}
	if total == 0 {
		return
	}
	// New dst rows materialize in ascending id order during the walk.
	// dstOrd views dst.order's pre-merge prefix; in-order appends extend
	// past it and cannot disturb the walk.
	for {
		const none = int32(math.MaxInt32)
		id := none
		if dpos < len(dstOrd) {
			id = dst.ids[dstOrd[dpos]]
		}
		for i, s := range srcs {
			if pos[i] < len(sOrd[i]) {
				if v := s.ids[sOrd[i][pos[i]]]; v < id {
					id = v
				}
			}
		}
		if id == none {
			break
		}
		dstHas := dpos < len(dstOrd) && dst.ids[dstOrd[dpos]] == id
		var wsum float32
		if dstHas {
			wsum = selfW
		}
		anyAlien := false
		for si, s := range srcs {
			hit := pos[si] < len(sOrd[si]) && s.ids[sOrd[si][pos[si]]] == id
			match[si] = hit
			if hit {
				wsum += ws[si]
				anyAlien = true
			}
		}
		if anyAlien && wsum != 0 {
			var dslot int32
			if dstHas {
				dslot = dstOrd[dpos]
			} else {
				dslot = dst.appendRow(int(id)) // zeroed row, marked present
			}
			drow := dst.row(dslot)
			var bias float32
			if dstHas {
				w := selfW / wsum
				vec.Scale(w, drow)
				bias = dst.b[dslot] * w
			}
			for si, s := range srcs {
				if !match[si] {
					continue
				}
				w := ws[si] / wsum
				ss := sOrd[si][pos[si]]
				vec.AddScaled(drow, s.row(ss), w)
				// float32(...) bars FMA contraction on arm64 (golden merge
				// hashes are recorded on amd64 — see internal/vec's doc).
				bias += float32(w * s.b[ss])
			}
			dst.b[dslot] = bias
		}
		if dstHas {
			dpos++
		}
		for si := range srcs {
			if match[si] {
				pos[si]++
			}
		}
	}
}

const magic = uint32(0x5245584d) // "REXM"

// maxEntityID bounds user/item ids accepted off the wire (see Unmarshal).
const maxEntityID = 1 << 24

// Marshal serializes the model: magic, K, user count, item count, then
// (id, bias, k floats) records for present users then items, in id order —
// deterministic, so identical models serialize identically.
func (m *Model) Marshal() ([]byte, error) { return m.MarshalAppend(nil) }

// MarshalAppend implements model.AppendMarshaler: it appends the canonical
// serialization to dst and returns the extended slice, growing dst at most
// once. With a reused (or correctly pre-sized) buffer the model's bytes
// are written in place — no append staging, no scratch copies, no per-call
// allocation — which is what a model-sharing node pays per neighbor per
// epoch.
func (m *Model) MarshalAppend(dst []byte) ([]byte, error) {
	need := m.WireSize()
	start := len(dst)
	if cap(dst)-start < need {
		grown := make([]byte, start+need)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:start+need]
	}
	buf := dst[start:]
	binary.LittleEndian.PutUint32(buf, magic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.cfg.K))
	binary.LittleEndian.PutUint32(buf[8:], uint32(m.users.count()))
	binary.LittleEndian.PutUint32(buf[12:], uint32(m.items.count()))
	off := emitTable(buf, 16, m.users)
	emitTable(buf, off, m.items)
	return dst, nil
}

// emitTable writes a table's present records at buf[off:] in ascending id
// order and returns the offset past the last one. A top-level function
// (not a closure) so the write cursor stays in a register on the
// serialization hot path.
func emitTable(buf []byte, off int, t *table) int {
	k := t.k
	for _, slot := range t.ordered() {
		binary.LittleEndian.PutUint32(buf[off:], uint32(t.ids[slot]))
		binary.LittleEndian.PutUint32(buf[off+4:], math.Float32bits(t.b[slot]))
		o := off + 8
		for _, x := range t.f[int(slot)*k : (int(slot)+1)*k] {
			binary.LittleEndian.PutUint32(buf[o:], math.Float32bits(x))
			o += 4
		}
		off = o
	}
	return off
}

// Unmarshal replaces the model's parameters with the serialized ones. The
// serialized K must match the receiver's configuration, and each section's
// record ids must be strictly increasing — Marshal's canonical order — so
// duplicated or reordered records are rejected as corruption. On error the
// receiver is left unchanged.
func (m *Model) Unmarshal(b []byte) error {
	if len(b) < 16 {
		return fmt.Errorf("mf: buffer too short (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b) != magic {
		return fmt.Errorf("mf: bad magic %#x", binary.LittleEndian.Uint32(b))
	}
	k := int(binary.LittleEndian.Uint32(b[4:]))
	if k != m.cfg.K {
		return fmt.Errorf("mf: serialized K=%d, model K=%d", k, m.cfg.K)
	}
	nu := int(binary.LittleEndian.Uint32(b[8:]))
	ni := int(binary.LittleEndian.Uint32(b[12:]))
	rec := 4 + 4 + 4*k
	need := 16 + rec*(nu+ni)
	if len(b) != need {
		return fmt.Errorf("mf: buffer %d bytes, want %d", len(b), need)
	}
	fresh := New(m.cfg)
	off := 16
	read := func(t *table, n int) error {
		if n == 0 {
			return nil
		}
		// Marshal emits records in strictly increasing id order, so the
		// section's last record carries its highest id: validate it before
		// touching the table. (The sparse layout allocates by record count,
		// not by id, so a huge id is no longer a decompression bomb — the
		// bound is kept as a wire-compatibility sanity check: real id
		// spaces here are ~10^4-10^5, anything wildly beyond is corruption.)
		last := int(binary.LittleEndian.Uint32(b[off+(n-1)*rec:]))
		if last > maxEntityID {
			return fmt.Errorf("mf: implausible entity id %d", last)
		}
		t.reserve(n)
		prev := -1
		for i := 0; i < n; i++ {
			id := int(binary.LittleEndian.Uint32(b[off:]))
			if id <= prev || id > last {
				return fmt.Errorf("mf: record %d id %d violates strict id order (previous %d, section max %d)", i, id, prev, last)
			}
			prev = id
			slot := t.appendRow(id)
			t.b[slot] = math.Float32frombits(binary.LittleEndian.Uint32(b[off+4:]))
			row := t.row(slot)
			src := b[off+8 : off+rec]
			for d := range row {
				row[d] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*d:]))
			}
			off += rec
		}
		return nil
	}
	if err := read(fresh.users, nu); err != nil {
		return err
	}
	if err := read(fresh.items, ni); err != nil {
		return err
	}
	m.users, m.items = fresh.users, fresh.items
	return nil
}
