// Package mf implements the biased matrix-factorization recommender of
// paper §II-A-b: rank-k user/item embeddings X, Y with bias vectors b, c,
// trained by SGD on the regularized squared loss
//
//	1/2 Σ (a_ij − b_i − c_j − x_i·y_j)² + λ/2 (‖X‖² + ‖Y‖²)
//
// Predictions are p_ij = x_i·y_j + b_i + c_j. Hyperparameters follow
// §IV-A3a: η = 0.005, λ = 0.1, k = 10.
//
// Storage is dense over the id space with a presence bitmap: a node only
// "has" embeddings for users/items it has trained on or merged in, and
// only those go on the wire, but lookups and merges are flat array walks —
// the hot path of decentralized simulation.
package mf

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"rex/internal/dataset"
	"rex/internal/model"
)

// Config holds MF hyperparameters.
type Config struct {
	K            int     // embedding dimension (paper: 10; Fig 3 sweeps 10..50)
	LearningRate float64 // SGD step size η (paper: 0.005)
	Reg          float64 // regularization λ (paper: 0.1)
	InitStd      float64 // std-dev of embedding initialization
	GlobalMean   float64 // prior used for cold predictions
	Seed         int64   // seed for parameter initialization
}

// DefaultConfig returns the paper's MF hyperparameters (§IV-A3a).
func DefaultConfig() Config {
	return Config{K: 10, LearningRate: 0.005, Reg: 0.1, InitStd: 0.1, GlobalMean: 3.5, Seed: 7}
}

// table is one side's dense storage (users or items).
type table struct {
	k       int
	seed    uint64
	initStd float32
	f       []float32 // cap*k factor values
	b       []float32 // cap biases
	present []bool    // cap presence flags
	count   int       // number of present entries
	maxID   int       // 1 + highest present id (0 when empty)
}

func newTable(k int, seed uint64, initStd float64) *table {
	return &table{k: k, seed: seed, initStd: float32(initStd)}
}

func (t *table) grow(id int) { t.growCap(id, true) }

// growCap ensures capacity for id. With round=true the capacity doubles
// (amortized growth on the training path); round=false allocates exactly,
// which merges use so peers' slack capacity never compounds.
func (t *table) growCap(id int, round bool) {
	if id < len(t.present) {
		return
	}
	ncap := id + 1
	if round {
		if d := len(t.present) * 2; d > ncap {
			ncap = d
		}
		if ncap < 16 {
			ncap = 16
		}
	}
	f := make([]float32, ncap*t.k)
	copy(f, t.f)
	b := make([]float32, ncap)
	copy(b, t.b)
	p := make([]bool, ncap)
	copy(p, t.present)
	t.f, t.b, t.present = f, b, p
}

// vec materializes (if needed) and returns the factor row for id. The
// initial vector is a pure function of (seed, id), so two models with equal
// seeds materialize identical embeddings regardless of touch order —
// mirroring attested enclaves sharing initial state.
func (t *table) vec(id int) []float32 {
	t.grow(id)
	row := t.f[id*t.k : (id+1)*t.k]
	if !t.present[id] {
		h := t.seed ^ uint64(id)*0x9E3779B97F4A7C15
		for d := range row {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			// Uniform in [-sqrt(3), sqrt(3)) * std has variance std^2.
			u := float32(h>>11)/float32(1<<53)*2 - 1
			row[d] = u * 1.7320508 * t.initStd
		}
		t.present[id] = true
		t.count++
		if id+1 > t.maxID {
			t.maxID = id + 1
		}
	}
	return row
}

func (t *table) has(id int) bool { return id < len(t.present) && t.present[id] }

func (t *table) clone() *table {
	// Copy only the live prefix; slack capacity is an allocation artifact.
	n := t.maxID
	c := &table{k: t.k, seed: t.seed, initStd: t.initStd, count: t.count, maxID: t.maxID}
	c.f = append([]float32(nil), t.f[:n*t.k]...)
	c.b = append([]float32(nil), t.b[:n]...)
	c.present = append([]bool(nil), t.present[:n]...)
	return c
}

// Model is a biased MF model.
type Model struct {
	cfg   Config
	users *table
	items *table
}

var _ model.Model = (*Model)(nil)

// New creates an empty MF model. Embeddings materialize lazily the first
// time a user/item is touched by training, merging, or unmarshaling.
func New(cfg Config) *Model {
	if cfg.K <= 0 {
		panic("mf: K must be positive")
	}
	return &Model{
		cfg:   cfg,
		users: newTable(cfg.K, uint64(cfg.Seed)*2654435761+1, cfg.InitStd),
		items: newTable(cfg.K, uint64(cfg.Seed)*2654435761+2, cfg.InitStd),
	}
}

// Config returns the model's hyperparameters.
func (m *Model) Config() Config { return m.cfg }

// Train runs `steps` plain SGD steps, each on one rating drawn uniformly
// from data. Fixing steps (rather than sweeping all data) keeps epoch time
// constant as the raw-data store grows, exactly the paper's device in
// §III-E.
func (m *Model) Train(data []dataset.Rating, steps int, rng *rand.Rand) {
	if len(data) == 0 || steps <= 0 {
		return
	}
	k := m.cfg.K
	lr := float32(m.cfg.LearningRate)
	reg := float32(m.cfg.Reg)
	mean := float32(m.cfg.GlobalMean)
	for s := 0; s < steps; s++ {
		r := data[rng.Intn(len(data))]
		u, it := int(r.User), int(r.Item)
		x := m.users.vec(u)
		y := m.items.vec(it)
		var dot float32
		for d := 0; d < k; d++ {
			dot += x[d] * y[d]
		}
		pred := mean + m.users.b[u] + m.items.b[it] + dot
		e := r.Value - pred
		m.users.b[u] += lr * (e - reg*m.users.b[u])
		m.items.b[it] += lr * (e - reg*m.items.b[it])
		for d := 0; d < k; d++ {
			xd, yd := x[d], y[d]
			x[d] += lr * (e*yd - reg*xd)
			y[d] += lr * (e*xd - reg*yd)
		}
	}
}

// Predict returns the estimated rating, falling back to bias-only or the
// global mean for unseen entities.
func (m *Model) Predict(user, item uint32) float32 {
	u, it := int(user), int(item)
	p := float32(m.cfg.GlobalMean)
	hasU := m.users.has(u)
	hasI := m.items.has(it)
	if hasU {
		p += m.users.b[u]
	}
	if hasI {
		p += m.items.b[it]
	}
	if hasU && hasI {
		x := m.users.f[u*m.cfg.K:]
		y := m.items.f[it*m.cfg.K:]
		for d := 0; d < m.cfg.K; d++ {
			p += x[d] * y[d]
		}
	}
	return p
}

// ParamCount returns the number of scalar parameters held: (k+1) per known
// user plus (k+1) per known item.
func (m *Model) ParamCount() int {
	return (m.cfg.K + 1) * (m.users.count + m.items.count)
}

// WireSize implements model.Model: the exact Marshal output length.
func (m *Model) WireSize() int {
	rec := 4 + 4 + 4*m.cfg.K
	return 16 + rec*(m.users.count+m.items.count)
}

// NumUsers returns how many distinct users the model has embeddings for.
func (m *Model) NumUsers() int { return m.users.count }

// NumItems returns how many distinct items the model has embeddings for.
func (m *Model) NumItems() int { return m.items.count }

// Clone returns a deep copy sharing no state.
func (m *Model) Clone() model.Model {
	return &Model{cfg: m.cfg, users: m.users.clone(), items: m.items.clone()}
}

// MergeWeighted implements model.Model. For each entity, the result is the
// weight-normalized average over the models that actually hold it
// (§III-C2: "when a node has no embedding for a given user or item, we
// consider only those of its neighbors").
func (m *Model) MergeWeighted(selfW float64, others []model.Weighted) {
	srcs := make([]*Model, 0, len(others))
	ws := make([]float32, 0, len(others))
	for _, o := range others {
		om, ok := o.M.(*Model)
		if !ok || om.cfg.K != m.cfg.K {
			continue // incompatible model; cannot average across families
		}
		srcs = append(srcs, om)
		ws = append(ws, float32(o.W))
	}
	if len(srcs) == 0 {
		return
	}
	mergeTables(m.users, float32(selfW), srcs, ws, func(s *Model) *table { return s.users })
	mergeTables(m.items, float32(selfW), srcs, ws, func(s *Model) *table { return s.items })
}

func mergeTables(dst *table, selfW float32, srcs []*Model, ws []float32, side func(*Model) *table) {
	// Size dst to the union of live id ranges (not capacities) exactly.
	maxLen := dst.maxID
	for _, s := range srcs {
		if l := side(s).maxID; l > maxLen {
			maxLen = l
		}
	}
	if maxLen > 0 {
		dst.growCap(maxLen-1, false)
	}
	k := dst.k
	for id := 0; id < maxLen; id++ {
		var wsum float32
		if dst.present[id] {
			wsum = selfW
		}
		anyAlien := false
		for si, s := range srcs {
			if side(s).has(id) {
				wsum += ws[si]
				anyAlien = true
			}
		}
		if !anyAlien || wsum == 0 {
			continue // nothing new for this entity
		}
		drow := dst.f[id*k : (id+1)*k]
		var bias float32
		if dst.present[id] {
			w := selfW / wsum
			for d := range drow {
				drow[d] *= w
			}
			bias = dst.b[id] * w
		} else {
			for d := range drow {
				drow[d] = 0
			}
			dst.present[id] = true
			dst.count++
			if id+1 > dst.maxID {
				dst.maxID = id + 1
			}
		}
		for si, s := range srcs {
			st := side(s)
			if !st.has(id) {
				continue
			}
			w := ws[si] / wsum
			srow := st.f[id*k : (id+1)*k]
			for d := range drow {
				drow[d] += w * srow[d]
			}
			bias += w * st.b[id]
		}
		dst.b[id] = bias
	}
}

const magic = uint32(0x5245584d) // "REXM"

// Marshal serializes the model: magic, K, user count, item count, then
// (id, bias, k floats) records for present users then items, in id order —
// deterministic, so identical models serialize identically.
func (m *Model) Marshal() ([]byte, error) {
	rec := 4 + 4 + 4*m.cfg.K
	buf := make([]byte, 16, 16+rec*(m.users.count+m.items.count))
	binary.LittleEndian.PutUint32(buf, magic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.cfg.K))
	binary.LittleEndian.PutUint32(buf[8:], uint32(m.users.count))
	binary.LittleEndian.PutUint32(buf[12:], uint32(m.items.count))
	var scratch [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	emit := func(t *table) {
		for id := 0; id < len(t.present); id++ {
			if !t.present[id] {
				continue
			}
			put32(uint32(id))
			put32(math.Float32bits(t.b[id]))
			row := t.f[id*t.k : (id+1)*t.k]
			for _, x := range row {
				put32(math.Float32bits(x))
			}
		}
	}
	emit(m.users)
	emit(m.items)
	return buf, nil
}

// Unmarshal replaces the model's parameters with the serialized ones. The
// serialized K must match the receiver's configuration.
func (m *Model) Unmarshal(b []byte) error {
	if len(b) < 16 {
		return fmt.Errorf("mf: buffer too short (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b) != magic {
		return fmt.Errorf("mf: bad magic %#x", binary.LittleEndian.Uint32(b))
	}
	k := int(binary.LittleEndian.Uint32(b[4:]))
	if k != m.cfg.K {
		return fmt.Errorf("mf: serialized K=%d, model K=%d", k, m.cfg.K)
	}
	nu := int(binary.LittleEndian.Uint32(b[8:]))
	ni := int(binary.LittleEndian.Uint32(b[12:]))
	rec := 4 + 4 + 4*k
	need := 16 + rec*(nu+ni)
	if len(b) != need {
		return fmt.Errorf("mf: buffer %d bytes, want %d", len(b), need)
	}
	fresh := New(m.cfg)
	off := 16
	read := func(t *table, n int) error {
		for i := 0; i < n; i++ {
			id := int(binary.LittleEndian.Uint32(b[off:]))
			if id > 1<<28 {
				return fmt.Errorf("mf: implausible entity id %d", id)
			}
			row := t.vec(id) // materializes, marks present
			t.b[id] = math.Float32frombits(binary.LittleEndian.Uint32(b[off+4:]))
			for d := 0; d < k; d++ {
				row[d] = math.Float32frombits(binary.LittleEndian.Uint32(b[off+8+4*d:]))
			}
			off += rec
		}
		return nil
	}
	if err := read(fresh.users, nu); err != nil {
		return err
	}
	if err := read(fresh.items, ni); err != nil {
		return err
	}
	m.users, m.items = fresh.users, fresh.items
	return nil
}
