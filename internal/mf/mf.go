// Package mf implements the biased matrix-factorization recommender of
// paper §II-A-b: rank-k user/item embeddings X, Y with bias vectors b, c,
// trained by SGD on the regularized squared loss
//
//	1/2 Σ (a_ij − b_i − c_j − x_i·y_j)² + λ/2 (‖X‖² + ‖Y‖²)
//
// Predictions are p_ij = x_i·y_j + b_i + c_j. Hyperparameters follow
// §IV-A3a: η = 0.005, λ = 0.1, k = 10.
//
// Storage is dense over the id space with a presence bitmap: a node only
// "has" embeddings for users/items it has trained on or merged in, and
// only those go on the wire, but lookups and merges are flat array walks —
// the hot path of decentralized simulation.
package mf

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"rex/internal/dataset"
	"rex/internal/model"
	"rex/internal/vec"
)

// Config holds MF hyperparameters.
type Config struct {
	K            int     // embedding dimension (paper: 10; Fig 3 sweeps 10..50)
	LearningRate float64 // SGD step size η (paper: 0.005)
	Reg          float64 // regularization λ (paper: 0.1)
	InitStd      float64 // std-dev of embedding initialization
	GlobalMean   float64 // prior used for cold predictions
	Seed         int64   // seed for parameter initialization
}

// DefaultConfig returns the paper's MF hyperparameters (§IV-A3a).
func DefaultConfig() Config {
	return Config{K: 10, LearningRate: 0.005, Reg: 0.1, InitStd: 0.1, GlobalMean: 3.5, Seed: 7}
}

// table is one side's dense storage (users or items).
type table struct {
	k       int
	seed    uint64
	initStd float32
	f       []float32 // cap*k factor values
	b       []float32 // cap biases
	present []bool    // cap presence flags
	count   int       // number of present entries
	maxID   int       // 1 + highest present id (0 when empty)
}

func newTable(k int, seed uint64, initStd float64) *table {
	return &table{k: k, seed: seed, initStd: float32(initStd)}
}

func (t *table) grow(id int) { t.growCap(id, true) }

// growCap ensures capacity for id. With round=true the capacity doubles
// (amortized growth on the training path); round=false allocates exactly,
// which merges use so peers' slack capacity never compounds.
func (t *table) growCap(id int, round bool) {
	if id < len(t.present) {
		return
	}
	ncap := id + 1
	if round {
		if d := len(t.present) * 2; d > ncap {
			ncap = d
		}
		if ncap < 16 {
			ncap = 16
		}
	}
	f := make([]float32, ncap*t.k)
	copy(f, t.f)
	b := make([]float32, ncap)
	copy(b, t.b)
	p := make([]bool, ncap)
	copy(p, t.present)
	t.f, t.b, t.present = f, b, p
}

// vec materializes (if needed) and returns the factor row for id. The
// initial vector is a pure function of (seed, id), so two models with equal
// seeds materialize identical embeddings regardless of touch order —
// mirroring attested enclaves sharing initial state.
func (t *table) vec(id int) []float32 {
	t.grow(id)
	row := t.f[id*t.k : (id+1)*t.k]
	if !t.present[id] {
		h := t.seed ^ uint64(id)*0x9E3779B97F4A7C15
		for d := range row {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			// Uniform in [-sqrt(3), sqrt(3)) * std has variance std^2.
			// Spelled /2^52 rather than the equivalent /2^53*2: powers of
			// two make the two forms bit-identical, but the *2 form gave
			// the arm64 compiler a multiply to contract into the -1 (an
			// FMA skips the intermediate rounding), which would give init
			// embeddings different bits than the amd64-recorded golden
			// trajectories — a division cannot be contracted (see
			// internal/vec's package doc).
			u := float32(h>>11)/float32(1<<52) - 1
			row[d] = u * 1.7320508 * t.initStd
		}
		t.present[id] = true
		t.count++
		if id+1 > t.maxID {
			t.maxID = id + 1
		}
	}
	return row
}

func (t *table) has(id int) bool { return id < len(t.present) && t.present[id] }

func (t *table) clone() *table {
	// Copy only the live prefix; slack capacity is an allocation artifact.
	n := t.maxID
	c := &table{k: t.k, seed: t.seed, initStd: t.initStd, count: t.count, maxID: t.maxID}
	c.f = append([]float32(nil), t.f[:n*t.k]...)
	c.b = append([]float32(nil), t.b[:n]...)
	c.present = append([]bool(nil), t.present[:n]...)
	return c
}

// Model is a biased MF model.
type Model struct {
	cfg   Config
	users *table
	items *table
}

var _ model.Model = (*Model)(nil)

// New creates an empty MF model. Embeddings materialize lazily the first
// time a user/item is touched by training, merging, or unmarshaling.
func New(cfg Config) *Model {
	if cfg.K <= 0 {
		panic("mf: K must be positive")
	}
	return &Model{
		cfg:   cfg,
		users: newTable(cfg.K, uint64(cfg.Seed)*2654435761+1, cfg.InitStd),
		items: newTable(cfg.K, uint64(cfg.Seed)*2654435761+2, cfg.InitStd),
	}
}

// Config returns the model's hyperparameters.
func (m *Model) Config() Config { return m.cfg }

// trainBatch is how many rating indices Train draws per kernel sweep:
// large enough to amortize the sampling loop, small enough that the index
// buffer stays in L1.
const trainBatch = 512

// Train runs `steps` plain SGD steps, each on one rating drawn uniformly
// from data. Fixing steps (rather than sweeping all data) keeps epoch time
// constant as the raw-data store grows, exactly the paper's device in
// §III-E. Steps are processed in batches: each batch's rating indices are
// sampled up front (the rng draw order is identical to the one-at-a-time
// loop) and then applied through the fused vec kernels; because every
// kernel is bit-identical to its scalar loop and updates stay strictly
// sequential, the trajectory matches the pre-batching implementation bit
// for bit (pinned by TestGoldenTrajectory).
func (m *Model) Train(data []dataset.Rating, steps int, rng *rand.Rand) {
	if len(data) == 0 || steps <= 0 {
		return
	}
	k := m.cfg.K
	lr := float32(m.cfg.LearningRate)
	reg := float32(m.cfg.Reg)
	mean := float32(m.cfg.GlobalMean)
	users, items := m.users, m.items
	var idx [trainBatch]int
	for remaining := steps; remaining > 0; {
		bsz := min(trainBatch, remaining)
		batch := idx[:bsz]
		drawIndices(batch, rng, len(data))
		for _, ix := range batch {
			r := data[ix]
			u, it := int(r.User), int(r.Item)
			// Inlined present-row fast paths: a helper carrying the
			// materialize fallback exceeds the inlining budget, and the
			// call overhead is visible at this loop's ~25ns/step scale.
			var x, y []float32
			if u < len(users.present) && users.present[u] {
				x = users.f[u*k : (u+1)*k]
			} else {
				x = users.vec(u)
			}
			if it < len(items.present) && items.present[it] {
				y = items.f[it*k : (it+1)*k]
			} else {
				y = items.vec(it)
			}
			users.b[u], items.b[it] = vec.FusedSGDStep(
				x, y, r.Value, mean, users.b[u], items.b[it], lr, reg)
		}
		remaining -= bsz
	}
}

// Predict returns the estimated rating, falling back to bias-only or the
// global mean for unseen entities.
func (m *Model) Predict(user, item uint32) float32 {
	return m.predictOne(int(user), int(item))
}

// PredictBatch implements model.BatchPredictor: out[j] receives exactly
// what Predict(users[j], items[j]) would return.
func (m *Model) PredictBatch(users, items []uint32, out []float32) {
	if len(users) != len(items) || len(users) != len(out) {
		panic("mf: predict batch length mismatch")
	}
	for j := range out {
		out[j] = m.predictOne(int(users[j]), int(items[j]))
	}
}

func (m *Model) predictOne(u, it int) float32 {
	p := float32(m.cfg.GlobalMean)
	hasU := m.users.has(u)
	hasI := m.items.has(it)
	if hasU {
		p += m.users.b[u]
	}
	if hasI {
		p += m.items.b[it]
	}
	if hasU && hasI {
		k := m.cfg.K
		p += vec.Dot(m.users.f[u*k:(u+1)*k], m.items.f[it*k:(it+1)*k])
	}
	return p
}

// ParamCount returns the number of scalar parameters held: (k+1) per known
// user plus (k+1) per known item.
func (m *Model) ParamCount() int {
	return (m.cfg.K + 1) * (m.users.count + m.items.count)
}

// WireSize implements model.Model: the exact Marshal output length.
func (m *Model) WireSize() int {
	rec := 4 + 4 + 4*m.cfg.K
	return 16 + rec*(m.users.count+m.items.count)
}

// NumUsers returns how many distinct users the model has embeddings for.
func (m *Model) NumUsers() int { return m.users.count }

// NumItems returns how many distinct items the model has embeddings for.
func (m *Model) NumItems() int { return m.items.count }

// Clone returns a deep copy sharing no state.
func (m *Model) Clone() model.Model {
	return &Model{cfg: m.cfg, users: m.users.clone(), items: m.items.clone()}
}

// MergeWeighted implements model.Model. For each entity, the result is the
// weight-normalized average over the models that actually hold it
// (§III-C2: "when a node has no embedding for a given user or item, we
// consider only those of its neighbors").
func (m *Model) MergeWeighted(selfW float64, others []model.Weighted) {
	userTabs := make([]*table, 0, len(others))
	itemTabs := make([]*table, 0, len(others))
	ws := make([]float32, 0, len(others))
	for _, o := range others {
		om, ok := o.M.(*Model)
		if !ok || om.cfg.K != m.cfg.K {
			continue // incompatible model; cannot average across families
		}
		userTabs = append(userTabs, om.users)
		itemTabs = append(itemTabs, om.items)
		ws = append(ws, float32(o.W))
	}
	if len(ws) == 0 {
		return
	}
	mergeTables(m.users, float32(selfW), userTabs, ws)
	mergeTables(m.items, float32(selfW), itemTabs, ws)
}

// mergeTables folds the source tables into dst in a single pass over the
// union id range: each id's source-presence set is computed once (as a
// bitmask when fan-in allows) and then replayed through the vec kernels,
// instead of re-walking the sources per phase. The accumulation order —
// dst scaled first, then each source added in peer order — matches the
// scalar implementation exactly, so merges stay bit-identical.
func mergeTables(dst *table, selfW float32, srcs []*table, ws []float32) {
	// Size dst to the union of live id ranges (not capacities) exactly.
	maxLen := dst.maxID
	for _, s := range srcs {
		if s.maxID > maxLen {
			maxLen = s.maxID
		}
	}
	if maxLen == 0 {
		return
	}
	dst.growCap(maxLen-1, false)
	k := dst.k
	useMask := len(srcs) <= 64
	for id := 0; id < maxLen; id++ {
		var wsum float32
		if dst.present[id] {
			wsum = selfW
		}
		var mask uint64
		anyAlien := false
		for si, s := range srcs {
			if s.has(id) {
				wsum += ws[si]
				anyAlien = true
				if useMask {
					mask |= 1 << uint(si)
				}
			}
		}
		if !anyAlien || wsum == 0 {
			continue // nothing new for this entity
		}
		drow := dst.f[id*k : (id+1)*k]
		var bias float32
		if dst.present[id] {
			w := selfW / wsum
			vec.Scale(w, drow)
			bias = dst.b[id] * w
		} else {
			vec.Zero(drow)
			dst.present[id] = true
			dst.count++
			if id+1 > dst.maxID {
				dst.maxID = id + 1
			}
		}
		for si, s := range srcs {
			if useMask {
				if mask&(1<<uint(si)) == 0 {
					continue
				}
			} else if !s.has(id) {
				continue
			}
			w := ws[si] / wsum
			vec.AddScaled(drow, s.f[id*k:(id+1)*k], w)
			// float32(...) bars FMA contraction on arm64 (golden merge
			// hashes are recorded on amd64 — see internal/vec's doc).
			bias += float32(w * s.b[id])
		}
		dst.b[id] = bias
	}
}

const magic = uint32(0x5245584d) // "REXM"

// maxEntityID bounds user/item ids accepted off the wire (see Unmarshal).
const maxEntityID = 1 << 24

// Marshal serializes the model: magic, K, user count, item count, then
// (id, bias, k floats) records for present users then items, in id order —
// deterministic, so identical models serialize identically.
func (m *Model) Marshal() ([]byte, error) { return m.MarshalAppend(nil) }

// MarshalAppend implements model.AppendMarshaler: it appends the canonical
// serialization to dst and returns the extended slice, growing dst at most
// once. With a reused (or correctly pre-sized) buffer the model's bytes
// are written in place — no append staging, no scratch copies, no per-call
// allocation — which is what a model-sharing node pays per neighbor per
// epoch.
func (m *Model) MarshalAppend(dst []byte) ([]byte, error) {
	need := m.WireSize()
	start := len(dst)
	if cap(dst)-start < need {
		grown := make([]byte, start+need)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:start+need]
	}
	buf := dst[start:]
	binary.LittleEndian.PutUint32(buf, magic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.cfg.K))
	binary.LittleEndian.PutUint32(buf[8:], uint32(m.users.count))
	binary.LittleEndian.PutUint32(buf[12:], uint32(m.items.count))
	off := emitTable(buf, 16, m.users)
	emitTable(buf, off, m.items)
	return dst, nil
}

// emitTable writes a table's present records at buf[off:] and returns the
// offset past the last one. A top-level function (not a closure) so the
// write cursor stays in a register on the serialization hot path.
func emitTable(buf []byte, off int, t *table) int {
	k := t.k
	for id := 0; id < t.maxID; id++ {
		if !t.present[id] {
			continue
		}
		binary.LittleEndian.PutUint32(buf[off:], uint32(id))
		binary.LittleEndian.PutUint32(buf[off+4:], math.Float32bits(t.b[id]))
		o := off + 8
		for _, x := range t.f[id*k : (id+1)*k] {
			binary.LittleEndian.PutUint32(buf[o:], math.Float32bits(x))
			o += 4
		}
		off = o
	}
	return off
}

// Unmarshal replaces the model's parameters with the serialized ones. The
// serialized K must match the receiver's configuration, and each section's
// record ids must be strictly increasing — Marshal's canonical order — so
// duplicated or reordered records are rejected as corruption. On error the
// receiver is left unchanged.
func (m *Model) Unmarshal(b []byte) error {
	if len(b) < 16 {
		return fmt.Errorf("mf: buffer too short (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b) != magic {
		return fmt.Errorf("mf: bad magic %#x", binary.LittleEndian.Uint32(b))
	}
	k := int(binary.LittleEndian.Uint32(b[4:]))
	if k != m.cfg.K {
		return fmt.Errorf("mf: serialized K=%d, model K=%d", k, m.cfg.K)
	}
	nu := int(binary.LittleEndian.Uint32(b[8:]))
	ni := int(binary.LittleEndian.Uint32(b[12:]))
	rec := 4 + 4 + 4*k
	need := 16 + rec*(nu+ni)
	if len(b) != need {
		return fmt.Errorf("mf: buffer %d bytes, want %d", len(b), need)
	}
	fresh := New(m.cfg)
	off := 16
	read := func(t *table, n int) error {
		if n == 0 {
			return nil
		}
		// Marshal emits records in strictly increasing id order, so the
		// section's last record carries its highest id: validate it, then
		// allocate the table exactly once for the whole bulk copy.
		last := int(binary.LittleEndian.Uint32(b[off+(n-1)*rec:]))
		if last > maxEntityID {
			// A dense table is allocated up to the highest id, so a tiny
			// frame claiming a huge id would be a decompression bomb
			// (64 bytes of wire -> gigabytes of table). Real id spaces
			// here are ~10^4-10^5; reject anything wildly beyond them.
			return fmt.Errorf("mf: implausible entity id %d", last)
		}
		t.growCap(last, false)
		prev := -1
		for i := 0; i < n; i++ {
			id := int(binary.LittleEndian.Uint32(b[off:]))
			if id <= prev || id > last {
				return fmt.Errorf("mf: record %d id %d violates strict id order (previous %d, section max %d)", i, id, prev, last)
			}
			prev = id
			t.present[id] = true
			t.count++
			if id+1 > t.maxID {
				t.maxID = id + 1
			}
			t.b[id] = math.Float32frombits(binary.LittleEndian.Uint32(b[off+4:]))
			row := t.f[id*k : (id+1)*k]
			src := b[off+8 : off+rec]
			for d := range row {
				row[d] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*d:]))
			}
			off += rec
		}
		return nil
	}
	if err := read(fresh.users, nu); err != nil {
		return err
	}
	if err := read(fresh.items, ni); err != nil {
		return err
	}
	m.users, m.items = fresh.users, fresh.items
	return nil
}
