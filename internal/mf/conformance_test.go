package mf_test

import (
	"math/rand"
	"testing"

	"rex/internal/dataset"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/model/modeltest"
)

// TestConformance runs the shared model.Model invariant suite against the
// MF implementation (external test package: the suite sees exactly the
// exported surface the protocol sees).
func TestConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := make([]dataset.Rating, 600)
	for i := range data {
		data[i] = dataset.Rating{
			User:  uint32(rng.Intn(40)),
			Item:  uint32(rng.Intn(120)),
			Value: float32(rng.Intn(9)+1) / 2,
		}
	}
	modeltest.Run(t, modeltest.Config{
		New:        func() model.Model { return mf.New(mf.DefaultConfig()) },
		Data:       data,
		OOVUser:    90_000,
		OOVItem:    90_001,
		TrainSteps: 2000,
	})
}
