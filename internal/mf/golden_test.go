package mf

import (
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"testing"

	"rex/internal/dataset"
	"rex/internal/model"
	"rex/internal/vec"
)

// goldenRatings builds a fixed synthetic workload, self-contained so the
// golden hashes below never depend on the movielens generator.
func goldenRatings(seed int64, n int) []dataset.Rating {
	rng := rand.New(rand.NewSource(seed))
	out := make([]dataset.Rating, n)
	for i := range out {
		out[i] = dataset.Rating{
			User:  uint32(rng.Intn(200)),
			Item:  uint32(rng.Intn(500)),
			Value: float32(rng.Intn(9)+1) / 2, // 0.5 .. 4.5 half-stars
		}
	}
	return out
}

func modelDigest(t *testing.T, m *Model) string {
	t.Helper()
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// TestGoldenTrajectory pins the exact float32 training/merge trajectory of
// the scalar pre-refactor implementation: Train must consume the rng in the
// same draw order and produce bit-identical parameters, MergeWeighted must
// reproduce the same weighted union, and Marshal the same canonical bytes.
// Any change to these hashes is a results change and must be owned loudly.
func TestGoldenTrajectory(t *testing.T) {
	runGoldenTrajectory(t)
}

// TestGoldenTrajectoryEveryVecImpl re-pins the exact same hashes with
// dispatch forced onto each kernel implementation this machine offers
// (avx2/sse2/neon/go): the SIMD paths must reproduce the scalar
// trajectory bit for bit, not merely converge to similar RMSE. The CI
// forced-path sweep additionally runs the whole suite under each REX_VEC
// value, and the arm64 job runs this test on real NEON hardware.
func TestGoldenTrajectoryEveryVecImpl(t *testing.T) {
	prev := vec.Impl()
	defer func() {
		if err := vec.Use(prev); err != nil {
			t.Fatal(err)
		}
	}()
	for _, name := range vec.Available() {
		t.Run(name, func(t *testing.T) {
			if err := vec.Use(name); err != nil {
				t.Fatal(err)
			}
			runGoldenTrajectory(t)
		})
	}
}

func runGoldenTrajectory(t *testing.T) {
	t.Helper()
	data := goldenRatings(42, 4000)
	dataB := goldenRatings(43, 4000)

	a := New(DefaultConfig())
	a.Train(data, 20_000, rand.New(rand.NewSource(1)))
	if got, want := modelDigest(t, a), goldenAfterTrain; got != want {
		t.Errorf("train trajectory diverged:\n got %s\nwant %s", got, want)
	}

	b := New(DefaultConfig())
	b.Train(dataB, 20_000, rand.New(rand.NewSource(2)))
	a.MergeWeighted(0.25, []model.Weighted{{M: b, W: 0.75}})
	if got, want := modelDigest(t, a), goldenAfterMerge; got != want {
		t.Errorf("merge result diverged:\n got %s\nwant %s", got, want)
	}

	// Train on top of the merged state: the full epoch cycle stays pinned.
	a.Train(data, 5_000, rand.New(rand.NewSource(3)))
	if got, want := modelDigest(t, a), goldenAfterRetrain; got != want {
		t.Errorf("post-merge train trajectory diverged:\n got %s\nwant %s", got, want)
	}
}

// Golden SHA-256 digests of Marshal output, recorded from the scalar
// implementation at the commit introducing internal/vec.
const (
	goldenAfterTrain   = "e4f7c341d58361600ac897e9c2c18452041850bc8d24b8040bc502d11b1acb12"
	goldenAfterMerge   = "29fc8945cc4b41c7c27ad711793a7e5971e7bcb29d30115ffd8ac24507419228"
	goldenAfterRetrain = "d0497bdc4f47e4f71fc779b611db1629b0fa09ad940070d9e279b50e9e70f6a7"
)
