package mf

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"rex/internal/dataset"
)

// FuzzUnmarshal throws arbitrary bytes at the model deserializer — the
// bytes every model-sharing node accepts from its peers. Malformed,
// truncated, duplicated or reordered records must produce an error and
// leave the receiver untouched, never panic; a successful decode must
// re-marshal to the same canonical bytes.
func FuzzUnmarshal(f *testing.F) {
	cfg := DefaultConfig()
	// Seed corpus: an empty model, a trained model, and a trained model
	// with flipped bytes at structurally interesting offsets.
	empty, _ := New(cfg).Marshal()
	f.Add(empty)
	m := New(cfg)
	m.Train([]dataset.Rating{
		{User: 0, Item: 1, Value: 4}, {User: 2, Item: 5, Value: 1.5}, {User: 7, Item: 1, Value: 3},
	}, 200, rand.New(rand.NewSource(3)))
	good, err := m.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	for _, off := range []int{0, 4, 8, 12, 16, 20, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xff
		f.Add(bad)
	}
	f.Add(good[:len(good)-3]) // truncated
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		if allocHeavy(b, cfg.K) {
			t.Skip("alloc-heavy body (legal large-id model, too slow to fuzz)")
		}
		dst := New(cfg)
		if err := dst.Unmarshal(b); err != nil {
			// On error the receiver must be untouched: still empty.
			if dst.ParamCount() != 0 {
				t.Fatalf("failed Unmarshal mutated the receiver (%d params)", dst.ParamCount())
			}
			return
		}
		// Canonical roundtrip: a decoded model re-marshals to the exact
		// accepted bytes (Marshal's strict id order makes this total).
		out, err := dst.Marshal()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(out, b) {
			t.Fatalf("roundtrip not canonical: %d in, %d out", len(b), len(out))
		}
	})
}

// allocHeavy mirrors the structural checks of Unmarshal and reports
// whether the body would allocate a dense table past id 2^20 — legal (the
// wire cap is 2^24) but too slow to exercise per fuzz iteration.
func allocHeavy(b []byte, k int) bool {
	if len(b) < 16 || int(binary.LittleEndian.Uint32(b[4:])) != k {
		return false
	}
	nu := int(binary.LittleEndian.Uint32(b[8:]))
	ni := int(binary.LittleEndian.Uint32(b[12:]))
	rec := 4 + 4 + 4*k
	if nu < 0 || ni < 0 || len(b) != 16+rec*(nu+ni) {
		return false
	}
	const limit = 1 << 20
	if nu > 0 && int(binary.LittleEndian.Uint32(b[16+(nu-1)*rec:])) > limit {
		return true
	}
	if ni > 0 && int(binary.LittleEndian.Uint32(b[16+(nu+ni-1)*rec:])) > limit {
		return true
	}
	return false
}
