// Package core implements the REX protocol itself — the enclaved
// merge-train-share-test loop of paper Algorithm 2 — as pure logic with no
// I/O or timing, so the same code drives both the deterministic simulator
// (internal/sim) and the live concurrent runtime (internal/runtime),
// mirroring the paper's single code base compiled for SGX and native
// (§III-E).
package core

import (
	"fmt"
	"math/rand"

	"rex/internal/dataset"
	"rex/internal/gossip"
	"rex/internal/model"
)

// Mode selects what nodes put on the wire.
type Mode int

const (
	// ModelSharing is the classical DLS baseline: nodes exchange model
	// parameters (MS in the paper's figures).
	ModelSharing Mode = iota
	// DataSharing is REX: nodes exchange sampled raw data points, which
	// is safe only because enclaves conceal them (DS/REX in the figures).
	DataSharing
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModelSharing:
		return "MS"
	case DataSharing:
		return "REX"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode converts a CLI name into a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "ms", "MS", "model":
		return ModelSharing, nil
	case "ds", "DS", "rex", "REX", "data":
		return DataSharing, nil
	}
	return 0, fmt.Errorf("core: unknown mode %q (want ms or rex)", s)
}

// Config parameterizes one node.
type Config struct {
	ID            int
	Mode          Mode
	Algo          gossip.Algo
	StepsPerEpoch int // fixed SGD steps per epoch (§III-E); <=0 = one full pass
	SharePoints   int // raw data points sampled per epoch (REX; §IV-A3)
	Seed          int64
	// UniformMerge replaces D-PSGD's Metropolis-Hastings weights with a
	// naive uniform 1/(n+1) average — an ablation of the §III-C2 design
	// choice (MH keeps the gossip matrix doubly stochastic on irregular
	// graphs; uniform averaging biases toward high-degree nodes).
	UniformMerge bool
	// Byzantine makes the node poison what it shares: attestation
	// guarantees honest *code*, but the paper is explicit that SGX does
	// not prevent subversion "through poisoned input data" (§IV-E-c).
	// A Byzantine node inverts the ratings it samples (v -> 5.5-v) and
	// ships a corrupted model in MS mode.
	Byzantine bool
}

// Payload is one gossip message's content after decryption: either model
// parameters (MS) or raw ratings (REX), plus the sender's degree, which
// D-PSGD receivers need for Metropolis–Hastings weighting (§III-C2).
//
// Receivers must treat Model and Data as read-only: under D-PSGD the
// sender builds one Payload per epoch and every neighbor gets the same
// clone, so several nodes may merge the same backing arrays concurrently
// when the simulator runs with Workers > 1. Model.MergeWeighted
// implementations honor this by never mutating their sources.
type Payload struct {
	From   int
	Degree int
	// Model carries the sender's model for MS. In the simulator it is a
	// shared read-only clone; in the live runtime it is deserialized from
	// the wire.
	Model model.Model
	// Data carries the sampled raw ratings for REX.
	Data []dataset.Rating
}

// MergeStats summarizes one merge step for metrics and cost accounting.
type MergeStats struct {
	ModelsMerged    int
	PointsAppended  int
	PointsDuplicate int
}

// Node is one REX participant's enclaved state: its model, its raw-data
// store (protected memory), and its private test set.
//
// A Node is self-contained: every method touches only the node's own
// model, store, test set and RNG, plus read-only views of its inputs
// (Payloads are snapshots of the sender's state — a model clone or a
// sampled copy of raw points — never live references). This is the
// invariant that lets the simulator step distinct nodes of one epoch
// concurrently (sim.Config.Workers) with bit-identical results; methods
// of a single Node are not safe for concurrent use.
type Node struct {
	Cfg   Config
	Model model.Model
	Store *dataset.Store
	Test  []dataset.Rating

	rng   *rand.Rand
	epoch int
	scr   shareScratch
}

// shareScratch pools the buffers Share hands out as payload snapshots, so
// a long simulation stops allocating per epoch once capacities plateau.
//
// The rotation depth is 3 and cannot be lower: a snapshot built at epoch e
// is read by receivers merging at e+1, and — when a reorder fault defers
// the message one barrier, or a duplicate rides along with it — as late as
// e+2. The builder's next two Share calls must therefore hand out other
// buffers; reuse at the third call (epoch e+3) happens strictly after the
// e+2 barrier, so no reader can observe it.
type shareScratch struct {
	models [3]model.Model      // MS payload snapshots (refreshed via model.Copier)
	data   [3][]dataset.Rating // DS payload samples
	idx    int
	perm   []int            // store-sampling permutation scratch
	poison []dataset.Rating // Byzantine poisoned-sample scratch (local only)
}

// NewNode creates a node from its initial local partition (the data its
// user(s) produced) and its local test set.
func NewNode(cfg Config, m model.Model, train, test []dataset.Rating) *Node {
	return &Node{
		Cfg:   cfg,
		Model: m,
		Store: dataset.NewStore(train),
		Test:  test,
		rng:   rand.New(rand.NewSource(int64(uint64(cfg.Seed) ^ uint64(cfg.ID)*0x9E3779B97F4A7C15))),
	}
}

// RestoreNode rebuilds a node from persisted state (internal/store): a
// deserialized model, the raw-data store contents at snapshot time (plus
// any replayed ingestion log), and the epoch count already completed. The
// RNG restarts from the seed stream — a resumed node's future trajectory
// is deterministic but not the one an uninterrupted run would have taken,
// which is fine: gossip is rate-synchronized, and peers have diverged by
// whatever it merged while this node was down anyway.
func RestoreNode(cfg Config, m model.Model, store, test []dataset.Rating, epoch int) *Node {
	n := NewNode(cfg, m, store, test)
	n.epoch = epoch
	return n
}

// Epoch returns how many training epochs the node has completed.
func (n *Node) Epoch() int { return n.epoch }

// RNG exposes the node's deterministic random source (the simulator uses
// it for peer selection so a whole run is reproducible from one seed).
func (n *Node) RNG() *rand.Rand { return n.rng }

// Merge implements the merge step (Algorithm 2 lines 15-16): fold alien
// models into the local one (MS) and/or append alien raw data to the
// protected store (REX). selfDegree is this node's degree for MH weights.
func (n *Node) Merge(payloads []Payload, selfDegree int) MergeStats {
	var st MergeStats
	if len(payloads) == 0 {
		return st
	}
	switch n.Cfg.Mode {
	case ModelSharing:
		n.mergeModels(payloads, selfDegree)
		st.ModelsMerged = countModels(payloads)
	case DataSharing:
		before := n.Store.Duplicates()
		for _, p := range payloads {
			st.PointsAppended += n.Store.Append(p.Data)
		}
		st.PointsDuplicate = n.Store.Duplicates() - before
	}
	return st
}

func countModels(payloads []Payload) int {
	c := 0
	for _, p := range payloads {
		if p.Model != nil {
			c++
		}
	}
	return c
}

func (n *Node) mergeModels(payloads []Payload, selfDegree int) {
	switch n.Cfg.Algo {
	case gossip.RMW:
		// Gossip learning: average each arriving model pairwise with the
		// local one, in arrival order (§III-C1).
		for _, p := range payloads {
			if p.Model == nil {
				continue
			}
			n.Model.MergeWeighted(0.5, []model.Weighted{{M: p.Model, W: 0.5}})
		}
	case gossip.DPSGD:
		// Metropolis–Hastings weights from the degree pairs (§III-C2), or
		// naive uniform weights when the ablation flag is set.
		others := make([]model.Weighted, 0, len(payloads))
		wsum := 0.0
		for _, p := range payloads {
			if p.Model == nil {
				continue
			}
			var w float64
			if n.Cfg.UniformMerge {
				w = 1.0 / float64(len(payloads)+1)
			} else {
				m := selfDegree
				if p.Degree > m {
					m = p.Degree
				}
				w = 1.0 / float64(1+m)
			}
			others = append(others, model.Weighted{M: p.Model, W: w})
			wsum += w
		}
		if len(others) == 0 {
			return
		}
		n.Model.MergeWeighted(1-wsum, others)
	}
}

// Train implements the train step (Algorithm 2 line 17): a fixed number of
// SGD steps over the local store, so epoch time stays constant as the
// store grows (§III-E). With StepsPerEpoch <= 0 it instead sweeps the whole
// store once per epoch — the naive alternative the paper rejects because
// epoch time then grows with the store. It returns the steps actually run.
func (n *Node) Train() int {
	data := n.Store.Ratings()
	if len(data) == 0 {
		return 0
	}
	steps := n.Cfg.StepsPerEpoch
	if steps <= 0 {
		steps = len(data)
	}
	n.Model.Train(data, steps, n.rng)
	n.epoch++
	return steps
}

// Share implements the share step (Algorithm 2 lines 18-20): build the
// payload this node sends this epoch. For REX it is a stateless random
// sample of the store; for MS it is the current model. The returned
// payload is reused across all targets of the epoch (D-PSGD broadcasts the
// same content to every neighbor).
//
// retained signals that the caller keeps the payload past this call: the
// simulator delivers it to receivers one or two epoch barriers later, so
// MS payloads must be model snapshots (not the live model) and both modes
// draw their buffers from a depth-3 rotation (see shareScratch) — callers
// holding a retained payload may read it for at most two epochs, which is
// the simulator's delivery horizon including reorder deferral. The live
// runtime serializes the payload before returning to the protocol loop
// and passes retained=false, getting the live model (zero-copy) and a
// freshly allocated data sample.
func (n *Node) Share(selfDegree int, retained bool) Payload {
	p := Payload{From: n.Cfg.ID, Degree: selfDegree}
	switch n.Cfg.Mode {
	case ModelSharing:
		if retained {
			p.Model = n.snapshotModel()
		} else {
			p.Model = n.Model
		}
		if n.Cfg.Byzantine {
			// Corrupt the outgoing copy by training it toward inverted
			// ratings; the local model stays intact so the attack is
			// covert.
			if !retained {
				p.Model = n.Model.Clone()
			}
			poisoned := n.Store.SampleAppend(n.scr.poison[:0], minInt(256, n.Store.Len()), n.rng, &n.scr.perm)
			n.scr.poison = poisoned
			for i := range poisoned {
				poisoned[i].Value = 5.5 - poisoned[i].Value
			}
			p.Model.Train(poisoned, 4*len(poisoned), n.rng)
		}
		// Freeze lazy layout before the payload leaves this goroutine: a
		// broadcast (D-PSGD) hands the same model pointer to every
		// neighbor, and their concurrent merges must find the
		// order-sensitive walks prebuilt, not race to build them.
		if c, ok := p.Model.(model.Canonicalizer); ok {
			c.Canonicalize()
		}
	case DataSharing:
		if retained {
			buf := n.Store.SampleAppend(n.scr.data[n.scr.idx][:0], n.Cfg.SharePoints, n.rng, &n.scr.perm)
			n.scr.data[n.scr.idx] = buf
			p.Data = buf
		} else {
			p.Data = n.Store.Sample(n.Cfg.SharePoints, n.rng)
		}
		if n.Cfg.Byzantine {
			for i := range p.Data {
				p.Data[i].Value = 5.5 - p.Data[i].Value // invert the star scale
			}
		}
	}
	if retained {
		n.scr.idx = (n.scr.idx + 1) % len(n.scr.data)
	}
	return p
}

// snapshotModel returns a read-only copy of the node's model from the
// pooled rotation: the slot's previous occupant is overwritten in place
// when the model supports model.Copier, falling back to a fresh Clone
// (which then seeds the slot) otherwise.
func (n *Node) snapshotModel() model.Model {
	if buf := n.scr.models[n.scr.idx]; buf != nil {
		if c, ok := buf.(model.Copier); ok && c.CopyFrom(n.Model) {
			return buf
		}
	}
	m := n.Model.Clone()
	n.scr.models[n.scr.idx] = m
	return m
}

// PayloadWireSize returns the encrypted-payload size in bytes for network
// accounting: the model serialization for MS, the packed triplets for REX,
// plus the small header carrying sender id and degree.
func PayloadWireSize(p Payload) int {
	const header = 12 // from(4) + degree(4) + kind(4)
	switch {
	case p.Model != nil:
		return header + p.Model.WireSize()
	default:
		return header + 4 + len(p.Data)*dataset.EncodedSize
	}
}

// TestRMSE implements the test step (Algorithm 2 line 21): RMSE of the
// current model over the node's private held-out ratings.
func (n *Node) TestRMSE() float64 { return model.RMSE(n.Model, n.Test) }

// MemoryBytes estimates the trusted heap this node occupies: model
// parameters plus the raw-data store plus the test set — the quantity
// driving EPC residency in the SGX experiments (Fig 6/7 (b), Table IV).
func (n *Node) MemoryBytes() int64 {
	return int64(n.Model.WireSize()) + int64(n.Store.Bytes()) + int64(len(n.Test)*dataset.EncodedSize)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
