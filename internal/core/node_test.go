package core

import (
	"math/rand"
	"sync"
	"testing"

	"rex/internal/dataset"
	"rex/internal/gossip"
	"rex/internal/mf"
)

func mkNode(t *testing.T, mode Mode, algo gossip.Algo, train []dataset.Rating) *Node {
	t.Helper()
	cfg := Config{ID: 0, Mode: mode, Algo: algo, StepsPerEpoch: 100, SharePoints: 5, Seed: 1}
	return NewNode(cfg, mf.New(mf.DefaultConfig()), train, []dataset.Rating{{User: 0, Item: 1, Value: 3}})
}

func someRatings(n int, seed int64) []dataset.Rating {
	rng := rand.New(rand.NewSource(seed))
	out := make([]dataset.Rating, n)
	for i := range out {
		out[i] = dataset.Rating{
			User:  uint32(rng.Intn(20)),
			Item:  uint32(i), // distinct items: no dedup collisions
			Value: float32(rng.Intn(10)+1) / 2,
		}
	}
	return out
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"ms", ModelSharing}, {"MS", ModelSharing}, {"model", ModelSharing},
		{"rex", DataSharing}, {"REX", DataSharing}, {"ds", DataSharing}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if ModelSharing.String() != "MS" || DataSharing.String() != "REX" {
		t.Fatal("mode names drifted")
	}
}

func TestTrainFixedSteps(t *testing.T) {
	n := mkNode(t, DataSharing, gossip.DPSGD, someRatings(50, 1))
	if steps := n.Train(); steps != 100 {
		t.Fatalf("steps = %d want 100", steps)
	}
	if n.Epoch() != 1 {
		t.Fatalf("epoch = %d", n.Epoch())
	}
}

func TestTrainFullPass(t *testing.T) {
	cfg := Config{ID: 0, Mode: DataSharing, Algo: gossip.DPSGD, StepsPerEpoch: 0, SharePoints: 5, Seed: 1}
	n := NewNode(cfg, mf.New(mf.DefaultConfig()), someRatings(37, 2), nil)
	if steps := n.Train(); steps != 37 {
		t.Fatalf("full pass ran %d steps, want 37", steps)
	}
}

func TestTrainEmptyStore(t *testing.T) {
	n := mkNode(t, DataSharing, gossip.DPSGD, nil)
	if steps := n.Train(); steps != 0 {
		t.Fatalf("trained on empty store: %d steps", steps)
	}
}

func TestMergeDataSharing(t *testing.T) {
	n := mkNode(t, DataSharing, gossip.DPSGD, someRatings(10, 3))
	alien := someRatings(10, 3) // identical: all duplicates
	fresh := []dataset.Rating{{User: 99, Item: 99, Value: 5}}
	st := n.Merge([]Payload{
		{From: 1, Degree: 2, Data: alien},
		{From: 2, Degree: 2, Data: fresh},
	}, 3)
	if st.PointsAppended != 1 {
		t.Fatalf("appended %d, want 1", st.PointsAppended)
	}
	if st.PointsDuplicate != 10 {
		t.Fatalf("duplicates %d, want 10", st.PointsDuplicate)
	}
	if !n.Store.Contains(99, 99) {
		t.Fatal("fresh point not stored")
	}
}

func TestMergeModelSharingDPSGD(t *testing.T) {
	n := mkNode(t, ModelSharing, gossip.DPSGD, someRatings(20, 4))
	n.Train()
	alien := mf.New(mf.DefaultConfig())
	alien.Train(someRatings(20, 5), 300, rand.New(rand.NewSource(6)))
	before := n.Model.ParamCount()
	st := n.Merge([]Payload{{From: 1, Degree: 4, Model: alien}}, 2)
	if st.ModelsMerged != 1 {
		t.Fatalf("merged %d models", st.ModelsMerged)
	}
	if n.Model.ParamCount() < before {
		t.Fatal("merge lost parameters")
	}
}

func TestMergeEmptyPayloads(t *testing.T) {
	n := mkNode(t, ModelSharing, gossip.RMW, someRatings(10, 7))
	st := n.Merge([]Payload{{From: 1, Degree: 1}}, 1) // empty notification
	if st.ModelsMerged != 0 || st.PointsAppended != 0 {
		t.Fatalf("empty payload did something: %+v", st)
	}
	if st := n.Merge(nil, 1); st.ModelsMerged != 0 {
		t.Fatal("nil payloads merged models")
	}
}

func TestMergeRMWPairwise(t *testing.T) {
	n := mkNode(t, ModelSharing, gossip.RMW, someRatings(20, 8))
	n.Train()
	a := mf.New(mf.DefaultConfig())
	a.Train(someRatings(20, 9), 200, rand.New(rand.NewSource(10)))
	b := mf.New(mf.DefaultConfig())
	b.Train(someRatings(20, 11), 200, rand.New(rand.NewSource(12)))
	st := n.Merge([]Payload{{From: 1, Degree: 1, Model: a}, {From: 2, Degree: 1, Model: b}}, 3)
	if st.ModelsMerged != 2 {
		t.Fatalf("merged %d", st.ModelsMerged)
	}
}

func TestShareDataSamplesStore(t *testing.T) {
	n := mkNode(t, DataSharing, gossip.DPSGD, someRatings(50, 13))
	p := n.Share(4, false)
	if p.Model != nil {
		t.Fatal("data-sharing payload carries a model")
	}
	if len(p.Data) != 5 {
		t.Fatalf("shared %d points, want SharePoints=5", len(p.Data))
	}
	if p.Degree != 4 || p.From != 0 {
		t.Fatalf("payload header: %+v", p)
	}
}

func TestShareModelCloneSemantics(t *testing.T) {
	n := mkNode(t, ModelSharing, gossip.DPSGD, someRatings(50, 14))
	n.Train()
	ref := n.Share(2, false)
	if ref.Model != n.Model {
		t.Fatal("cloneModel=false must hand out the live model")
	}
	cl := n.Share(2, true)
	if cl.Model == n.Model {
		t.Fatal("cloneModel=true returned the live model")
	}
}

func TestPayloadWireSize(t *testing.T) {
	n := mkNode(t, DataSharing, gossip.DPSGD, someRatings(50, 15))
	p := n.Share(2, false)
	want := 12 + 4 + len(p.Data)*dataset.EncodedSize
	if got := PayloadWireSize(p); got != want {
		t.Fatalf("data wire %d want %d", got, want)
	}
	empty := Payload{From: 1, Degree: 2}
	if got := PayloadWireSize(empty); got != 16 {
		t.Fatalf("empty wire %d want 16", got)
	}
	m := mf.New(mf.DefaultConfig())
	m.Train(someRatings(5, 16), 50, rand.New(rand.NewSource(17)))
	mp := Payload{From: 1, Degree: 2, Model: m}
	if got := PayloadWireSize(mp); got != 12+m.WireSize() {
		t.Fatalf("model wire %d want %d", got, 12+m.WireSize())
	}
}

func TestUniformMergeAblation(t *testing.T) {
	cfg := Config{ID: 0, Mode: ModelSharing, Algo: gossip.DPSGD, StepsPerEpoch: 50, Seed: 1, UniformMerge: true}
	n := NewNode(cfg, mf.New(mf.DefaultConfig()), someRatings(20, 18), nil)
	n.Train()
	alien := mf.New(mf.DefaultConfig())
	alien.Train(someRatings(20, 19), 100, rand.New(rand.NewSource(20)))
	st := n.Merge([]Payload{{From: 1, Degree: 99, Model: alien}}, 1)
	if st.ModelsMerged != 1 {
		t.Fatal("uniform merge skipped the model")
	}
}

func TestTestRMSEAndMemory(t *testing.T) {
	n := mkNode(t, DataSharing, gossip.DPSGD, someRatings(30, 21))
	n.Train()
	r := n.TestRMSE()
	if r <= 0 || r > 5 {
		t.Fatalf("rmse %v", r)
	}
	if n.MemoryBytes() <= 0 {
		t.Fatal("no memory accounted")
	}
}

func TestNodeRNGDeterministic(t *testing.T) {
	a := mkNode(t, DataSharing, gossip.DPSGD, someRatings(30, 22))
	b := mkNode(t, DataSharing, gossip.DPSGD, someRatings(30, 22))
	if a.RNG().Int63() != b.RNG().Int63() {
		t.Fatal("equal configs produced different rng streams")
	}
}

// TestSharePayloadIsSnapshot enforces the self-containment contract the
// parallel simulator relies on: what Share hands out must be decoupled
// from the sender's live state.
func TestSharePayloadIsSnapshot(t *testing.T) {
	// DataSharing: the sampled slice must not alias the store.
	n := mkNode(t, DataSharing, gossip.DPSGD, someRatings(50, 3))
	p := n.Share(4, false)
	if len(p.Data) == 0 {
		t.Fatal("no data shared")
	}
	orig := p.Data[0]
	p.Data[0].Value = -99
	for _, r := range n.Store.Ratings() {
		if r.User == orig.User && r.Item == orig.Item && r.Value == -99 {
			t.Fatal("mutating the shared sample corrupted the sender's store")
		}
	}

	// ModelSharing with cloneModel=true: the payload model must be an
	// independent copy.
	m := mkNode(t, ModelSharing, gossip.DPSGD, someRatings(50, 4))
	m.Train()
	before, err := m.Model.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	pm := m.Share(4, true)
	pm.Model.Train(someRatings(30, 5), 200, rand.New(rand.NewSource(9)))
	after, err := m.Model.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("training the shared clone mutated the sender's model")
	}
}

// TestConcurrentMergeOfSharedPayload enforces that Merge treats payload
// contents as read-only: under D-PSGD every neighbor receives the same
// model clone, and with sim.Config.Workers > 1 they merge it
// concurrently. Run under -race this fails if any implementation writes
// to its sources; it also demands identical outcomes for every receiver.
func TestConcurrentMergeOfSharedPayload(t *testing.T) {
	sender := mkNode(t, ModelSharing, gossip.DPSGD, someRatings(60, 6))
	sender.Train()
	payload := sender.Share(4, true)

	const receivers = 8
	outs := make([][]byte, receivers)
	var wg sync.WaitGroup
	wg.Add(receivers)
	for r := 0; r < receivers; r++ {
		go func(r int) {
			defer wg.Done()
			cfg := Config{ID: 0, Mode: ModelSharing, Algo: gossip.DPSGD, StepsPerEpoch: 50, Seed: 1}
			node := NewNode(cfg, mf.New(mf.DefaultConfig()), someRatings(40, 7), nil)
			node.Merge([]Payload{payload}, 4)
			b, err := node.Model.Marshal()
			if err != nil {
				t.Error(err)
				return
			}
			outs[r] = b
		}(r)
	}
	wg.Wait()
	for r := 1; r < receivers; r++ {
		if string(outs[r]) != string(outs[0]) {
			t.Fatalf("receiver %d diverged from receiver 0", r)
		}
	}
}
