package core

import "rex/internal/dataset"

// DataDelta is the wire-level delta representation of a DataSharing
// payload: the runtime's per-peer delta codec (internal/runtime) splits a
// shared sample into triplets the receiver provably already holds —
// shipped as back-references into the dictionary of previously-sent
// entries — and triplets it may not, shipped explicitly.
//
// Reconstruction is merge-equivalent to the original sample by two
// properties of the raw-data store (dataset.Store):
//
//   - a referenced triplet was sent in an earlier, acknowledged frame, so
//     the receiver's store already contains its (user, item) key; merging
//     it again is an in-place value write whose position in the payload
//     cannot change the store's insertion order;
//   - a sample holds each (user, item) key at most once (Store.Sample
//     draws distinct positions), so no payload-internal ordering between
//     a reference and an explicit entry can alter which value wins.
//
// Only the explicit entries can be new to the receiving store, so only
// their relative order matters: Explicit preserves the sample order, and
// Payload appends the reference-resolved triplets after them. Any decoded
// payload therefore merges to a bit-identical store — and bit-identical
// training trajectories — versus the full encoding.
type DataDelta struct {
	// Explicit holds new or changed triplets in original sample order.
	Explicit []dataset.Rating
	// Refs holds dictionary indices (ascending) of triplets the receiver
	// has acknowledged, to be resolved against its reconstruction of the
	// sender's dictionary.
	Refs []uint32
}

// Payload materializes the delta into a flat sample: explicit entries
// first (their order is the one that matters), then the resolved
// references. resolve maps a dictionary index to the triplet it named;
// it reports false for an index the receiver does not hold, which makes
// the whole payload undecodable (the caller rejects the frame and
// requests a resync rather than merge a partial sample).
func (d DataDelta) Payload(resolve func(uint32) (dataset.Rating, bool)) ([]dataset.Rating, bool) {
	out := make([]dataset.Rating, 0, len(d.Explicit)+len(d.Refs))
	out = append(out, d.Explicit...)
	for _, idx := range d.Refs {
		r, ok := resolve(idx)
		if !ok {
			return nil, false
		}
		out = append(out, r)
	}
	return out, true
}
