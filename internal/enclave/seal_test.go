package enclave

import (
	"bytes"
	"testing"

	"rex/internal/attest"
)

func TestSealRoundtrip(t *testing.T) {
	meas := attest.MeasureCode([]byte("enclave"))
	s, err := NewSealing([]byte("platform-secret"), meas)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the protected raw-data store")
	aad := []byte("v1")
	blob, err := s.Seal(data, aad)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, data) {
		t.Fatal("sealed blob leaks plaintext")
	}
	got, err := s.Unseal(blob, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestSealBindsMeasurement(t *testing.T) {
	secret := []byte("platform-secret")
	honest, _ := NewSealing(secret, attest.MeasureCode([]byte("honest")))
	rogue, _ := NewSealing(secret, attest.MeasureCode([]byte("rogue")))
	blob, err := honest.Seal([]byte("secret state"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// A different enclave on the same machine must not unseal.
	if _, err := rogue.Unseal(blob, nil); err != ErrUnseal {
		t.Fatalf("rogue enclave unsealed: %v", err)
	}
}

func TestSealBindsPlatform(t *testing.T) {
	meas := attest.MeasureCode([]byte("enclave"))
	a, _ := NewSealing([]byte("machine-A"), meas)
	b, _ := NewSealing([]byte("machine-B"), meas)
	blob, err := a.Seal([]byte("state"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Unseal(blob, nil); err != ErrUnseal {
		t.Fatalf("foreign platform unsealed: %v", err)
	}
}

func TestSealAADMismatch(t *testing.T) {
	s, _ := NewSealing([]byte("secret"), attest.MeasureCode([]byte("e")))
	blob, err := s.Seal([]byte("x"), []byte("version-1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Unseal(blob, []byte("version-2")); err != ErrUnseal {
		t.Fatalf("wrong aad accepted: %v", err)
	}
}

func TestSealTamper(t *testing.T) {
	s, _ := NewSealing([]byte("secret"), attest.MeasureCode([]byte("e")))
	blob, err := s.Seal([]byte("data"), nil)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 1
	if _, err := s.Unseal(blob, nil); err != ErrUnseal {
		t.Fatalf("tampered blob accepted: %v", err)
	}
	if _, err := s.Unseal([]byte{1, 2}, nil); err != ErrUnseal {
		t.Fatalf("short blob accepted: %v", err)
	}
}

func TestSealEmptySecret(t *testing.T) {
	if _, err := NewSealing(nil, attest.MeasureCode([]byte("e"))); err == nil {
		t.Fatal("empty secret accepted")
	}
}

func TestSealNoncesFresh(t *testing.T) {
	s, _ := NewSealing([]byte("secret"), attest.MeasureCode([]byte("e")))
	a, _ := s.Seal([]byte("same"), nil)
	b, _ := s.Seal([]byte("same"), nil)
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same data are identical (nonce reuse)")
	}
}
