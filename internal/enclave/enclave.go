// Package enclave simulates the SGX execution environment REX runs in
// (paper §II-C): the trusted/untrusted split with ecall/ocall transition
// costs, in-enclave compute overhead from hardware memory encryption, and
// the enclave page cache (EPC) paging penalty once the trusted working set
// exceeds the usable EPC (93.5 MiB on the paper's machines, §IV-D). The
// same API in "native" mode charges nothing except the on-demand page
// allocation cost the paper observed making *native* data sampling
// slightly slower than the enclave build (§IV-D).
package enclave

import (
	"time"

	"rex/internal/attest"
)

// Params are the cost-model constants. Defaults are calibrated so the
// SGX-vs-native overhead ratios land in the ranges Table IV reports
// (REX 5–17%, model sharing 51–135%); EXPERIMENTS.md documents the
// calibration.
type Params struct {
	// EPCBytes is the usable enclave page cache. The paper's machines
	// expose 93.5 MiB of the 128 MiB EPC to enclaves (§IV-D).
	EPCBytes int64
	// TransitionTime is the cost of one enclave boundary crossing
	// (ecall or ocall): context switch, TLB flush, register scrubbing.
	TransitionTime time.Duration
	// CopyPerByte is the marshalling cost for argument/buffer copies
	// across the boundary.
	CopyPerByte time.Duration
	// CryptoPerByte is the AES-GCM cost for traffic protection applied to
	// every byte entering or leaving the enclave over the network.
	CryptoPerByte time.Duration
	// ComputeOverhead is the baseline fractional in-enclave slowdown for
	// compute-bound work (memory-encryption engine latency on the hot set).
	ComputeOverhead float64
	// ResidencyPressure adds overhead proportional to how much of the EPC
	// the trusted heap occupies (cache/EPC contention below the limit):
	// factor += ResidencyPressure * min(r, 1) with r = heap/EPC. Table IV
	// shows overhead growing with RAM even inside the EPC.
	ResidencyPressure float64
	// PagingOverhead is the additional fractional slowdown per unit of
	// EPC overcommit: factor += PagingOverhead*(r-1) once the residency
	// ratio r exceeds 1 (EWB page swaps, §IV-D).
	PagingOverhead float64
	// MemBoundOverhead is extra slowdown applied only to memory-bound
	// stages (model merging, serialization), which stress the
	// memory-encryption engine far more than cache-friendly SGD (§IV-D:
	// "the sharing step presents the biggest difference ... because it
	// simultaneously involves I/O, cryptographic operations and intensive
	// memory usage").
	MemBoundOverhead float64
	// NativeAllocPerByte models the cost of on-demand page faults in the
	// *native* build when fresh buffers are allocated mid-epoch; enclave
	// memory is all committed at initialization, which is why the paper
	// measured REX's sharing step slightly faster under SGX (§IV-D).
	NativeAllocPerByte time.Duration
}

// DefaultParams returns the calibrated cost constants.
func DefaultParams() Params {
	return Params{
		EPCBytes:           93*1024*1024 + 512*1024, // 93.5 MiB
		TransitionTime:     8 * time.Microsecond,
		CopyPerByte:        1 * time.Nanosecond, // ~1 GB/s boundary copies
		CryptoPerByte:      1 * time.Nanosecond, // ~1 GB/s AES-GCM
		ComputeOverhead:    0.03,
		ResidencyPressure:  0.35,
		PagingOverhead:     0.80,
		MemBoundOverhead:   0.90,
		NativeAllocPerByte: 1 * time.Nanosecond, // on-demand page faults ~1 GB/s
	}
}

// Stats are the enclave's observability counters.
type Stats struct {
	ECalls, OCalls     int64
	BytesIn, BytesOut  int64
	HeapBytes          int64
	PeakHeapBytes      int64
	TransitionOverhead time.Duration
	CryptoOverhead     time.Duration
}

// Enclave tracks one node's trusted environment: its measurement, trusted
// heap accounting, and boundary-crossing counters. In native mode (SGX ==
// false) it represents the paper's "Native" baseline build: same code, no
// protection, no overhead except on-demand allocation.
type Enclave struct {
	params Params
	sgx    bool
	meas   attest.Measurement
	stats  Stats
}

// New creates an enclave (or native pseudo-enclave) with the given code
// measurement.
func New(meas attest.Measurement, params Params, sgx bool) *Enclave {
	if params.EPCBytes <= 0 {
		params.EPCBytes = DefaultParams().EPCBytes
	}
	return &Enclave{params: params, sgx: sgx, meas: meas}
}

// SGX reports whether hardware protection is simulated.
func (e *Enclave) SGX() bool { return e.sgx }

// Measurement returns the enclave identity hash.
func (e *Enclave) Measurement() attest.Measurement { return e.meas }

// Params returns the cost constants in effect.
func (e *Enclave) Params() Params { return e.params }

// Stats returns a snapshot of the counters.
func (e *Enclave) Stats() Stats { return e.stats }

// Alloc accounts n bytes of trusted heap growth.
func (e *Enclave) Alloc(n int64) {
	e.stats.HeapBytes += n
	if e.stats.HeapBytes > e.stats.PeakHeapBytes {
		e.stats.PeakHeapBytes = e.stats.HeapBytes
	}
}

// Free accounts n bytes of trusted heap shrinkage.
func (e *Enclave) Free(n int64) {
	e.stats.HeapBytes -= n
	if e.stats.HeapBytes < 0 {
		e.stats.HeapBytes = 0
	}
}

// SetHeap sets the trusted heap to an absolute value (the simulator
// recomputes model+store residency each epoch).
func (e *Enclave) SetHeap(n int64) {
	e.stats.HeapBytes = n
	if n > e.stats.PeakHeapBytes {
		e.stats.PeakHeapBytes = n
	}
}

// Residency returns heap/EPC; values above 1 mean the EPC is
// overcommitted and paging costs apply (Fig 7's regime).
func (e *Enclave) Residency() float64 {
	return float64(e.stats.HeapBytes) / float64(e.params.EPCBytes)
}

// ComputeFactor returns the multiplicative slowdown for compute-bound
// trusted work at the current residency: 1.0 native; inside the EPC it
// grows with occupancy (cache/EPC contention); beyond it, paging dominates.
func (e *Enclave) ComputeFactor() float64 {
	if !e.sgx {
		return 1.0
	}
	f := 1 + e.params.ComputeOverhead
	r := e.Residency()
	if r > 1 {
		f += e.params.ResidencyPressure + e.params.PagingOverhead*(r-1)
	} else {
		f += e.params.ResidencyPressure * r
	}
	return f
}

// MemFactor returns the slowdown for memory-bound trusted work (merging,
// serialization): the compute factor plus the memory-bound surcharge.
func (e *Enclave) MemFactor() float64 {
	if !e.sgx {
		return 1.0
	}
	return e.ComputeFactor() + e.params.MemBoundOverhead
}

// ComputeTime scales a base duration by the current compute factor.
func (e *Enclave) ComputeTime(base time.Duration) time.Duration {
	return time.Duration(float64(base) * e.ComputeFactor())
}

// ECall charges one untrusted→trusted transition carrying n argument
// bytes and returns its cost. Native builds cross no boundary.
func (e *Enclave) ECall(n int) time.Duration {
	if !e.sgx {
		return 0
	}
	e.stats.ECalls++
	e.stats.BytesIn += int64(n)
	d := e.params.TransitionTime + time.Duration(n)*e.params.CopyPerByte
	e.stats.TransitionOverhead += d
	return d
}

// OCall charges one trusted→untrusted transition carrying n bytes.
func (e *Enclave) OCall(n int) time.Duration {
	if !e.sgx {
		return 0
	}
	e.stats.OCalls++
	e.stats.BytesOut += int64(n)
	d := e.params.TransitionTime + time.Duration(n)*e.params.CopyPerByte
	e.stats.TransitionOverhead += d
	return d
}

// CryptoTime charges AES-GCM protection of n network bytes (both sealing
// outbound and opening inbound traffic). Native builds exchange plaintext.
func (e *Enclave) CryptoTime(n int) time.Duration {
	if !e.sgx {
		return 0
	}
	d := time.Duration(n) * e.params.CryptoPerByte
	e.stats.CryptoOverhead += d
	return d
}

// NativeAllocTime charges the native build's on-demand page allocation for
// n freshly allocated bytes during the sharing step; zero under SGX, where
// all pages were committed at enclave initialization (§IV-D).
func (e *Enclave) NativeAllocTime(n int) time.Duration {
	if e.sgx {
		return 0
	}
	return time.Duration(n) * e.params.NativeAllocPerByte
}
