package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"rex/internal/attest"
)

// Sealing implements SGX data sealing: encrypting enclave state so only
// the same enclave (same measurement) on the same platform can recover it.
// REX enclaves can use it to persist the protected raw-data store across
// restarts without ever exposing plaintext to the untrusted host. The
// sealing key is derived from a platform secret and the enclave
// measurement — the software analogue of EGETKEY with MRENCLAVE policy.
type Sealing struct {
	aead cipher.AEAD
}

// NewSealing derives the sealing context for an enclave measurement on a
// platform identified by its secret (hardware-fused in real SGX).
func NewSealing(platformSecret []byte, meas attest.Measurement) (*Sealing, error) {
	if len(platformSecret) == 0 {
		return nil, errors.New("enclave: empty platform secret")
	}
	kdf := hmac.New(sha256.New, platformSecret)
	kdf.Write([]byte("rex-seal-v1"))
	kdf.Write(meas[:])
	key := kdf.Sum(nil) // 32 bytes
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("enclave: sealing cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("enclave: sealing GCM: %w", err)
	}
	return &Sealing{aead: aead}, nil
}

// Seal encrypts data with a random nonce; additional data (aad) is
// authenticated but not encrypted (e.g. a store version tag).
func (s *Sealing) Seal(data, aad []byte) ([]byte, error) {
	nonce := make([]byte, s.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("enclave: sealing nonce: %w", err)
	}
	return s.aead.Seal(nonce, nonce, data, aad), nil
}

// ErrUnseal is returned when a sealed blob fails authentication — wrong
// platform, wrong measurement, or tampering.
var ErrUnseal = errors.New("enclave: unsealing failed")

// Unseal decrypts a Seal output with the same aad.
func (s *Sealing) Unseal(blob, aad []byte) ([]byte, error) {
	ns := s.aead.NonceSize()
	if len(blob) < ns {
		return nil, ErrUnseal
	}
	pt, err := s.aead.Open(nil, blob[:ns], blob[ns:], aad)
	if err != nil {
		return nil, ErrUnseal
	}
	return pt, nil
}
