package enclave

import (
	"testing"
	"time"

	"rex/internal/attest"
)

func newEnc(sgx bool) *Enclave {
	return New(attest.MeasureCode([]byte("e")), DefaultParams(), sgx)
}

func TestNativeChargesNothing(t *testing.T) {
	e := newEnc(false)
	e.SetHeap(500 << 20) // even far beyond EPC
	if f := e.ComputeFactor(); f != 1.0 {
		t.Fatalf("native compute factor %v", f)
	}
	if f := e.MemFactor(); f != 1.0 {
		t.Fatalf("native mem factor %v", f)
	}
	if d := e.ECall(1000); d != 0 {
		t.Fatalf("native ecall cost %v", d)
	}
	if d := e.OCall(1000); d != 0 {
		t.Fatalf("native ocall cost %v", d)
	}
	if d := e.CryptoTime(1 << 20); d != 0 {
		t.Fatalf("native crypto cost %v", d)
	}
	if d := e.NativeAllocTime(1 << 20); d == 0 {
		t.Fatal("native alloc penalty missing (the §IV-D sampling effect)")
	}
}

func TestSGXFactorsMonotonicInResidency(t *testing.T) {
	e := newEnc(true)
	params := e.Params()
	prev := 0.0
	for _, frac := range []float64{0.1, 0.5, 0.9, 1.5, 2.5} {
		e.SetHeap(int64(frac * float64(params.EPCBytes)))
		f := e.ComputeFactor()
		if f <= prev {
			t.Fatalf("factor not increasing: %.3f at residency %.1f", f, frac)
		}
		if f <= 1 {
			t.Fatalf("SGX factor %.3f not above 1", f)
		}
		prev = f
	}
}

func TestOvercommitPenalty(t *testing.T) {
	e := newEnc(true)
	p := e.Params()
	e.SetHeap(p.EPCBytes) // exactly full
	atLimit := e.ComputeFactor()
	e.SetHeap(2 * p.EPCBytes) // 2x overcommit, the Fig 7 regime
	over := e.ComputeFactor()
	if over-atLimit < p.PagingOverhead*0.9 {
		t.Fatalf("paging penalty too small: %.3f -> %.3f", atLimit, over)
	}
}

func TestMemFactorExceedsComputeFactor(t *testing.T) {
	e := newEnc(true)
	e.SetHeap(10 << 20)
	if e.MemFactor() <= e.ComputeFactor() {
		t.Fatal("memory-bound surcharge missing")
	}
}

func TestTransitionAccounting(t *testing.T) {
	e := newEnc(true)
	d1 := e.ECall(100)
	d2 := e.OCall(200)
	if d1 <= 0 || d2 <= d1 {
		t.Fatalf("transition costs: ecall %v ocall %v", d1, d2)
	}
	st := e.Stats()
	if st.ECalls != 1 || st.OCalls != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.BytesIn != 100 || st.BytesOut != 200 {
		t.Fatalf("byte counters: %+v", st)
	}
	if st.TransitionOverhead != d1+d2 {
		t.Fatalf("overhead sum: %v != %v", st.TransitionOverhead, d1+d2)
	}
}

func TestCryptoAccounting(t *testing.T) {
	e := newEnc(true)
	d := e.CryptoTime(1 << 20)
	if d <= 0 {
		t.Fatal("no crypto cost")
	}
	if e.Stats().CryptoOverhead != d {
		t.Fatal("crypto overhead not accumulated")
	}
}

func TestHeapAccounting(t *testing.T) {
	e := newEnc(true)
	e.Alloc(100)
	e.Alloc(50)
	if e.Stats().HeapBytes != 150 || e.Stats().PeakHeapBytes != 150 {
		t.Fatalf("alloc: %+v", e.Stats())
	}
	e.Free(100)
	if e.Stats().HeapBytes != 50 {
		t.Fatalf("free: %+v", e.Stats())
	}
	if e.Stats().PeakHeapBytes != 150 {
		t.Fatal("peak lost on free")
	}
	e.Free(1000)
	if e.Stats().HeapBytes != 0 {
		t.Fatal("heap went negative")
	}
	e.SetHeap(999)
	if e.Stats().PeakHeapBytes != 999 {
		t.Fatal("SetHeap did not update peak")
	}
}

func TestComputeTimeScales(t *testing.T) {
	e := newEnc(true)
	e.SetHeap(0)
	base := time.Second
	scaled := e.ComputeTime(base)
	if scaled <= base {
		t.Fatalf("SGX compute not slower: %v", scaled)
	}
}

func TestSGXAllocPenaltyZero(t *testing.T) {
	e := newEnc(true)
	if d := e.NativeAllocTime(1 << 20); d != 0 {
		t.Fatalf("enclave charged native alloc penalty %v", d)
	}
}

func TestZeroEPCDefaulted(t *testing.T) {
	e := New(attest.MeasureCode([]byte("e")), Params{}, true)
	if e.Params().EPCBytes <= 0 {
		t.Fatal("zero EPC not defaulted")
	}
}

func TestMeasurementRetained(t *testing.T) {
	m := attest.MeasureCode([]byte("specific"))
	e := New(m, DefaultParams(), true)
	if e.Measurement() != m {
		t.Fatal("measurement lost")
	}
	if !e.SGX() {
		t.Fatal("SGX flag lost")
	}
}
