package runtime

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"rex/internal/attest"
	"rex/internal/core"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/topology"
)

func TestShardRange(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{8, 2}, {5, 2}, {7, 3}, {4, 4}, {9, 1}} {
		owners := shardOwners(tc.n, tc.k)
		covered := 0
		for s := 0; s < tc.k; s++ {
			lo, hi := ShardRange(tc.n, tc.k, s)
			if hi < lo {
				t.Fatalf("n=%d k=%d s=%d: inverted range [%d,%d)", tc.n, tc.k, s, lo, hi)
			}
			for i := lo; i < hi; i++ {
				if owners[i] != s {
					t.Fatalf("n=%d k=%d: node %d owner %d, range says %d", tc.n, tc.k, i, owners[i], s)
				}
				covered++
			}
		}
		if covered != tc.n {
			t.Fatalf("n=%d k=%d: ranges cover %d nodes", tc.n, tc.k, covered)
		}
	}
}

// freePorts reserves n distinct localhost TCP ports. The listeners are
// closed before returning, so a parallel process could in principle steal
// one — acceptable in tests.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestShardedClusterMatchesInProc runs the same secure workload once as a
// single-process RunCluster and once as two TCP-bridged shards, and
// requires bit-identical per-epoch RMSE trajectories — the ISSUE-3
// acceptance that sharding changes the transport, never the learning.
func TestShardedClusterMatchesInProc(t *testing.T) {
	const (
		n      = 6
		shards = 2
		epochs = 5
	)
	ref := clusterWorkload(t, n, core.DataSharing, gossip.DPSGD, epochs)
	ref.Secure = true
	refStats, err := RunCluster(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Same workload again (fresh nodes), now split across two ShardNets
	// bridged over localhost TCP. Both shards share seed-derived
	// collateral, as two rexnode processes would.
	cw := clusterWorkload(t, n, core.DataSharing, gossip.DPSGD, epochs)
	inf := attest.NewInfrastructure()
	entropy := rand.New(rand.NewSource(77))
	platforms := make([]*attest.Platform, n)
	for i := range platforms {
		p, err := inf.NewPlatform(entropy)
		if err != nil {
			t.Fatal(err)
		}
		platforms[i] = p
	}
	addrs := freePorts(t, shards)
	shardAddrs := map[int]string{0: addrs[0], 1: addrs[1]}

	type result struct {
		stats map[int]*Stats
		err   error
	}
	results := make(chan result, shards)
	for s := 0; s < shards; s++ {
		go func(s int) {
			stats, err := RunShard(ShardConfig{
				Graph: cw.Graph, Nodes: cw.Nodes,
				Shard: s, NumShards: shards,
				ListenAddr: addrs[s], ShardAddrs: shardAddrs,
				Epochs:    epochs,
				Secure:    true,
				Platforms: platforms, Infra: inf,
				NewModel: cw.NewModel,
			})
			results <- result{stats, err}
		}(s)
	}
	sharded := make(map[int]*Stats, n)
	for s := 0; s < shards; s++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatal(r.err)
			}
			for id, st := range r.stats {
				sharded[id] = st
			}
		case <-time.After(60 * time.Second):
			t.Fatal("sharded cluster timed out")
		}
	}

	if len(sharded) != n {
		t.Fatalf("sharded run returned %d node stats", len(sharded))
	}
	for i := 0; i < n; i++ {
		st := sharded[i]
		if st.Attested != n-1 {
			t.Fatalf("sharded node %d attested %d of %d", i, st.Attested, n-1)
		}
		if len(st.RMSE) != len(refStats[i].RMSE) {
			t.Fatalf("node %d: %d vs %d epochs", i, len(st.RMSE), len(refStats[i].RMSE))
		}
		for e := range st.RMSE {
			if math.Float64bits(st.RMSE[e]) != math.Float64bits(refStats[i].RMSE[e]) {
				t.Fatalf("node %d epoch %d: sharded %v != in-proc %v", i, e, st.RMSE[e], refStats[i].RMSE[e])
			}
		}
	}
}

// TestRexnodeShardProcesses is the end-to-end acceptance for the -shard
// CLI: build the real rexnode binary, run a 4-node cluster as two OS
// processes bridged over localhost TCP, and require every node's printed
// final RMSE to match a single-process RunCluster of the identical
// workload.
func TestRexnodeShardProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs rexnode")
	}
	const (
		n      = 4
		shards = 2
		epochs = 3
		seed   = 5
		scale  = 0.03
		steps  = 60
		points = 40
	)
	bin := filepath.Join(t.TempDir(), "rexnode")
	build := exec.Command("go", "build", "-o", bin, "rex/cmd/rexnode")
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build rexnode: %v\n%s", err, out)
	}

	// In-proc reference: the same workload rexnode derives from the seed.
	spec := movielens.Latest().Scaled(scale)
	spec.Seed = seed
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(seed))
	tr, te := ds.SplitPerUser(0.7, rng)
	trainParts, err := tr.PartitionUsersAcross(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	testParts, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mf.DefaultConfig()
	nodes := make([]*core.Node, n)
	for i := range nodes {
		nodes[i] = core.NewNode(core.Config{
			ID: i, Mode: core.DataSharing, Algo: gossip.DPSGD,
			StepsPerEpoch: steps, SharePoints: points, Seed: seed,
		}, mf.New(mcfg), trainParts[i], testParts[i])
	}
	refStats, err := RunCluster(ClusterConfig{
		Graph: topology.FullyConnected(n), Nodes: nodes, Epochs: epochs,
		Secure:   true,
		NewModel: func() model.Model { return mf.New(mcfg) },
	})
	if err != nil {
		t.Fatal(err)
	}

	addrs := freePorts(t, shards)
	peers := addrs[0] + "," + addrs[1]
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	outputs := make([]*bytes.Buffer, shards)
	procs := make([]*exec.Cmd, shards)
	for s := 0; s < shards; s++ {
		outputs[s] = &bytes.Buffer{}
		procs[s] = exec.CommandContext(ctx, bin,
			"-shard", fmt.Sprintf("%d/%d", s, shards),
			"-peers", peers,
			"-n", fmt.Sprint(n),
			"-epochs", fmt.Sprint(epochs),
			"-seed", fmt.Sprint(seed),
			"-scale", fmt.Sprint(scale),
			"-steps", fmt.Sprint(steps),
			"-share", fmt.Sprint(points),
		)
		procs[s].Stdout = outputs[s]
		procs[s].Stderr = outputs[s]
		if err := procs[s].Start(); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < shards; s++ {
		if err := procs[s].Wait(); err != nil {
			t.Fatalf("shard %d: %v\n%s", s, err, outputs[s])
		}
	}

	got := map[int]string{}
	for s := 0; s < shards; s++ {
		sc := bufio.NewScanner(bytes.NewReader(outputs[s].Bytes()))
		for sc.Scan() {
			var id int
			var rmse string
			if _, err := fmt.Sscanf(sc.Text(), "node %d done: final RMSE %s", &id, &rmse); err == nil {
				got[id] = rmse
			}
		}
	}
	if len(got) != n {
		t.Fatalf("parsed %d node results, want %d\nshard0:\n%s\nshard1:\n%s", len(got), n, outputs[0], outputs[1])
	}
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("%.10f", refStats[i].FinalRMSE)
		if got[i] != want {
			t.Fatalf("node %d: sharded processes RMSE %s, single-process cluster %s", i, got[i], want)
		}
	}
}
