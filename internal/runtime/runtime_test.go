package runtime

import (
	"math/rand"
	"testing"
	"time"

	"rex/internal/attest"
	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/topology"
)

func TestChanNetDelivery(t *testing.T) {
	eps := NewChanNet(3)
	if err := eps[0].Send(2, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	env := <-eps[2].Inbox()
	if env.From != 0 || string(env.Data) != "hi" {
		t.Fatalf("envelope %+v", env)
	}
	if err := eps[0].Send(9, nil); err == nil {
		t.Fatal("send to missing peer accepted")
	}
	eps[1].Close()
	eps[1].Close() // double close is safe
}

func TestChanNetCopiesData(t *testing.T) {
	eps := NewChanNet(2)
	buf := []byte("abc")
	eps[0].Send(1, buf)
	buf[0] = 'X'
	env := <-eps[1].Inbox()
	if string(env.Data) != "abc" {
		t.Fatal("transport aliases sender buffer")
	}
}

func TestTCPNetRoundtrip(t *testing.T) {
	a, err := NewTCPNet(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNet(1, "127.0.0.1:0", map[int]string{0: a.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := b.Send(0, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-a.Inbox():
		if env.From != 1 || string(env.Data) != "over tcp" {
			t.Fatalf("envelope %+v", env)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestTCPNetOrdering(t *testing.T) {
	a, err := NewTCPNet(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNet(1, "127.0.0.1:0", map[int]string{0: a.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 50; i++ {
		if err := b.Send(0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		select {
		case env := <-a.Inbox():
			if env.Data[0] != byte(i) {
				t.Fatalf("out of order: got %d want %d", env.Data[0], i)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestTCPNetUnknownPeer(t *testing.T) {
	a, err := NewTCPNet(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(7, []byte("x")); err == nil {
		t.Fatal("unknown peer accepted")
	}
}

func TestPayloadCodecRoundtrip(t *testing.T) {
	mcfg := mf.DefaultConfig()
	m := mf.New(mcfg)
	m.Train([]dataset.Rating{{User: 1, Item: 2, Value: 4}}, 100, rand.New(rand.NewSource(1)))

	cases := []core.Payload{
		{From: 3, Degree: 7},
		{From: 1, Degree: 2, Data: []dataset.Rating{{User: 5, Item: 6, Value: 2.5}}},
		{From: 9, Degree: 4, Model: m},
	}
	for i, p := range cases {
		b, err := EncodePayload(p)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := DecodePayload(b, func() model.Model { return mf.New(mcfg) })
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.From != p.From || got.Degree != p.Degree {
			t.Fatalf("case %d header: %+v", i, got)
		}
		if (got.Model == nil) != (p.Model == nil) || len(got.Data) != len(p.Data) {
			t.Fatalf("case %d body kind mismatch", i)
		}
		if p.Model != nil && got.Model.Predict(1, 2) != p.Model.Predict(1, 2) {
			t.Fatalf("case %d model drifted", i)
		}
	}
}

func TestPayloadCodecErrors(t *testing.T) {
	if _, err := DecodePayload([]byte{1, 2}, nil); err == nil {
		t.Fatal("short payload accepted")
	}
	bad := make([]byte, 10)
	bad[8] = 99
	if _, err := DecodePayload(bad, func() model.Model { return nil }); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// clusterWorkload builds a small live cluster configuration.
func clusterWorkload(t testing.TB, n int, mode core.Mode, algo gossip.Algo, epochs int) ClusterConfig {
	t.Helper()
	spec := movielens.Latest().Scaled(0.05)
	spec.Seed = 21
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(21))
	tr, te := ds.SplitPerUser(0.7, rng)
	trainParts, err := tr.PartitionUsersAcross(n, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	testParts, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mf.DefaultConfig()
	nodes := make([]*core.Node, n)
	for i := range nodes {
		nodes[i] = core.NewNode(core.Config{
			ID: i, Mode: mode, Algo: algo,
			StepsPerEpoch: 100, SharePoints: 30, Seed: 21,
		}, mf.New(mcfg), trainParts[i], testParts[i])
	}
	return ClusterConfig{
		Graph: topology.FullyConnected(n), Nodes: nodes, Epochs: epochs,
		NewModel: func() model.Model { return mf.New(mcfg) },
	}
}

func TestClusterSecureREX(t *testing.T) {
	cfg := clusterWorkload(t, 6, core.DataSharing, gossip.DPSGD, 8)
	cfg.Secure = true
	stats, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range stats {
		if s.Attested != 5 {
			t.Fatalf("node %d attested %d of 5 peers", i, s.Attested)
		}
		if s.FinalRMSE <= 0 || s.FinalRMSE > 3 {
			t.Fatalf("node %d rmse %v", i, s.FinalRMSE)
		}
		if s.BytesOut == 0 || s.BytesIn == 0 {
			t.Fatalf("node %d moved no data", i)
		}
		if len(s.RMSE) != 8 {
			t.Fatalf("node %d recorded %d epochs", i, len(s.RMSE))
		}
	}
}

func TestClusterNativeModelSharing(t *testing.T) {
	cfg := clusterWorkload(t, 4, core.ModelSharing, gossip.DPSGD, 6)
	stats, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64
	for _, s := range stats {
		first += s.RMSE[0] / float64(len(stats))
		last += s.FinalRMSE / float64(len(stats))
	}
	if last >= first {
		t.Fatalf("model sharing did not improve: %.4f -> %.4f", first, last)
	}
	if stats[0].Attested != 0 {
		t.Fatal("native mode attested peers")
	}
}

func TestClusterRMW(t *testing.T) {
	cfg := clusterWorkload(t, 5, core.DataSharing, gossip.RMW, 6)
	cfg.Secure = true
	stats, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// RMW moves far less data than D-PSGD would (one payload per epoch).
	for i, s := range stats {
		if s.BytesOut == 0 {
			t.Fatalf("node %d silent", i)
		}
	}
}

func TestClusterREXLessTrafficThanMS(t *testing.T) {
	rex, err := RunCluster(clusterWorkload(t, 4, core.DataSharing, gossip.DPSGD, 6))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := RunCluster(clusterWorkload(t, 4, core.ModelSharing, gossip.DPSGD, 6))
	if err != nil {
		t.Fatal(err)
	}
	var rexB, msB int64
	for i := range rex {
		rexB += rex[i].BytesOut
		msB += ms[i].BytesOut
	}
	if rexB*5 > msB {
		t.Fatalf("expected >=5x traffic gap: REX %d MS %d", rexB, msB)
	}
}

func TestClusterSizeMismatch(t *testing.T) {
	cfg := clusterWorkload(t, 4, core.DataSharing, gossip.DPSGD, 2)
	cfg.Nodes = cfg.Nodes[:3]
	if _, err := RunCluster(cfg); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	eps := NewChanNet(1)
	nd := core.NewNode(core.Config{}, mf.New(mf.DefaultConfig()), nil, nil)
	if _, err := Run(Config{Node: nd, Endpoint: eps[0], Secure: true}); err == nil {
		t.Fatal("secure mode without platform accepted")
	}
}

// TestLiveOverTCPCluster is the end-to-end integration: three real TCP
// nodes, attestation, encrypted raw-data gossip.
func TestLiveOverTCPCluster(t *testing.T) {
	const n = 3
	cw := clusterWorkload(t, n, core.DataSharing, gossip.DPSGD, 5)

	// Listeners first so peers can dial in any order.
	nets := make([]*TCPNet, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tn, err := NewTCPNet(i, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		nets[i] = tn
		addrs[i] = tn.Addr().String()
		defer tn.Close()
	}
	for i := 0; i < n; i++ {
		peers := map[int]string{}
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = addrs[j]
			}
		}
		nets[i].peers = peers
	}

	meas := attest.MeasureCode([]byte("rex-enclave-v1"))
	inf := attest.NewInfrastructure()
	platforms := make([]*attest.Platform, n)
	for i := range platforms {
		p, err := inf.NewPlatform(rand.New(rand.NewSource(int64(i + 1))))
		if err != nil {
			t.Fatal(err)
		}
		platforms[i] = p
	}

	type result struct {
		st  *Stats
		err error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			neighbors := []int{}
			for j := 0; j < n; j++ {
				if j != i {
					neighbors = append(neighbors, j)
				}
			}
			st, err := Run(Config{
				Node: cw.Nodes[i], Endpoint: nets[i], Neighbors: neighbors,
				Epochs: 5, Secure: true,
				Platform: platforms[i], Infra: inf, Measurement: meas,
				NewModel: cw.NewModel,
				Entropy:  rand.New(rand.NewSource(int64(i + 500))),
			})
			results <- result{st, err}
		}(i)
	}
	for i := 0; i < n; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatal(r.err)
			}
			if r.st.Attested != n-1 {
				t.Fatalf("attested %d", r.st.Attested)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("TCP cluster timed out")
		}
	}
}

// TestFailureDetectorDropsDeadPeer runs a 4-node cluster where one node
// stops after 2 epochs; the survivors' timeout-based failure detection
// (the paper's deferred §III-D mechanism) drops it and they finish.
func TestFailureDetectorDropsDeadPeer(t *testing.T) {
	const n = 4
	const epochs = 6
	cw := clusterWorkload(t, n, core.DataSharing, gossip.DPSGD, epochs)
	eps := NewChanNet(n)

	type result struct {
		id  int
		st  *Stats
		err error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			neighbors := []int{}
			for j := 0; j < n; j++ {
				if j != i {
					neighbors = append(neighbors, j)
				}
			}
			ep := epochs
			if i == 3 {
				ep = 2 // node 3 "crashes" after epoch 2
			}
			st, err := Run(Config{
				Node: cw.Nodes[i], Endpoint: eps[i], Neighbors: neighbors,
				Epochs:       ep,
				NewModel:     cw.NewModel,
				RoundTimeout: 500 * time.Millisecond,
			})
			results <- result{i, st, err}
		}(i)
	}
	for k := 0; k < n; k++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("node %d: %v", r.id, r.err)
			}
			if r.id != 3 {
				if len(r.st.RMSE) != epochs {
					t.Fatalf("survivor %d ran %d epochs", r.id, len(r.st.RMSE))
				}
				if r.st.PeersLost != 1 {
					t.Fatalf("survivor %d lost %d peers, want 1", r.id, r.st.PeersLost)
				}
			}
		case <-time.After(30 * time.Second):
			t.Fatal("cluster hung despite failure detector")
		}
	}
	for i := range eps {
		eps[i].Close()
	}
}
