package runtime

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rex/internal/attest"
	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/topology"
)

func TestChanNetDelivery(t *testing.T) {
	eps := NewChanNet(3)
	if err := eps[0].Send(2, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	env := <-eps[2].Inbox()
	if env.From != 0 || string(env.Data) != "hi" {
		t.Fatalf("envelope %+v", env)
	}
	if err := eps[0].Send(9, nil); err == nil {
		t.Fatal("send to missing peer accepted")
	}
	eps[1].Close()
	eps[1].Close() // double close is safe
}

// TestChanNetPeerClosed pins the done-channel semantics that replaced the
// old recover()-on-closed-channel hack: a send to a closed peer reports
// ErrPeerClosed instead of silently succeeding (or masking real panics).
func TestChanNetPeerClosed(t *testing.T) {
	eps := NewChanNet(2)
	eps[1].Close()
	err := eps[0].Send(1, []byte("late"))
	if !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("send to closed peer: got %v, want ErrPeerClosed", err)
	}
	// A closed endpoint refuses its own sends too.
	eps[1].Close()
	if err := eps[1].Send(0, []byte("x")); err == nil {
		t.Fatal("closed endpoint accepted a send")
	}
	select {
	case <-eps[1].Done():
	default:
		t.Fatal("Done not closed after Close")
	}
}

func TestChanNetCopiesData(t *testing.T) {
	eps := NewChanNet(2)
	buf := []byte("abc")
	eps[0].Send(1, buf)
	buf[0] = 'X'
	env := <-eps[1].Inbox()
	if string(env.Data) != "abc" {
		t.Fatal("transport aliases sender buffer")
	}
}

func TestTCPNetRoundtrip(t *testing.T) {
	a, err := NewTCPNet(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNet(1, "127.0.0.1:0", map[int]string{0: a.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := b.Send(0, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-a.Inbox():
		if env.From != 1 || string(env.Data) != "over tcp" {
			t.Fatalf("envelope %+v", env)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestTCPNetOrdering(t *testing.T) {
	a, err := NewTCPNet(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNet(1, "127.0.0.1:0", map[int]string{0: a.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 50; i++ {
		if err := b.Send(0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		select {
		case env := <-a.Inbox():
			if env.Data[0] != byte(i) {
				t.Fatalf("out of order: got %d want %d", env.Data[0], i)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestTCPNetUnknownPeer(t *testing.T) {
	a, err := NewTCPNet(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(7, []byte("x")); err == nil {
		t.Fatal("unknown peer accepted")
	}
}

func TestPayloadCodecRoundtrip(t *testing.T) {
	mcfg := mf.DefaultConfig()
	m := mf.New(mcfg)
	m.Train([]dataset.Rating{{User: 1, Item: 2, Value: 4}}, 100, rand.New(rand.NewSource(1)))

	cases := []core.Payload{
		{From: 3, Degree: 7},
		{From: 1, Degree: 2, Data: []dataset.Rating{{User: 5, Item: 6, Value: 2.5}}},
		{From: 9, Degree: 4, Model: m},
	}
	for i, p := range cases {
		b, err := EncodePayload(p)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := DecodePayload(b, func() model.Model { return mf.New(mcfg) })
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.From != p.From || got.Degree != p.Degree {
			t.Fatalf("case %d header: %+v", i, got)
		}
		if (got.Model == nil) != (p.Model == nil) || len(got.Data) != len(p.Data) {
			t.Fatalf("case %d body kind mismatch", i)
		}
		if p.Model != nil && got.Model.Predict(1, 2) != p.Model.Predict(1, 2) {
			t.Fatalf("case %d model drifted", i)
		}
	}
}

func TestPayloadCodecErrors(t *testing.T) {
	if _, err := DecodePayload([]byte{1, 2}, nil); err == nil {
		t.Fatal("short payload accepted")
	}
	bad := make([]byte, 10)
	bad[8] = 99
	if _, err := DecodePayload(bad, func() model.Model { return nil }); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// newTCPMesh starts n TCPNets on loopback ports and wires them into a
// full mesh. Listeners come up first so peers can dial in any order; the
// peer maps are filled in before any Send, which is the only point the
// transport reads them.
func newTCPMesh(t *testing.T, n int) []*TCPNet {
	t.Helper()
	nets := make([]*TCPNet, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tn, err := NewTCPNet(i, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tn.Close() })
		nets[i] = tn
		addrs[i] = tn.Addr().String()
	}
	for i := 0; i < n; i++ {
		peers := map[int]string{}
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = addrs[j]
			}
		}
		nets[i].peers = peers
	}
	return nets
}

// clusterWorkload builds a small live cluster configuration.
func clusterWorkload(t testing.TB, n int, mode core.Mode, algo gossip.Algo, epochs int) ClusterConfig {
	t.Helper()
	spec := movielens.Latest().Scaled(0.05)
	spec.Seed = 21
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(21))
	tr, te := ds.SplitPerUser(0.7, rng)
	trainParts, err := tr.PartitionUsersAcross(n, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	testParts, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mf.DefaultConfig()
	nodes := make([]*core.Node, n)
	for i := range nodes {
		nodes[i] = core.NewNode(core.Config{
			ID: i, Mode: mode, Algo: algo,
			StepsPerEpoch: 100, SharePoints: 30, Seed: 21,
		}, mf.New(mcfg), trainParts[i], testParts[i])
	}
	return ClusterConfig{
		Graph: topology.FullyConnected(n), Nodes: nodes, Epochs: epochs,
		NewModel: func() model.Model { return mf.New(mcfg) },
	}
}

func TestClusterSecureREX(t *testing.T) {
	cfg := clusterWorkload(t, 6, core.DataSharing, gossip.DPSGD, 8)
	cfg.Secure = true
	stats, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range stats {
		if s.Attested != 5 {
			t.Fatalf("node %d attested %d of 5 peers", i, s.Attested)
		}
		if s.FinalRMSE <= 0 || s.FinalRMSE > 3 {
			t.Fatalf("node %d rmse %v", i, s.FinalRMSE)
		}
		if s.BytesOut == 0 || s.BytesIn == 0 {
			t.Fatalf("node %d moved no data", i)
		}
		if len(s.RMSE) != 8 {
			t.Fatalf("node %d recorded %d epochs", i, len(s.RMSE))
		}
	}
}

func TestClusterNativeModelSharing(t *testing.T) {
	cfg := clusterWorkload(t, 4, core.ModelSharing, gossip.DPSGD, 6)
	stats, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64
	for _, s := range stats {
		first += s.RMSE[0] / float64(len(stats))
		last += s.FinalRMSE / float64(len(stats))
	}
	if last >= first {
		t.Fatalf("model sharing did not improve: %.4f -> %.4f", first, last)
	}
	if stats[0].Attested != 0 {
		t.Fatal("native mode attested peers")
	}
}

func TestClusterRMW(t *testing.T) {
	cfg := clusterWorkload(t, 5, core.DataSharing, gossip.RMW, 6)
	cfg.Secure = true
	stats, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// RMW moves far less data than D-PSGD would (one payload per epoch).
	for i, s := range stats {
		if s.BytesOut == 0 {
			t.Fatalf("node %d silent", i)
		}
	}
}

func TestClusterREXLessTrafficThanMS(t *testing.T) {
	rex, err := RunCluster(clusterWorkload(t, 4, core.DataSharing, gossip.DPSGD, 6))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := RunCluster(clusterWorkload(t, 4, core.ModelSharing, gossip.DPSGD, 6))
	if err != nil {
		t.Fatal(err)
	}
	var rexB, msB int64
	for i := range rex {
		rexB += rex[i].BytesOut
		msB += ms[i].BytesOut
	}
	if rexB*5 > msB {
		t.Fatalf("expected >=5x traffic gap: REX %d MS %d", rexB, msB)
	}
}

func TestClusterSizeMismatch(t *testing.T) {
	cfg := clusterWorkload(t, 4, core.DataSharing, gossip.DPSGD, 2)
	cfg.Nodes = cfg.Nodes[:3]
	if _, err := RunCluster(cfg); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	eps := NewChanNet(1)
	nd := core.NewNode(core.Config{}, mf.New(mf.DefaultConfig()), nil, nil)
	if _, err := Run(Config{Node: nd, Endpoint: eps[0], Secure: true}); err == nil {
		t.Fatal("secure mode without platform accepted")
	}
}

// TestLiveOverTCPCluster is the end-to-end integration: three real TCP
// nodes, attestation, encrypted raw-data gossip.
func TestLiveOverTCPCluster(t *testing.T) {
	const n = 3
	cw := clusterWorkload(t, n, core.DataSharing, gossip.DPSGD, 5)
	nets := newTCPMesh(t, n)

	meas := attest.MeasureCode([]byte("rex-enclave-v1"))
	inf := attest.NewInfrastructure()
	platforms := make([]*attest.Platform, n)
	for i := range platforms {
		p, err := inf.NewPlatform(rand.New(rand.NewSource(int64(i + 1))))
		if err != nil {
			t.Fatal(err)
		}
		platforms[i] = p
	}

	type result struct {
		st  *Stats
		err error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			neighbors := []int{}
			for j := 0; j < n; j++ {
				if j != i {
					neighbors = append(neighbors, j)
				}
			}
			st, err := Run(Config{
				Node: cw.Nodes[i], Endpoint: nets[i], Neighbors: neighbors,
				Epochs: 5, Secure: true,
				Platform: platforms[i], Infra: inf, Measurement: meas,
				NewModel: cw.NewModel,
				Entropy:  rand.New(rand.NewSource(int64(i + 500))),
			})
			results <- result{st, err}
		}(i)
	}
	for i := 0; i < n; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatal(r.err)
			}
			if r.st.Attested != n-1 {
				t.Fatalf("attested %d", r.st.Attested)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("TCP cluster timed out")
		}
	}
}

// TestClusterGoldenDeterminism is the ISSUE-3 trajectory-determinism
// acceptance: for a fixed seed, a secure in-proc cluster produces
// bit-identical per-epoch RMSE run to run (payload merge order is
// ascending neighbor id regardless of arrival/open order), and the native
// build of the same workload matches bit for bit too — encryption and
// transport must never touch the learning.
func TestClusterGoldenDeterminism(t *testing.T) {
	run := func(secure bool) []*Stats {
		cfg := clusterWorkload(t, 6, core.DataSharing, gossip.DPSGD, 6)
		cfg.Secure = secure
		stats, err := RunCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b, native := run(true), run(true), run(false)
	for i := range a {
		if len(a[i].RMSE) != 6 || len(b[i].RMSE) != 6 || len(native[i].RMSE) != 6 {
			t.Fatalf("node %d: short trajectory", i)
		}
		for e := range a[i].RMSE {
			if math.Float64bits(a[i].RMSE[e]) != math.Float64bits(b[i].RMSE[e]) {
				t.Fatalf("node %d epoch %d: secure runs diverged: %v vs %v", i, e, a[i].RMSE[e], b[i].RMSE[e])
			}
			if math.Float64bits(a[i].RMSE[e]) != math.Float64bits(native[i].RMSE[e]) {
				t.Fatalf("node %d epoch %d: secure %v != native %v", i, e, a[i].RMSE[e], native[i].RMSE[e])
			}
		}
	}
}

// TestFailureDetectorOverTCP kills a peer mid-run on the real TCP
// transport: node 3 stops after 2 epochs and closes its endpoint; the
// survivors' RoundTimeout failure detector (plus per-peer send failures
// on the dead lanes) must drop it exactly once each and converge.
func TestFailureDetectorOverTCP(t *testing.T) {
	const n = 4
	const epochs = 6
	cw := clusterWorkload(t, n, core.DataSharing, gossip.DPSGD, epochs)
	nets := newTCPMesh(t, n)

	type result struct {
		id  int
		st  *Stats
		err error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			neighbors := []int{}
			for j := 0; j < n; j++ {
				if j != i {
					neighbors = append(neighbors, j)
				}
			}
			ep := epochs
			if i == 3 {
				ep = 2 // node 3 "crashes" after epoch 2
			}
			st, err := Run(Config{
				Node: cw.Nodes[i], Endpoint: nets[i], Neighbors: neighbors,
				Epochs:       ep,
				NewModel:     cw.NewModel,
				RoundTimeout: 700 * time.Millisecond,
			})
			if i == 3 {
				nets[3].Close() // the crash: flush and drop the endpoint
			}
			results <- result{i, st, err}
		}(i)
	}
	for k := 0; k < n; k++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("node %d: %v", r.id, r.err)
			}
			if r.id == 3 {
				continue
			}
			if len(r.st.RMSE) != epochs {
				t.Fatalf("survivor %d ran %d epochs", r.id, len(r.st.RMSE))
			}
			if r.st.PeersLost != 1 {
				t.Fatalf("survivor %d lost %d peers, want 1", r.id, r.st.PeersLost)
			}
			if r.st.FinalRMSE <= 0 || r.st.FinalRMSE > 3 {
				t.Fatalf("survivor %d did not converge: RMSE %v", r.id, r.st.FinalRMSE)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("TCP cluster hung despite failure detector")
		}
	}
}

// TestTCPNetConcurrentLanes exercises the per-peer outbound lanes under
// the race detector: every node blasts frames at every peer from several
// goroutines at once while receivers drain, then everything closes
// concurrently.
func TestTCPNetConcurrentLanes(t *testing.T) {
	const (
		n       = 4
		senders = 3
		frames  = 40
	)
	nets := newTCPMesh(t, n)

	want := (n - 1) * senders * frames
	var recvWG sync.WaitGroup
	for i := 0; i < n; i++ {
		recvWG.Add(1)
		go func(tn *TCPNet) {
			defer recvWG.Done()
			got := 0
			for got < want {
				select {
				case <-tn.Inbox():
					got++
				case <-time.After(30 * time.Second):
					t.Errorf("receiver got %d of %d frames", got, want)
					return
				}
			}
		}(nets[i])
	}
	var sendWG sync.WaitGroup
	for i := 0; i < n; i++ {
		for s := 0; s < senders; s++ {
			sendWG.Add(1)
			go func(tn *TCPNet, id, s int) {
				defer sendWG.Done()
				payload := make([]byte, 256)
				for f := 0; f < frames; f++ {
					for j := 0; j < n; j++ {
						if j == id {
							continue
						}
						payload[0] = byte(f)
						if err := tn.Send(j, payload); err != nil {
							t.Errorf("send %d->%d: %v", id, j, err)
							return
						}
					}
				}
			}(nets[i], i, s)
		}
	}
	sendWG.Wait()
	recvWG.Wait()
	if hwm := nets[0].SendQueueHWM(); hwm <= 0 {
		t.Fatalf("lane queue high-water mark not recorded: %d", hwm)
	}
	var closeWG sync.WaitGroup
	for i := 0; i < n; i++ {
		closeWG.Add(1)
		go func(tn *TCPNet) {
			defer closeWG.Done()
			tn.Close()
		}(nets[i])
	}
	closeWG.Wait()
}

// TestFailureDetectorDropsDeadPeer runs a 4-node cluster where one node
// stops after 2 epochs; the survivors' timeout-based failure detection
// (the paper's deferred §III-D mechanism) drops it and they finish.
func TestFailureDetectorDropsDeadPeer(t *testing.T) {
	const n = 4
	const epochs = 6
	cw := clusterWorkload(t, n, core.DataSharing, gossip.DPSGD, epochs)
	eps := NewChanNet(n)

	type result struct {
		id  int
		st  *Stats
		err error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			neighbors := []int{}
			for j := 0; j < n; j++ {
				if j != i {
					neighbors = append(neighbors, j)
				}
			}
			ep := epochs
			if i == 3 {
				ep = 2 // node 3 "crashes" after epoch 2
			}
			st, err := Run(Config{
				Node: cw.Nodes[i], Endpoint: eps[i], Neighbors: neighbors,
				Epochs:       ep,
				NewModel:     cw.NewModel,
				RoundTimeout: 500 * time.Millisecond,
			})
			results <- result{i, st, err}
		}(i)
	}
	for k := 0; k < n; k++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("node %d: %v", r.id, r.err)
			}
			if r.id != 3 {
				if len(r.st.RMSE) != epochs {
					t.Fatalf("survivor %d ran %d epochs", r.id, len(r.st.RMSE))
				}
				if r.st.PeersLost != 1 {
					t.Fatalf("survivor %d lost %d peers, want 1", r.id, r.st.PeersLost)
				}
			}
		case <-time.After(30 * time.Second):
			t.Fatal("cluster hung despite failure detector")
		}
	}
	for i := range eps {
		eps[i].Close()
	}
}
