package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"rex/internal/compress"
	"rex/internal/core"
	"rex/internal/dataset"
)

// WireMode selects the gossip frame encoding on the share path.
type WireMode uint8

const (
	// WireDelta (the default) sends versioned delta frames: per-peer
	// acked-state tracking, back-references for triplets the peer already
	// holds, columnar bit-packing for the rest, and DEFLATE for large
	// model sections. Decoded state is bit-identical to WireFull.
	WireDelta WireMode = iota
	// WireFull is the compatibility/escape hatch: every frame carries the
	// complete flat payload, exactly the pre-delta wire format.
	WireFull
)

// String implements fmt.Stringer.
func (m WireMode) String() string {
	switch m {
	case WireDelta:
		return "delta"
	case WireFull:
		return "full"
	default:
		return fmt.Sprintf("WireMode(%d)", int(m))
	}
}

// ParseWireMode converts a -wire flag value into a WireMode.
func ParseWireMode(s string) (WireMode, error) {
	switch s {
	case "delta", "":
		return WireDelta, nil
	case "full":
		return WireFull, nil
	}
	return 0, fmt.Errorf("runtime: unknown wire mode %q (want full or delta)", s)
}

// Delta frame flags.
const (
	// deltaFlagReset restarts the stream: the receiver archives its
	// reconstruction of the sender's dictionary and rebuilds from this
	// (all-explicit) frame. Sent when honoring a resync request and on
	// the first frame after a daemon resume.
	deltaFlagReset byte = 1 << 0
	// deltaFlagResyncReq piggybacks the receiver's "my view of your
	// stream has a persistent gap, send me a reset" signal on its own
	// outbound frames.
	deltaFlagResyncReq byte = 1 << 1

	deltaFlagsKnown = deltaFlagReset | deltaFlagResyncReq
)

// gapResyncThreshold is how far highSeen may run ahead of the contiguous
// watermark before the receiver requests a full resync. Adjacent-swap
// reordering (the only reorder a per-pair-FIFO transport expresses)
// produces a transient gap of 2, so 3 is the smallest value that never
// fires on a merely reordered link.
const gapResyncThreshold = 3

// resetRetryFrames is how many frames a sender waits for its last stream
// reset to be acknowledged before honoring another resync request. A
// request built before the reset arrived is in flight for up to two
// rounds; suppressing re-resets inside that window keeps at most one
// reset outstanding per stream, which (with adjacent-swap reorder) makes
// two resets arriving out of order impossible.
const resetRetryFrames = 2

// deltaDictCap bounds the per-edge dictionary: once a data frame's worst
// case (every point explicit) would push the explicit-entry count past
// this, the frame is sent as a self-contained stream reset instead,
// restarting the dictionary. This is what keeps per-edge delta state —
// the sender's lastSent map and the receiver's dict/prevDict windows —
// O(cap) on arbitrarily long runs with churning samples, instead of
// growing with stream lifetime. The cap must comfortably exceed one
// frame's sample size; below that every frame degenerates to a (correct
// but uncompressed) reset.
const deltaDictCap = 4096

// deflateModelThreshold is the model-section size above which delta
// frames try DEFLATE on the marshaled parameters. Raw-data payloads never
// go through flate: their columnar packing is tighter and deterministic
// in cost.
const deflateModelThreshold = 512

// maxModelSection bounds the inflated size a delta model section may
// claim, so a corrupt length cannot make the decoder allocate without
// limit before validation fails.
const maxModelSection = 64 << 20

// errDeltaDiscard marks a delta frame the receiver rejected (undecodable,
// checksum mismatch, or referencing dictionary state it no longer holds).
// Like a seccha replay, the round proceeds without the frame; the resync
// protocol restores the stream.
var errDeltaDiscard = errors.New("runtime: delta frame discarded")

// deltaTx is the sender half of one directed pair's delta stream: which
// (user, item) triplets the peer has acknowledged, under which dictionary
// index, at which value. One exists per neighbor (kept across failure-
// detector drops so a rejoined peer resumes the stream); it is touched
// only by that peer's share worker (send phase) and gather worker (ack
// processing), phases the epoch loop never overlaps.
type deltaTx struct {
	// seqOut is the sequence number of the last frame built for the peer
	// (the first frame is 1). Every frame handed to the transport
	// consumes a number, even if the network later drops it.
	seqOut uint64
	// ackedSeq is the highest sequence number the peer has acknowledged
	// receiving contiguously. Acks only ever advance it: a lower ack on a
	// reordered frame is old news, not a regression.
	ackedSeq uint64
	// lastResetSeq is the sequence of the last reset frame, for the
	// one-reset-in-flight suppression window.
	lastResetSeq uint64
	// lastSent maps a rating key to its latest explicit mention. A
	// triplet is back-referenced only when that mention is acked and its
	// value still matches: the receiver then provably resolves the same
	// triplet from its dictionary.
	lastSent map[uint64]txEntry
	// dictLen counts explicit entries emitted since the stream (re)start;
	// the next explicit entry gets this dictionary index.
	dictLen uint32
	// dictCap rolls the stream over (full-frame reset) before dictLen can
	// exceed it; deltaDictCap by default, 0 disables the cap.
	dictCap uint32
	// pendingReset makes the next frame a stream reset (resync request
	// received, or first frame after a daemon resume).
	pendingReset bool

	expBuf []dataset.Rating
	refBuf []uint32
}

type txEntry struct {
	value float32
	seq   uint64
	idx   uint32
}

// requestReset arms a stream reset unless one is already in flight and
// still within its retry window (see resetRetryFrames). A reset lost on
// the wire is retried once the window lapses — the receiver keeps
// piggybacking the request until its stream is whole.
func (tx *deltaTx) requestReset() {
	if tx.lastResetSeq != 0 && tx.ackedSeq < tx.lastResetSeq &&
		tx.seqOut < tx.lastResetSeq+resetRetryFrames {
		return
	}
	tx.pendingReset = true
}

// split partitions a sample into back-references (acked, value unchanged)
// and explicit entries, registering the explicit ones in the dictionary.
// Explicit entries keep sample order; references are sorted for delta
// coding (their order is merge-irrelevant — see core.DataDelta).
func (tx *deltaTx) split(data []dataset.Rating) (explicit []dataset.Rating, refs []uint32) {
	explicit, refs = tx.expBuf[:0], tx.refBuf[:0]
	for _, rt := range data {
		if e, ok := tx.lastSent[rt.Key()]; ok && e.seq <= tx.ackedSeq && e.value == rt.Value {
			refs = append(refs, e.idx)
			continue
		}
		tx.lastSent[rt.Key()] = txEntry{value: rt.Value, seq: tx.seqOut, idx: tx.dictLen}
		tx.dictLen++
		explicit = append(explicit, rt)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	tx.expBuf, tx.refBuf = explicit, refs
	return explicit, refs
}

// deltaRx is the receiver half: the reconstruction of one peer's
// dictionary and the contiguity bookkeeping that drives acks and resync
// requests. Touched only by that peer's gather worker (decode) and share
// worker (reading the ack watermark), never concurrently.
type deltaRx struct {
	// base is the sequence number of the stream-start frame: 0 for a
	// fresh stream, else the seq of the last reset. Frames below it
	// resolve against the archived previous window.
	base uint64
	// watermark is the highest sequence number up to which every frame
	// has been received and folded into dict — the ack the peer gets.
	watermark uint64
	// highSeen is the highest sequence number observed; a persistent
	// highSeen-watermark gap triggers a resync request.
	highSeen uint64
	// dict is the explicit entries of frames base..watermark in sequence
	// order — the receiver's reconstruction of the sender's dictionary
	// prefix that back-references may point into.
	dict []dataset.Rating
	// prevBase/prevDict archive the window that a reset replaced, so a
	// pre-reset frame overtaken by the reset (adjacent-swap reorder)
	// still resolves its references and merges exactly as the full
	// encoding would. One generation suffices: at most one reset is in
	// flight per stream.
	prevBase uint64
	prevDict []dataset.Rating
	// segs holds explicit entries of frames received beyond the
	// watermark, keyed by seq, until the gap below them fills.
	segs map[uint64][]dataset.Rating
	// wantResync piggybacks a resync request on outbound frames until the
	// stream is contiguous again.
	wantResync bool
}

// ackPlus1 is the piggybacked ack field: watermark+1, or 0 when nothing
// has been received on this stream yet.
func (rx *deltaRx) ackPlus1() uint64 {
	if rx.watermark == 0 {
		return 0
	}
	return rx.watermark + 1
}

// deltaFrame is a parsed (but not yet applied) delta frame.
type deltaFrame struct {
	from, degree int
	flags        byte
	seq          uint64
	ackPlus1     uint64
	payloadKind  byte
	modelBytes   []byte // marshaled model (already inflated)
	data         core.DataDelta
	sum          uint32 // payload checksum (data frames)
}

// payloadChecksum is an order-independent 32-bit digest of a flat rating
// payload: per-triplet hashes XOR-folded, so the sender digests its
// original sample while the receiver digests the reconstruction
// (explicits first, then resolved references) and both agree exactly
// when the reconstructed multiset is the sample. It is the end-to-end
// guard that a misresolved back-reference — however the stream state got
// there — is discarded rather than silently merged.
func payloadChecksum(rs []dataset.Rating) uint32 {
	var h uint32
	for _, r := range rs {
		x := r.User*2654435761 ^ r.Item*2246822519 ^ math.Float32bits(r.Value)*3266489917
		x ^= x >> 16
		x *= 2654435761
		x ^= x >> 13
		h ^= x
	}
	return h
}

// parseDeltaFrame validates and decodes a delta frame body (everything
// after the outer kind byte, post-decryption). It is pure: no receiver
// state is read or written, so rejected bytes cannot corrupt a stream.
// Unknown flags, implausible sections and trailing bytes are all errors.
func parseDeltaFrame(body []byte) (*deltaFrame, error) {
	if len(body) < 10 {
		return nil, fmt.Errorf("runtime: delta frame too short (%d bytes)", len(body))
	}
	f := &deltaFrame{
		from:        int(binary.LittleEndian.Uint32(body)),
		degree:      int(binary.LittleEndian.Uint32(body[4:])),
		flags:       body[8],
		payloadKind: body[9],
	}
	if f.flags&^deltaFlagsKnown != 0 {
		return nil, fmt.Errorf("runtime: unknown delta flags %#x", f.flags)
	}
	rest := body[10:]
	var n int
	f.seq, n = binary.Uvarint(rest)
	if n <= 0 || f.seq == 0 {
		return nil, fmt.Errorf("runtime: bad delta seq")
	}
	rest = rest[n:]
	f.ackPlus1, n = binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("runtime: bad delta ack")
	}
	rest = rest[n:]
	switch f.payloadKind {
	case payloadEmpty:
		if len(rest) != 0 {
			return nil, fmt.Errorf("runtime: %d trailing bytes in empty delta frame", len(rest))
		}
	case payloadModel:
		if len(rest) < 1 || rest[0] > 1 {
			return nil, fmt.Errorf("runtime: bad model section header")
		}
		deflated := rest[0] == 1
		rest = rest[1:]
		ln, n := binary.Uvarint(rest)
		if n <= 0 || ln != uint64(len(rest)-n) {
			return nil, fmt.Errorf("runtime: bad model section length")
		}
		f.modelBytes = rest[n:]
		if deflated {
			raw, err := compress.InflateLimit(f.modelBytes, maxModelSection)
			if err != nil {
				return nil, fmt.Errorf("runtime: model section: %w", err)
			}
			f.modelBytes = raw
		}
	case payloadData:
		var err error
		f.data.Explicit, rest, err = compress.DecodeRatingsColumnar(rest)
		if err != nil {
			return nil, fmt.Errorf("runtime: delta explicit block: %w", err)
		}
		f.data.Refs, rest, err = compress.DecodeIndexDeltas(rest)
		if err != nil {
			return nil, fmt.Errorf("runtime: delta ref block: %w", err)
		}
		if len(rest) != 4 {
			return nil, fmt.Errorf("runtime: delta checksum: %d bytes", len(rest))
		}
		f.sum = binary.LittleEndian.Uint32(rest)
		if len(f.data.Refs) > 0 && f.flags&deltaFlagReset != 0 {
			return nil, fmt.Errorf("runtime: reset frame carries refs")
		}
	default:
		return nil, fmt.Errorf("runtime: unknown delta payload kind %d", f.payloadKind)
	}
	return f, nil
}

// apply validates f against the stream state and, only when every check
// passes, commits it: dictionary growth, watermark advance, gap tracking.
// On error the receiver state is untouched, so arbitrary rejected bytes
// can never corrupt the stream. The returned ratings are the
// reconstructed flat sample (nil for empty/model frames), which is
// produced — and merged by the caller — for every accepted frame whether
// or not it commits: duplicates and overtaken pre-reset frames merge
// exactly as the full encoding would have.
func (rx *deltaRx) apply(f *deltaFrame) ([]dataset.Rating, error) {
	if f.flags&deltaFlagReset != 0 {
		return rx.applyReset(f)
	}
	// Pick the dictionary window the frame's references were coded
	// against: the live one, or the archived pre-reset window for a frame
	// the reset overtook.
	dict := rx.dict
	if f.seq < rx.base {
		if f.seq < rx.prevBase && len(f.data.Refs) > 0 {
			return nil, fmt.Errorf("%w: frame predates archived window", errDeltaDiscard)
		}
		dict = rx.prevDict
	}
	sample, ok := f.data.Payload(func(idx uint32) (dataset.Rating, bool) {
		if int(idx) >= len(dict) {
			return dataset.Rating{}, false
		}
		return dict[idx], true
	})
	if !ok {
		return nil, fmt.Errorf("%w: unresolvable dictionary reference", errDeltaDiscard)
	}
	if f.payloadKind == payloadData && payloadChecksum(sample) != f.sum {
		return nil, fmt.Errorf("%w: payload checksum mismatch", errDeltaDiscard)
	}
	// Stale (pre-reset) frames and duplicates reconstruct without
	// committing; the dictionary prefix a duplicate re-delivers is
	// immutable between resets, so nothing needs re-folding.
	stale := f.seq < rx.base
	dup := !stale && f.seq <= rx.watermark
	if !dup && !stale {
		_, dup = rx.segs[f.seq]
	}
	if !stale && !dup {
		rx.commit(f.seq, f.data.Explicit)
	}
	return sample, nil
}

// applyReset handles a stream-reset frame. The reset is all-explicit, so
// its payload always merges; the rebase itself applies only when the
// reset is new (ahead of the watermark) or an exact redelivery of the
// current base (idempotent).
func (rx *deltaRx) applyReset(f *deltaFrame) ([]dataset.Rating, error) {
	if f.payloadKind == payloadData && payloadChecksum(f.data.Explicit) != f.sum {
		return nil, fmt.Errorf("%w: payload checksum mismatch", errDeltaDiscard)
	}
	switch {
	case f.seq == rx.base:
		// Duplicate of the current stream start: re-deriving dict would be
		// a no-op by construction.
	case f.seq > rx.watermark:
		// Archive the window this reset replaces, then rebase on it.
		rx.prevBase, rx.prevDict = rx.base, rx.dict
		rx.base, rx.watermark = f.seq, f.seq
		rx.dict = append([]dataset.Rating(nil), f.data.Explicit...)
		for s := range rx.segs {
			if s <= f.seq {
				delete(rx.segs, s)
			}
		}
		if f.seq > rx.highSeen {
			rx.highSeen = f.seq
		}
		rx.drain()
	default:
		// An old reset the stream has moved past: merge its (explicit)
		// payload, touch nothing.
	}
	return f.data.Explicit, nil
}

// commit folds a fresh in-window frame into the stream state.
func (rx *deltaRx) commit(seq uint64, explicit []dataset.Rating) {
	if seq > rx.highSeen {
		rx.highSeen = seq
	}
	if seq == rx.watermark+1 {
		rx.watermark = seq
		rx.dict = append(rx.dict, explicit...)
		rx.drain()
		return
	}
	if rx.segs == nil {
		rx.segs = make(map[uint64][]dataset.Rating)
	}
	rx.segs[seq] = explicit
	if rx.highSeen-rx.watermark >= gapResyncThreshold {
		rx.wantResync = true
	}
}

// drain advances the watermark over any now-contiguous buffered segments
// and clears the resync request once the stream has no gap.
func (rx *deltaRx) drain() {
	for {
		seg, ok := rx.segs[rx.watermark+1]
		if !ok {
			break
		}
		delete(rx.segs, rx.watermark+1)
		rx.watermark++
		rx.dict = append(rx.dict, seg...)
	}
	if rx.watermark == rx.highSeen {
		rx.wantResync = false
	}
}

// initDelta creates the per-peer delta stream state for every configured
// neighbor, on the protocol thread, before any worker can touch the maps.
// Entries are never created later (a rejoined peer was a neighbor, so its
// streams exist) and never deleted (a dropped peer's streams survive for
// its rejoin; a permanently dead peer's state is idle).
func (r *runner) initDelta(resume bool) {
	if r.cfg.Wire != WireDelta {
		return
	}
	r.tx = make(map[int]*deltaTx, len(r.cfg.Neighbors))
	r.rx = make(map[int]*deltaRx, len(r.cfg.Neighbors))
	r.deltaScratch = make(map[int][]byte, len(r.cfg.Neighbors))
	for _, nb := range r.cfg.Neighbors {
		// A resumed daemon rebuilds delta state from nothing (stream state
		// is deliberately not snapshotted), so its first frame to every
		// peer is a reset; the peers' stale view of this node's stream
		// heals through the resync protocol.
		r.tx[nb] = &deltaTx{lastSent: make(map[uint64]txEntry), pendingReset: resume, dictCap: deltaDictCap}
		r.rx[nb] = &deltaRx{}
	}
}

// deltaSendStats is the per-frame accounting a share worker returns.
type deltaSendStats struct {
	refs, explicit int64
	raw            int64 // bytes the full-mode plaintext frame would have cost
	resync         bool  // frame carried a stream reset
}

// encodeDeltaBody appends the delta frame body for one peer to dst:
// header (sender, degree, flags, payload kind, seq, piggybacked ack),
// then the payload section. Model sections come pre-encoded (they are
// peer-independent and built once per epoch on the protocol thread);
// data sections are split per peer against the stream state. Runs on the
// peer's share worker.
func (r *runner) encodeDeltaBody(dst []byte, nb int, p core.Payload) ([]byte, deltaSendStats) {
	tx, rx := r.tx[nb], r.rx[nb]
	tx.seqOut++
	var st deltaSendStats
	// Dictionary overflow check against the worst case (every point
	// explicit): conservative, so a ref-heavy steady state whose dictLen
	// has stopped growing never resets spuriously.
	if p.Data != nil && tx.dictCap > 0 && tx.dictLen+uint32(len(p.Data)) > tx.dictCap {
		tx.pendingReset = true
	}
	var flags byte
	if tx.pendingReset {
		flags |= deltaFlagReset
		tx.lastSent = make(map[uint64]txEntry)
		tx.dictLen = 0
		tx.lastResetSeq = tx.seqOut
		tx.pendingReset = false
		st.resync = true
	}
	if rx.wantResync {
		flags |= deltaFlagResyncReq
	}
	st.raw = int64(1 + 9 + payloadBodySize(p)) // kind byte + flat header + flat body

	off := len(dst)
	dst = append(dst, make([]byte, 10)...)
	binary.LittleEndian.PutUint32(dst[off:], uint32(p.From))
	binary.LittleEndian.PutUint32(dst[off+4:], uint32(p.Degree))
	dst[off+8] = flags
	switch {
	case p.Model != nil:
		dst[off+9] = payloadModel
	case p.Data != nil:
		dst[off+9] = payloadData
	default:
		dst[off+9] = payloadEmpty
	}
	dst = binary.AppendUvarint(dst, tx.seqOut)
	dst = binary.AppendUvarint(dst, rx.ackPlus1())
	switch {
	case p.Model != nil:
		dst = append(dst, r.modelSection...)
	case p.Data != nil:
		explicit := p.Data
		var refs []uint32
		if flags&deltaFlagReset == 0 {
			explicit, refs = tx.split(p.Data)
		} else {
			// A reset frame is self-contained: everything explicit, and
			// the dictionary restarts from it.
			for _, rt := range p.Data {
				tx.lastSent[rt.Key()] = txEntry{value: rt.Value, seq: tx.seqOut, idx: tx.dictLen}
				tx.dictLen++
			}
		}
		st.explicit, st.refs = int64(len(explicit)), int64(len(refs))
		dst = compress.AppendRatingsColumnar(dst, explicit)
		dst = compress.AppendIndexDeltas(dst, refs)
		dst = binary.LittleEndian.AppendUint32(dst, payloadChecksum(p.Data))
	}
	return dst, st
}

// buildModelSection pre-encodes the epoch's (peer-independent) model
// section on the protocol thread: a deflated-flag byte, a uvarint length,
// and the marshaled parameters, DEFLATE-compressed above the size
// threshold when that actually wins.
func (r *runner) buildModelSection(p core.Payload) error {
	raw, err := p.Model.Marshal()
	if err != nil {
		return fmt.Errorf("runtime: marshaling model: %w", err)
	}
	chosen, deflated := raw, byte(0)
	if len(raw) >= deflateModelThreshold {
		if comp, err := compress.Deflate(raw, 0); err == nil && len(comp) < len(raw) {
			chosen, deflated = comp, 1
		}
	}
	r.modelSection = append(r.modelSection[:0], deflated)
	r.modelSection = binary.AppendUvarint(r.modelSection, uint64(len(chosen)))
	r.modelSection = append(r.modelSection, chosen...)
	return nil
}

// decodeDeltaFrame is the gather-side entry: parse, apply the
// piggybacked ack and resync request to the sender state, apply the
// frame to the receiver state, and reconstruct the flat payload. Runs on
// the peer's gather worker. A rejected frame never mutates stream state;
// the runner discards it (errDeltaDiscard folds like a seccha replay)
// and the piggybacked request machinery restores the stream.
func (r *runner) decodeDeltaFrame(from int, body []byte) (core.Payload, error) {
	tx, rx := r.tx[from], r.rx[from]
	if tx == nil {
		return core.Payload{}, fmt.Errorf("%w: no stream state for peer", errDeltaDiscard)
	}
	f, err := parseDeltaFrame(body)
	if err != nil {
		rx.wantResync = true
		return core.Payload{}, fmt.Errorf("%w: %v", errDeltaDiscard, err)
	}
	// Piggybacked control first: it is valid even on frames whose payload
	// the stream state can no longer decode. Acks only advance (a lower
	// ack on a reordered frame is old news), and never past what was
	// actually sent.
	if f.ackPlus1 > 0 {
		if ack := f.ackPlus1 - 1; ack > tx.ackedSeq && ack <= tx.seqOut {
			tx.ackedSeq = ack
		}
	}
	if f.flags&deltaFlagResyncReq != 0 {
		tx.requestReset()
	}
	p := core.Payload{From: f.from, Degree: f.degree}
	if f.payloadKind == payloadModel {
		// Unmarshal before touching stream state: a frame whose model bytes
		// do not decode is discarded whole, not half-committed (the
		// watermark must never ack a frame that was not merged).
		if r.cfg.NewModel == nil {
			return core.Payload{}, fmt.Errorf("%w: model payload without NewModel", errDeltaDiscard)
		}
		m := r.cfg.NewModel()
		if err := m.Unmarshal(f.modelBytes); err != nil {
			rx.wantResync = true
			return core.Payload{}, fmt.Errorf("%w: unmarshaling model: %v", errDeltaDiscard, err)
		}
		p.Model = m
	}
	sample, err := rx.apply(f)
	if err != nil {
		rx.wantResync = true
		return core.Payload{}, err
	}
	if f.payloadKind == payloadData {
		p.Data = sample
	}
	return p, nil
}
