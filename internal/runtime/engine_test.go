package runtime

import (
	"math"
	"sync"
	"testing"

	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/gossip"
)

// TestEngineMatchesRun pins that manually stepping Engines produces the
// exact trajectory Run produces: Run is now a wrapper over the engine, but
// this guards the equivalence if either side evolves — the daemon's
// incremental loop and the batch loop must stay one protocol.
func TestEngineMatchesRun(t *testing.T) {
	const n, epochs = 4, 6
	ref := clusterWorkload(t, n, core.DataSharing, gossip.DPSGD, epochs)
	refStats, err := RunCluster(ref)
	if err != nil {
		t.Fatal(err)
	}

	cfg := clusterWorkload(t, n, core.DataSharing, gossip.DPSGD, epochs)
	eps := NewChanNet(n)
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	trajs := make([][]float64, n)
	snaps := make([]*Snapshot, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := NewEngine(Config{
				Node: cfg.Nodes[i], Endpoint: eps[i],
				Neighbors: cfg.Graph.Neighbors(i),
				NewModel:  cfg.NewModel,
				Publish:   true,
			})
			if err != nil {
				errs[i] = err
				return
			}
			if err := e.Start(); err != nil {
				errs[i] = err
				return
			}
			defer e.Stop()
			for k := 0; k < epochs; k++ {
				rmse, err := e.Step()
				if err != nil {
					errs[i] = err
					return
				}
				trajs[i] = append(trajs[i], rmse)
			}
			snaps[i] = e.Snapshot()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		for k := 0; k < epochs; k++ {
			if trajs[i][k] != refStats[i].RMSE[k] {
				t.Fatalf("node %d epoch %d: engine %v != Run %v", i, k, trajs[i][k], refStats[i].RMSE[k])
			}
		}
		snap := snaps[i]
		if snap == nil || snap.Epoch != epochs {
			t.Fatalf("node %d: snapshot %+v, want epoch %d", i, snap, epochs)
		}
		if snap.RMSE != refStats[i].FinalRMSE {
			t.Fatalf("node %d: snapshot rmse %v != final %v", i, snap.RMSE, refStats[i].FinalRMSE)
		}
	}
}

// TestEngineIngestAndSnapshotIsolation exercises the daemon-facing surface
// on a single isolated node: mailbox ratings land in the store at the next
// Step, published snapshots are deep copies untouched by later training,
// and Status mirrors the counters.
func TestEngineIngestAndSnapshotIsolation(t *testing.T) {
	cfg := clusterWorkload(t, 1, core.DataSharing, gossip.DPSGD, 1)
	eps := NewChanNet(1)
	defer eps[0].Close()
	e, err := NewEngine(Config{
		Node: cfg.Nodes[0], Endpoint: eps[0],
		NewModel: cfg.NewModel, Publish: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if e.Snapshot() != nil {
		t.Fatal("snapshot published before any epoch")
	}
	if st := e.Status(); st == nil || st.Epoch != 0 || !math.IsNaN(st.RMSE) {
		t.Fatalf("initial status %+v", st)
	}

	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	snap1 := e.Snapshot()
	if snap1 == nil || snap1.Epoch != 1 {
		t.Fatalf("snapshot after first step: %+v", snap1)
	}
	storeLen := cfg.Nodes[0].Store.Len()
	if len(snap1.Ratings) != storeLen {
		t.Fatalf("snapshot holds %d ratings, store %d", len(snap1.Ratings), storeLen)
	}

	// Ingest one novel rating and one duplicate; the next step must fold
	// exactly the novel one into the store and the following snapshot.
	novel := dataset.Rating{User: 1 << 20, Item: 7, Value: 4.5}
	dup := snap1.Ratings[0]
	if got := e.Ingest([]dataset.Rating{novel, dup}); got != 2 {
		t.Fatalf("Ingest accepted %d of 2", got)
	}
	if cfg.Nodes[0].Store.Len() != storeLen {
		t.Fatal("mailbox leaked into the store before Step")
	}
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.Nodes[0].Store.Len(); got != storeLen+1 {
		t.Fatalf("store has %d ratings after ingest, want %d", got, storeLen+1)
	}
	if !cfg.Nodes[0].Store.Contains(novel.User, novel.Item) {
		t.Fatal("ingested rating missing from store")
	}
	snap2 := e.Snapshot()
	if len(snap2.Ratings) != storeLen+1 {
		t.Fatalf("second snapshot holds %d ratings, want %d", len(snap2.Ratings), storeLen+1)
	}
	// snap1 must be isolated from everything that happened after it.
	if len(snap1.Ratings) != storeLen {
		t.Fatal("first snapshot mutated by later ingest")
	}
	if snap1.Model.Predict(0, 0) == snap2.Model.Predict(0, 0) &&
		snap1.RMSE == snap2.RMSE && storeLen > 0 {
		// Training moved the live model; a cloned snapshot model may
		// coincidentally predict equal values, but rmse+prediction both
		// frozen would mean the snapshot aliases live state.
		t.Log("warning: consecutive snapshots identical; clone isolation unverifiable here")
	}

	st := e.Status()
	if st.Epoch != 2 || st.Ingested != 2 {
		t.Fatalf("status %+v, want epoch 2 ingested 2", st)
	}
	if e.Draining() {
		t.Fatal("draining before Drain")
	}
	e.Drain()
	if st := e.Status(); !e.Draining() || st.Draining {
		// Status is republished per epoch; the flag appears after the next
		// step. Just check the engine-side flag flipped.
		_ = st
	}
}

// TestEngineResumeStartEpoch pins the resume contract on an isolated node:
// an engine restarted with StartEpoch=E continues the epoch count from E
// and keeps training from the restored state.
func TestEngineResumeStartEpoch(t *testing.T) {
	cfg := clusterWorkload(t, 1, core.DataSharing, gossip.DPSGD, 1)
	node := cfg.Nodes[0]
	eps := NewChanNet(1)
	defer eps[0].Close()
	e, err := NewEngine(Config{Node: node, Endpoint: eps[0], NewModel: cfg.NewModel, Publish: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	e.Stop()
	snap := e.Snapshot()

	// "Restart": rebuild the node from the snapshot, as cmd/rexd does.
	restored := core.RestoreNode(node.Cfg, snap.Model.Clone(), snap.Ratings, cfg.Nodes[0].Test, snap.Epoch)
	eps2 := NewChanNet(1)
	defer eps2[0].Close()
	e2, err := NewEngine(Config{
		Node: restored, Endpoint: eps2[0], NewModel: cfg.NewModel,
		Publish: true, StartEpoch: snap.Epoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Start(); err != nil {
		t.Fatal(err)
	}
	defer e2.Stop()
	if e2.Epoch() != 3 {
		t.Fatalf("resumed engine at epoch %d, want 3", e2.Epoch())
	}
	rmse, err := e2.Step()
	if err != nil {
		t.Fatal(err)
	}
	if e2.Epoch() != 4 || restored.Epoch() != 4 {
		t.Fatalf("after resumed step: engine epoch %d node epoch %d, want 4/4", e2.Epoch(), restored.Epoch())
	}
	if math.IsNaN(rmse) || rmse <= 0 || rmse > 3 {
		t.Fatalf("resumed rmse %v", rmse)
	}
	if got := e2.Snapshot(); got.Epoch != 4 {
		t.Fatalf("resumed snapshot epoch %d, want 4", got.Epoch)
	}
}
