package runtime

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// frame layout: uint32 length, uint32 sender id, payload.
const frameHeader = 8

// maxFrame bounds a frame to keep a malicious peer from exhausting memory.
const maxFrame = 512 << 20

// laneQueueDepth bounds each per-peer outbound queue. A full queue applies
// backpressure to Send rather than buffering without limit.
const laneQueueDepth = 64

// Lane write batching: when the writer wakes up with frames queued behind
// the one it took, it coalesces them — up to laneBatchFrames frames or
// laneBatchBytes bytes — into a single vectored write, one syscall and
// one TCP push instead of one per frame. Framing is untouched: each
// frame keeps its own length prefix, so the receiver (and the per-frame
// seccha seals and replay window riding inside) see exactly the same
// byte stream, just in fewer segments.
const (
	laneBatchFrames = 16
	laneBatchBytes  = 256 << 10
)

// dial retry schedule: cluster members may start in any order, so the
// first frame to a peer waits for it to come up.
const (
	dialAttempts = 50
	dialBackoff  = 200 * time.Millisecond
	dialTimeout  = 2 * time.Second
)

// writeTimeout bounds a single frame write so a stalled peer cannot wedge
// its lane forever; flushTimeout bounds the drain of queued frames during
// Close (a node's last-epoch shares may still be queued when it shuts
// down — peers need them to finish their own last gather).
const (
	writeTimeout = 30 * time.Second
	flushTimeout = 2 * time.Second
)

// TCPNet is a TCP-based Endpoint: one listener accepting inbound streams,
// and one outbound *lane* per peer — a dedicated writer goroutine behind a
// bounded queue. Sends to distinct peers never contend: Send only frames
// the message and enqueues it, and each lane dials and writes outside any
// shared lock, so one slow or absent peer cannot stall gossip to the rest.
type TCPNet struct {
	id    int
	peers map[int]string

	ln    net.Listener
	inbox chan Envelope

	mu       sync.Mutex
	lanes    map[int]*tcpLane
	accepted []net.Conn
	done     chan struct{}
	wg       sync.WaitGroup
	once     sync.Once
}

// tcpLane is the outbound path to one peer: a bounded queue of framed
// messages drained by a single writer goroutine that owns the connection.
// Frame buffers recycle through the free list, so steady-state sends
// allocate nothing in the transport.
type tcpLane struct {
	net  *TCPNet
	to   int
	addr string

	queue chan []byte
	free  chan []byte
	qhwm  atomic.Int64

	// sendMu serializes producers with the writer's shutdown flush: every
	// enqueue happens under it, and flush marks `closed` under it after a
	// final drain, so a Send can never slip a frame into a queue nobody
	// will ever empty (which would return nil yet silently drop data).
	sendMu sync.Mutex
	closed bool

	mu   sync.Mutex
	conn net.Conn // owned by the writer; closed by Close to unblock it
	err  error    // sticky transport failure, reported by later Sends

	// batch and bufs are the writer's reusable batching scratch. They are
	// two slices because net.Buffers.WriteTo consumes (re-slices) the
	// buffer list it is handed: bufs is the copy handed to the kernel,
	// batch retains the frames so they can be recycled afterwards.
	batch [][]byte
	bufs  net.Buffers
}

// NewTCPNet starts a TCP endpoint for node id, listening on listenAddr,
// with peers mapping node ids to host:port addresses.
func NewTCPNet(id int, listenAddr string, peers map[int]string) (*TCPNet, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("runtime: listen %s: %w", listenAddr, err)
	}
	t := &TCPNet{
		id: id, peers: peers, ln: ln,
		inbox: make(chan Envelope, 1024),
		lanes: make(map[int]*tcpLane),
		done:  make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCPNet) Addr() net.Addr { return t.ln.Addr() }

func (t *TCPNet) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.accepted = append(t.accepted, conn)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPNet) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	hdr := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		ln := binary.LittleEndian.Uint32(hdr)
		from := int(binary.LittleEndian.Uint32(hdr[4:]))
		if ln > maxFrame {
			return
		}
		body := make([]byte, ln)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		select {
		case t.inbox <- Envelope{From: from, Data: body}:
		case <-t.done:
			return
		}
	}
}

// lane returns (creating and starting if needed) the outbound lane to a
// peer. Only the lanes-map lookup holds t.mu; dialing happens in the
// lane's writer goroutine, which is also the per-peer dial guard — one
// dialer per peer, never blocking sends to other peers.
func (t *TCPNet) lane(to int) (*tcpLane, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.lanes[to]; ok {
		return l, nil
	}
	addr, ok := t.peers[to]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown peer %d", to)
	}
	select {
	case <-t.done:
		return nil, errEndpointClosed
	default:
	}
	l := &tcpLane{
		net: t, to: to, addr: addr,
		queue: make(chan []byte, laneQueueDepth),
		free:  make(chan []byte, laneQueueDepth),
	}
	t.lanes[to] = l
	t.wg.Add(1)
	go l.run()
	return l, nil
}

// Send implements Endpoint: frame the message and hand it to the peer's
// lane. It blocks only when that peer's queue is full (backpressure), and
// returns the lane's sticky error if the peer has failed.
func (t *TCPNet) Send(to int, data []byte) error {
	return t.send(to, nil, data)
}

// send frames prefix+data as one message. The prefix rides inside the
// lane's recycled frame buffer, so layered transports (the shard bridge's
// routing header) add theirs without an extra allocation and copy.
func (t *TCPNet) send(to int, prefix, data []byte) error {
	l, err := t.lane(to)
	if err != nil {
		return err
	}
	if err := l.sticky(); err != nil {
		return err
	}
	body := len(prefix) + len(data)
	frame := l.buffer(frameHeader + body)
	binary.LittleEndian.PutUint32(frame, uint32(body))
	binary.LittleEndian.PutUint32(frame[4:], uint32(t.id))
	copy(frame[frameHeader:], prefix)
	copy(frame[frameHeader+len(prefix):], data)
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	if l.closed {
		l.recycle(frame)
		return errEndpointClosed
	}
	select {
	case l.queue <- frame: // blocking here is the per-peer backpressure
		maxQueueHWM(&l.qhwm, int64(len(l.queue)))
		return nil
	case <-t.done:
		l.recycle(frame)
		return errEndpointClosed
	}
}

// Inbox implements Endpoint.
func (t *TCPNet) Inbox() <-chan Envelope { return t.inbox }

// Done implements Endpoint.
func (t *TCPNet) Done() <-chan struct{} { return t.done }

// SendQueueHWM implements QueueReporter: the deepest any outbound lane's
// queue has been.
func (t *TCPNet) SendQueueHWM() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	hwm := 0
	for _, l := range t.lanes {
		if v := int(l.qhwm.Load()); v > hwm {
			hwm = v
		}
	}
	return hwm
}

// Close implements Endpoint: it stops accepting sends, gives each lane a
// bounded window to flush frames already queued (so peers still get this
// node's final shares), then tears everything down.
func (t *TCPNet) Close() error {
	t.once.Do(func() {
		close(t.done)
		t.ln.Close()
		t.mu.Lock()
		for _, l := range t.lanes {
			l.interrupt()
		}
		for _, c := range t.accepted {
			c.Close()
		}
		t.mu.Unlock()
		t.wg.Wait()
		// All readLoop senders have exited; closing the inbox is safe and
		// lets range-style consumers terminate.
		close(t.inbox)
	})
	return nil
}

// run is the lane's writer goroutine: dial once (with retries), then drain
// the queue into the connection. On failure the error sticks — later
// Sends to this peer report it — and the lane keeps discarding queued
// frames so senders never block on a dead peer.
func (l *tcpLane) run() {
	defer l.net.wg.Done()
	conn, err := l.dialRetry()
	if err != nil {
		l.fail(err)
		l.discard()
		return
	}
	l.mu.Lock()
	l.conn = conn
	l.mu.Unlock()
	select {
	case <-l.net.done: // Close raced the dial and may have missed the conn
		l.flush(conn)
		return
	default:
	}
	for {
		select {
		case frame := <-l.queue:
			conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			err := l.writeBatch(conn, frame)
			if err != nil {
				conn.Close()
				l.fail(fmt.Errorf("runtime: sending to %d: %w", l.to, err))
				l.discard()
				return
			}
		case <-l.net.done:
			l.flush(conn)
			return
		}
	}
}

// writeBatch coalesces first with whatever else is already queued (up to
// the lane batch caps) into one vectored write, then recycles every frame.
// A seal round queues one frame per peer in a burst, so the writer usually
// finds the next round's frames waiting by the time it wakes up.
func (l *tcpLane) writeBatch(conn net.Conn, first []byte) error {
	batch := append(l.batch[:0], first)
	size := len(first)
fill:
	for len(batch) < laneBatchFrames && size < laneBatchBytes {
		select {
		case f := <-l.queue:
			batch = append(batch, f)
			size += len(f)
		default:
			break fill
		}
	}
	l.batch = batch
	var err error
	if len(batch) == 1 {
		_, err = conn.Write(first)
	} else {
		l.bufs = append(l.bufs[:0], batch...)
		_, err = l.bufs.WriteTo(conn)
	}
	for i, f := range batch {
		l.recycle(f)
		batch[i] = nil // drop the reference; the free list owns it now
	}
	return err
}

// flush drains frames queued before shutdown into the connection, bounded
// by flushTimeout, then closes it. Marking the lane closed under sendMu
// after the final drain guarantees no Send can enqueue into — and lose a
// frame to — a queue the departed writer will never service again.
func (l *tcpLane) flush(conn net.Conn) {
	conn.SetWriteDeadline(time.Now().Add(flushTimeout))
	drain := func() bool {
		for {
			select {
			case frame := <-l.queue:
				_, err := conn.Write(frame)
				l.recycle(frame)
				if err != nil {
					l.fail(fmt.Errorf("runtime: sending to %d: %w", l.to, err))
					return false
				}
			default:
				return true
			}
		}
	}
	ok := drain()
	l.sendMu.Lock()
	l.closed = true
	if ok {
		drain() // frames that raced in between the first drain and closed
	}
	l.sendMu.Unlock()
	conn.Close()
}

// dialRetry establishes the outbound connection, retrying so cluster
// members may start in any order. It runs in the writer goroutine — no
// lock is held while waiting, which is the fix for the old transport
// holding the endpoint mutex across the whole 50 x 200 ms retry loop.
func (l *tcpLane) dialRetry() (net.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < dialAttempts; attempt++ {
		c, err := net.DialTimeout("tcp", l.addr, dialTimeout)
		if err == nil {
			return c, nil
		}
		lastErr = err
		select {
		case <-l.net.done:
			return nil, errEndpointClosed
		case <-time.After(dialBackoff):
		}
	}
	return nil, fmt.Errorf("runtime: dialing peer %d at %s: %w", l.to, l.addr, lastErr)
}

// discard drains queued frames after a failure so producers blocked on a
// full queue wake up; it exits when the endpoint closes (marking the lane
// closed first, so no later Send strands a frame).
func (l *tcpLane) discard() {
	for {
		select {
		case frame := <-l.queue:
			l.recycle(frame)
		case <-l.net.done:
			l.sendMu.Lock()
			l.closed = true
			for {
				select {
				case frame := <-l.queue:
					l.recycle(frame)
				default:
					l.sendMu.Unlock()
					return
				}
			}
		}
	}
}

// buffer returns a frame buffer of length n, reusing a recycled one when
// it fits.
func (l *tcpLane) buffer(n int) []byte {
	select {
	case b := <-l.free:
		if cap(b) >= n {
			return b[:n]
		}
	default:
	}
	return make([]byte, n)
}

func (l *tcpLane) recycle(b []byte) {
	select {
	case l.free <- b:
	default:
	}
}

func (l *tcpLane) sticky() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *tcpLane) fail(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = err
	}
}

// interrupt caps how long an in-flight write may still take once Close
// has begun, without yanking the connection out from under the writer's
// flush.
func (l *tcpLane) interrupt() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn != nil {
		l.conn.SetWriteDeadline(time.Now().Add(flushTimeout))
	}
}
