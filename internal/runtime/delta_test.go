package runtime

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/mf"
	"rex/internal/model"
)

// newDeltaPair builds two bare runners wired as mutual neighbors (ids 0
// and 1) with delta streams initialized, so tests can drive
// encodeDeltaBody / decodeDeltaFrame directly without a transport.
func newDeltaPair() (a, b *runner) {
	newModel := func() model.Model { return mf.New(mf.DefaultConfig()) }
	a = &runner{cfg: Config{Neighbors: []int{1}, Wire: WireDelta, NewModel: newModel}}
	b = &runner{cfg: Config{Neighbors: []int{0}, Wire: WireDelta, NewModel: newModel}}
	a.initDelta(false)
	b.initDelta(false)
	return a, b
}

// ship encodes a payload on from (addressed to peer `nb`) and decodes it
// on to (as sender `nb`'s counterpart), failing the test on either error.
func ship(t *testing.T, from, to *runner, fromID, toID int, p core.Payload) (core.Payload, deltaSendStats) {
	t.Helper()
	body, st := from.encodeDeltaBody(nil, toID, p)
	got, err := to.decodeDeltaFrame(fromID, body)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got, st
}

func sortedRatings(rs []dataset.Rating) []dataset.Rating {
	out := append([]dataset.Rating(nil), rs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

func sameMultiset(t *testing.T, got, want []dataset.Rating) {
	t.Helper()
	g, w := sortedRatings(got), sortedRatings(want)
	if len(g) != len(w) {
		t.Fatalf("got %d ratings, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("rating %d: got %+v want %+v", i, g[i], w[i])
		}
	}
}

func sampleRatings(n int, seed int64) []dataset.Rating {
	rng := rand.New(rand.NewSource(seed))
	out := make([]dataset.Rating, n)
	for i := range out {
		out[i] = dataset.Rating{
			User:  uint32(rng.Intn(200)),
			Item:  uint32(i), // distinct keys
			Value: float32(rng.Intn(9)+2) / 2,
		}
	}
	return out
}

// BenchmarkDeltaEncode measures the steady-state share-path round: one op
// encodes a 60-point frame against a warmed, fully acked dictionary (the
// ref-heavy common case), decodes it on the receiver, and carries the ack
// back on an empty reverse frame. SetBytes counts what the flat encoding
// would have put on the wire, so MB/s reads as raw-equivalent throughput;
// wireB/frame is the actual encoded size.
func BenchmarkDeltaEncode(b *testing.B) {
	tx, rx := newDeltaPair()
	const pts = 60
	pool := sampleRatings(10*pts, 7)
	roundTrip := func(buf, ack []byte, off int) ([]byte, []byte, deltaSendStats) {
		p := core.Payload{From: 0, Degree: 1, Data: pool[off : off+pts]}
		buf, st := tx.encodeDeltaBody(buf[:0], 1, p)
		if _, err := rx.decodeDeltaFrame(0, buf); err != nil {
			b.Fatal(err)
		}
		ack, _ = rx.encodeDeltaBody(ack[:0], 0, core.Payload{From: 1, Degree: 1})
		if _, err := tx.decodeDeltaFrame(1, ack); err != nil {
			b.Fatal(err)
		}
		return buf, ack, st
	}
	var buf, ack []byte
	var st deltaSendStats
	for off := 0; off+pts <= len(pool); off += pts { // warm lap: dictionary + acks
		buf, ack, _ = roundTrip(buf, ack, off)
	}
	var wire, raw int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, ack, st = roundTrip(buf, ack, (i%10)*pts)
		wire += int64(len(buf))
		raw += st.raw
	}
	b.StopTimer()
	b.SetBytes(raw / int64(b.N))
	b.ReportMetric(float64(wire)/float64(b.N), "wireB/frame")
	b.ReportMetric(float64(raw)/float64(wire), "compression-x")
}

func TestParseWireMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want WireMode
		ok   bool
	}{
		{"", WireDelta, true},
		{"delta", WireDelta, true},
		{"full", WireFull, true},
		{"flat", 0, false},
	} {
		got, err := ParseWireMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseWireMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if WireDelta.String() != "delta" || WireFull.String() != "full" {
		t.Fatal("String() drifted from flag values")
	}
}

// TestDeltaRefRoundtrip drives the happy path: first send all-explicit,
// an ack riding an empty reverse frame, then a resend as pure
// back-references and a value change forcing a single re-explicit entry.
func TestDeltaRefRoundtrip(t *testing.T) {
	a, b := newDeltaPair()
	s := sampleRatings(12, 1)

	got, st := ship(t, a, b, 0, 1, core.Payload{From: 0, Degree: 1, Data: s})
	if st.explicit != 12 || st.refs != 0 {
		t.Fatalf("first frame: explicit=%d refs=%d", st.explicit, st.refs)
	}
	sameMultiset(t, got.Data, s)

	// Reverse empty frame carries the ack for seq 1.
	if _, _ = ship(t, b, a, 1, 0, core.Payload{From: 1, Degree: 1}); a.tx[1].ackedSeq != 1 {
		t.Fatalf("ackedSeq = %d, want 1", a.tx[1].ackedSeq)
	}

	got, st = ship(t, a, b, 0, 1, core.Payload{From: 0, Degree: 1, Data: s})
	if st.explicit != 0 || st.refs != 12 {
		t.Fatalf("resend: explicit=%d refs=%d", st.explicit, st.refs)
	}
	// References sort by dictionary index = insertion order, so the
	// reconstruction preserves the original sample order exactly.
	for i := range s {
		if got.Data[i] != s[i] {
			t.Fatalf("resend order drifted at %d: %+v != %+v", i, got.Data[i], s[i])
		}
	}

	s2 := append([]dataset.Rating(nil), s...)
	s2[5].Value += 0.5
	got, st = ship(t, a, b, 0, 1, core.Payload{From: 0, Degree: 1, Data: s2})
	if st.explicit != 1 || st.refs != 11 {
		t.Fatalf("value change: explicit=%d refs=%d", st.explicit, st.refs)
	}
	sameMultiset(t, got.Data, s2)
}

// TestDeltaDuplicateAndReorder checks the faultnet-visible cases: an
// adjacent swap decodes both frames and leaves no gap, and a duplicate
// reconstructs identically without recommitting.
func TestDeltaDuplicateAndReorder(t *testing.T) {
	a, b := newDeltaPair()
	s1, s2, s3 := sampleRatings(6, 1), sampleRatings(6, 2), sampleRatings(6, 3)

	ship(t, a, b, 0, 1, core.Payload{From: 0, Degree: 1, Data: s1})
	body2, _ := a.encodeDeltaBody(nil, 1, core.Payload{From: 0, Degree: 1, Data: s2})
	body3, _ := a.encodeDeltaBody(nil, 1, core.Payload{From: 0, Degree: 1, Data: s3})

	p3, err := b.decodeDeltaFrame(0, body3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.decodeDeltaFrame(0, body2)
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, p3.Data, s3)
	sameMultiset(t, p2.Data, s2)
	rx := b.rx[0]
	if rx.watermark != 3 || rx.wantResync {
		t.Fatalf("after swap: watermark=%d wantResync=%v", rx.watermark, rx.wantResync)
	}

	dup, err := b.decodeDeltaFrame(0, body2)
	if err != nil {
		t.Fatalf("duplicate rejected: %v", err)
	}
	sameMultiset(t, dup.Data, s2)
	if rx.watermark != 3 || len(rx.dict) != 18 {
		t.Fatalf("duplicate mutated stream: watermark=%d dict=%d", rx.watermark, len(rx.dict))
	}
}

// TestDeltaGapResync loses three frames in a row and checks the full
// recovery loop: gap -> resync request piggybacked on the reverse frame ->
// stream reset -> references work again on the rebased dictionary.
func TestDeltaGapResync(t *testing.T) {
	a, b := newDeltaPair()
	s := sampleRatings(8, 4)

	ship(t, a, b, 0, 1, core.Payload{From: 0, Degree: 1, Data: s})
	for i := 0; i < 3; i++ { // frames 2..4 lost: encoded, never delivered
		a.encodeDeltaBody(nil, 1, core.Payload{From: 0, Degree: 1, Data: s})
	}
	ship(t, a, b, 0, 1, core.Payload{From: 0, Degree: 1, Data: s})
	if rx := b.rx[0]; !rx.wantResync || rx.watermark != 1 || rx.highSeen != 5 {
		t.Fatalf("gap not detected: %+v", rx)
	}

	// B's next outbound frame carries the request; A arms a reset.
	ship(t, b, a, 1, 0, core.Payload{From: 1, Degree: 1})
	if !a.tx[1].pendingReset {
		t.Fatal("resync request did not arm a reset")
	}

	got, st := ship(t, a, b, 0, 1, core.Payload{From: 0, Degree: 1, Data: s})
	if !st.resync || st.explicit != 8 {
		t.Fatalf("reset frame: resync=%v explicit=%d", st.resync, st.explicit)
	}
	sameMultiset(t, got.Data, s)
	rx := b.rx[0]
	if rx.base != 6 || rx.watermark != 6 || rx.wantResync {
		t.Fatalf("rebase failed: base=%d watermark=%d wantResync=%v", rx.base, rx.watermark, rx.wantResync)
	}

	// Ack the reset, then the stream back-references against the new base.
	ship(t, b, a, 1, 0, core.Payload{From: 1, Degree: 1})
	_, st = ship(t, a, b, 0, 1, core.Payload{From: 0, Degree: 1, Data: s})
	if st.refs != 8 || st.explicit != 0 {
		t.Fatalf("post-reset refs: explicit=%d refs=%d", st.explicit, st.refs)
	}
}

// TestDeltaStalePreResetFrame delays a reference-carrying frame across a
// stream reset (the adjacent-swap-around-reset case): it must still
// resolve against the archived window and merge, without committing.
func TestDeltaStalePreResetFrame(t *testing.T) {
	a, b := newDeltaPair()
	s := sampleRatings(5, 7)

	ship(t, a, b, 0, 1, core.Payload{From: 0, Degree: 1, Data: s})
	ship(t, b, a, 1, 0, core.Payload{From: 1, Degree: 1}) // ack seq 1

	// Frame 2 references the old dictionary but is held back.
	held, st := a.encodeDeltaBody(nil, 1, core.Payload{From: 0, Degree: 1, Data: s})
	if st.refs != 5 {
		t.Fatalf("held frame refs=%d", st.refs)
	}
	// Frame 3 is a reset that overtakes it.
	a.tx[1].pendingReset = true
	ship(t, a, b, 0, 1, core.Payload{From: 0, Degree: 1, Data: s})
	rx := b.rx[0]
	if rx.base != 3 || rx.watermark != 3 {
		t.Fatalf("rebase: base=%d watermark=%d", rx.base, rx.watermark)
	}

	p, err := b.decodeDeltaFrame(0, held)
	if err != nil {
		t.Fatalf("stale frame rejected: %v", err)
	}
	sameMultiset(t, p.Data, s)
	if rx.watermark != 3 || len(rx.dict) != 5 {
		t.Fatalf("stale frame mutated stream: watermark=%d dict=%d", rx.watermark, len(rx.dict))
	}
}

// TestDeltaChecksumDiscard corrupts the payload checksum and checks the
// frame is discarded without mutating the stream — then the intact copy
// of the same frame still commits.
func TestDeltaChecksumDiscard(t *testing.T) {
	a, b := newDeltaPair()
	s := sampleRatings(6, 9)

	ship(t, a, b, 0, 1, core.Payload{From: 0, Degree: 1, Data: s})
	body, _ := a.encodeDeltaBody(nil, 1, core.Payload{From: 0, Degree: 1, Data: s})
	bad := append([]byte(nil), body...)
	bad[len(bad)-1] ^= 0xff
	if _, err := b.decodeDeltaFrame(0, bad); !errors.Is(err, errDeltaDiscard) {
		t.Fatalf("corrupt checksum: err=%v", err)
	}
	rx := b.rx[0]
	if rx.watermark != 1 || !rx.wantResync {
		t.Fatalf("discard state: watermark=%d wantResync=%v", rx.watermark, rx.wantResync)
	}
	if _, err := b.decodeDeltaFrame(0, body); err != nil {
		t.Fatalf("intact redelivery rejected: %v", err)
	}
	if rx.watermark != 2 {
		t.Fatalf("intact redelivery did not commit: watermark=%d", rx.watermark)
	}
}

// TestDeltaRejectWithoutMutation feeds malformed bodies (truncations and
// bit flips of a valid frame) and checks no rejected byte string moves
// the stream state.
func TestDeltaRejectWithoutMutation(t *testing.T) {
	a, b := newDeltaPair()
	s := sampleRatings(6, 11)
	ship(t, a, b, 0, 1, core.Payload{From: 0, Degree: 1, Data: s})
	body, _ := a.encodeDeltaBody(nil, 1, core.Payload{From: 0, Degree: 1, Data: s})

	rx := b.rx[0]
	snap := func() (uint64, uint64, uint64, int, int) {
		return rx.base, rx.watermark, rx.highSeen, len(rx.dict), len(rx.segs)
	}
	b0, w0, h0, d0, g0 := snap()
	for cut := 0; cut < len(body); cut++ {
		if _, err := b.decodeDeltaFrame(0, body[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		b1, w1, h1, d1, g1 := snap()
		if b1 != b0 || w1 != w0 || h1 != h0 || d1 != d0 || g1 != g0 {
			t.Fatalf("truncation at %d mutated stream state", cut)
		}
	}
	flipped := append([]byte(nil), body...)
	flipped[8] |= 0x80 // unknown flag bit
	if _, err := b.decodeDeltaFrame(0, flipped); !errors.Is(err, errDeltaDiscard) {
		t.Fatalf("unknown flag: err=%v", err)
	}
	if b1, w1, h1, d1, g1 := snap(); b1 != b0 || w1 != w0 || h1 != h0 || d1 != d0 || g1 != g0 {
		t.Fatal("unknown flag mutated stream state")
	}
}

// TestDeltaDictCapReset drives a stream into its dictionary cap and
// checks the overflow path end to end: the overflowing frame goes out as
// a full (reset) frame, both sides' dictionaries restart bounded, and
// back-references work again against the rebased window.
func TestDeltaDictCapReset(t *testing.T) {
	a, b := newDeltaPair()
	a.tx[1].dictCap = 20
	sendAndAck := func(s []dataset.Rating) deltaSendStats {
		t.Helper()
		got, st := ship(t, a, b, 0, 1, core.Payload{From: 0, Degree: 1, Data: s})
		sameMultiset(t, got.Data, s)
		ship(t, b, a, 1, 0, core.Payload{From: 1, Degree: 1}) // carry the ack back
		return st
	}

	// Two fresh samples fill the dictionary to 16 of 20 entries.
	sendAndAck(sampleRatings(8, 21))
	if st := sendAndAck(sampleRatings(8, 22)); st.resync || st.explicit != 8 {
		t.Fatalf("under cap: resync=%v explicit=%d", st.resync, st.explicit)
	}
	if a.tx[1].dictLen != 16 {
		t.Fatalf("dictLen = %d, want 16", a.tx[1].dictLen)
	}

	// A third fresh sample would overflow: the frame must roll the stream
	// over instead of growing past the cap.
	s3 := sampleRatings(8, 23)
	st := sendAndAck(s3)
	if !st.resync || st.explicit != 8 || st.refs != 0 {
		t.Fatalf("overflow frame: resync=%v explicit=%d refs=%d", st.resync, st.explicit, st.refs)
	}
	if a.tx[1].dictLen != 8 || len(a.tx[1].lastSent) != 8 {
		t.Fatalf("sender dict not restarted: dictLen=%d lastSent=%d", a.tx[1].dictLen, len(a.tx[1].lastSent))
	}
	rx := b.rx[0]
	if rx.base != 3 || rx.watermark != 3 || len(rx.dict) != 8 {
		t.Fatalf("receiver not rebased: base=%d watermark=%d dict=%d", rx.base, rx.watermark, len(rx.dict))
	}

	// The acked reset is a normal stream start: a resend back-references
	// the rebased dictionary without another reset.
	if st := sendAndAck(s3); st.resync || st.refs != 8 || st.explicit != 0 {
		t.Fatalf("post-cap resend: resync=%v explicit=%d refs=%d", st.resync, st.explicit, st.refs)
	}
}

// TestRequestResetSuppression pins the one-reset-in-flight window.
func TestRequestResetSuppression(t *testing.T) {
	tx := &deltaTx{lastResetSeq: 5, ackedSeq: 4, seqOut: 5}
	tx.requestReset()
	if tx.pendingReset {
		t.Fatal("reset re-armed inside the in-flight window")
	}
	tx.seqOut = 7 // window lapsed without an ack: the reset was lost, retry
	tx.requestReset()
	if !tx.pendingReset {
		t.Fatal("lost reset never retried")
	}
	tx = &deltaTx{lastResetSeq: 5, ackedSeq: 5, seqOut: 5}
	tx.requestReset() // reset acked: a new request is honored immediately
	if !tx.pendingReset {
		t.Fatal("acked reset suppressed a fresh request")
	}
}

// TestDeltaModelSection round-trips a model payload, covering the
// DEFLATE-above-threshold path.
func TestDeltaModelSection(t *testing.T) {
	mcfg := mf.DefaultConfig()
	m := mf.New(mcfg)
	m.Train(sampleRatings(64, 13), 50, rand.New(rand.NewSource(2)))

	a, b := newDeltaPair()
	p := core.Payload{From: 0, Degree: 1, Model: m}
	if err := a.buildModelSection(p); err != nil {
		t.Fatal(err)
	}
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) >= deflateModelThreshold && len(a.modelSection) >= len(raw) {
		t.Fatalf("model section not compressed: %d >= %d", len(a.modelSection), len(raw))
	}
	got, _ := ship(t, a, b, 0, 1, p)
	if got.Model == nil {
		t.Fatal("model payload lost")
	}
	for _, probe := range [][2]uint32{{1, 2}, {17, 3}, {150, 40}} {
		if got.Model.Predict(probe[0], probe[1]) != m.Predict(probe[0], probe[1]) {
			t.Fatalf("model drifted at %v", probe)
		}
	}
}
