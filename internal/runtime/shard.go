package runtime

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rex/internal/attest"
	"rex/internal/core"
	"rex/internal/model"
	"rex/internal/topology"
)

// This file is the multi-process cluster layer: a topology is partitioned
// into contiguous shards, each shard runs its nodes inside one OS process
// over in-process channels, and cross-shard edges are bridged over a
// single TCP link per shard pair. This is how the paper's 8-node
// two-enclaves-per-platform deployment — and larger meshes — run as real
// multi-process clusters (cmd/rexnode -shard i/of).

// ShardRange returns the contiguous node-id block [lo, hi) owned by shard
// s when n nodes are split across k shards.
func ShardRange(n, k, s int) (lo, hi int) {
	return s * n / k, (s + 1) * n / k
}

// shardOwners maps every node id to its owning shard.
func shardOwners(n, k int) []int {
	owners := make([]int, n)
	for s := 0; s < k; s++ {
		lo, hi := ShardRange(n, k, s)
		for i := lo; i < hi; i++ {
			owners[i] = s
		}
	}
	return owners
}

// shardFrameHeader prefixes every cross-shard frame: uint32 destination
// node, uint32 source node. (The TCP layer's own sender id carries the
// shard index, not the node id, so the bridge re-addresses frames here.)
const shardFrameHeader = 8

// ShardNet is one shard's transport: an Endpoint per local node, local
// edges delivered in-process, cross-shard edges multiplexed over one
// TCPNet whose id space is shard indices. All of TCPNet's per-peer lane
// properties carry over — each remote shard gets its own outbound lane.
type ShardNet struct {
	shard, numShards int
	owners           []int
	tcp              *TCPNet
	locals           map[int]*shardEndpoint
	wg               sync.WaitGroup
	once             sync.Once
}

// shardEndpoint is one local node's port on a ShardNet.
type shardEndpoint struct {
	net   *ShardNet
	id    int
	inbox chan Envelope
	done  chan struct{}
	once  sync.Once
	qhwm  atomic.Int64
}

// NewShardNet starts the transport for shard `shard` of `numShards` over
// an n-node topology: it listens on listenAddr for other shards and dials
// them at shardAddrs (shard index -> host:port). Endpoints for the local
// node block are available via Endpoint.
func NewShardNet(n, numShards, shard int, listenAddr string, shardAddrs map[int]string) (*ShardNet, error) {
	if numShards < 1 || shard < 0 || shard >= numShards {
		return nil, fmt.Errorf("runtime: shard %d of %d out of range", shard, numShards)
	}
	peers := make(map[int]string, len(shardAddrs))
	for s, addr := range shardAddrs {
		if s != shard {
			peers[s] = addr
		}
	}
	tcp, err := NewTCPNet(shard, listenAddr, peers)
	if err != nil {
		return nil, err
	}
	s := &ShardNet{
		shard: shard, numShards: numShards,
		owners: shardOwners(n, numShards),
		tcp:    tcp,
		locals: make(map[int]*shardEndpoint),
	}
	lo, hi := ShardRange(n, numShards, shard)
	for i := lo; i < hi; i++ {
		s.locals[i] = &shardEndpoint{
			net: s, id: i,
			inbox: make(chan Envelope, 16*n+64),
			done:  make(chan struct{}),
		}
	}
	s.wg.Add(1)
	go s.demux()
	return s, nil
}

// Addr returns the bridge's bound listen address.
func (s *ShardNet) Addr() string { return s.tcp.Addr().String() }

// Endpoint returns the transport port of a local node.
func (s *ShardNet) Endpoint(node int) (Endpoint, error) {
	ep, ok := s.locals[node]
	if !ok {
		lo, hi := ShardRange(len(s.owners), s.numShards, s.shard)
		return nil, fmt.Errorf("runtime: node %d is not in shard %d (owns [%d,%d))", node, s.shard, lo, hi)
	}
	return ep, nil
}

// demux routes inbound cross-shard frames to the destination node's inbox.
func (s *ShardNet) demux() {
	defer s.wg.Done()
	for env := range s.tcp.Inbox() {
		if len(env.Data) < shardFrameHeader {
			continue // malformed bridge frame
		}
		to := int(binary.LittleEndian.Uint32(env.Data))
		from := int(binary.LittleEndian.Uint32(env.Data[4:]))
		dst, ok := s.locals[to]
		if !ok {
			continue // mis-addressed frame; the peer shard has a stale map
		}
		select {
		case dst.inbox <- Envelope{From: from, Data: env.Data[shardFrameHeader:]}:
			maxQueueHWM(&dst.qhwm, int64(len(dst.inbox)))
		case <-dst.done:
			// Local node already finished; drop.
		case <-s.tcp.done:
			return
		}
	}
}

// Close shuts down the bridge and every local endpoint.
func (s *ShardNet) Close() error {
	s.once.Do(func() {
		for _, ep := range s.locals {
			ep.Close()
		}
		s.tcp.Close()
		s.wg.Wait()
	})
	return nil
}

// Send implements Endpoint: local peers get an in-process copy, remote
// peers go over the owning shard's TCP lane with a routing prefix.
func (e *shardEndpoint) Send(to int, data []byte) error {
	if to < 0 || to >= len(e.net.owners) {
		return fmt.Errorf("runtime: no peer %d", to)
	}
	select {
	case <-e.done:
		return errEndpointClosed
	default:
	}
	owner := e.net.owners[to]
	if owner == e.net.shard {
		dst, ok := e.net.locals[to]
		if !ok {
			return fmt.Errorf("runtime: no peer %d", to)
		}
		return deliverLocal(e.id, data, to, dst.inbox, dst.done, e.done, &dst.qhwm)
	}
	var hdr [shardFrameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(to))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(e.id))
	return e.net.tcp.send(owner, hdr[:], data)
}

func (e *shardEndpoint) Inbox() <-chan Envelope { return e.inbox }

func (e *shardEndpoint) Done() <-chan struct{} { return e.done }

func (e *shardEndpoint) Close() error {
	e.once.Do(func() { close(e.done) })
	return nil
}

// SendQueueHWM implements QueueReporter: the deeper of this node's inbox
// high-water mark and the shard bridge's outbound lanes.
func (e *shardEndpoint) SendQueueHWM() int {
	hwm := int(e.qhwm.Load())
	if v := e.net.tcp.SendQueueHWM(); v > hwm {
		hwm = v
	}
	return hwm
}

// ShardConfig drives one shard of a multi-process REX deployment. Every
// process is started with the same Graph (and, when Secure, the same
// seed-derived attestation collateral); shard s runs the node block
// ShardRange(Graph.N(), NumShards, s).
type ShardConfig struct {
	Graph *topology.Graph
	// Nodes is the full n-length slice; only this shard's block must be
	// populated (other entries may be nil).
	Nodes []*core.Node
	// Shard / NumShards locate this process in the deployment.
	Shard, NumShards int
	// ListenAddr is this shard's bridge address; ShardAddrs maps every
	// shard index (including this one) to its bridge host:port.
	ListenAddr string
	ShardAddrs map[int]string

	Epochs int
	Secure bool
	// Wire selects the gossip frame encoding for the local nodes (see
	// Config.Wire); the zero value is the delta wire. Mixed-mode shard
	// deployments interoperate (decoding is kind-driven), but matched
	// modes are what the golden trajectory tests pin.
	Wire WireMode
	// Platforms holds attestation platforms for all n nodes and Infra the
	// shared infrastructure root. Every process must derive identical
	// collateral (e.g. from a shared seed, as cmd/rexnode does); only the
	// local block's platforms are used. Required when Secure.
	Platforms []*attest.Platform
	Infra     *attest.Infrastructure
	// NewModel decodes model-sharing payloads (safe for concurrent calls).
	NewModel func() model.Model
	// RoundTimeout enables per-round failure detection.
	RoundTimeout time.Duration
	// PeerGrace, Rejoin and Absent configure failure-detector grace,
	// dropped-peer readmission and oracle churn (see Config); WrapEndpoint
	// wraps each local node's transport (internal/faultnet's injection
	// hook). Every shard process must be given the same scenario for the
	// schedule to stay globally consistent.
	PeerGrace    int
	Rejoin       bool
	Absent       func(node, epoch int) bool
	SkipExpect   func(self, from, epoch int) bool
	WrapEndpoint func(node int, ep Endpoint) Endpoint
	// OnEpoch, when set, observes every local node's epochs.
	OnEpoch func(node, epoch int, rmse float64)
}

// RunShard executes this shard's nodes concurrently, bridged to the other
// shards over TCP, and returns their stats keyed by node id.
func RunShard(cfg ShardConfig) (map[int]*Stats, error) {
	n := cfg.Graph.N()
	if len(cfg.Nodes) != n {
		return nil, fmt.Errorf("runtime: %d nodes for %d-vertex graph", len(cfg.Nodes), n)
	}
	if cfg.Secure && (len(cfg.Platforms) != n || cfg.Infra == nil) {
		return nil, fmt.Errorf("runtime: secure shard requires shared infra and %d platforms", n)
	}
	lo, hi := ShardRange(n, cfg.NumShards, cfg.Shard)
	for i := lo; i < hi; i++ {
		if cfg.Nodes[i] == nil {
			return nil, fmt.Errorf("runtime: shard %d owns node %d but it is nil", cfg.Shard, i)
		}
	}
	net, err := NewShardNet(n, cfg.NumShards, cfg.Shard, cfg.ListenAddr, cfg.ShardAddrs)
	if err != nil {
		return nil, err
	}
	defer net.Close()

	type result struct {
		node int
		st   *Stats
		err  error
	}
	results := make(chan result, hi-lo)
	for i := lo; i < hi; i++ {
		ep, err := net.Endpoint(i)
		if err != nil {
			return nil, err
		}
		if cfg.WrapEndpoint != nil {
			ep = cfg.WrapEndpoint(i, ep)
		}
		go func(i int, ep Endpoint) {
			var platform *attest.Platform
			if cfg.Secure {
				platform = cfg.Platforms[i]
			}
			var onEpoch func(int, float64)
			if cfg.OnEpoch != nil {
				onEpoch = func(e int, rmse float64) { cfg.OnEpoch(i, e, rmse) }
			}
			var skip func(from, epoch int) bool
			if cfg.SkipExpect != nil {
				skip = func(from, epoch int) bool { return cfg.SkipExpect(i, from, epoch) }
			}
			st, err := Run(Config{
				Node:         cfg.Nodes[i],
				Endpoint:     ep,
				Neighbors:    cfg.Graph.Neighbors(i),
				Epochs:       cfg.Epochs,
				Secure:       cfg.Secure,
				Wire:         cfg.Wire,
				Platform:     platform,
				Infra:        cfg.Infra,
				Measurement:  enclaveMeasurement,
				NewModel:     cfg.NewModel,
				OnEpoch:      onEpoch,
				RoundTimeout: cfg.RoundTimeout,
				PeerGrace:    cfg.PeerGrace,
				Rejoin:       cfg.Rejoin,
				Absent:       cfg.Absent,
				SkipExpect:   skip,
			})
			results <- result{i, st, err}
		}(i, ep)
	}
	stats := make(map[int]*Stats, hi-lo)
	var firstErr error
	for i := lo; i < hi; i++ {
		res := <-results
		if res.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("runtime: node %d: %w", res.node, res.err)
		}
		stats[res.node] = res.st
	}
	return stats, firstErr
}
