package runtime

import (
	"crypto/rand"
	"fmt"
	"io"
	"sync"
	"time"

	"rex/internal/attest"
	"rex/internal/core"
	"rex/internal/gossip"
	"rex/internal/model"
	"rex/internal/seccha"
	"rex/internal/topology"
)

// Config drives one live node.
type Config struct {
	// Node is the enclaved protocol state (Algorithm 2).
	Node *core.Node
	// Endpoint is the untrusted network shell (Algorithm 1).
	Endpoint Endpoint
	// Neighbors lists the node's peers in the communication graph.
	Neighbors []int
	// Epochs is the number of merge-train-share-test rounds to run.
	Epochs int

	// Secure enables REX's protections: mutual attestation before any
	// exchange, and AES-GCM sealing of every gossip payload. False runs
	// the paper's "native" build: same protocol, plaintext, unattested.
	Secure bool
	// Platform, Infra and Measurement configure attestation when Secure.
	Platform    *attest.Platform
	Infra       *attest.Infrastructure
	Measurement attest.Measurement
	// Entropy supplies randomness for keys and nonces; defaults to
	// crypto/rand.Reader.
	Entropy io.Reader

	// NewModel constructs an empty model for decoding model-sharing
	// payloads; required in ModelSharing mode.
	NewModel func() model.Model

	// OnEpoch, when set, observes each completed epoch's test RMSE.
	OnEpoch func(epoch int, rmse float64)

	// RoundTimeout bounds how long an epoch waits for each neighbor's
	// message. Zero means wait forever (the paper's failure-free
	// assumption, §III-D). With a timeout, peers that miss a round are
	// declared failed and dropped from the neighbor set — the
	// timeout-based failure detection the paper defers to future work.
	RoundTimeout time.Duration
}

// Stats reports one node's run.
type Stats struct {
	// Stage durations accumulated over all epochs (wall clock).
	Merge, Train, Share, Test time.Duration
	// BytesIn/BytesOut count gossip traffic (post-encryption sizes).
	BytesIn, BytesOut int64
	// Attested counts completed attestation handshakes.
	Attested int
	// PeersLost counts neighbors dropped by the failure detector.
	PeersLost int
	// RMSE is the per-epoch test error trajectory.
	RMSE []float64
	// FinalRMSE is the last entry of RMSE.
	FinalRMSE float64
}

// Run executes one node until Epochs complete. It returns after the
// node's own last epoch; peers may still be finishing theirs.
func Run(cfg Config) (*Stats, error) {
	if cfg.Node == nil || cfg.Endpoint == nil {
		return nil, fmt.Errorf("runtime: node and endpoint are required")
	}
	if cfg.Entropy == nil {
		cfg.Entropy = rand.Reader
	}
	r := &runner{
		cfg:       cfg,
		stats:     &Stats{},
		neighbors: append([]int(nil), cfg.Neighbors...),
		pending:   make(map[int][][]byte),
	}
	if cfg.Secure {
		if cfg.Platform == nil || cfg.Infra == nil {
			return nil, fmt.Errorf("runtime: secure mode requires a platform and infrastructure")
		}
		if err := r.attestAll(); err != nil {
			return nil, fmt.Errorf("runtime: attestation: %w", err)
		}
	}
	return r.stats, r.loop()
}

type runner struct {
	cfg      Config
	stats    *Stats
	channels map[int]*seccha.Channel
	// neighbors is the live neighbor set; the failure detector shrinks it.
	neighbors []int
	// pending holds gossip frames per peer that arrived ahead of the
	// epoch that will consume them (peers may run one epoch ahead).
	pending map[int][][]byte
}

// attestAll performs the §III-A mutual attestation with every neighbor:
// hellos out, quotes exchanged, channels derived.
func (r *runner) attestAll() error {
	exchanges := make(map[int]*attest.Exchange, len(r.cfg.Neighbors))
	for _, nb := range r.cfg.Neighbors {
		ex, err := attest.NewExchange(r.cfg.Platform, r.cfg.Infra, r.cfg.Measurement, r.cfg.Entropy)
		if err != nil {
			return err
		}
		exchanges[nb] = ex
		hello, err := ex.Hello()
		if err != nil {
			return err
		}
		if err := r.cfg.Endpoint.Send(nb, wrap(kindAttest, hello)); err != nil {
			return err
		}
	}
	r.channels = make(map[int]*seccha.Channel, len(r.cfg.Neighbors))
	remaining := len(exchanges)
	for remaining > 0 {
		env, ok := <-r.cfg.Endpoint.Inbox()
		if !ok {
			return fmt.Errorf("endpoint closed with %d peers unattested", remaining)
		}
		if len(env.Data) == 0 {
			return fmt.Errorf("empty frame from %d", env.From)
		}
		if env.Data[0] == kindGossip {
			// A peer that finished attesting us may start epoch 0 while
			// we still attest others; buffer its gossip for the loop.
			r.pending[env.From] = append(r.pending[env.From], env.Data[1:])
			continue
		}
		if env.Data[0] != kindAttest {
			return fmt.Errorf("unknown frame kind %d from %d", env.Data[0], env.From)
		}
		ex, ok := exchanges[env.From]
		if !ok {
			return fmt.Errorf("attestation message from non-neighbor %d", env.From)
		}
		reply, err := ex.HandleMessage(env.Data[1:])
		if err != nil {
			return fmt.Errorf("peer %d: %w", env.From, err)
		}
		if reply != nil {
			if err := r.cfg.Endpoint.Send(env.From, wrap(kindAttest, reply)); err != nil {
				return err
			}
		}
		if ex.Complete() && r.channels[env.From] == nil {
			key, err := ex.ChannelKey()
			if err != nil {
				return err
			}
			ch, err := seccha.NewChannel(key, r.cfg.Node.Cfg.ID < env.From)
			if err != nil {
				return err
			}
			r.channels[env.From] = ch
			r.stats.Attested++
			remaining--
		}
	}
	return nil
}

// loop runs the epochs. Epoch 0 trains on local data only; every later
// epoch first gathers one gossip frame from each neighbor (the Algorithm 2
// line 13 barrier — RMW peers send empty notifications).
func (r *runner) loop() error {
	for e := 0; e < r.cfg.Epochs; e++ {
		deg := len(r.neighbors)
		// --- gather + merge ---
		t0 := time.Now()
		var payloads []core.Payload
		if e > 0 {
			frames, err := r.gatherRound()
			if err != nil {
				return fmt.Errorf("epoch %d: %w", e, err)
			}
			for from, frame := range frames {
				pl, err := r.openPayload(from, frame)
				if err != nil {
					return fmt.Errorf("epoch %d peer %d: %w", e, from, err)
				}
				payloads = append(payloads, pl)
			}
		}
		r.cfg.Node.Merge(payloads, deg)
		r.stats.Merge += time.Since(t0)

		// --- train ---
		t0 = time.Now()
		r.cfg.Node.Train()
		r.stats.Train += time.Since(t0)

		// --- share ---
		t0 = time.Now()
		if err := r.shareRound(); err != nil {
			return fmt.Errorf("epoch %d: %w", e, err)
		}
		r.stats.Share += time.Since(t0)

		// --- test ---
		t0 = time.Now()
		rmse := r.cfg.Node.TestRMSE()
		r.stats.Test += time.Since(t0)
		r.stats.RMSE = append(r.stats.RMSE, rmse)
		r.stats.FinalRMSE = rmse
		if r.cfg.OnEpoch != nil {
			r.cfg.OnEpoch(e, rmse)
		}
	}
	return nil
}

// gatherRound collects one frame from every live neighbor, buffering any
// second frame a fast peer sends early. With RoundTimeout set, neighbors
// that miss the deadline are declared failed and dropped.
func (r *runner) gatherRound() (map[int][]byte, error) {
	need := make(map[int]bool, len(r.neighbors))
	for _, nb := range r.neighbors {
		need[nb] = true
	}
	got := make(map[int][]byte, len(need))
	// Serve from the ahead-of-time buffer first.
	for nb := range need {
		if q := r.pending[nb]; len(q) > 0 {
			got[nb] = q[0]
			r.pending[nb] = q[1:]
			delete(need, nb)
		}
	}
	var deadline <-chan time.Time
	if r.cfg.RoundTimeout > 0 {
		timer := time.NewTimer(r.cfg.RoundTimeout)
		defer timer.Stop()
		deadline = timer.C
	}
	for len(need) > 0 {
		select {
		case env, ok := <-r.cfg.Endpoint.Inbox():
			if !ok {
				return nil, fmt.Errorf("endpoint closed waiting for %d peers", len(need))
			}
			if len(env.Data) == 0 || env.Data[0] != kindGossip {
				continue // stray attestation retransmit; ignore
			}
			frame := env.Data[1:]
			if need[env.From] {
				got[env.From] = frame
				delete(need, env.From)
			} else {
				r.pending[env.From] = append(r.pending[env.From], frame)
			}
		case <-deadline:
			// Failure detection: everyone still missing is declared dead.
			for nb := range need {
				r.dropPeer(nb)
				delete(need, nb)
			}
		}
	}
	return got, nil
}

// dropPeer removes a failed neighbor from the live set.
func (r *runner) dropPeer(id int) {
	for i, nb := range r.neighbors {
		if nb == id {
			r.neighbors = append(r.neighbors[:i], r.neighbors[i+1:]...)
			r.stats.PeersLost++
			return
		}
	}
}

// openPayload decrypts (when secure) and decodes one gossip frame.
func (r *runner) openPayload(from int, frame []byte) (core.Payload, error) {
	r.stats.BytesIn += int64(len(frame))
	body := frame
	if r.cfg.Secure {
		ch := r.channels[from]
		if ch == nil {
			return core.Payload{}, fmt.Errorf("gossip from unattested peer")
		}
		pt, err := ch.Open(frame)
		if err != nil {
			return core.Payload{}, err
		}
		body = pt
	}
	newModel := r.cfg.NewModel
	if newModel == nil {
		newModel = func() model.Model { return nil }
	}
	return DecodePayload(body, newModel)
}

// shareRound sends this epoch's payload to the scheme's targets and empty
// notifications to the remaining neighbors (keeping the barrier moving).
func (r *runner) shareRound() error {
	node := r.cfg.Node
	deg := len(r.neighbors)
	targets := map[int]bool{}
	switch node.Cfg.Algo {
	case gossip.RMW:
		if deg > 0 {
			targets[r.neighbors[node.RNG().Intn(deg)]] = true
		}
	case gossip.DPSGD:
		for _, nb := range r.neighbors {
			targets[nb] = true
		}
	}
	payload := node.Share(deg, false)
	full, err := EncodePayload(payload)
	if err != nil {
		return err
	}
	empty, err := EncodePayload(core.Payload{From: node.Cfg.ID, Degree: deg})
	if err != nil {
		return err
	}
	for _, nb := range r.neighbors {
		body := empty
		if targets[nb] {
			body = full
		}
		if r.cfg.Secure {
			body = r.channels[nb].Seal(body)
		}
		r.stats.BytesOut += int64(len(body))
		if err := r.cfg.Endpoint.Send(nb, wrap(kindGossip, body)); err != nil {
			return err
		}
	}
	return nil
}

// ClusterConfig runs a whole REX deployment in one process over the
// in-proc transport — the shape of the paper's 8-node experiment with two
// enclaves per physical platform (§IV-C).
type ClusterConfig struct {
	Graph  *topology.Graph
	Nodes  []*core.Node
	Epochs int
	// Secure enables attestation + encryption.
	Secure bool
	// NodesPerPlatform groups enclaves onto simulated SGX machines
	// (paper: 2 processes per machine). Defaults to 2.
	NodesPerPlatform int
	// NewModel decodes model-sharing payloads.
	NewModel func() model.Model
	// Entropy defaults to crypto/rand.Reader.
	Entropy io.Reader
}

// RunCluster executes every node concurrently and returns their stats in
// node order.
func RunCluster(cfg ClusterConfig) ([]*Stats, error) {
	n := cfg.Graph.N()
	if len(cfg.Nodes) != n {
		return nil, fmt.Errorf("runtime: %d nodes for %d-vertex graph", len(cfg.Nodes), n)
	}
	if cfg.NodesPerPlatform <= 0 {
		cfg.NodesPerPlatform = 2
	}
	eps := NewChanNet(n)
	meas := attest.MeasureCode([]byte("rex-enclave-v1"))

	var inf *attest.Infrastructure
	platforms := make([]*attest.Platform, n)
	if cfg.Secure {
		inf = attest.NewInfrastructure()
		var current *attest.Platform
		for i := 0; i < n; i++ {
			if i%cfg.NodesPerPlatform == 0 {
				entropy := cfg.Entropy
				if entropy == nil {
					entropy = rand.Reader
				}
				p, err := inf.NewPlatform(entropy)
				if err != nil {
					return nil, err
				}
				current = p
			}
			platforms[i] = current
		}
	}

	stats := make([]*Stats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := Run(Config{
				Node:        cfg.Nodes[i],
				Endpoint:    eps[i],
				Neighbors:   cfg.Graph.Neighbors(i),
				Epochs:      cfg.Epochs,
				Secure:      cfg.Secure,
				Platform:    platforms[i],
				Infra:       inf,
				Measurement: meas,
				Entropy:     cfg.Entropy,
				NewModel:    cfg.NewModel,
			})
			stats[i], errs[i] = st, err
		}(i)
	}
	wg.Wait()
	for i := range eps {
		eps[i].Close()
	}
	for i, err := range errs {
		if err != nil {
			return stats, fmt.Errorf("runtime: node %d: %w", i, err)
		}
	}
	return stats, nil
}
