package runtime

import (
	"crypto/rand"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/model"
)

// Engine is the resumable form of the epoch loop: where Run executes a
// fixed number of epochs and returns, an Engine exposes the loop one epoch
// at a time so a long-running daemon (cmd/rexd) can interleave training
// with serving, ingestion and persistence. Lifecycle:
//
//	e, err := NewEngine(cfg)   // validate, build the runner
//	err = e.Start()            // attest neighbors (secure mode)
//	for ... { e.Step() }       // one merge-train-share-test epoch each
//	e.Drain()                  // (any goroutine) ask the loop to stop
//	e.Stop()                   // fold transport counters into Stats
//
// Step, Start and Stop must be called from one goroutine (the protocol
// thread). Ingest, Drain, Snapshot and Status are safe from any goroutine:
// they are how a serving layer talks to a training node without touching
// its state — ratings go in through a mailbox the next Step drains, and
// reads come out of immutable published snapshots.
type Engine struct {
	r     *runner
	epoch int // index of the next epoch Step will run

	started bool
	stopped bool

	draining atomic.Bool

	// Ingestion mailbox: ratings posted between gossip rounds, appended to
	// the node's local store at the start of the next Step so incremental
	// training picks them up. Guarded by mu; Step swaps the slice out.
	mu       sync.Mutex
	mailbox  []dataset.Rating
	ingested int64

	snap   atomic.Pointer[Snapshot]
	status atomic.Pointer[Status]
}

// Snapshot is a read-consistent view of a node's state at the end of one
// epoch: a deep clone of the model and a copy of the raw-data store. It is
// immutable once published — serving reads it (rank.TopN, knn) while the
// next epoch trains, with no locks and no torn reads. Published after
// every epoch when Config.Publish is set.
type Snapshot struct {
	// Epoch is the number of completed epochs at capture time.
	Epoch int
	// RMSE is the node's local test RMSE at capture time.
	RMSE float64
	// Model is an independent deep copy; callers must not mutate it.
	Model model.Model
	// Ratings is a copy of the raw-data store (the node's deduplicated
	// profile database); callers must treat it as read-only.
	Ratings []dataset.Rating
}

// Status is the cheap control-plane view published after every epoch
// (regardless of Config.Publish): counters only, no model copy.
type Status struct {
	// Epoch is the number of completed epochs.
	Epoch int
	// RMSE is the latest test RMSE (NaN before the first epoch and for
	// epochs the node sat out under oracle churn).
	RMSE float64
	// Neighbors is the live neighbor set; Lost lists peers the failure
	// detector dropped that remain eligible to rejoin.
	Neighbors []int
	Lost      []int
	// Draining reports whether Drain has been requested.
	Draining bool
	// Ingested counts ratings accepted through the mailbox so far.
	Ingested int64
	// Traffic and liveness counters, mirrored from Stats.
	BytesIn, BytesOut, BytesOnWire int64
	PeersLost, Rejoins, Attested   int
	// Delta-wire counters, mirrored from Stats: triplets shipped as
	// back-references vs explicitly, stream resets sent, and the bytes
	// the flat encoding would have cost (WireRawBytes-BytesOnWire is the
	// saving; see Stats).
	DeltaRefs, DeltaExplicit, Resyncs, WireRawBytes int64
}

// NewEngine validates the configuration and builds the engine. No network
// traffic happens until Start.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Node == nil || cfg.Endpoint == nil {
		return nil, fmt.Errorf("runtime: node and endpoint are required")
	}
	if cfg.Entropy == nil {
		cfg.Entropy = rand.Reader
	}
	if cfg.Secure && (cfg.Platform == nil || cfg.Infra == nil) {
		return nil, fmt.Errorf("runtime: secure mode requires a platform and infrastructure")
	}
	e := &Engine{
		r: &runner{
			cfg:         cfg,
			stats:       &Stats{},
			neighbors:   append([]int(nil), cfg.Neighbors...),
			pending:     make(map[int][][]byte),
			sealScratch: make(map[int][]byte),
		},
		epoch: cfg.StartEpoch,
	}
	// Delta stream state is built once, here on the protocol thread, for
	// every configured neighbor. A resumed daemon (StartEpoch > 0) starts
	// every stream with a reset frame: stream state is not persisted in
	// snapshots, and peers that kept running hold a view of the old
	// stream that must not be referenced into.
	e.r.initDelta(cfg.StartEpoch > 0)
	return e, nil
}

// Start performs the one-time bootstrap: mutual attestation with every
// neighbor in secure mode, and the first Status publication.
func (e *Engine) Start() error {
	if e.started {
		return fmt.Errorf("runtime: engine already started")
	}
	if e.r.cfg.Secure {
		if err := e.r.attestAll(); err != nil {
			return fmt.Errorf("runtime: attestation: %w", err)
		}
	}
	e.started = true
	e.publishStatus(math.NaN())
	return nil
}

// Epoch returns the number of epochs completed so far (equivalently, the
// index of the epoch the next Step will run).
func (e *Engine) Epoch() int { return e.epoch }

// Stats returns the underlying counters. They are written by the protocol
// thread: read them only between Steps or after Stop. Concurrent observers
// should use Status instead.
func (e *Engine) Stats() *Stats { return e.r.stats }

// Drain asks the stepping loop to stop: Run (and daemon loops) check it
// between epochs, so the current epoch always completes cleanly — shares
// sent, RMSE recorded — before the node goes quiet. Safe from any
// goroutine; idempotent.
func (e *Engine) Drain() { e.draining.Store(true) }

// Draining reports whether Drain has been requested.
func (e *Engine) Draining() bool { return e.draining.Load() }

// Ingest posts ratings into the mailbox; the next Step appends them to the
// node's local store, where incremental training and REX sampling pick
// them up. Safe from any goroutine. The slice is copied.
func (e *Engine) Ingest(rs []dataset.Rating) int {
	if len(rs) == 0 {
		return 0
	}
	e.mu.Lock()
	e.mailbox = append(e.mailbox, rs...)
	e.ingested += int64(len(rs))
	e.mu.Unlock()
	return len(rs)
}

// Snapshot returns the latest published snapshot, or nil before the first
// Publish-mode epoch completes. The returned value is immutable.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Status returns the latest published control-plane view, or nil before
// Start. The returned value is immutable.
func (e *Engine) Status() *Status { return e.status.Load() }

// Step runs one merge-train-share-test epoch (Algorithm 2 body) and
// returns its test RMSE. Epoch 0 trains on local data only; every later
// epoch first gathers one gossip frame from each live neighbor (the
// Algorithm 2 line 13 barrier — RMW peers send empty notifications).
// Mailbox ratings are folded into the store before the round so this
// epoch's training sees them.
func (e *Engine) Step() (float64, error) {
	r := e.r
	self := r.cfg.Node.Cfg.ID
	ep := e.epoch
	if r.absentAt(self, ep) {
		// Oracle churn: this node is scheduled offline this epoch.
		// Neighbors neither wait for nor send to it (the symmetric rules
		// in gatherRound/startShare), so it simply sits the round out; the
		// trajectory records NaN for the gap. Mailbox ratings stay queued:
		// an offline node's users are offline too.
		r.stats.RMSE = append(r.stats.RMSE, math.NaN())
		if r.cfg.OnEpoch != nil {
			r.cfg.OnEpoch(ep, math.NaN())
		}
		e.epoch++
		e.publishStatus(math.NaN())
		return math.NaN(), nil
	}

	// --- ingest: drain the mailbox into the local store. Arrival order is
	// preserved; the store deduplicates on (user, item) like any gossiped
	// data. With an unused mailbox this is a no-op, which is what keeps
	// batch trajectories bit-identical to the pre-engine loop.
	e.mu.Lock()
	fresh := e.mailbox
	e.mailbox = nil
	e.mu.Unlock()
	if len(fresh) > 0 {
		r.cfg.Node.Store.Append(fresh)
	}

	deg := len(r.neighbors)
	// --- gather + merge ---
	t0 := time.Now()
	var payloads []core.Payload
	if ep > 0 && !r.absentAt(self, ep-1) {
		// A node absent last epoch gathers nothing: nobody sent to it
		// (startShare's send rule), exactly as a rejoining simulator node
		// finds an empty inbox.
		var err error
		payloads, err = r.gatherRound(ep)
		if err != nil {
			return 0, fmt.Errorf("epoch %d: %w", ep, err)
		}
	}
	r.cfg.Node.Merge(payloads, deg)
	r.stats.Merge += time.Since(t0)

	// --- train ---
	t0 = time.Now()
	r.cfg.Node.Train()
	r.stats.Train += time.Since(t0)

	// --- share: payload building (RNG draws, serialization) stays on the
	// protocol thread for determinism; sealing and sending move to a
	// background goroutine so they overlap the test stage — the live
	// analogue of the simulator's ShareParallel cost model.
	t0 = time.Now()
	sent, err := r.startShare(ep)
	if err != nil {
		return 0, fmt.Errorf("epoch %d: %w", ep, err)
	}
	r.stats.Share += time.Since(t0)

	// --- test (concurrent with the share sends) ---
	t0 = time.Now()
	rmse := r.cfg.Node.TestRMSE()
	r.stats.Test += time.Since(t0)

	res := <-sent
	if res.err != nil {
		return 0, fmt.Errorf("epoch %d: %w", ep, res.err)
	}
	r.stats.Share += res.dur
	r.stats.Seal += res.seal
	r.stats.Wire += res.wire
	r.stats.BytesOut += res.bytes
	r.stats.BytesOnWire += res.wireBytes
	r.stats.WireRawBytes += res.rawBytes
	r.stats.DeltaRefs += res.refs
	r.stats.DeltaExplicit += res.explicit
	r.stats.Resyncs += res.resyncs
	for _, nb := range res.lost {
		r.notePeerMiss(nb)
	}

	r.stats.RMSE = append(r.stats.RMSE, rmse)
	r.stats.FinalRMSE = rmse
	if r.cfg.OnEpoch != nil {
		r.cfg.OnEpoch(ep, rmse)
	}
	e.epoch++
	if r.cfg.Publish {
		e.snap.Store(&Snapshot{
			Epoch:   e.epoch,
			RMSE:    rmse,
			Model:   r.cfg.Node.Model.Clone(),
			Ratings: r.cfg.Node.Store.Snapshot(),
		})
	}
	e.publishStatus(rmse)
	return rmse, nil
}

// Stop folds the transport's queue and fault counters into Stats — even
// after a failed epoch, so failure-path Stats still show whether lanes
// were congested. Idempotent; it does not close the endpoint (the caller
// owns it).
func (e *Engine) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	if q, ok := e.r.cfg.Endpoint.(QueueReporter); ok {
		e.r.stats.SendQueueHWM = q.SendQueueHWM()
	}
	if f, ok := e.r.cfg.Endpoint.(FaultReporter); ok {
		e.r.stats.DroppedFrames, e.r.stats.DelayedFrames = f.FaultCounts()
	}
}

// publishStatus snapshots the control-plane counters. Runs on the protocol
// thread, where every source field is stable.
func (e *Engine) publishStatus(rmse float64) {
	e.mu.Lock()
	ingested := e.ingested
	e.mu.Unlock()
	st := &Status{
		Epoch:       e.epoch,
		RMSE:        rmse,
		Neighbors:   append([]int(nil), e.r.neighbors...),
		Lost:        append([]int(nil), e.r.lost...),
		Draining:    e.draining.Load(),
		Ingested:    ingested,
		BytesIn:     e.r.stats.BytesIn,
		BytesOut:    e.r.stats.BytesOut,
		BytesOnWire: e.r.stats.BytesOnWire,
		PeersLost:   e.r.stats.PeersLost,
		Rejoins:     e.r.stats.Rejoins,
		Attested:    e.r.stats.Attested,

		DeltaRefs:     e.r.stats.DeltaRefs,
		DeltaExplicit: e.r.stats.DeltaExplicit,
		Resyncs:       e.r.stats.Resyncs,
		WireRawBytes:  e.r.stats.WireRawBytes,
	}
	e.status.Store(st)
}
