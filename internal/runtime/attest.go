package runtime

import (
	"fmt"

	"rex/internal/attest"
	"rex/internal/seccha"
)

// attestAll performs the §III-A mutual attestation with every neighbor:
// hellos out, quotes exchanged, channels derived. Gossip from peers that
// finish attesting us early is buffered raw for the first gather round.
func (r *runner) attestAll() error {
	exchanges := make(map[int]*attest.Exchange, len(r.cfg.Neighbors))
	for _, nb := range r.cfg.Neighbors {
		ex, err := attest.NewExchange(r.cfg.Platform, r.cfg.Infra, r.cfg.Measurement, r.cfg.Entropy)
		if err != nil {
			return err
		}
		exchanges[nb] = ex
		hello, err := ex.Hello()
		if err != nil {
			return err
		}
		if err := r.cfg.Endpoint.Send(nb, wrap(kindAttest, hello)); err != nil {
			return err
		}
		r.stats.BytesOnWire += int64(1 + len(hello))
	}
	r.channels = make(map[int]*seccha.Channel, len(r.cfg.Neighbors))
	remaining := len(exchanges)
	for remaining > 0 {
		env, st := r.recv(nil)
		if st != recvOK {
			return fmt.Errorf("endpoint closed with %d peers unattested", remaining)
		}
		if len(env.Data) == 0 {
			return fmt.Errorf("empty frame from %d", env.From)
		}
		if IsGossipFrame(env.Data) {
			// A peer that finished attesting us may start epoch 0 while
			// we still attest others; buffer its gossip for the loop.
			r.bufferPending(env.From, env.Data)
			continue
		}
		if env.Data[0] != kindAttest {
			return fmt.Errorf("unknown frame kind %d from %d", env.Data[0], env.From)
		}
		ex, ok := exchanges[env.From]
		if !ok {
			return fmt.Errorf("attestation message from non-neighbor %d", env.From)
		}
		reply, err := ex.HandleMessage(env.Data[1:])
		if err != nil {
			return fmt.Errorf("peer %d: %w", env.From, err)
		}
		if reply != nil {
			if err := r.cfg.Endpoint.Send(env.From, wrap(kindAttest, reply)); err != nil {
				return err
			}
			r.stats.BytesOnWire += int64(1 + len(reply))
		}
		if ex.Complete() && r.channels[env.From] == nil {
			key, err := ex.ChannelKey()
			if err != nil {
				return err
			}
			ch, err := seccha.NewChannel(key, r.cfg.Node.Cfg.ID < env.From)
			if err != nil {
				return err
			}
			r.channels[env.From] = ch
			r.stats.Attested++
			remaining--
		}
	}
	return nil
}
