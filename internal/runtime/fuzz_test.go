package runtime

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/mf"
	"rex/internal/model"
)

// FuzzDecodePayload throws arbitrary bytes at the gossip frame decoder:
// malformed, truncated, oversized or reordered inputs must produce an
// error, never a panic, and a successful decode must re-encode cleanly.
// Every frame a live node gathers passes through this path after
// decryption, so it is the runtime's parser attack surface.
func FuzzDecodePayload(f *testing.F) {
	mcfg := mf.DefaultConfig()
	// Seed corpus: one valid frame per payload kind, plus classic parser
	// traps (truncations, kind confusion, absurd counts).
	for _, p := range []core.Payload{
		{From: 3, Degree: 7},
		{From: 1, Degree: 2, Data: []dataset.Rating{{User: 5, Item: 6, Value: 2.5}}},
	} {
		b, err := EncodePayload(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	m := mf.New(mcfg)
	m.Train([]dataset.Rating{{User: 1, Item: 2, Value: 4}}, 50, rand.New(rand.NewSource(1)))
	if b, err := EncodePayload(core.Payload{From: 9, Degree: 4, Model: m}); err == nil {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(func() []byte { // data payload claiming 2^31 ratings
		b := make([]byte, 13)
		b[8] = 2
		binary.LittleEndian.PutUint32(b[9:], 1<<31)
		return b
	}())

	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > 9 && b[8] == payloadModel && mfAllocHeavy(b[9:], mcfg.K) {
			// Structurally valid model bodies with very large entity ids
			// decode into tens of megabytes of dense table. That is an
			// error-free (attested peers run honest code) but slow path;
			// keep the fuzzer fast by skipping the giant-allocation cases.
			t.Skip("alloc-heavy model body")
		}
		p, err := DecodePayload(b, func() model.Model { return mf.New(mcfg) })
		if err != nil {
			return
		}
		if _, err := EncodePayload(p); err != nil {
			t.Fatalf("decoded payload does not re-encode: %v", err)
		}
	})
}

// FuzzDecodeDeltaPayload throws arbitrary bytes at the delta frame
// decoder against a receiver with live stream state: arbitrary,
// truncated or reordered inputs must never panic, and a rejected frame
// must leave the stream reconstruction (base, watermark, dictionary,
// buffered segments) exactly as it was — the reject-without-mutation
// contract that lets the resync protocol recover from any garbage.
func FuzzDecodeDeltaPayload(f *testing.F) {
	mcfg := mf.DefaultConfig()
	seedPair := func() (*runner, *runner) {
		newModel := func() model.Model { return mf.New(mcfg) }
		a := &runner{cfg: Config{Neighbors: []int{1}, Wire: WireDelta, NewModel: newModel}}
		b := &runner{cfg: Config{Neighbors: []int{0}, Wire: WireDelta, NewModel: newModel}}
		a.initDelta(false)
		b.initDelta(false)
		sample := []dataset.Rating{
			{User: 5, Item: 6, Value: 2.5}, {User: 7, Item: 8, Value: 4},
			{User: 5, Item: 9, Value: 1.5},
		}
		// Two frames and a reverse ack, so the receiver holds a dictionary
		// and the third frame's references resolve.
		for i := 0; i < 2; i++ {
			body, _ := a.encodeDeltaBody(nil, 1, core.Payload{From: 0, Degree: 2, Data: sample})
			if _, err := b.decodeDeltaFrame(0, body); err != nil {
				f.Fatal(err)
			}
		}
		back, _ := b.encodeDeltaBody(nil, 0, core.Payload{From: 1, Degree: 2})
		if _, err := a.decodeDeltaFrame(1, back); err != nil {
			f.Fatal(err)
		}
		return a, b
	}

	// Seed corpus: a reference-carrying data frame, an empty frame, a
	// model frame and a reset, plus parser traps.
	a, _ := seedPair()
	refFrame, _ := a.encodeDeltaBody(nil, 1, core.Payload{From: 0, Degree: 2,
		Data: []dataset.Rating{{User: 5, Item: 6, Value: 2.5}, {User: 1, Item: 2, Value: 3}}})
	f.Add(refFrame)
	empty, _ := a.encodeDeltaBody(nil, 1, core.Payload{From: 0, Degree: 2})
	f.Add(empty)
	m := mf.New(mcfg)
	m.Train([]dataset.Rating{{User: 1, Item: 2, Value: 4}}, 50, rand.New(rand.NewSource(1)))
	if err := a.buildModelSection(core.Payload{Model: m}); err == nil {
		mb, _ := a.encodeDeltaBody(nil, 1, core.Payload{From: 0, Degree: 2, Model: m})
		f.Add(mb)
	}
	a.tx[1].pendingReset = true
	reset, _ := a.encodeDeltaBody(nil, 1, core.Payload{From: 0, Degree: 2,
		Data: []dataset.Rating{{User: 3, Item: 4, Value: 5}}})
	f.Add(reset)
	f.Add([]byte{})
	f.Add(refFrame[:11])
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0xff, 2, 1, 0})

	f.Fuzz(func(t *testing.T, body []byte) {
		if fr, err := parseDeltaFrame(body); err == nil && fr.payloadKind == payloadModel &&
			mfAllocHeavy(fr.modelBytes, mcfg.K) {
			t.Skip("alloc-heavy model body") // see FuzzDecodePayload
		}
		_, rcv := seedPair()
		rx := rcv.rx[0]
		base, watermark, high := rx.base, rx.watermark, rx.highSeen
		dict := append([]dataset.Rating(nil), rx.dict...)
		segs := len(rx.segs)
		_, err := rcv.decodeDeltaFrame(0, body)
		if err == nil {
			return // a valid frame may mutate; invariants below are for rejects
		}
		if rx.base != base || rx.watermark != watermark || rx.highSeen != high ||
			len(rx.dict) != len(dict) || len(rx.segs) != segs {
			t.Fatalf("rejected frame mutated stream state: %v", err)
		}
		for i := range dict {
			if rx.dict[i] != dict[i] {
				t.Fatalf("rejected frame rewrote dict[%d]", i)
			}
		}
	})
}

// mfAllocHeavy reports whether a serialized mf model would pass Unmarshal's
// structural checks while claiming entity ids past 2^20 — legal on the
// wire (the id space cap is 2^24) but a dense-table allocation too large
// to exercise thousands of times per second under the fuzzer.
func mfAllocHeavy(body []byte, k int) bool {
	if len(body) < 16 || int(binary.LittleEndian.Uint32(body[4:])) != k {
		return false // header errors reject it before any allocation
	}
	nu := int(binary.LittleEndian.Uint32(body[8:]))
	ni := int(binary.LittleEndian.Uint32(body[12:]))
	rec := 4 + 4 + 4*k
	if nu < 0 || ni < 0 || len(body) != 16+rec*(nu+ni) {
		return false
	}
	const limit = 1 << 20
	if nu > 0 && int(binary.LittleEndian.Uint32(body[16+(nu-1)*rec:])) > limit {
		return true
	}
	if ni > 0 && int(binary.LittleEndian.Uint32(body[16+(nu+ni-1)*rec:])) > limit {
		return true
	}
	return false
}
