package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// chanEndpoint is one port of an in-process mesh.
type chanEndpoint struct {
	id    int
	mesh  []*chanEndpoint
	inbox chan Envelope
	done  chan struct{}
	once  sync.Once
	// qhwm tracks the deepest this endpoint's inbox has been (updated by
	// senders, which observe the depth right after a successful send).
	qhwm atomic.Int64
}

// NewChanNet builds a fully meshed in-process transport for n nodes, one
// endpoint per node. It backs the examples and tests; semantics match the
// TCP transport (reliable, per-peer FIFO).
func NewChanNet(n int) []Endpoint {
	eps := make([]*chanEndpoint, n)
	for i := range eps {
		eps[i] = &chanEndpoint{
			id:    i,
			inbox: make(chan Envelope, 16*n+64),
			done:  make(chan struct{}),
		}
	}
	for i := range eps {
		eps[i].mesh = eps
	}
	out := make([]Endpoint, n)
	for i := range eps {
		out[i] = eps[i]
	}
	return out
}

// Send delivers a copy of data to the peer's inbox. A send to a closed
// peer reports ErrPeerClosed rather than blocking (or, as the transport
// once did, swallowing the failure with a recover on the closed channel).
func (e *chanEndpoint) Send(to int, data []byte) error {
	if to < 0 || to >= len(e.mesh) {
		return fmt.Errorf("runtime: no peer %d", to)
	}
	select {
	case <-e.done:
		return errEndpointClosed
	default:
	}
	dst := e.mesh[to]
	return deliverLocal(e.id, data, to, dst.inbox, dst.done, e.done, &dst.qhwm)
}

func (e *chanEndpoint) Inbox() <-chan Envelope { return e.inbox }

func (e *chanEndpoint) Done() <-chan struct{} { return e.done }

// Close signals shutdown via the done channel. The inbox channel itself is
// never closed: with concurrent senders there is no race-free point to do
// so, which is exactly why shutdown is a select on Done rather than a
// close-detecting receive.
func (e *chanEndpoint) Close() error {
	e.once.Do(func() { close(e.done) })
	return nil
}

// SendQueueHWM implements QueueReporter (inbox depth high-water mark).
func (e *chanEndpoint) SendQueueHWM() int { return int(e.qhwm.Load()) }
