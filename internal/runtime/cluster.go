package runtime

import (
	"crypto/rand"
	"fmt"
	"io"
	"sync"
	"time"

	"rex/internal/attest"
	"rex/internal/core"
	"rex/internal/model"
	"rex/internal/topology"
)

// enclaveMeasurement is the simulated enclave identity all cluster drivers
// attest against.
var enclaveMeasurement = attest.MeasureCode([]byte("rex-enclave-v1"))

// ClusterConfig runs a whole REX deployment in one process over the
// in-proc transport — the shape of the paper's 8-node experiment with two
// enclaves per physical platform (§IV-C).
type ClusterConfig struct {
	Graph  *topology.Graph
	Nodes  []*core.Node
	Epochs int
	// Secure enables attestation + encryption.
	Secure bool
	// Wire selects the gossip frame encoding for every node (see
	// Config.Wire); the zero value is the delta wire.
	Wire WireMode
	// NodesPerPlatform groups enclaves onto simulated SGX machines
	// (paper: 2 processes per machine). Defaults to 2.
	NodesPerPlatform int
	// NewModel decodes model-sharing payloads (must be safe for
	// concurrent calls; see Config.NewModel).
	NewModel func() model.Model
	// Entropy defaults to crypto/rand.Reader; a non-nil reader is shared
	// by all nodes and must be safe for concurrent reads.
	Entropy io.Reader
	// RoundTimeout enables per-round failure detection (see
	// Config.RoundTimeout).
	RoundTimeout time.Duration
	// PeerGrace, Rejoin and Absent configure failure-detector grace,
	// dropped-peer readmission and oracle churn (see Config); WrapEndpoint,
	// when set, wraps each node's transport — the hook internal/faultnet
	// uses to inject its fault schedule under a whole cluster.
	PeerGrace    int
	Rejoin       bool
	Absent       func(node, epoch int) bool
	SkipExpect   func(self, from, epoch int) bool
	WrapEndpoint func(node int, ep Endpoint) Endpoint
}

// RunCluster executes every node concurrently and returns their stats in
// node order.
func RunCluster(cfg ClusterConfig) ([]*Stats, error) {
	n := cfg.Graph.N()
	if len(cfg.Nodes) != n {
		return nil, fmt.Errorf("runtime: %d nodes for %d-vertex graph", len(cfg.Nodes), n)
	}
	if cfg.NodesPerPlatform <= 0 {
		cfg.NodesPerPlatform = 2
	}
	eps := NewChanNet(n)
	if cfg.WrapEndpoint != nil {
		for i := range eps {
			eps[i] = cfg.WrapEndpoint(i, eps[i])
		}
	}

	var inf *attest.Infrastructure
	platforms := make([]*attest.Platform, n)
	if cfg.Secure {
		inf = attest.NewInfrastructure()
		var current *attest.Platform
		for i := 0; i < n; i++ {
			if i%cfg.NodesPerPlatform == 0 {
				entropy := cfg.Entropy
				if entropy == nil {
					entropy = rand.Reader
				}
				p, err := inf.NewPlatform(entropy)
				if err != nil {
					return nil, err
				}
				current = p
			}
			platforms[i] = current
		}
	}

	stats := make([]*Stats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var skip func(from, epoch int) bool
			if cfg.SkipExpect != nil {
				skip = func(from, epoch int) bool { return cfg.SkipExpect(i, from, epoch) }
			}
			st, err := Run(Config{
				Node:         cfg.Nodes[i],
				Endpoint:     eps[i],
				Neighbors:    cfg.Graph.Neighbors(i),
				Epochs:       cfg.Epochs,
				Secure:       cfg.Secure,
				Wire:         cfg.Wire,
				Platform:     platforms[i],
				Infra:        inf,
				Measurement:  enclaveMeasurement,
				Entropy:      cfg.Entropy,
				NewModel:     cfg.NewModel,
				RoundTimeout: cfg.RoundTimeout,
				PeerGrace:    cfg.PeerGrace,
				Rejoin:       cfg.Rejoin,
				Absent:       cfg.Absent,
				SkipExpect:   skip,
			})
			stats[i], errs[i] = st, err
		}(i)
	}
	wg.Wait()
	for i := range eps {
		eps[i].Close()
	}
	for i, err := range errs {
		if err != nil {
			return stats, fmt.Errorf("runtime: node %d: %w", i, err)
		}
	}
	return stats, nil
}
