package runtime

import (
	"encoding/binary"
	"fmt"

	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/model"
)

// Message kinds on the wire. Attestation traffic is cleartext (it carries
// no secrets — paper Algorithm 1 commentary); gossip payloads are sealed
// by the per-pair AES-GCM channel once attestation completes.
const (
	kindAttest      byte = 1 // JSON attestation message (hello or quote)
	kindGossip      byte = 2 // sealed protocol payload, full (flat) encoding
	kindGossipDelta byte = 3 // sealed protocol payload, delta wire format
)

// FrameKindAttest, FrameKindGossip and FrameKindGossipDelta expose the
// wire frame kinds so transport wrappers (internal/faultnet) can tell
// attestation handshakes from gossip payloads without decoding them:
// faults apply to gossip only — the bootstrap handshake has no retry
// path.
const (
	FrameKindAttest      = kindAttest
	FrameKindGossip      = kindGossip
	FrameKindGossipDelta = kindGossipDelta
)

// IsGossipFrame reports whether a wire frame carries a gossip payload of
// either encoding (full or delta). The kind byte stays outside the seal,
// so wrappers and the receive path classify frames without decrypting.
func IsGossipFrame(data []byte) bool {
	return len(data) > 0 && (data[0] == kindGossip || data[0] == kindGossipDelta)
}

// wrap prefixes the kind byte.
func wrap(kind byte, body []byte) []byte {
	out := make([]byte, 1+len(body))
	out[0] = kind
	copy(out[1:], body)
	return out
}

// payload body kinds.
const (
	payloadEmpty byte = 0
	payloadModel byte = 1
	payloadData  byte = 2
)

// EncodePayload serializes a protocol payload (pre-encryption): sender id,
// degree, kind, then the model or ratings bytes.
func EncodePayload(p core.Payload) ([]byte, error) {
	return EncodePayloadAppend(make([]byte, 0, 9+payloadBodySize(p)), p)
}

func payloadBodySize(p core.Payload) int {
	switch {
	case p.Model != nil:
		return p.Model.WireSize()
	case p.Data != nil:
		return 4 + len(p.Data)*dataset.EncodedSize
	default:
		return 0
	}
}

// EncodePayloadAppend appends the EncodePayload serialization to dst and
// returns the extended slice — the share path reuses one buffer per
// runner across epochs, so steady-state epochs encode with zero
// allocations. Models supporting model.AppendMarshaler serialize straight
// into the output buffer, with no staging copy of the (large) parameter
// body.
func EncodePayloadAppend(dst []byte, p core.Payload) ([]byte, error) {
	off := len(dst)
	dst = append(dst, make([]byte, 9)...)
	binary.LittleEndian.PutUint32(dst[off:], uint32(p.From))
	binary.LittleEndian.PutUint32(dst[off+4:], uint32(p.Degree))
	switch {
	case p.Model != nil:
		dst[off+8] = payloadModel
		if am, ok := p.Model.(model.AppendMarshaler); ok {
			out, err := am.MarshalAppend(dst)
			if err != nil {
				return nil, fmt.Errorf("runtime: marshaling model: %w", err)
			}
			return out, nil
		}
		b, err := p.Model.Marshal()
		if err != nil {
			return nil, fmt.Errorf("runtime: marshaling model: %w", err)
		}
		return append(dst, b...), nil
	case p.Data != nil:
		dst[off+8] = payloadData
		return dataset.EncodeRatingsAppend(dst, p.Data), nil
	default:
		dst[off+8] = payloadEmpty
		return dst, nil
	}
}

// DecodePayload parses EncodePayload output. newModel supplies an empty
// model for unmarshaling when the payload carries parameters.
func DecodePayload(b []byte, newModel func() model.Model) (core.Payload, error) {
	if len(b) < 9 {
		return core.Payload{}, fmt.Errorf("runtime: payload too short (%d bytes)", len(b))
	}
	p := core.Payload{
		From:   int(binary.LittleEndian.Uint32(b)),
		Degree: int(binary.LittleEndian.Uint32(b[4:])),
	}
	body := b[9:]
	switch b[8] {
	case payloadEmpty:
	case payloadModel:
		m := newModel()
		if err := m.Unmarshal(body); err != nil {
			return core.Payload{}, fmt.Errorf("runtime: unmarshaling model: %w", err)
		}
		p.Model = m
	case payloadData:
		rs, _, err := dataset.DecodeRatings(body)
		if err != nil {
			return core.Payload{}, fmt.Errorf("runtime: decoding ratings: %w", err)
		}
		p.Data = rs
	default:
		return core.Payload{}, fmt.Errorf("runtime: unknown payload kind %d", b[8])
	}
	return p, nil
}
