package runtime

import (
	"errors"
	"fmt"
	"io"
	goruntime "runtime"
	"sort"
	"sync"
	"time"

	"rex/internal/attest"
	"rex/internal/core"
	"rex/internal/gossip"
	"rex/internal/model"
	"rex/internal/seccha"
)

// Config drives one live node.
type Config struct {
	// Node is the enclaved protocol state (Algorithm 2).
	Node *core.Node
	// Endpoint is the untrusted network shell (Algorithm 1).
	Endpoint Endpoint
	// Neighbors lists the node's peers in the communication graph.
	Neighbors []int
	// Epochs is the number of merge-train-share-test rounds to run.
	Epochs int

	// Secure enables REX's protections: mutual attestation before any
	// exchange, and AES-GCM sealing of every gossip payload. False runs
	// the paper's "native" build: same protocol, plaintext, unattested.
	Secure bool
	// Wire selects the gossip frame encoding: WireDelta (the zero value,
	// and the default) sends per-peer delta frames with acked-state
	// back-references and columnar packing; WireFull sends the flat
	// pre-delta format. Decoding is driven by each frame's kind byte, so
	// mixed-mode clusters interoperate — the knob only affects what this
	// node sends.
	Wire WireMode
	// Platform, Infra and Measurement configure attestation when Secure.
	Platform    *attest.Platform
	Infra       *attest.Infrastructure
	Measurement attest.Measurement
	// Entropy supplies randomness for keys and nonces; defaults to
	// crypto/rand.Reader.
	Entropy io.Reader

	// NewModel constructs an empty model for decoding model-sharing
	// payloads; required in ModelSharing mode. It must be safe for
	// concurrent calls: the gather pipeline decodes frames from distinct
	// peers in parallel workers.
	NewModel func() model.Model

	// OnEpoch, when set, observes each completed epoch's test RMSE.
	OnEpoch func(epoch int, rmse float64)

	// RoundTimeout bounds how long an epoch waits for each neighbor's
	// message. Zero means wait forever (the paper's failure-free
	// assumption, §III-D). With a timeout, peers that miss a round are
	// declared failed and dropped from the neighbor set — the
	// timeout-based failure detection the paper defers to future work.
	// Per-peer transport failures (e.g. a send to a closed peer) drop the
	// peer the same way, regardless of RoundTimeout.
	RoundTimeout time.Duration

	// PeerGrace is how many consecutive missed rounds (round timeouts or
	// per-peer send failures) a neighbor survives before the failure
	// detector drops it. Zero keeps the original behavior — the first miss
	// drops — which is right for permanent crashes but too eager under
	// transient faults (lossy links, partitions that heal).
	PeerGrace int
	// Rejoin keeps a way back for dropped peers: the share stage keeps
	// probing them with empty frames, and a gossip frame arriving from a
	// dropped peer readmits it to the live set (counted in Stats.Rejoins).
	// Without it, as before, a drop is permanent.
	Rejoin bool
	// Absent, when set, is an oracle churn schedule shared by the whole
	// cluster (internal/faultnet Scenario.Absent): a node scheduled absent
	// for an epoch runs nothing that epoch, and its neighbors neither wait
	// for nor send to it — the live analogue of the simulator's
	// oracle-detected FailAt crashes, generalized to leave/rejoin.
	Absent func(node, epoch int) bool
	// SkipExpect, when set, is oracle fault detection for scheduled
	// message loss (faultnet Scenario.Oracle): SkipExpect(from, epoch)
	// reports that the frame peer `from` would have sent at `epoch` is
	// scheduled away (dropped or partition-cut), so the gather proceeds
	// without waiting for it — no round-timeout stall, no miss counted.
	// Without it, scheduled losses surface through the RoundTimeout
	// failure detector like any real loss.
	SkipExpect func(from, epoch int) bool

	// StartEpoch is the index of the first epoch this node executes —
	// nonzero when a daemon resumes from a persisted snapshot (the node
	// has already completed StartEpoch epochs). Gossip is
	// rate-synchronized, not epoch-stamped: each round consumes one frame
	// per live neighbor, so a resumed node interoperates with peers whose
	// own epoch counters have advanced further.
	StartEpoch int
	// Publish makes the engine publish a read-consistent Snapshot (deep
	// model clone + store copy) and Status after every epoch, for a
	// serving layer to read without blocking training. Batch runs leave
	// it off: cloning the model every epoch is pure overhead when nobody
	// serves.
	Publish bool
}

// Stats reports one node's run.
type Stats struct {
	// Stage durations accumulated over all epochs (wall clock). Share
	// sends run concurrently with the test stage, so Share+Test may
	// exceed an epoch's wall time.
	Merge, Train, Share, Test time.Duration
	// Seal and Open accumulate the AES-GCM crypto sub-stages (sealing
	// inside Share, opening inside the gather that feeds Merge). Both are
	// summed across concurrent workers: they measure crypto work done,
	// not wall time.
	Seal, Open time.Duration
	// Wire accumulates time spent handing frames to the transport; a
	// large value means sends blocked on a congested outbound lane.
	Wire time.Duration
	// BytesIn/BytesOut count gossip traffic (post-encryption sizes).
	BytesIn, BytesOut int64
	// BytesOnWire counts every byte this node handed to the transport —
	// gossip frames including the kind framing byte, attestation
	// handshakes, and rejoin probes — the node's end-to-end outbound
	// gossip volume. BytesOut, by contrast, counts only the payload bytes
	// of accepted gossip sends; the gap between the two is framing and
	// control overhead, the quantity the wire-efficiency work will squeeze.
	BytesOnWire int64
	// Attested counts completed attestation handshakes.
	Attested int
	// PeersLost counts neighbors dropped by the failure detector — round
	// timeouts and per-peer transport failures. With Config.PeerGrace a
	// neighbor is dropped (and counted) only after grace is exhausted, and
	// at most once per loss: a healed partition must not overcount.
	PeersLost int
	// Rejoins counts dropped peers readmitted after their gossip resumed
	// (Config.Rejoin).
	Rejoins int
	// DeltaRefs and DeltaExplicit count rating triplets sent as
	// dictionary back-references versus explicit entries on the delta
	// wire (Config.Wire); both zero under WireFull.
	DeltaRefs, DeltaExplicit int64
	// Resyncs counts stream-reset frames sent: full-frame resyncs
	// triggered by peers whose view of this node's delta stream gapped
	// (drops, churn, restarts).
	Resyncs int64
	// WireRawBytes accumulates, for every gossip frame actually handed to
	// the transport, the plaintext bytes the full (flat) encoding would
	// have cost. WireRawBytes-BytesOnWire is the volume the delta wire
	// saved; in secure mode the comparison is approximate (it ignores the
	// constant per-frame AEAD overhead both encodings pay).
	WireRawBytes int64
	// DroppedFrames and DelayedFrames count faults injected by a
	// fault-injecting transport wrapper, when the endpoint reports them
	// (see FaultReporter); zero on clean transports.
	DroppedFrames, DelayedFrames int64
	// SendQueueHWM is the transport queue-depth high-water mark, when the
	// endpoint reports one (see QueueReporter).
	SendQueueHWM int
	// PendingHWM is the most ahead-of-round gossip frames ever buffered
	// at once (fast peers may run a full epoch ahead).
	PendingHWM int
	// RMSE is the per-epoch test error trajectory.
	RMSE []float64
	// FinalRMSE is the last entry of RMSE.
	FinalRMSE float64
}

// Run executes one node as a batch job: epochs [StartEpoch,
// StartEpoch+Epochs) on a fresh Engine, then Stop. It returns after the
// node's own last epoch; peers may still be finishing theirs. Run is the
// thin wrapper rexnode and the cluster drivers use; long-running daemons
// drive the Engine directly.
func Run(cfg Config) (*Stats, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.Start(); err != nil {
		return nil, err
	}
	defer e.Stop()
	for e.epoch < cfg.StartEpoch+cfg.Epochs && !e.draining.Load() {
		if _, err := e.Step(); err != nil {
			return e.r.stats, err
		}
	}
	return e.r.stats, nil
}

type runner struct {
	cfg      Config
	stats    *Stats
	channels map[int]*seccha.Channel
	// neighbors is the live neighbor set (always sorted ascending); the
	// failure detector shrinks it, rejoins grow it back.
	neighbors []int
	// miss counts consecutive missed rounds per neighbor for the grace
	// window; lost remembers dropped peers eligible to rejoin.
	miss map[int]int
	lost []int
	// pending holds gossip frames per peer that arrived ahead of the
	// epoch that will consume them (peers may run one epoch ahead);
	// pendingN counts the buffered frames for the high-water mark.
	pending  map[int][][]byte
	pendingN int

	// Share-path scratch, reused across epochs so steady-state epochs
	// allocate no per-frame encode buffers: the full and empty payload
	// encodings (no kind byte), their kind-prefixed plaintext frames for
	// the insecure path, and one sealed-frame buffer per neighbor.
	encFull, encEmpty     []byte
	plainFull, plainEmpty []byte
	sealScratch           map[int][]byte
	// openScratch holds one plaintext buffer per gather worker slot.
	openScratch [][]byte
	// Gather-path scratch, reused across rounds: the still-expected peer
	// set, the opened-frame and payload collection buffers, and a copy of
	// the neighbor list for the timeout sweep (notePeerMiss mutates
	// r.neighbors mid-iteration).
	gatherNeed  map[int]bool
	openedBuf   []openResult
	gatherPl    []core.Payload
	timeoutScan []int

	// Delta wire state (Config.Wire == WireDelta): per-peer send/receive
	// stream halves, a per-peer body scratch, the epoch's payload held
	// for per-peer encoding, and the pre-built model section. The maps
	// are fully populated on the protocol thread before any worker runs
	// (initDelta); workers only ever touch their own peer's entries.
	tx           map[int]*deltaTx
	rx           map[int]*deltaRx
	deltaScratch map[int][]byte
	shareP       core.Payload
	modelSection []byte
}

// recvStatus reports how a receive attempt ended.
type recvStatus int

const (
	recvOK recvStatus = iota
	recvClosed
	recvTimeout
)

// recv waits for the next envelope, honoring endpoint shutdown (inbox
// close or Done, whichever the transport signals) and an optional
// deadline. Buffered frames win over a concurrent shutdown signal.
func (r *runner) recv(deadline <-chan time.Time) (Envelope, recvStatus) {
	inbox := r.cfg.Endpoint.Inbox()
	select {
	case env, ok := <-inbox:
		if !ok {
			return Envelope{}, recvClosed
		}
		return env, recvOK
	default:
	}
	select {
	case env, ok := <-inbox:
		if !ok {
			return Envelope{}, recvClosed
		}
		return env, recvOK
	case <-r.cfg.Endpoint.Done():
		return Envelope{}, recvClosed
	case <-deadline:
		return Envelope{}, recvTimeout
	}
}

// bufferPending stores a gossip frame that arrived ahead of the round that
// will consume it.
func (r *runner) bufferPending(from int, frame []byte) {
	r.pending[from] = append(r.pending[from], frame)
	r.pendingN++
	if r.pendingN > r.stats.PendingHWM {
		r.stats.PendingHWM = r.pendingN
	}
}

// openJob/openResult carry one frame through the gather pipeline.
type openJob struct {
	from  int
	frame []byte
}

type openResult struct {
	from  int
	pl    core.Payload
	bytes int
	dur   time.Duration
	err   error
}

// gatherRound collects one gossip frame from every live neighbor, opening
// (decrypting + decoding) each frame as it arrives instead of after the
// barrier, so fast peers' crypto overlaps the wait for slow ones. Frames
// a fast peer sends a round early are buffered raw. With RoundTimeout
// set, neighbors that miss the deadline are declared failed and dropped.
//
// The returned payloads are ordered by ascending neighbor id regardless
// of arrival or open order — the invariant that keeps learning
// trajectories deterministic for a fixed seed.
func (r *runner) gatherRound(e int) ([]core.Payload, error) {
	need := r.gatherNeed
	if need == nil {
		need = make(map[int]bool, len(r.neighbors))
		r.gatherNeed = need
	}
	clear(need)
	for _, nb := range r.neighbors {
		if r.absentAt(nb, e-1) {
			continue // oracle churn: nb did not run the sending epoch
		}
		if r.cfg.SkipExpect != nil && r.cfg.SkipExpect(nb, e-1) {
			continue // oracle loss: nb's frame was scheduled away
		}
		need[nb] = true
	}
	workers := goruntime.GOMAXPROCS(0)
	if workers > len(r.neighbors) {
		workers = len(r.neighbors)
	}
	if workers < 1 {
		workers = 1
	}
	for len(r.openScratch) < workers {
		r.openScratch = append(r.openScratch, nil)
	}

	opened := r.openedBuf[:0]
	inflight := 0
	var jobs chan openJob
	var outs chan openResult
	if workers > 1 {
		// Worker w owns scratch slot w. A neighbor contributes one frame
		// per round and rounds join before the next begins, so no two
		// workers ever touch the same peer's channel concurrently and
		// nonce order per channel is preserved.
		jobs = make(chan openJob, len(need))
		outs = make(chan openResult, len(need))
		for w := 0; w < workers; w++ {
			go func(w int) {
				for j := range jobs {
					outs <- r.open(w, j.from, j.frame)
				}
			}(w)
		}
		defer close(jobs)
	}
	dispatch := func(from int, frame []byte) {
		if workers > 1 {
			jobs <- openJob{from: from, frame: frame}
			inflight++
		} else {
			opened = append(opened, r.open(0, from, frame))
		}
	}

	// Drain frames already queued before blocking: when pending satisfies
	// the whole round the receive loop below never runs, and rejoin frames
	// from dropped peers would otherwise starve in the inbox. Drained
	// frames are buffered (never dispatched directly) so per-peer FIFO
	// order through pending is preserved.
	for drained := false; !drained; {
		select {
		case env, ok := <-r.cfg.Endpoint.Inbox():
			if !ok {
				drained = true
				break
			}
			if !IsGossipFrame(env.Data) {
				break
			}
			switch {
			case r.isNeighbor(env.From):
				r.bufferPending(env.From, env.Data)
			case r.cfg.Rejoin && r.isLost(env.From):
				r.rejoinPeer(env.From, env.Data)
			}
		default:
			drained = true
		}
	}

	// Serve from the ahead-of-time buffer.
	for _, nb := range r.neighbors {
		if q := r.pending[nb]; len(q) > 0 && need[nb] {
			dispatch(nb, q[0])
			r.pending[nb] = q[1:]
			r.pendingN--
			delete(need, nb)
			delete(r.miss, nb)
		}
	}
	var deadline <-chan time.Time
	if r.cfg.RoundTimeout > 0 {
		timer := time.NewTimer(r.cfg.RoundTimeout)
		defer timer.Stop()
		deadline = timer.C
	}
	for len(need) > 0 {
		env, st := r.recv(deadline)
		switch st {
		case recvClosed:
			return nil, fmt.Errorf("endpoint closed waiting for %d peers", len(need))
		case recvTimeout:
			// Failure detection: everyone still missing misses the round;
			// a peer whose consecutive misses exhaust PeerGrace is
			// declared dead. The round proceeds without the missing
			// frames either way.
			r.timeoutScan = append(r.timeoutScan[:0], r.neighbors...)
			for _, nb := range r.timeoutScan {
				if need[nb] {
					r.notePeerMiss(nb)
					delete(need, nb)
				}
			}
			continue
		}
		if !IsGossipFrame(env.Data) {
			continue // stray attestation retransmit; ignore
		}
		frame := env.Data
		switch {
		case need[env.From]:
			dispatch(env.From, frame)
			delete(need, env.From)
			delete(r.miss, env.From)
		case r.isNeighbor(env.From):
			r.bufferPending(env.From, frame)
		case r.cfg.Rejoin && r.isLost(env.From):
			// A dropped peer's gossip resumed (a healed partition, or our
			// probes reached it): readmit it. Its frame is buffered for
			// the next round, which will expect it normally again.
			r.rejoinPeer(env.From, frame)
		default:
			// Gossip from a peer the failure detector already dropped
			// (it may still be alive and sharing); discard rather than
			// buffer without bound.
		}
	}
	for ; inflight > 0; inflight-- {
		opened = append(opened, <-outs)
	}

	r.openedBuf = opened
	sort.Slice(opened, func(i, j int) bool { return opened[i].from < opened[j].from })
	payloads := r.gatherPl[:0]
	for _, o := range opened {
		if o.err != nil {
			if errors.Is(o.err, seccha.ErrReplay) || errors.Is(o.err, errDeltaDiscard) {
				// A duplicated (or replayed) frame consumed this round's
				// slot for the peer; discard it and merge without — the
				// peer's genuine frame is already buffered in pending for
				// the next round. Rejected delta frames fold the same way:
				// the stream's resync protocol restores the peer's state
				// without blocking the round.
				r.stats.Open += o.dur
				continue
			}
			return nil, fmt.Errorf("peer %d: %w", o.from, o.err)
		}
		r.stats.BytesIn += int64(o.bytes)
		r.stats.Open += o.dur
		payloads = append(payloads, o.pl)
	}
	// The returned slice is valid until the next gatherRound: Engine.Step
	// merges it before the next round starts, so reuse is safe.
	r.gatherPl = payloads
	return payloads, nil
}

// open decrypts (when secure) and decodes one gossip frame. The frame
// arrives with its kind byte (which rides outside the seal); decoding
// dispatches on it, so full and delta senders interoperate in one
// cluster. slot selects the per-worker plaintext scratch (reused across
// epochs; the decoded payload never aliases it — model and ratings
// decoding copy out).
func (r *runner) open(slot, from int, frame []byte) openResult {
	t0 := time.Now()
	res := openResult{from: from, bytes: len(frame) - 1} // kind byte is framing
	kind := frame[0]
	body := frame[1:]
	if r.cfg.Secure {
		ch := r.channels[from]
		if ch == nil {
			res.err = fmt.Errorf("gossip from unattested peer")
			return res
		}
		pt, err := ch.OpenSeqAppend(r.openScratch[slot][:0], body)
		if err != nil {
			res.err = err
			res.dur = time.Since(t0)
			return res
		}
		r.openScratch[slot] = pt
		body = pt
	}
	switch kind {
	case kindGossipDelta:
		if r.tx == nil {
			// A delta frame reached a node running without delta state
			// (Wire == WireFull). Stream reconstruction needs the state,
			// so the frame is discarded like a replay; same-mode clusters
			// never hit this.
			res.err = fmt.Errorf("%w: delta frame but wire mode is full", errDeltaDiscard)
		} else {
			res.pl, res.err = r.decodeDeltaFrame(from, body)
		}
	default:
		newModel := r.cfg.NewModel
		if newModel == nil {
			newModel = func() model.Model { return nil }
		}
		res.pl, res.err = DecodePayload(body, newModel)
	}
	res.dur = time.Since(t0)
	return res
}

// isNeighbor reports whether id is still in the live neighbor set.
func (r *runner) isNeighbor(id int) bool {
	for _, nb := range r.neighbors {
		if nb == id {
			return true
		}
	}
	return false
}

// absentAt consults the oracle churn schedule.
func (r *runner) absentAt(node, epoch int) bool {
	return r.cfg.Absent != nil && epoch >= 0 && r.cfg.Absent(node, epoch)
}

// notePeerMiss records one missed round (timeout or send failure) for a
// neighbor and drops it once its consecutive misses exhaust the grace
// window. A frame arriving from the peer resets the count.
func (r *runner) notePeerMiss(nb int) {
	if r.miss == nil {
		r.miss = make(map[int]int)
	}
	r.miss[nb]++
	if r.miss[nb] > r.cfg.PeerGrace {
		r.dropPeer(nb)
	}
}

// isLost reports whether id was dropped but remains eligible to rejoin.
func (r *runner) isLost(id int) bool {
	for _, nb := range r.lost {
		if nb == id {
			return true
		}
	}
	return false
}

// rejoinPeer readmits a dropped peer whose gossip resumed: back into the
// (sorted) live set, with the triggering frame buffered for the next
// round.
func (r *runner) rejoinPeer(id int, frame []byte) {
	for i, nb := range r.lost {
		if nb == id {
			r.lost = append(r.lost[:i], r.lost[i+1:]...)
			break
		}
	}
	k := sort.SearchInts(r.neighbors, id)
	r.neighbors = append(r.neighbors, 0)
	copy(r.neighbors[k+1:], r.neighbors[k:])
	r.neighbors[k] = id
	r.stats.Rejoins++
	r.bufferPending(id, frame)
}

// dropPeer removes a failed neighbor from the live set and releases the
// state held for it (buffered frames, seal scratch). With Config.Rejoin
// the peer is remembered: probes keep flowing and resumed gossip readmits
// it.
func (r *runner) dropPeer(id int) {
	for i, nb := range r.neighbors {
		if nb == id {
			r.neighbors = append(r.neighbors[:i], r.neighbors[i+1:]...)
			r.stats.PeersLost++
			r.pendingN -= len(r.pending[id])
			delete(r.pending, id)
			delete(r.sealScratch, id)
			delete(r.miss, id)
			if r.cfg.Rejoin {
				r.lost = append(r.lost, id)
			}
			return
		}
	}
}

// shareResult is the outcome of one epoch's seal+send phase.
type shareResult struct {
	dur       time.Duration // wall time of the background phase
	seal      time.Duration // summed across seal workers (may exceed dur)
	wire      time.Duration // summed time handing frames to the transport
	bytes     int64         // payload bytes of accepted sends (Stats.BytesOut)
	wireBytes int64         // full frame bytes incl. framing (Stats.BytesOnWire)
	rawBytes  int64         // what the flat encoding would have cost (Stats.WireRawBytes)
	refs      int64         // triplets sent as dictionary back-references
	explicit  int64         // triplets sent explicitly on the delta wire
	resyncs   int64         // stream-reset frames sent
	lost      []int         // peers whose transport failed; the loop drops them
	err       error         // fatal: the node's own endpoint closed
}

// startShare builds this epoch's payloads synchronously — the node's RNG
// draws (RMW target pick, REX sampling) and the model serialization stay
// on the protocol thread — then seals and sends in the background. The
// returned channel yields exactly one result.
func (r *runner) startShare(e int) (<-chan shareResult, error) {
	node := r.cfg.Node
	deg := len(r.neighbors)
	var targets map[int]bool
	switch node.Cfg.Algo {
	case gossip.RMW:
		if deg > 0 {
			targets = map[int]bool{r.neighbors[node.RNG().Intn(deg)]: true}
		}
	case gossip.DPSGD:
		targets = make(map[int]bool, deg)
		for _, nb := range r.neighbors {
			targets[nb] = true
		}
	}
	payload := node.Share(deg, false)
	if r.cfg.Wire == WireDelta {
		// Delta frames are per-peer (each peer's stream state decides what
		// goes explicit), so encoding happens on the send workers; only
		// the peer-independent pieces are built here on the protocol
		// thread: the payload itself (its RNG draws must stay in protocol
		// order) and the model section.
		r.shareP = payload
		if payload.Model != nil {
			if err := r.buildModelSection(payload); err != nil {
				return nil, err
			}
		}
	} else {
		var err error
		r.encFull, err = EncodePayloadAppend(r.encFull[:0], payload)
		if err != nil {
			return nil, err
		}
		r.encEmpty, err = EncodePayloadAppend(r.encEmpty[:0], core.Payload{From: node.Cfg.ID, Degree: deg})
		if err != nil {
			return nil, err
		}
		if !r.cfg.Secure {
			// The insecure path shares one kind-prefixed frame per body;
			// transports copy on Send, so reusing the buffers next epoch is
			// safe.
			r.plainFull = append(append(r.plainFull[:0], kindGossip), r.encFull...)
			r.plainEmpty = append(append(r.plainEmpty[:0], kindGossip), r.encEmpty...)
		}
	}
	// The send rule under oracle churn: a frame shared at epoch e is
	// consumed at the receiver's round e+1, so skip neighbors scheduled
	// absent at either epoch — a frame to an away node would sit stale in
	// its inbox and desynchronize its gather when it rejoins.
	neighbors := r.neighbors
	if r.cfg.Absent != nil {
		neighbors = make([]int, 0, len(r.neighbors))
		for _, nb := range r.neighbors {
			if r.absentAt(nb, e) || r.absentAt(nb, e+1) {
				continue
			}
			neighbors = append(neighbors, nb)
		}
	}
	// Probes: with Rejoin, dropped peers keep receiving empty frames so a
	// healed partition has traffic to rejoin on from both sides.
	var probes []int
	if r.cfg.Rejoin && len(r.lost) > 0 {
		for _, nb := range r.lost {
			if !r.absentAt(nb, e) && !r.absentAt(nb, e+1) {
				probes = append(probes, nb)
			}
		}
	}
	done := make(chan shareResult, 1)
	go func() { done <- r.sendShare(neighbors, probes, targets) }()
	return done, nil
}

// sendShare seals this epoch's frame for each neighbor — concurrently
// across neighbors when more than one CPU is available; each per-pair
// channel is touched by exactly one goroutine — and enqueues them on the
// transport. Probes (empty frames to dropped-but-rejoinable peers) ride
// along with errors ignored. Per-peer transport failures are reported as
// lost peers; only the closure of the node's own endpoint is fatal.
func (r *runner) sendShare(neighbors, probes []int, targets map[int]bool) shareResult {
	start := time.Now()
	type sendOut struct {
		buf  []byte
		dbuf []byte
		n    int64
		st   deltaSendStats
		seal time.Duration
		wire time.Duration
		err  error
	}
	all := neighbors
	if len(probes) > 0 {
		all = append(append(make([]int, 0, len(neighbors)+len(probes)), neighbors...), probes...)
	}
	outs := make([]sendOut, len(all))
	sendOne := func(i, nb int) {
		o := &outs[i]
		var frame []byte
		switch {
		case r.cfg.Wire == WireDelta:
			// Per-peer delta encode against this peer's stream state; the
			// worker owns the peer's tx/rx halves for the whole phase.
			p := core.Payload{From: r.shareP.From, Degree: r.shareP.Degree}
			if targets[nb] {
				p = r.shareP
			}
			if r.cfg.Secure {
				var body []byte
				body, o.st = r.encodeDeltaBody(r.deltaScratch[nb][:0], nb, p)
				o.dbuf = body
				t0 := time.Now()
				buf := append(r.sealScratch[nb][:0], kindGossipDelta)
				frame = r.channels[nb].SealSeqAppend(buf, body)
				o.seal = time.Since(t0)
				o.buf = frame
			} else {
				frame, o.st = r.encodeDeltaBody(append(r.deltaScratch[nb][:0], kindGossipDelta), nb, p)
				o.dbuf = frame
			}
		case r.cfg.Secure:
			body := r.encEmpty
			if targets[nb] {
				body = r.encFull
			}
			t0 := time.Now()
			buf := append(r.sealScratch[nb][:0], kindGossip)
			frame = r.channels[nb].SealSeqAppend(buf, body)
			o.seal = time.Since(t0)
			o.buf = frame
		case targets[nb]:
			frame = r.plainFull
		default:
			frame = r.plainEmpty
		}
		o.n = int64(len(frame) - 1) // the kind byte is framing, not payload
		t0 := time.Now()
		o.err = r.cfg.Endpoint.Send(nb, frame)
		o.wire = time.Since(t0)
	}
	if (r.cfg.Secure || r.cfg.Wire == WireDelta) && len(all) > 1 && goruntime.GOMAXPROCS(0) > 1 {
		var wg sync.WaitGroup
		for i, nb := range all {
			wg.Add(1)
			go func(i, nb int) {
				defer wg.Done()
				sendOne(i, nb)
			}(i, nb)
		}
		wg.Wait()
	} else {
		for i, nb := range all {
			sendOne(i, nb)
		}
	}
	var res shareResult
	for i, nb := range all {
		o := outs[i]
		probe := i >= len(neighbors)
		if o.buf != nil {
			r.sealScratch[nb] = o.buf
		}
		if o.dbuf != nil {
			r.deltaScratch[nb] = o.dbuf
		}
		res.seal += o.seal
		res.wire += o.wire
		switch {
		case o.err == nil:
			res.bytes += o.n
			res.wireBytes += o.n + 1 // +1: the kind framing byte
			res.rawBytes += o.st.raw
			res.refs += o.st.refs
			res.explicit += o.st.explicit
			if o.st.resync {
				res.resyncs++
			}
		case errors.Is(o.err, errEndpointClosed):
			res.err = o.err
		case probe:
			// A failed probe is expected while the peer is gone; the next
			// epoch probes again.
		default:
			res.lost = append(res.lost, nb)
		}
	}
	res.dur = time.Since(start)
	return res
}
