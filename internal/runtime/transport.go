// Package runtime executes REX live: concurrent nodes exchanging real
// messages over in-process channels or TCP, with real mutual attestation
// (internal/attest) and AES-GCM encrypted gossip (internal/seccha). It is
// the Algorithm 1 + Algorithm 2 pairing of the paper — the untrusted
// bootstrap/network shell around the enclaved protocol logic in
// internal/core — and backs the rexnode command and the examples.
//
// The runtime is layered:
//
//   - transport (this file, channet.go, tcp.go, shard.go): Endpoint
//     implementations. TCPNet gives every peer a dedicated outbound lane
//     (writer goroutine + bounded queue) so a slow peer never stalls sends
//     to healthy ones; ShardNet bridges several in-process nodes across
//     OS processes over one TCP link per shard pair.
//   - runner (runner.go, attest.go): the per-node epoch pipeline — frames
//     are decrypted and decoded as they arrive, per-neighbor sealing runs
//     concurrently, and share-sends overlap the test stage.
//   - cluster drivers (cluster.go, shard.go): RunCluster executes a whole
//     deployment in one process; RunShard runs one shard of a
//     multi-process deployment.
package runtime

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Envelope is one delivered message.
type Envelope struct {
	From int
	Data []byte
}

// Endpoint is a node's connection to its peers. Implementations must
// deliver messages from any single peer in FIFO order.
type Endpoint interface {
	// Send transmits data to peer `to`. Implementations copy data before
	// returning (or retain it only until the frame is handed to the OS),
	// so the caller may reuse the buffer once Send returns. Delivery may
	// be asynchronous: a nil error means the frame was accepted, not that
	// the peer received it; transport failures surface on later Sends.
	Send(to int, data []byte) error
	// Inbox streams received envelopes.
	Inbox() <-chan Envelope
	// Done is closed when the endpoint shuts down. Receivers select on it
	// alongside Inbox; implementations whose inbox has concurrent senders
	// keep the inbox channel open forever and signal shutdown here only.
	Done() <-chan struct{}
	// Close releases resources and closes Done.
	Close() error
}

// QueueReporter is an optional Endpoint extension reporting the transport
// queue-depth high-water mark observed so far (outbound lane depth for
// TCPNet, inbox depth for the in-process transports). The runner copies it
// into Stats so pipelining headroom is measurable.
type QueueReporter interface {
	SendQueueHWM() int
}

// FaultReporter is an optional Endpoint extension implemented by
// fault-injecting transport wrappers (internal/faultnet): it reports how
// many outbound gossip frames the wrapper discarded (drops plus partition
// cuts) and how many it delayed. The runner copies the counts into Stats.
type FaultReporter interface {
	FaultCounts() (dropped, delayed int64)
}

// ErrPeerClosed reports a send to a peer whose endpoint has shut down.
// The runner treats it (like any per-peer transport failure) as a peer
// loss, not a fatal error.
var ErrPeerClosed = errors.New("runtime: peer endpoint closed")

// errEndpointClosed reports use of an endpoint after its own Close; unlike
// a per-peer failure it aborts the run.
var errEndpointClosed = errors.New("runtime: endpoint closed")

// maxQueueHWM folds a fresh depth observation into a high-water slot.
// Callers pass the same *atomic value; a CAS loop keeps concurrent
// observers from regressing the mark.
func maxQueueHWM(slot *atomic.Int64, depth int64) {
	for {
		cur := slot.Load()
		if depth <= cur || slot.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// deliverLocal implements in-process delivery shared by the chan and
// shard transports: copy data into the destination inbox, honoring both
// sides' shutdown signals. The upfront peer-done check gives a
// deterministic ErrPeerClosed even when the inbox still has room.
func deliverLocal(from int, data []byte, to int, inbox chan Envelope, peerDone, ownDone <-chan struct{}, hwm *atomic.Int64) error {
	select {
	case <-peerDone:
		return fmt.Errorf("runtime: peer %d: %w", to, ErrPeerClosed)
	default:
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	select {
	case inbox <- Envelope{From: from, Data: cp}:
		maxQueueHWM(hwm, int64(len(inbox)))
		return nil
	case <-peerDone:
		return fmt.Errorf("runtime: peer %d: %w", to, ErrPeerClosed)
	case <-ownDone:
		return errEndpointClosed
	}
}
