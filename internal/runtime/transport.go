// Package runtime executes REX live: concurrent nodes exchanging real
// messages over in-process channels or TCP, with real mutual attestation
// (internal/attest) and AES-GCM encrypted gossip (internal/seccha). It is
// the Algorithm 1 + Algorithm 2 pairing of the paper — the untrusted
// bootstrap/network shell around the enclaved protocol logic in
// internal/core — and backs the rexnode command and the examples.
package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Envelope is one delivered message.
type Envelope struct {
	From int
	Data []byte
}

// Endpoint is a node's connection to its peers. Implementations must
// deliver messages from any single peer in FIFO order.
type Endpoint interface {
	// Send transmits data to peer `to`. Data is retained until sent.
	Send(to int, data []byte) error
	// Inbox streams received envelopes; closed when the endpoint closes.
	Inbox() <-chan Envelope
	// Close releases resources and closes the inbox.
	Close() error
}

// --- in-process transport ---

// chanEndpoint is one port of an in-process mesh.
type chanEndpoint struct {
	id    int
	mesh  []*chanEndpoint
	inbox chan Envelope
	once  sync.Once
}

// NewChanNet builds a fully meshed in-process transport for n nodes, one
// endpoint per node. It backs the examples and tests; semantics match the
// TCP transport (reliable, per-peer FIFO).
func NewChanNet(n int) []Endpoint {
	eps := make([]*chanEndpoint, n)
	for i := range eps {
		eps[i] = &chanEndpoint{id: i, inbox: make(chan Envelope, 16*n+64)}
	}
	for i := range eps {
		eps[i].mesh = eps
	}
	out := make([]Endpoint, n)
	for i := range eps {
		out[i] = eps[i]
	}
	return out
}

func (e *chanEndpoint) Send(to int, data []byte) error {
	if to < 0 || to >= len(e.mesh) {
		return fmt.Errorf("runtime: no peer %d", to)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	defer func() { recover() }() // racing a concurrent Close is a no-op, not a crash
	e.mesh[to].inbox <- Envelope{From: e.id, Data: cp}
	return nil
}

func (e *chanEndpoint) Inbox() <-chan Envelope { return e.inbox }

func (e *chanEndpoint) Close() error {
	e.once.Do(func() { close(e.inbox) })
	return nil
}

// --- TCP transport ---

// frame layout: uint32 length, uint32 sender id, payload.
const frameHeader = 8

// maxFrame bounds a frame to keep a malicious peer from exhausting memory.
const maxFrame = 512 << 20

// TCPNet is a TCP-based Endpoint: one listener accepting inbound streams,
// lazily dialed outbound connections, length-prefixed frames.
type TCPNet struct {
	id    int
	peers map[int]string

	ln    net.Listener
	inbox chan Envelope

	mu       sync.Mutex
	conns    map[int]net.Conn
	accepted []net.Conn
	done     chan struct{}
	wg       sync.WaitGroup
	once     sync.Once
}

// NewTCPNet starts a TCP endpoint for node id, listening on listenAddr,
// with peers mapping node ids to host:port addresses.
func NewTCPNet(id int, listenAddr string, peers map[int]string) (*TCPNet, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("runtime: listen %s: %w", listenAddr, err)
	}
	t := &TCPNet{
		id: id, peers: peers, ln: ln,
		inbox: make(chan Envelope, 1024),
		conns: make(map[int]net.Conn),
		done:  make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCPNet) Addr() net.Addr { return t.ln.Addr() }

func (t *TCPNet) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.accepted = append(t.accepted, conn)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPNet) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	hdr := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		ln := binary.LittleEndian.Uint32(hdr)
		from := int(binary.LittleEndian.Uint32(hdr[4:]))
		if ln > maxFrame {
			return
		}
		body := make([]byte, ln)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		select {
		case t.inbox <- Envelope{From: from, Data: body}:
		case <-t.done:
			return
		}
	}
}

// dial returns (establishing if needed) the outbound connection to peer.
// Dialing retries briefly so cluster members may start in any order.
func (t *TCPNet) dial(to int) (net.Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[to]; ok {
		return c, nil
	}
	addr, ok := t.peers[to]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown peer %d", to)
	}
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			t.conns[to] = c
			return c, nil
		}
		lastErr = err
		select {
		case <-t.done:
			return nil, errors.New("runtime: endpoint closed")
		case <-time.After(200 * time.Millisecond):
		}
	}
	return nil, fmt.Errorf("runtime: dialing peer %d at %s: %w", to, addr, lastErr)
}

// Send implements Endpoint.
func (t *TCPNet) Send(to int, data []byte) error {
	conn, err := t.dial(to)
	if err != nil {
		return err
	}
	frame := make([]byte, frameHeader+len(data))
	binary.LittleEndian.PutUint32(frame, uint32(len(data)))
	binary.LittleEndian.PutUint32(frame[4:], uint32(t.id))
	copy(frame[frameHeader:], data)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := conn.Write(frame); err != nil {
		delete(t.conns, to)
		conn.Close()
		return fmt.Errorf("runtime: sending to %d: %w", to, err)
	}
	return nil
}

// Inbox implements Endpoint.
func (t *TCPNet) Inbox() <-chan Envelope { return t.inbox }

// Close implements Endpoint.
func (t *TCPNet) Close() error {
	t.once.Do(func() {
		close(t.done)
		t.ln.Close()
		t.mu.Lock()
		for _, c := range t.conns {
			c.Close()
		}
		for _, c := range t.accepted {
			c.Close()
		}
		t.mu.Unlock()
		t.wg.Wait()
		close(t.inbox)
	})
	return nil
}
