package store

import (
	"os"
	"path/filepath"
	"testing"

	"rex/internal/dataset"
	"rex/internal/mf"
)

func testRatings(n, base int) []dataset.Rating {
	rs := make([]dataset.Rating, n)
	for i := range rs {
		rs[i] = dataset.Rating{User: uint32(base + i), Item: uint32(i % 7), Value: float32(i%9)/2 + 0.5}
	}
	return rs
}

func trainedModel(t *testing.T) *mf.Model {
	t.Helper()
	m := mf.New(mf.DefaultConfig())
	// Touch a few embeddings so the serialization is non-trivial.
	for i := 0; i < 5; i++ {
		m.Predict(uint32(i), uint32(i))
	}
	return m
}

func TestSnapshotRoundtrip(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	m := trainedModel(t)
	want, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ratings := testRatings(50, 0)
	if err := d.SaveSnapshot(7, 1.25, m, ratings); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, replayed, err := d2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot loaded")
	}
	if snap.Epoch != 7 || snap.RMSE != 1.25 {
		t.Fatalf("snapshot meta %d/%v, want 7/1.25", snap.Epoch, snap.RMSE)
	}
	if string(snap.Model) != string(want) {
		t.Fatal("model bytes not bit-identical through snapshot")
	}
	if len(snap.Ratings) != len(ratings) || snap.Ratings[13] != ratings[13] {
		t.Fatalf("ratings mismatch: %d vs %d", len(snap.Ratings), len(ratings))
	}
	if len(replayed) != 0 {
		t.Fatalf("unexpected WAL replay of %d ratings", len(replayed))
	}
}

func TestEmptyDirLoadsFresh(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	snap, replayed, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil || replayed != nil {
		t.Fatalf("fresh dir returned %+v / %d ratings", snap, len(replayed))
	}
}

func TestWALReplayAndRotation(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	m := trainedModel(t)

	if err := d.SaveSnapshot(2, 1.0, m, testRatings(10, 0)); err != nil {
		t.Fatal(err)
	}
	batch1, batch2 := testRatings(3, 1000), testRatings(4, 2000)
	if err := d.Append(batch1); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(batch2); err != nil {
		t.Fatal(err)
	}

	// "Crash" (no Close) and reload: snapshot + both batches, in order.
	d2, err := Open(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	snap, replayed, err := d2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 2 {
		t.Fatalf("epoch %d, want 2", snap.Epoch)
	}
	if len(replayed) != 7 {
		t.Fatalf("replayed %d ratings, want 7", len(replayed))
	}
	if replayed[0] != batch1[0] || replayed[3] != batch2[0] {
		t.Fatal("replay order broken")
	}

	// Appends after Load continue the same log.
	if err := d2.Append(testRatings(2, 3000)); err != nil {
		t.Fatal(err)
	}
	d2.Close()
	d3, err := Open(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	_, replayed, err = d3.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 9 {
		t.Fatalf("replayed %d ratings after continued appends, want 9", len(replayed))
	}

	// A new snapshot rotates the WAL, but the rotated-away log is retained
	// and still replayed: a rating logged just before the capture may not
	// have reached the captured store (engine mailbox lag), and replay is
	// idempotent (the node store dedups), so Load replays everything kept.
	if err := d3.SaveSnapshot(5, 0.9, m, testRatings(19, 0)); err != nil {
		t.Fatal(err)
	}
	d4, err := Open(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer d4.Close()
	snap, replayed, err = d4.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 5 || len(replayed) != 9 {
		t.Fatalf("after rotation: epoch %d, %d replayed, want 5 and the previous log's 9", snap.Epoch, len(replayed))
	}
}

// TestAckedRatingSurvivesSnapshotRotation pins the durability contract
// across the rotation boundary: a rating WAL-appended (and therefore
// 200-acknowledged) moments before SaveSnapshot lands in the log keyed at
// the *previous* epoch, while the snapshot's store — captured before the
// rating left the engine mailbox — does not contain it. kill -9 right
// after the save must still recover the rating on Load, even though its
// log is older than the chosen snapshot.
func TestAckedRatingSurvivesSnapshotRotation(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	m := trainedModel(t)
	if err := d.SaveSnapshot(2, 1.0, m, testRatings(10, 0)); err != nil {
		t.Fatal(err)
	}
	acked := dataset.Rating{User: 999_999, Item: 3, Value: 4.5}
	if err := d.Append([]dataset.Rating{acked}); err != nil {
		t.Fatal(err)
	}
	// The next snapshot was captured WITHOUT the acked rating (it was
	// still in the mailbox) and rotates the WAL to epoch 4.
	if err := d.SaveSnapshot(4, 0.9, m, testRatings(10, 0)); err != nil {
		t.Fatal(err)
	}

	// "kill -9": reopen without Close and load.
	d2, err := Open(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, replayed, err := d2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Epoch != 4 {
		t.Fatalf("loaded %+v, want the epoch-4 snapshot", snap)
	}
	for _, r := range snap.Ratings {
		if r == acked {
			t.Fatal("test premise broken: snapshot already holds the rating")
		}
	}
	found := false
	for _, r := range replayed {
		if r == acked {
			found = true
		}
	}
	if !found {
		t.Fatalf("acknowledged rating lost across rotation: %d replayed, none match %+v", len(replayed), acked)
	}
}

func TestCorruptNewestSnapshotFallsBack(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	m := trainedModel(t)
	if err := d.SaveSnapshot(3, 1.1, m, testRatings(5, 0)); err != nil {
		t.Fatal(err)
	}
	// Ratings logged against snapshot 3, before snapshot 6 lands: the
	// fallback path must still replay them.
	if err := d.Append(testRatings(2, 500)); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveSnapshot(6, 1.0, m, testRatings(9, 0)); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot (flip one byte mid-file).
	name := filepath.Join(d.Path(), "snap-0000000000000006.rex")
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(name, b, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, replayed, err := d2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Epoch != 3 {
		t.Fatalf("fallback loaded %+v, want epoch 3", snap)
	}
	if len(replayed) != 2 {
		t.Fatalf("fallback replayed %d ratings, want the 2 logged after epoch 3", len(replayed))
	}
}

func TestTornWALTailDropped(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	m := trainedModel(t)
	if err := d.SaveSnapshot(1, 1.0, m, testRatings(4, 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(testRatings(3, 100)); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(testRatings(3, 200)); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Tear the last record: chop bytes off the log tail.
	name := filepath.Join(d.Path(), "wal-0000000000000001.rex")
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(name, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	_, replayed, err := d2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 3 {
		t.Fatalf("replayed %d ratings from torn log, want first record's 3", len(replayed))
	}
}

func TestPruneKeepsTwoSnapshots(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	m := trainedModel(t)
	for _, ep := range []int{1, 2, 3, 4} {
		if err := d.SaveSnapshot(ep, 1.0, m, testRatings(3, 0)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	var snaps, wals int
	for _, e := range entries {
		if _, ok := parseEpoch(e.Name(), snapPrefix); ok {
			snaps++
		}
		if _, ok := parseEpoch(e.Name(), walPrefix); ok {
			wals++
		}
	}
	if snaps != 2 {
		t.Fatalf("%d snapshots kept, want 2", snaps)
	}
	if wals != 2 {
		t.Fatalf("%d WALs kept, want 2", wals)
	}
}
