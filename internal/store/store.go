// Package store persists a REX node's state across process restarts, so a
// killed daemon (cmd/rexd) resumes from where it was instead of retraining
// from scratch. Two artifacts live in a node's data directory:
//
//   - Versioned model snapshots (snap-<epoch>.rex): the serialized model
//     (model.AppendMarshaler when available, so the parameter body is
//     written with no staging copy), the full raw-data store, the epoch
//     count and test RMSE — everything core.RestoreNode needs. Snapshots
//     are written to a temp file, fsynced, CRC-sealed and atomically
//     renamed into place; the previous snapshot is kept as a fallback
//     until the next one lands, so a crash mid-write can never destroy
//     the last good state.
//
//   - A rating write-ahead log (wal-<epoch>.rex): ratings ingested online
//     (serve's /rate) between snapshots, appended as CRC-framed records
//     and fsynced before the ingestion is acknowledged. On restart every
//     retained log is replayed on top of the snapshot — including logs
//     older than the snapshot's epoch, because a rating logged moments
//     before a capture may not have reached the node store yet (it can
//     still sit in the engine's ingestion mailbox). Replay is idempotent:
//     the node store dedups on (user, item) with newest-value-wins, and
//     logs replay in epoch order. A torn tail record (crash mid-append)
//     is detected by its CRC and dropped.
//
// Gossip-merged data between snapshots is deliberately NOT logged: REX
// sampling is stateless, so anything lost to a crash is re-gossiped by
// neighbors in later rounds, while user ratings exist nowhere else — they
// are the only state that must be durable the moment it is accepted.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"rex/internal/dataset"
	"rex/internal/model"
)

const (
	snapMagic   = "REXSNAP1"
	snapPrefix  = "snap-"
	walPrefix   = "wal-"
	suffix      = ".rex"
	walRecordHd = 8 // u32 payload length + u32 CRC
)

// Snapshot is one persisted node state.
type Snapshot struct {
	// Epoch is the number of training epochs completed at capture time.
	Epoch int
	// RMSE is the local test RMSE at capture time (informational).
	RMSE float64
	// Model is the serialized model (model.Model Marshal bytes).
	Model []byte
	// Ratings is the full raw-data store at capture time.
	Ratings []dataset.Rating
}

// Dir manages one node's data directory.
type Dir struct {
	path string
	// wal is the open log for ratings ingested since the newest snapshot;
	// walEpoch is the snapshot epoch it belongs to.
	wal      *os.File
	walEpoch int
	// buf is reused across snapshot writes and WAL appends.
	buf []byte
}

// Open creates (if needed) and opens a node data directory. No WAL is
// opened until the first Append or SaveSnapshot.
func Open(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Dir{path: path, walEpoch: -1}, nil
}

// Path returns the managed directory.
func (d *Dir) Path() string { return d.path }

// Close closes the open WAL, if any.
func (d *Dir) Close() error {
	if d.wal == nil {
		return nil
	}
	err := d.wal.Close()
	d.wal = nil
	return err
}

func (d *Dir) snapName(epoch int) string {
	return filepath.Join(d.path, fmt.Sprintf("%s%016x%s", snapPrefix, epoch, suffix))
}

func (d *Dir) walName(epoch int) string {
	return filepath.Join(d.path, fmt.Sprintf("%s%016x%s", walPrefix, epoch, suffix))
}

// parseEpoch extracts the epoch from a snap-/wal- file name; ok is false
// for foreign files.
func parseEpoch(name, prefix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	v, err := strconv.ParseUint(hexPart, 16, 63)
	if err != nil {
		return 0, false
	}
	return int(v), true
}

// list returns the epochs of the files with the given prefix, ascending.
func (d *Dir) list(prefix string) ([]int, error) {
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var epochs []int
	for _, e := range entries {
		if ep, ok := parseEpoch(e.Name(), prefix); ok {
			epochs = append(epochs, ep)
		}
	}
	sort.Ints(epochs)
	return epochs, nil
}

// SaveSnapshot atomically persists the node state and rotates the WAL: a
// new empty log keyed to this epoch is opened, and snapshots and logs
// older than the previous snapshot are pruned. The rotated-away log is
// NOT assumed subsumed by the snapshot — a rating appended to it just
// before the capture may still be in flight toward the node store — so it
// is retained until pruning and replayed by Load. The model serializes
// through model.AppendMarshaler when implemented, reusing one buffer
// across snapshots.
func (d *Dir) SaveSnapshot(epoch int, rmse float64, m model.Model, ratings []dataset.Rating) error {
	// Layout: magic | u32 version | u64 epoch | u64 rmse bits |
	// u32 modelLen | model | ratings block | u32 CRC(all prior bytes).
	b := append(d.buf[:0], snapMagic...)
	b = binary.LittleEndian.AppendUint32(b, 1)
	b = binary.LittleEndian.AppendUint64(b, uint64(epoch))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(rmse))
	lenOff := len(b)
	b = binary.LittleEndian.AppendUint32(b, 0)
	var err error
	if am, ok := m.(model.AppendMarshaler); ok {
		b, err = am.MarshalAppend(b)
	} else {
		var mb []byte
		mb, err = m.Marshal()
		b = append(b, mb...)
	}
	if err != nil {
		return fmt.Errorf("store: marshaling model: %w", err)
	}
	binary.LittleEndian.PutUint32(b[lenOff:], uint32(len(b)-lenOff-4))
	b = dataset.EncodeRatingsAppend(b, ratings)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	d.buf = b

	tmp, err := os.CreateTemp(d.path, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.snapName(epoch)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d.syncDir()

	if err := d.rotateWAL(epoch); err != nil {
		return err
	}
	return d.prune(epoch)
}

// rotateWAL closes the current log and opens a fresh one for this epoch.
func (d *Dir) rotateWAL(epoch int) error {
	if d.wal != nil {
		d.wal.Close()
		d.wal = nil
	}
	f, err := os.OpenFile(d.walName(epoch), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d.wal, d.walEpoch = f, epoch
	return nil
}

// prune keeps the newest snapshot plus one fallback, and every WAL at or
// after the oldest kept snapshot: the fallback path needs those logs to
// replay forward, and the newest snapshot's capture may predate ratings
// logged against the previous epoch (mailbox lag). A WAL is deleted only
// once two newer snapshots exist — by then the engine has drained its
// mailbox at least a full generation after the log rotated away, so every
// rating the log held is in the newest snapshot's store.
func (d *Dir) prune(newest int) error {
	snaps, err := d.list(snapPrefix)
	if err != nil {
		return err
	}
	keepFrom := newest
	if len(snaps) >= 2 {
		keepFrom = snaps[len(snaps)-2]
	}
	for _, ep := range snaps {
		if ep < keepFrom {
			os.Remove(d.snapName(ep))
		}
	}
	wals, err := d.list(walPrefix)
	if err != nil {
		return err
	}
	for _, ep := range wals {
		if ep < keepFrom {
			os.Remove(d.walName(ep))
		}
	}
	return nil
}

// Append durably logs ingested ratings: one CRC-framed record, fsynced
// before returning, so an acknowledged rating survives kill -9. Call
// SaveSnapshot at least once first (or Load on a populated directory) so
// the log is keyed to a snapshot epoch; before any snapshot exists the
// log is keyed to epoch 0.
func (d *Dir) Append(rs []dataset.Rating) error {
	if len(rs) == 0 {
		return nil
	}
	if d.wal == nil {
		if err := d.rotateWAL(maxInt(d.walEpoch, 0)); err != nil {
			return err
		}
	}
	payload := dataset.EncodeRatingsAppend(d.buf[:0], rs)
	d.buf = payload
	var hdr [walRecordHd]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := d.wal.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: wal: %w", err)
	}
	if _, err := d.wal.Write(payload); err != nil {
		return fmt.Errorf("store: wal: %w", err)
	}
	if err := d.wal.Sync(); err != nil {
		return fmt.Errorf("store: wal: %w", err)
	}
	return nil
}

// Load restores the newest valid persisted state: the snapshot (nil if the
// directory holds none — a fresh node) and the ratings replayed from every
// retained WAL, in log order — including WALs keyed before the snapshot's
// epoch. A rating acknowledged just before a capture can be in the log of
// the *previous* epoch while not yet in the captured store (it is still in
// the engine's ingestion mailbox), so skipping older logs would silently
// drop an acknowledged rating across kill -9 + resume; replaying them is
// safe because the node store dedups on (user, item) newest-wins and logs
// replay oldest-first. A corrupt newest snapshot falls back to the
// previous one; a torn WAL tail is dropped with the records before it
// preserved. Load also positions the WAL so subsequent Appends continue
// the newest log.
func (d *Dir) Load() (*Snapshot, []dataset.Rating, error) {
	snaps, err := d.list(snapPrefix)
	if err != nil {
		return nil, nil, err
	}
	var snap *Snapshot
	for i := len(snaps) - 1; i >= 0 && snap == nil; i-- {
		s, err := readSnapshot(d.snapName(snaps[i]))
		if err != nil {
			// Corrupt or torn: fall back to the previous version.
			continue
		}
		snap = s
	}
	wals, err := d.list(walPrefix)
	if err != nil {
		return nil, nil, err
	}
	var replayed []dataset.Rating
	newestWAL := -1
	for _, ep := range wals {
		rs, err := readWAL(d.walName(ep))
		if err != nil {
			return nil, nil, err
		}
		replayed = append(replayed, rs...)
		newestWAL = ep
	}
	// Continue appending to the newest log rather than truncating history.
	if newestWAL >= 0 {
		if err := d.reopenWAL(newestWAL); err != nil {
			return nil, nil, err
		}
	} else if snap != nil {
		d.walEpoch = snap.Epoch
	}
	return snap, replayed, nil
}

func (d *Dir) reopenWAL(epoch int) error {
	if d.wal != nil {
		d.wal.Close()
		d.wal = nil
	}
	f, err := os.OpenFile(d.walName(epoch), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d.wal, d.walEpoch = f, epoch
	return nil
}

// readSnapshot parses and CRC-verifies one snapshot file.
func readSnapshot(name string) (*Snapshot, error) {
	b, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	const fixed = len(snapMagic) + 4 + 8 + 8 + 4
	if len(b) < fixed+4 {
		return nil, fmt.Errorf("store: snapshot %s truncated (%d bytes)", name, len(b))
	}
	crcOff := len(b) - 4
	if got, want := crc32.ChecksumIEEE(b[:crcOff]), binary.LittleEndian.Uint32(b[crcOff:]); got != want {
		return nil, fmt.Errorf("store: snapshot %s CRC mismatch", name)
	}
	if string(b[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("store: snapshot %s bad magic", name)
	}
	off := len(snapMagic)
	if v := binary.LittleEndian.Uint32(b[off:]); v != 1 {
		return nil, fmt.Errorf("store: snapshot %s unknown version %d", name, v)
	}
	off += 4
	s := &Snapshot{}
	s.Epoch = int(binary.LittleEndian.Uint64(b[off:]))
	off += 8
	s.RMSE = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
	off += 8
	mlen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if mlen < 0 || off+mlen > crcOff {
		return nil, fmt.Errorf("store: snapshot %s model length %d out of range", name, mlen)
	}
	s.Model = append([]byte(nil), b[off:off+mlen]...)
	off += mlen
	rs, n, err := dataset.DecodeRatings(b[off:crcOff])
	if err != nil {
		return nil, fmt.Errorf("store: snapshot %s ratings: %w", name, err)
	}
	if off+n != crcOff {
		return nil, fmt.Errorf("store: snapshot %s has %d trailing bytes", name, crcOff-off-n)
	}
	s.Ratings = rs
	return s, nil
}

// readWAL replays one log file. A torn or corrupt tail record ends the
// replay silently — that is the expected shape of a crash mid-append — but
// the records before it are kept.
func readWAL(name string) ([]dataset.Rating, error) {
	b, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []dataset.Rating
	for off := 0; off < len(b); {
		if off+walRecordHd > len(b) {
			break // torn header
		}
		plen := int(binary.LittleEndian.Uint32(b[off:]))
		crc := binary.LittleEndian.Uint32(b[off+4:])
		off += walRecordHd
		if plen < 0 || off+plen > len(b) {
			break // torn payload
		}
		payload := b[off : off+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt record; stop trusting the rest
		}
		rs, _, err := dataset.DecodeRatings(payload)
		if err != nil {
			break
		}
		out = append(out, rs...)
		off += plen
	}
	return out, nil
}

// syncDir fsyncs the directory so a rename is durable; best-effort (some
// filesystems reject directory fsync).
func (d *Dir) syncDir() {
	if f, err := os.Open(d.path); err == nil {
		f.Sync()
		f.Close()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
