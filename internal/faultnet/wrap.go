package faultnet

import (
	"sync"
	"sync/atomic"
	"time"

	"rex/internal/runtime"
)

// Wrap returns ep with the scenario's fault schedule injected on outbound
// gossip frames sent by node `from`. Attestation traffic passes through
// untouched (the bootstrap handshake has no retry path; the paper runs it
// before any adversity matters). Every decision is a pure function of
// (scenario, edge, frame index), so wrapping both ends of every edge with
// the same spec reproduces the identical fault pattern run after run —
// including across the processes of a sharded cluster.
//
// Fault semantics on the live wire:
//
//   - drop / partition: the frame is silently discarded at the sender. The
//     receiver sees a missed round (its RoundTimeout fires) and the grace
//     window (runtime.Config.PeerGrace) decides whether the peer survives.
//   - delay: the frame is held for the scheduled duration before being
//     handed to the transport. Holding happens on the sending path, which
//     keeps per-edge FIFO intact; scenarios keep delays well under the
//     round timeout.
//   - duplicate: the frame is enqueued twice back-to-back. Secure channels
//     absorb the copy via the explicit-sequence replay window; the native
//     build merges it again one round later.
//   - reorder: the frame is stashed and swapped with the next frame on the
//     same edge (the only reordering a per-peer-FIFO transport can
//     express). Close flushes any stashed frame so no final share is ever
//     stranded.
func Wrap(ep runtime.Endpoint, from int, sc *Scenario, log *Log) runtime.Endpoint {
	return &faultEndpoint{inner: ep, from: from, sc: sc, log: log,
		edges: make(map[int]*edgeState)}
}

type faultEndpoint struct {
	inner runtime.Endpoint
	from  int
	sc    *Scenario
	log   *Log

	mu    sync.Mutex // guards edges map
	edges map[int]*edgeState

	dropped, delayed atomic.Int64
	once             sync.Once
	closeErr         error
}

// edgeState is the per-directed-edge fault bookkeeping. Its mutex also
// serializes the actual sends of one edge, preserving FIFO through delays
// and swaps; sends to distinct peers never contend on it.
type edgeState struct {
	mu    sync.Mutex
	seq   int
	stash []byte // reorder-held frame, owned copy
	// stashDup marks a stashed frame that also drew the duplicate fault:
	// it is sent twice on release, matching the simulator's schedule.
	stashDup bool
}

func (f *faultEndpoint) edge(to int) *edgeState {
	f.mu.Lock()
	defer f.mu.Unlock()
	es := f.edges[to]
	if es == nil {
		es = &edgeState{}
		f.edges[to] = es
	}
	return es
}

// Send implements runtime.Endpoint.
func (f *faultEndpoint) Send(to int, data []byte) error {
	if !runtime.IsGossipFrame(data) {
		return f.inner.Send(to, data)
	}
	es := f.edge(to)
	es.mu.Lock()
	defer es.mu.Unlock()
	seq := es.seq
	es.seq++
	epoch := f.sc.EdgeEpoch(f.from, to, seq)

	if f.sc.Partitioned(f.from, to, epoch) {
		f.dropped.Add(1)
		f.log.Add(Event{Epoch: epoch, From: f.from, To: to, Kind: KindPartition})
		return nil
	}
	if f.sc.DropAt(f.from, to, epoch) {
		f.dropped.Add(1)
		f.log.Add(Event{Epoch: epoch, From: f.from, To: to, Kind: KindDrop})
		return nil
	}
	if d, ok := f.sc.DelayAt(f.from, to, epoch); ok {
		f.delayed.Add(1)
		f.log.Add(Event{Epoch: epoch, From: f.from, To: to, Kind: KindDelay})
		time.Sleep(d)
	}

	// A co-scheduled duplicate applies to this frame whether it is sent
	// now or stashed for the swap — the simulator delivers two copies in
	// both cases, and the live schedule must match it.
	dup := f.sc.DuplicateAt(f.from, to, epoch)
	if dup {
		f.log.Add(Event{Epoch: epoch, From: f.from, To: to, Kind: KindDuplicate})
	}

	// Reorder: hold this frame for the next one on the edge; if a frame is
	// already held, this send releases it (new frame first — the swap).
	if f.sc.ReorderAt(f.from, to, epoch) && es.stash == nil {
		es.stash = append([]byte(nil), data...)
		es.stashDup = dup
		f.log.Add(Event{Epoch: epoch, From: f.from, To: to, Kind: KindReorder})
		return nil
	}
	if err := f.inner.Send(to, data); err != nil {
		return err
	}
	if dup {
		if err := f.inner.Send(to, data); err != nil {
			return err
		}
	}
	if es.stash != nil {
		stash, stashDup := es.stash, es.stashDup
		es.stash, es.stashDup = nil, false
		if err := f.inner.Send(to, stash); err != nil {
			return err
		}
		if stashDup {
			if err := f.inner.Send(to, stash); err != nil {
				return err
			}
		}
	}
	return nil
}

// Inbox implements runtime.Endpoint.
func (f *faultEndpoint) Inbox() <-chan runtime.Envelope { return f.inner.Inbox() }

// Done implements runtime.Endpoint.
func (f *faultEndpoint) Done() <-chan struct{} { return f.inner.Done() }

// Close flushes reorder-stashed frames (a stranded final share would
// deadlock its receiver) and closes the wrapped endpoint.
func (f *faultEndpoint) Close() error {
	f.once.Do(func() {
		f.mu.Lock()
		edges := make(map[int]*edgeState, len(f.edges))
		for to, es := range f.edges {
			edges[to] = es
		}
		f.mu.Unlock()
		for to, es := range edges {
			es.mu.Lock()
			if es.stash != nil {
				f.inner.Send(to, es.stash) // best effort; the peer may be gone
				if es.stashDup {
					f.inner.Send(to, es.stash)
				}
				es.stash, es.stashDup = nil, false
			}
			es.mu.Unlock()
		}
		f.closeErr = f.inner.Close()
	})
	return f.closeErr
}

// SendQueueHWM implements runtime.QueueReporter by delegation.
func (f *faultEndpoint) SendQueueHWM() int {
	if q, ok := f.inner.(runtime.QueueReporter); ok {
		return q.SendQueueHWM()
	}
	return 0
}

// FaultCounts implements runtime.FaultReporter.
func (f *faultEndpoint) FaultCounts() (dropped, delayed int64) {
	return f.dropped.Load(), f.delayed.Load()
}

// Wrapper returns the runtime.ClusterConfig/ShardConfig WrapEndpoint hook
// for this scenario, with all endpoints sharing one fault log.
func (s *Scenario) Wrapper(log *Log) func(node int, ep runtime.Endpoint) runtime.Endpoint {
	return func(node int, ep runtime.Endpoint) runtime.Endpoint {
		return Wrap(ep, node, s, log)
	}
}

// absentFunc exposes the churn schedule in the shape runtime.Config.Absent
// expects, or nil when the scenario has no churn.
func (s *Scenario) absentFunc() func(node, epoch int) bool {
	if len(s.Churn) == 0 {
		return nil
	}
	return s.Absent
}

// skipExpect reports that the frame `from` would have sent to `self` at
// `epoch` is scheduled away — the oracle-detection hook.
func (s *Scenario) skipExpect(self, from, epoch int) bool {
	return s.DropAt(from, self, epoch) || s.Partitioned(from, self, epoch)
}

// ApplyRun configures a single live node for this scenario: the endpoint
// is wrapped and the failure-detector knobs (round timeout, grace,
// rejoin, churn oracle) are set. Every node of the cluster must apply the
// same scenario.
func (s *Scenario) ApplyRun(cfg *runtime.Config, log *Log) {
	self := cfg.Node.Cfg.ID
	cfg.Endpoint = Wrap(cfg.Endpoint, self, s, log)
	s.applyKnobs(&cfg.RoundTimeout, &cfg.PeerGrace, &cfg.Rejoin)
	cfg.Absent = s.absentFunc()
	if s.Oracle {
		cfg.SkipExpect = func(from, epoch int) bool { return s.skipExpect(self, from, epoch) }
	}
}

// ApplyCluster configures an in-process cluster for this scenario.
func (s *Scenario) ApplyCluster(cfg *runtime.ClusterConfig, log *Log) {
	cfg.WrapEndpoint = s.Wrapper(log)
	s.applyKnobs(&cfg.RoundTimeout, &cfg.PeerGrace, &cfg.Rejoin)
	cfg.Absent = s.absentFunc()
	if s.Oracle {
		cfg.SkipExpect = s.skipExpect
	}
}

// ApplyShard configures one shard of a multi-process cluster for this
// scenario; every shard must be given the same spec.
func (s *Scenario) ApplyShard(cfg *runtime.ShardConfig, log *Log) {
	cfg.WrapEndpoint = s.Wrapper(log)
	s.applyKnobs(&cfg.RoundTimeout, &cfg.PeerGrace, &cfg.Rejoin)
	cfg.Absent = s.absentFunc()
	if s.Oracle {
		cfg.SkipExpect = s.skipExpect
	}
}

func (s *Scenario) applyKnobs(timeout *time.Duration, grace *int, rejoin *bool) {
	if s.TimeoutMs > 0 {
		*timeout = s.Timeout()
	}
	if s.GraceRounds > 0 {
		*grace = s.GraceRounds
	}
	if s.Rejoin {
		*rejoin = true
	}
}
